// Tests for the directed-channel enumeration.
#include "topo/channels.hpp"

#include <gtest/gtest.h>

#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet::topo {
namespace {

TEST(ChannelTable, FatTreeChannelCount) {
  // n=2: 16 processor links + 8 up links (4 level-1 switches x 2 parents),
  // each link is two directed channels.
  ButterflyFatTree ft(2);
  ChannelTable ct(ft);
  EXPECT_EQ(ct.size(), 2 * (16 + 8));
}

TEST(ChannelTable, HypercubeChannelCount) {
  // n=3: 8 processor links + 8*3/2 dimension links, two directions each.
  Hypercube hc(3);
  ChannelTable ct(hc);
  EXPECT_EQ(ct.size(), 2 * (8 + 12));
}

TEST(ChannelTable, MeshChannelCount) {
  // 3x3: 9 processor links + 2 dims * 2 rows/cols... = 9 + 12 links.
  Mesh m(3, 2);
  ChannelTable ct(m);
  EXPECT_EQ(ct.size(), 2 * (9 + 12));
}

TEST(ChannelTable, FromIntoReverseAreConsistent) {
  ButterflyFatTree ft(2);
  ChannelTable ct(ft);
  for (int id = 0; id < ct.size(); ++id) {
    const DirectedChannel& c = ct.at(id);
    EXPECT_EQ(ct.from(c.src_node, c.src_port), id);
    EXPECT_EQ(ct.into(c.dst_node, c.dst_port), id);
    const int rev = ct.reverse(id);
    ASSERT_NE(rev, kNoChannel);
    EXPECT_EQ(ct.reverse(rev), id);
    const DirectedChannel& r = ct.at(rev);
    EXPECT_EQ(r.src_node, c.dst_node);
    EXPECT_EQ(r.dst_node, c.src_node);
  }
}

TEST(ChannelTable, UnconnectedPortsHaveNoChannel) {
  ButterflyFatTree ft(2);
  ChannelTable ct(ft);
  const int top = ft.switch_id(2, 0);
  EXPECT_EQ(ct.from(top, ButterflyFatTree::kParentPort0), kNoChannel);
  EXPECT_EQ(ct.from(top, ButterflyFatTree::kParentPort1), kNoChannel);
}

TEST(ChannelTable, EndpointsWithinRange) {
  Mesh m(4, 2);
  ChannelTable ct(m);
  for (int id = 0; id < ct.size(); ++id) {
    const DirectedChannel& c = ct.at(id);
    EXPECT_GE(c.src_node, 0);
    EXPECT_LT(c.src_node, m.num_nodes());
    EXPECT_GE(c.dst_node, 0);
    EXPECT_LT(c.dst_node, m.num_nodes());
    EXPECT_NE(c.src_node, c.dst_node);
  }
}

}  // namespace
}  // namespace wormnet::topo

// Tests for the thread pool / parallel_for.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace wormnet::util {
namespace {

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  ThreadPool pool(4);
  parallel_for(pool, 500, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForComputesDeterministicResult) {
  std::vector<double> out(1000, 0.0);
  parallel_for(1000, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = static_cast<double>(i) * 2.0;
  });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  parallel_for(pool, 37, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 37);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  parallel_for(pool, 10, [&](std::int64_t) { ++count; });
  parallel_for(pool, 10, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace wormnet::util

// Integration tests: the analytical model must track the simulator across
// topologies and load levels — the paper's central claim ("experimental
// results agree very closely over a wide range of load rate").
//
// Tolerances: the model idealizes away the simulator's one-cycle channel
// hand-off, so agreement tightens at low load and loosens near saturation;
// we accept 5% in the linear region and 20% at 70% of saturation.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/fattree_model.hpp"
#include "core/full_graph.hpp"
#include "core/hypercube_graph.hpp"
#include "core/network_model.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet {
namespace {

double run_sim(const topo::Topology& topo, double load_flits, int worm_flits,
               std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.load_flits = load_flits;
  cfg.worm_flits = worm_flits;
  cfg.seed = seed;
  cfg.warmup_cycles = 8'000;
  cfg.measure_cycles = 40'000;
  cfg.max_cycles = 600'000;
  cfg.channel_stats = false;
  const sim::SimResult r = sim::simulate(topo, cfg);
  EXPECT_TRUE(r.completed) << topo.name() << " load=" << load_flits;
  return r.latency.mean();
}

class FatTreeAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(FatTreeAgreement, LatencyWithinTolerance) {
  const auto [levels, worm, frac] = GetParam();
  topo::ButterflyFatTree ft(levels);
  core::FatTreeModel model(
      {.levels = levels, .worm_flits = static_cast<double>(worm)});
  const double load = model.saturation_load() * frac;
  const double model_latency = model.evaluate_load(load).latency;
  const double sim_latency = run_sim(ft, load, worm, 1234 + levels);
  const double tol = frac <= 0.5 ? 0.05 : 0.20;
  EXPECT_NEAR(sim_latency, model_latency, model_latency * tol)
      << "levels=" << levels << " worm=" << worm << " frac=" << frac;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FatTreeAgreement,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Values(16, 32),
                       ::testing::Values(0.25, 0.5, 0.7)));

TEST(HypercubeAgreement, ModelTracksSimulation) {
  topo::Hypercube hc(4);
  const core::GeneralModel net = core::build_hypercube_collapsed(4);
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  const double sat = core::model_saturation_rate(net, opts) * 16.0;
  for (double frac : {0.3, 0.6}) {
    const double load = sat * frac;
    const double model_latency =
        core::model_latency(net, load / 16.0, opts).latency;
    const double sim_latency = run_sim(hc, load, 16, 77);
    EXPECT_NEAR(sim_latency, model_latency, model_latency * 0.15)
        << "frac=" << frac;
  }
}

TEST(MeshAgreement, ModelTracksSimulation) {
  topo::Mesh m(4, 2);
  const core::GeneralModel net = core::build_full_channel_graph(m);
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  const double sat = core::model_saturation_rate(net, opts) * 16.0;
  for (double frac : {0.3, 0.6}) {
    const double load = sat * frac;
    const double model_latency =
        core::model_latency(net, load / 16.0, opts).latency;
    const double sim_latency = run_sim(m, load, 16, 99);
    EXPECT_NEAR(sim_latency, model_latency, model_latency * 0.15)
        << "frac=" << frac;
  }
}

TEST(ThroughputAgreement, OverloadThroughputNearModelSaturation) {
  topo::ButterflyFatTree ft(3);
  core::FatTreeModel model({.levels = 3, .worm_flits = 16.0});
  sim::SimConfig cfg;
  cfg.arrivals = sim::ArrivalProcess::Overload;
  cfg.worm_flits = 16;
  cfg.seed = 5;
  cfg.warmup_cycles = 10'000;
  cfg.measure_cycles = 30'000;
  const sim::SimResult r = sim::simulate(ft, cfg);
  const double model_sat = model.saturation_load();
  // Same capacity within 15% (the model's Eq. 26 point vs closed-loop max).
  EXPECT_NEAR(r.throughput_flits_per_pe, model_sat, model_sat * 0.15);
}

TEST(ComponentAgreement, InjectionWaitAndServiceTrackModel) {
  // Not just total latency: the per-component decomposition (W̄⟨0,1⟩ and
  // x̄⟨0,1⟩ of Eq. 25) must match the simulator's measured decomposition.
  topo::ButterflyFatTree ft(3);
  core::FatTreeModel model({.levels = 3, .worm_flits = 16.0});
  const double load = model.saturation_load() * 0.5;
  sim::SimConfig cfg;
  cfg.load_flits = load;
  cfg.worm_flits = 16;
  cfg.seed = 6;
  cfg.warmup_cycles = 8'000;
  cfg.measure_cycles = 40'000;
  cfg.max_cycles = 600'000;
  const sim::SimResult r = sim::simulate(ft, cfg);
  ASSERT_TRUE(r.completed);
  const core::LatencyEstimate ev = model.evaluate_load(load);
  EXPECT_NEAR(r.inj_service.mean(), ev.inj_service, ev.inj_service * 0.08);
  // Queue waits are small absolute numbers at half load; compare loosely.
  EXPECT_NEAR(r.queue_wait.mean(), ev.inj_wait, std::max(0.5, ev.inj_wait * 0.6));
}

}  // namespace
}  // namespace wormnet

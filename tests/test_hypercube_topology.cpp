// Tests for the binary hypercube topology with e-cube routing.
#include "topo/hypercube.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "topo/graph_checks.hpp"

namespace wormnet::topo {
namespace {

TEST(Hypercube, Counts) {
  Hypercube hc(4);
  EXPECT_EQ(hc.num_processors(), 16);
  EXPECT_EQ(hc.num_nodes(), 32);
  EXPECT_EQ(hc.num_ports(hc.router_of(0)), 5);
  EXPECT_EQ(hc.num_ports(0), 1);
}

TEST(Hypercube, DimensionLinks) {
  Hypercube hc(3);
  for (int a = 0; a < 8; ++a) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(hc.neighbor(hc.router_of(a), d), hc.router_of(a ^ (1 << d)));
      EXPECT_EQ(hc.neighbor_port(hc.router_of(a), d), d);
    }
    EXPECT_EQ(hc.neighbor(hc.router_of(a), 3), a);  // processor port
  }
}

TEST(Hypercube, StructuralVerifierPasses) {
  for (int n = 1; n <= 5; ++n) {
    Hypercube hc(n);
    const VerifyReport report = verify_topology(hc);
    EXPECT_TRUE(report.ok()) << "n=" << n << (report.ok() ? "" : report.violations[0]);
  }
}

TEST(Hypercube, EcubeFixesLowestDimensionFirst) {
  Hypercube hc(4);
  // At router 0 heading to 0b1010: lowest differing bit is dim 1.
  const RouteOptions r = hc.route(hc.router_of(0), 0b1010);
  ASSERT_EQ(r.size(), 1);
  EXPECT_EQ(r[0], 1);
}

TEST(Hypercube, RouteEjectsAtDestinationRouter) {
  Hypercube hc(3);
  const RouteOptions r = hc.route(hc.router_of(5), 5);
  ASSERT_EQ(r.size(), 1);
  EXPECT_EQ(r[0], 3);  // processor port
}

TEST(Hypercube, DistanceIsHammingPlusTwo) {
  Hypercube hc(4);
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s == d) {
        EXPECT_EQ(hc.distance(s, d), 0);
      } else {
        EXPECT_EQ(hc.distance(s, d),
                  std::popcount(static_cast<unsigned>(s ^ d)) + 2);
      }
    }
  }
}

TEST(Hypercube, MeanDistanceMatchesBruteForce) {
  for (int n = 1; n <= 4; ++n) {
    Hypercube hc(n);
    double sum = 0.0;
    long pairs = 0;
    for (int s = 0; s < hc.num_processors(); ++s)
      for (int d = 0; d < hc.num_processors(); ++d) {
        if (s == d) continue;
        sum += hc.distance(s, d);
        ++pairs;
      }
    EXPECT_NEAR(hc.mean_distance(), sum / static_cast<double>(pairs), 1e-12);
  }
}

TEST(Hypercube, TraceRouteVisitsDimensionsAscending) {
  Hypercube hc(4);
  const std::vector<int> path = trace_route(hc, 0, 0b1011);
  // processor 0 -> router 0 -> router 1 -> router 3 -> router 11 -> proc 11.
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path[1], hc.router_of(0));
  EXPECT_EQ(path[2], hc.router_of(1));
  EXPECT_EQ(path[3], hc.router_of(3));
  EXPECT_EQ(path[4], hc.router_of(0b1011));
  EXPECT_EQ(path[5], 0b1011);
}

TEST(Hypercube, SingletonBundlesOnly) {
  Hypercube hc(3);
  const auto bundles = hc.output_bundles(hc.router_of(0));
  EXPECT_EQ(bundles.size(), 4u);  // 3 dims + processor link
  for (const PortBundle& b : bundles) EXPECT_EQ(b.count, 1);
}

TEST(Hypercube, HighDimensionRouterBundlesFit) {
  // Regression: a 10-dim router has 11 ports — more than any fixed-size
  // bundle array would hold.
  Hypercube hc(10);
  const auto bundles = hc.output_bundles(hc.router_of(5));
  EXPECT_EQ(bundles.size(), 11u);
}

}  // namespace
}  // namespace wormnet::topo

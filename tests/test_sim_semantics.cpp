// Wormhole-semantics tests: channel holding, FCFS arbitration, blocked-in-
// place behavior and the adaptive two-link up-routing.  All scripted
// scenarios are fully deterministic, so latencies are checked EXACTLY.
//
// Timing note used throughout: a channel released at cycle t is re-granted
// in cycle t+1 (one cycle of switch arbitration), so back-to-back service of
// a 16-flit worm over the same channel adds 17 cycles, not 16.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"

namespace wormnet::sim {
namespace {

SimConfig scripted_config(int worm_flits) {
  SimConfig cfg;
  cfg.worm_flits = worm_flits;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 16;
  cfg.max_cycles = 100'000;
  return cfg;
}

TEST(SimSemantics, SourceQueueSerializesFcfs) {
  // Two messages from processor 0 at the same cycle to different leaves of
  // the same switch (D = 2, no network contention).  The first occupies the
  // injection channel for s_f = 16 cycles; the second starts 17 cycles in
  // (16 service + 1 arbitration).
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(16));
  s.add_message(0, 0, 1);
  s.add_message(0, 0, 2);
  const SimResult r = s.run();
  EXPECT_EQ(r.latency.count(), 2);
  EXPECT_DOUBLE_EQ(r.latency.min(), 17.0);        // 2 + 16 - 1
  EXPECT_DOUBLE_EQ(r.latency.max(), 17.0 + 17.0); // waits a full service + handoff
  EXPECT_DOUBLE_EQ(r.queue_wait.max(), 17.0);
  // Both worms see the same injection-channel service time.
  EXPECT_DOUBLE_EQ(r.inj_service.min(), 16.0);
  EXPECT_DOUBLE_EQ(r.inj_service.max(), 16.0);
}

TEST(SimSemantics, EjectionChannelContentionSerializes) {
  // Two worms from different sources target the SAME destination: the
  // second blocks on the ejection channel until the first fully drains —
  // the contention the model's W̄⟨1,0⟩ (Eq. 17) describes.
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(16));
  s.add_message(0, 1, 0);
  s.add_message(0, 2, 0);
  const SimResult r = s.run();
  EXPECT_EQ(r.latency.count(), 2);
  EXPECT_DOUBLE_EQ(r.latency.min(), 17.0);
  EXPECT_DOUBLE_EQ(r.latency.max(), 34.0);
}

TEST(SimSemantics, ChainOfThreeBlockedWorms) {
  // Three worms to one destination: strict FCFS hand-me-down, 17 cycles apart.
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(16));
  s.add_message(0, 1, 0);
  s.add_message(0, 2, 0);
  s.add_message(0, 3, 0);
  const SimResult r = s.run();
  EXPECT_EQ(r.latency.count(), 3);
  EXPECT_DOUBLE_EQ(r.latency.min(), 17.0);
  EXPECT_DOUBLE_EQ(r.latency.max(), 51.0);
  EXPECT_DOUBLE_EQ(r.latency.mean(), (17.0 + 34.0 + 51.0) / 3.0);
}

TEST(SimSemantics, TwoServerUpBundleServesTwoWormsAtOnce) {
  // Two worms from different children of S(1,0) climb simultaneously; the
  // two parent links serve both in parallel (no waiting).  A third worm
  // must wait for a link to free — the M/G/2 pool in action.
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(16));
  s.add_message(0, 0, 4);   // up from S(1,0), down to S(1,1)
  s.add_message(0, 1, 8);   // up from S(1,0), down to S(1,2)
  s.add_message(0, 2, 12);  // up from S(1,0), down to S(1,3) — must wait
  const SimResult r = s.run();
  EXPECT_EQ(r.latency.count(), 3);
  // First two: uncontended D = 4 paths.
  EXPECT_DOUBLE_EQ(r.latency.min(), 19.0);
  // Third: both up links busy until the earlier tails pass (cycle 17);
  // granted at 18, head had entered the injection latch at cycle 0, so the
  // tail completes at 18 + 3 + 15 = 36.
  EXPECT_DOUBLE_EQ(r.latency.max(), 36.0);
}

TEST(SimSemantics, BlockedWormHoldsItsChannels) {
  // While worm B waits for worm A's ejection channel, B's flits occupy B's
  // injection channel the whole time: a third message from B's source can
  // only start after B fully departs.  This is "blocked in place".
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(16));
  s.add_message(0, 1, 0);  // A: eject at proc 0, latency 17
  s.add_message(0, 2, 0);  // B: blocks on A's ejection channel, done at 34
  s.add_message(1, 2, 3);  // C: same source as B, must wait for B's tail
  const SimResult r = s.run();
  EXPECT_EQ(r.latency.count(), 3);
  // B's tail leaves its injection channel at 33 (16 flits streaming out
  // only after the ejection grant at 18); C is granted at 34 and takes
  // 2 + 16 - 1 more cycles: tail at 51, latency 51 - 1 = 50.
  EXPECT_DOUBLE_EQ(r.latency.max(), 50.0);
}

TEST(SimSemantics, AdaptiveRoutingUsesBothUpLinks) {
  // Under stochastic load both parent links of every level-1 switch must
  // carry worms (the "select an up-link randomly" rule), in roughly equal
  // shares.
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.08;
  cfg.worm_flits = 8;
  cfg.seed = 3;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 20'000;
  cfg.max_cycles = 200'000;
  cfg.channel_stats = true;
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);
  const topo::ChannelTable ct(ft);
  for (int a = 0; a < ft.switches_at(1); ++a) {
    const int sw = ft.switch_id(1, a);
    const auto w0 = r.channels[static_cast<std::size_t>(
        ct.from(sw, topo::ButterflyFatTree::kParentPort0))].worms;
    const auto w1 = r.channels[static_cast<std::size_t>(
        ct.from(sw, topo::ButterflyFatTree::kParentPort1))].worms;
    EXPECT_GT(w0, 0) << "switch " << a;
    EXPECT_GT(w1, 0) << "switch " << a;
    const double ratio = static_cast<double>(w0) / static_cast<double>(w1);
    EXPECT_GT(ratio, 0.5) << "switch " << a;
    EXPECT_LT(ratio, 2.0) << "switch " << a;
  }
}

TEST(SimSemantics, DeterministicForEqualSeeds) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.05;
  cfg.worm_flits = 16;
  cfg.seed = 11;
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 5'000;
  auto run = [&] {
    Simulator s(net, cfg);
    return s.run();
  };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.cycles_run, b.cycles_run);
}

TEST(SimSemantics, DifferentSeedsDiffer) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.05;
  cfg.worm_flits = 16;
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 5'000;
  cfg.seed = 1;
  Simulator s1(net, cfg);
  const SimResult a = s1.run();
  cfg.seed = 2;
  Simulator s2(net, cfg);
  const SimResult b = s2.run();
  EXPECT_NE(a.latency.mean(), b.latency.mean());
}

TEST(SimSemantics, IdleFastForwardBitIdenticalToForcedSlowPath) {
  // Golden-trace-grade determinism for the idle-cycle fast-forward: a
  // low-load run (lots of empty-network cycles to skip) must produce a
  // bit-identical SimResult — latency stats, delivered counts, cycles_run,
  // every per-channel counter — whether the optimization is active or
  // forced off via SimConfig::disable_fast_forward.
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.02;  // deep idle: mean inter-arrival >> worm service
  cfg.worm_flits = 16;
  cfg.seed = 77;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 30'000;
  cfg.max_cycles = 200'000;
  cfg.channel_stats = true;

  cfg.disable_fast_forward = false;
  Simulator fast(net, cfg);
  const SimResult a = fast.run();
  cfg.disable_fast_forward = true;
  Simulator slow(net, cfg);
  const SimResult b = slow.run();

  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.min(), b.latency.min());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.queue_wait.mean(), b.queue_wait.mean());
  EXPECT_EQ(a.inj_service.mean(), b.inj_service.mean());
  EXPECT_EQ(a.distance.mean(), b.distance.mean());
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
  EXPECT_EQ(a.delivered_flits, b.delivered_flits);
  EXPECT_EQ(a.generated_messages, b.generated_messages);
  EXPECT_EQ(a.throughput_flits_per_pe, b.throughput_flits_per_pe);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t ch = 0; ch < a.channels.size(); ++ch) {
    EXPECT_EQ(a.channels[ch].worms, b.channels[ch].worms) << "channel " << ch;
    EXPECT_EQ(a.channels[ch].busy_cycles, b.channels[ch].busy_cycles);
    EXPECT_EQ(a.channels[ch].flits, b.channels[ch].flits);
  }
  // The point of the optimization: at this load most cycles ARE idle, so a
  // sanity floor on what there was to skip (the run still spans the full
  // window — fast-forward changes execution, not simulated time).
  EXPECT_GE(a.cycles_run, cfg.warmup_cycles + cfg.measure_cycles - 1);
}

TEST(SimSemantics, ScriptedRunsFastForwardAcrossIdleGaps) {
  // Two scripted messages separated by a huge idle gap: the run must cover
  // the gap (cycles_run past the second message) and both deliveries must
  // be exact — with and without fast-forward.
  for (bool disable : {false, true}) {
    topo::ButterflyFatTree ft(2);
    SimNetwork net(ft);
    SimConfig cfg = scripted_config(16);
    cfg.disable_fast_forward = disable;
    cfg.max_cycles = 10'000'000;
    Simulator s(net, cfg);
    s.add_message(0, 0, 1);
    s.add_message(5'000'000, 0, 2);
    const SimResult r = s.run();
    ASSERT_TRUE(r.completed) << "disable_fast_forward=" << disable;
    EXPECT_EQ(r.latency.count(), 2);
    EXPECT_DOUBLE_EQ(r.latency.min(), 17.0);  // both uncontended, D = 2
    EXPECT_DOUBLE_EQ(r.latency.max(), 17.0);
    EXPECT_GT(r.cycles_run, 5'000'000L);
  }
}

TEST(SimSemantics, DebugStateListsActiveWorms) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(16));
  // Before running, no active worms.
  EXPECT_NE(s.debug_state().find("active worms: 0"), std::string::npos);
}

}  // namespace
}  // namespace wormnet::sim

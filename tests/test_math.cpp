// Tests for wormnet::util math helpers.
#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/hash.hpp"

namespace wormnet::util {
namespace {

TEST(IPow, SmallPowers) {
  EXPECT_EQ(ipow(4, 0), 1);
  EXPECT_EQ(ipow(4, 1), 4);
  EXPECT_EQ(ipow(4, 5), 1024);
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(10, 3), 1000);
}

TEST(IPow, BaseOneAndZeroExp) {
  EXPECT_EQ(ipow(1, 100), 1);
  EXPECT_EQ(ipow(7, 0), 1);
}

TEST(IsPowerOf, PositiveCases) {
  EXPECT_TRUE(is_power_of(1, 4));
  EXPECT_TRUE(is_power_of(4, 4));
  EXPECT_TRUE(is_power_of(1024, 4));
  EXPECT_TRUE(is_power_of(8, 2));
}

TEST(IsPowerOf, NegativeCases) {
  EXPECT_FALSE(is_power_of(0, 4));
  EXPECT_FALSE(is_power_of(-4, 4));
  EXPECT_FALSE(is_power_of(2, 4));
  EXPECT_FALSE(is_power_of(48, 4));
}

TEST(ILog, FloorBehavior) {
  EXPECT_EQ(ilog(1, 4), 0);
  EXPECT_EQ(ilog(3, 4), 0);
  EXPECT_EQ(ilog(4, 4), 1);
  EXPECT_EQ(ilog(1023, 4), 4);
  EXPECT_EQ(ilog(1024, 4), 5);
}

TEST(ILog, ExactHelpers) {
  EXPECT_EQ(ilog2_exact(1024), 10);
  EXPECT_EQ(ilog4_exact(1024), 5);
  EXPECT_EQ(ilog4_exact(64), 3);
}

TEST(Clamp01, ClampsBothEnds) {
  EXPECT_DOUBLE_EQ(clamp01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.37), 0.37);
  EXPECT_DOUBLE_EQ(clamp01(1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp01(3.2), 1.0);
}

TEST(RelErr, BasicProperties) {
  EXPECT_DOUBLE_EQ(rel_err(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_err(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(rel_err(0.9, 1.0), 0.1, 1e-12);
  // Symmetric in deviation against the reference in the second slot.
  EXPECT_GT(rel_err(2.0, 1.0), rel_err(1.5, 1.0));
}

TEST(RelErr, TinyReferenceDoesNotDivideByZero) {
  EXPECT_TRUE(std::isfinite(rel_err(1.0, 0.0)));
}

TEST(Base4Digit, ExtractsDigits) {
  // 27 = 123 in base 4.
  EXPECT_EQ(base4_digit(27, 0), 3);
  EXPECT_EQ(base4_digit(27, 1), 2);
  EXPECT_EQ(base4_digit(27, 2), 1);
  EXPECT_EQ(base4_digit(27, 3), 0);
}

TEST(Base4Digit, MatchesDivMod) {
  for (std::int64_t v : {0, 1, 5, 63, 255, 1023}) {
    std::int64_t q = v;
    for (int d = 0; d < 5; ++d) {
      EXPECT_EQ(base4_digit(v, d), q % 4) << "v=" << v << " d=" << d;
      q /= 4;
    }
  }
}

// Regression: double_bits once digested -0.0 and +0.0 as distinct words,
// so a retuned model whose signed delta arithmetic left a negative zero
// missed the cache entry of the value-identical rebuilt model.
TEST(DoubleBits, SignedZerosDigestEqually) {
  EXPECT_EQ(double_bits(-0.0), double_bits(0.0));
  EXPECT_EQ(hash_mix_double(17u, -0.0), hash_mix_double(17u, 0.0));
  // And only zero is collapsed: the neighboring denormals stay distinct.
  constexpr double tiny = std::numeric_limits<double>::denorm_min();
  EXPECT_NE(double_bits(tiny), double_bits(0.0));
  EXPECT_NE(double_bits(-tiny), double_bits(tiny));
}

TEST(DoubleBits, DocumentedNanPolicyIsPayloadBits) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  // Same bit pattern => same digest word (no canonicalization applied)...
  EXPECT_EQ(double_bits(qnan), double_bits(qnan));
  // ...and a different payload stays distinct.
  EXPECT_NE(double_bits(qnan), double_bits(-qnan));
}

}  // namespace
}  // namespace wormnet::util

// Tests for the result Table.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace wormnet::util {
namespace {

TEST(Table, HeaderAndRowRoundTrip) {
  Table t({"a", "b"});
  t.add_row({1.0, std::string("x")});
  EXPECT_EQ(t.rows(), 1);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.num(0, 0), 1.0);
  EXPECT_EQ(std::get<std::string>(t.at(0, 1)), "x");
}

TEST(Table, NumOnNonNumericIsNaN) {
  Table t({"a"});
  t.add_row({std::string("text")});
  EXPECT_TRUE(std::isnan(t.num(0, 0)));
}

TEST(Table, ColIndexLookup) {
  Table t({"load", "latency"});
  EXPECT_EQ(t.col_index("load"), 0);
  EXPECT_EQ(t.col_index("latency"), 1);
  EXPECT_EQ(t.col_index("absent"), -1);
}

TEST(Table, IncrementalRowBuilding) {
  Table t({"x", "y", "z"});
  t.begin_row();
  t.push(1.0);
  t.push(2.0);
  t.push(std::monostate{});
  EXPECT_EQ(t.rows(), 1);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(t.at(0, 2)));
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 10.25});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("10.2500"), std::string::npos);  // default precision 4
  EXPECT_NE(s.find("----"), std::string::npos);     // header rule
}

TEST(Table, PrecisionControl) {
  Table t({"v"});
  t.set_precision(0, 1);
  t.add_row({3.14159});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("3.1"), std::string::npos);
  EXPECT_EQ(out.str().find("3.14"), std::string::npos);
}

TEST(Table, CsvQuotesCommasAndQuotes) {
  Table t({"a", "b"});
  t.add_row({std::string("x,y"), std::string("say \"hi\"")});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_NE(out.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, SpecialDoublesRender) {
  Table t({"v"});
  t.add_row({std::numeric_limits<double>::infinity()});
  t.add_row({std::numeric_limits<double>::quiet_NaN()});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("inf"), std::string::npos);
  EXPECT_NE(out.str().find("nan"), std::string::npos);
}

TEST(Table, EmptyCellRendersDash) {
  Table t({"v"});
  t.add_row({std::monostate{}});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find('-'), std::string::npos);
}

}  // namespace
}  // namespace wormnet::util

// Basic simulator timing tests: uncontended worms have exactly the model's
// zero-load latency D + s_f - 1 on every topology.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet::sim {
namespace {

SimConfig scripted_config(int worm_flits) {
  SimConfig cfg;
  cfg.worm_flits = worm_flits;
  cfg.warmup_cycles = 0;
  // Scripted runs end on delivery; a wide window keeps every delivery
  // inside the throughput-accounting interval.
  cfg.measure_cycles = 1'000'000;
  cfg.max_cycles = 2'000'000;
  return cfg;
}

TEST(SimBasic, FatTreeSameLeafSwitch) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(16));
  s.add_message(0, 0, 1);  // D = 2
  const SimResult r = s.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.latency.count(), 1);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 2 + 16 - 1);
  EXPECT_DOUBLE_EQ(r.distance.mean(), 2);
  EXPECT_DOUBLE_EQ(r.queue_wait.mean(), 0);
  EXPECT_DOUBLE_EQ(r.inj_service.mean(), 16);
}

TEST(SimBasic, FatTreeAcrossTheRoot) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(16));
  s.add_message(0, 0, 15);  // LCA level 2, D = 4
  const SimResult r = s.run();
  EXPECT_DOUBLE_EQ(r.latency.mean(), 4 + 16 - 1);
  EXPECT_DOUBLE_EQ(r.distance.mean(), 4);
}

TEST(SimBasic, SingleFlitWorm) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(1));
  s.add_message(0, 3, 12);
  const SimResult r = s.run();
  const int d = ft.distance(3, 12);
  EXPECT_DOUBLE_EQ(r.latency.mean(), d);  // D + 1 - 1
}

TEST(SimBasic, DelayedScriptedInjection) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(8));
  s.add_message(100, 5, 9);
  const SimResult r = s.run();
  const int d = ft.distance(5, 9);
  EXPECT_DOUBLE_EQ(r.latency.mean(), d + 8 - 1);  // latency counted from gen
  EXPECT_GE(r.cycles_run, 100 + d + 8 - 1);
}

TEST(SimBasic, WormMuchLongerThanPath) {
  topo::ButterflyFatTree ft(1);  // tiny network, D = 2
  SimNetwork net(ft);
  Simulator s(net, scripted_config(64));
  s.add_message(0, 0, 3);
  const SimResult r = s.run();
  EXPECT_DOUBLE_EQ(r.latency.mean(), 2 + 64 - 1);
}

// Uncontended latency across all topologies and worm lengths.
class ZeroLoadExactness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ZeroLoadExactness, FatTree) {
  const auto [levels, sf] = GetParam();
  topo::ButterflyFatTree ft(levels);
  SimNetwork net(ft);
  // A handful of src/dst pairs at different LCA levels, far apart in time
  // so they never interact.
  const int pairs[][2] = {{0, 1}, {0, ft.num_processors() - 1}, {2, 3}};
  long t = 0;
  Simulator s(net, scripted_config(sf));
  for (const auto& p : pairs) {
    s.add_message(t, p[0], p[1]);
    t += 10'000;
  }
  const SimResult r = s.run();
  EXPECT_EQ(r.latency.count(), 3);
  // Mean latency equals mean distance + s_f - 1 exactly.
  EXPECT_DOUBLE_EQ(r.latency.mean(), r.distance.mean() + sf - 1);
}

TEST_P(ZeroLoadExactness, Hypercube) {
  const auto [dims, sf] = GetParam();
  topo::Hypercube hc(dims + 1);  // reuse the level parameter as dims-1
  SimNetwork net(hc);
  Simulator s(net, scripted_config(sf));
  s.add_message(0, 0, hc.num_processors() - 1);  // max Hamming distance
  const SimResult r = s.run();
  EXPECT_DOUBLE_EQ(r.latency.mean(), hc.distance(0, hc.num_processors() - 1) + sf - 1);
}

TEST_P(ZeroLoadExactness, Mesh) {
  const auto [k, sf] = GetParam();
  topo::Mesh m(k + 2, 2);  // radix 3..6
  SimNetwork net(m);
  Simulator s(net, scripted_config(sf));
  s.add_message(0, 0, m.num_processors() - 1);  // corner to corner
  const SimResult r = s.run();
  EXPECT_DOUBLE_EQ(r.latency.mean(),
                   m.distance(0, m.num_processors() - 1) + sf - 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZeroLoadExactness,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(8, 16, 33)));

TEST(SimBasic, ResultAccountingFieldsConsistent) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg = scripted_config(16);
  Simulator s(net, cfg);
  s.add_message(0, 0, 9);
  s.add_message(0, 4, 2);
  const SimResult r = s.run();
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.latency.count(), 2);
  EXPECT_EQ(r.delivered_messages, 2);
  EXPECT_EQ(r.delivered_flits, 32);
}

}  // namespace
}  // namespace wormnet::sim

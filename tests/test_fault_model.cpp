// Fault layer: topo::FaultSet / topo::FaultedTopology structure, the
// connectivity fail-fast checks, graceful degradation through
// build_traffic_model, and the retune_faults delta path's parity with a
// cold build on the faulted view.  Plus the solver-hardening fuzz: random
// fault sets x topologies x patterns x loads must keep Kirchhoff
// conservation on the surviving flows and never emit NaN/Inf from the
// channel solver (the SolveStatus contract).
#include "topo/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/traffic_model.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/channels.hpp"
#include "topo/graph_checks.hpp"
#include "topo/hypercube.hpp"

namespace wormnet {
namespace {

// BFT(2): processors 0..15, level-1 switches s1_*, level-2 switches s2_*.
// Each level-1 switch has parent links to BOTH top switches, so any single
// failure leaves every pair connected (the paper's two-server redundancy).

topo::ButterflyFatTree bft2() { return topo::ButterflyFatTree(2); }

// ---------------------------------------------------------------------------
// FaultSet structure.
// ---------------------------------------------------------------------------

TEST(FaultSet, LinkFailureIsUndirectedAndCanonical) {
  const topo::ButterflyFatTree ft = bft2();
  const int s1 = ft.switch_id(1, 0);
  const int peer = ft.neighbor(s1, topo::ButterflyFatTree::kParentPort0);
  const int back = ft.neighbor_port(s1, topo::ButterflyFatTree::kParentPort0);

  topo::FaultSet from_child(ft);
  from_child.fail_link(s1, topo::ButterflyFatTree::kParentPort0);
  topo::FaultSet from_parent(ft);
  from_parent.fail_link(peer, back);

  for (const topo::FaultSet* fs : {&from_child, &from_parent}) {
    EXPECT_FALSE(fs->empty());
    EXPECT_EQ(fs->failed_links().size(), 1u);
    EXPECT_TRUE(fs->link_failed(s1, topo::ButterflyFatTree::kParentPort0));
    EXPECT_TRUE(fs->link_failed(peer, back));
    EXPECT_FALSE(fs->link_failed(s1, topo::ButterflyFatTree::kParentPort1));
  }
  // Either endpoint names the same undirected link: same canonical record,
  // same digest — the query engine's variant key cannot split on naming.
  EXPECT_EQ(from_child.failed_links(), from_parent.failed_links());
  EXPECT_EQ(from_child.digest(), from_parent.digest());
}

TEST(FaultSet, DigestIsOrderInsensitive) {
  const topo::ButterflyFatTree ft = bft2();
  const int a = ft.switch_id(1, 0);
  const int b = ft.switch_id(1, 1);
  topo::FaultSet ab(ft);
  ab.fail_link(a, topo::ButterflyFatTree::kParentPort0);
  ab.fail_link(b, topo::ButterflyFatTree::kParentPort1);
  topo::FaultSet ba(ft);
  ba.fail_link(b, topo::ButterflyFatTree::kParentPort1);
  ba.fail_link(a, topo::ButterflyFatTree::kParentPort0);
  EXPECT_EQ(ab.digest(), ba.digest());
  EXPECT_NE(ab.digest(), 0u);

  topo::FaultSet other(ft);
  other.fail_link(a, topo::ButterflyFatTree::kParentPort0);
  EXPECT_NE(other.digest(), ab.digest());
}

TEST(FaultSet, SwitchFailureExpandsToItsLinks) {
  const topo::ButterflyFatTree ft = bft2();
  // A top-level switch has four connected child ports and no processor
  // neighbors — the one kind of switch that may fail wholesale on BFT(2).
  const int top = ft.switch_id(2, 0);
  topo::FaultSet fs(ft);
  fs.fail_switch(top);
  EXPECT_EQ(fs.failed_switches(), std::vector<int>{top});
  EXPECT_EQ(fs.failed_links().size(), 4u);
  for (int port = 0; port < 4; ++port)
    EXPECT_TRUE(fs.link_failed(top, port)) << "port " << port;
}

// ---------------------------------------------------------------------------
// FaultedTopology: stable structure, degraded routing.
// ---------------------------------------------------------------------------

TEST(FaultedTopology, ChannelStructureMatchesBase) {
  const topo::ButterflyFatTree ft = bft2();
  topo::FaultSet fs(ft);
  fs.fail_link(ft.switch_id(1, 0), topo::ButterflyFatTree::kParentPort0);
  const topo::FaultedTopology view(ft, fs);

  ASSERT_EQ(view.num_nodes(), ft.num_nodes());
  ASSERT_EQ(view.num_processors(), ft.num_processors());
  const topo::ChannelTable base_ct(ft);
  const topo::ChannelTable fault_ct(view);
  // Dead links still enumerate: per-channel arrays stay index-aligned
  // between the healthy and degraded views (the retune-not-rebuild enabler).
  ASSERT_EQ(fault_ct.size(), base_ct.size());
  for (int id = 0; id < base_ct.size(); ++id) {
    EXPECT_EQ(fault_ct.at(id).src_node, base_ct.at(id).src_node);
    EXPECT_EQ(fault_ct.at(id).src_port, base_ct.at(id).src_port);
  }
}

TEST(FaultedTopology, SingleUpLinkFailureKeepsEveryPairReachable) {
  const topo::ButterflyFatTree ft = bft2();
  const int s1 = ft.switch_id(1, 0);
  topo::FaultSet fs(ft);
  fs.fail_link(s1, topo::ButterflyFatTree::kParentPort0);
  const topo::FaultedTopology view(ft, fs);

  EXPECT_FALSE(view.link_ok(s1, topo::ButterflyFatTree::kParentPort0));
  EXPECT_TRUE(view.link_ok(s1, topo::ButterflyFatTree::kParentPort1));
  EXPECT_FALSE(view.first_unreachable_pair().has_value());
  EXPECT_EQ(view.unreachable_pair_fraction(), 0.0);
  // The redundant parent absorbs the reroute with no distance penalty.
  for (int s = 0; s < ft.num_processors(); ++s)
    for (int d = 0; d < ft.num_processors(); ++d) {
      if (s == d) continue;
      ASSERT_TRUE(view.reachable(s, d)) << s << "->" << d;
      EXPECT_EQ(view.distance(s, d), ft.distance(s, d)) << s << "->" << d;
    }
  EXPECT_NEAR(view.mean_distance(), ft.mean_distance(), 1e-12);

  // Routing invariants hold on the survivor graph (minimal progress,
  // distance == BFS) and routes never cross the dead link.
  EXPECT_TRUE(topo::verify_topology(view).ok());
  const int dead_peer = ft.neighbor(s1, topo::ButterflyFatTree::kParentPort0);
  for (int s = 0; s < 4; ++s)
    for (int d = 4; d < ft.num_processors(); ++d) {
      const std::vector<int> path = topo::trace_route(view, s, d);
      ASSERT_FALSE(path.empty()) << s << "->" << d;
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_FALSE(path[i] == s1 && path[i + 1] == dead_peer)
            << "route " << s << "->" << d << " crossed the failed link";
    }
}

TEST(FaultedTopology, CutSwitchReportsUnreachablePairs) {
  const topo::ButterflyFatTree ft = bft2();
  const int s1 = ft.switch_id(1, 0);  // serves processors 0..3
  topo::FaultSet fs(ft);
  fs.fail_link(s1, topo::ButterflyFatTree::kParentPort0);
  fs.fail_link(s1, topo::ButterflyFatTree::kParentPort1);
  const topo::FaultedTopology view(ft, fs);

  // 0..3 are severed from 4..15 (both directions): 4 * 12 * 2 of the
  // 16 * 15 ordered pairs.
  EXPECT_FALSE(view.reachable(0, 4));
  EXPECT_FALSE(view.reachable(4, 0));
  EXPECT_TRUE(view.reachable(0, 3));    // intra-block survives
  EXPECT_TRUE(view.reachable(4, 15));   // the rest of the fabric survives
  EXPECT_NEAR(view.unreachable_pair_fraction(), 96.0 / 240.0, 1e-12);
  ASSERT_TRUE(view.first_unreachable_pair().has_value());
  const auto [ws, wd] = *view.first_unreachable_pair();
  EXPECT_FALSE(view.reachable(ws, wd));
  // Routing invariants still hold on the pairs that carry traffic.
  EXPECT_TRUE(topo::verify_topology(view).ok());
}

// ---------------------------------------------------------------------------
// Connectivity fail-fast (graph_checks).
// ---------------------------------------------------------------------------

TEST(Connectivity, HealthyAndNMinus1FabricsPass) {
  const topo::ButterflyFatTree ft = bft2();
  EXPECT_TRUE(topo::check_connectivity(ft).connected);
  EXPECT_NO_THROW(topo::require_connected(ft));

  topo::FaultSet fs(ft);
  fs.fail_link(ft.switch_id(1, 2), topo::ButterflyFatTree::kParentPort1);
  const topo::FaultedTopology view(ft, fs);
  const topo::ConnectivityReport rep = topo::check_connectivity(view);
  EXPECT_TRUE(rep.connected);
  EXPECT_EQ(rep.unreachable_pairs, 0);
  EXPECT_NO_THROW(topo::require_connected(view));
}

TEST(Connectivity, DisconnectedFabricNamesTheFirstPair) {
  const topo::ButterflyFatTree ft = bft2();
  const int s1 = ft.switch_id(1, 0);
  topo::FaultSet fs(ft);
  fs.fail_link(s1, topo::ButterflyFatTree::kParentPort0);
  fs.fail_link(s1, topo::ButterflyFatTree::kParentPort1);
  const topo::FaultedTopology view(ft, fs);

  const topo::ConnectivityReport rep = topo::check_connectivity(view);
  EXPECT_FALSE(rep.connected);
  EXPECT_EQ(rep.unreachable_pairs, 96);
  EXPECT_GE(rep.first_src, 0);
  EXPECT_GE(rep.first_dst, 0);
  EXPECT_FALSE(view.reachable(rep.first_src, rep.first_dst));
  EXPECT_FALSE(rep.message.empty());

  try {
    topo::require_connected(view);
    FAIL() << "require_connected accepted a cut fabric";
  } catch (const std::runtime_error& e) {
    // The thrown message names the witness pair — the fail-fast answer.
    EXPECT_NE(std::string(e.what()).find(std::to_string(rep.first_dst)),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation through build_traffic_model.
// ---------------------------------------------------------------------------

TEST(FaultModel, NMinus1ModelServesAllDemandWithStatusOk) {
  const topo::ButterflyFatTree ft = bft2();
  topo::FaultSet fs(ft);
  fs.fail_link(ft.switch_id(1, 0), topo::ButterflyFatTree::kParentPort0);
  const topo::FaultedTopology view(ft, fs);

  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  const core::GeneralModel m =
      core::build_traffic_model(view, traffic::TrafficSpec::uniform(), opts);
  EXPECT_EQ(m.unroutable_fraction, 0.0);

  // The dead link's two directed channels carry exactly zero flow; the
  // surviving parent link carries the rerouted share.
  const topo::ChannelTable ct(view);
  const int s1 = ft.switch_id(1, 0);
  const int up0 = ct.from(s1, topo::ButterflyFatTree::kParentPort0);
  const int up1 = ct.from(s1, topo::ButterflyFatTree::kParentPort1);
  EXPECT_EQ(m.graph.at(up0).rate_per_link, 0.0);
  EXPECT_GT(m.graph.at(up1).rate_per_link, 0.0);

  const double sat = core::model_saturation_rate(m, opts);
  ASSERT_GT(sat, 0.0);
  const core::LatencyEstimate est = core::model_latency(m, 0.3 * sat, opts);
  EXPECT_EQ(est.status, core::SolveStatus::Ok);
  EXPECT_EQ(est.unroutable_fraction, 0.0);
  EXPECT_TRUE(est.stable);
  EXPECT_TRUE(std::isfinite(est.latency));

  // Losing a link can only cost capacity: degraded saturation <= healthy.
  const core::GeneralModel healthy =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform(), opts);
  EXPECT_LE(sat, core::model_saturation_rate(healthy, opts) * (1.0 + 1e-12));
}

TEST(FaultModel, CutFabricReportsDisconnectedNotNaN) {
  const topo::ButterflyFatTree ft = bft2();
  const int s1 = ft.switch_id(1, 0);
  topo::FaultSet fs(ft);
  fs.fail_link(s1, topo::ButterflyFatTree::kParentPort0);
  fs.fail_link(s1, topo::ButterflyFatTree::kParentPort1);
  const topo::FaultedTopology view(ft, fs);

  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  const core::GeneralModel m =
      core::build_traffic_model(view, traffic::TrafficSpec::uniform(), opts);
  // Uniform traffic: unroutable demand == unreachable pair fraction.
  EXPECT_NEAR(m.unroutable_fraction, 96.0 / 240.0, 1e-12);

  const double sat = core::model_saturation_rate(m, opts);
  ASSERT_GT(sat, 0.0);
  const core::LatencyEstimate est = core::model_latency(m, 0.3 * sat, opts);
  // The carried demand is served — stable — but the answer is flagged.
  EXPECT_EQ(est.status, core::SolveStatus::Disconnected);
  EXPECT_NEAR(est.unroutable_fraction, 96.0 / 240.0, 1e-12);
  EXPECT_TRUE(est.stable);
  EXPECT_TRUE(std::isfinite(est.latency));

  // Saturated answers keep the status ladder: never NaN, status Saturated.
  const core::LatencyEstimate hot = core::model_latency(m, 1.2 * sat, opts);
  EXPECT_EQ(hot.status, core::SolveStatus::Saturated);
  EXPECT_FALSE(std::isnan(hot.latency));
  EXPECT_FALSE(std::isnan(hot.inj_wait));
}

// ---------------------------------------------------------------------------
// retune_faults: delta parity with a cold build on the faulted view.
// ---------------------------------------------------------------------------

void expect_model_parity(const core::GeneralModel& got,
                         const core::GeneralModel& want,
                         const core::SolveOptions& opts,
                         const std::string& tag) {
  ASSERT_EQ(got.graph.size(), want.graph.size()) << tag;
  for (int id = 0; id < want.graph.size(); ++id) {
    const double w = want.graph.at(id).rate_per_link;
    EXPECT_NEAR(got.graph.at(id).rate_per_link, w,
                1e-12 * std::max(1.0, std::abs(w)))
        << tag << " channel " << id;
  }
  EXPECT_NEAR(got.unroutable_fraction, want.unroutable_fraction, 1e-12) << tag;
  EXPECT_NEAR(got.mean_distance, want.mean_distance,
              1e-12 * want.mean_distance)
      << tag;
  const double sat = core::model_saturation_rate(want, opts);
  EXPECT_NEAR(core::model_saturation_rate(got, opts), sat, 1e-9 * sat) << tag;
  const core::LatencyEstimate a = core::model_latency(got, 0.4 * sat, opts);
  const core::LatencyEstimate b = core::model_latency(want, 0.4 * sat, opts);
  EXPECT_NEAR(a.latency, b.latency, 1e-9 * b.latency) << tag;
}

TEST(FaultRetune, DenseResidentRetunesToColdFaultedBuild) {
  const topo::ButterflyFatTree ft = bft2();
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  core::RetunableTrafficModel resident(ft, traffic::TrafficSpec::uniform(),
                                       opts);
  const core::GeneralModel healthy_cold =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform(), opts);

  auto fs = std::make_shared<topo::FaultSet>(ft);
  fs->fail_link(ft.switch_id(1, 1), topo::ButterflyFatTree::kParentPort0);
  const core::RetuneReport rep = resident.retune_faults(fs);
  // The contract availability sweeps rely on: dense never rebuilds for a
  // fault, and only the affected destination columns re-propagate.
  EXPECT_FALSE(rep.rebuilt);
  EXPECT_GT(rep.passes, 0);
  EXPECT_LE(rep.passes, 2 * ft.num_processors());
  ASSERT_NE(resident.faults(), nullptr);
  EXPECT_EQ(resident.faults()->digest(), fs->digest());

  const topo::FaultedTopology view(ft, *fs);
  const core::GeneralModel cold =
      core::build_traffic_model(view, traffic::TrafficSpec::uniform(), opts);
  expect_model_parity(resident.model(), cold, opts, "N-1 retune");

  // Round-trip: back to healthy restores the resident content at the delta
  // path's documented 1e-12 bar (the signed re-propagation re-associates
  // floating sums, so bit identity is not promised — parity is).
  const core::RetuneReport back = resident.retune_faults(nullptr);
  EXPECT_FALSE(back.rebuilt);
  EXPECT_EQ(resident.faults(), nullptr);
  expect_model_parity(resident.model(), healthy_cold, opts, "healthy return");

  // Same degraded state twice is a no-op.
  resident.retune_faults(fs);
  const core::RetuneReport again = resident.retune_faults(fs);
  EXPECT_EQ(again.passes, 0);
}

TEST(FaultRetune, RecordedTunesSurviveFaultRetunes) {
  const topo::ButterflyFatTree ft = bft2();
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  core::RetunableTrafficModel resident(ft, traffic::TrafficSpec::uniform(),
                                       opts);
  resident.set_uniform_lanes(2);
  resident.scale_injection_rates(1.5);

  auto fs = std::make_shared<topo::FaultSet>(ft);
  fs->fail_link(ft.switch_id(1, 0), topo::ButterflyFatTree::kParentPort1);
  resident.retune_faults(fs);

  const topo::FaultedTopology view(ft, *fs);
  core::GeneralModel cold =
      core::build_traffic_model(view, traffic::TrafficSpec::uniform(), opts);
  cold.set_uniform_lanes(2);
  cold.scale_injection_rates(1.5);
  expect_model_parity(resident.model(), cold, opts, "lanes+load across fault");
}

TEST(FaultRetune, CollapsedResidentRebuildsDenseAndRecollapses) {
  const topo::ButterflyFatTree ft = bft2();
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  core::TrafficBuildOptions build;
  build.collapse = core::CollapseMode::Auto;
  core::RetunableTrafficModel resident(ft, traffic::TrafficSpec::uniform(),
                                       opts, build);
  ASSERT_TRUE(resident.collapsed());

  auto fs = std::make_shared<topo::FaultSet>(ft);
  fs->fail_link(ft.switch_id(1, 3), topo::ButterflyFatTree::kParentPort0);
  const core::RetuneReport rep = resident.retune_faults(fs);
  // Faults void the declared symmetry: the resident rebuilds dense, says so,
  // and matches the dense cold build on the faulted view.
  EXPECT_TRUE(rep.rebuilt);
  EXPECT_FALSE(resident.collapsed());
  const topo::FaultedTopology view(ft, *fs);
  const core::GeneralModel cold =
      core::build_traffic_model(view, traffic::TrafficSpec::uniform(), opts);
  expect_model_parity(resident.model(), cold, opts, "collapsed->faulted");

  // Returning to healthy serves via the dense delta path (the resident is
  // dense now, so no rebuild) and matches the healthy reference — it simply
  // stays dense rather than re-collapsing.
  const core::RetuneReport back = resident.retune_faults(nullptr);
  EXPECT_FALSE(back.rebuilt);
  expect_model_parity(
      resident.model(),
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform(), opts),
      opts, "collapsed->faulted->healthy");
}

TEST(FaultRetune, EmptyFaultSetKeepsResidualSymmetry) {
  const topo::ButterflyFatTree ft = bft2();
  const topo::FaultSet empty(ft);
  const topo::FaultedTopology view(ft, empty);
  // An empty fault view forwards the base symmetry hooks unchanged, so the
  // collapsed builder still produces the quotient model — the baseline of
  // availability sweeps stays O(classes).
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  const core::GeneralModel quotient = core::build_traffic_model_collapsed(
      view, traffic::TrafficSpec::uniform(), opts);
  ASSERT_FALSE(quotient.channel_class_of.empty());
  EXPECT_EQ(core::check_collapsed_parity(view, traffic::TrafficSpec::uniform(),
                                         quotient, opts),
            "");
}

// ---------------------------------------------------------------------------
// Solver-hardening fuzz: random fault sets x topologies x patterns x loads.
// ---------------------------------------------------------------------------

/// Every failable (switch-to-switch) undirected link, canonical endpoint.
std::vector<std::pair<int, int>> failable_links(const topo::Topology& t) {
  std::vector<std::pair<int, int>> links;
  for (int node = 0; node < t.num_nodes(); ++node) {
    if (t.is_processor(node)) continue;
    for (int port = 0; port < t.num_ports(node); ++port) {
      const int peer = t.neighbor(node, port);
      if (peer == topo::kNoNode || t.is_processor(peer)) continue;
      if (std::make_pair(peer, t.neighbor_port(node, port)) <
          std::make_pair(node, port))
        continue;
      links.emplace_back(node, port);
    }
  }
  return links;
}

/// Kirchhoff on the survivors: every switch forwards exactly what it
/// receives, network-wide injection equals ejection, dead channels carry
/// nothing, and the solver's outputs are NaN-free at every probed load.
void fuzz_one(const topo::Topology& base, const traffic::TrafficSpec& spec,
              int k, std::uint64_t seed, const std::string& tag) {
  std::mt19937_64 rng(seed);
  std::vector<std::pair<int, int>> links = failable_links(base);
  ASSERT_GT(links.size(), static_cast<std::size_t>(k)) << tag;
  std::shuffle(links.begin(), links.end(), rng);

  topo::FaultSet fs(base);
  for (int i = 0; i < k; ++i) fs.fail_link(links[i].first, links[i].second);
  const topo::FaultedTopology view(base, fs);

  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  const core::GeneralModel m = core::build_traffic_model(view, spec, opts);
  EXPECT_GE(m.unroutable_fraction, 0.0) << tag;
  EXPECT_LE(m.unroutable_fraction, 1.0) << tag;
  EXPECT_NEAR(m.unroutable_fraction > 0.0 ? 1.0 : 0.0,
              view.first_unreachable_pair().has_value() ? 1.0 : 0.0, 0.5)
      << tag << ": unroutable demand disagrees with reachability"
      << " (pattern may skip the cut pairs only when weights are zero)";

  const topo::ChannelTable ct(view);
  std::vector<double> in_rate(static_cast<std::size_t>(view.num_nodes()), 0.0);
  std::vector<double> out_rate(static_cast<std::size_t>(view.num_nodes()), 0.0);
  double injected = 0.0, ejected = 0.0;
  for (int id = 0; id < ct.size(); ++id) {
    const topo::DirectedChannel& c = ct.at(id);
    const double rate = m.graph.at(id).rate_per_link;
    ASSERT_TRUE(std::isfinite(rate)) << tag << " channel " << id;
    EXPECT_GE(rate, -1e-12) << tag << " channel " << id;
    if (!view.link_ok(c.src_node, c.src_port)) {
      EXPECT_EQ(rate, 0.0) << tag << ": dead channel " << id << " carries flow";
    }
    out_rate[static_cast<std::size_t>(c.src_node)] += rate;
    in_rate[static_cast<std::size_t>(ct.at(ct.reverse(id)).src_node)] += rate;
    if (view.is_processor(c.src_node)) injected += rate;
    if (view.is_processor(ct.at(ct.reverse(id)).src_node)) ejected += rate;
  }
  for (int node = 0; node < view.num_nodes(); ++node) {
    if (view.is_processor(node)) continue;
    EXPECT_NEAR(in_rate[static_cast<std::size_t>(node)],
                out_rate[static_cast<std::size_t>(node)], 1e-9)
        << tag << ": switch " << node << " creates or destroys flow";
  }
  EXPECT_NEAR(injected, ejected, 1e-9) << tag;

  // The solver never emits NaN at any load, saturated or not.
  const double sat = core::model_saturation_rate(m, opts);
  ASSERT_GT(sat, 0.0) << tag;
  ASSERT_TRUE(std::isfinite(sat)) << tag;
  for (const double frac : {0.2, 0.7, 1.3}) {
    const core::SolveResult sol = m.solve(frac * sat);
    for (std::size_t c = 0; c < sol.channels.size(); ++c) {
      EXPECT_FALSE(std::isnan(sol.channels[c].utilization))
          << tag << " frac " << frac << " channel " << c;
      EXPECT_FALSE(std::isnan(sol.channels[c].wait))
          << tag << " frac " << frac << " channel " << c;
      EXPECT_FALSE(std::isnan(sol.channels[c].service_time))
          << tag << " frac " << frac << " channel " << c;
    }
    const core::LatencyEstimate est = core::model_latency(m, frac * sat, opts);
    EXPECT_FALSE(std::isnan(est.latency)) << tag << " frac " << frac;
    EXPECT_FALSE(std::isnan(est.inj_wait)) << tag << " frac " << frac;
    if (!std::isfinite(est.latency)) {
      EXPECT_TRUE(est.status == core::SolveStatus::Saturated ||
                  est.status == core::SolveStatus::Infeasible)
          << tag << " frac " << frac
          << ": non-finite latency with status " << to_string(est.status);
    }
  }
}

TEST(FaultFuzz, RandomFaultsKeepConservationAndFiniteSolves) {
  const topo::ButterflyFatTree ft = bft2();
  const topo::Hypercube hc(3);
  const std::vector<const topo::Topology*> topos{&ft, &hc};
  const std::vector<traffic::TrafficSpec> specs{
      traffic::TrafficSpec::uniform(),
      traffic::TrafficSpec::hotspot(0.2),
      traffic::TrafficSpec::transpose(),
  };
  std::uint64_t seed = 1097;
  for (const topo::Topology* t : topos) {
    for (const traffic::TrafficSpec& spec : specs) {
      if (!spec.check(t->num_processors()).empty()) continue;
      for (const int k : {1, 2, 3}) {
        fuzz_one(*t, spec, k, ++seed,
                 t->name() + "/" + spec.name() + "/k=" + std::to_string(k));
      }
    }
  }
}

}  // namespace
}  // namespace wormnet

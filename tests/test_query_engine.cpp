// Tests for the what-if layer (ctest label: query): delta-retune vs
// cold-rebuild parity across topologies × delta axes, the QueryEngine's
// batch determinism (parallel bitwise-identical to serial), dedup /
// memoization accounting, and the collapsed-resident retune case.
//
// Parity contract under test (traffic_model.hpp): after any retune
// sequence the resident agrees with a cold build of the current spec to
// ≤ 1e-12 on every channel rate / self_frac / ca2 and ≤ 1e-9 on latency
// and saturation.
#include "harness/query_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/traffic_model.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet::harness {
namespace {

constexpr double kStateTol = 1e-12;   // rates / self_frac / ca2
constexpr double kMetricTol = 1e-9;   // latency / saturation (relative)

double rel(double a, double b) {
  const double mag = std::max(std::abs(a), std::abs(b));
  return mag == 0.0 ? 0.0 : std::abs(a - b) / mag;
}

/// Full parity check of a retuned resident against a cold rebuild.
void expect_parity(const core::GeneralModel& got, const core::GeneralModel& want,
                   double lambda0, const char* tag) {
  ASSERT_EQ(got.graph.size(), want.graph.size()) << tag;
  for (int id = 0; id < got.graph.size(); ++id) {
    const auto& a = got.graph.at(id);
    const auto& b = want.graph.at(id);
    EXPECT_NEAR(a.rate_per_link, b.rate_per_link, kStateTol)
        << tag << " ch " << id;
    EXPECT_NEAR(a.self_frac, b.self_frac, kStateTol) << tag << " ch " << id;
    EXPECT_NEAR(a.ca2, b.ca2, kStateTol) << tag << " ch " << id;
    EXPECT_EQ(a.lanes, b.lanes) << tag << " ch " << id;
    ASSERT_EQ(a.next.size(), b.next.size()) << tag << " ch " << id;
  }
  EXPECT_NEAR(got.mean_distance, want.mean_distance, kStateTol) << tag;
  const auto ea = got.evaluate(lambda0);
  const auto eb = want.evaluate(lambda0);
  EXPECT_EQ(ea.stable, eb.stable) << tag;
  if (ea.stable) {
    EXPECT_LE(rel(ea.latency, eb.latency), kMetricTol) << tag;
  }
  EXPECT_LE(rel(got.saturation_rate(), want.saturation_rate()), kMetricTol)
      << tag;
}

/// The three dense reference topologies the parity matrix runs over.
struct TopoCase {
  const char* tag;
  std::unique_ptr<topo::Topology> topo;
};

std::vector<TopoCase> parity_topologies() {
  std::vector<TopoCase> cases;
  cases.push_back({"fattree64", std::make_unique<topo::ButterflyFatTree>(3)});
  cases.push_back({"hypercube16", std::make_unique<topo::Hypercube>(4)});
  cases.push_back({"mesh4x4", std::make_unique<topo::Mesh>(4, 2)});
  return cases;
}

// ---------------------------------------------------------------------------
// Delta axis 1: pattern (retune_traffic).

TEST(RetunableTrafficModel, HotspotMoveDeltaParity) {
  // Moving a hotspot touches O(N) pairs — the delta path, not a rebuild.
  for (const TopoCase& tc : parity_topologies()) {
    core::RetunableTrafficModel rm(*tc.topo,
                                   traffic::TrafficSpec::hotspot(0.3, 1));
    const auto report =
        rm.retune_traffic(traffic::TrafficSpec::hotspot(0.3, 2));
    EXPECT_FALSE(report.rebuilt) << tc.tag;
    EXPECT_GT(report.passes, 0) << tc.tag;
    EXPECT_GT(report.changed_pairs, 0) << tc.tag;
    const auto cold = core::build_traffic_model(
        *tc.topo, traffic::TrafficSpec::hotspot(0.3, 2));
    expect_parity(rm.model(), cold, 0.002, tc.tag);
  }
}

TEST(RetunableTrafficModel, PermutationRewireDeltaParity) {
  for (const TopoCase& tc : parity_topologies()) {
    const int n = tc.topo->num_processors();
    std::vector<int> p1(n), p2(n);
    for (int i = 0; i < n; ++i) p1[i] = (i + 1) % n;
    for (int i = 0; i < n; ++i) p2[i] = (i + 3) % n;
    core::RetunableTrafficModel rm(*tc.topo,
                                   traffic::TrafficSpec::permutation(p1));
    const auto report =
        rm.retune_traffic(traffic::TrafficSpec::permutation(p2));
    EXPECT_FALSE(report.rebuilt) << tc.tag;
    const auto cold = core::build_traffic_model(
        *tc.topo, traffic::TrafficSpec::permutation(p2));
    expect_parity(rm.model(), cold, 0.002, tc.tag);
  }
}

TEST(RetunableTrafficModel, WholeMatrixChangeFallsBackToRebuildWithParity) {
  // uniform → nearest-neighbor changes every pair: the planner must choose
  // the cold rebuild — and still land exactly on the cold model.
  for (const TopoCase& tc : parity_topologies()) {
    core::RetunableTrafficModel rm(*tc.topo, traffic::TrafficSpec::uniform());
    const auto report =
        rm.retune_traffic(traffic::TrafficSpec::nearest_neighbor(0.6));
    EXPECT_TRUE(report.rebuilt) << tc.tag;
    const auto cold = core::build_traffic_model(
        *tc.topo, traffic::TrafficSpec::nearest_neighbor(0.6));
    expect_parity(rm.model(), cold, 0.002, tc.tag);
  }
}

TEST(RetunableTrafficModel, RetuneChainEndsWhereColdBuildDoes) {
  // A long mixed chain must not accumulate drift beyond the contract.
  const topo::Hypercube hc(4);
  core::RetunableTrafficModel rm(hc, traffic::TrafficSpec::hotspot(0.1, 0));
  for (int step = 1; step <= 8; ++step)
    rm.retune_traffic(
        traffic::TrafficSpec::hotspot(0.05 + 0.03 * step, step % 16));
  const auto cold = core::build_traffic_model(
      hc, traffic::TrafficSpec::hotspot(0.05 + 0.03 * 8, 8));
  expect_parity(rm.model(), cold, 0.002, "chain");
}

// ---------------------------------------------------------------------------
// Delta axis 2: lanes (bitwise contract).

TEST(RetunableTrafficModel, LaneDeltaBitwiseIdenticalToTopologyRebuild) {
  for (const TopoCase& tc : parity_topologies()) {
    core::RetunableTrafficModel rm(*tc.topo,
                                   traffic::TrafficSpec::hotspot(0.2, 1));
    rm.set_uniform_lanes(4);

    // Cold reference: same topology shape rebuilt with 4 lanes everywhere.
    auto fresh = [&]() -> std::unique_ptr<topo::Topology> {
      if (std::string(tc.tag) == "fattree64")
        return std::make_unique<topo::ButterflyFatTree>(3);
      if (std::string(tc.tag) == "hypercube16")
        return std::make_unique<topo::Hypercube>(4);
      return std::make_unique<topo::Mesh>(4, 2);
    }();
    fresh->set_uniform_lanes(4);
    const auto cold = core::build_traffic_model(
        *fresh, traffic::TrafficSpec::hotspot(0.2, 1));

    // Lanes enter the solve only through ChannelClass::lanes — bitwise.
    ASSERT_EQ(rm.model().graph.size(), cold.graph.size()) << tc.tag;
    for (int id = 0; id < cold.graph.size(); ++id) {
      EXPECT_EQ(rm.model().graph.at(id).rate_per_link,
                cold.graph.at(id).rate_per_link)
          << tc.tag << " ch " << id;
      EXPECT_EQ(rm.model().graph.at(id).lanes, cold.graph.at(id).lanes)
          << tc.tag << " ch " << id;
    }
    EXPECT_EQ(rm.model().evaluate(0.002).latency, cold.evaluate(0.002).latency)
        << tc.tag;
  }
}

TEST(RetunableTrafficModel, LaneTuneSurvivesRetune) {
  const topo::ButterflyFatTree ft(2);
  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::hotspot(0.2, 3));
  rm.set_uniform_lanes(4);
  rm.retune_traffic(traffic::TrafficSpec::hotspot(0.2, 9));
  topo::ButterflyFatTree ft4(2);
  ft4.set_uniform_lanes(4);
  const auto cold =
      core::build_traffic_model(ft4, traffic::TrafficSpec::hotspot(0.2, 9));
  expect_parity(rm.model(), cold, 0.003, "lanes survive");
}

// ---------------------------------------------------------------------------
// Delta axis 3: load (scale_injection_rates).

TEST(RetunableTrafficModel, LoadDeltaMatchesScaledLambdaEvaluation) {
  for (const TopoCase& tc : parity_topologies()) {
    core::RetunableTrafficModel rm(*tc.topo, traffic::TrafficSpec::uniform());
    rm.scale_injection_rates(1.25);
    const auto cold =
        core::build_traffic_model(*tc.topo, traffic::TrafficSpec::uniform());
    const auto scaled = rm.model().evaluate(0.004);
    const auto ref = cold.evaluate(0.004 * 1.25);
    EXPECT_LE(rel(scaled.latency, ref.latency), kMetricTol) << tc.tag;
    // The channel state is identical up to the scaling, so the injection
    // service time (what saturation is defined through) agrees too.  Note
    // λ₀* itself does NOT scale by 1/1.25: Eq. 26's λ·x̄_inj(λ) = 1 puts λ
    // on both sides.
    EXPECT_LE(rel(scaled.inj_service, ref.inj_service), kMetricTol) << tc.tag;
  }
}

TEST(RetunableTrafficModel, LoadScaleComposesAndSurvivesRetune) {
  const topo::Hypercube hc(4);
  core::RetunableTrafficModel rm(hc, traffic::TrafficSpec::hotspot(0.2, 1));
  rm.scale_injection_rates(1.5);
  rm.scale_injection_rates(0.8);  // composes to 1.2
  rm.retune_traffic(traffic::TrafficSpec::hotspot(0.2, 7));
  const auto cold = core::build_traffic_model(
      hc, traffic::TrafficSpec::hotspot(0.2, 7));
  const auto got = rm.model().evaluate(0.004);
  const auto ref = cold.evaluate(0.004 * 1.2);
  EXPECT_LE(rel(got.latency, ref.latency), kMetricTol);
}

// ---------------------------------------------------------------------------
// Delta axis 4: arrival process.

TEST(RetunableTrafficModel, ArrivalDeltaParityAndSurvivesRetune) {
  for (const TopoCase& tc : parity_topologies()) {
    core::RetunableTrafficModel rm(*tc.topo,
                                   traffic::TrafficSpec::hotspot(0.2, 1));
    rm.set_injection_process(arrivals::ArrivalSpec::batch(4.0));
    rm.retune_traffic(traffic::TrafficSpec::hotspot(0.2, 2));
    auto cold = core::build_traffic_model(
        *tc.topo, traffic::TrafficSpec::hotspot(0.2, 2));
    cold.set_injection_process(arrivals::ArrivalSpec::batch(4.0));
    expect_parity(rm.model(), cold, 0.001, tc.tag);
    EXPECT_NEAR(rm.model().arrival_ca2(), cold.arrival_ca2(), kStateTol);
    EXPECT_NEAR(rm.model().arrival_batch_residual(),
                cold.arrival_batch_residual(), kStateTol);
  }
}

// ---------------------------------------------------------------------------
// Collapsed-resident retune (composition with the PR 6 orbit path).

TEST(RetunableTrafficModel, CollapsedResidentRetunesOnOrbitPath) {
  const topo::ButterflyFatTree ft(3);
  core::TrafficBuildOptions build;
  build.collapse = core::CollapseMode::Auto;
  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::hotspot(0.1, 0),
                                 {}, build);
  ASSERT_TRUE(rm.collapsed());
  const auto report =
      rm.retune_traffic(traffic::TrafficSpec::hotspot(0.25, 0));
  EXPECT_TRUE(report.collapsed);
  EXPECT_FALSE(report.rebuilt);
  EXPECT_TRUE(rm.collapsed());
  const auto cold = core::build_traffic_model_collapsed(
      ft, traffic::TrafficSpec::hotspot(0.25, 0));
  expect_parity(rm.model(), cold, 0.002, "collapsed hotspot fraction");
}

TEST(RetunableTrafficModel, CollapsedResidentFallsToDenseOnAsymmetricSpec) {
  // A permutation breaks the symmetry: the resident must rebuild densely
  // (no flow state to delta against) and still match the cold dense model.
  const topo::Hypercube hc(4);
  core::TrafficBuildOptions build;
  build.collapse = core::CollapseMode::Auto;
  core::RetunableTrafficModel rm(hc, traffic::TrafficSpec::uniform(), {},
                                 build);
  ASSERT_TRUE(rm.collapsed());
  std::vector<int> perm(16);
  for (int i = 0; i < 16; ++i) perm[i] = (i + 5) % 16;
  const auto report =
      rm.retune_traffic(traffic::TrafficSpec::permutation(perm));
  EXPECT_TRUE(report.rebuilt);
  EXPECT_FALSE(rm.collapsed());
  const auto cold = core::build_traffic_model(
      hc, traffic::TrafficSpec::permutation(perm), {}, build);
  expect_parity(rm.model(), cold, 0.002, "collapsed→dense");
}

// ---------------------------------------------------------------------------
// QueryEngine: batch behavior.

std::vector<WhatIfQuery> mixed_batch(int num_processors) {
  std::vector<WhatIfQuery> batch;
  for (int node = 0; node < 6; ++node) {
    WhatIfQuery q;
    q.traffic = traffic::TrafficSpec::hotspot(0.25, node % num_processors);
    q.lambda0 = 0.002;
    batch.push_back(q);
  }
  {
    WhatIfQuery q;
    q.lanes = 4;
    q.metric = QueryMetric::Saturation;
    batch.push_back(q);
  }
  {
    WhatIfQuery q;
    q.load_scale = 1.2;
    q.lambda0 = 0.002;
    batch.push_back(q);
  }
  {
    WhatIfQuery q;
    q.arrival = arrivals::ArrivalSpec::batch(4.0);
    q.lambda0 = 0.002;
    batch.push_back(q);
  }
  {
    WhatIfQuery q;
    q.lambda0 = 0.002;
    q.metric = QueryMetric::ClassBreakdown;
    batch.push_back(q);
  }
  {
    WhatIfQuery q;  // combined axes
    q.traffic = traffic::TrafficSpec::hotspot(0.3, 2 % num_processors);
    q.lanes = 2;
    q.load_scale = 0.9;
    q.lambda0 = 0.0015;
    batch.push_back(q);
  }
  batch.push_back(batch[0]);  // exact duplicate → Memoized
  return batch;
}

TEST(QueryEngine, ParallelBatchBitwiseIdenticalToSerial) {
  const topo::ButterflyFatTree ft(3);
  const auto batch = mixed_batch(ft.num_processors());

  QueryEngine::Options par;
  par.threads = 4;
  par.parallel = true;
  QueryEngine::Options ser;
  ser.parallel = false;
  QueryEngine qpar(ft, traffic::TrafficSpec::uniform(), par);
  QueryEngine qser(ft, traffic::TrafficSpec::uniform(), ser);

  const auto rp = qpar.run_batch(batch);
  const auto rs = qser.run_batch(batch);
  ASSERT_EQ(rp.size(), rs.size());
  for (std::size_t i = 0; i < rp.size(); ++i) {
    EXPECT_EQ(rp[i].cost, rs[i].cost) << "i=" << i;
    // Bitwise: exact double equality on every answer field.
    EXPECT_EQ(rp[i].est.latency, rs[i].est.latency) << "i=" << i;
    EXPECT_EQ(rp[i].est.inj_wait, rs[i].est.inj_wait) << "i=" << i;
    EXPECT_EQ(rp[i].saturation_rate, rs[i].saturation_rate) << "i=" << i;
    ASSERT_EQ(rp[i].breakdown.size(), rs[i].breakdown.size()) << "i=" << i;
    for (std::size_t k = 0; k < rp[i].breakdown.size(); ++k) {
      EXPECT_EQ(rp[i].breakdown[k].utilization, rs[i].breakdown[k].utilization);
      EXPECT_EQ(rp[i].breakdown[k].wait, rs[i].breakdown[k].wait);
      EXPECT_EQ(rp[i].breakdown[k].rate, rs[i].breakdown[k].rate);
    }
  }
}

TEST(QueryEngine, AnswersMatchColdRebuiltModels) {
  // Every delta axis answered by the engine must match a from-scratch model
  // carrying the same configuration.
  for (const TopoCase& tc : parity_topologies()) {
    QueryEngine qe(*tc.topo, traffic::TrafficSpec::uniform());

    {  // pattern delta
      WhatIfQuery q;
      q.traffic = traffic::TrafficSpec::hotspot(0.25, 1);
      q.lambda0 = 0.002;
      const auto res = qe.run(q);
      const auto cold = core::build_traffic_model(
          *tc.topo, traffic::TrafficSpec::hotspot(0.25, 1));
      EXPECT_LE(rel(res.est.latency, cold.evaluate(0.002).latency), kMetricTol)
          << tc.tag;
    }
    {  // lane delta
      WhatIfQuery q;
      q.lanes = 4;
      q.metric = QueryMetric::Saturation;
      const auto res = qe.run(q);
      auto cold =
          core::build_traffic_model(*tc.topo, traffic::TrafficSpec::uniform());
      cold.set_uniform_lanes(4);
      EXPECT_LE(rel(res.saturation_rate, cold.saturation_rate()), kMetricTol)
          << tc.tag;
    }
    {  // load delta: engine at λ with scale f ≡ cold at λ·f
      WhatIfQuery q;
      q.load_scale = 1.3;
      q.lambda0 = 0.002;
      const auto res = qe.run(q);
      const auto cold =
          core::build_traffic_model(*tc.topo, traffic::TrafficSpec::uniform());
      EXPECT_LE(rel(res.est.latency, cold.evaluate(0.002 * 1.3).latency),
                kMetricTol)
          << tc.tag;
    }
    {  // arrival delta
      WhatIfQuery q;
      q.arrival = arrivals::ArrivalSpec::on_off(0.4, 8.0);
      q.lambda0 = 0.0015;
      const auto res = qe.run(q);
      auto cold =
          core::build_traffic_model(*tc.topo, traffic::TrafficSpec::uniform());
      cold.set_injection_process(arrivals::ArrivalSpec::on_off(0.4, 8.0),
                                 0.0015);
      EXPECT_LE(rel(res.est.latency, cold.evaluate(0.0015).latency), kMetricTol)
          << tc.tag;
    }
  }
}

TEST(QueryEngine, CostClassesReflectThePlannedWork) {
  const topo::ButterflyFatTree ft(3);
  QueryEngine qe(ft, traffic::TrafficSpec::hotspot(0.2, 1));

  {  // hotspot move: delta-served
    WhatIfQuery q;
    q.traffic = traffic::TrafficSpec::hotspot(0.2, 5);
    q.lambda0 = 0.002;
    const auto res = qe.run(q);
    EXPECT_EQ(res.cost, QueryCost::Retune);
    EXPECT_FALSE(res.retune.rebuilt);
    EXPECT_GT(res.retune.passes, 0);
  }
  {  // whole-matrix change: rebuild, and metered as such
    WhatIfQuery q;
    q.traffic = traffic::TrafficSpec::nearest_neighbor(0.5);
    q.lambda0 = 0.002;
    const auto res = qe.run(q);
    EXPECT_EQ(res.cost, QueryCost::Rebuild);
    EXPECT_TRUE(res.retune.rebuilt);
  }
  {  // tune-only axes: reevaluate
    WhatIfQuery q;
    q.lanes = 2;
    q.load_scale = 1.1;
    q.lambda0 = 0.002;
    EXPECT_EQ(qe.run(q).cost, QueryCost::Reevaluate);
  }
  {  // identical repeat: memoized
    WhatIfQuery q;
    q.lanes = 2;
    q.load_scale = 1.1;
    q.lambda0 = 0.002;
    EXPECT_EQ(qe.run(q).cost, QueryCost::Memoized);
  }
  EXPECT_EQ(qe.queries_served(), 4u);
  EXPECT_EQ(qe.served_retune(), 1u);
  EXPECT_EQ(qe.served_rebuild(), 1u);
  EXPECT_EQ(qe.served_reevaluate(), 1u);
  EXPECT_EQ(qe.served_memoized(), 1u);
}

TEST(QueryEngine, DedupSharesVariantsAndMemoizesAcrossBatches) {
  const topo::ButterflyFatTree ft(3);
  QueryEngine qe(ft, traffic::TrafficSpec::uniform());

  // Three queries, one variant (same hotspot delta), two distinct λs.
  std::vector<WhatIfQuery> batch(3);
  for (auto& q : batch) q.traffic = traffic::TrafficSpec::hotspot(0.2, 3);
  batch[0].lambda0 = 0.002;
  batch[1].lambda0 = 0.003;
  batch[2].lambda0 = 0.002;  // duplicate of [0]
  const auto res = qe.run_batch(batch);
  EXPECT_EQ(qe.variants_prepared(), 1u);
  EXPECT_EQ(res[2].cost, QueryCost::Memoized);
  EXPECT_EQ(res[2].est.latency, res[0].est.latency);

  // The whole batch again: all memoized, no new variants.
  const auto res2 = qe.run_batch(batch);
  for (const auto& r : res2) EXPECT_EQ(r.cost, QueryCost::Memoized);
  EXPECT_EQ(qe.variants_prepared(), 1u);
  EXPECT_EQ(res2[1].est.latency, res[1].est.latency);
}

TEST(QueryEngine, CollapsedResidentServesSymmetricDeltasOnOrbitPath) {
  const topo::ButterflyFatTree ft(3);
  QueryEngine::Options opts;
  opts.build.collapse = core::CollapseMode::Auto;
  QueryEngine qe(ft, traffic::TrafficSpec::uniform(), opts);
  ASSERT_TRUE(qe.resident_model(0).collapsed());

  WhatIfQuery q;
  q.traffic = traffic::TrafficSpec::hotspot(0.3, 0);
  q.lambda0 = 0.002;
  const auto res = qe.run(q);
  EXPECT_EQ(res.cost, QueryCost::Retune);
  EXPECT_TRUE(res.retune.collapsed);
  const auto cold = core::build_traffic_model(
      ft, traffic::TrafficSpec::hotspot(0.3, 0));
  EXPECT_LE(rel(res.est.latency, cold.evaluate(0.002).latency), kMetricTol);
}

TEST(QueryEngine, ResidentRegistryDedupsByTopologyAndSpec) {
  const topo::ButterflyFatTree ft(2);
  const topo::Hypercube hc(4);
  QueryEngine qe;
  const int a = qe.resident(ft, traffic::TrafficSpec::uniform());
  const int b = qe.resident(ft, traffic::TrafficSpec::uniform());
  const int c = qe.resident(ft, traffic::TrafficSpec::hotspot(0.2, 0));
  const int d = qe.resident(hc, traffic::TrafficSpec::uniform());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(qe.num_residents(), 3u);

  WhatIfQuery q;
  q.lambda0 = 0.002;
  EXPECT_GT(qe.run(d, q).est.latency, 0.0);
}

TEST(QueryEngine, ClassBreakdownRowsMatchDirectSolve) {
  const topo::Hypercube hc(4);
  QueryEngine qe(hc, traffic::TrafficSpec::uniform());
  WhatIfQuery q;
  q.metric = QueryMetric::ClassBreakdown;
  q.lambda0 = 0.003;
  const auto res = qe.run(q);
  const auto cold =
      core::build_traffic_model(hc, traffic::TrafficSpec::uniform());
  const auto sol = cold.solve(0.003);
  ASSERT_EQ(static_cast<int>(res.breakdown.size()), cold.graph.size());
  for (int id = 0; id < cold.graph.size(); ++id) {
    const auto& row = res.breakdown[static_cast<std::size_t>(id)];
    EXPECT_EQ(row.class_id, id);
    EXPECT_NEAR(row.utilization, sol.utilization(id), kMetricTol);
    EXPECT_NEAR(row.wait, sol.wait(id), kMetricTol);
    EXPECT_NEAR(row.rate, cold.graph.at(id).rate_per_link * 0.003, kStateTol);
  }
}

}  // namespace
}  // namespace wormnet::harness

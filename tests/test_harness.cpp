// Tests for the experiment harness.
#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fattree_model.hpp"
#include "topo/butterfly_fattree.hpp"

namespace wormnet::harness {
namespace {

core::FatTreeModel fattree_model(int levels, double worm_flits) {
  return core::FatTreeModel({.levels = levels, .worm_flits = worm_flits});
}

SweepConfig small_sweep() {
  SweepConfig cfg;
  cfg.loads = {0.01, 0.03, 0.05};
  cfg.worm_flits = 16;
  cfg.seed = 42;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 15'000;
  cfg.max_cycles = 200'000;
  return cfg;
}

TEST(Harness, CompareLatencyProducesOneRowPerLoad) {
  topo::ButterflyFatTree ft(2);
  const core::FatTreeModel model = fattree_model(2, 16.0);
  const auto rows = compare_latency(ft, model, small_sweep());
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rows[i].load, small_sweep().loads[i]);
    EXPECT_TRUE(rows[i].model_stable);
    EXPECT_GT(rows[i].sim_messages, 0);
    EXPECT_GT(rows[i].sim_latency, 16.0);
    EXPECT_GT(rows[i].model_latency, 16.0);
  }
}

TEST(Harness, ModelAndSimAgreeInHarnessRun) {
  topo::ButterflyFatTree ft(2);
  const core::FatTreeModel model = fattree_model(2, 16.0);
  const auto rows = compare_latency(ft, model, small_sweep());
  const double mape = mean_abs_pct_error(rows);
  EXPECT_TRUE(std::isfinite(mape));
  EXPECT_LT(mape, 10.0);  // percent
}

TEST(Harness, CompareLatencyAcceptsSharedEngine) {
  // Re-running the same sweep through one engine must reuse every model
  // point (cache hits) and reproduce the rows exactly.
  topo::ButterflyFatTree ft(2);
  const core::FatTreeModel model = fattree_model(2, 16.0);
  SweepEngine engine;
  const auto a = compare_latency(ft, model, small_sweep(), &engine);
  const std::uint64_t misses_after_first = engine.cache_misses();
  const auto b = compare_latency(ft, model, small_sweep(), &engine);
  EXPECT_EQ(engine.cache_misses(), misses_after_first);
  EXPECT_GE(engine.cache_hits(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model_latency, b[i].model_latency);
    EXPECT_EQ(a[i].sim_latency, b[i].sim_latency);
  }
}

TEST(Harness, ComparisonTableShape) {
  topo::ButterflyFatTree ft(2);
  const core::FatTreeModel model = fattree_model(2, 16.0);
  const auto rows = compare_latency(ft, model, small_sweep());
  const util::Table t = comparison_table(rows);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.col_index("load(flits/cyc)"), 0);
  EXPECT_GE(t.col_index("sim_latency"), 0);
  // Numeric round-trip.
  EXPECT_NEAR(t.num(0, 0), 0.01, 1e-12);
  EXPECT_NEAR(t.num(1, t.col_index("model_latency")), rows[1].model_latency, 1e-9);
}

TEST(Harness, ModelOnlySweepHasNoSimData) {
  const core::FatTreeModel model = fattree_model(3, 16.0);
  const auto rows = model_only_sweep(model, small_sweep());
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& r : rows) {
    EXPECT_TRUE(std::isnan(r.sim_latency));
    EXPECT_EQ(r.sim_messages, 0);
    EXPECT_TRUE(std::isfinite(r.model_latency));
  }
}

TEST(Harness, MapeIgnoresSaturatedPoints) {
  std::vector<ComparisonRow> rows(2);
  rows[0].model_latency = 100.0;
  rows[0].sim_latency = 110.0;
  rows[0].model_stable = true;
  rows[0].sim_messages = 10;
  rows[1].model_latency = std::numeric_limits<double>::infinity();
  rows[1].model_stable = false;
  rows[1].sim_messages = 10;
  rows[1].sim_latency = 500.0;
  EXPECT_NEAR(mean_abs_pct_error(rows), 10.0 / 110.0 * 100.0, 1e-9);
}

TEST(Harness, ThroughputComparisonRatioNearOne) {
  topo::ButterflyFatTree ft(2);
  core::FatTreeModel model({.levels = 2, .worm_flits = 16.0});
  const ThroughputRow row =
      compare_throughput(ft, model.saturation_load(), 16, 7, 5'000, 15'000);
  EXPECT_GT(row.sim_overload_throughput, 0.0);
  EXPECT_GT(row.ratio, 0.7);
  EXPECT_LT(row.ratio, 1.3);
}

TEST(Harness, SeedVariationPropagatesToPoints) {
  // Different base seeds must give different simulated latencies.
  topo::ButterflyFatTree ft(2);
  const core::FatTreeModel model = fattree_model(2, 16.0);
  SweepConfig a = small_sweep();
  SweepConfig b = small_sweep();
  b.seed = 4242;
  const auto ra = compare_latency(ft, model, a);
  const auto rb = compare_latency(ft, model, b);
  EXPECT_NE(ra[0].sim_latency, rb[0].sim_latency);
  // Model side is deterministic and identical.
  EXPECT_DOUBLE_EQ(ra[0].model_latency, rb[0].model_latency);
}

TEST(Harness, FractionLoadsCoverKneeAndPastSaturation) {
  const auto loads = fraction_loads(1.0);
  ASSERT_EQ(loads.size(), 12u);
  EXPECT_DOUBLE_EQ(loads.front(), 0.1);
  EXPECT_GT(loads.back(), 1.0);
  const auto stable_only = fraction_loads(1.0, /*include_past_saturation=*/false);
  ASSERT_EQ(stable_only.size(), 10u);
  EXPECT_LT(stable_only.back(), 1.0);
}

}  // namespace
}  // namespace wormnet::harness

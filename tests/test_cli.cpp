// Tests for the minimal CLI parser.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace wormnet::util {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Cli, StringAndDefaults) {
  Args a = make({"--name=fred"});
  EXPECT_EQ(a.get("name", "x"), "fred");
  EXPECT_EQ(a.get("missing", "fallback"), "fallback");
}

TEST(Cli, IntAndDouble) {
  Args a = make({"--n=64", "--load=0.035"});
  EXPECT_EQ(a.get_int("n", 0), 64);
  EXPECT_DOUBLE_EQ(a.get_double("load", 0.0), 0.035);
  EXPECT_EQ(a.get_int("absent", -7), -7);
}

TEST(Cli, BoolForms) {
  Args a = make({"--flag", "--on=true", "--off=false", "--zero=0", "--one=1"});
  EXPECT_TRUE(a.get_bool("flag", false));
  EXPECT_TRUE(a.get_bool("on", false));
  EXPECT_FALSE(a.get_bool("off", true));
  EXPECT_FALSE(a.get_bool("zero", true));
  EXPECT_TRUE(a.get_bool("one", false));
  EXPECT_TRUE(a.get_bool("absent", true));
}

TEST(Cli, Has) {
  Args a = make({"--x"});
  EXPECT_TRUE(a.has("x"));
  EXPECT_FALSE(a.has("y"));
}

TEST(Cli, DoubleList) {
  Args a = make({"--loads=0.01,0.02,0.05"});
  const auto v = a.get_double_list("loads", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.01);
  EXPECT_DOUBLE_EQ(v[2], 0.05);
}

TEST(Cli, IntList) {
  Args a = make({"--sizes=16,32,64"});
  const auto v = a.get_int_list("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 32);
}

TEST(Cli, ListDefaultWhenAbsent) {
  Args a = make({});
  const auto v = a.get_double_list("loads", {1.0, 2.0});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(Cli, UnusedDetection) {
  Args a = make({"--used=1", "--typo=2"});
  EXPECT_EQ(a.get_int("used", 0), 1);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, PositionalArgumentThrows) {
  std::vector<const char*> v{"prog", "positional"};
  EXPECT_THROW(Args(static_cast<int>(v.size()), v.data()), std::invalid_argument);
}

TEST(Cli, ProgramName) {
  Args a = make({});
  EXPECT_EQ(a.program(), "prog");
}

}  // namespace
}  // namespace wormnet::util

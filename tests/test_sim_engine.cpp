// Tests for harness::SimEngine — the simulation-campaign twin of
// SweepEngine: cell/replication fan-out, per-cell aggregation, the
// shared-SimNetwork guarantee, and equivalence with directly-run
// Simulators.  (The parallel-vs-serial bitwise-determinism contract is
// asserted in tests/test_perf_guards.cpp, label `perf`.)
#include "harness/sim_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"

namespace wormnet::harness {
namespace {

sim::SimConfig small_open_loop(double load, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.load_flits = load;
  cfg.worm_flits = 16;
  cfg.seed = seed;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 6000;
  cfg.max_cycles = 100000;
  cfg.channel_stats = false;
  return cfg;
}

TEST(SimEngine, CellRunsMatchDirectSimulatorsExactly) {
  // A campaign is sugar, not semantics: every replication must equal the
  // Simulator run a caller would have made by hand with seed + rep.
  topo::ButterflyFatTree ft(2);
  SimCell cell;
  cell.topology = &ft;
  cell.cfg = small_open_loop(0.15, 42);
  cell.replications = 3;

  SimEngine engine;
  const SimCellResult out = engine.run_cell(cell);
  ASSERT_EQ(out.runs.size(), 3u);

  const sim::SimNetwork net(ft);
  for (int rep = 0; rep < 3; ++rep) {
    sim::SimConfig cfg = cell.cfg;
    cfg.seed += static_cast<std::uint64_t>(rep);
    sim::Simulator s(net, cfg);
    const sim::SimResult direct = s.run();
    const sim::SimResult& run = out.runs[static_cast<std::size_t>(rep)];
    EXPECT_EQ(run.cycles_run, direct.cycles_run) << "rep=" << rep;
    EXPECT_EQ(run.latency.count(), direct.latency.count()) << "rep=" << rep;
    EXPECT_EQ(run.latency.mean(), direct.latency.mean()) << "rep=" << rep;
    EXPECT_EQ(run.delivered_flits, direct.delivered_flits) << "rep=" << rep;
    EXPECT_EQ(run.throughput_flits_per_pe, direct.throughput_flits_per_pe);
  }
}

TEST(SimEngine, AggregatesMeanAndConfidenceAcrossReplications) {
  topo::ButterflyFatTree ft(2);
  SimCell cell;
  cell.topology = &ft;
  cell.cfg = small_open_loop(0.15, 7);
  cell.replications = 5;

  SimEngine engine;
  const SimCellResult out = engine.run_cell(cell);
  ASSERT_EQ(out.runs.size(), 5u);
  EXPECT_TRUE(out.all_completed);
  EXPECT_FALSE(out.any_saturated);

  // Distinct seeds produce distinct samples; the aggregate is their mean.
  double sum = 0.0;
  for (const sim::SimResult& r : out.runs) sum += r.latency.mean();
  EXPECT_EQ(out.latency.n, 5);
  EXPECT_NEAR(out.latency.mean, sum / 5.0, 1e-12);
  EXPECT_GT(out.latency.stddev, 0.0);
  EXPECT_TRUE(std::isfinite(out.latency.ci95));
  EXPECT_NEAR(out.latency.ci95, 1.96 * out.latency.stddev / std::sqrt(5.0), 1e-12);
  EXPECT_GT(out.throughput.mean, 0.0);
  // Single replication: a mean but no spread.
  cell.replications = 1;
  const SimCellResult one = engine.run_cell(cell);
  EXPECT_EQ(one.latency.n, 1);
  EXPECT_EQ(one.latency.mean, one.runs.front().latency.mean());
  EXPECT_TRUE(std::isnan(one.latency.ci95));
}

TEST(SimEngine, SharesOneNetworkPerTopology) {
  // Cells over the same Topology pointer must share one SimNetwork build;
  // distinct topologies get their own.
  topo::ButterflyFatTree ft(2);
  topo::Hypercube hc(3);
  std::vector<SimCell> cells(4);
  cells[0] = {&ft, small_open_loop(0.10, 1), 2, "ft-low"};
  cells[1] = {&ft, small_open_loop(0.20, 2), 1, "ft-high"};
  cells[2] = {&hc, small_open_loop(0.10, 3), 1, "hc-low"};
  cells[3] = {&ft, small_open_loop(0.15, 4), 1, "ft-mid"};

  SimEngine engine;
  const std::vector<SimCellResult> outs = engine.run_cells(cells);
  EXPECT_EQ(engine.networks_built(), 2u);  // one for ft, one for hc
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_EQ(outs[0].label, "ft-low");
  EXPECT_EQ(outs[0].runs.size(), 2u);
  EXPECT_EQ(outs[2].label, "hc-low");
  for (const SimCellResult& out : outs) EXPECT_TRUE(out.all_completed);
}

TEST(SimEngine, ThreadsReportTheBackingPool) {
  SimEngine parallel({/*threads=*/3, /*parallel=*/true});
  SimEngine serial({/*threads=*/0, /*parallel=*/false});
  EXPECT_EQ(parallel.threads(), 3u);
  EXPECT_EQ(serial.threads(), 1u);
}

TEST(SimEngine, OverloadCampaignMeasuresSaturationThroughput) {
  topo::ButterflyFatTree ft(2);
  SimCell cell;
  cell.topology = &ft;
  cell.cfg.arrivals = sim::ArrivalProcess::Overload;
  cell.cfg.worm_flits = 16;
  cell.cfg.seed = 11;
  cell.cfg.warmup_cycles = 1000;
  cell.cfg.measure_cycles = 5000;
  cell.cfg.channel_stats = false;
  cell.replications = 2;
  SimEngine engine;
  const SimCellResult out = engine.run_cell(cell);
  EXPECT_TRUE(out.all_completed);
  EXPECT_GT(out.throughput.mean, 0.0);
  EXPECT_LT(out.throughput.mean, 1.0);  // can't beat one flit/cycle/PE
}

TEST(SimEngine, CycleBudgetTruncatesInsteadOfWedging) {
  // A cell whose budget expires mid-run must come back truncated with its
  // partial metrics — the engine-level watchdog for degraded runs — and a
  // budget the run fits inside must change nothing.
  topo::ButterflyFatTree ft(2);
  SimCell cell;
  cell.topology = &ft;
  cell.cfg = small_open_loop(0.15, 21);
  cell.replications = 2;
  cell.cycle_budget = 2000;  // < warmup + measure: cannot finish

  SimEngine engine;
  const SimCellResult cut = engine.run_cell(cell);
  EXPECT_TRUE(cut.any_truncated);
  EXPECT_FALSE(cut.all_completed);
  for (const sim::SimResult& r : cut.runs) {
    EXPECT_TRUE(r.truncated);
    EXPECT_FALSE(r.completed);
    EXPECT_LE(r.cycles_run, 2000);
    EXPECT_GT(r.cycles_run, 0);
  }

  cell.cycle_budget = cell.cfg.max_cycles;  // generous: terminates inside it
  const SimCellResult full = engine.run_cell(cell);
  EXPECT_FALSE(full.any_truncated);
  EXPECT_TRUE(full.all_completed);
  // And bit-equal to the unbudgeted campaign: advance()+partial_result after
  // termination is exactly run().
  cell.cycle_budget = 0;
  const SimCellResult plain = engine.run_cell(cell);
  ASSERT_EQ(full.runs.size(), plain.runs.size());
  for (std::size_t i = 0; i < full.runs.size(); ++i) {
    EXPECT_EQ(full.runs[i].cycles_run, plain.runs[i].cycles_run);
    EXPECT_EQ(full.runs[i].latency.mean(), plain.runs[i].latency.mean());
    EXPECT_EQ(full.runs[i].delivered_flits, plain.runs[i].delivered_flits);
  }
}

TEST(SimEngine, ScriptedFaultCampaignCountsDropsAndRecovers) {
  // Scripted link faults through the campaign path.  A transient outage
  // shorter than the stall timeout strands nobody: stalled worms resume when
  // the link returns.  A permanent outage with a short timeout converts the
  // stranded worms into counted drops and the run still terminates.
  topo::ButterflyFatTree ft(2);
  const int s10 = ft.switch_id(1, 0);
  const int up0 = topo::ButterflyFatTree::kParentPort0;

  SimCell transient;
  transient.topology = &ft;
  transient.cfg = small_open_loop(0.15, 33);
  transient.cfg.fault_events = {{2000, s10, up0, false}, {4000, s10, up0, true}};
  transient.cfg.fault_stall_timeout = 50000;  // outlasts the outage
  transient.replications = 2;

  SimCell permanent;
  permanent.topology = &ft;
  permanent.cfg = small_open_loop(0.15, 33);
  permanent.cfg.fault_events = {{2000, s10, up0, false}};
  permanent.cfg.fault_stall_timeout = 500;  // drops preempt the wedge
  permanent.replications = 2;

  SimEngine engine;
  const std::vector<SimCellResult> outs =
      engine.run_cells({transient, permanent});
  ASSERT_EQ(outs.size(), 2u);

  EXPECT_TRUE(outs[0].all_completed);
  EXPECT_GT(outs[0].throughput.mean, 0.0);
  for (const sim::SimResult& r : outs[0].runs) {
    EXPECT_EQ(r.dropped_worms, 0);
    EXPECT_EQ(r.dropped_flits, 0);
  }

  EXPECT_TRUE(outs[1].all_completed);
  EXPECT_GT(outs[1].throughput.mean, 0.0);
  std::int64_t dropped = 0;
  for (const sim::SimResult& r : outs[1].runs) {
    dropped += r.dropped_worms;
    EXPECT_EQ(r.dropped_flits, r.dropped_worms * 16);
  }
  EXPECT_GT(dropped, 0);  // the dead up-link carried traffic at this load
}

}  // namespace
}  // namespace wormnet::harness

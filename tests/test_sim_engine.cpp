// Tests for harness::SimEngine — the simulation-campaign twin of
// SweepEngine: cell/replication fan-out, per-cell aggregation, the
// shared-SimNetwork guarantee, and equivalence with directly-run
// Simulators.  (The parallel-vs-serial bitwise-determinism contract is
// asserted in tests/test_perf_guards.cpp, label `perf`.)
#include "harness/sim_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"

namespace wormnet::harness {
namespace {

sim::SimConfig small_open_loop(double load, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.load_flits = load;
  cfg.worm_flits = 16;
  cfg.seed = seed;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 6000;
  cfg.max_cycles = 100000;
  cfg.channel_stats = false;
  return cfg;
}

TEST(SimEngine, CellRunsMatchDirectSimulatorsExactly) {
  // A campaign is sugar, not semantics: every replication must equal the
  // Simulator run a caller would have made by hand with seed + rep.
  topo::ButterflyFatTree ft(2);
  SimCell cell;
  cell.topology = &ft;
  cell.cfg = small_open_loop(0.15, 42);
  cell.replications = 3;

  SimEngine engine;
  const SimCellResult out = engine.run_cell(cell);
  ASSERT_EQ(out.runs.size(), 3u);

  const sim::SimNetwork net(ft);
  for (int rep = 0; rep < 3; ++rep) {
    sim::SimConfig cfg = cell.cfg;
    cfg.seed += static_cast<std::uint64_t>(rep);
    sim::Simulator s(net, cfg);
    const sim::SimResult direct = s.run();
    const sim::SimResult& run = out.runs[static_cast<std::size_t>(rep)];
    EXPECT_EQ(run.cycles_run, direct.cycles_run) << "rep=" << rep;
    EXPECT_EQ(run.latency.count(), direct.latency.count()) << "rep=" << rep;
    EXPECT_EQ(run.latency.mean(), direct.latency.mean()) << "rep=" << rep;
    EXPECT_EQ(run.delivered_flits, direct.delivered_flits) << "rep=" << rep;
    EXPECT_EQ(run.throughput_flits_per_pe, direct.throughput_flits_per_pe);
  }
}

TEST(SimEngine, AggregatesMeanAndConfidenceAcrossReplications) {
  topo::ButterflyFatTree ft(2);
  SimCell cell;
  cell.topology = &ft;
  cell.cfg = small_open_loop(0.15, 7);
  cell.replications = 5;

  SimEngine engine;
  const SimCellResult out = engine.run_cell(cell);
  ASSERT_EQ(out.runs.size(), 5u);
  EXPECT_TRUE(out.all_completed);
  EXPECT_FALSE(out.any_saturated);

  // Distinct seeds produce distinct samples; the aggregate is their mean.
  double sum = 0.0;
  for (const sim::SimResult& r : out.runs) sum += r.latency.mean();
  EXPECT_EQ(out.latency.n, 5);
  EXPECT_NEAR(out.latency.mean, sum / 5.0, 1e-12);
  EXPECT_GT(out.latency.stddev, 0.0);
  EXPECT_TRUE(std::isfinite(out.latency.ci95));
  EXPECT_NEAR(out.latency.ci95, 1.96 * out.latency.stddev / std::sqrt(5.0), 1e-12);
  EXPECT_GT(out.throughput.mean, 0.0);
  // Single replication: a mean but no spread.
  cell.replications = 1;
  const SimCellResult one = engine.run_cell(cell);
  EXPECT_EQ(one.latency.n, 1);
  EXPECT_EQ(one.latency.mean, one.runs.front().latency.mean());
  EXPECT_TRUE(std::isnan(one.latency.ci95));
}

TEST(SimEngine, SharesOneNetworkPerTopology) {
  // Cells over the same Topology pointer must share one SimNetwork build;
  // distinct topologies get their own.
  topo::ButterflyFatTree ft(2);
  topo::Hypercube hc(3);
  std::vector<SimCell> cells(4);
  cells[0] = {&ft, small_open_loop(0.10, 1), 2, "ft-low"};
  cells[1] = {&ft, small_open_loop(0.20, 2), 1, "ft-high"};
  cells[2] = {&hc, small_open_loop(0.10, 3), 1, "hc-low"};
  cells[3] = {&ft, small_open_loop(0.15, 4), 1, "ft-mid"};

  SimEngine engine;
  const std::vector<SimCellResult> outs = engine.run_cells(cells);
  EXPECT_EQ(engine.networks_built(), 2u);  // one for ft, one for hc
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_EQ(outs[0].label, "ft-low");
  EXPECT_EQ(outs[0].runs.size(), 2u);
  EXPECT_EQ(outs[2].label, "hc-low");
  for (const SimCellResult& out : outs) EXPECT_TRUE(out.all_completed);
}

TEST(SimEngine, ThreadsReportTheBackingPool) {
  SimEngine parallel({/*threads=*/3, /*parallel=*/true});
  SimEngine serial({/*threads=*/0, /*parallel=*/false});
  EXPECT_EQ(parallel.threads(), 3u);
  EXPECT_EQ(serial.threads(), 1u);
}

TEST(SimEngine, OverloadCampaignMeasuresSaturationThroughput) {
  topo::ButterflyFatTree ft(2);
  SimCell cell;
  cell.topology = &ft;
  cell.cfg.arrivals = sim::ArrivalProcess::Overload;
  cell.cfg.worm_flits = 16;
  cell.cfg.seed = 11;
  cell.cfg.warmup_cycles = 1000;
  cell.cfg.measure_cycles = 5000;
  cell.cfg.channel_stats = false;
  cell.replications = 2;
  SimEngine engine;
  const SimCellResult out = engine.run_cell(cell);
  EXPECT_TRUE(out.all_completed);
  EXPECT_GT(out.throughput.mean, 0.0);
  EXPECT_LT(out.throughput.mean, 1.0);  // can't beat one flit/cycle/PE
}

}  // namespace
}  // namespace wormnet::harness

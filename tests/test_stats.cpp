// Tests for RunningStats (Welford) and RateCounter.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace wormnet::util {
namespace {

TEST(RunningStats, EmptyStateIsNaNOrInf) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.variance()));
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_TRUE(std::isnan(s.variance()));
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(17);
  RunningStats whole, part1, part2;
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.uniform() * 10.0 - 5.0;
    whole.add(v);
    (i % 2 == 0 ? part1 : part2).add(v);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(part1.min(), whole.min());
  EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, SemShrinksWithN) {
  RunningStats small, large;
  Rng rng(18);
  for (int i = 0; i < 100; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10'000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.sem(), large.sem());
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  // Welford must not cancel catastrophically at mean ~1e9, variance ~1.
  RunningStats s;
  for (int i = 0; i < 1'000; ++i) s.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(s.mean(), 1e9, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25027, 0.05);
}

TEST(RunningStats, ClearResets) {
  RunningStats s;
  s.add(1.0);
  s.clear();
  EXPECT_EQ(s.count(), 0);
  EXPECT_TRUE(std::isnan(s.mean()));
}

TEST(RateCounter, BasicRate) {
  RateCounter c;
  c.hit();
  c.hit(4);
  c.set_elapsed(10.0);
  EXPECT_EQ(c.events(), 5);
  EXPECT_DOUBLE_EQ(c.rate(), 0.5);
}

TEST(RateCounter, NoWindowIsNaN) {
  RateCounter c;
  c.hit();
  EXPECT_TRUE(std::isnan(c.rate()));
}

}  // namespace
}  // namespace wormnet::util

// Model-vs-simulator conformance harness.
//
// The paper's central claim is that the analytical model tracks the
// flit-level simulation "very closely over a wide range of load rate".
// Before this suite, that claim was enforced only by ad-hoc checks for the
// fat-tree under uniform traffic (test_sim_vs_model.cpp); here it becomes a
// TABLE: every covered topology x pattern x lane-count cell is evaluated at
// 20% / 50% / 80% of the cell's own model saturation and the relative
// latency error |model - sim| / sim must stay inside the row's bound.
//
// Bound structure (the acceptance contract of the virtual-channel PR):
//  * below 80% load (the 20% and 50% points) every covered cell holds
//    within 15% — most hold far tighter, and the tier bounds encode that
//    (10% at 20% load, 15% at 50%);
//  * at 80% load the model's idealizations (no per-hop arbitration cycle,
//    additive multiplexing stretch) compound near the knee, so each row
//    carries its own measured-and-margined bound; the raw errors are
//    recorded in EXPERIMENTS.md.
//
// Every cell uses a fixed seed, so the suite is deterministic: a bound
// violation is a code regression, not noise.
//
// Execution: the whole table — 54 latency runs and 18 overload runs — is
// ONE harness::SimEngine campaign, computed lazily on first use and shared
// by every test.  The engine builds one SimNetwork per (topology, lanes)
// configuration (9, not 72) and fans the runs across the thread pool, so
// the suite's wall time scales with the core count; per-cell seeds and
// configs are unchanged from the serial version, so the measured numbers
// are bit-identical to running each cell by hand.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/traffic_model.hpp"
#include "harness/sim_engine.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet {
namespace {

enum class Topo { FatTree3, Mesh3ary3d, Hypercube4 };
enum class Pattern { Uniform, Hotspot10 };

struct Cell {
  Topo topo;
  Pattern pattern;
  int lanes;
  // Relative latency error bounds at 20% / 50% / 80% of model saturation.
  double bound20;
  double bound50;
  double bound80;
};

// Measured errors (recorded in EXPERIMENTS.md) plus regression margin.
// The below-80%-load contract: bound20 <= 0.10, bound50 <= 0.15 everywhere.
const Cell kCells[] = {
    // topo              pattern             L   20%   50%   80%
    {Topo::FatTree3,   Pattern::Uniform,    1, 0.10, 0.15, 0.20},
    {Topo::FatTree3,   Pattern::Uniform,    2, 0.10, 0.15, 0.50},
    {Topo::FatTree3,   Pattern::Uniform,    4, 0.10, 0.15, 0.50},
    {Topo::FatTree3,   Pattern::Hotspot10,  1, 0.10, 0.15, 0.15},
    {Topo::FatTree3,   Pattern::Hotspot10,  2, 0.10, 0.15, 0.42},
    {Topo::FatTree3,   Pattern::Hotspot10,  4, 0.10, 0.15, 0.30},
    {Topo::Mesh3ary3d,    Pattern::Uniform,    1, 0.10, 0.15, 0.30},
    {Topo::Mesh3ary3d,    Pattern::Uniform,    2, 0.10, 0.15, 0.45},
    {Topo::Mesh3ary3d,    Pattern::Uniform,    4, 0.10, 0.15, 0.25},
    {Topo::Mesh3ary3d,    Pattern::Hotspot10,  1, 0.10, 0.15, 0.15},
    {Topo::Mesh3ary3d,    Pattern::Hotspot10,  2, 0.10, 0.15, 0.35},
    {Topo::Mesh3ary3d,    Pattern::Hotspot10,  4, 0.10, 0.15, 0.35},
    {Topo::Hypercube4, Pattern::Uniform,    1, 0.10, 0.15, 0.33},
    {Topo::Hypercube4, Pattern::Uniform,    2, 0.10, 0.15, 0.45},
    {Topo::Hypercube4, Pattern::Uniform,    4, 0.10, 0.15, 0.28},
    {Topo::Hypercube4, Pattern::Hotspot10,  1, 0.10, 0.15, 0.20},
    {Topo::Hypercube4, Pattern::Hotspot10,  2, 0.10, 0.15, 0.42},
    {Topo::Hypercube4, Pattern::Hotspot10,  4, 0.10, 0.15, 0.37},
};
constexpr std::size_t kNumCells = std::size(kCells);
constexpr double kFracs[3] = {0.2, 0.5, 0.8};

std::unique_ptr<topo::Topology> make_topology(Topo t) {
  switch (t) {
    case Topo::FatTree3:
      return std::make_unique<topo::ButterflyFatTree>(3);
    case Topo::Mesh3ary3d:
      return std::make_unique<topo::Mesh>(3, 3);
    case Topo::Hypercube4:
      return std::make_unique<topo::Hypercube>(4);
  }
  return nullptr;
}

traffic::TrafficSpec make_pattern(Pattern p) {
  switch (p) {
    case Pattern::Uniform:
      return traffic::TrafficSpec::uniform();
    case Pattern::Hotspot10:
      return traffic::TrafficSpec::hotspot(0.1);
  }
  return traffic::TrafficSpec::uniform();
}

/// Everything the tests assert on, computed once for the whole table.
class Campaign {
 public:
  struct CellData {
    std::string model_name;
    double model_sat = 0.0;  ///< λ₀* (messages/cycle/PE)
    std::array<core::LatencyEstimate, 3> model{};
    std::array<sim::SimResult, 3> sim{};  ///< latency runs at kFracs
    sim::SimResult overload;              ///< closed-loop saturation probe
  };

  static const Campaign& get() {
    static Campaign instance;
    return instance;
  }

  const CellData& cell(std::size_t i) const { return cells_[i]; }

 private:
  Campaign() {
    // One topology object per (kind, lanes) — a SimNetwork snapshots the
    // lane count at construction, so each lane configuration needs its own
    // live topology for the shared-network campaign.
    auto topo_of = [this](Topo t, int lanes) -> const topo::Topology* {
      const std::size_t key =
          static_cast<std::size_t>(t) * 8 + static_cast<std::size_t>(lanes);
      auto it = topos_.find(key);
      if (it == topos_.end()) {
        std::unique_ptr<topo::Topology> topo = make_topology(t);
        topo->set_uniform_lanes(lanes);
        it = topos_.emplace(key, std::move(topo)).first;
      }
      return it->second.get();
    };

    // Model side: build + saturation + the three latency points per cell.
    cells_.resize(kNumCells);
    for (std::size_t i = 0; i < kNumCells; ++i) {
      const Cell& cell = kCells[i];
      const topo::Topology* topo = topo_of(cell.topo, cell.lanes);
      const traffic::TrafficSpec spec = make_pattern(cell.pattern);
      core::SolveOptions opts;
      opts.worm_flits = 16.0;
      const core::GeneralModel model = core::build_traffic_model(*topo, spec, opts);
      CellData& out = cells_[i];
      out.model_name = model.name();
      out.model_sat = core::model_saturation_rate(model, opts);
      for (int j = 0; j < 3; ++j) {
        out.model[static_cast<std::size_t>(j)] =
            core::model_latency(model, out.model_sat * kFracs[j], opts);
      }
    }

    // Simulation side: one campaign of 54 latency cells + 18 overload
    // cells.  Seeds and configs are exactly the pre-SimEngine per-cell
    // values, so every SimResult is bit-identical to the serial suite.
    std::vector<harness::SimCell> sim_cells;
    for (std::size_t i = 0; i < kNumCells; ++i) {
      const Cell& cell = kCells[i];
      const topo::Topology* topo = topo_of(cell.topo, cell.lanes);
      for (int j = 0; j < 3; ++j) {
        harness::SimCell sc;
        sc.topology = topo;
        sc.cfg.load_flits = cells_[i].model_sat * kFracs[j] * 16.0;
        sc.cfg.worm_flits = 16;
        sc.cfg.seed = 1000 + static_cast<std::uint64_t>(cell.lanes);
        sc.cfg.traffic = make_pattern(cell.pattern);
        sc.cfg.warmup_cycles = 8000;
        sc.cfg.measure_cycles = 40000;
        sc.cfg.max_cycles = 600000;
        sc.cfg.channel_stats = false;
        sim_cells.push_back(std::move(sc));
      }
    }
    for (std::size_t i = 0; i < kNumCells; ++i) {
      const Cell& cell = kCells[i];
      harness::SimCell sc;
      sc.topology = topo_of(cell.topo, cell.lanes);
      sc.cfg.arrivals = sim::ArrivalProcess::Overload;
      sc.cfg.worm_flits = 16;
      sc.cfg.seed = 7;
      sc.cfg.traffic = make_pattern(cell.pattern);
      sc.cfg.warmup_cycles = 5000;
      sc.cfg.measure_cycles = 20000;
      sc.cfg.channel_stats = false;
      sim_cells.push_back(std::move(sc));
    }

    harness::SimEngine engine;
    const std::vector<harness::SimCellResult> results = engine.run_cells(sim_cells);
    for (std::size_t i = 0; i < kNumCells; ++i) {
      for (int j = 0; j < 3; ++j) {
        cells_[i].sim[static_cast<std::size_t>(j)] =
            results[i * 3 + static_cast<std::size_t>(j)].runs.front();
      }
      cells_[i].overload = results[kNumCells * 3 + i].runs.front();
    }
  }

  std::map<std::size_t, std::unique_ptr<topo::Topology>> topos_;
  std::vector<CellData> cells_;
};

void check_cell(std::size_t index) {
  const Cell& cell = kCells[index];
  const Campaign::CellData& data = Campaign::get().cell(index);
  ASSERT_GT(data.model_sat, 0.0);

  const double bounds[] = {cell.bound20, cell.bound50, cell.bound80};
  for (int i = 0; i < 3; ++i) {
    const core::LatencyEstimate& est = data.model[static_cast<std::size_t>(i)];
    ASSERT_TRUE(est.stable)
        << data.model_name << " lanes=" << cell.lanes << " frac=" << kFracs[i];

    const sim::SimResult& r = data.sim[static_cast<std::size_t>(i)];
    ASSERT_TRUE(r.completed)
        << data.model_name << " lanes=" << cell.lanes << " frac=" << kFracs[i];
    ASSERT_FALSE(r.saturated)
        << data.model_name << " lanes=" << cell.lanes << " frac=" << kFracs[i];
    ASSERT_GT(r.latency.count(), 0);

    const double sim_latency = r.latency.mean();
    const double rel_err = std::abs(est.latency - sim_latency) / sim_latency;
    EXPECT_LE(rel_err, bounds[i])
        << data.model_name << " lanes=" << cell.lanes << " frac=" << kFracs[i]
        << ": model=" << est.latency << " sim=" << sim_latency;
  }
}

class Conformance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Conformance, LatencyWithinCellBounds) { check_cell(GetParam()); }

std::string cell_name(const ::testing::TestParamInfo<std::size_t>& info) {
  const Cell& c = kCells[info.param];
  std::string name;
  switch (c.topo) {
    case Topo::FatTree3: name = "FatTree3"; break;
    case Topo::Mesh3ary3d: name = "Mesh3ary3d"; break;
    case Topo::Hypercube4: name = "Hypercube4"; break;
  }
  name += c.pattern == Pattern::Uniform ? "Uniform" : "Hotspot10";
  name += "L";
  name += std::to_string(c.lanes);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Cells, Conformance,
                         ::testing::Range<std::size_t>(0, kNumCells),
                         cell_name);

// The saturation points themselves must agree: the model's Eq. 26 rate vs
// the simulator's overload throughput, per lane count.  Looser than the
// latency bounds (one is an asymptote, the other a closed-loop measurement)
// but tight enough to catch a broken lane model.
TEST(ConformanceSaturation, ModelSaturationTracksOverloadThroughputPerLane) {
  for (std::size_t i = 0; i < kNumCells; ++i) {
    const Campaign::CellData& data = Campaign::get().cell(i);
    const double model_sat = data.model_sat * 16.0;
    const double sim_sat = data.overload.throughput_flits_per_pe;
    EXPECT_NEAR(model_sat, sim_sat, 0.30 * sim_sat)
        << data.model_name << " lanes=" << kCells[i].lanes;
  }
}

}  // namespace
}  // namespace wormnet

// Model-vs-simulator conformance harness.
//
// The paper's central claim is that the analytical model tracks the
// flit-level simulation "very closely over a wide range of load rate".
// Before this suite, that claim was enforced only by ad-hoc checks for the
// fat-tree under uniform traffic (test_sim_vs_model.cpp); here it becomes a
// TABLE: every covered topology x pattern x lane-count cell is evaluated at
// 20% / 50% / 80% of the cell's own model saturation and the relative
// latency error |model - sim| / sim must stay inside the row's bound.
//
// Bound structure (the acceptance contract of the virtual-channel PR):
//  * below 80% load (the 20% and 50% points) every covered cell holds
//    within 15% — most hold far tighter, and the tier bounds encode that
//    (10% at 20% load, 15% at 50%);
//  * at 80% load the model's idealizations (no per-hop arbitration cycle,
//    additive multiplexing stretch) compound near the knee, so each row
//    carries its own measured-and-margined bound; the raw errors are
//    recorded in EXPERIMENTS.md.
//
// Every cell uses a fixed seed, so the suite is deterministic: a bound
// violation is a code regression, not noise.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/traffic_model.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet {
namespace {

enum class Topo { FatTree3, Mesh3ary3d, Hypercube4 };
enum class Pattern { Uniform, Hotspot10 };

struct Cell {
  Topo topo;
  Pattern pattern;
  int lanes;
  // Relative latency error bounds at 20% / 50% / 80% of model saturation.
  double bound20;
  double bound50;
  double bound80;
};

// Measured errors (recorded in EXPERIMENTS.md) plus regression margin.
// The below-80%-load contract: bound20 <= 0.10, bound50 <= 0.15 everywhere.
const Cell kCells[] = {
    // topo              pattern             L   20%   50%   80%
    {Topo::FatTree3,   Pattern::Uniform,    1, 0.10, 0.15, 0.20},
    {Topo::FatTree3,   Pattern::Uniform,    2, 0.10, 0.15, 0.50},
    {Topo::FatTree3,   Pattern::Uniform,    4, 0.10, 0.15, 0.50},
    {Topo::FatTree3,   Pattern::Hotspot10,  1, 0.10, 0.15, 0.15},
    {Topo::FatTree3,   Pattern::Hotspot10,  2, 0.10, 0.15, 0.42},
    {Topo::FatTree3,   Pattern::Hotspot10,  4, 0.10, 0.15, 0.30},
    {Topo::Mesh3ary3d,    Pattern::Uniform,    1, 0.10, 0.15, 0.30},
    {Topo::Mesh3ary3d,    Pattern::Uniform,    2, 0.10, 0.15, 0.45},
    {Topo::Mesh3ary3d,    Pattern::Uniform,    4, 0.10, 0.15, 0.25},
    {Topo::Mesh3ary3d,    Pattern::Hotspot10,  1, 0.10, 0.15, 0.15},
    {Topo::Mesh3ary3d,    Pattern::Hotspot10,  2, 0.10, 0.15, 0.35},
    {Topo::Mesh3ary3d,    Pattern::Hotspot10,  4, 0.10, 0.15, 0.35},
    {Topo::Hypercube4, Pattern::Uniform,    1, 0.10, 0.15, 0.33},
    {Topo::Hypercube4, Pattern::Uniform,    2, 0.10, 0.15, 0.45},
    {Topo::Hypercube4, Pattern::Uniform,    4, 0.10, 0.15, 0.28},
    {Topo::Hypercube4, Pattern::Hotspot10,  1, 0.10, 0.15, 0.20},
    {Topo::Hypercube4, Pattern::Hotspot10,  2, 0.10, 0.15, 0.42},
    {Topo::Hypercube4, Pattern::Hotspot10,  4, 0.10, 0.15, 0.37},
};

std::unique_ptr<topo::Topology> make_topology(Topo t) {
  switch (t) {
    case Topo::FatTree3:
      return std::make_unique<topo::ButterflyFatTree>(3);
    case Topo::Mesh3ary3d:
      return std::make_unique<topo::Mesh>(3, 3);
    case Topo::Hypercube4:
      return std::make_unique<topo::Hypercube>(4);
  }
  return nullptr;
}

traffic::TrafficSpec make_pattern(Pattern p) {
  switch (p) {
    case Pattern::Uniform:
      return traffic::TrafficSpec::uniform();
    case Pattern::Hotspot10:
      return traffic::TrafficSpec::hotspot(0.1);
  }
  return traffic::TrafficSpec::uniform();
}

void check_cell(const Cell& cell) {
  std::unique_ptr<topo::Topology> topo = make_topology(cell.topo);
  topo->set_uniform_lanes(cell.lanes);
  const traffic::TrafficSpec spec = make_pattern(cell.pattern);

  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  const core::GeneralModel model = core::build_traffic_model(*topo, spec, opts);
  const double sat = core::model_saturation_rate(model, opts);
  ASSERT_GT(sat, 0.0);

  const double fracs[] = {0.2, 0.5, 0.8};
  const double bounds[] = {cell.bound20, cell.bound50, cell.bound80};
  for (int i = 0; i < 3; ++i) {
    const double lambda0 = sat * fracs[i];
    const core::LatencyEstimate est = core::model_latency(model, lambda0, opts);
    ASSERT_TRUE(est.stable)
        << model.name() << " lanes=" << cell.lanes << " frac=" << fracs[i];

    sim::SimConfig cfg;
    cfg.load_flits = lambda0 * 16.0;
    cfg.worm_flits = 16;
    cfg.seed = 1000 + static_cast<std::uint64_t>(cell.lanes);
    cfg.traffic = spec;
    cfg.warmup_cycles = 8000;
    cfg.measure_cycles = 40000;
    cfg.max_cycles = 600000;
    cfg.channel_stats = false;
    const sim::SimResult r = sim::simulate(*topo, cfg);
    ASSERT_TRUE(r.completed)
        << model.name() << " lanes=" << cell.lanes << " frac=" << fracs[i];
    ASSERT_FALSE(r.saturated)
        << model.name() << " lanes=" << cell.lanes << " frac=" << fracs[i];
    ASSERT_GT(r.latency.count(), 0);

    const double sim_latency = r.latency.mean();
    const double rel_err = std::abs(est.latency - sim_latency) / sim_latency;
    EXPECT_LE(rel_err, bounds[i])
        << model.name() << " lanes=" << cell.lanes << " frac=" << fracs[i]
        << ": model=" << est.latency << " sim=" << sim_latency;
  }
}

class Conformance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Conformance, LatencyWithinCellBounds) { check_cell(kCells[GetParam()]); }

std::string cell_name(const ::testing::TestParamInfo<std::size_t>& info) {
  const Cell& c = kCells[info.param];
  std::string name;
  switch (c.topo) {
    case Topo::FatTree3: name = "FatTree3"; break;
    case Topo::Mesh3ary3d: name = "Mesh3ary3d"; break;
    case Topo::Hypercube4: name = "Hypercube4"; break;
  }
  name += c.pattern == Pattern::Uniform ? "Uniform" : "Hotspot10";
  name += "L";
  name += std::to_string(c.lanes);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Cells, Conformance,
                         ::testing::Range<std::size_t>(0, std::size(kCells)),
                         cell_name);

// The saturation points themselves must agree: the model's Eq. 26 rate vs
// the simulator's overload throughput, per lane count.  Looser than the
// latency bounds (one is an asymptote, the other a closed-loop measurement)
// but tight enough to catch a broken lane model.
TEST(ConformanceSaturation, ModelSaturationTracksOverloadThroughputPerLane) {
  for (Topo t : {Topo::FatTree3, Topo::Mesh3ary3d, Topo::Hypercube4}) {
    for (Pattern p : {Pattern::Uniform, Pattern::Hotspot10}) {
      for (int lanes : {1, 2, 4}) {
        std::unique_ptr<topo::Topology> topo = make_topology(t);
        topo->set_uniform_lanes(lanes);
        const traffic::TrafficSpec spec = make_pattern(p);
        core::SolveOptions opts;
        opts.worm_flits = 16.0;
        const core::GeneralModel model =
            core::build_traffic_model(*topo, spec, opts);
        const double model_sat = core::model_saturation_rate(model, opts) * 16.0;

        sim::SimConfig cfg;
        cfg.arrivals = sim::ArrivalProcess::Overload;
        cfg.worm_flits = 16;
        cfg.seed = 7;
        cfg.traffic = spec;
        cfg.warmup_cycles = 5000;
        cfg.measure_cycles = 20000;
        cfg.channel_stats = false;
        const double sim_sat = sim::simulate(*topo, cfg).throughput_flits_per_pe;
        EXPECT_NEAR(model_sat, sim_sat, 0.30 * sim_sat)
            << model.name() << " lanes=" << lanes;
      }
    }
  }
}

}  // namespace
}  // namespace wormnet

// Tests for the closed-form butterfly fat-tree model (the paper's §3).
#include "core/fattree_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "topo/butterfly_fattree.hpp"
#include "util/math.hpp"

namespace wormnet::core {
namespace {

TEST(FatTreeModel, UpProbabilityEq12) {
  FatTreeModel m({.levels = 5, .worm_flits = 16.0});
  // P↑_l = (4^n - 4^l) / (4^n - 1).
  EXPECT_NEAR(m.up_probability(0), 1023.0 / 1023.0, 1e-15);
  EXPECT_NEAR(m.up_probability(1), (1024.0 - 4.0) / 1023.0, 1e-15);
  EXPECT_NEAR(m.up_probability(4), (1024.0 - 256.0) / 1023.0, 1e-15);
  EXPECT_NEAR(m.up_probability(5), 0.0, 1e-15);  // nothing above the root
}

TEST(FatTreeModel, RatesEq14) {
  FatTreeModel m({.levels = 3, .worm_flits = 16.0});
  const double lambda0 = 0.001;
  // λ⟨l,l+1⟩ = λ₀ P↑_l 2^l.
  for (int l = 0; l < 3; ++l) {
    EXPECT_NEAR(m.rate_up(l, lambda0),
                lambda0 * m.up_probability(l) * (1 << l), 1e-15);
  }
  // The injection channel rate degenerates to λ₀.
  EXPECT_NEAR(m.rate_up(0, lambda0), lambda0, 1e-15);
}

TEST(FatTreeModel, MeanDistanceMatchesTopology) {
  for (int n = 1; n <= 5; ++n) {
    FatTreeModel m({.levels = n, .worm_flits = 16.0});
    topo::ButterflyFatTree ft(n);
    EXPECT_NEAR(m.mean_distance(), ft.mean_distance(), 1e-12) << "n=" << n;
  }
}

TEST(FatTreeModel, ZeroLoadLatencyIsDistancePlusWormLength) {
  for (int n : {1, 2, 3, 5}) {
    for (double sf : {16.0, 32.0, 64.0}) {
      FatTreeModel m({.levels = n, .worm_flits = sf});
      const FatTreeEvaluation ev = m.evaluate_detail(0.0);
      EXPECT_TRUE(ev.stable);
      EXPECT_NEAR(ev.latency, sf + m.mean_distance() - 1.0, 1e-9)
          << "n=" << n << " sf=" << sf;
      EXPECT_NEAR(ev.inj_wait, 0.0, 1e-12);
      EXPECT_NEAR(ev.inj_service, sf, 1e-9);
    }
  }
}

TEST(FatTreeModel, EjectionServiceIsWormLength) {
  FatTreeModel m({.levels = 3, .worm_flits = 32.0});
  const FatTreeEvaluation ev = m.evaluate_detail(0.0005);
  EXPECT_DOUBLE_EQ(ev.x_down[0], 32.0);  // Eq. 16
}

TEST(FatTreeModel, LatencyIsMonotoneInLoad) {
  FatTreeModel m({.levels = 4, .worm_flits = 16.0});
  double prev = 0.0;
  for (double load = 0.002; load < 0.035; load += 0.004) {
    const FatTreeEvaluation ev = m.evaluate_load_detail(load);
    ASSERT_TRUE(ev.stable) << "load=" << load;
    EXPECT_GT(ev.latency, prev);
    prev = ev.latency;
  }
}

TEST(FatTreeModel, ServiceTimesGrowTowardTheSource) {
  // Under load, x̄⟨0,1⟩ accumulates every downstream wait, so it must exceed
  // the worm length and exceed every down-channel service time.
  FatTreeModel m({.levels = 4, .worm_flits = 16.0});
  const FatTreeEvaluation ev = m.evaluate_load_detail(0.025);
  ASSERT_TRUE(ev.stable);
  EXPECT_GT(ev.inj_service, 16.0);
  for (int l = 0; l < 4; ++l) {
    EXPECT_GE(ev.x_up[static_cast<std::size_t>(l)],
              ev.x_down[static_cast<std::size_t>(l)] - 1e-9);
  }
  // Down-chain service times are non-decreasing with level (Eq. 18 adds a
  // non-negative wait at every step).
  for (int l = 1; l < 4; ++l) {
    EXPECT_GE(ev.x_down[static_cast<std::size_t>(l)],
              ev.x_down[static_cast<std::size_t>(l - 1)]);
  }
}

TEST(FatTreeModel, UnstableAboveSaturation) {
  FatTreeModel m({.levels = 5, .worm_flits = 32.0});
  const double sat = m.saturation_load();
  EXPECT_FALSE(m.evaluate_load_detail(sat * 1.05).stable);
  EXPECT_TRUE(m.evaluate_load_detail(sat * 0.95).stable);
}

TEST(FatTreeModel, SaturationIsTheStabilityBoundary) {
  // In the fat-tree, an interior channel reaches utilization 1 before the
  // source criterion λ₀·x̄⟨0,1⟩ = 1, so x̄⟨0,1⟩ jumps through 1/λ₀ at the
  // stability boundary; the solver must pin that boundary tightly.
  FatTreeModel m({.levels = 4, .worm_flits = 16.0});
  const double rate = m.saturation_rate();
  const FatTreeEvaluation below = m.evaluate_detail(rate * 0.999);
  ASSERT_TRUE(below.stable);
  // Below saturation the source still keeps up: λ₀·x̄⟨0,1⟩ < 1.
  EXPECT_LT(below.inj_service * below.lambda0, 1.0);
  // The boundary is tight: 0.1% above is already unstable.
  EXPECT_FALSE(m.evaluate_detail(rate * 1.001).stable);
  // Utilizations compound through the service-time chain, so ρ_max climbs
  // through the final stretch toward 1 extremely steeply; 0.1% below the
  // boundary it is already high but not yet pinned at 1.
  double max_rho = 0.0;
  for (double rho : below.rho_up) max_rho = std::max(max_rho, rho);
  for (double rho : below.rho_down) max_rho = std::max(max_rho, rho);
  EXPECT_GT(max_rho, 0.8);
  EXPECT_LT(max_rho, 1.0);
}

TEST(FatTreeModel, SaturationLoadIsScaleInvariantInWormLength) {
  // The model is exactly invariant under (λ₀, s_f) -> (λ₀/k, k·s_f): all
  // waits scale by k, so the saturation FLIT load is identical for 16, 32
  // and 64-flit worms.  (A nontrivial structural property of Eq. 4-26.)
  FatTreeModel m16({.levels = 5, .worm_flits = 16.0});
  FatTreeModel m32({.levels = 5, .worm_flits = 32.0});
  FatTreeModel m64({.levels = 5, .worm_flits = 64.0});
  EXPECT_NEAR(m16.saturation_load(), m32.saturation_load(), 1e-6);
  EXPECT_NEAR(m32.saturation_load(), m64.saturation_load(), 1e-6);
}

TEST(FatTreeModel, LatencyScalesLinearlyInWormLengthAtFixedFlitLoad) {
  // Same invariance at the latency level: L(k·s_f) - (D̄-1) = k·(L(s_f) - (D̄-1)).
  FatTreeModel m16({.levels = 4, .worm_flits = 16.0});
  FatTreeModel m48({.levels = 4, .worm_flits = 48.0});
  const double load = 0.02;
  const double core16 = m16.evaluate_load_detail(load).latency - (m16.mean_distance() - 1.0);
  const double core48 = m48.evaluate_load_detail(load).latency - (m48.mean_distance() - 1.0);
  EXPECT_NEAR(core48, 3.0 * core16, 1e-6);
}

TEST(FatTreeModel, ErratumMattersAtModerateLoad) {
  // Evaluating the M/G/2 at the per-link rate (the uncorrected published
  // formula) must under-predict waiting versus the corrected 2λ form.
  FatTreeModelOptions good{.levels = 5, .worm_flits = 16.0};
  FatTreeModelOptions typo = good;
  typo.erratum_2lambda = false;
  FatTreeModel m_good(good), m_typo(typo);
  const double load = 0.03;
  EXPECT_GT(m_good.evaluate_load_detail(load).latency, m_typo.evaluate_load_detail(load).latency);
}

TEST(FatTreeModel, MultiServerAblationChangesPrediction) {
  FatTreeModelOptions mg2{.levels = 5, .worm_flits = 16.0};
  FatTreeModelOptions mg1 = mg2;
  mg1.multi_server = false;
  const double load = 0.03;
  const double latency_mg2 = FatTreeModel(mg2).evaluate_load_detail(load).latency;
  const double latency_mg1 = FatTreeModel(mg1).evaluate_load_detail(load).latency;
  // Treating each up-link as an isolated M/G/1 ignores the pooling benefit
  // of the redundant pair, over-predicting latency.
  EXPECT_GT(latency_mg1, latency_mg2);
}

TEST(FatTreeModel, BlockingAblationChangesPrediction) {
  FatTreeModelOptions with{.levels = 5, .worm_flits = 16.0};
  FatTreeModelOptions without = with;
  without.blocking_correction = false;
  const double load = 0.03;
  const double latency_with = FatTreeModel(with).evaluate_load_detail(load).latency;
  const double latency_without = FatTreeModel(without).evaluate_load_detail(load).latency;
  // P(i|j) <= 1 discounts waits; dropping it must increase latency.
  EXPECT_GT(latency_without, latency_with);
}

TEST(FatTreeModel, SmallestNetworkIsWellFormed) {
  // n = 1: four processors under one switch level; everything resolves via
  // the top-level rule (Eq. 20 with n = 1).
  FatTreeModel m({.levels = 1, .worm_flits = 16.0});
  const FatTreeEvaluation ev = m.evaluate_detail(0.01);
  EXPECT_TRUE(ev.stable);
  EXPECT_NEAR(ev.mean_distance, 2.0, 1e-12);  // every pair shares the switch
  EXPECT_GT(ev.latency, 16.0 + 2.0 - 1.0);
  EXPECT_GT(m.saturation_load(), 0.0);
}

TEST(FatTreeModel, EvaluateLoadConvertsUnits) {
  FatTreeModel m({.levels = 3, .worm_flits = 32.0});
  const FatTreeEvaluation a = m.evaluate_detail(0.001);
  const FatTreeEvaluation b = m.evaluate_load_detail(0.032);
  EXPECT_NEAR(a.latency, b.latency, 1e-12);
  EXPECT_NEAR(b.lambda0, 0.001, 1e-15);
  EXPECT_NEAR(a.load_flits, 0.032, 1e-15);
}

// Property sweep: stability flag is consistent with latency finiteness over
// (levels, worm length, load fraction of saturation).
class FatTreeModelSweep
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(FatTreeModelSweep, StableIffFinite) {
  const auto [levels, sf, frac] = GetParam();
  FatTreeModel m({.levels = levels, .worm_flits = sf});
  const double load = m.saturation_load() * frac;
  const FatTreeEvaluation ev = m.evaluate_load_detail(load);
  EXPECT_EQ(ev.stable, std::isfinite(ev.latency));
  if (frac < 1.0) {
    EXPECT_TRUE(ev.stable) << "levels=" << levels << " sf=" << sf
                           << " frac=" << frac;
    EXPECT_GE(ev.latency, sf + m.mean_distance() - 1.0 - 1e-9);
  } else {
    EXPECT_FALSE(ev.stable);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FatTreeModelSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(16.0, 32.0, 64.0),
                       ::testing::Values(0.25, 0.5, 0.75, 0.95, 1.1)));

}  // namespace
}  // namespace wormnet::core

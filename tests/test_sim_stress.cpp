// Long-run stress tests: large networks, high load, mixed patterns — the
// conservation and sanity invariants must survive hundreds of thousands of
// worm lifecycles (these exercise the worm free-list recycling, the bundle
// dirty-list mechanics, and the tagged-accounting paths at scale).
#include <gtest/gtest.h>

#include "core/fattree_model.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/generalized_fattree.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet::sim {
namespace {

void expect_invariants(const SimResult& r, double min_latency) {
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.latency.count(), r.generated_messages);  // all tagged delivered
  EXPECT_GE(r.latency.min(), min_latency);
  EXPECT_GE(r.queue_wait.min(), 0.0);
  EXPECT_GE(r.inj_service.min(), 0.0);
  EXPECT_GT(r.delivered_flits, 0);
}

TEST(SimStress, Fig3ScaleNetworkNearKnee) {
  // N = 1024 at 80% of saturation: tens of thousands of worms in one run.
  topo::ButterflyFatTree ft(5);
  core::FatTreeModel model({.levels = 5, .worm_flits = 16.0});
  SimConfig cfg;
  cfg.load_flits = model.saturation_load() * 0.8;
  cfg.worm_flits = 16;
  cfg.seed = 99;
  cfg.warmup_cycles = 5'000;
  cfg.measure_cycles = 20'000;
  cfg.max_cycles = 400'000;
  cfg.channel_stats = true;
  const SimResult r = simulate(ft, cfg);
  expect_invariants(r, 16.0 + 2.0 - 1.0);
  EXPECT_GT(r.generated_messages, 20'000);
  // No channel can have been busy longer than the window.
  for (const ChannelStat& st : r.channels)
    EXPECT_LE(st.busy_cycles, cfg.measure_cycles + 1);
}

TEST(SimStress, RepeatedRunsOnOneNetworkAreIndependent) {
  // Re-using a SimNetwork across many Simulator instances must not leak
  // state: identical seeds give identical results even after other runs.
  topo::ButterflyFatTree ft(3);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.08;
  cfg.worm_flits = 16;
  cfg.seed = 1;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 10'000;
  Simulator first(net, cfg);
  const SimResult a = first.run();
  for (std::uint64_t s = 2; s < 6; ++s) {
    SimConfig other = cfg;
    other.seed = s;
    Simulator mid(net, other);
    mid.run();
  }
  Simulator again(net, cfg);
  const SimResult b = again.run();
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.cycles_run, b.cycles_run);
}

TEST(SimStress, AllTopologiesSurviveHighLoad) {
  // 90% of each network's measured comfort zone, long windows.
  struct Case {
    const topo::Topology* topo;
    double load;
  };
  topo::ButterflyFatTree ft(3);
  topo::Hypercube hc(6);
  topo::Mesh mesh(8, 2);
  topo::GeneralizedFatTree gen(2, 3);
  const Case cases[] = {{&ft, 0.13}, {&hc, 0.38}, {&mesh, 0.15}, {&gen, 0.24}};
  for (const Case& c : cases) {
    SimConfig cfg;
    cfg.load_flits = c.load;
    cfg.worm_flits = 16;
    cfg.seed = 7;
    cfg.warmup_cycles = 4'000;
    cfg.measure_cycles = 25'000;
    cfg.max_cycles = 500'000;
    cfg.channel_stats = false;
    const SimResult r = simulate(*c.topo, cfg);
    expect_invariants(r, 16.0);
    EXPECT_FALSE(r.saturated) << c.topo->name();
  }
}

TEST(SimStress, MixedWormLengthsAcrossRuns) {
  // Worm length sweep on one network: latency ordering must hold at equal
  // flit load (longer worms => higher absolute latency).
  topo::ButterflyFatTree ft(3);
  SimNetwork net(ft);
  double prev = 0.0;
  for (int sf : {4, 8, 16, 32, 64}) {
    SimConfig cfg;
    cfg.load_flits = 0.08;
    cfg.worm_flits = sf;
    cfg.seed = 11;
    cfg.warmup_cycles = 3'000;
    cfg.measure_cycles = 15'000;
    cfg.max_cycles = 400'000;
    cfg.channel_stats = false;
    Simulator s(net, cfg);
    const SimResult r = s.run();
    ASSERT_TRUE(r.completed) << "sf=" << sf;
    EXPECT_GT(r.latency.mean(), prev) << "sf=" << sf;
    prev = r.latency.mean();
  }
}

TEST(SimStress, OverloadLongRunConservation) {
  topo::ButterflyFatTree ft(3);
  SimConfig cfg;
  cfg.arrivals = ArrivalProcess::Overload;
  cfg.worm_flits = 16;
  cfg.seed = 13;
  cfg.warmup_cycles = 10'000;
  cfg.measure_cycles = 40'000;
  const SimResult r = simulate(ft, cfg);
  EXPECT_TRUE(r.completed);
  // Delivered flits must be a multiple of the worm length.
  EXPECT_EQ(r.delivered_flits % 16, 0);
  EXPECT_EQ(r.delivered_flits / 16, r.delivered_messages);
  // Capacity band sanity for N = 64.
  EXPECT_GT(r.throughput_flits_per_pe, 0.10);
  EXPECT_LT(r.throughput_flits_per_pe, 0.30);
}

TEST(SimStress, HotspotLongRunStaysWedgeFree) {
  // Saturated hotspot traffic for a long horizon: the watchdog must never
  // fire (progress continues even though the backlog grows).
  topo::ButterflyFatTree ft(2);
  SimConfig cfg;
  cfg.load_flits = 0.3;
  cfg.worm_flits = 16;
  cfg.traffic = traffic::TrafficSpec::hotspot(0.5);
  cfg.seed = 17;
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 10'000;
  cfg.max_cycles = 60'000;
  const SimResult r = simulate(ft, cfg);
  EXPECT_TRUE(r.saturated);           // by construction
  EXPECT_GT(r.delivered_messages, 0);  // but it kept delivering throughout
}

}  // namespace
}  // namespace wormnet::sim

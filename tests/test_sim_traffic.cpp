// Tests for message generation: Poisson/Bernoulli rates, destination
// uniformity, and the overload (closed-loop) source.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/channels.hpp"

namespace wormnet::sim {
namespace {

TEST(Traffic, PoissonInterArrivalMeanMatchesRate) {
  const double lambda0 = 0.02;
  TrafficSource src(4, lambda0, ArrivalProcess::Poisson, 5);
  long count = 0;
  const long horizon = 200'000;
  for (long cycle = 0; cycle < horizon; ++cycle) {
    while (src.has_arrival(cycle)) {
      src.pop_arrival(cycle);
      ++count;
    }
  }
  const double rate = static_cast<double>(count) / (4.0 * horizon);
  EXPECT_NEAR(rate, lambda0, lambda0 * 0.05);
}

TEST(Traffic, BernoulliRateMatches) {
  const double lambda0 = 0.05;
  TrafficSource src(4, lambda0, ArrivalProcess::Bernoulli, 6);
  long count = 0;
  const long horizon = 100'000;
  for (long cycle = 0; cycle < horizon; ++cycle) {
    while (src.has_arrival(cycle)) {
      src.pop_arrival(cycle);
      ++count;
    }
  }
  const double rate = static_cast<double>(count) / (4.0 * horizon);
  EXPECT_NEAR(rate, lambda0, lambda0 * 0.05);
}

TEST(Traffic, ArrivalsAreCycleOrderedAndDue) {
  TrafficSource src(8, 0.1, ArrivalProcess::Poisson, 7);
  long last = 0;
  for (long cycle = 0; cycle < 10'000; ++cycle) {
    while (src.has_arrival(cycle)) {
      const Arrival a = src.pop_arrival(cycle);
      EXPECT_LE(a.cycle, cycle);
      EXPECT_GE(a.cycle, last - 1);  // global order is by continuous time
      EXPECT_GE(a.proc, 0);
      EXPECT_LT(a.proc, 8);
      last = a.cycle;
    }
  }
}

TEST(Traffic, DestinationsExcludeSelfAndCoverAll) {
  TrafficSource src(16, 0.0, ArrivalProcess::Overload, 8);
  std::vector<int> hits(16, 0);
  for (int i = 0; i < 8'000; ++i) {
    const int d = src.make_destination(3);
    EXPECT_NE(d, 3);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 16);
    ++hits[static_cast<std::size_t>(d)];
  }
  // Every other processor should be hit ~533 times; loose uniformity band.
  for (int p = 0; p < 16; ++p) {
    if (p == 3) {
      EXPECT_EQ(hits[static_cast<std::size_t>(p)], 0);
    } else {
      EXPECT_GT(hits[static_cast<std::size_t>(p)], 400) << "p=" << p;
      EXPECT_LT(hits[static_cast<std::size_t>(p)], 680) << "p=" << p;
    }
  }
}

TEST(Traffic, GeneratedCountTracksOfferedLoadInSimulation) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.04;
  cfg.worm_flits = 8;
  cfg.seed = 9;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 50'000;
  cfg.max_cycles = 500'000;
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);
  const double offered = cfg.load_flits / cfg.worm_flits;  // messages/cyc/PE
  const double generated = static_cast<double>(r.generated_messages) /
                           (static_cast<double>(cfg.measure_cycles) * 16.0);
  EXPECT_NEAR(generated, offered, offered * 0.08);
}

TEST(Traffic, OverloadSaturatesEveryInjectionChannel) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.arrivals = ArrivalProcess::Overload;
  cfg.worm_flits = 8;
  cfg.seed = 10;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 10'000;
  cfg.channel_stats = true;
  Simulator s(net, cfg);
  const SimResult r = s.run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.throughput_flits_per_pe, 0.05);
  // Every processor's injection channel must have been busy most of the
  // window (the source never idles by more than the arbitration gap).
  const topo::ChannelTable ct(ft);
  for (int p = 0; p < ft.num_processors(); ++p) {
    const auto& stat = r.channels[static_cast<std::size_t>(ct.from(p, 0))];
    EXPECT_GT(static_cast<double>(stat.busy_cycles),
              0.5 * static_cast<double>(cfg.measure_cycles))
        << "p=" << p;
  }
}

TEST(Traffic, BernoulliSimulationRuns) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.arrivals = ArrivalProcess::Bernoulli;
  cfg.load_flits = 0.03;
  cfg.worm_flits = 16;
  cfg.seed = 11;
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 10'000;
  Simulator s(net, cfg);
  const SimResult r = s.run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.latency.count(), 100);
  EXPECT_GT(r.latency.mean(), 16.0);
}

}  // namespace
}  // namespace wormnet::sim

// Tests for the butterfly fat-tree topology (the paper's §3.1 wiring).
#include "topo/butterfly_fattree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topo/graph_checks.hpp"
#include "util/math.hpp"

namespace wormnet::topo {
namespace {

using util::ipow;

TEST(FatTree, NodeAndSwitchCounts) {
  for (int n = 1; n <= 4; ++n) {
    ButterflyFatTree ft(n);
    EXPECT_EQ(ft.num_processors(), ipow(4, n));
    int switches = 0;
    for (int l = 1; l <= n; ++l) {
      EXPECT_EQ(ft.switches_at(l), ipow(4, n) / (1L << (l + 1)))
          << "n=" << n << " l=" << l;
      switches += ft.switches_at(l);
    }
    EXPECT_EQ(ft.num_nodes(), ft.num_processors() + switches);
  }
}

TEST(FatTree, PaperExampleSixtyFourProcessors) {
  // Fig. 2 of the paper: N = 64 has 16 + 8 + 4 switches.
  ButterflyFatTree ft(3);
  EXPECT_EQ(ft.num_processors(), 64);
  EXPECT_EQ(ft.switches_at(1), 16);
  EXPECT_EQ(ft.switches_at(2), 8);
  EXPECT_EQ(ft.switches_at(3), 4);
}

TEST(FatTree, ProcessorWiring) {
  ButterflyFatTree ft(3);
  for (int p = 0; p < ft.num_processors(); ++p) {
    // P(a) on child (a mod 4) of S(1, floor(a/4)).
    const int sw = ft.switch_id(1, p / 4);
    EXPECT_EQ(ft.neighbor(p, 0), sw);
    EXPECT_EQ(ft.neighbor_port(p, 0), p % 4);
    EXPECT_EQ(ft.neighbor(sw, p % 4), p);
  }
}

TEST(FatTree, ParentWiringFollowsPaperFormula) {
  for (int n = 2; n <= 4; ++n) {
    ButterflyFatTree ft(n);
    for (int l = 1; l < n; ++l) {
      const int two_lm1 = 1 << (l - 1);
      const int two_l = 1 << l;
      const int two_lp1 = 1 << (l + 1);
      for (int a = 0; a < ft.switches_at(l); ++a) {
        const int me = ft.switch_id(l, a);
        const int child_index = (a % two_lp1) / two_lm1;
        for (int p = 0; p < 2; ++p) {
          const int parent_addr = (a / two_lp1) * two_l + (a + p * two_lm1) % two_l;
          const int parent = ft.switch_id(l + 1, parent_addr);
          EXPECT_EQ(ft.neighbor(me, ButterflyFatTree::kParentPort0 + p), parent);
          EXPECT_EQ(ft.neighbor_port(me, ButterflyFatTree::kParentPort0 + p),
                    child_index);
        }
      }
    }
  }
}

TEST(FatTree, TopLevelHasNoParents) {
  ButterflyFatTree ft(3);
  for (int a = 0; a < ft.switches_at(3); ++a) {
    const int sw = ft.switch_id(3, a);
    EXPECT_EQ(ft.neighbor(sw, ButterflyFatTree::kParentPort0), kNoNode);
    EXPECT_EQ(ft.neighbor(sw, ButterflyFatTree::kParentPort1), kNoNode);
  }
}

TEST(FatTree, EverySwitchChildConnected) {
  ButterflyFatTree ft(3);
  for (int l = 1; l <= 3; ++l) {
    for (int a = 0; a < ft.switches_at(l); ++a) {
      const int sw = ft.switch_id(l, a);
      for (int c = 0; c < 4; ++c) EXPECT_NE(ft.neighbor(sw, c), kNoNode);
    }
  }
}

TEST(FatTree, StructuralVerifierPasses) {
  for (int n = 1; n <= 4; ++n) {
    ButterflyFatTree ft(n);
    const VerifyReport report = verify_topology(ft);
    EXPECT_TRUE(report.ok()) << "n=" << n << ": " << (report.ok() ? "" : report.violations[0]);
  }
}

TEST(FatTree, CoverageBlocks) {
  ButterflyFatTree ft(3);
  // S(l, a) covers the 4^l processors of block a >> (l-1); verify against
  // actual downward reachability (BFS restricted to child links).
  for (int l = 1; l <= 3; ++l) {
    for (int a = 0; a < ft.switches_at(l); ++a) {
      std::set<int> reachable;
      // Depth-first down the children.
      std::vector<int> stack{ft.switch_id(l, a)};
      while (!stack.empty()) {
        const int node = stack.back();
        stack.pop_back();
        if (ft.is_processor(node)) {
          reachable.insert(node);
          continue;
        }
        for (int c = 0; c < 4; ++c) stack.push_back(ft.neighbor(node, c));
      }
      EXPECT_EQ(static_cast<long>(reachable.size()), ipow(4, l));
      for (int p = 0; p < ft.num_processors(); ++p) {
        EXPECT_EQ(ft.covers(l, a, p), reachable.count(p) == 1)
            << "l=" << l << " a=" << a << " p=" << p;
      }
    }
  }
}

TEST(FatTree, LcaLevelAgainstDefinition) {
  ButterflyFatTree ft(3);
  EXPECT_EQ(ft.lca_level(0, 0), 0);
  EXPECT_EQ(ft.lca_level(0, 1), 1);   // same leaf switch
  EXPECT_EQ(ft.lca_level(0, 4), 2);   // same level-2 block of 16
  EXPECT_EQ(ft.lca_level(0, 15), 2);
  EXPECT_EQ(ft.lca_level(0, 16), 3);
  EXPECT_EQ(ft.lca_level(0, 63), 3);
}

TEST(FatTree, DistanceIsTwiceLcaLevel) {
  ButterflyFatTree ft(2);
  for (int s = 0; s < ft.num_processors(); ++s)
    for (int d = 0; d < ft.num_processors(); ++d)
      EXPECT_EQ(ft.distance(s, d), 2 * ft.lca_level(s, d));
}

TEST(FatTree, MeanDistanceMatchesBruteForce) {
  for (int n = 1; n <= 3; ++n) {
    ButterflyFatTree ft(n);
    double sum = 0.0;
    long pairs = 0;
    for (int s = 0; s < ft.num_processors(); ++s) {
      for (int d = 0; d < ft.num_processors(); ++d) {
        if (s == d) continue;
        sum += ft.distance(s, d);
        ++pairs;
      }
    }
    EXPECT_NEAR(ft.mean_distance(), sum / static_cast<double>(pairs), 1e-12)
        << "n=" << n;
  }
}

TEST(FatTree, MeanDistanceKnownValueAt1024) {
  // D̄ = sum 2l * 3 * 4^(l-1) / 1023 = 9558/1023 for n = 5.
  ButterflyFatTree ft(5);
  EXPECT_NEAR(ft.mean_distance(), 9558.0 / 1023.0, 1e-12);
}

TEST(FatTree, DownPortIsBase4Digit) {
  ButterflyFatTree ft(3);
  // From a level-3 switch toward processor 27 = (1 2 3)_4 the child port is
  // digit 2, then digit 1, then digit 0.
  EXPECT_EQ(ButterflyFatTree::down_port(3, 27), 1);
  EXPECT_EQ(ButterflyFatTree::down_port(2, 27), 2);
  EXPECT_EQ(ButterflyFatTree::down_port(1, 27), 3);
}

TEST(FatTree, RouteUpGivesBothParents) {
  ButterflyFatTree ft(3);
  const int sw = ft.switch_id(1, 0);  // covers 0..3
  const RouteOptions up = ft.route(sw, 63);
  EXPECT_EQ(up.size(), 2);
  EXPECT_TRUE(up.contains(ButterflyFatTree::kParentPort0));
  EXPECT_TRUE(up.contains(ButterflyFatTree::kParentPort1));
}

TEST(FatTree, RouteDownIsUnique) {
  ButterflyFatTree ft(3);
  const int sw = ft.switch_id(1, 0);
  const RouteOptions down = ft.route(sw, 2);
  EXPECT_EQ(down.size(), 1);
  EXPECT_EQ(down[0], 2);
}

TEST(FatTree, RouteAtProcessor) {
  ButterflyFatTree ft(2);
  const RouteOptions inject = ft.route(3, 9);
  EXPECT_EQ(inject.size(), 1);
  EXPECT_EQ(inject[0], 0);
  const RouteOptions arrived = ft.route(9, 9);
  EXPECT_EQ(arrived.size(), 0);
}

TEST(FatTree, TraceRouteReachesEveryDestination) {
  ButterflyFatTree ft(2);
  for (int s = 0; s < ft.num_processors(); ++s) {
    for (int d = 0; d < ft.num_processors(); ++d) {
      if (s == d) continue;
      const std::vector<int> path = trace_route(ft, s, d);
      ASSERT_FALSE(path.empty()) << s << "->" << d;
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), d);
      // Path length in channels == number of edges == distance.
      EXPECT_EQ(static_cast<int>(path.size()) - 1, ft.distance(s, d));
    }
  }
}

TEST(FatTree, OutputBundlesPairParents) {
  ButterflyFatTree ft(3);
  const auto bundles = ft.output_bundles(ft.switch_id(1, 0));
  ASSERT_EQ(bundles.size(), 5u);  // 4 singleton children + 1 parent pair
  EXPECT_EQ(bundles[4].count, 2);
  // Top level: no parent bundle.
  EXPECT_EQ(ft.output_bundles(ft.switch_id(3, 0)).size(), 4u);
}

TEST(FatTree, LinksBetweenLevelsMatchPaperCounting) {
  ButterflyFatTree ft(5);  // N = 1024
  EXPECT_EQ(ft.links_between(0), 1024);  // processor links
  // "There are 4^n / 2^l links between level l and l+1."
  for (int l = 1; l < 5; ++l) EXPECT_EQ(ft.links_between(l), 1024L >> l);
}

TEST(FatTree, NodeLevelsAndAddresses) {
  ButterflyFatTree ft(2);
  EXPECT_EQ(ft.node_level(0), 0);
  EXPECT_EQ(ft.node_level(ft.switch_id(1, 2)), 1);
  EXPECT_EQ(ft.node_level(ft.switch_id(2, 1)), 2);
  EXPECT_EQ(ft.switch_addr(ft.switch_id(2, 1)), 1);
}

// Parameterized: routing minimality and reachability at every size.
class FatTreeSizes : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeSizes, VerifierAndDistances) {
  ButterflyFatTree ft(GetParam());
  const VerifyReport report = verify_topology(ft);
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.violations[0]);
  // BFS distance from processor 0 agrees with the closed form everywhere.
  const std::vector<int> bfs = bfs_channel_distances(ft, 0);
  for (int d = 0; d < ft.num_processors(); ++d)
    EXPECT_EQ(bfs[static_cast<std::size_t>(d)], ft.distance(0, d));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FatTreeSizes, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace wormnet::topo

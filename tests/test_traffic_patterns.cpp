// Tests for the non-uniform traffic patterns and the latency-histogram
// extension.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topo/butterfly_fattree.hpp"

namespace wormnet::sim {
namespace {

TEST(TrafficPatterns, BitComplementIsTheComplementPermutation) {
  TrafficSource src(64, 0.0, ArrivalProcess::Overload, 1,
                    traffic::TrafficSpec::bit_complement());
  for (int s = 0; s < 64; ++s) {
    EXPECT_EQ(src.make_destination(s), 63 - s);
  }
}

TEST(TrafficPatterns, TransposeSwapsGridCoordinates) {
  TrafficSource src(16, 0.0, ArrivalProcess::Overload, 1,
                    traffic::TrafficSpec::transpose());
  // 4x4 grid: src (r, c) -> dest (c, r).
  EXPECT_EQ(src.make_destination(1), 4);   // (0,1) -> (1,0)
  EXPECT_EQ(src.make_destination(7), 13);  // (1,3) -> (3,1)
  // Diagonal falls back to the next processor.
  EXPECT_EQ(src.make_destination(5), 6);
  EXPECT_EQ(src.make_destination(0), 1);
}

TEST(TrafficPatterns, TransposeRequiresSquareCount) {
  EXPECT_DEATH(TrafficSource(12, 0.0, ArrivalProcess::Overload, 1,
                             traffic::TrafficSpec::transpose()),
               "precondition");
}

TEST(TrafficPatterns, HotspotSkewsTowardNodeZero) {
  TrafficSource src(64, 0.0, ArrivalProcess::Overload, 3,
                    traffic::TrafficSpec::hotspot(0.25));
  int to_zero = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const int d = src.make_destination(17);
    EXPECT_NE(d, 17);
    if (d == 0) ++to_zero;
  }
  // P(dest = 0) = 0.25 + 0.75/63 ~ 0.262.
  EXPECT_NEAR(to_zero / static_cast<double>(n), 0.262, 0.02);
}

TEST(TrafficPatterns, HotspotNodeNeverTargetsItself) {
  TrafficSource src(16, 0.0, ArrivalProcess::Overload, 4,
                    traffic::TrafficSpec::hotspot(0.5));
  for (int i = 0; i < 1'000; ++i) EXPECT_NE(src.make_destination(0), 0);
}

TEST(TrafficPatterns, BitComplementLoadsTheRootOnly) {
  // Every bit-complement pair straddles the fat-tree root, so level-1
  // sibling turns never happen: all worms climb to the top.  Verify through
  // per-channel stats: down channels out of level-1 switches carry only
  // ejection traffic... equivalently mean distance == diameter.
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.02;
  cfg.worm_flits = 16;
  cfg.traffic = traffic::TrafficSpec::bit_complement();
  cfg.seed = 5;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 15'000;
  cfg.max_cycles = 200'000;
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.distance.mean(), 2.0 * 2);  // diameter of n=2 tree
  EXPECT_DOUBLE_EQ(r.distance.min(), r.distance.max());
}

TEST(TrafficPatterns, HotspotSaturatesEarlierThanUniform) {
  // A 25% hotspot concentrates load on one ejection channel; at a load
  // uniform traffic handles easily, the hotspot run must show much larger
  // latency (or saturate outright).
  // Load chosen so the hotspot's ejection channel runs at rho ~ 1
  // (16 PEs x lambda0 x [0.3 effective hotspot share] x 16 flits) while the
  // same offered load is comfortably below the uniform-traffic capacity
  // (~0.32 flits/cycle/PE).
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig base;
  base.load_flits = 0.2;
  base.worm_flits = 16;
  base.seed = 6;
  base.warmup_cycles = 3'000;
  base.measure_cycles = 15'000;
  base.max_cycles = 150'000;
  base.channel_stats = false;

  Simulator uniform(net, base);
  const SimResult ru = uniform.run();
  SimConfig hs = base;
  hs.traffic = traffic::TrafficSpec::hotspot(0.25);
  Simulator hotspot(net, hs);
  const SimResult rh = hotspot.run();
  ASSERT_TRUE(ru.completed);
  ASSERT_FALSE(ru.saturated);
  EXPECT_TRUE(rh.saturated || rh.latency.mean() > 2.0 * ru.latency.mean());
}

TEST(LatencyHistogram, CollectsTaggedLatencies) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.05;
  cfg.worm_flits = 16;
  cfg.seed = 7;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 20'000;
  cfg.max_cycles = 300'000;
  cfg.latency_histogram = true;
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(r.latency_hist.has_value());
  EXPECT_EQ(r.latency_hist->count(), r.latency.count());
  // Percentiles are ordered and bracket the mean sensibly.
  const double p50 = r.latency_hist->quantile(0.5);
  const double p95 = r.latency_hist->quantile(0.95);
  const double p99 = r.latency_hist->quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p99, r.latency.mean());
  EXPECT_GE(r.latency.min() + 1e-9, 17.0);  // D_min + s_f - 1
}

TEST(LatencyHistogram, AbsentByDefault) {
  topo::ButterflyFatTree ft(1);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.02;
  cfg.worm_flits = 8;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 2'000;
  Simulator s(net, cfg);
  const SimResult r = s.run();
  EXPECT_FALSE(r.latency_hist.has_value());
}

}  // namespace
}  // namespace wormnet::sim

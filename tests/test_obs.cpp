// Observability layer tests: registry semantics, snapshot determinism under
// the thread pool, histogram bucket edges, exporter well-formedness, trace
// span mechanics, the per-subsystem log routing, and — the hard contract —
// that the simulator's opt-in worm trace is zero-overhead when off: a
// seeded run with tracing enabled is bit-identical to the same run with it
// disabled (the trace observes; it never perturbs).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/general_model.hpp"
#include "core/traffic_model.hpp"
#include "obs/adapters.hpp"
#include "obs/log_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/fault.hpp"
#include "traffic/traffic_spec.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace wormnet {
namespace {

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, CounterGaugeBasics) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("events_total");
  c.inc();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_DOUBLE_EQ(reg.value("events_total"), 5.0);

  obs::Gauge& g = reg.gauge("queue_depth", "engine=a");
  g.set(17.5);
  EXPECT_DOUBLE_EQ(reg.value("queue_depth", "engine=a"), 17.5);
  // Same name, different labels: an independent series.
  reg.gauge("queue_depth", "engine=b").set(3.0);
  EXPECT_DOUBLE_EQ(reg.value("queue_depth", "engine=a"), 17.5);
  EXPECT_DOUBLE_EQ(reg.value("queue_depth", "engine=b"), 3.0);
  EXPECT_EQ(reg.size(), 3u);

  // Get-or-register returns the SAME metric.
  EXPECT_EQ(&reg.counter("events_total"), &c);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);                       // zeroed in place
  EXPECT_DOUBLE_EQ(reg.value("queue_depth", "engine=a"), 0.0);
  EXPECT_EQ(reg.size(), 3u);                      // registrations survive
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW(reg.counter("h"), std::logic_error);
  // Same histogram, different edges: also a registration bug.
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), std::logic_error);
  // Same edges: fine, it's the same metric.
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
}

TEST(ObsHistogram, BucketEdgeSemantics) {
  obs::Registry reg;
  // Bucket i counts x <= edges[i]; the last bucket is the overflow.
  obs::HistogramMetric& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper edge)
  h.observe(1.001); // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(99.0);  // overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 4.0 + 99.0);

  EXPECT_THROW(obs::HistogramMetric(std::vector<double>{}), std::logic_error);
  EXPECT_THROW(obs::HistogramMetric(std::vector<double>{2.0, 1.0}),
               std::logic_error);
}

// Snapshot order is (name, labels)-sorted regardless of which thread
// registered first: hammer the registry from the pool with a
// thread-dependent registration order and require identical snapshots.
TEST(ObsRegistry, SnapshotDeterministicUnderThreadPool) {
  auto run_once = [](unsigned threads) {
    obs::Registry reg;
    util::ThreadPool pool(threads);
    util::parallel_for(pool, 64, [&](std::int64_t i) {
      const std::string name = "metric_" + std::to_string(i % 8);
      const std::string labels = "worker=" + std::to_string(i % 4);
      reg.counter(name, labels).add(static_cast<std::uint64_t>(i % 8) + 1);
      reg.gauge("gauge_" + std::to_string(i % 3)).set(1.0);
      reg.histogram("hist", {1.0, 10.0}).observe(static_cast<double>(i % 16));
    });
    return reg.snapshot();
  };
  const obs::Snapshot a = run_once(2);
  const obs::Snapshot b = run_once(7);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].name, b.entries[i].name);
    EXPECT_EQ(a.entries[i].labels, b.entries[i].labels);
    EXPECT_EQ(a.entries[i].kind, b.entries[i].kind);
    EXPECT_EQ(a.entries[i].value, b.entries[i].value);
    EXPECT_EQ(a.entries[i].buckets, b.entries[i].buckets);
  }
  // And sorted: snapshot order is the map order.
  for (std::size_t i = 1; i < a.entries.size(); ++i) {
    EXPECT_LE(std::make_pair(a.entries[i - 1].name, a.entries[i - 1].labels),
              std::make_pair(a.entries[i].name, a.entries[i].labels));
  }
}

// --------------------------------------------------------------- exporters

obs::Snapshot exporter_fixture() {
  obs::Registry reg;
  reg.counter("hits_total", "engine=sweep").add(42);
  reg.gauge("rate").set(0.125);
  obs::HistogramMetric& h = reg.histogram("wait", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  return reg.snapshot();
}

TEST(ObsExport, JsonShape) {
  const std::string json = obs::to_json(exporter_fixture());
  // Lightweight well-formedness: balanced braces/brackets, no trailing
  // comma before a closer, and the expected keys present.
  int brace = 0, bracket = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    brace += ch == '{';
    brace -= ch == '}';
    bracket += ch == '[';
    bracket -= ch == ']';
    if (ch == ',') {
      std::size_t j = i + 1;
      while (j < json.size() && (json[j] == ' ' || json[j] == '\n')) ++j;
      ASSERT_TRUE(j < json.size() && json[j] != '}' && json[j] != ']')
          << "trailing comma at offset " << i;
    }
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
  EXPECT_NE(json.find("\"hits_total\""), std::string::npos);
  EXPECT_NE(json.find("\"engine=sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"histogram\""), std::string::npos);
}

TEST(ObsExport, CsvShape) {
  const std::string csv = obs::to_csv(exporter_fixture());
  EXPECT_EQ(csv.find("name,labels,kind,value,count"), 0u);
  // Header + 3 metrics.
  int lines = 0;
  for (char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 4);
}

TEST(ObsExport, PrometheusCumulativeBuckets) {
  const std::string prom = obs::to_prometheus(exporter_fixture());
  EXPECT_NE(prom.find("# TYPE hits_total counter"), std::string::npos);
  EXPECT_NE(prom.find("hits_total{engine=\"sweep\"} 42"), std::string::npos);
  // `le` buckets are cumulative and end at +Inf == count.
  EXPECT_NE(prom.find("wait_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("wait_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("wait_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("wait_count 3"), std::string::npos);
}

// ------------------------------------------------------------------- trace

TEST(ObsTrace, ScopedTimerInertWhenOff) {
  obs::set_tracing(false);
  const std::size_t before = obs::default_trace().size();
  {
    WORMNET_SPAN("should_not_record", "test");
  }
  EXPECT_EQ(obs::default_trace().size(), before);
}

TEST(ObsTrace, ExplicitLogRecordsSpan) {
  obs::TraceLog log;
  {
    obs::ScopedTimer t("solve", "core", &log);
  }
  log.instant("marker", "test", 123, 5, 2);
  ASSERT_EQ(log.size(), 2u);
  const std::vector<obs::TraceEvent> ev = log.events();
  EXPECT_EQ(ev[0].name, "solve");
  EXPECT_EQ(ev[0].ph, 'X');
  EXPECT_GE(ev[0].dur, 0);
  EXPECT_EQ(ev[1].ph, 'i');
  EXPECT_EQ(ev[1].ts, 123);
  EXPECT_EQ(ev[1].tid, 5u);
  EXPECT_EQ(ev[1].pid, 2u);
}

TEST(ObsTrace, ChromeJsonWellFormed) {
  obs::TraceLog log;
  log.complete("a \"quoted\" name\\slash", "cat", 0, 10);
  log.instant("drop", "worm.drop", 42, 3, 2);
  const std::string json = log.chrome_json();
  EXPECT_EQ(json.find("{\"traceEvents\""), 0u);
  int brace = 0, bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;          // skip the escaped character
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    brace += ch == '{';
    brace -= ch == '}';
    bracket += ch == '[';
    bracket -= ch == ']';
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

// --------------------------------------------------------------- log sinks

TEST(ObsLog, PerSubsystemLevelsAndCountingSink) {
  obs::Registry reg;
  obs::CountingLogSink sink(reg, /*forward=*/false);
  obs::set_log_sink(&sink);
  util::set_log_level(util::LogLevel::Warn);              // the global default
  util::set_log_level(util::Subsystem::Sim, util::LogLevel::Error);
  util::set_log_level(util::Subsystem::Core, util::LogLevel::Debug);

  WORMNET_LOG_SUB(Sim, Warn) << "filtered: sim is at Error";
  WORMNET_LOG_SUB(Sim, Error) << "counted";
  WORMNET_LOG_SUB(Core, Debug) << "counted: core overrides down to Debug";
  WORMNET_LOG_SUB(Topo, Info) << "filtered: topo follows the global Warn";
  WORMNET_LOG(Warn) << "counted under general";

  obs::set_log_sink(nullptr);
  util::clear_subsystem_log_levels();

  EXPECT_DOUBLE_EQ(
      reg.value("wormnet_log_messages_total", "subsystem=sim,level=error"), 1.0);
  EXPECT_DOUBLE_EQ(
      reg.value("wormnet_log_messages_total", "subsystem=sim,level=warn"), 0.0);
  EXPECT_DOUBLE_EQ(
      reg.value("wormnet_log_messages_total", "subsystem=core,level=debug"), 1.0);
  EXPECT_DOUBLE_EQ(
      reg.value("wormnet_log_messages_total", "subsystem=topo,level=info"), 0.0);
  EXPECT_DOUBLE_EQ(
      reg.value("wormnet_log_messages_total", "subsystem=general,level=warn"),
      1.0);
}

// ------------------------------------------------------- solver telemetry

TEST(ObsTelemetry, SolveTelemetryAndPublish) {
  topo::ButterflyFatTree ft(3);
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  const core::GeneralModel model =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform(), opts);
  const double sat = core::model_saturation_rate(model, opts);

  const core::SolveResult mid = core::model_solve(model, 0.5 * sat, opts);
  ASSERT_TRUE(mid.stable);
  EXPECT_GT(mid.telemetry.max_utilization, 0.0);
  EXPECT_LT(mid.telemetry.max_utilization, 1.0);
  EXPECT_GE(mid.telemetry.max_utilization_class, 0);
  EXPECT_EQ(mid.telemetry.first_saturated_class, -1);
  EXPECT_STREQ(mid.telemetry.saturation_cause, "");

  const core::SolveResult over = core::model_solve(model, 1.5 * sat, opts);
  ASSERT_FALSE(over.stable);
  EXPECT_GE(over.telemetry.first_saturated_class, 0);
  EXPECT_STRNE(over.telemetry.saturation_cause, "");

  obs::Registry reg;
  obs::publish_solve(reg, mid, "mid");
  obs::publish_solve(reg, over, "over");
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("wormnet_solve_max_utilization", "model=mid"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("wormnet_solve_stable", "model=mid")->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.find("wormnet_solve_stable", "model=over")->value, 0.0);
  const obs::SnapshotEntry* util_hist =
      snap.find("wormnet_solve_channel_utilization", "model=mid");
  ASSERT_NE(util_hist, nullptr);
  EXPECT_EQ(util_hist->kind, obs::MetricKind::Histogram);
  EXPECT_GT(util_hist->count, 0u);
}

// A collapsed resident entering a degraded state rebuilds dense — and must
// say so: the global-registry Rebuild counter ticks (satellite of the
// fault-orbit follow-on in ROADMAP.md).
TEST(ObsTelemetry, CollapsedFaultFallbackCountsRebuild) {
  topo::ButterflyFatTree ft(3);
  core::TrafficBuildOptions build;
  build.collapse = core::CollapseMode::Auto;
  core::RetunableTrafficModel resident(ft, traffic::TrafficSpec::uniform(),
                                       {}, build);
  ASSERT_TRUE(resident.collapsed());

  const double before = obs::Registry::global().value(
      "wormnet_collapsed_fault_dense_rebuilds_total", "reason=broken-symmetry");
  auto fs = std::make_shared<topo::FaultSet>(ft);
  fs->fail_link(ft.switch_id(1, 0), topo::ButterflyFatTree::kParentPort0);
  const core::RetuneReport rep = resident.retune_faults(fs);
  EXPECT_TRUE(rep.rebuilt);
  EXPECT_FALSE(resident.collapsed());
  const double after = obs::Registry::global().value(
      "wormnet_collapsed_fault_dense_rebuilds_total", "reason=broken-symmetry");
  EXPECT_DOUBLE_EQ(after, before + 1.0);
}

// ---------------------------------------------- zero-overhead-off goldens

sim::SimConfig seeded_open_loop() {
  sim::SimConfig cfg;
  cfg.load_flits = 0.05;
  cfg.worm_flits = 16;
  cfg.seed = 1234;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 3000;
  cfg.max_cycles = 100000;
  cfg.channel_stats = true;
  return cfg;
}

// The worm-lifecycle trace must be pure observation: the same seeded run
// with cfg.trace set produces a bit-identical SimResult to the run without
// it (so every pre-existing golden stays valid with tracing compiled in).
TEST(ObsSim, TraceIsZeroOverheadOnResults) {
  topo::ButterflyFatTree ft(3);
  sim::SimNetwork net(ft);

  sim::Simulator plain(net, seeded_open_loop());
  const sim::SimResult off = plain.run();

  obs::TraceLog trace;
  sim::SimConfig cfg = seeded_open_loop();
  cfg.trace = &trace;
  sim::Simulator traced(net, cfg);
  const sim::SimResult on = traced.run();

  // Bitwise comparison of every statistic the goldens use.
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.saturated, on.saturated);
  EXPECT_EQ(off.cycles_run, on.cycles_run);
  EXPECT_EQ(off.delivered_messages, on.delivered_messages);
  EXPECT_EQ(off.delivered_flits, on.delivered_flits);
  EXPECT_EQ(off.generated_messages, on.generated_messages);
  EXPECT_EQ(off.latency.count(), on.latency.count());
  EXPECT_EQ(off.latency.mean(), on.latency.mean());          // exact ==
  EXPECT_EQ(off.latency.stddev(), on.latency.stddev());
  EXPECT_EQ(off.queue_wait.mean(), on.queue_wait.mean());
  EXPECT_EQ(off.inj_service.mean(), on.inj_service.mean());
  EXPECT_EQ(off.throughput_flits_per_pe, on.throughput_flits_per_pe);
  ASSERT_EQ(off.channels.size(), on.channels.size());
  for (std::size_t i = 0; i < off.channels.size(); ++i) {
    EXPECT_EQ(off.channels[i].worms, on.channels[i].worms);
    EXPECT_EQ(off.channels[i].busy_cycles, on.channels[i].busy_cycles);
    EXPECT_EQ(off.channels[i].flits, on.channels[i].flits);
  }

  // And the traced run actually recorded worm lifecycles.
  EXPECT_GT(trace.size(), 0u);
  bool saw_flight = false;
  for (const obs::TraceEvent& e : trace.events()) {
    EXPECT_EQ(e.pid, 2u);  // sim timebase
    if (e.cat == "worm.flight") saw_flight = true;
  }
  EXPECT_TRUE(saw_flight);

  // publish_sim turns the per-channel export into registry series.
  obs::Registry reg;
  obs::publish_sim(reg, on, "golden");
  const obs::Snapshot snap = reg.snapshot();
  const obs::SnapshotEntry* util_hist =
      snap.find("wormnet_sim_channel_utilization", "run=golden");
  ASSERT_NE(util_hist, nullptr);
  EXPECT_EQ(util_hist->count, on.channels.size());
  EXPECT_DOUBLE_EQ(
      snap.find("wormnet_sim_delivered_messages", "run=golden")->value,
      static_cast<double>(on.delivered_messages));
}

}  // namespace
}  // namespace wormnet

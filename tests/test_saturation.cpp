// Tests for the Eq. 26 saturation solver.
#include "core/saturation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "core/network_model.hpp"
#include "util/math.hpp"

namespace wormnet::core {
namespace {

TEST(Saturation, ConstantServiceTime) {
  // x̄(λ) = 20 regardless of load: saturation at λ = 1/20.
  const double rate = find_saturation_rate([](double) { return 20.0; }, 1.0);
  EXPECT_NEAR(rate, 0.05, 1e-9);
}

TEST(Saturation, LinearServiceGrowth) {
  // x̄(λ) = 10 + 100λ: solve λ(10 + 100λ) = 1 -> λ = (−10+√(10²+400))/200.
  const double rate =
      find_saturation_rate([](double l) { return 10.0 + 100.0 * l; }, 1.0);
  const double expected = (-10.0 + std::sqrt(100.0 + 400.0)) / 200.0;
  EXPECT_NEAR(rate, expected, 1e-9);
}

TEST(Saturation, HandlesInfinitePastStability) {
  // Service blows up at λ = 0.04; the solver must converge below it.
  auto service = [](double l) {
    return l < 0.04 ? 10.0 / (1.0 - l / 0.04) : util::kInf;
  };
  const double rate = find_saturation_rate(service, 1.0);
  EXPECT_LT(rate, 0.04);
  EXPECT_GT(rate, 0.0);
  // At the root, λ·x̄ ≈ 1.
  EXPECT_NEAR(rate * service(rate), 1.0, 1e-6);
}

TEST(Saturation, GrowsBracketWhenUpperBoundTooSmall) {
  // Root is at 0.05 but we pass an upper bound of 0.001: bracket growth
  // must find it anyway.
  const double rate = find_saturation_rate([](double) { return 20.0; }, 0.001);
  EXPECT_NEAR(rate, 0.05, 1e-6);
}

TEST(Saturation, FatTreeModelAndGraphAgree) {
  for (int levels : {2, 3, 5}) {
    FatTreeModel closed({.levels = levels, .worm_flits = 16.0});
    const GeneralModel net = build_fattree_collapsed(levels);
    SolveOptions opts;
    opts.worm_flits = 16.0;
    EXPECT_NEAR(model_saturation_rate(net, opts), closed.saturation_rate(),
                1e-6 * closed.saturation_rate())
        << "levels=" << levels;
  }
}

TEST(Saturation, LargerNetworksSaturateEarlier) {
  // Deeper fat-trees funnel proportionally more traffic through their upper
  // levels relative to a processor's injection capacity.
  double prev = 1.0;
  for (int levels : {1, 2, 3, 4, 5}) {
    FatTreeModel m({.levels = levels, .worm_flits = 16.0});
    const double sat = m.saturation_load();
    EXPECT_LT(sat, prev) << "levels=" << levels;
    prev = sat;
  }
}

TEST(Saturation, AblationsShiftSaturationTheRightWay) {
  FatTreeModelOptions base{.levels = 5, .worm_flits = 16.0};
  const double sat_full = FatTreeModel(base).saturation_load();

  FatTreeModelOptions no_ms = base;
  no_ms.multi_server = false;
  // Ignoring the pooled two-server bundles makes queues look worse:
  // saturation moves DOWN.
  EXPECT_LT(FatTreeModel(no_ms).saturation_load(), sat_full);

  FatTreeModelOptions no_block = base;
  no_block.blocking_correction = false;
  // Charging full waits (P = 1) also predicts earlier saturation.
  EXPECT_LT(FatTreeModel(no_block).saturation_load(), sat_full);

  FatTreeModelOptions typo = base;
  typo.erratum_2lambda = false;
  // The typo'd M/G/2 under-counts arrivals: optimistically late saturation.
  EXPECT_GT(FatTreeModel(typo).saturation_load(), sat_full);
}

}  // namespace
}  // namespace wormnet::core

// Tests for the shared ChannelSolver kernel — the single home of the
// paper's wait/blocking recurrence — including the machine-precision parity
// between the two model implementations that consume it.
#include "queueing/channel_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "queueing/queueing.hpp"
#include "util/math.hpp"

namespace wormnet {
namespace {

using core::FatTreeEvaluation;
using core::FatTreeModel;
using core::FatTreeModelOptions;
using core::GeneralModel;
using core::SolveResult;
using queueing::AblationOptions;
using queueing::ChannelSolver;

TEST(ChannelSolver, BundleWaitDispatchesOnServerCount) {
  const ChannelSolver solver(16.0);
  const double lam = 0.01, x = 24.0;
  // m = 1 → M/G/1 (Eq. 6).
  EXPECT_DOUBLE_EQ(solver.bundle_wait(1, lam, x),
                   queueing::mg1_wait_wormhole(lam, x, 16.0));
  // m = 2 → Hokstad M/G/2 at the TOTAL rate 2λ (Eq. 8 + erratum).
  EXPECT_DOUBLE_EQ(solver.bundle_wait(2, lam, x),
                   queueing::mg2_wait_wormhole(2.0 * lam, x, 16.0));
  // m = 3 → generalized M/G/m at the total rate.
  EXPECT_DOUBLE_EQ(solver.bundle_wait(3, lam, x),
                   queueing::mgm_wait_wormhole(3, 3.0 * lam, x, 16.0));
}

TEST(ChannelSolver, ErratumSwitchSelectsPerLinkRate) {
  AblationOptions abl;
  abl.erratum_2lambda = false;
  const ChannelSolver typo(16.0, abl);
  const double lam = 0.01, x = 24.0;
  // As typeset: the M/G/2 sees only the per-link rate.
  EXPECT_DOUBLE_EQ(typo.bundle_wait(2, lam, x),
                   queueing::mg2_wait_wormhole(lam, x, 16.0));
}

TEST(ChannelSolver, MultiServerSwitchFallsBackToMg1) {
  AblationOptions abl;
  abl.multi_server = false;
  const ChannelSolver split(16.0, abl);
  const double lam = 0.01, x = 24.0;
  // Every bundle treated as independent M/G/1 links at the per-link rate.
  EXPECT_DOUBLE_EQ(split.bundle_wait(2, lam, x),
                   queueing::mg1_wait_wormhole(lam, x, 16.0));
  EXPECT_DOUBLE_EQ(split.bundle_wait(4, lam, x),
                   queueing::mg1_wait_wormhole(lam, x, 16.0));
}

TEST(ChannelSolver, BlockingFactorMatchesEq10) {
  const ChannelSolver solver(16.0);
  // P = 1 - (λ_in/λ_out)·R, clamped into [0, 1].
  EXPECT_DOUBLE_EQ(solver.blocking_factor(1, 0.01, 0.02, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(solver.blocking_factor(2, 0.01, 0.01, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(solver.blocking_factor(1, 0.05, 0.01, 1.0), 0.0);  // clamped
  // No load on the target: vacuous correction.
  EXPECT_DOUBLE_EQ(solver.blocking_factor(1, 0.01, 0.0, 0.5), 1.0);
}

TEST(ChannelSolver, BlockingFactorAblations) {
  AblationOptions off;
  off.blocking_correction = false;
  EXPECT_DOUBLE_EQ(ChannelSolver(16.0, off).blocking_factor(1, 0.05, 0.01, 1.0), 1.0);

  // With independent single-server links the worm commits to one specific
  // link of m uniformly: R divides by m for multi-server targets only.
  AblationOptions split;
  split.multi_server = false;
  const ChannelSolver s(16.0, split);
  EXPECT_DOUBLE_EQ(s.blocking_factor(2, 0.01, 0.02, 0.5),
                   1.0 - (0.01 / 0.02) * 0.25);
  EXPECT_DOUBLE_EQ(s.blocking_factor(1, 0.01, 0.02, 0.5),
                   1.0 - (0.01 / 0.02) * 0.5);
}

TEST(ChannelSolver, WaitTermShortCircuitsZeroTimesInfinity) {
  EXPECT_DOUBLE_EQ(ChannelSolver::wait_term(0.0, util::kInf), 0.0);
  EXPECT_DOUBLE_EQ(ChannelSolver::wait_term(0.5, 10.0), 5.0);
  EXPECT_TRUE(std::isinf(ChannelSolver::wait_term(0.5, util::kInf)));
}

TEST(ChannelSolver, UtilizationUsesTrueTotalRate) {
  AblationOptions typo;
  typo.erratum_2lambda = false;  // must NOT affect utilization
  const ChannelSolver a(16.0), b(16.0, typo);
  EXPECT_DOUBLE_EQ(a.bundle_utilization(2, 0.01, 24.0),
                   queueing::utilization(0.02, 24.0, 2));
  EXPECT_DOUBLE_EQ(b.bundle_utilization(2, 0.01, 24.0),
                   a.bundle_utilization(2, 0.01, 24.0));
}

TEST(ChannelSolver, RejectsNonPositiveWormLength) {
  EXPECT_DEATH(ChannelSolver(0.0), "precondition");
}

// ---------------------------------------------------------------------------
// The acceptance check of the refactor: with the recurrence living in ONE
// kernel, the closed-form fat-tree model and the general solver on the
// collapsed fat-tree graph must agree to machine precision — per level,
// per quantity, across every ablation combination.
class KernelParity : public ::testing::TestWithParam<int> {};

TEST_P(KernelParity, ClosedFormAndGraphSolverAgreeThroughKernel) {
  const int mask = GetParam();
  const int levels = 4;
  const double sf = 16.0;

  FatTreeModelOptions fo{.levels = levels, .worm_flits = sf};
  fo.multi_server = (mask & 1) != 0;
  fo.blocking_correction = (mask & 2) != 0;
  fo.erratum_2lambda = (mask & 4) != 0;
  const FatTreeModel closed(fo);

  GeneralModel net = core::build_fattree_collapsed(levels);
  net.opts.worm_flits = sf;
  net.opts.multi_server = fo.multi_server;
  net.opts.blocking_correction = fo.blocking_correction;
  net.opts.erratum_2lambda = fo.erratum_2lambda;

  // Machine precision: both implementations run the identical kernel, so
  // any disagreement beyond last-ulp rounding (the closed form scales rates
  // by λ₀ before taking ratios, the graph solver takes ratios of unit
  // rates) is a divergence bug.
  const auto near = [](double a, double b) {
    return std::abs(a - b) <= 1e-12 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
  };
  for (double frac : {0.0, 0.3, 0.7, 0.95}) {
    const double lambda0 = closed.saturation_rate() * frac;
    const FatTreeEvaluation ev = closed.evaluate_detail(lambda0);
    const SolveResult res = net.solve(lambda0);
    if (!ev.stable) continue;
    for (int l = 0; l < levels; ++l) {
      const int up = net.class_id("up" + std::to_string(l));
      const int down = net.class_id("down" + std::to_string(l));
      EXPECT_TRUE(near(res.service_time(up), ev.x_up[static_cast<std::size_t>(l)]))
          << "mask=" << mask << " frac=" << frac << " l=" << l;
      EXPECT_TRUE(near(res.service_time(down), ev.x_down[static_cast<std::size_t>(l)]))
          << "mask=" << mask << " frac=" << frac << " l=" << l;
      EXPECT_TRUE(near(res.wait(up), ev.w_up[static_cast<std::size_t>(l)]))
          << "mask=" << mask << " frac=" << frac << " l=" << l;
      EXPECT_TRUE(near(res.wait(down), ev.w_down[static_cast<std::size_t>(l)]))
          << "mask=" << mask << " frac=" << frac << " l=" << l;
      EXPECT_TRUE(near(res.utilization(up), ev.rho_up[static_cast<std::size_t>(l)]))
          << "mask=" << mask << " frac=" << frac << " l=" << l;
    }
    // And the network-level summary via the polymorphic interface.
    const core::LatencyEstimate a = closed.evaluate(lambda0);
    const core::LatencyEstimate b = net.evaluate(lambda0);
    EXPECT_TRUE(near(a.latency, b.latency)) << "mask=" << mask << " frac=" << frac;
    EXPECT_TRUE(near(a.inj_wait, b.inj_wait)) << "mask=" << mask << " frac=" << frac;
    EXPECT_TRUE(near(a.inj_service, b.inj_service))
        << "mask=" << mask << " frac=" << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(AblationMasks, KernelParity, ::testing::Range(0, 8));

// The generalized m-parent fat-tree goes through the M/G/m branch of the
// kernel; parity must hold there too.
TEST(KernelParityMultiServer, ParentsThreeAndFourAgree) {
  for (int m : {1, 3, 4}) {
    const FatTreeModel closed(
        {.levels = 3, .worm_flits = 16.0, .parents = m});
    GeneralModel net = core::build_fattree_collapsed(3, m);
    net.opts.worm_flits = 16.0;
    const double lambda0 = closed.saturation_rate() * 0.6;
    const core::LatencyEstimate a = closed.evaluate(lambda0);
    const core::LatencyEstimate b = net.evaluate(lambda0);
    ASSERT_TRUE(a.stable) << "m=" << m;
    EXPECT_NEAR(a.latency, b.latency, 1e-9 * a.latency) << "m=" << m;
    EXPECT_NEAR(a.inj_service, b.inj_service, 1e-9 * a.inj_service) << "m=" << m;
  }
}

}  // namespace
}  // namespace wormnet

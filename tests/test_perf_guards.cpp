// Performance-contract guards (ctest label `perf`), the enforcement side of
// the perf overhaul:
//
//  * zero-allocation steady state — a global operator-new counter proves
//    the simulator's cycle loop performs NO heap allocation once the run
//    has reached its concurrency high-water mark (the reused scratch
//    buffers, ring queues and pooled worm paths are load-bearing, not
//    decorative);
//  * SimEngine determinism — a campaign's results are bitwise-identical
//    parallel vs serial, the same contract SweepEngine carries.
//
// (The third determinism contract of the overhaul — build_traffic_model
// bitwise-identical for every thread count — lives with the rest of the
// builder's coverage in tests/test_traffic_model.cpp, per topology x
// pattern cell.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "harness/sim_engine.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting global allocator: every path into the heap bumps the counter.
// Only counts — never forbids — so gtest and the standard library work
// normally; tests sample the counter around the region they constrain.
void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wormnet {
namespace {

TEST(AllocationGuard, SteadyStateCycleLoopAllocatesNothing) {
  // Drive the fat-tree at half saturation, let the run climb to its
  // concurrency high-water mark, then demand bitwise silence from the
  // allocator for a hundred thousand further cycles.
  //
  // The contract being enforced: the cycle loop allocates ONLY when a
  // container grows past its high-water mark (worm pool, active list, a
  // bundle's request ring) — never per cycle, per worm, per grant or per
  // arrival, the way the pre-overhaul loop did (a fresh std::vector every
  // phase_allocate, deque block churn in every queue).  Under stochastic
  // load high-water events get exponentially rarer but never provably
  // stop, so the window below is chosen inside this seed's empirically
  // allocation-free plateau (cycles ~40k–190k; the run is deterministic,
  // so the plateau is too).
  topo::ButterflyFatTree ft(3);
  sim::SimNetwork net(ft);
  sim::SimConfig cfg;
  cfg.load_flits = 0.08;  // ~half of the N=64 uniform saturation (~0.16)
  cfg.worm_flits = 16;
  cfg.seed = 5;
  cfg.warmup_cycles = 1000;  // open-loop runs require a warmup (validated)
  cfg.measure_cycles = 200000;
  cfg.max_cycles = 1000000;
  cfg.channel_stats = true;  // per-channel counters are preallocated

  sim::Simulator warm(net, cfg);
  ASSERT_FALSE(warm.advance(60000));  // ramp: allocations allowed here
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  ASSERT_FALSE(warm.advance(100000));  // steady state: none allowed
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << (after - before) << " heap allocations in the steady-state window";

  // Segmented execution is an instrumentation detail, not a semantic one:
  // finishing the run yields the exact result of one uninterrupted run().
  const sim::SimResult seg = warm.run();
  sim::Simulator fresh(net, cfg);
  const sim::SimResult full = fresh.run();
  EXPECT_EQ(seg.cycles_run, full.cycles_run);
  EXPECT_EQ(seg.latency.count(), full.latency.count());
  EXPECT_EQ(seg.latency.mean(), full.latency.mean());
  EXPECT_EQ(seg.delivered_flits, full.delivered_flits);
  EXPECT_EQ(seg.throughput_flits_per_pe, full.throughput_flits_per_pe);
}

void expect_bitwise_equal(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.min(), b.latency.min());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.queue_wait.mean(), b.queue_wait.mean());
  EXPECT_EQ(a.inj_service.mean(), b.inj_service.mean());
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
  EXPECT_EQ(a.delivered_flits, b.delivered_flits);
  EXPECT_EQ(a.generated_messages, b.generated_messages);
  EXPECT_EQ(a.throughput_flits_per_pe, b.throughput_flits_per_pe);
}

TEST(SimEngineDeterminism, CampaignBitwiseIdenticalParallelVsSerial) {
  // The acceptance criterion of the SimEngine: a campaign on >= 4 threads
  // produces BITWISE-identical per-cell results to the serial path — same
  // per-cell seeds, no cross-cell state, scheduling reorders work only.
  topo::ButterflyFatTree ft(2);
  topo::Hypercube hc(3);
  auto cfg_at = [](double load, std::uint64_t seed) {
    sim::SimConfig cfg;
    cfg.load_flits = load;
    cfg.worm_flits = 16;
    cfg.seed = seed;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 5000;
    cfg.max_cycles = 100000;
    return cfg;
  };
  std::vector<harness::SimCell> cells;
  cells.push_back({&ft, cfg_at(0.10, 31), 3, "ft-10"});
  cells.push_back({&ft, cfg_at(0.22, 32), 2, "ft-22"});
  cells.push_back({&hc, cfg_at(0.15, 33), 3, "hc-15"});

  harness::SimEngine parallel({/*threads=*/4, /*parallel=*/true});
  harness::SimEngine serial({/*threads=*/0, /*parallel=*/false});
  EXPECT_EQ(parallel.threads(), 4u);
  EXPECT_EQ(serial.threads(), 1u);

  const auto pa = parallel.run_cells(cells);
  const auto se = serial.run_cells(cells);
  ASSERT_EQ(pa.size(), se.size());
  for (std::size_t c = 0; c < pa.size(); ++c) {
    ASSERT_EQ(pa[c].runs.size(), se[c].runs.size()) << "cell " << c;
    for (std::size_t r = 0; r < pa[c].runs.size(); ++r) {
      expect_bitwise_equal(pa[c].runs[r], se[c].runs[r]);
    }
    // Aggregates reduce in replication order on both sides: bitwise too.
    EXPECT_EQ(pa[c].latency.mean, se[c].latency.mean) << "cell " << c;
    EXPECT_EQ(pa[c].latency.stddev, se[c].latency.stddev) << "cell " << c;
    EXPECT_EQ(pa[c].throughput.mean, se[c].throughput.mean) << "cell " << c;
  }
}

}  // namespace
}  // namespace wormnet

// Heterogeneous-link / finite-buffer model-vs-sim conformance.
//
// PR 8 threads per-channel bandwidth, link latency and buffer depth through
// the solver and the flit-level simulator; this suite is the acceptance
// table for that claim, mirroring test_model_vs_sim_conformance.cpp:
// every covered (taper × buffer depth × lane count) cell of a levels-2
// butterfly fat-tree under uniform traffic is evaluated at 20% / 50% / 80%
// of the cell's own model saturation, and the relative latency error
// |model - sim| / sim must stay inside the row's bound.
//
// Axes:
//  * taper       — tier-1 (switch-to-switch) links at bandwidth 1/2 or 1/4
//                  of the processor links, the oversubscribed fat-tree of
//                  the ISSUE (set via ButterflyFatTree::set_tier_bandwidth);
//  * buffer depth— per-lane flit buffers of 2, 8 or ∞ flits; the model's
//                  effective bandwidth b·B/(B+b) must track the simulator's
//                  credit backpressure (B flits per B·k+1 cycles);
//  * lanes       — 1 and 2 virtual channels.
//
// Bound structure follows the uniform harness: the 20% and 50% points hold
// within the below-80%-load contract (<= 0.10 / <= 0.15); the 80% point sits
// near the knee, where the model's idealizations compound, and carries its
// own measured-and-margined bound per cell (raw errors in EXPERIMENTS.md).
//
// Alongside the table: the buffer-induced saturation SHIFT direction (deeper
// buffers => higher saturation, in both model and simulator, for every taper
// × lane combination), the bit-identity guarantees (defaulted attributes
// reproduce the paper path exactly; attribute round-trips restore the
// content digest), collapsed-vs-dense parity on a tapered topology, and the
// symmetry fallback when attributes break the declared channel classes.
//
// Every cell uses a fixed seed; the whole table runs as one shared
// harness::SimEngine campaign, like the uniform suite.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/traffic_model.hpp"
#include "harness/sim_engine.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/symmetry.hpp"
#include "util/math.hpp"

namespace wormnet {
namespace {

enum class Taper { T2to1, T4to1 };

struct Cell {
  Taper taper;
  int depth;  ///< per-lane flit-buffer depth; 0 = infinite
  int lanes;
  // Relative latency error bounds at 20% / 50% / 80% of model saturation.
  double bound20;
  double bound50;
  double bound80;
};

// Measured errors (recorded in EXPERIMENTS.md) plus regression margin.
// The below-80%-load contract: bound20 <= 0.10, bound50 <= 0.15 everywhere.
// At 80% the model is conservative in EVERY cell (it predicts the knee a
// little early — the safe direction for capacity planning), matching the
// uniform suite's multi-lane 80% bounds of 0.42-0.50.
const Cell kCells[] = {
    // taper          depth  L   20%   50%   80%
    {Taper::T2to1,       2,  1, 0.10, 0.15, 0.35},
    {Taper::T2to1,       2,  2, 0.10, 0.15, 0.55},
    {Taper::T2to1,       8,  1, 0.10, 0.15, 0.20},
    {Taper::T2to1,       8,  2, 0.10, 0.15, 0.40},
    {Taper::T2to1,       0,  1, 0.10, 0.15, 0.20},
    {Taper::T2to1,       0,  2, 0.10, 0.15, 0.20},
    {Taper::T4to1,       2,  1, 0.10, 0.15, 0.45},
    {Taper::T4to1,       2,  2, 0.10, 0.15, 0.45},
    {Taper::T4to1,       8,  1, 0.10, 0.15, 0.38},
    {Taper::T4to1,       8,  2, 0.10, 0.15, 0.38},
    {Taper::T4to1,       0,  1, 0.10, 0.15, 0.33},
    {Taper::T4to1,       0,  2, 0.10, 0.15, 0.20},
};
constexpr std::size_t kNumCells = std::size(kCells);
constexpr double kFracs[3] = {0.2, 0.5, 0.8};

double taper_bandwidth(Taper t) { return t == Taper::T2to1 ? 0.5 : 0.25; }

int cell_depth(const Cell& c) {
  return c.depth == 0 ? util::kInfiniteBufferDepth : c.depth;
}

std::unique_ptr<topo::ButterflyFatTree> make_tapered(Taper taper, int depth,
                                                     int lanes) {
  auto topo = std::make_unique<topo::ButterflyFatTree>(2);  // 16 processors
  topo->set_tier_bandwidth(1, taper_bandwidth(taper));
  topo->set_uniform_buffer_depth(depth);
  topo->set_uniform_lanes(lanes);
  return topo;
}

/// Everything the tests assert on, computed once for the whole table.
class Campaign {
 public:
  struct CellData {
    double model_sat = 0.0;  ///< λ₀* (messages/cycle/PE)
    std::array<core::LatencyEstimate, 3> model{};
    std::array<sim::SimResult, 3> sim{};  ///< latency runs at kFracs
    sim::SimResult overload;              ///< closed-loop saturation probe
  };

  static const Campaign& get() {
    static Campaign instance;
    return instance;
  }

  const CellData& cell(std::size_t i) const { return cells_[i]; }

 private:
  Campaign() {
    // One live topology per cell: a SimNetwork snapshots lanes AND link
    // attributes at construction.
    for (std::size_t i = 0; i < kNumCells; ++i) {
      const Cell& c = kCells[i];
      topos_.push_back(make_tapered(c.taper, cell_depth(c), c.lanes));
    }

    const traffic::TrafficSpec spec = traffic::TrafficSpec::uniform();
    cells_.resize(kNumCells);
    for (std::size_t i = 0; i < kNumCells; ++i) {
      core::SolveOptions opts;
      opts.worm_flits = 16.0;
      const core::GeneralModel model =
          core::build_traffic_model(*topos_[i], spec, opts);
      CellData& out = cells_[i];
      out.model_sat = core::model_saturation_rate(model, opts);
      for (int j = 0; j < 3; ++j) {
        out.model[static_cast<std::size_t>(j)] =
            core::model_latency(model, out.model_sat * kFracs[j], opts);
      }
    }

    std::vector<harness::SimCell> sim_cells;
    for (std::size_t i = 0; i < kNumCells; ++i) {
      for (int j = 0; j < 3; ++j) {
        harness::SimCell sc;
        sc.topology = topos_[i].get();
        sc.cfg.load_flits = cells_[i].model_sat * kFracs[j] * 16.0;
        sc.cfg.worm_flits = 16;
        sc.cfg.seed = 4200 + static_cast<std::uint64_t>(i);
        sc.cfg.traffic = spec;
        sc.cfg.warmup_cycles = 8000;
        sc.cfg.measure_cycles = 40000;
        sc.cfg.max_cycles = 600000;
        sc.cfg.channel_stats = false;
        sim_cells.push_back(std::move(sc));
      }
    }
    for (std::size_t i = 0; i < kNumCells; ++i) {
      harness::SimCell sc;
      sc.topology = topos_[i].get();
      sc.cfg.arrivals = sim::ArrivalProcess::Overload;
      sc.cfg.worm_flits = 16;
      sc.cfg.seed = 7;
      sc.cfg.traffic = spec;
      sc.cfg.warmup_cycles = 5000;
      sc.cfg.measure_cycles = 20000;
      sc.cfg.channel_stats = false;
      sim_cells.push_back(std::move(sc));
    }

    harness::SimEngine engine;
    const std::vector<harness::SimCellResult> results =
        engine.run_cells(sim_cells);
    for (std::size_t i = 0; i < kNumCells; ++i) {
      for (int j = 0; j < 3; ++j) {
        cells_[i].sim[static_cast<std::size_t>(j)] =
            results[i * 3 + static_cast<std::size_t>(j)].runs.front();
      }
      cells_[i].overload = results[kNumCells * 3 + i].runs.front();
    }
  }

  std::vector<std::unique_ptr<topo::ButterflyFatTree>> topos_;
  std::vector<CellData> cells_;
};

std::string cell_label(const Cell& c) {
  std::string name = c.taper == Taper::T2to1 ? "Taper2to1" : "Taper4to1";
  name += c.depth == 0 ? "DepthInf" : "Depth" + std::to_string(c.depth);
  name += "L" + std::to_string(c.lanes);
  return name;
}

void check_cell(std::size_t index) {
  const Cell& cell = kCells[index];
  const Campaign::CellData& data = Campaign::get().cell(index);
  ASSERT_GT(data.model_sat, 0.0);

  const double bounds[] = {cell.bound20, cell.bound50, cell.bound80};
  for (int i = 0; i < 3; ++i) {
    const core::LatencyEstimate& est = data.model[static_cast<std::size_t>(i)];
    ASSERT_TRUE(est.stable) << cell_label(cell) << " frac=" << kFracs[i];

    const sim::SimResult& r = data.sim[static_cast<std::size_t>(i)];
    ASSERT_TRUE(r.completed) << cell_label(cell) << " frac=" << kFracs[i];
    ASSERT_FALSE(r.saturated) << cell_label(cell) << " frac=" << kFracs[i];
    ASSERT_GT(r.latency.count(), 0);

    const double sim_latency = r.latency.mean();
    const double rel_err = std::abs(est.latency - sim_latency) / sim_latency;
    EXPECT_LE(rel_err, bounds[i])
        << cell_label(cell) << " frac=" << kFracs[i]
        << ": model=" << est.latency << " sim=" << sim_latency;
  }
}

class HeteroConformance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HeteroConformance, LatencyWithinCellBounds) { check_cell(GetParam()); }

std::string cell_name(const ::testing::TestParamInfo<std::size_t>& info) {
  return cell_label(kCells[info.param]);
}

INSTANTIATE_TEST_SUITE_P(Cells, HeteroConformance,
                         ::testing::Range<std::size_t>(0, kNumCells),
                         cell_name);

// The acceptance direction claim: finite buffers MOVE the saturation point
// down, and deeper buffers move it back up — in the model AND in the
// closed-loop simulation, for every taper × lane combination.  (Magnitudes
// are cell-bound territory; here only the ordering is contractual.)
TEST(HeteroSaturation, BufferDepthShiftDirectionMatchesSim) {
  // Cells are laid out depth-major per (taper, lanes): find the triple
  // (depth 2, depth 8, depth ∞) for each combination.
  for (const Taper taper : {Taper::T2to1, Taper::T4to1}) {
    for (const int lanes : {1, 2}) {
      std::map<int, std::size_t> by_depth;
      for (std::size_t i = 0; i < kNumCells; ++i) {
        if (kCells[i].taper == taper && kCells[i].lanes == lanes)
          by_depth[kCells[i].depth] = i;
      }
      ASSERT_EQ(by_depth.size(), 3u);
      const Campaign::CellData& d2 = Campaign::get().cell(by_depth.at(2));
      const Campaign::CellData& d8 = Campaign::get().cell(by_depth.at(8));
      const Campaign::CellData& dinf = Campaign::get().cell(by_depth.at(0));
      const std::string tag = cell_label(kCells[by_depth.at(2)]);

      // Model: strictly increasing saturation with depth.
      EXPECT_LT(d2.model_sat, d8.model_sat) << tag;
      EXPECT_LT(d8.model_sat, dinf.model_sat) << tag;

      // Simulator: the overload throughput shifts the same direction.
      const double t2 = d2.overload.throughput_flits_per_pe;
      const double t8 = d8.overload.throughput_flits_per_pe;
      const double tinf = dinf.overload.throughput_flits_per_pe;
      EXPECT_LT(t2, t8) << tag;
      EXPECT_LE(t8, tinf * 1.01) << tag;  // 8 vs ∞ shift is a few percent
      EXPECT_LT(t2, tinf) << tag;
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-identity: defaulted attributes must reproduce the paper path exactly.
// ---------------------------------------------------------------------------

// The finite_buffers ablation bit is inert on uniform attributes: switching
// it off changes nothing, bit for bit.
TEST(HeteroBitIdentity, FiniteBufferBitInertOnUniformAttributes) {
  topo::ButterflyFatTree topo(2);
  const traffic::TrafficSpec spec = traffic::TrafficSpec::uniform();
  core::SolveOptions on;
  on.worm_flits = 16.0;
  core::SolveOptions off = on;
  off.finite_buffers = false;
  const core::GeneralModel m_on = core::build_traffic_model(topo, spec, on);
  const core::GeneralModel m_off = core::build_traffic_model(topo, spec, off);
  const double sat = core::model_saturation_rate(m_on, on);
  EXPECT_EQ(sat, core::model_saturation_rate(m_off, off));
  for (const double frac : {0.1, 0.5, 0.9}) {
    const core::LatencyEstimate a = core::model_latency(m_on, sat * frac, on);
    const core::LatencyEstimate b = core::model_latency(m_off, sat * frac, off);
    EXPECT_EQ(a.latency, b.latency) << "frac " << frac;
    EXPECT_EQ(a.inj_wait, b.inj_wait) << "frac " << frac;
  }
}

// Buffer / bandwidth retunes round-trip the content digest bitwise: tuning
// away and back restores the exact resident the caches keyed on.
TEST(HeteroBitIdentity, AttributeRetuneRoundTripsContentDigest) {
  topo::ButterflyFatTree topo(2);
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  core::GeneralModel m = core::build_traffic_model(
      topo, traffic::TrafficSpec::uniform(), opts);
  const std::uint64_t digest0 = m.content_digest();

  m.set_uniform_buffers(4);
  EXPECT_NE(m.content_digest(), digest0);
  m.set_uniform_buffers(util::kInfiniteBufferDepth);
  EXPECT_EQ(m.content_digest(), digest0);

  m.set_uniform_bandwidth(0.5);
  EXPECT_NE(m.content_digest(), digest0);
  m.set_uniform_bandwidth(1.0);
  EXPECT_EQ(m.content_digest(), digest0);

  std::vector<double> bw(static_cast<std::size_t>(m.graph.size()), 1.0);
  bw[0] = 0.25;
  m.set_channel_bandwidths(bw);
  EXPECT_NE(m.content_digest(), digest0);
  bw[0] = 1.0;
  m.set_channel_bandwidths(bw);
  EXPECT_EQ(m.content_digest(), digest0);
}

// Explicitly setting every attribute to its default must leave the
// simulator on the exact golden path: no link features detected, and a
// seeded run bit-identical to a topology that never touched the setters.
TEST(HeteroBitIdentity, DefaultAttributesKeepSimGoldenPath) {
  for (const int lanes : {1, 2}) {
    topo::ButterflyFatTree plain(2);
    plain.set_uniform_lanes(lanes);
    topo::ButterflyFatTree dressed(2);
    dressed.set_uniform_lanes(lanes);
    dressed.set_uniform_bandwidth(1.0);
    dressed.set_uniform_link_latency(0.0);
    dressed.set_uniform_buffer_depth(util::kInfiniteBufferDepth);

    const sim::SimNetwork net_plain(plain);
    const sim::SimNetwork net_dressed(dressed);
    EXPECT_FALSE(net_plain.has_link_features());
    EXPECT_FALSE(net_dressed.has_link_features());

    sim::SimConfig cfg;
    cfg.load_flits = 0.3;
    cfg.worm_flits = 16;
    cfg.seed = 99;
    cfg.warmup_cycles = 2000;
    cfg.measure_cycles = 10000;
    sim::Simulator a(net_plain, cfg);
    sim::Simulator b(net_dressed, cfg);
    const sim::SimResult ra = a.run();
    const sim::SimResult rb = b.run();
    EXPECT_EQ(ra.delivered_messages, rb.delivered_messages) << "L" << lanes;
    EXPECT_EQ(ra.delivered_flits, rb.delivered_flits) << "L" << lanes;
    EXPECT_EQ(ra.cycles_run, rb.cycles_run) << "L" << lanes;
    EXPECT_EQ(ra.latency.mean(), rb.latency.mean()) << "L" << lanes;
  }
}

// ---------------------------------------------------------------------------
// Collapsed parity and symmetry safety on heterogeneous topologies.
// ---------------------------------------------------------------------------

// A tapered fat-tree keeps its (direction, level) channel classes — each
// tier is attribute-uniform — so the symmetric quotient must still apply
// and agree with the dense reference at the documented 1e-9/1e-12 bars.
TEST(HeteroCollapsed, TaperedFatTreeCollapsesWithParity) {
  topo::ButterflyFatTree topo(3);
  topo.set_tier_bandwidth(1, 0.5);
  topo.set_tier_bandwidth(2, 0.25);
  topo.set_uniform_buffer_depth(4);
  const traffic::TrafficSpec spec = traffic::TrafficSpec::uniform();
  core::SolveOptions opts;
  opts.worm_flits = 16.0;

  const core::GeneralModel quotient =
      core::build_traffic_model_collapsed(topo, spec, opts);
  ASSERT_FALSE(quotient.channel_class_of.empty())
      << "tapered fat-tree failed to collapse";
  EXPECT_LT(quotient.graph.size(),
            static_cast<int>(quotient.channel_class_of.size()));
  EXPECT_EQ(core::check_collapsed_parity(topo, spec, quotient, opts), "");

  const core::GeneralModel dense = core::build_traffic_model(topo, spec, opts);
  const double sat_d = core::model_saturation_rate(dense, opts);
  const double sat_q = core::model_saturation_rate(quotient, opts);
  EXPECT_NEAR(sat_q, sat_d, 1e-9 * sat_d);
  const core::LatencyEstimate ld = core::model_latency(dense, 0.5 * sat_d, opts);
  const core::LatencyEstimate lq =
      core::model_latency(quotient, 0.5 * sat_d, opts);
  EXPECT_NEAR(lq.latency, ld.latency, 1e-9 * ld.latency);
}

// Attributes that break the declared channel classes (here: bandwidth
// depending on node parity, which crosses the fat-tree's per-(direction,
// level) orbits) must disable the symmetry — the collapsed path silently
// refusing is what keeps user-invisible quotient models exact.
class ParityTaperedFatTree final : public topo::ButterflyFatTree {
 public:
  using ButterflyFatTree::ButterflyFatTree;
  double bandwidth(int node, int port) const override {
    (void)port;
    return node % 2 == 0 ? 1.0 : 0.5;
  }
};

TEST(HeteroCollapsed, ClassNonuniformAttributesDisableSymmetry) {
  ParityTaperedFatTree topo(2);
  const topo::ChannelTable ct(topo);
  topo::SymmetryClasses sym;
  EXPECT_FALSE(topo::topology_symmetry(topo, ct, {}, sym));

  // And the collapsed entry point falls back to the dense model rather than
  // producing a quotient that averages two different bandwidths.
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  const core::GeneralModel m = core::build_traffic_model_collapsed(
      topo, traffic::TrafficSpec::uniform(), opts);
  EXPECT_TRUE(m.channel_class_of.empty());
}

// The same check must PASS when the overridden attributes still respect the
// classes — tier-keyed bandwidth is exactly class-uniform.
TEST(HeteroCollapsed, TierUniformAttributesKeepSymmetry) {
  topo::ButterflyFatTree topo(2);
  topo.set_tier_bandwidth(1, 0.5);
  const topo::ChannelTable ct(topo);
  topo::SymmetryClasses sym;
  EXPECT_TRUE(topo::topology_symmetry(topo, ct, {}, sym));
  EXPECT_GT(sym.num_channel_classes, 0);
}

}  // namespace
}  // namespace wormnet

// Tests for the k-ary d-mesh with dimension-order routing.
#include "topo/mesh.hpp"

#include <gtest/gtest.h>

#include "topo/graph_checks.hpp"

namespace wormnet::topo {
namespace {

TEST(Mesh, CountsAndCoordinates) {
  Mesh m(4, 2);
  EXPECT_EQ(m.num_processors(), 16);
  EXPECT_EQ(m.num_nodes(), 32);
  EXPECT_EQ(m.coord(7, 0), 3);  // 7 = (3, 1) in a 4x4 row-major mesh
  EXPECT_EQ(m.coord(7, 1), 1);
}

TEST(Mesh, BoundaryPortsUnconnected) {
  Mesh m(3, 2);
  // Corner router (0,0): minus ports of both dims unconnected.
  const int r00 = m.router_of(0);
  EXPECT_EQ(m.neighbor(r00, 0), kNoNode);  // x-
  EXPECT_NE(m.neighbor(r00, 1), kNoNode);  // x+
  EXPECT_EQ(m.neighbor(r00, 2), kNoNode);  // y-
  EXPECT_NE(m.neighbor(r00, 3), kNoNode);  // y+
  // Opposite corner (2,2): plus ports unconnected.
  const int r22 = m.router_of(8);
  EXPECT_NE(m.neighbor(r22, 0), kNoNode);
  EXPECT_EQ(m.neighbor(r22, 1), kNoNode);
  EXPECT_NE(m.neighbor(r22, 2), kNoNode);
  EXPECT_EQ(m.neighbor(r22, 3), kNoNode);
}

TEST(Mesh, PlusMinusPortsPair) {
  Mesh m(4, 2);
  const int r = m.router_of(5);  // (1,1)
  EXPECT_EQ(m.neighbor(r, 1), m.router_of(6));
  EXPECT_EQ(m.neighbor_port(r, 1), 0);  // arrives on neighbor's minus port
  EXPECT_EQ(m.neighbor(r, 0), m.router_of(4));
  EXPECT_EQ(m.neighbor_port(r, 0), 1);
}

TEST(Mesh, StructuralVerifierPasses) {
  for (auto [k, d] : {std::pair{2, 1}, {4, 1}, {3, 2}, {4, 2}, {3, 3}}) {
    Mesh m(k, d);
    const VerifyReport report = verify_topology(m);
    EXPECT_TRUE(report.ok()) << m.name() << ": "
                             << (report.ok() ? "" : report.violations[0]);
  }
}

TEST(Mesh, DorCorrectsLowestDimensionFirst) {
  Mesh m(4, 2);
  // From (0,0) to (2,3): x first.
  const RouteOptions r = m.route(m.router_of(0), 2 + 3 * 4);
  ASSERT_EQ(r.size(), 1);
  EXPECT_EQ(r[0], 1);  // x+
  // From (2,0) to (2,3): x done, go y+.
  const RouteOptions r2 = m.route(m.router_of(2), 2 + 3 * 4);
  ASSERT_EQ(r2.size(), 1);
  EXPECT_EQ(r2[0], 3);  // y+
}

TEST(Mesh, DistanceIsManhattanPlusTwo) {
  Mesh m(4, 2);
  EXPECT_EQ(m.distance(0, 0), 0);
  EXPECT_EQ(m.distance(0, 3), 3 + 2);
  EXPECT_EQ(m.distance(0, 15), 6 + 2);  // (0,0)->(3,3)
  EXPECT_EQ(m.distance(5, 6), 1 + 2);
}

TEST(Mesh, MeanDistanceMatchesBruteForce) {
  for (auto [k, d] : {std::pair{4, 1}, {3, 2}, {4, 2}, {2, 3}}) {
    Mesh m(k, d);
    double sum = 0.0;
    long pairs = 0;
    for (int s = 0; s < m.num_processors(); ++s)
      for (int t = 0; t < m.num_processors(); ++t) {
        if (s == t) continue;
        sum += m.distance(s, t);
        ++pairs;
      }
    EXPECT_NEAR(m.mean_distance(), sum / static_cast<double>(pairs), 1e-12)
        << m.name();
  }
}

TEST(Mesh, TraceRouteTakesManhattanPath) {
  Mesh m(4, 2);
  const std::vector<int> path = trace_route(m, 0, 10);  // (0,0) -> (2,2)
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(static_cast<int>(path.size()) - 1, m.distance(0, 10));
}

TEST(Mesh, OneDimensionalMeshIsALine) {
  Mesh line(5, 1);
  EXPECT_EQ(line.num_processors(), 5);
  EXPECT_EQ(line.distance(0, 4), 4 + 2);
  const VerifyReport report = verify_topology(line);
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace wormnet::topo

// Tests for the bursty-arrivals subsystem: ArrivalSpec closed-form C_a²
// vs the empirical SCV of 10⁶ sampled gaps (the acceptance contract: within
// 5%), sampler determinism and the Poisson bit-identity guarantee, the
// Allen–Cunneen G/G/m kernels, the QNA self_frac propagation through
// build_traffic_model / set_injection_ca2, the SweepEngine burstiness axis,
// and the SimConfig fail-fast validation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "core/traffic_model.hpp"
#include "harness/sim_engine.hpp"
#include "harness/sweep_engine.hpp"
#include "queueing/channel_solver.hpp"
#include "queueing/queueing.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace wormnet {
namespace {

using arrivals::ArrivalSpec;
using arrivals::ArrivalState;

/// Mean and SCV of `n` sampled gaps (the simulator draws gaps through this
/// exact code path, so this IS the measured sim inter-arrival SCV).
struct GapStats {
  double mean = 0.0;
  double scv = 0.0;
};

GapStats sample_gaps(const ArrivalSpec& spec, double lambda0, int n,
                     std::uint64_t seed) {
  util::Rng rng = util::Rng::stream(seed, 17);
  ArrivalState state = spec.init_state(lambda0, rng);
  util::RunningStats stats;
  for (int i = 0; i < n; ++i) stats.add(spec.next_gap(state, lambda0, rng));
  GapStats g;
  g.mean = stats.mean();
  g.scv = stats.variance() / (stats.mean() * stats.mean());
  return g;
}

constexpr int kSamples = 1'000'000;

// --- C_a² closed forms vs empirical SCV (the 5% acceptance bound). --------

struct ScvCase {
  ArrivalSpec spec;
  double lambda0;
};

class ArrivalScv : public ::testing::TestWithParam<int> {};

const ScvCase kScvCases[] = {
    {ArrivalSpec::poisson(), 0.05},
    {ArrivalSpec::bernoulli(), 0.3},
    {ArrivalSpec::deterministic(), 0.02},
    {ArrivalSpec::batch(4.0), 0.05},
    {ArrivalSpec::batch(2.5), 0.2},
    {ArrivalSpec::on_off(0.4, 4.0), 0.05},
    {ArrivalSpec::mmpp2(0.3, 0.1, 8.0), 0.05},
    {ArrivalSpec::trace({1.0, 0.2, 3.0, 0.5, 1.3}), 0.1},
};

TEST_P(ArrivalScv, ClosedFormMatchesEmpiricalScvWithin5Percent) {
  const ScvCase& c = kScvCases[GetParam()];
  ASSERT_TRUE(c.spec.check().empty()) << c.spec.check();
  const double analytic = c.spec.ca2(c.lambda0);
  const GapStats g = sample_gaps(c.spec, c.lambda0, kSamples, 2026);
  // The mean rate is exactly λ₀ for every process (burstiness reshapes the
  // gaps, never the offered load).
  EXPECT_NEAR(g.mean, 1.0 / c.lambda0, 0.02 / c.lambda0) << c.spec.name();
  if (analytic == 0.0) {
    // Deterministic: only the random initial phase perturbs the SCV.
    EXPECT_LT(g.scv, 1e-4) << c.spec.name();
  } else {
    EXPECT_NEAR(g.scv, analytic, 0.05 * analytic)
        << c.spec.name() << ": analytic C_a²=" << analytic
        << " empirical=" << g.scv;
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, ArrivalScv,
                         ::testing::Range(0, static_cast<int>(std::size(kScvCases))));

TEST(ArrivalSpecTest, ClosedFormValues) {
  EXPECT_DOUBLE_EQ(ArrivalSpec::poisson().ca2(), 1.0);
  EXPECT_DOUBLE_EQ(ArrivalSpec::deterministic().ca2(), 0.0);
  EXPECT_DOUBLE_EQ(ArrivalSpec::bernoulli().ca2(0.3), 0.7);
  // Compound Poisson with Geometric(mean b) batches: C_a² = 2b − 1.
  EXPECT_DOUBLE_EQ(ArrivalSpec::batch(1.0).ca2(), 1.0);
  EXPECT_DOUBLE_EQ(ArrivalSpec::batch(4.0).ca2(), 7.0);
  // Trace SCV is the (normalized) trace's own variance over mean².
  EXPECT_NEAR(ArrivalSpec::trace({1.0, 1.0, 1.0}).ca2(), 0.0, 1e-12);
  EXPECT_NEAR(ArrivalSpec::trace({2.0, 0.0}).ca2(), 1.0, 1e-12);
}

TEST(ArrivalSpecTest, BatchResidualIsTheIntraBatchSerializationTerm) {
  // (E[B²] − E[B])/(2E[B]) = b − 1 for Geometric(mean b) batches: the mean
  // batch-mates ahead of a random arrival.  Zero for batchless processes —
  // their burstiness lives entirely in the SCV.
  EXPECT_DOUBLE_EQ(ArrivalSpec::batch(4.0).batch_residual(), 3.0);
  EXPECT_DOUBLE_EQ(ArrivalSpec::batch(1.0).batch_residual(), 0.0);
  EXPECT_DOUBLE_EQ(ArrivalSpec::poisson().batch_residual(), 0.0);
  EXPECT_DOUBLE_EQ(ArrivalSpec::mmpp2(0.3, 0.1, 8.0).batch_residual(), 0.0);
  EXPECT_DOUBLE_EQ(ArrivalSpec::deterministic().batch_residual(), 0.0);
}

TEST(ScvPropagationBatch, ResidualAddsLoadIndependentSourceWait) {
  topo::ButterflyFatTree ft(2);
  core::GeneralModel net =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform());
  const double lam = 0.2 * net.saturation_rate();
  const core::LatencyEstimate poisson = net.evaluate(lam);
  net.set_injection_process(ArrivalSpec::batch(4.0));
  const core::LatencyEstimate batch = net.evaluate(lam);
  // At 20% load the epoch-queue wait is small, but a mean-4 batch still
  // serializes ~3 worm services at the source — the residual dominates.
  EXPECT_GT(batch.inj_wait, poisson.inj_wait + 2.5 * poisson.inj_service);
  // The ablation switch removes the whole extension, residual included.
  core::SolveOptions off = net.opts;
  off.bursty_arrivals = false;
  const core::LatencyEstimate ablated = core::model_latency(net, lam, off);
  EXPECT_EQ(ablated.latency, poisson.latency);
}

TEST(ArrivalSpecTest, OnOffMatchesIppClosedForm) {
  // The σ = 0 MMPP-2 is Kuczura's interrupted Poisson process, a renewal
  // process with the classic SCV 1 + 2·λ_ON·r_ON/(r_ON + r_OFF)².  The
  // general 2×2 MAP moment code must reproduce it exactly.
  const double f = 0.4, k = 4.0;
  const double lam_on = 1.0 / f;          // unit mean rate
  const double r_on = lam_on / k;
  const double r_off = r_on * f / (1.0 - f);
  const double ipp = 1.0 + 2.0 * lam_on * r_on / ((r_on + r_off) * (r_on + r_off));
  EXPECT_NEAR(ArrivalSpec::on_off(f, k).ca2(), ipp, 1e-12);
}

TEST(ArrivalSpecTest, Mmpp2Ca2IsRateInvariantAndAboveOne) {
  const ArrivalSpec spec = ArrivalSpec::mmpp2(0.25, 0.2, 6.0);
  const double c = spec.ca2();
  EXPECT_GT(c, 1.0);  // modulated Poisson is always burstier than Poisson
  EXPECT_DOUBLE_EQ(spec.ca2(0.01), c);
  EXPECT_DOUBLE_EQ(spec.ca2(0.5), c);
}

TEST(ArrivalSpecTest, EffectiveCa2FoldsMmppCorrelationIn) {
  // Renewal processes: effective == interval SCV.
  for (const ArrivalSpec& s :
       {ArrivalSpec::poisson(), ArrivalSpec::deterministic(),
        ArrivalSpec::batch(4.0), ArrivalSpec::trace({1.0, 0.5, 2.0})}) {
    EXPECT_DOUBLE_EQ(s.effective_ca2(), s.ca2()) << s.name();
  }
  // The IPP (λ_OFF = 0) is itself a renewal process (hyperexponential-2),
  // so its limiting index of dispersion must EQUAL its interval SCV — a
  // cross-validation of the two independent closed forms.  Closed-form
  // check against Fischer & Meier-Hellstern at unit rate.
  const double f = 0.3, k = 8.0;
  const ArrivalSpec ipp = ArrivalSpec::on_off(f, k);
  EXPECT_NEAR(ipp.effective_ca2(), ipp.ca2(), 1e-9);
  const double lam_on = 1.0 / f;
  const double r_on = lam_on / k;
  const double r_off = r_on * f / (1.0 - f);
  const double idc =
      1.0 + 2.0 * f * (1.0 - f) * lam_on * lam_on / (r_on + r_off);
  EXPECT_NEAR(ipp.effective_ca2(), idc, 1e-12);
  // With λ_OFF > 0 the gaps are genuinely correlated (a non-renewal MMPP),
  // and the asymptotic parameter strictly exceeds the interval SCV.
  const ArrivalSpec mmpp = ArrivalSpec::mmpp2(0.3, 0.1, 8.0);
  EXPECT_GT(mmpp.effective_ca2(), 1.5 * mmpp.ca2());
}

TEST(ArrivalSpecTest, CheckRejectsBadParameters) {
  EXPECT_FALSE(ArrivalSpec::batch(0.5).check().empty());
  // Unbounded means would let the sampler's geometric batch-size draw reach
  // int range (UB on the cast); check() bounds them instead.
  EXPECT_FALSE(ArrivalSpec::batch(2e6).check().empty());
  EXPECT_FALSE(ArrivalSpec::mmpp2(0.0, 0.0, 4.0).check().empty());
  EXPECT_FALSE(ArrivalSpec::mmpp2(1.0, 0.0, 4.0).check().empty());
  EXPECT_FALSE(ArrivalSpec::mmpp2(0.5, 1.0, 4.0).check().empty());
  EXPECT_FALSE(ArrivalSpec::mmpp2(0.5, 0.0, 0.0).check().empty());
  EXPECT_FALSE(ArrivalSpec::trace({}).check().empty());
  EXPECT_FALSE(ArrivalSpec::trace({0.0, 0.0}).check().empty());
  EXPECT_FALSE(ArrivalSpec::trace({1.0, -1.0}).check().empty());
  EXPECT_TRUE(ArrivalSpec::trace({1.0, 2.0}).check().empty());
}

// --- Sampler determinism and the Poisson bit-identity contract. -----------

TEST(ArrivalSampler, PoissonDrawsAreBitIdenticalToLegacyExponential) {
  // The golden-trace contract hinges on this: the Poisson spec consumes
  // exactly one Rng::exponential(λ₀) per gap and nothing at init.
  const double lambda0 = 0.07;
  util::Rng a = util::Rng::stream(42, 3);
  util::Rng b = util::Rng::stream(42, 3);
  const ArrivalSpec spec = ArrivalSpec::poisson();
  ArrivalState st = spec.init_state(lambda0, a);
  for (int i = 0; i < 1000; ++i) {
    const double got = spec.next_gap(st, lambda0, a);
    const double want = b.exponential(lambda0);
    ASSERT_EQ(got, want) << "draw " << i;
  }
}

TEST(ArrivalSampler, SeededReplay) {
  for (const ScvCase& c : kScvCases) {
    const GapStats g1 = sample_gaps(c.spec, c.lambda0, 5000, 7);
    const GapStats g2 = sample_gaps(c.spec, c.lambda0, 5000, 7);
    EXPECT_EQ(g1.mean, g2.mean) << c.spec.name();
    EXPECT_EQ(g1.scv, g2.scv) << c.spec.name();
  }
}

TEST(ArrivalSampler, BatchEmitsZeroGapsInsideBatches) {
  const ArrivalSpec spec = ArrivalSpec::batch(4.0);
  util::Rng rng = util::Rng::stream(11, 0);
  ArrivalState st = spec.init_state(0.1, rng);
  int zeros = 0;
  for (int i = 0; i < 10000; ++i) {
    if (spec.next_gap(st, 0.1, rng) == 0.0) ++zeros;
  }
  // Geometric(mean 4) batches: 3 of every 4 gaps are intra-batch zeros.
  EXPECT_NEAR(zeros / 10000.0, 0.75, 0.02);
}

// --- Allen–Cunneen kernels. -----------------------------------------------

TEST(AllenCunneen, ScaleAndReductions) {
  using namespace queueing;
  EXPECT_DOUBLE_EQ(allen_cunneen_scale(1.0, 0.37), 1.0);
  EXPECT_DOUBLE_EQ(allen_cunneen_scale(3.0, 1.0), 2.0);
  // G/G/1 at C_a² = 1 is Pollaczek–Khinchine.
  EXPECT_DOUBLE_EQ(gg1_wait(0.02, 10.0, 1.0, 0.5), mg1_wait(0.02, 10.0, 0.5));
  // G/G/m at C_a² = 1 is the M/G/m kernel.
  EXPECT_DOUBLE_EQ(ggm_wait(3, 0.1, 10.0, 1.0, 0.5), mgm_wait(3, 0.1, 10.0, 0.5));
  // M/D/1 (C_a² = 1, C_s² = 0) is half the M/M/1-variance wait.
  EXPECT_DOUBLE_EQ(gg1_wait(0.02, 10.0, 1.0, 0.0),
                   0.5 * gg1_wait(0.02, 10.0, 1.0, 1.0));
  // Saturation still diverges.
  EXPECT_TRUE(std::isinf(gg1_wait(0.2, 10.0, 4.0, 1.0)));
}

TEST(AllenCunneen, WormholeWaitGgBitIdenticalAtPoissonAndScalesAbove) {
  using namespace queueing;
  for (int m : {1, 2, 4}) {
    const double lam = 0.01 * m, xbar = 20.0, sf = 16.0;
    const double base = wormhole_wait(m, lam, xbar, sf);
    EXPECT_EQ(wormhole_wait_gg(m, lam, xbar, sf, 1.0), base) << "m=" << m;
    const double cb2 = wormhole_cb2(xbar, sf);
    EXPECT_DOUBLE_EQ(wormhole_wait_gg(m, lam, xbar, sf, 5.0),
                     base * (5.0 + cb2) / (1.0 + cb2))
        << "m=" << m;
    // Smoother-than-Poisson arrivals shrink the wait, never below zero.
    EXPECT_LT(wormhole_wait_gg(m, lam, xbar, sf, 0.0), base) << "m=" << m;
    EXPECT_GE(wormhole_wait_gg(m, lam, xbar, sf, 0.0), 0.0) << "m=" << m;
  }
}

TEST(AllenCunneen, ChannelSolverHonorsAblationSwitch) {
  queueing::AblationOptions off;
  off.bursty_arrivals = false;
  const queueing::ChannelSolver burst(16.0), poisson_only(16.0, off);
  const double base = burst.bundle_wait(2, 1, 0.01, 20.0);
  EXPECT_GT(burst.bundle_wait(2, 1, 0.01, 20.0, 6.0), base);
  EXPECT_EQ(poisson_only.bundle_wait(2, 1, 0.01, 20.0, 6.0), base);
  EXPECT_EQ(burst.bundle_wait(2, 1, 0.01, 20.0, 1.0), base);
}

// --- QNA propagation through the traffic-model builder. -------------------

TEST(ScvPropagation, InjectionChannelsRetainTheFullProcess) {
  topo::ButterflyFatTree ft(2);
  core::GeneralModel net =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform());
  for (int inj : net.injection_classes) {
    EXPECT_DOUBLE_EQ(net.graph.at(inj).self_frac, 1.0);
    EXPECT_DOUBLE_EQ(net.graph.at(inj).ca2, 1.0);  // Poisson default
  }
  for (int id = 0; id < net.graph.size(); ++id) {
    const core::ChannelClass& c = net.graph.at(id);
    EXPECT_GE(c.self_frac, 0.0) << c.label;
    EXPECT_LE(c.self_frac, 1.0) << c.label;
    if (c.rate_per_link > 0.0 && !c.terminal) {
      EXPECT_GT(c.self_frac, 0.0) << c.label;
    }
  }
}

TEST(ScvPropagation, DeepChannelsPoissonifyBelowInjection) {
  // Superposition limit: a root-level channel merges many thin sub-streams,
  // so it must retain strictly less burstiness than the injection channel.
  topo::Hypercube hc(4);
  core::GeneralModel net =
      core::build_traffic_model(hc, traffic::TrafficSpec::uniform());
  net.set_injection_ca2(9.0);
  double min_frac = 1.0, max_nonterm = 0.0;
  for (int id = 0; id < net.graph.size(); ++id) {
    const core::ChannelClass& c = net.graph.at(id);
    if (c.rate_per_link <= 0.0) continue;
    min_frac = std::min(min_frac, c.self_frac);
    EXPECT_DOUBLE_EQ(c.ca2, 1.0 + 8.0 * c.self_frac) << c.label;
    if (!c.terminal && c.self_frac < 1.0)
      max_nonterm = std::max(max_nonterm, c.self_frac);
  }
  EXPECT_LT(min_frac, 0.5);     // deep merges shed most of the burstiness
  EXPECT_LT(max_nonterm, 1.0);  // only injections keep all of it
}

TEST(ScvPropagation, SetInjectionCa2OneIsBitIdenticalToDefault) {
  topo::ButterflyFatTree ft(3);
  const core::GeneralModel base =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform());
  core::GeneralModel retuned = base;
  retuned.set_injection_ca2(4.0);
  retuned.set_injection_ca2(1.0);
  const double lam = 0.5 / 16.0;
  const core::LatencyEstimate a = base.evaluate(lam);
  const core::LatencyEstimate b = retuned.evaluate(lam);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.inj_wait, b.inj_wait);
  EXPECT_EQ(a.inj_service, b.inj_service);
}

TEST(ScvPropagation, LatencyIsMonotoneInInjectionCa2) {
  topo::ButterflyFatTree ft(3);
  core::GeneralModel net =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform());
  const double lam = 0.5 * net.saturation_rate();
  double prev = -1.0;
  for (double ca2 : {0.0, 1.0, 3.0, 7.0, 15.0}) {
    net.set_injection_ca2(ca2);
    const core::LatencyEstimate est = net.evaluate(lam);
    ASSERT_TRUE(est.stable) << "ca2=" << ca2;
    EXPECT_GT(est.latency, prev) << "ca2=" << ca2;
    prev = est.latency;
  }
}

// --- Harness: the burstiness axis. ----------------------------------------

TEST(BurstinessSweep, FamilyIsOrderedByCa2AndCacheKeysSeparate) {
  topo::ButterflyFatTree ft(2);
  const core::GeneralModel base =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform());
  harness::SweepEngine engine;
  const std::vector<arrivals::ArrivalSpec> processes = {
      ArrivalSpec::deterministic(), ArrivalSpec::poisson(),
      ArrivalSpec::batch(3.0)};
  const auto family = engine.sweep_burstiness(
      [&](const arrivals::ArrivalSpec& p) {
        auto m = std::make_unique<core::GeneralModel>(base);
        m->set_injection_process(p);
        return m;
      },
      processes, {0.2, 0.5});
  ASSERT_EQ(family.size(), 3u);
  EXPECT_DOUBLE_EQ(family[0].parameter, 0.0);
  EXPECT_DOUBLE_EQ(family[1].parameter, 1.0);
  EXPECT_DOUBLE_EQ(family[2].parameter, 5.0);
  // At equal fractions of each member's own saturation, latency grows with
  // burstiness.
  for (std::size_t pt = 0; pt < 2; ++pt) {
    EXPECT_LT(family[0].points[pt].est.latency, family[1].points[pt].est.latency);
    EXPECT_LT(family[1].points[pt].est.latency, family[2].points[pt].est.latency);
  }
}

TEST(BurstinessSweep, SimEngineBurstinessCellsCarryTheProcess) {
  harness::SimCell base;
  base.cfg.seed = 5;
  base.label = "ft2";
  const auto cells = harness::burstiness_cells(
      base, {ArrivalSpec::poisson(), ArrivalSpec::batch(4.0)});
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].label, "ft2/poisson");
  EXPECT_EQ(cells[1].label, "ft2/batch(b=4)");
  EXPECT_TRUE(cells[0].cfg.arrival_process.is_poisson());
  EXPECT_EQ(cells[1].cfg.arrival_process.kind(), arrivals::Kind::Batch);
}

// --- SimConfig fail-fast validation. --------------------------------------

TEST(SimConfigValidation, RejectsNonsenseLoudly) {
  topo::ButterflyFatTree ft(1);
  sim::SimNetwork net(ft);
  sim::SimConfig good;
  good.load_flits = 0.01;
  good.warmup_cycles = 100;
  good.measure_cycles = 1000;
  {
    sim::SimConfig cfg = good;
    cfg.load_flits = -0.1;  // negative load
    EXPECT_THROW(sim::Simulator(net, cfg), std::invalid_argument);
  }
  {
    sim::SimConfig cfg = good;
    cfg.worm_flits = 0;  // zero flit length
    EXPECT_THROW(sim::Simulator(net, cfg), std::invalid_argument);
  }
  {
    sim::SimConfig cfg = good;
    cfg.measure_cycles = 0;
    EXPECT_THROW(sim::Simulator(net, cfg), std::invalid_argument);
  }
  {
    sim::SimConfig cfg = good;
    cfg.arrival_process = ArrivalSpec::batch(0.25);  // invalid batch mean
    EXPECT_THROW(sim::Simulator(net, cfg), std::invalid_argument);
  }
  {
    sim::SimConfig cfg = good;
    cfg.arrivals = sim::ArrivalProcess::Bernoulli;
    cfg.arrival_process = ArrivalSpec::batch(4.0);  // conflicting modes
    EXPECT_THROW(sim::Simulator(net, cfg), std::invalid_argument);
  }
  EXPECT_NO_THROW(sim::Simulator(net, good));
}

TEST(SimConfigValidation, ZeroWarmupRejectionSurvivesCatchAndRetry) {
  // The deferred check must fire on EVERY attempt: a caller that catches
  // the first throw and calls run() again may not silently proceed with
  // the biased zero-warmup window.
  topo::ButterflyFatTree ft(1);
  sim::SimNetwork net(ft);
  sim::SimConfig cfg;
  cfg.load_flits = 0.01;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1000;
  sim::Simulator s(net, cfg);
  EXPECT_THROW(s.run(), std::invalid_argument);
  EXPECT_THROW(s.run(), std::invalid_argument);
}

TEST(SimConfigValidation, SimEngineRejectsBadCellsOnTheCallingThread) {
  // An invalid cell config must surface as a catchable error BEFORE the
  // campaign fans out — thrown from a pool worker it would escape
  // ThreadPool::worker_loop and std::terminate the process.
  topo::ButterflyFatTree ft(1);
  harness::SimEngine engine;
  harness::SimCell bad;
  bad.topology = &ft;
  bad.cfg.load_flits = -1.0;
  bad.label = "bad-load";
  EXPECT_THROW(engine.run_cells({bad, bad}), std::invalid_argument);
  harness::SimCell cold;
  cold.topology = &ft;
  cold.cfg.load_flits = 0.01;
  cold.cfg.warmup_cycles = 0;  // open-loop campaign cell: rejected eagerly
  cold.label = "cold-start";
  EXPECT_THROW(engine.run_cells({cold, cold}), std::invalid_argument);
}

TEST(ScvPropagation, BernoulliTuningDemandsTheOperatingRate) {
  topo::ButterflyFatTree ft(2);
  core::GeneralModel net =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform());
  // At λ₀ the Bernoulli SCV is 1 − λ₀; the rate-invariant default would
  // silently collapse to the Poisson fallback, so it aborts loudly.
  EXPECT_DEATH(net.set_injection_process(ArrivalSpec::bernoulli()),
               "precondition");
  net.set_injection_process(ArrivalSpec::bernoulli(), 0.25);
  EXPECT_DOUBLE_EQ(net.injection_ca2, 0.75);
}

// --- Simulator integration: bursty sources keep the offered load. ---------

TEST(BurstySim, BatchSourcesDeliverTheConfiguredLoad) {
  topo::ButterflyFatTree ft(2);
  sim::SimConfig cfg;
  cfg.load_flits = 0.04;  // well below saturation even with bursts
  cfg.worm_flits = 16;
  cfg.seed = 31;
  cfg.warmup_cycles = 4000;
  cfg.measure_cycles = 60000;
  cfg.max_cycles = 400000;
  cfg.channel_stats = false;
  cfg.arrival_process = ArrivalSpec::batch(4.0);
  const sim::SimResult r = sim::simulate(ft, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.throughput_flits_per_pe, cfg.load_flits, 0.15 * cfg.load_flits);
  // Burstier arrivals at the same load queue longer at the source than the
  // Poisson baseline.
  sim::SimConfig poisson = cfg;
  poisson.arrival_process = ArrivalSpec::poisson();
  const sim::SimResult p = sim::simulate(ft, poisson);
  ASSERT_TRUE(p.completed);
  EXPECT_GT(r.queue_wait.mean(), p.queue_wait.mean());
}

}  // namespace
}  // namespace wormnet

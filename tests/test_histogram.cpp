// Tests for the fixed-width histogram.
#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace wormnet::util {
namespace {

TEST(Histogram, BinsCountCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.9);
  h.add(5.0);
  h.add(9.99);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(5), 1);
  EXPECT_EQ(h.bin_count(9), 1);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);   // hi edge counts as overflow (half-open range)
  h.add(27.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.count(), 3);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 20.0);
}

TEST(Histogram, MedianOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, QuantileEmptyAndExtremes) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> lo
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_GE(h.quantile(1.0), 0.5);
}

TEST(Histogram, AsciiRendersNonEmptyBins) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(2.5);
  h.add(2.6);
  const std::string art = h.ascii();
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("[2, 3)"), std::string::npos);
}

TEST(Histogram, TotalIsExactDespiteRangeMisguess) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 100; ++i) h.add(i * 1.0);  // almost all overflow
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.overflow() + h.underflow() + h.bin_count(0) + h.bin_count(1), 100);
}

}  // namespace
}  // namespace wormnet::util

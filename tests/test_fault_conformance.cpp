// Degraded-routing model-vs-sim conformance and the N−1 availability sweep.
//
// The fault layer's acceptance table: a levels-2 butterfly fat-tree under
// uniform traffic, degraded by a single failure, simulated with the SAME
// FaultedTopology the model solves — the decorator's route() IS the degraded
// routing, so the simulator exercises it with no fault-specific sim code.
// Axes:
//  * taper    — healthy tier bandwidths (1:1) or tier-1 links at half the
//               processor bandwidth (2:1, the oversubscribed fabric);
//  * failure  — an up-link (one level-1 switch loses a parent; the redundant
//               parent absorbs the reroute) or a mid-fabric switch (one top
//               switch fails wholesale; the other carries everything);
//  * load     — 20% and 50% of the DEGRADED model's own saturation point.
// The relative latency error |model − sim| / sim must stay within 10% at
// the 20% point and 15% at 50% — the same below-80%-load contract as the
// healthy and heterogeneous tables (raw errors in EXPERIMENTS.md).
//
// Alongside the table: the N−1 availability sweep acceptance — every
// failable link of a 3-level fat-tree swept through harness::QueryEngine,
// every scenario served as Retune or cheaper (never a per-scenario rebuild),
// ranked worst-first, and memoized on repeat.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/traffic_model.hpp"
#include "harness/query_engine.hpp"
#include "harness/sim_engine.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/fault.hpp"

namespace wormnet {
namespace {

enum class Taper { T1to1, T2to1 };
enum class Failure { UpLink, MidSwitch };

struct Cell {
  Taper taper;
  Failure failure;
  double frac;   ///< fraction of the degraded model's saturation rate
  double bound;  ///< relative latency error bound
};

// The below-80%-load contract: <= 0.10 at 20%, <= 0.15 at 50%.
const Cell kCells[] = {
    {Taper::T1to1, Failure::UpLink, 0.2, 0.10},
    {Taper::T1to1, Failure::UpLink, 0.5, 0.15},
    {Taper::T1to1, Failure::MidSwitch, 0.2, 0.10},
    {Taper::T1to1, Failure::MidSwitch, 0.5, 0.15},
    {Taper::T2to1, Failure::UpLink, 0.2, 0.10},
    {Taper::T2to1, Failure::UpLink, 0.5, 0.15},
    {Taper::T2to1, Failure::MidSwitch, 0.2, 0.10},
    {Taper::T2to1, Failure::MidSwitch, 0.5, 0.15},
};
constexpr std::size_t kNumCells = std::size(kCells);

std::string cell_label(const Cell& c) {
  std::string name = c.taper == Taper::T1to1 ? "Taper1to1" : "Taper2to1";
  name += c.failure == Failure::UpLink ? "UpLink" : "MidSwitch";
  name += c.frac == 0.2 ? "Load20" : "Load50";
  return name;
}

/// One live (base, faults, view) triple per taper x failure combination;
/// the view must outlive both the model and the SimNetwork.
struct DegradedFabric {
  std::unique_ptr<topo::ButterflyFatTree> base;
  std::unique_ptr<topo::FaultSet> faults;
  std::unique_ptr<topo::FaultedTopology> view;
};

DegradedFabric make_fabric(Taper taper, Failure failure) {
  DegradedFabric f;
  f.base = std::make_unique<topo::ButterflyFatTree>(2);  // 16 processors
  if (taper == Taper::T2to1) f.base->set_tier_bandwidth(1, 0.5);
  f.faults = std::make_unique<topo::FaultSet>(*f.base);
  if (failure == Failure::UpLink) {
    f.faults->fail_link(f.base->switch_id(1, 0),
                        topo::ButterflyFatTree::kParentPort0);
  } else {
    f.faults->fail_switch(f.base->switch_id(2, 0));
  }
  f.view = std::make_unique<topo::FaultedTopology>(*f.base, *f.faults);
  return f;
}

class Campaign {
 public:
  struct CellData {
    double model_sat = 0.0;
    core::LatencyEstimate model;
    sim::SimResult sim;
  };

  static const Campaign& get() {
    static Campaign instance;
    return instance;
  }

  const CellData& cell(std::size_t i) const { return cells_[i]; }

 private:
  Campaign() {
    // Four degraded fabrics, shared by their two load points each.
    for (const Taper taper : {Taper::T1to1, Taper::T2to1})
      for (const Failure failure : {Failure::UpLink, Failure::MidSwitch})
        fabrics_.push_back(make_fabric(taper, failure));
    const auto fabric_of = [](const Cell& c) -> std::size_t {
      return static_cast<std::size_t>(c.taper == Taper::T2to1) * 2 +
             static_cast<std::size_t>(c.failure == Failure::MidSwitch);
    };

    const traffic::TrafficSpec spec = traffic::TrafficSpec::uniform();
    core::SolveOptions opts;
    opts.worm_flits = 16.0;
    cells_.resize(kNumCells);
    for (std::size_t i = 0; i < kNumCells; ++i) {
      const topo::FaultedTopology& view = *fabrics_[fabric_of(kCells[i])].view;
      const core::GeneralModel model =
          core::build_traffic_model(view, spec, opts);
      CellData& out = cells_[i];
      out.model_sat = core::model_saturation_rate(model, opts);
      out.model =
          core::model_latency(model, out.model_sat * kCells[i].frac, opts);
    }

    std::vector<harness::SimCell> sim_cells;
    for (std::size_t i = 0; i < kNumCells; ++i) {
      harness::SimCell sc;
      sc.topology = fabrics_[fabric_of(kCells[i])].view.get();
      sc.cfg.load_flits = cells_[i].model_sat * kCells[i].frac * 16.0;
      sc.cfg.worm_flits = 16;
      sc.cfg.seed = 9100 + static_cast<std::uint64_t>(i);
      sc.cfg.traffic = spec;
      sc.cfg.warmup_cycles = 8000;
      sc.cfg.measure_cycles = 40000;
      sc.cfg.max_cycles = 600000;
      sc.cfg.channel_stats = false;
      sc.label = cell_label(kCells[i]);
      sim_cells.push_back(std::move(sc));
    }
    harness::SimEngine engine;
    const std::vector<harness::SimCellResult> results =
        engine.run_cells(sim_cells);
    for (std::size_t i = 0; i < kNumCells; ++i)
      cells_[i].sim = results[i].runs.front();
  }

  std::vector<DegradedFabric> fabrics_;
  std::vector<CellData> cells_;
};

class FaultConformance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaultConformance, DegradedLatencyWithinCellBounds) {
  const Cell& cell = kCells[GetParam()];
  const Campaign::CellData& data = Campaign::get().cell(GetParam());
  ASSERT_GT(data.model_sat, 0.0);
  ASSERT_EQ(data.model.status, core::SolveStatus::Ok) << cell_label(cell);
  ASSERT_TRUE(data.model.stable) << cell_label(cell);

  ASSERT_TRUE(data.sim.completed) << cell_label(cell);
  ASSERT_FALSE(data.sim.saturated) << cell_label(cell);
  ASSERT_GT(data.sim.latency.count(), 0);
  // A single failure on BFT(2) severs nothing: no demand is unroutable in
  // the model, no message is discarded in the simulator.
  EXPECT_EQ(data.model.unroutable_fraction, 0.0) << cell_label(cell);
  EXPECT_EQ(data.sim.unroutable_messages, 0) << cell_label(cell);

  const double sim_latency = data.sim.latency.mean();
  const double rel_err =
      std::abs(data.model.latency - sim_latency) / sim_latency;
  EXPECT_LE(rel_err, cell.bound)
      << cell_label(cell) << ": model=" << data.model.latency
      << " sim=" << sim_latency;
}

std::string cell_name(const ::testing::TestParamInfo<std::size_t>& info) {
  return cell_label(kCells[info.param]);
}

INSTANTIATE_TEST_SUITE_P(Cells, FaultConformance,
                         ::testing::Range<std::size_t>(0, kNumCells),
                         cell_name);

// Failures cost capacity in the model the way they cost it in the fabric:
// degraded saturation below healthy, and the wholesale top-switch failure
// below the single up-link one, per taper.
TEST(FaultConformanceShape, FailureSeverityOrdersSaturation) {
  const traffic::TrafficSpec spec = traffic::TrafficSpec::uniform();
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  for (const Taper taper : {Taper::T1to1, Taper::T2to1}) {
    topo::ButterflyFatTree healthy(2);
    if (taper == Taper::T2to1) healthy.set_tier_bandwidth(1, 0.5);
    const double sat_healthy = core::model_saturation_rate(
        core::build_traffic_model(healthy, spec, opts), opts);

    const DegradedFabric uplink = make_fabric(taper, Failure::UpLink);
    const DegradedFabric midsw = make_fabric(taper, Failure::MidSwitch);
    const double sat_uplink = core::model_saturation_rate(
        core::build_traffic_model(*uplink.view, spec, opts), opts);
    const double sat_midsw = core::model_saturation_rate(
        core::build_traffic_model(*midsw.view, spec, opts), opts);

    EXPECT_LT(sat_uplink, sat_healthy) << "taper " << static_cast<int>(taper);
    EXPECT_LT(sat_midsw, sat_uplink) << "taper " << static_cast<int>(taper);
  }
}

// ---------------------------------------------------------------------------
// N−1 availability sweep through the query engine (acceptance criterion).
// ---------------------------------------------------------------------------

TEST(AvailabilitySweep, NMinus1OverEveryLinkIsRetuneOrCheaper) {
  // 3-level fat-tree: 64 processors, 16 + 8 + 4 switches, 48 failable
  // switch-to-switch links (16·2 level-1→2 plus 8·2 level-2→3).
  topo::ButterflyFatTree ft(3);
  harness::QueryEngine engine(ft, traffic::TrafficSpec::uniform());

  harness::WhatIfQuery sat_q;
  sat_q.metric = harness::QueryMetric::Saturation;
  const double sat = engine.run(sat_q).saturation_rate;
  ASSERT_GT(sat, 0.0);
  const double lambda0 = 0.25 * sat;

  const harness::AvailabilityReport report =
      engine.availability_n_minus_1(0, lambda0);
  ASSERT_EQ(report.rows.size(), 48u);
  EXPECT_EQ(report.lambda0, lambda0);
  EXPECT_EQ(report.baseline.status, core::SolveStatus::Ok);
  ASSERT_TRUE(std::isfinite(report.baseline.latency));

  for (const harness::AvailabilityRow& row : report.rows) {
    // THE acceptance bar: every scenario is served by the fault delta —
    // Retune or cheaper, never a per-scenario rebuild.
    EXPECT_NE(row.cost, harness::QueryCost::Rebuild) << row.label;
    // N−1 on a fat-tree severs nothing (redundant parents), so every
    // scenario still serves all demand...
    EXPECT_EQ(row.est.unroutable_fraction, 0.0) << row.label;
    EXPECT_EQ(row.est.status, core::SolveStatus::Ok) << row.label;
    EXPECT_FALSE(std::isnan(row.est.latency)) << row.label;
    // ...at a latency no better than the healthy baseline.
    EXPECT_GE(row.est.latency, report.baseline.latency * (1.0 - 1e-9))
        << row.label;
    ASSERT_NE(row.faults, nullptr);
    EXPECT_EQ(row.faults->failed_links().size(), 1u) << row.label;
  }
  EXPECT_EQ(report.scenarios_ok, 48);
  // Ranked worst-first, deterministically.
  for (std::size_t i = 1; i < report.rows.size(); ++i) {
    EXPECT_GE(report.rows[i - 1].est.latency * (1.0 + 1e-12),
              report.rows[i].est.latency)
        << "rank " << i;
  }
  EXPECT_EQ(engine.served_rebuild(), 0u);
  EXPECT_GE(engine.served_retune(), 48u);

  // The sweep again: every scenario now memoized — the resident service
  // answers availability questions from cache.
  const harness::AvailabilityReport again =
      engine.availability_n_minus_1(0, lambda0);
  ASSERT_EQ(again.rows.size(), report.rows.size());
  for (std::size_t i = 0; i < again.rows.size(); ++i) {
    EXPECT_EQ(again.rows[i].cost, harness::QueryCost::Memoized) << i;
    EXPECT_EQ(again.rows[i].est.latency, report.rows[i].est.latency) << i;
    EXPECT_EQ(again.rows[i].label, report.rows[i].label) << i;
  }
  EXPECT_EQ(engine.served_rebuild(), 0u);
}

// N−k scenarios: a double-parent failure cuts a level-1 switch's block off;
// the report ranks the cut above any single-link row and classifies it
// Disconnected, while the engine still never rebuilds.
TEST(AvailabilitySweep, NMinusKScenariosRankCutsWorst) {
  topo::ButterflyFatTree ft(2);
  harness::QueryEngine engine(ft, traffic::TrafficSpec::uniform());

  harness::WhatIfQuery sat_q;
  sat_q.metric = harness::QueryMetric::Saturation;
  const double lambda0 = 0.25 * engine.run(sat_q).saturation_rate;

  const int s1 = ft.switch_id(1, 0);
  auto one = std::make_shared<topo::FaultSet>(ft);
  one->fail_link(s1, topo::ButterflyFatTree::kParentPort0);
  auto cut = std::make_shared<topo::FaultSet>(ft);
  cut->fail_link(s1, topo::ButterflyFatTree::kParentPort0);
  cut->fail_link(s1, topo::ButterflyFatTree::kParentPort1);

  const harness::AvailabilityReport report = engine.availability_scenarios(
      0, lambda0, {one, cut}, {"one-parent", "both-parents"});
  ASSERT_EQ(report.rows.size(), 2u);
  // The cut ranks first on unroutable demand, regardless of latency.
  EXPECT_EQ(report.rows[0].label, "both-parents");
  EXPECT_EQ(report.rows[0].est.status, core::SolveStatus::Disconnected);
  EXPECT_NEAR(report.rows[0].est.unroutable_fraction, 96.0 / 240.0, 1e-12);
  EXPECT_EQ(report.rows[1].label, "one-parent");
  EXPECT_EQ(report.rows[1].est.status, core::SolveStatus::Ok);
  EXPECT_EQ(report.scenarios_ok, 1);
  EXPECT_EQ(engine.served_rebuild(), 0u);
}

}  // namespace
}  // namespace wormnet

// Deterministic scripted-scenario grids: exact expected latencies computed
// from first principles for chains of contending worms, staggered arrivals,
// and bundle-pool behavior.  Any drift in the simulator's cycle accounting
// breaks these equalities immediately.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"

namespace wormnet::sim {
namespace {

SimConfig scripted_config(int worm_flits) {
  SimConfig cfg;
  cfg.worm_flits = worm_flits;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1'000'000;
  cfg.max_cycles = 2'000'000;
  return cfg;
}

// k worms from distinct sources to ONE destination, all generated at cycle
// 0: FCFS chain with hand-off; worm i (0-based) completes at
// (i+1)*(s_f+1) + D - 2 ... derived: first worm D + s_f - 1; each successor
// +s_f+1 (full drain plus one arbitration cycle).
class EjectionChain : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EjectionChain, ExactLatencies) {
  const auto [k, sf] = GetParam();
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(sf));
  for (int i = 0; i < k; ++i) s.add_message(0, 1 + i, 0);  // all to proc 0, D=2
  const SimResult r = s.run();
  ASSERT_EQ(r.latency.count(), k);
  const double first = 2 + sf - 1;
  EXPECT_DOUBLE_EQ(r.latency.min(), first);
  EXPECT_DOUBLE_EQ(r.latency.max(), first + (k - 1) * (sf + 1.0));
  EXPECT_DOUBLE_EQ(r.latency.mean(), first + (k - 1) * (sf + 1.0) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EjectionChain,
                         ::testing::Combine(::testing::Values(2, 3), // k worms (only 3 leaves share switch S(1,0))
                                            ::testing::Values(4, 16, 32)));

// Staggered arrivals at one destination: a later-generated worm that
// arrives while the channel is busy waits exactly until the earlier drain
// plus the hand-off cycle.
TEST(SimScenarios, StaggeredArrivalWaitsForResidualService) {
  const int sf = 16;
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(sf));
  s.add_message(0, 1, 0);   // seizes the ejection channel at cycle 1
  s.add_message(5, 2, 0);   // head reaches the switch at cycle 6, must wait
  const SimResult r = s.run();
  // First: 17.  Second: ejection frees at 17, granted 18, head enters
  // ejection latch at 18, drains 19..34 -> latency 34 - 5 = 29.
  EXPECT_DOUBLE_EQ(r.latency.min(), 17.0);
  EXPECT_DOUBLE_EQ(r.latency.max(), 29.0);
}

TEST(SimScenarios, LateWormFindsChannelFreeAgain) {
  const int sf = 8;
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(sf));
  s.add_message(0, 1, 0);
  s.add_message(200, 2, 0);  // long after the first fully drained
  const SimResult r = s.run();
  EXPECT_DOUBLE_EQ(r.latency.min(), 2 + sf - 1);
  EXPECT_DOUBLE_EQ(r.latency.max(), 2 + sf - 1);  // identical: no contention
}

// Three worms from THE SAME source to distinct destinations: pure source
// serialization; the i-th worm's latency grows by s_f + 1 each.
class SourceChain : public ::testing::TestWithParam<int> {};

TEST_P(SourceChain, ExactSerialization) {
  const int sf = GetParam();
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(sf));
  s.add_message(0, 0, 1);
  s.add_message(0, 0, 2);
  s.add_message(0, 0, 3);
  const SimResult r = s.run();
  const double first = 2 + sf - 1;
  EXPECT_DOUBLE_EQ(r.latency.min(), first);
  EXPECT_DOUBLE_EQ(r.latency.max(), first + 2 * (sf + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SourceChain, ::testing::Values(2, 8, 16, 64));

// The two-server up bundle at a leaf switch: two simultaneous climbers ride
// both links in parallel; with a THIRD climber the pool behaves FCFS.
TEST(SimScenarios, UpBundlePoolParallelThenQueued) {
  const int sf = 16;
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(sf));
  s.add_message(0, 0, 4);
  s.add_message(0, 1, 8);
  s.add_message(0, 2, 12);
  s.add_message(0, 3, 5);  // fourth climber: waits for the SECOND release
  const SimResult r = s.run();
  ASSERT_EQ(r.latency.count(), 4);
  // First two: 19 (D = 4).  Third: granted at 18 -> 36.  Fourth: the two
  // links free at 17 (both), but the third worm takes one at 18; the fourth
  // takes the other at 18 as well (two free links, two waiters) -> 36.
  EXPECT_DOUBLE_EQ(r.latency.min(), 19.0);
  EXPECT_DOUBLE_EQ(r.latency.max(), 36.0);
  EXPECT_DOUBLE_EQ(r.latency.mean(), (19.0 + 19.0 + 36.0 + 36.0) / 4.0);
}

// A worm blocked mid-network holds its upstream channels (blocked in
// place): traffic through a DIFFERENT output of the same switch is NOT
// affected (no head-of-line blocking across outputs).
TEST(SimScenarios, NoHeadOfLineBlockingAcrossOutputs) {
  const int sf = 16;
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(sf));
  s.add_message(0, 1, 0);  // A: occupies ejection to proc 0
  s.add_message(0, 2, 0);  // B: blocks behind A on that ejection channel
  s.add_message(2, 3, 1);  // C: same switch, different output — unaffected
  const SimResult r = s.run();
  ASSERT_EQ(r.latency.count(), 3);
  // C: D = 2, generated at 2, no contention on its path: latency 17.
  // (A=17, B=34.)
  EXPECT_DOUBLE_EQ(r.latency.min(), 17.0);
  EXPECT_DOUBLE_EQ(r.latency.mean(), (17.0 + 34.0 + 17.0) / 3.0);
}

// Crossing worms in opposite directions share no channels: full parallelism.
TEST(SimScenarios, OppositeDirectionsDoNotInteract) {
  const int sf = 32;
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  Simulator s(net, scripted_config(sf));
  s.add_message(0, 0, 15);
  s.add_message(0, 15, 0);
  const SimResult r = s.run();
  ASSERT_EQ(r.latency.count(), 2);
  EXPECT_DOUBLE_EQ(r.latency.min(), 4 + sf - 1);
  EXPECT_DOUBLE_EQ(r.latency.max(), 4 + sf - 1);
}

}  // namespace
}  // namespace wormnet::sim

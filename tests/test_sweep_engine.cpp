// Tests for the SweepEngine: parallel/serial bitwise identity, memoization,
// saturation search, and the polymorphic NetworkModel surface it drives.
#include "harness/sweep_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "core/hypercube_graph.hpp"
#include "core/traffic_model.hpp"
#include "topo/butterfly_fattree.hpp"

namespace wormnet::harness {
namespace {

std::vector<double> test_lambdas(const core::NetworkModel& model) {
  const double sat = model.saturation_rate();
  std::vector<double> lambdas;
  for (int i = 1; i <= 24; ++i) lambdas.push_back(sat * 1.1 * i / 24);
  return lambdas;  // spans stable region and past saturation
}

TEST(SweepEngine, ParallelSweepBitwiseIdenticalToSerial) {
  // The acceptance criterion of the refactor: a parallel sweep on >= 4
  // threads produces BITWISE-identical output to the serial path.
  const core::FatTreeModel model({.levels = 4, .worm_flits = 16.0});
  const std::vector<double> lambdas = test_lambdas(model);

  SweepEngine parallel({/*threads=*/4, /*parallel=*/true});
  SweepEngine serial({/*threads=*/0, /*parallel=*/false});
  EXPECT_EQ(parallel.threads(), 4u);
  EXPECT_EQ(serial.threads(), 1u);

  const auto pa = parallel.sweep_lambda(model, lambdas);
  const auto se = serial.sweep_lambda(model, lambdas);
  ASSERT_EQ(pa.size(), se.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].lambda0, se[i].lambda0);
    EXPECT_EQ(pa[i].load_flits, se[i].load_flits);
    EXPECT_EQ(pa[i].est.stable, se[i].est.stable);
    // Bitwise: exact double equality, including inf past saturation.
    EXPECT_EQ(pa[i].est.latency, se[i].est.latency) << "i=" << i;
    EXPECT_EQ(pa[i].est.inj_wait, se[i].est.inj_wait) << "i=" << i;
    EXPECT_EQ(pa[i].est.inj_service, se[i].est.inj_service) << "i=" << i;
  }
}

TEST(SweepEngine, ParallelSweepIdenticalOnGeneralModel) {
  core::GeneralModel net = core::build_hypercube_collapsed(6);
  const std::vector<double> lambdas = test_lambdas(net);
  SweepEngine parallel({4, true});
  SweepEngine serial({0, false});
  const auto pa = parallel.sweep_lambda(net, lambdas);
  const auto se = serial.sweep_lambda(net, lambdas);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].est.latency, se[i].est.latency) << "i=" << i;
  }
}

TEST(SweepEngine, MemoizationSkipsRepeatedEvaluations) {
  const core::FatTreeModel model({.levels = 3, .worm_flits = 16.0});
  SweepEngine engine;
  const std::vector<double> lambdas{0.001, 0.002, 0.003, 0.002, 0.001};

  const auto first = engine.sweep_lambda(model, lambdas);
  // 3 unique points evaluated; the 2 duplicates resolved from them.
  EXPECT_EQ(engine.cache_size(), 3u);
  const std::uint64_t misses = engine.cache_misses();

  const auto second = engine.sweep_lambda(model, lambdas);
  EXPECT_EQ(engine.cache_misses(), misses);  // no new evaluations
  EXPECT_GE(engine.cache_hits(), 5u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].est.latency, second[i].est.latency);
  }
  // Duplicate inputs resolve to identical results within one batch too.
  EXPECT_EQ(first[1].est.latency, first[3].est.latency);
  EXPECT_EQ(first[0].est.latency, first[4].est.latency);
}

TEST(SweepEngine, MemoizationSeparatesModels) {
  // Two live models with different configurations must not share entries.
  const core::FatTreeModel a({.levels = 3, .worm_flits = 16.0});
  const core::FatTreeModel b({.levels = 4, .worm_flits = 16.0});
  SweepEngine engine;
  const double la = engine.evaluate(a, 0.002).latency;
  const double lb = engine.evaluate(b, 0.002).latency;
  EXPECT_NE(la, lb);
  EXPECT_EQ(engine.cache_size(), 2u);
  // And re-reads hit the right entries.
  EXPECT_EQ(engine.evaluate(a, 0.002).latency, la);
  EXPECT_EQ(engine.evaluate(b, 0.002).latency, lb);
}

TEST(SweepEngine, AblationFlipOnLiveModelMissesCache) {
  // Flipping an interface-visible switch on a cached model must MISS (the
  // key covers worm length + ablation), not return the stale estimate.
  core::GeneralModel net = core::build_fattree_collapsed(3);
  net.opts.worm_flits = 16.0;
  SweepEngine engine;
  const double lambda0 = net.saturation_rate() * 0.8;
  const double with = engine.evaluate(net, lambda0).latency;
  net.opts.blocking_correction = false;
  const double without = engine.evaluate(net, lambda0).latency;
  EXPECT_NE(with, without);
  EXPECT_EQ(engine.cache_size(), 2u);
  net.opts.worm_flits = 32.0;
  engine.evaluate(net, lambda0);
  EXPECT_EQ(engine.cache_size(), 3u);
}

TEST(SweepEngine, IdenticalContentSharesCacheEntries) {
  // The content-keyed cache: two distinct model OBJECTS with identical
  // configuration share entries — the second evaluation is a pure hit.
  const core::FatTreeModel a({.levels = 3, .worm_flits = 16.0});
  const core::FatTreeModel b({.levels = 3, .worm_flits = 16.0});
  ASSERT_EQ(a.content_digest(), b.content_digest());
  SweepEngine engine;
  const double la = engine.evaluate(a, 0.002).latency;
  const std::uint64_t misses = engine.cache_misses();
  EXPECT_EQ(engine.evaluate(b, 0.002).latency, la);
  EXPECT_EQ(engine.cache_misses(), misses);
  EXPECT_EQ(engine.cache_size(), 1u);
}

TEST(SweepEngine, RebuiltModelHitsWarmCacheAfterOriginalDies) {
  // The old address-keyed footgun, inverted into a feature: destroy the
  // model, rebuild an identical one (possibly at a recycled address), and
  // the warm cache serves it.
  SweepEngine engine;
  double first = 0.0;
  {
    const core::GeneralModel net = core::build_fattree_collapsed(3);
    first = engine.evaluate(net, 0.002).latency;
  }
  const std::uint64_t misses = engine.cache_misses();
  const core::GeneralModel again = core::build_fattree_collapsed(3);
  EXPECT_EQ(engine.evaluate(again, 0.002).latency, first);
  EXPECT_EQ(engine.cache_misses(), misses);
}

TEST(SweepEngine, GraphMutationOnLiveGeneralModelMissesCache) {
  // GeneralModel's digest covers the channel graph itself, so state the old
  // interface-level key could not see — an edited rate, a lane retune — now
  // misses instead of serving the stale estimate.
  core::GeneralModel net = core::build_fattree_collapsed(3);
  SweepEngine engine;
  const double lambda0 = net.saturation_rate() * 0.7;
  const double before = engine.evaluate(net, lambda0).latency;
  net.set_uniform_lanes(4);
  const double lanes4 = engine.evaluate(net, lambda0).latency;
  EXPECT_NE(before, lanes4);
  net.scale_injection_rates(1.5);
  engine.evaluate(net, lambda0);
  EXPECT_EQ(engine.cache_size(), 3u);
}

TEST(SweepEngine, SaturationMatchesModelsOwnSolver) {
  const core::FatTreeModel model({.levels = 3, .worm_flits = 16.0});
  SweepEngine engine;
  // Same Eq. 26 bisection, same evaluations: identical result.
  EXPECT_DOUBLE_EQ(engine.saturation_rate(model), model.saturation_rate());
  EXPECT_DOUBLE_EQ(engine.saturation_load(model), model.saturation_load());
  // Running it again is pure cache.
  const std::uint64_t misses = engine.cache_misses();
  engine.saturation_rate(model);
  EXPECT_EQ(engine.cache_misses(), misses);
}

TEST(SweepEngine, SweepLoadConvertsUnits) {
  const core::FatTreeModel model({.levels = 3, .worm_flits = 32.0});
  SweepEngine engine;
  const auto points = engine.sweep_load(model, {0.032});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].load_flits, 0.032);
  EXPECT_DOUBLE_EQ(points[0].lambda0, 0.001);
  EXPECT_EQ(points[0].est.latency, model.evaluate(0.032 / 32.0).latency);
}

TEST(SweepEngine, SaturationFractionSweepBracketsTheKnee) {
  const core::FatTreeModel model({.levels = 3, .worm_flits = 16.0});
  SweepEngine engine;
  const auto points =
      engine.sweep_saturation_fractions(model, {0.5, 0.95, 1.05});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_TRUE(points[0].est.stable);
  EXPECT_TRUE(points[1].est.stable);
  EXPECT_FALSE(points[2].est.stable);
  EXPECT_GT(points[1].est.latency, points[0].est.latency);
}

TEST(SweepEngine, DrivesModelsThroughTheInterface) {
  // The engine only sees core::NetworkModel; closed-form and graph-backed
  // implementations behave identically behind it.
  const core::FatTreeModel closed({.levels = 3, .worm_flits = 16.0});
  core::GeneralModel graph = core::build_fattree_collapsed(3);
  graph.opts.worm_flits = 16.0;
  const core::NetworkModel* models[] = {&closed, &graph};
  SweepEngine engine;
  double latencies[2];
  for (int i = 0; i < 2; ++i)
    latencies[i] = engine.evaluate(*models[i], 0.002).latency;
  EXPECT_NEAR(latencies[0], latencies[1], 1e-9 * latencies[0]);
  EXPECT_EQ(graph.name(), "collapsed-fattree(n=3,m=2)");
  EXPECT_EQ(closed.name(), "butterfly-fattree(n=3,m=2)");
  EXPECT_TRUE(closed.ablation().multi_server);
}

TEST(SweepEngine, ClearCacheForgetsEverything) {
  const core::FatTreeModel model({.levels = 2, .worm_flits = 16.0});
  SweepEngine engine;
  engine.evaluate(model, 0.01);
  EXPECT_EQ(engine.cache_size(), 1u);
  engine.clear_cache();
  EXPECT_EQ(engine.cache_size(), 0u);
}

TEST(SweepEngine, FamilySweepWalksTheHotspotAxis) {
  // The pattern-sweep entry point: a hotspot-fraction axis of traffic-aware
  // fat-tree models.  Saturation must fall monotonically as the fraction
  // grows (the hotspot ejection channel binds harder and harder), each
  // member carries its own curve, and the uniform member (f=0) agrees with
  // the plain uniform builder.
  topo::ButterflyFatTree ft(2);
  core::SolveOptions opts;
  opts.worm_flits = 16.0;
  SweepEngine engine;
  const std::vector<double> fractions{0.25, 0.5, 0.75};
  const std::vector<FamilyMember> family = engine.sweep_family(
      [&](double f) {
        return std::make_unique<core::GeneralModel>(
            core::build_traffic_model(ft, traffic::TrafficSpec::hotspot(f), opts));
      },
      {0.0, 0.05, 0.15, 0.3}, fractions);
  ASSERT_EQ(family.size(), 4u);
  for (std::size_t i = 0; i < family.size(); ++i) {
    const FamilyMember& member = family[i];
    EXPECT_GT(member.saturation_rate, 0.0);
    ASSERT_EQ(member.points.size(), fractions.size());
    for (std::size_t j = 0; j < fractions.size(); ++j) {
      EXPECT_TRUE(member.points[j].est.stable);
      EXPECT_NEAR(member.points[j].lambda0,
                  member.saturation_rate * fractions[j], 1e-12);
    }
    if (i > 0) {
      EXPECT_LT(member.saturation_rate, family[i - 1].saturation_rate);
    }
  }
  const core::GeneralModel uniform = core::build_traffic_model(
      ft, traffic::TrafficSpec::uniform(), opts);
  EXPECT_NEAR(family[0].saturation_rate, engine.saturation_rate(uniform), 1e-12);
}

TEST(SweepEngine, MemoizeOffAlwaysReevaluates) {
  const core::FatTreeModel model({.levels = 2, .worm_flits = 16.0});
  SweepEngine engine({0, true, /*memoize=*/false});
  engine.evaluate(model, 0.01);
  engine.evaluate(model, 0.01);
  EXPECT_EQ(engine.cache_size(), 0u);
  EXPECT_EQ(engine.cache_hits(), 0u);
}

}  // namespace
}  // namespace wormnet::harness

// Tests for the generic per-physical-channel model builder.
//
// The strongest checks here are representation-independence results: the
// full (per-channel) graph and the collapsed (per-class) graph are different
// encodings of the same network, and the general solver must produce the
// same network-level numbers on both.
#include "core/full_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "core/hypercube_graph.hpp"
#include "core/network_model.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/channels.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet::core {
namespace {

TEST(FullGraph, FatTreeRatesMatchEq14PerLevel) {
  topo::ButterflyFatTree ft(2);
  const GeneralModel net = build_full_channel_graph(ft);
  const topo::ChannelTable ct(ft);
  FatTreeModel model({.levels = 2, .worm_flits = 16.0});
  for (int ch = 0; ch < ct.size(); ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    const int from_level = ft.node_level(dc.src_node);
    const int to_level = ft.node_level(dc.dst_node);
    const double rate = net.graph.at(ch).rate_per_link;
    if (to_level > from_level) {
      EXPECT_NEAR(rate, model.rate_up(from_level, 1.0), 1e-9)
          << "up channel at level " << from_level;
    } else {
      EXPECT_NEAR(rate, model.rate_up(to_level, 1.0), 1e-9)
          << "down channel to level " << to_level;
    }
  }
}

TEST(FullGraph, FatTreeFullMatchesCollapsedUpToPaperApproximation) {
  // The collapsed graph uses the paper's Eq. 22 branching probability P↑_l
  // UNCONDITIONALLY, while the exact continuation probability for a message
  // already on channel ⟨l-1,l⟩ is P↑_l / P↑_{l-1} (it is known not to have
  // ended below level l).  The full-graph builder measures exact flows, so
  // the two representations agree only up to this (sub-0.1%) approximation
  // the paper itself makes.
  for (int levels : {1, 2, 3}) {
    topo::ButterflyFatTree ft(levels);
    const GeneralModel full = build_full_channel_graph(ft);
    const GeneralModel collapsed = build_fattree_collapsed(levels);
    SolveOptions opts;
    opts.worm_flits = 16.0;
    for (double lambda0 : {0.0005, 0.002}) {
      const LatencyEstimate a = model_latency(full, lambda0, opts);
      const LatencyEstimate b = model_latency(collapsed, lambda0, opts);
      ASSERT_EQ(a.stable, b.stable);
      if (a.stable) {
        EXPECT_NEAR(a.latency, b.latency, 2e-3 * b.latency)
            << "levels=" << levels << " lambda0=" << lambda0;
      }
    }
  }
}

TEST(FullGraph, ExactConditionalsCloseTheGapToFullGraph) {
  // With the exact conditional branching probabilities (P↑_l / P↑_{l-1})
  // the collapsed graph must agree with the exact-flow per-channel graph to
  // near machine precision — proving the residual FatTreeFullMatchesCollapsed
  // difference is entirely the paper's unconditional-P↑ approximation.
  for (int levels : {2, 3}) {
    topo::ButterflyFatTree ft(levels);
    const GeneralModel full = build_full_channel_graph(ft);
    const GeneralModel exact = build_fattree_collapsed(levels, 2,
                                                       /*exact_conditionals=*/true);
    SolveOptions opts;
    opts.worm_flits = 16.0;
    for (double lambda0 : {0.0005, 0.002}) {
      const LatencyEstimate a = model_latency(full, lambda0, opts);
      const LatencyEstimate b = model_latency(exact, lambda0, opts);
      ASSERT_EQ(a.stable, b.stable);
      if (a.stable) {
        EXPECT_NEAR(a.latency, b.latency, 1e-9 * b.latency)
            << "levels=" << levels << " lambda0=" << lambda0;
      }
    }
  }
}

TEST(FullGraph, HypercubeFullMatchesCollapsed) {
  for (int dims : {2, 3, 4}) {
    topo::Hypercube hc(dims);
    const GeneralModel full = build_full_channel_graph(hc);
    const GeneralModel collapsed = build_hypercube_collapsed(dims);
    SolveOptions opts;
    opts.worm_flits = 16.0;
    for (double lambda0 : {0.001, 0.004}) {
      const LatencyEstimate a = model_latency(full, lambda0, opts);
      const LatencyEstimate b = model_latency(collapsed, lambda0, opts);
      ASSERT_EQ(a.stable, b.stable);
      if (a.stable) {
        EXPECT_NEAR(a.latency, b.latency, 1e-6 * b.latency)
            << "dims=" << dims << " lambda0=" << lambda0;
      }
    }
  }
}

TEST(FullGraph, FlowConservationAtInjectionAndEjection) {
  topo::Mesh m(4, 2);
  const GeneralModel net = build_full_channel_graph(m);
  const topo::ChannelTable ct(m);
  for (int p = 0; p < m.num_processors(); ++p) {
    // Unit injection per processor...
    const int inj = ct.from(p, 0);
    EXPECT_NEAR(net.graph.at(inj).rate_per_link, 1.0, 1e-9);
    // ...and unit absorption (uniform traffic): the ejection channel into p.
    const int ej = ct.into(p, 0);
    EXPECT_NEAR(net.graph.at(ej).rate_per_link, 1.0, 1e-9);
    EXPECT_TRUE(net.graph.at(ej).terminal);
    EXPECT_FALSE(net.graph.at(inj).terminal);
  }
}

TEST(FullGraph, MeshCenterChannelsCarryMoreTraffic) {
  // DOR on a line: the middle links carry the most flow — the heterogeneity
  // that makes the mesh a real test of the per-channel model.
  topo::Mesh line(8, 1);
  const GeneralModel net = build_full_channel_graph(line);
  const topo::ChannelTable ct(line);
  // x+ channel out of router i (port 1).
  auto plus_rate = [&](int i) {
    return net.graph.at(ct.from(line.router_of(i), 1)).rate_per_link;
  };
  EXPECT_GT(plus_rate(3), plus_rate(0));
  EXPECT_GT(plus_rate(3), plus_rate(6));
  // Symmetry of the line: rate(i -> i+1) == rate(7-i -> 6-i) mirrored.
  EXPECT_NEAR(plus_rate(1), net.graph.at(ct.from(line.router_of(6), 0)).rate_per_link,
              1e-9);
}

TEST(FullGraph, MeshZeroLoadLatency) {
  topo::Mesh m(4, 2);
  const GeneralModel net = build_full_channel_graph(m);
  SolveOptions opts;
  opts.worm_flits = 16.0;
  const LatencyEstimate est = model_latency(net, 0.0, opts);
  EXPECT_NEAR(est.latency, 16.0 + m.mean_distance() - 1.0, 1e-9);
}

TEST(FullGraph, MeshLatencyMonotoneAndSaturates) {
  topo::Mesh m(4, 2);
  const GeneralModel net = build_full_channel_graph(m);
  SolveOptions opts;
  opts.worm_flits = 16.0;
  double prev = 0.0;
  const double sat = model_saturation_rate(net, opts);
  EXPECT_GT(sat, 0.0);
  for (double frac : {0.2, 0.4, 0.6, 0.8}) {
    const LatencyEstimate est = model_latency(net, sat * frac, opts);
    ASSERT_TRUE(est.stable) << "frac=" << frac;
    EXPECT_GT(est.latency, prev);
    prev = est.latency;
  }
  EXPECT_FALSE(model_latency(net, sat * 1.1, opts).stable);
}

TEST(FullGraph, InjectionClassesOnePerProcessor) {
  topo::Hypercube hc(3);
  const GeneralModel net = build_full_channel_graph(hc);
  EXPECT_EQ(static_cast<int>(net.injection_classes.size()), hc.num_processors());
}

TEST(FullGraph, FatTreeUpBundlesHaveTwoServers) {
  topo::ButterflyFatTree ft(2);
  const GeneralModel net = build_full_channel_graph(ft);
  const topo::ChannelTable ct(ft);
  const int up0 = ct.from(ft.switch_id(1, 0), topo::ButterflyFatTree::kParentPort0);
  const int up1 = ct.from(ft.switch_id(1, 0), topo::ButterflyFatTree::kParentPort1);
  EXPECT_EQ(net.graph.at(up0).servers, 2);
  EXPECT_EQ(net.graph.at(up1).servers, 2);
  const int down = ct.from(ft.switch_id(1, 0), 0);
  EXPECT_EQ(net.graph.at(down).servers, 1);
}

TEST(FullGraph, AdaptiveSplitBalancesUpLinks) {
  // The probability-splitting walk sends half of each up-decision to each
  // parent: both up channels of a switch carry identical rates.
  topo::ButterflyFatTree ft(3);
  const GeneralModel net = build_full_channel_graph(ft);
  const topo::ChannelTable ct(ft);
  for (int a = 0; a < ft.switches_at(1); ++a) {
    const int sw = ft.switch_id(1, a);
    const int up0 = ct.from(sw, topo::ButterflyFatTree::kParentPort0);
    const int up1 = ct.from(sw, topo::ButterflyFatTree::kParentPort1);
    EXPECT_NEAR(net.graph.at(up0).rate_per_link, net.graph.at(up1).rate_per_link,
                1e-9);
  }
}

}  // namespace
}  // namespace wormnet::core

// Tests for the generalized fat-tree (m parent links) and the M/G/m model
// extension the paper's conclusion anticipates.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "core/network_model.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/generalized_fattree.hpp"
#include "topo/graph_checks.hpp"
#include "util/math.hpp"

namespace wormnet {
namespace {

using topo::GeneralizedFatTree;
using util::ipow;

TEST(GenFatTree, SwitchCounts) {
  for (int n = 1; n <= 3; ++n) {
    for (int m = 1; m <= 4; ++m) {
      GeneralizedFatTree ft(n, m);
      for (int l = 1; l <= n; ++l) {
        EXPECT_EQ(ft.switches_at(l), ipow(4, n - l) * ipow(m, l - 1))
            << "n=" << n << " m=" << m << " l=" << l;
      }
    }
  }
}

TEST(GenFatTree, TwoParentCountsMatchButterfly) {
  // m = 2 reproduces the butterfly fat-tree's census (wiring details may
  // permute within levels; the structure is isomorphic).
  for (int n = 1; n <= 4; ++n) {
    GeneralizedFatTree gen(n, 2);
    topo::ButterflyFatTree bf(n);
    for (int l = 1; l <= n; ++l)
      EXPECT_EQ(gen.switches_at(l), bf.switches_at(l)) << "n=" << n << " l=" << l;
    EXPECT_NEAR(gen.mean_distance(), bf.mean_distance(), 1e-12);
  }
}

class GenFatTreeStructure
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GenFatTreeStructure, VerifierPasses) {
  const auto [n, m] = GetParam();
  GeneralizedFatTree ft(n, m);
  const topo::VerifyReport report = topo::verify_topology(ft);
  EXPECT_TRUE(report.ok()) << ft.name() << ": "
                           << (report.ok() ? "" : report.violations[0]);
}

TEST_P(GenFatTreeStructure, DistanceIndependentOfParentCount) {
  const auto [n, m] = GetParam();
  GeneralizedFatTree ft(n, m);
  GeneralizedFatTree ref(n, 1);
  const int procs = ft.num_processors();
  const int stride = procs > 64 ? procs / 64 : 1;
  for (int s = 0; s < procs; s += stride)
    for (int d = 0; d < procs; d += stride)
      EXPECT_EQ(ft.distance(s, d), ref.distance(s, d));
}

TEST_P(GenFatTreeStructure, UpRouteOffersAllParents) {
  const auto [n, m] = GetParam();
  if (n < 2) return;
  GeneralizedFatTree ft(n, m);
  const int sw = ft.switch_id(1, 0);
  const topo::RouteOptions up = ft.route(sw, ft.num_processors() - 1);
  EXPECT_EQ(up.size(), m);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GenFatTreeStructure,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(GenFatTree, CoverageIsBlockStructured) {
  GeneralizedFatTree ft(2, 3);
  for (int l = 1; l <= 2; ++l) {
    for (int a = 0; a < ft.switches_at(l); ++a) {
      std::set<int> reachable;
      std::vector<int> stack{ft.switch_id(l, a)};
      while (!stack.empty()) {
        const int node = stack.back();
        stack.pop_back();
        if (ft.is_processor(node)) {
          reachable.insert(node);
          continue;
        }
        for (int c = 0; c < 4; ++c) stack.push_back(ft.neighbor(node, c));
      }
      EXPECT_EQ(static_cast<long>(reachable.size()), ipow(4, l));
      for (int p = 0; p < ft.num_processors(); ++p)
        EXPECT_EQ(ft.covers(l, a, p), reachable.count(p) == 1);
    }
  }
}

TEST(GenFatTreeModel, TwoParentsIsThePaperModel) {
  // parents = 2 must change nothing relative to the published equations.
  core::FatTreeModel paper({.levels = 4, .worm_flits = 16.0});
  core::FatTreeModel gen(
      {.levels = 4, .worm_flits = 16.0, .parents = 2});
  for (double load : {0.01, 0.02, 0.03}) {
    EXPECT_DOUBLE_EQ(paper.evaluate_load(load).latency,
                     gen.evaluate_load(load).latency);
  }
}

TEST(GenFatTreeModel, RatesScaleAsFourOverM) {
  core::FatTreeModel m3({.levels = 3, .worm_flits = 16.0, .parents = 3});
  const double lambda0 = 0.001;
  for (int l = 0; l < 3; ++l) {
    EXPECT_NEAR(m3.rate_up(l, lambda0),
                lambda0 * m3.up_probability(l) * std::pow(4.0 / 3.0, l), 1e-15);
  }
}

TEST(GenFatTreeModel, MoreParentsMoreCapacity) {
  double prev = 0.0;
  for (int m = 1; m <= 4; ++m) {
    core::FatTreeModel model({.levels = 4, .worm_flits = 16.0, .parents = m});
    const double sat = model.saturation_load();
    EXPECT_GT(sat, prev) << "m=" << m;
    prev = sat;
  }
}

TEST(GenFatTreeModel, CollapsedGraphMatchesClosedFormForAllM) {
  for (int m = 1; m <= 4; ++m) {
    core::FatTreeModel closed({.levels = 3, .worm_flits = 16.0, .parents = m});
    const core::GeneralModel net = core::build_fattree_collapsed(3, m);
    core::SolveOptions opts;
    opts.worm_flits = 16.0;
    const double lambda0 = closed.saturation_rate() * 0.6;
    const core::LatencyEstimate ev = closed.evaluate(lambda0);
    const core::LatencyEstimate est = core::model_latency(net, lambda0, opts);
    ASSERT_TRUE(ev.stable);
    EXPECT_NEAR(est.latency, ev.latency, 1e-9) << "m=" << m;
  }
}

TEST(GenFatTreeModel, ZeroLoadIndependentOfM) {
  for (int m = 1; m <= 4; ++m) {
    core::FatTreeModel model({.levels = 3, .worm_flits = 32.0, .parents = m});
    EXPECT_NEAR(model.evaluate(0.0).latency, 32.0 + model.mean_distance() - 1.0,
                1e-9);
  }
}

// End-to-end: the M/G/m model tracks simulation on the m-parent topology.
class GenFatTreeAgreement : public ::testing::TestWithParam<int> {};

TEST_P(GenFatTreeAgreement, ModelTracksSimulation) {
  const int m = GetParam();
  GeneralizedFatTree ft(2, m);
  core::FatTreeModel model({.levels = 2, .worm_flits = 16.0, .parents = m});
  const double load = model.saturation_load() * 0.55;

  sim::SimConfig cfg;
  cfg.load_flits = load;
  cfg.worm_flits = 16;
  cfg.seed = 31 + static_cast<std::uint64_t>(m);
  cfg.warmup_cycles = 6'000;
  cfg.measure_cycles = 30'000;
  cfg.max_cycles = 400'000;
  cfg.channel_stats = false;
  const sim::SimResult r = sim::simulate(ft, cfg);
  ASSERT_TRUE(r.completed);
  const double model_latency = model.evaluate_load(load).latency;
  // 12%: at high parent multiplicity on a small network the simulator's
  // one-cycle arbitration hand-off is a visible fraction of each (short)
  // queueing episode, which the model idealizes away.
  EXPECT_NEAR(r.latency.mean(), model_latency, model_latency * 0.12) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GenFatTreeAgreement, ::testing::Values(1, 2, 3, 4));

TEST(GenFatTree, SimulatorOverloadScalesWithParents) {
  // Closed-loop capacity must grow with parent multiplicity.
  double prev = 0.0;
  for (int m = 1; m <= 3; ++m) {
    GeneralizedFatTree ft(2, m);
    sim::SimConfig cfg;
    cfg.arrivals = sim::ArrivalProcess::Overload;
    cfg.worm_flits = 16;
    cfg.seed = 8;
    cfg.warmup_cycles = 4'000;
    cfg.measure_cycles = 10'000;
    cfg.channel_stats = false;
    const sim::SimResult r = sim::simulate(ft, cfg);
    EXPECT_GT(r.throughput_flits_per_pe, prev) << "m=" << m;
    prev = r.throughput_flits_per_pe;
  }
}

}  // namespace
}  // namespace wormnet

// Tests for the xoshiro256** RNG and its distributions.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace wormnet::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a = Rng::stream(7, 0);
  Rng b = Rng::stream(7, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, StreamIsReproducible) {
  Rng a = Rng::stream(99, 42);
  Rng b = Rng::stream(99, 42);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformPosNeverZero) {
  Rng r(4);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform_pos();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(5);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  // SE of the mean is ~0.0009; 5 sigma band.
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIntInRangeAndHitsAllValues) {
  Rng r(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const std::uint64_t v = r.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng r(7);
  const int buckets = 8;
  const int n = 80'000;
  std::vector<int> count(buckets, 0);
  for (int i = 0; i < n; ++i) ++count[r.uniform_int(buckets)];
  // Chi-square with 7 dof: 5-sigma-ish acceptance ~ 40.
  double chi2 = 0.0;
  const double expect = static_cast<double>(n) / buckets;
  for (int c : count) chi2 += (c - expect) * (c - expect) / expect;
  EXPECT_LT(chi2, 40.0);
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2'000; ++i) {
    const std::int64_t v = r.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(9);
  const int n = 100'000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng r(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng r(11);
  const double rate = 0.25;
  const int n = 200'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(rate);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
}

TEST(Rng, ExponentialVarianceMatches) {
  Rng r(12);
  const double rate = 2.0;
  const int n = 200'000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(rate);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(var, 1.0 / (rate * rate), 0.02);
}

// --- Inter-arrival sampling edge cases (the arrivals subsystem leans on
// --- exponential() at extreme rates and on stream independence under the
// --- SimEngine's seed-replication scheme seed, seed+1, ...).

TEST(Rng, ExponentialTinyRateStaysFiniteAndPositive) {
  // rate → 0: gaps blow up toward the mean 1/rate but must stay finite
  // doubles (uniform_pos() never returns 0, so log() never returns -inf).
  Rng r(14);
  for (double rate : {1e-6, 1e-12, 1e-300}) {
    for (int i = 0; i < 1000; ++i) {
      const double x = r.exponential(rate);
      ASSERT_TRUE(std::isfinite(x)) << "rate=" << rate;
      ASSERT_GT(x, 0.0) << "rate=" << rate;
    }
  }
}

TEST(Rng, ExponentialHugeRateCollapsesTowardZero) {
  // rate → ∞: gaps collapse to 0 without going negative or NaN.  (A gap of
  // exactly +0.0 is legal — the traffic heap handles coincident arrivals.)
  Rng r(15);
  for (double rate : {1e6, 1e300}) {
    double max_gap = 0.0;
    for (int i = 0; i < 1000; ++i) {
      const double x = r.exponential(rate);
      ASSERT_TRUE(std::isfinite(x)) << "rate=" << rate;
      ASSERT_GE(x, 0.0) << "rate=" << rate;
      max_gap = std::max(max_gap, x);
    }
    EXPECT_LT(max_gap, 64.0 / rate) << "rate=" << rate;
  }
}

TEST(Rng, SeedReplicationStreamsAreIndependent) {
  // The SimEngine replicates a cell with seeds s, s+1, s+2, ...; each
  // replication re-derives per-processor streams with Rng::stream(seed, p).
  // Adjacent seeds must therefore give de-correlated streams for EVERY
  // processor index, not just stream 0.
  for (std::uint64_t proc : {0ull, 1ull, 7ull, 63ull}) {
    Rng a = Rng::stream(1000, proc);
    Rng b = Rng::stream(1001, proc);
    int equal = 0;
    double corr = 0.0;
    for (int i = 0; i < 256; ++i) {
      const double ua = a.uniform(), ub = b.uniform();
      if (ua == ub) ++equal;
      corr += (ua - 0.5) * (ub - 0.5);
    }
    EXPECT_LE(equal, 1) << "proc=" << proc;
    // Sample covariance of independent U(0,1) pairs: sd ≈ 1/(12·sqrt(n)).
    EXPECT_LT(std::abs(corr / 256.0), 0.03) << "proc=" << proc;
  }
}

TEST(Rng, PickOfTwoBalanced) {
  Rng r(13);
  const int n = 100'000;
  int ones = 0;
  for (int i = 0; i < n; ++i) ones += r.pick_of_two();
  EXPECT_NEAR(ones / static_cast<double>(n), 0.5, 0.01);
}

}  // namespace
}  // namespace wormnet::util

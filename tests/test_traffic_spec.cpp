// Tests for the traffic::TrafficSpec layer: the pattern catalog's exact
// pair weights, the materialized matrices, and the consistency between the
// two faces of a spec — pair_weight() (what the model routes) and
// sample_destination() (what the simulator draws).
#include "traffic/traffic_spec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "traffic/traffic_matrix.hpp"
#include "util/rng.hpp"

namespace wormnet::traffic {
namespace {

std::vector<TrafficSpec> catalog_for(int n) {
  std::vector<TrafficSpec> all{
      TrafficSpec::uniform(),
      TrafficSpec::hotspot(0.2),
      TrafficSpec::hotspot(0.5, n - 1),
      TrafficSpec::bit_complement(),
      TrafficSpec::transpose(),
      TrafficSpec::nearest_neighbor(0.6),
  };
  std::vector<int> shift(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) shift[static_cast<std::size_t>(s)] = (s + 1) % n;
  all.push_back(TrafficSpec::permutation(shift));
  std::vector<TrafficSpec> usable;
  for (TrafficSpec& spec : all) {
    if (spec.check(n).empty()) usable.push_back(spec);
  }
  return usable;
}

TEST(TrafficSpec, RowsAreStochasticAndDiagonalFree) {
  for (int n : {4, 16, 64}) {
    for (const TrafficSpec& spec : catalog_for(n)) {
      const TrafficMatrix m = spec.materialize(n);
      EXPECT_TRUE(m.validate().empty()) << spec.name() << " N=" << n;
      for (int s = 0; s < n; ++s) {
        EXPECT_NEAR(m.row_sum(s), 1.0, 1e-12) << spec.name() << " row " << s;
        EXPECT_EQ(m.at(s, s), 0.0) << spec.name();
        EXPECT_NEAR(spec.injection_weight(s, n), 1.0, 1e-12) << spec.name();
      }
    }
  }
}

TEST(TrafficSpec, MaterializeAgreesWithPairWeight) {
  const int n = 16;
  for (const TrafficSpec& spec : catalog_for(n)) {
    const TrafficMatrix m = spec.materialize(n);
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        EXPECT_DOUBLE_EQ(m.at(s, d), spec.pair_weight(s, d, n)) << spec.name();
      }
    }
  }
}

TEST(TrafficSpec, HotspotPairWeightClosedForm) {
  const int n = 64;
  const double f = 0.25;
  const TrafficSpec spec = TrafficSpec::hotspot(f);
  const double spread = (1.0 - f) / (n - 1);
  EXPECT_DOUBLE_EQ(spec.pair_weight(17, 0, n), f + spread);
  EXPECT_DOUBLE_EQ(spec.pair_weight(17, 5, n), spread);
  // The hotspot's own messages are plain uniform.
  EXPECT_DOUBLE_EQ(spec.pair_weight(0, 5, n), 1.0 / (n - 1));
}

TEST(TrafficSpec, FixedPatternsAreThePaperPermutations) {
  const int n = 16;
  const TrafficSpec bc = TrafficSpec::bit_complement();
  const TrafficSpec tp = TrafficSpec::transpose();
  util::Rng rng(1);
  for (int s = 0; s < n; ++s) {
    EXPECT_EQ(bc.sample_destination(s, n, rng), n - 1 - s);
    EXPECT_DOUBLE_EQ(bc.pair_weight(s, n - 1 - s, n), 1.0);
  }
  // 4x4 grid: (r, c) -> (c, r); diagonal falls back to s+1.
  EXPECT_EQ(tp.sample_destination(1, n, rng), 4);
  EXPECT_EQ(tp.sample_destination(7, n, rng), 13);
  EXPECT_EQ(tp.sample_destination(5, n, rng), 6);
  EXPECT_DOUBLE_EQ(tp.pair_weight(7, 13, n), 1.0);
  EXPECT_DOUBLE_EQ(tp.pair_weight(5, 6, n), 1.0);
}

TEST(TrafficSpec, ChecksRejectIncompatibleSizes) {
  EXPECT_FALSE(TrafficSpec::bit_complement().check(15).empty());
  EXPECT_TRUE(TrafficSpec::bit_complement().check(16).empty());
  EXPECT_FALSE(TrafficSpec::transpose().check(12).empty());
  EXPECT_TRUE(TrafficSpec::transpose().check(16).empty());
  EXPECT_FALSE(TrafficSpec::hotspot(0.1, 9).check(8).empty());
  EXPECT_FALSE(TrafficSpec::permutation({1, 0}).check(3).empty());
  EXPECT_FALSE(TrafficSpec::permutation({0, 1}).check(2).empty());  // fixed points
  EXPECT_FALSE(TrafficSpec::permutation({1, 1, 0}).check(3).empty());  // repeat
  EXPECT_TRUE(TrafficSpec::permutation({1, 2, 0}).check(3).empty());
}

TEST(TrafficSpec, SampleNeverReturnsSourceAndMatchesLaw) {
  const int n = 16;
  const int draws = 40'000;
  for (const TrafficSpec& spec : catalog_for(n)) {
    util::Rng rng(7);
    std::vector<int> count(static_cast<std::size_t>(n), 0);
    const int src = 3;
    for (int i = 0; i < draws; ++i) {
      const int d = spec.sample_destination(src, n, rng);
      ASSERT_NE(d, src) << spec.name();
      ASSERT_GE(d, 0);
      ASSERT_LT(d, n);
      ++count[static_cast<std::size_t>(d)];
    }
    // Empirical frequency within 4-sigma-ish of the declared law.
    for (int d = 0; d < n; ++d) {
      const double w = spec.pair_weight(src, d, n);
      const double freq = count[static_cast<std::size_t>(d)] / static_cast<double>(draws);
      EXPECT_NEAR(freq, w, 0.015) << spec.name() << " dest " << d;
    }
  }
}

TEST(TrafficSpec, MatrixSamplingFollowsCustomWeights) {
  TrafficMatrix m(4);
  m.set(0, 1, 0.5);
  m.set(0, 2, 0.25);
  m.set(0, 3, 0.25);
  m.set(1, 0, 1.0);
  m.set(2, 3, 1.0);
  m.set(3, 0, 1.0);
  const TrafficSpec spec = TrafficSpec::matrix(m);
  ASSERT_TRUE(spec.check(4).empty());
  util::Rng rng(11);
  int to1 = 0;
  for (int i = 0; i < 20'000; ++i) {
    const int d = spec.sample_destination(0, 4, rng);
    ASSERT_NE(d, 0);
    if (d == 1) ++to1;
  }
  EXPECT_NEAR(to1 / 20'000.0, 0.5, 0.02);
  // Deterministic rows sample deterministically.
  EXPECT_EQ(spec.sample_destination(2, 4, rng), 3);
  EXPECT_EQ(spec.sample_destination(3, 4, rng), 0);
}

TEST(TrafficSpec, MatrixAllowsSilentRowsAndNormalization) {
  TrafficMatrix m(3);
  m.set(0, 1, 2.0);
  m.set(0, 2, 6.0);
  m.set(1, 0, 1.0);
  // Row 2 silent; rows 0 un-normalized.
  EXPECT_FALSE(m.validate().empty());
  m.normalize_rows();
  EXPECT_TRUE(m.validate().empty()) << m.validate();
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.75);
  const TrafficSpec spec = TrafficSpec::matrix(m);
  EXPECT_DOUBLE_EQ(spec.injection_weight(2, 3), 0.0);
  EXPECT_DOUBLE_EQ(spec.injection_weight(0, 3), 1.0);
}

TEST(TrafficMatrix, ValidateCatchesBadEntries) {
  TrafficMatrix bad(3);
  bad.set(0, 1, 0.5);
  EXPECT_FALSE(bad.validate().empty());  // row sums to 0.5
  TrafficMatrix ok(3);
  ok.set(0, 1, 0.5);
  ok.set(0, 2, 0.5);
  ok.set(1, 0, 1.0);
  ok.set(2, 0, 1.0);
  EXPECT_TRUE(ok.validate().empty());
  EXPECT_DOUBLE_EQ(ok.col_sum(0), 2.0);
  EXPECT_DOUBLE_EQ(ok.row_sum(2), 1.0);
}

TEST(TrafficSpec, NearestNeighborConcentratesOnRingNeighbors) {
  const int n = 8;
  const TrafficSpec spec = TrafficSpec::nearest_neighbor(0.5);
  const double uniform_part = 0.5 / (n - 1);
  EXPECT_DOUBLE_EQ(spec.pair_weight(3, 4, n), 0.25 + uniform_part);
  EXPECT_DOUBLE_EQ(spec.pair_weight(3, 2, n), 0.25 + uniform_part);
  EXPECT_DOUBLE_EQ(spec.pair_weight(3, 6, n), uniform_part);
  // N=2: both ring neighbors coincide on the single other node.
  EXPECT_DOUBLE_EQ(spec.pair_weight(0, 1, 2), 1.0);
}

}  // namespace
}  // namespace wormnet::traffic

// Tests for the channel graph and the general model solver (§2).
#include "core/general_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/channel_graph.hpp"
#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "core/hypercube_graph.hpp"
#include "core/network_model.hpp"
#include "queueing/queueing.hpp"

namespace wormnet::core {
namespace {

// A minimal two-channel graph: injection feeding an ejection channel —
// effectively an M/G/1 queue in front of a deterministic drain.
GeneralModel two_channel_line() {
  GeneralModel net;
  ChannelClass ej;
  ej.label = "eject";
  ej.rate_per_link = 1.0;
  ej.terminal = true;
  const int ej_id = net.graph.add_channel(ej);
  ChannelClass inj;
  inj.label = "inj";
  inj.rate_per_link = 1.0;
  const int inj_id = net.graph.add_channel(inj);
  net.graph.add_transition(inj_id, ej_id, 1.0, 1.0);
  net.injection_classes = {inj_id};
  net.mean_distance = 2.0;
  net.labels = {{"inj", inj_id}, {"eject", ej_id}};
  return net;
}

TEST(ChannelGraph, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(two_channel_line().graph.validate().empty());
}

TEST(ChannelGraph, ValidateRejectsBadWeights) {
  ChannelGraph g;
  ChannelClass a;
  a.rate_per_link = 1.0;
  const int ia = g.add_channel(a);
  ChannelClass b;
  b.terminal = true;
  b.rate_per_link = 1.0;
  const int ib = g.add_channel(b);
  g.add_transition(ia, ib, 0.5);  // weights sum to 0.5, not 1
  EXPECT_FALSE(g.validate().empty());
}

TEST(ChannelGraph, ValidateRejectsTerminalWithTransitions) {
  ChannelGraph g;
  ChannelClass a;
  a.terminal = true;
  const int ia = g.add_channel(a);
  ChannelClass b;
  b.terminal = true;
  const int ib = g.add_channel(b);
  g.mutable_at(ia).terminal = true;
  g.add_transition(ia, ib, 1.0);
  EXPECT_FALSE(g.validate().empty());
}

TEST(ChannelGraph, ReverseTopologicalOrderPutsTerminalsFirst) {
  const GeneralModel net = two_channel_line();
  const std::vector<int> order = net.graph.reverse_topological_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], net.class_id("eject"));
  EXPECT_EQ(order[1], net.class_id("inj"));
  EXPECT_TRUE(net.graph.acyclic());
}

TEST(ChannelGraph, CycleDetected) {
  ChannelGraph g;
  ChannelClass a;
  const int ia = g.add_channel(a);
  const int ib = g.add_channel(a);
  g.add_transition(ia, ib, 1.0);
  g.add_transition(ib, ia, 1.0);
  EXPECT_TRUE(g.reverse_topological_order().empty());
  EXPECT_FALSE(g.acyclic());
}

TEST(GeneralModel, TwoChannelLineMatchesHandComputation) {
  // x̄_ej = s_f.  W_ej = M/G/1 wait at (λ, s_f) with the wormhole C².
  // Blocking: single input feeding single output exclusively -> P = 0, so
  // x̄_inj = s_f exactly, and W_inj is the source M/G/1 wait.
  const GeneralModel net = two_channel_line();
  SolveOptions opts;
  opts.worm_flits = 16.0;
  const double lambda0 = 0.03;
  const SolveResult res = model_solve(net, lambda0, opts);
  ASSERT_TRUE(res.stable);
  EXPECT_DOUBLE_EQ(res.service_time(net.class_id("eject")), 16.0);
  EXPECT_NEAR(res.service_time(net.class_id("inj")), 16.0, 1e-12);
  EXPECT_NEAR(res.wait(net.class_id("inj")),
              queueing::mg1_wait_wormhole(lambda0, 16.0, 16.0), 1e-12);
  const LatencyEstimate est = model_latency(net, lambda0, opts);
  EXPECT_NEAR(est.latency, est.inj_wait + 16.0 + 2.0 - 1.0, 1e-12);
}

TEST(GeneralModel, BlockingOffRestoresFullWait) {
  const GeneralModel net = two_channel_line();
  SolveOptions with;
  with.worm_flits = 16.0;
  SolveOptions without = with;
  without.blocking_correction = false;
  const double lambda0 = 0.03;
  const SolveResult a = model_solve(net, lambda0, with);
  const SolveResult b = model_solve(net, lambda0, without);
  // With the correction, the single input never waits for itself: x̄ = s_f.
  EXPECT_NEAR(a.service_time(net.class_id("inj")), 16.0, 1e-12);
  // Without it, the ejection wait is charged in full.
  EXPECT_GT(b.service_time(net.class_id("inj")), 16.0);
}

// The repository's central consistency check: the general solver on the
// collapsed fat-tree graph must reproduce the §3 closed form EXACTLY.
class CollapsedVsClosedForm
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(CollapsedVsClosedForm, Agree) {
  const auto [levels, sf, frac] = GetParam();
  FatTreeModel closed({.levels = levels, .worm_flits = sf});
  const GeneralModel net = build_fattree_collapsed(levels);
  SolveOptions opts;
  opts.worm_flits = sf;
  const double lambda0 = closed.saturation_rate() * frac;

  const FatTreeEvaluation ev = closed.evaluate_detail(lambda0);
  const LatencyEstimate est = model_latency(net, lambda0, opts);
  ASSERT_EQ(ev.stable, est.stable);
  if (!ev.stable) return;
  EXPECT_NEAR(est.latency, ev.latency, 1e-9 * std::max(1.0, ev.latency));
  EXPECT_NEAR(est.inj_wait, ev.inj_wait, 1e-9);
  EXPECT_NEAR(est.inj_service, ev.inj_service, 1e-9);

  // Per-level detail agrees too.
  const SolveResult res = model_solve(net, lambda0, opts);
  for (int l = 0; l < levels; ++l) {
    EXPECT_NEAR(res.service_time(net.class_id("up" + std::to_string(l))),
                ev.x_up[static_cast<std::size_t>(l)], 1e-9);
    EXPECT_NEAR(res.service_time(net.class_id("down" + std::to_string(l))),
                ev.x_down[static_cast<std::size_t>(l)], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollapsedVsClosedForm,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(16.0, 64.0),
                       ::testing::Values(0.2, 0.6, 0.9)));

TEST(GeneralModel, AblationFlagsMatchClosedFormAblations) {
  // Each ablation switch must act identically on both implementations.
  const int levels = 4;
  const double sf = 16.0, lambda0 = 0.0012;
  const GeneralModel net = build_fattree_collapsed(levels);
  for (int mask = 0; mask < 8; ++mask) {
    FatTreeModelOptions fo{.levels = levels, .worm_flits = sf};
    SolveOptions so;
    so.worm_flits = sf;
    fo.multi_server = so.multi_server = (mask & 1) != 0;
    fo.blocking_correction = so.blocking_correction = (mask & 2) != 0;
    fo.erratum_2lambda = so.erratum_2lambda = (mask & 4) != 0;
    const FatTreeEvaluation ev = FatTreeModel(fo).evaluate_detail(lambda0);
    const LatencyEstimate est = model_latency(net, lambda0, so);
    ASSERT_EQ(ev.stable, est.stable) << "mask=" << mask;
    if (ev.stable) {
      EXPECT_NEAR(est.latency, ev.latency, 1e-9) << "mask=" << mask;
    }
  }
}

TEST(GeneralModel, CyclicGraphConvergesByFixedPoint) {
  // A ring of two channels with a small escape probability to an ejection
  // channel; the dependency graph is cyclic, exercising the damped solver.
  ChannelGraph g;
  ChannelClass ej;
  ej.label = "eject";
  ej.rate_per_link = 1.0;
  ej.terminal = true;
  const int e = g.add_channel(ej);
  ChannelClass ring;
  ring.label = "ring";
  ring.rate_per_link = 0.5;
  const int a = g.add_channel(ring);
  const int b = g.add_channel(ring);
  g.add_transition(a, b, 0.5, 0.5);
  g.add_transition(a, e, 0.5, 0.5);
  g.add_transition(b, a, 0.5, 0.5);
  g.add_transition(b, e, 0.5, 0.5);
  ASSERT_TRUE(g.validate().empty());
  ASSERT_FALSE(g.acyclic());

  SolveOptions opts;
  opts.worm_flits = 8.0;
  opts.injection_scale = 0.004;
  const SolveResult res = solve_general_model(g, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.stable);
  EXPECT_GT(res.iterations, 1);
  // Symmetry: both ring channels identical.
  EXPECT_NEAR(res.service_time(a), res.service_time(b), 1e-9);
  EXPECT_GT(res.service_time(a), 8.0);
}

TEST(GeneralModel, HypercubeCollapsedBasics) {
  const GeneralModel net = build_hypercube_collapsed(6);
  SolveOptions opts;
  opts.worm_flits = 16.0;
  const LatencyEstimate zero = model_latency(net, 0.0, opts);
  EXPECT_NEAR(zero.latency, 16.0 + net.mean_distance - 1.0, 1e-9);
  const LatencyEstimate loaded = model_latency(net, 0.004, opts);
  EXPECT_TRUE(loaded.stable);
  EXPECT_GT(loaded.latency, zero.latency);
}

TEST(GeneralModel, HypercubeDimensionZeroCarriesLongestService) {
  // E-cube resolves dimension 0 first, so dim-0 channels sit earliest on
  // paths and accumulate the most downstream waiting.
  const GeneralModel net = build_hypercube_collapsed(8);
  SolveOptions opts;
  opts.worm_flits = 16.0;
  const SolveResult res = model_solve(net, 0.003, opts);
  ASSERT_TRUE(res.stable);
  double prev = std::numeric_limits<double>::infinity();
  for (int d = 0; d < 8; ++d) {
    const double x = res.service_time(net.class_id("dim" + std::to_string(d)));
    EXPECT_LE(x, prev + 1e-12) << "d=" << d;
    prev = x;
  }
}

TEST(EstimateLatency, AveragesInjectionClasses) {
  // Two injection classes with different service times: the estimate must
  // average them uniformly (Eq. 2).
  ChannelGraph g;
  ChannelClass ej;
  ej.rate_per_link = 1.0;
  ej.terminal = true;
  const int e1 = g.add_channel(ej);
  const int e2 = g.add_channel(ej);
  ChannelClass inj;
  inj.rate_per_link = 0.5;
  const int i1 = g.add_channel(inj);
  ChannelClass inj2;
  inj2.rate_per_link = 1.5;
  const int i2 = g.add_channel(inj2);
  g.add_transition(i1, e1, 1.0, 1.0);
  g.add_transition(i2, e2, 1.0, 1.0);
  SolveOptions opts;
  opts.worm_flits = 10.0;
  opts.injection_scale = 0.02;
  const SolveResult res = solve_general_model(g, opts);
  const LatencyEstimate est = estimate_latency(res, {i1, i2}, 2.0);
  EXPECT_NEAR(est.inj_wait, 0.5 * (res.wait(i1) + res.wait(i2)), 1e-12);
  EXPECT_NEAR(est.latency, est.inj_wait + est.inj_service + 1.0, 1e-12);
}

TEST(GeneralModel, InjectionScaleZeroGivesZeroWaits) {
  const GeneralModel net = build_fattree_collapsed(3);
  SolveOptions opts;
  opts.worm_flits = 16.0;
  const SolveResult res = model_solve(net, 0.0, opts);
  for (const ChannelSolution& c : res.channels) {
    EXPECT_DOUBLE_EQ(c.wait, 0.0);
    EXPECT_DOUBLE_EQ(c.utilization, 0.0);
  }
}

}  // namespace
}  // namespace wormnet::core

// Virtual-channel (multi-lane) extension tests.  Three guarantees:
//
//  * lanes == 1 is provably unchanged — the solver reproduces the paper's
//    single-lane recurrence bit-for-bit for every topology x pattern, and
//    seeded simulator runs are bit-identical to golden traces captured from
//    the pre-virtual-channel simulator;
//  * the lane-aware kernel behaves physically — blocking discounts L-fold,
//    the multiplexing excess grows with link utilization and diverges at
//    the wire's one flit/cycle, closed form and collapsed-graph solver
//    agree at machine precision for every L;
//  * lanes buy real headroom where blocking dominates — hotspot saturation
//    strictly improves from one lane to two in BOTH the model and the
//    flit-level simulator, with the interior optimum (gain flattening past
//    L ~ 2-4) documented in EXPERIMENTS.md rather than asserted away.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "core/traffic_model.hpp"
#include "queueing/channel_solver.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet {
namespace {

using core::GeneralModel;
using core::SolveOptions;
using queueing::AblationOptions;
using queueing::ChannelSolver;

// ---------------------------------------------------------------------------
// Kernel units: the three lane-aware ingredients of ChannelSolver.

TEST(VirtualChannelKernel, BlockingFactorDiscountsLFold) {
  const ChannelSolver solver(16.0);
  const double base = solver.blocking_factor(1, 0.01, 0.02, 0.5);
  ASSERT_GT(base, 0.0);
  for (int lanes : {1, 2, 3, 4, 8}) {
    EXPECT_DOUBLE_EQ(solver.blocking_factor(1, lanes, 0.01, 0.02, 0.5),
                     base / lanes)
        << "lanes=" << lanes;
  }
  // Monotone non-increasing in L: each extra lane is an extra escape from
  // the head-of-line wait.
  double prev = base;
  for (int lanes = 2; lanes <= 16; ++lanes) {
    const double p = solver.blocking_factor(2, lanes, 0.01, 0.02, 0.5);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(VirtualChannelKernel, SwitchOffRestoresSingleLaneForms) {
  AblationOptions abl;
  abl.virtual_channels = false;
  const ChannelSolver off(16.0, abl);
  const ChannelSolver on(16.0);
  // With the switch off, lane counts are ignored entirely.
  EXPECT_DOUBLE_EQ(off.blocking_factor(1, 4, 0.01, 0.02, 0.5),
                   off.blocking_factor(1, 0.01, 0.02, 0.5));
  EXPECT_DOUBLE_EQ(off.bundle_wait(2, 4, 0.01, 20.0), off.bundle_wait(2, 0.01, 20.0));
  EXPECT_DOUBLE_EQ(off.lane_excess(4, 0.02), 0.0);
  // With the switch on but L == 1, the lane-aware forms coincide with the
  // paper's exactly.
  EXPECT_DOUBLE_EQ(on.blocking_factor(2, 1, 0.01, 0.02, 0.5),
                   on.blocking_factor(2, 0.01, 0.02, 0.5));
  EXPECT_DOUBLE_EQ(on.bundle_wait(2, 1, 0.01, 20.0), on.bundle_wait(2, 0.01, 20.0));
  EXPECT_DOUBLE_EQ(on.lane_excess(1, 0.02), 0.0);
}

TEST(VirtualChannelKernel, LaneExcessTracksTheWire) {
  const ChannelSolver solver(16.0);
  // No load, no sharing.
  EXPECT_DOUBLE_EQ(solver.lane_excess(2, 0.0), 0.0);
  // Increasing in link utilization and in lane count (more lanes share the
  // same flit/cycle).
  double prev = 0.0;
  for (double lambda : {0.01, 0.02, 0.03, 0.05}) {
    const double e = solver.lane_excess(2, lambda);
    EXPECT_GT(e, prev);
    prev = e;
  }
  EXPECT_GT(solver.lane_excess(4, 0.03), solver.lane_excess(2, 0.03));
  // V is bounded by the physical L-way interleave: excess < (L-1)·s_f.
  EXPECT_LT(solver.lane_excess(4, 0.0624), 3.0 * 16.0);
  // Past one flit/cycle the link is infeasible regardless of lanes.
  EXPECT_TRUE(std::isinf(solver.lane_excess(2, 1.0 / 16.0)));
}

TEST(VirtualChannelKernel, LaneWaitDivergesAtLaneOccupancy) {
  const ChannelSolver solver(16.0);
  // λ·x̄ = 1.2 > 1: a single-lane channel is saturated...
  EXPECT_TRUE(std::isinf(solver.bundle_wait(1, 1, 0.06, 20.0)));
  // ...but two lane latches hold it comfortably (occupancy 0.6 < 2)...
  EXPECT_TRUE(std::isfinite(solver.bundle_wait(1, 2, 0.06, 20.0)));
  // ...until occupancy reaches the lane pool.
  EXPECT_TRUE(std::isinf(solver.bundle_wait(1, 2, 0.11, 20.0)));
}

// ---------------------------------------------------------------------------
// lanes == 1 parity: the virtual_channels switch must be invisible for every
// topology x pattern — same solve, machine-identical latencies.

std::vector<traffic::TrafficSpec> patterns_for(int n) {
  std::vector<traffic::TrafficSpec> all{
      traffic::TrafficSpec::uniform(),
      traffic::TrafficSpec::hotspot(0.2),
      traffic::TrafficSpec::bit_complement(),
      traffic::TrafficSpec::transpose(),
      traffic::TrafficSpec::nearest_neighbor(0.5),
  };
  std::vector<int> shift(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) shift[static_cast<std::size_t>(s)] = (s + 1) % n;
  all.push_back(traffic::TrafficSpec::permutation(shift));
  std::vector<traffic::TrafficSpec> usable;
  for (traffic::TrafficSpec& spec : all) {
    if (spec.check(n).empty()) usable.push_back(spec);
  }
  return usable;
}

TEST(VirtualChannelParity, SingleLaneSolvesBitForBitForEveryTopologyPattern) {
  const topo::ButterflyFatTree ft(2);
  const topo::Hypercube hc(3);
  const topo::Mesh mesh(3, 3);
  for (const topo::Topology* topo :
       std::initializer_list<const topo::Topology*>{&ft, &hc, &mesh}) {
    ASSERT_EQ(topo->uniform_lanes(), 1);
    for (const traffic::TrafficSpec& spec : patterns_for(topo->num_processors())) {
      SolveOptions on;
      on.worm_flits = 16.0;
      on.virtual_channels = true;
      SolveOptions off = on;
      off.virtual_channels = false;
      const GeneralModel m_on = core::build_traffic_model(*topo, spec, on);
      const GeneralModel m_off = core::build_traffic_model(*topo, spec, off);
      for (double lambda0 : {0.0005, 0.004, 0.01}) {
        const core::LatencyEstimate a = m_on.evaluate(lambda0);
        const core::LatencyEstimate b = m_off.evaluate(lambda0);
        // Bitwise equality, not a tolerance: at L = 1 the lane-aware code
        // path must be the paper's code path.
        EXPECT_EQ(a.latency, b.latency)
            << topo->name() << " " << spec.name() << " lambda0=" << lambda0;
        EXPECT_EQ(a.inj_wait, b.inj_wait);
        EXPECT_EQ(a.inj_service, b.inj_service);
      }
    }
  }
}

TEST(VirtualChannelParity, ClosedFormSingleLaneUnchangedByTheSwitch) {
  core::FatTreeModelOptions on{.levels = 3, .worm_flits = 16.0};
  on.virtual_channels = true;
  core::FatTreeModelOptions off = on;
  off.virtual_channels = false;
  const core::FatTreeModel a(on), b(off);
  for (double lambda0 : {0.001, 0.005, 0.009}) {
    EXPECT_EQ(a.evaluate(lambda0).latency, b.evaluate(lambda0).latency);
  }
  EXPECT_EQ(a.saturation_rate(), b.saturation_rate());
}

TEST(VirtualChannelParity, ClosedFormMatchesCollapsedGraphForEveryLaneCount) {
  // The closed-form recurrence and the general solver on the collapsed
  // 2n-class graph are two encodings of the same lane-aware equations.
  for (int lanes : {1, 2, 4}) {
    core::FatTreeModelOptions opts{.levels = 3, .worm_flits = 16.0};
    opts.lanes = lanes;
    const core::FatTreeModel closed(opts);
    const GeneralModel graph =
        core::build_fattree_collapsed(3, 2, /*exact_conditionals=*/false, lanes);
    SolveOptions sopts;
    sopts.worm_flits = 16.0;
    for (double lambda0 : {0.001, 0.004, 0.008}) {
      const double a = closed.evaluate(lambda0).latency;
      const double b = core::model_latency(graph, lambda0, sopts).latency;
      ASSERT_TRUE(std::isfinite(a) && std::isfinite(b)) << "lanes=" << lanes;
      EXPECT_NEAR(a, b, 1e-9 * b) << "lanes=" << lanes << " lambda0=" << lambda0;
    }
  }
}

// ---------------------------------------------------------------------------
// Lane physics in the model: hotspot saturation strictly improves with the
// second lane on every topology; where blocking dominates (fat-tree, mesh
// under hotspot) the gain is monotone through L = 4.  (Saturation is NOT
// globally monotone in L — the shared flit/cycle eventually claws the gain
// back, in the simulator as in the model; EXPERIMENTS.md records that
// interior optimum.)

double traffic_model_saturation(topo::Topology& topo,
                                const traffic::TrafficSpec& spec, int lanes) {
  topo.set_uniform_lanes(lanes);
  SolveOptions opts;
  opts.worm_flits = 16.0;
  const GeneralModel net = core::build_traffic_model(topo, spec, opts);
  return core::model_saturation_rate(net, opts);
}

TEST(VirtualChannelModel, HotspotSaturationStrictlyImprovesWithSecondLane) {
  topo::ButterflyFatTree ft(3);
  topo::Mesh mesh(3, 3);
  topo::Hypercube hc(4);
  const traffic::TrafficSpec hot = traffic::TrafficSpec::hotspot(0.1);
  for (topo::Topology* topo :
       std::initializer_list<topo::Topology*>{&ft, &mesh, &hc}) {
    const double sat1 = traffic_model_saturation(*topo, hot, 1);
    const double sat2 = traffic_model_saturation(*topo, hot, 2);
    EXPECT_GT(sat2, sat1) << topo->name();
    topo->set_uniform_lanes(1);
  }
}

TEST(VirtualChannelModel, BlockingDominatedSaturationMonotoneThroughFourLanes) {
  topo::ButterflyFatTree ft(3);
  topo::Mesh mesh(3, 3);
  const traffic::TrafficSpec hot = traffic::TrafficSpec::hotspot(0.1);
  for (topo::Topology* topo : std::initializer_list<topo::Topology*>{&ft, &mesh}) {
    double prev = 0.0;
    for (int lanes : {1, 2, 4}) {
      const double sat = traffic_model_saturation(*topo, hot, lanes);
      EXPECT_GE(sat, prev) << topo->name() << " lanes=" << lanes;
      prev = sat;
    }
    topo->set_uniform_lanes(1);
  }
}

TEST(VirtualChannelModel, ClosedFormHotspotFreeLatencyDropsWithLanes) {
  // At a fixed load below L1 saturation, the second lane's blocking relief
  // outweighs its multiplexing cost in the closed form too.
  core::FatTreeModelOptions o1{.levels = 3, .worm_flits = 16.0};
  core::FatTreeModelOptions o2 = o1;
  o2.lanes = 2;
  const core::FatTreeModel m1(o1), m2(o2);
  const double load = m1.saturation_load() * 0.9;
  const double l1 = m1.evaluate_load(load).latency;
  const double l2 = m2.evaluate_load(load).latency;
  ASSERT_TRUE(std::isfinite(l1));
  ASSERT_TRUE(std::isfinite(l2));
  EXPECT_LT(l2, l1);
}

// ---------------------------------------------------------------------------
// Simulator: lanes == 1 seeded runs must be BIT-IDENTICAL to golden traces
// captured from the pre-virtual-channel simulator (exact comparisons, no
// tolerances — hex-float means captured verbatim).

struct GoldenRun {
  const char* tag;
  long cycles_run;
  long long delivered_messages, delivered_flits, generated_messages, tagged;
  double latency_mean, queue_wait_mean, inj_service_mean, distance_mean;
};

const GoldenRun kGolden[] = {
    {"fattree2-uniform", 12045L, 2012LL, 32192LL, 2013LL, 2013LL,
     0x1.cfd1334038f94p+4, 0x1.38e0d7afa05e1p+2, 0x1.57dc64366e21fp+4,
     0x1.cde4c8ef16003p+1},
    {"fattree2-hotspot", 12021L, 1006LL, 16096LL, 1008LL, 1008LL, 0x1.65p+4,
     0x1.89e79e79e79e4p+0, 0x1.22d34d34d34cep+4, 0x1.cc71c71c71c75p+1},
    {"hypercube3-uniform", 12007L, 1255LL, 20080LL, 1253LL, 1253LL,
     0x1.aedd1023f5602p+4, 0x1.450e81884648p+2, 0x1.31f4266903e1cp+4,
     0x1.dd2a4ac6ff637p+1},
    {"hypercube3-bitcomp", 12008L, 1460LL, 11680LL, 1461LL, 1461LL,
     0x1.9e34375ecb9b8p+3, 0x1.e34375ecb9bbfp-1, 0x1p+3, 0x1.4p+2},
    {"mesh4x2-uniform", 11999L, 1037LL, 16592LL, 1036LL, 1036LL,
     0x1.6e7c8a60dd67ap+4, 0x1.a9c2b7d8769cp+0, 0x1.198769c2b7d89p+4,
     0x1.2963d48278965p+2},
    {"mesh4x2-nn", 12016L, 3024LL, 24192LL, 3025LL, 3025LL,
     0x1.be235fe235fd6p+3, 0x1.48dd6319791a3p+0, 0x1.2bfefc05c1362p+3,
     0x1.12116ef28b4cdp+2},
};

sim::SimResult golden_config_run(const topo::Topology& topo, double load,
                                 int worm, std::uint64_t seed,
                                 const traffic::TrafficSpec& spec) {
  sim::SimConfig cfg;
  cfg.load_flits = load;
  cfg.worm_flits = worm;
  cfg.seed = seed;
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 10000;
  cfg.max_cycles = 200000;
  cfg.traffic = spec;
  return sim::simulate(topo, cfg);
}

void expect_golden(const GoldenRun& g, const sim::SimResult& r) {
  EXPECT_EQ(r.cycles_run, g.cycles_run) << g.tag;
  EXPECT_EQ(r.delivered_messages, g.delivered_messages) << g.tag;
  EXPECT_EQ(r.delivered_flits, g.delivered_flits) << g.tag;
  EXPECT_EQ(r.generated_messages, g.generated_messages) << g.tag;
  EXPECT_EQ(r.latency.count(), g.tagged) << g.tag;
  EXPECT_EQ(r.latency.mean(), g.latency_mean) << g.tag;
  EXPECT_EQ(r.queue_wait.mean(), g.queue_wait_mean) << g.tag;
  EXPECT_EQ(r.inj_service.mean(), g.inj_service_mean) << g.tag;
  EXPECT_EQ(r.distance.mean(), g.distance_mean) << g.tag;
}

TEST(VirtualChannelSim, SingleLaneSeededRunsBitIdenticalToGoldenTraces) {
  const topo::ButterflyFatTree ft(2);
  const topo::Hypercube hc(3);
  const topo::Mesh mesh(4, 2);
  expect_golden(kGolden[0], golden_config_run(ft, 0.20, 16, 42,
                                              traffic::TrafficSpec::uniform()));
  expect_golden(kGolden[1], golden_config_run(ft, 0.10, 16, 43,
                                              traffic::TrafficSpec::hotspot(0.2)));
  expect_golden(kGolden[2], golden_config_run(hc, 0.25, 16, 44,
                                              traffic::TrafficSpec::uniform()));
  expect_golden(kGolden[3], golden_config_run(hc, 0.15, 8, 45,
                                              traffic::TrafficSpec::bit_complement()));
  expect_golden(kGolden[4], golden_config_run(mesh, 0.10, 16, 46,
                                              traffic::TrafficSpec::uniform()));
  expect_golden(kGolden[5], golden_config_run(mesh, 0.15, 8, 47,
                                              traffic::TrafficSpec::nearest_neighbor(0.5)));
}

// ---------------------------------------------------------------------------
// Simulator lane semantics.

TEST(VirtualChannelSim, LaneTablesIndexTheLatches) {
  topo::ButterflyFatTree ft(2);
  ft.set_uniform_lanes(3);
  const sim::SimNetwork net(ft);
  EXPECT_EQ(net.max_lanes(), 3);
  EXPECT_EQ(net.num_lanes(), 3 * net.num_channels());
  for (int ch = 0; ch < net.num_channels(); ++ch) {
    EXPECT_EQ(net.channel_lanes(ch), 3);
    for (int lane = net.lane_begin(ch); lane < net.lane_begin(ch + 1); ++lane) {
      EXPECT_EQ(net.lane_channel(lane), ch);
    }
  }
}

TEST(VirtualChannelSim, UncontendedWormUnaffectedByLanes) {
  // One scripted worm: lanes change nothing without contention — latency is
  // exactly D + s_f - 1.
  for (int lanes : {1, 2, 4}) {
    topo::ButterflyFatTree ft(2);
    ft.set_uniform_lanes(lanes);
    const sim::SimNetwork net(ft);
    sim::SimConfig cfg;
    cfg.worm_flits = 16;
    sim::Simulator s(net, cfg);
    s.add_message(0, 0, 15);
    const sim::SimResult r = s.run();
    ASSERT_TRUE(r.completed);
    const double d = ft.distance(0, 15);
    EXPECT_DOUBLE_EQ(r.latency.mean(), d + 16.0 - 1.0) << "lanes=" << lanes;
  }
}

TEST(VirtualChannelSim, SecondLanePassesABlockedWorm) {
  // Two worms to the SAME destination share the ejection link.  With one
  // lane the second worm waits for the first's full drain before it can
  // even hold the ejection latch; with two lanes it occupies the spare lane
  // immediately and interleaves its drain, finishing strictly earlier.
  auto run = [](int lanes) {
    topo::ButterflyFatTree ft(2);
    ft.set_uniform_lanes(lanes);
    const sim::SimNetwork net(ft);
    sim::SimConfig cfg;
    cfg.worm_flits = 16;
    sim::Simulator s(net, cfg);
    s.add_message(0, 1, 3);   // seizes the ejection channel of PE 3
    s.add_message(0, 2, 3);   // queues behind it (lane 2 of the ejection link)
    const sim::SimResult r = s.run();
    EXPECT_TRUE(r.completed);
    return r.cycles_run;
  };
  const long one = run(1);
  const long two = run(2);
  EXPECT_LT(two, one);
}

TEST(VirtualChannelSim, HotspotOverloadThroughputStrictlyImprovesWithSecondLane) {
  // The acceptance gate: lanes > 1 must buy real saturation headroom under
  // hotspot in the SIMULATOR too (the model side is tested above).
  struct Case {
    const char* name;
    std::unique_ptr<topo::Topology> topo;
  };
  std::vector<Case> cases;
  cases.push_back({"fattree2", std::make_unique<topo::ButterflyFatTree>(2)});
  cases.push_back({"mesh-3ary-3d", std::make_unique<topo::Mesh>(3, 3)});
  cases.push_back({"hypercube4", std::make_unique<topo::Hypercube>(4)});
  for (Case& c : cases) {
    double ovl[2] = {0.0, 0.0};
    for (int i = 0; i < 2; ++i) {
      const int lanes = i == 0 ? 1 : 2;
      // set_uniform_lanes is non-virtual base state; safe through the
      // concrete pointer.
      c.topo->set_uniform_lanes(lanes);
      sim::SimConfig cfg;
      cfg.arrivals = sim::ArrivalProcess::Overload;
      cfg.worm_flits = 16;
      cfg.seed = 21;
      cfg.traffic = traffic::TrafficSpec::hotspot(0.1);
      cfg.warmup_cycles = 5000;
      cfg.measure_cycles = 25000;
      cfg.channel_stats = false;
      ovl[i] = sim::simulate(*c.topo, cfg).throughput_flits_per_pe;
    }
    EXPECT_GT(ovl[1], ovl[0]) << c.name;
  }
}

TEST(VirtualChannelSim, LaneRunsConserveFlits) {
  // Seeded open-loop run at L = 2: every generated-and-tagged message is
  // delivered, flit accounting closes, and latency never beats zero-load.
  topo::Hypercube hc(3);
  hc.set_uniform_lanes(2);
  sim::SimConfig cfg;
  cfg.load_flits = 0.3;
  cfg.worm_flits = 16;
  cfg.seed = 99;
  cfg.warmup_cycles = 3000;
  cfg.measure_cycles = 15000;
  const sim::SimResult r = sim::simulate(hc, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.delivered_flits, 16 * r.delivered_messages);
  EXPECT_GE(r.latency.min(), 16.0 + 2.0 - 1.0);  // D >= 2 channels
  EXPECT_GT(r.latency.count(), 0);
}

}  // namespace
}  // namespace wormnet

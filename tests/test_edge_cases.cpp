// Contract-violation (death) tests and boundary-condition coverage across
// modules: wormnet enforces its preconditions in all build types, because a
// silently-invalid queueing parameter produces plausible garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/channel_graph.hpp"
#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "core/network_model.hpp"
#include "core/traffic_model.hpp"
#include "queueing/queueing.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/fault.hpp"
#include "topo/generalized_fattree.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

namespace wormnet {
namespace {

using ::testing::KilledBySignal;

TEST(ContractDeath, QueueingRejectsNegativeRates) {
  EXPECT_DEATH(queueing::mg1_wait(-0.1, 10.0, 0.5), "precondition");
  EXPECT_DEATH(queueing::mgm_wait(0, 0.1, 10.0, 0.5), "precondition");
  EXPECT_DEATH(queueing::wormhole_cb2(10.0, 0.0), "precondition");
  EXPECT_DEATH(queueing::blocking_probability(1, 0.1, 0.1, 1.5), "precondition");
}

TEST(ContractDeath, FatTreeModelRejectsBadOptions) {
  EXPECT_DEATH(core::FatTreeModel({.levels = 0, .worm_flits = 16.0}), "precondition");
  EXPECT_DEATH(core::FatTreeModel({.levels = 9, .worm_flits = 16.0}), "precondition");
  EXPECT_DEATH(core::FatTreeModel({.levels = 3, .worm_flits = 0.0}), "precondition");
  EXPECT_DEATH(core::FatTreeModel({.levels = 3, .worm_flits = 16.0, .parents = 5}),
               "precondition");
}

TEST(ContractDeath, TopologyRejectsOutOfRange) {
  topo::ButterflyFatTree ft(2);
  EXPECT_DEATH(ft.neighbor(-1, 0), "precondition");
  EXPECT_DEATH(ft.neighbor(0, 1), "precondition");  // processors have one port
  EXPECT_DEATH(ft.route(0, 99), "precondition");
  EXPECT_DEATH(ft.switch_id(3, 0), "precondition");  // only two levels
  EXPECT_DEATH(topo::ButterflyFatTree(0), "precondition");
  EXPECT_DEATH(topo::GeneralizedFatTree(2, 0), "precondition");
  EXPECT_DEATH(topo::GeneralizedFatTree(2, 5), "precondition");
}

TEST(ContractDeath, ChannelGraphRejectsBadTransitions) {
  core::ChannelGraph g;
  core::ChannelClass c;
  const int id = g.add_channel(c);
  EXPECT_DEATH(g.add_transition(id, 7, 1.0), "precondition");
  EXPECT_DEATH(g.add_transition(id, id, 1.5), "precondition");
  EXPECT_DEATH(g.at(3), "precondition");
}

TEST(ContractDeath, NetworkModelUnknownLabel) {
  const core::GeneralModel net = core::build_fattree_collapsed(2);
  EXPECT_DEATH(net.class_id("nonexistent"), "precondition");
}

TEST(ContractDeath, SimulatorRejectsBadMessages) {
  topo::ButterflyFatTree ft(1);
  sim::SimNetwork net(ft);
  sim::SimConfig cfg;
  sim::Simulator s(net, cfg);
  EXPECT_DEATH(s.add_message(0, 0, 0), "precondition");   // src == dst
  EXPECT_DEATH(s.add_message(0, 0, 99), "precondition");  // dst out of range
  EXPECT_DEATH(s.add_message(-1, 0, 1), "precondition");  // negative cycle
}

TEST(ContractDeath, HistogramRejectsEmptyRange) {
  EXPECT_DEATH(util::Histogram(1.0, 1.0, 4), "precondition");
  EXPECT_DEATH(util::Histogram(0.0, 1.0, 0), "precondition");
}

TEST(ContractDeath, TableRejectsRaggedRows) {
  util::Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({1.0}), "precondition");
}

TEST(EdgeCases, SolveAtExactlyZeroWorm) {
  EXPECT_DEATH(
      [] {
        core::SolveOptions opts;
        opts.worm_flits = 0.0;
        const core::GeneralModel net = core::build_fattree_collapsed(2);
        core::solve_general_model(net.graph, opts);
      }(),
      "precondition");
}

TEST(EdgeCases, SmallestSimulationsComplete) {
  // The 4-processor fat-tree with 1-flit worms at modest load.
  topo::ButterflyFatTree ft(1);
  sim::SimConfig cfg;
  cfg.load_flits = 0.05;
  cfg.worm_flits = 1;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 2'000;
  cfg.max_cycles = 50'000;
  const sim::SimResult r = sim::simulate(ft, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.latency.min(), 2.0);  // D_min = 2, s_f = 1
}

TEST(EdgeCases, ZeroWarmupOpenLoopRunRejected) {
  // An open-loop measurement run with zero warmup tags messages into empty
  // queues from cycle 0 and biases every latency statistic; the simulator
  // now fails fast instead of silently misbehaving (scripted runs — which
  // legitimately use warmup 0 — are exempt and covered by test_sim_basic).
  topo::ButterflyFatTree ft(1);
  sim::SimConfig cfg;
  cfg.load_flits = 0.02;
  cfg.worm_flits = 8;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 5'000;
  EXPECT_THROW(sim::simulate(ft, cfg), std::invalid_argument);
}

TEST(EdgeCases, MinimalWarmupSimulation) {
  topo::ButterflyFatTree ft(1);
  sim::SimConfig cfg;
  cfg.load_flits = 0.02;
  cfg.worm_flits = 8;
  cfg.warmup_cycles = 1;
  cfg.measure_cycles = 5'000;
  const sim::SimResult r = sim::simulate(ft, cfg);
  EXPECT_TRUE(r.completed);
}

TEST(EdgeCases, ZeroLoadSimulationDeliversNothing) {
  topo::ButterflyFatTree ft(1);
  sim::SimConfig cfg;
  cfg.load_flits = 0.0;
  cfg.worm_flits = 8;
  cfg.warmup_cycles = 10;
  cfg.measure_cycles = 100;
  const sim::SimResult r = sim::simulate(ft, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.latency.count(), 0);
  EXPECT_EQ(r.delivered_messages, 0);
}

TEST(EdgeCases, ModelAtExactlySaturationIsUnstableOrHuge) {
  core::FatTreeModel m({.levels = 3, .worm_flits = 16.0});
  const core::FatTreeEvaluation ev = m.evaluate_detail(m.saturation_rate() * 1.0001);
  EXPECT_FALSE(ev.stable);
}

TEST(EdgeCases, MaxSupportedFatTree) {
  // levels = 8 => 65,536 processors; the model must stay fast and finite.
  core::FatTreeModel m({.levels = 8, .worm_flits = 16.0});
  const core::FatTreeEvaluation ev = m.evaluate_load_detail(0.001);
  EXPECT_TRUE(ev.stable);
  EXPECT_GT(m.saturation_load(), 0.0);
  EXPECT_NEAR(ev.mean_distance, m.mean_distance(), 1e-12);
}

// Heterogeneous-link attributes fail fast at configuration time with
// std::invalid_argument — never NaN or garbage mid-solve / mid-simulation.
TEST(HeteroValidation, TopologySettersRejectBadAttributes) {
  topo::ButterflyFatTree ft(2);
  EXPECT_THROW(ft.set_uniform_bandwidth(0.0), std::invalid_argument);
  EXPECT_THROW(ft.set_uniform_bandwidth(-1.0), std::invalid_argument);
  EXPECT_THROW(ft.set_uniform_link_latency(-0.5), std::invalid_argument);
  EXPECT_THROW(ft.set_uniform_buffer_depth(0), std::invalid_argument);
  EXPECT_THROW(ft.set_tier_bandwidth(-1, 0.5), std::invalid_argument);
  EXPECT_THROW(ft.set_tier_bandwidth(2, 0.5), std::invalid_argument);  // levels=2
  EXPECT_THROW(ft.set_tier_bandwidth(1, 0.0), std::invalid_argument);
  // Valid settings still go through after the failed attempts.
  EXPECT_NO_THROW(ft.set_tier_bandwidth(1, 0.5));
  EXPECT_DOUBLE_EQ(ft.bandwidth(ft.num_processors(), 4), 0.5);
}

TEST(HeteroValidation, ModelSettersRejectBadAttributes) {
  topo::ButterflyFatTree ft(2);
  core::GeneralModel net =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform());
  EXPECT_THROW(net.set_uniform_buffers(0), std::invalid_argument);
  EXPECT_THROW(net.set_uniform_bandwidth(0.0), std::invalid_argument);
  EXPECT_THROW(net.set_uniform_bandwidth(-2.0), std::invalid_argument);
  std::vector<double> bw(static_cast<std::size_t>(net.graph.size()), 1.0);
  bw.pop_back();
  EXPECT_THROW(net.set_channel_bandwidths(bw), std::invalid_argument);  // size
  bw.push_back(0.0);
  EXPECT_THROW(net.set_channel_bandwidths(bw), std::invalid_argument);  // entry
  bw.back() = 0.5;
  EXPECT_NO_THROW(net.set_channel_bandwidths(bw));

  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::uniform());
  EXPECT_THROW(rm.scale_bandwidths(0.0), std::invalid_argument);
  EXPECT_THROW(rm.set_uniform_buffers(0), std::invalid_argument);
}

TEST(HeteroValidation, SimNetworkRejectsUnrealizableAttributes) {
  // The flit simulator realizes bandwidth as an integer claim period 1/bw,
  // so it rejects what it cannot step cycle-accurately.
  {
    topo::ButterflyFatTree ft(2);
    ft.set_uniform_bandwidth(0.3);  // 1/0.3 is not a whole cycle count
    EXPECT_THROW(sim::SimNetwork net(ft), std::invalid_argument);
  }
  {
    topo::ButterflyFatTree ft(2);
    ft.set_uniform_bandwidth(2.0);  // super-unit bandwidth has no sim lane
    EXPECT_THROW(sim::SimNetwork net(ft), std::invalid_argument);
  }
  {
    topo::ButterflyFatTree ft(2);
    ft.set_uniform_link_latency(1.5);  // fractional pipeline cycles
    EXPECT_THROW(sim::SimNetwork net(ft), std::invalid_argument);
  }
  {
    topo::ButterflyFatTree ft(2);
    ft.set_uniform_bandwidth(0.25);
    ft.set_uniform_link_latency(3.0);
    ft.set_uniform_buffer_depth(2);
    EXPECT_NO_THROW(sim::SimNetwork net(ft));  // realizable hetero config
  }
}

// -- fault-layer validation ---------------------------------------------------
// A FaultSet rejects malformed failures up front (std::invalid_argument, not a
// contract abort: fault descriptions arrive from operators, not from code),
// and scripted sim fault events are validated the same way before cycle 0.

TEST(FaultValidation, FaultSetRejectsBadLinks) {
  topo::ButterflyFatTree ft(2);
  topo::FaultSet fs(ft);
  const int s10 = ft.switch_id(1, 0);
  EXPECT_THROW(fs.fail_link(-1, 0), std::invalid_argument);
  EXPECT_THROW(fs.fail_link(ft.num_nodes(), 0), std::invalid_argument);
  EXPECT_THROW(fs.fail_link(s10, -1), std::invalid_argument);
  EXPECT_THROW(fs.fail_link(s10, ft.num_ports(s10)), std::invalid_argument);
  // Injection/ejection links cannot fail — from either endpoint.
  EXPECT_THROW(fs.fail_link(0, 0), std::invalid_argument);
  EXPECT_THROW(fs.fail_link(s10, 0), std::invalid_argument);
  // Double-fail is rejected even when named from the other endpoint.
  fs.fail_link(s10, topo::ButterflyFatTree::kParentPort0);
  EXPECT_THROW(fs.fail_link(s10, topo::ButterflyFatTree::kParentPort0),
               std::invalid_argument);
  const int top = ft.neighbor(s10, topo::ButterflyFatTree::kParentPort0);
  const int back = ft.neighbor_port(s10, topo::ButterflyFatTree::kParentPort0);
  EXPECT_THROW(fs.fail_link(top, back), std::invalid_argument);
  EXPECT_EQ(fs.failed_links().size(), 1u);
}

TEST(FaultValidation, FailSwitchValidatesBeforeFailing) {
  topo::ButterflyFatTree ft(2);
  topo::FaultSet fs(ft);
  // A processor is not a switch.
  EXPECT_THROW(fs.fail_switch(0), std::invalid_argument);
  // A level-1 switch has processor attachment links, which cannot fail; the
  // rejection must leave the set untouched (validate-all-then-apply).
  EXPECT_THROW(fs.fail_switch(ft.switch_id(1, 0)), std::invalid_argument);
  EXPECT_TRUE(fs.empty());
  // A top switch has only switch-switch links and expands cleanly.
  EXPECT_NO_THROW(fs.fail_switch(ft.switch_id(2, 0)));
  EXPECT_EQ(fs.failed_links().size(), 4u);
}

TEST(FaultValidation, SimRejectsBadFaultEvents) {
  topo::ButterflyFatTree ft(2);
  sim::SimNetwork net(ft);
  const int s10 = ft.switch_id(1, 0);
  const int up0 = topo::ButterflyFatTree::kParentPort0;
  const auto reject = [&](std::vector<sim::FaultEvent> events) {
    sim::SimConfig cfg;
    cfg.fault_events = std::move(events);
    EXPECT_THROW(sim::Simulator(net, cfg), std::invalid_argument);
  };
  reject({{100, -1, 0, false}});                     // node out of range
  reject({{100, s10, 99, false}});                   // port out of range
  reject({{100, s10, 0, false}});                    // ejection link
  reject({{100, 0, 0, false}});                      // injection link
  reject({{100, s10, up0, false}, {200, s10, up0, false}});  // down twice
  reject({{100, s10, up0, true}});                   // up while not down
  // Order-insensitive: the same double-down named from the peer endpoint.
  const int top = ft.neighbor(s10, up0);
  const int back = ft.neighbor_port(s10, up0);
  reject({{100, s10, up0, false}, {200, top, back, false}});
  // Down→up→down is a legal script.
  {
    sim::SimConfig cfg;
    cfg.fault_events = {{100, s10, up0, false},
                        {200, s10, up0, true},
                        {300, s10, up0, false}};
    EXPECT_NO_THROW(sim::Simulator(net, cfg));
  }
}

TEST(FaultValidation, SimRejectsEventsOnStaticallyFailedLinks) {
  topo::ButterflyFatTree ft(2);
  topo::FaultSet fs(ft);
  const int s10 = ft.switch_id(1, 0);
  const int up0 = topo::ButterflyFatTree::kParentPort0;
  fs.fail_link(s10, up0);
  topo::FaultedTopology view(ft, fs);
  sim::SimNetwork net(view);
  sim::SimConfig cfg;
  // Scripting the already-dead link is meaningless: the degraded routing
  // never recovers it, so an up event could only strand worms.
  cfg.fault_events = {{100, s10, up0, false}};
  EXPECT_THROW(sim::Simulator(net, cfg), std::invalid_argument);
  // Scripting a LIVE link of the degraded fabric is fine.
  cfg.fault_events = {{100, s10, topo::ButterflyFatTree::kParentPort1, false}};
  EXPECT_NO_THROW(sim::Simulator(net, cfg));
}

TEST(FaultValidation, StallTimeoutMustStayBelowWatchdog) {
  topo::ButterflyFatTree ft(2);
  sim::SimNetwork net(ft);
  sim::SimConfig cfg;
  cfg.fault_events = {{100, ft.switch_id(1, 0),
                       topo::ButterflyFatTree::kParentPort0, false}};
  cfg.fault_stall_timeout = cfg.watchdog_cycles;  // drops could never preempt
  EXPECT_THROW(sim::Simulator(net, cfg), std::invalid_argument);
  cfg.fault_stall_timeout = 0;  // no grace at all is equally meaningless
  EXPECT_THROW(sim::Simulator(net, cfg), std::invalid_argument);
  cfg.fault_stall_timeout = cfg.watchdog_cycles - 1;
  EXPECT_NO_THROW(sim::Simulator(net, cfg));
}

}  // namespace
}  // namespace wormnet

// Tests for the symmetry-collapsed traffic-model builder — the 100k–1M
// endpoint scaling path.  Four layers of checks:
//  * parity: across topology x pattern x lanes x arrival process, the
//    collapsed quotient reproduces the dense per-channel model to machine
//    precision (per-channel rate/self_frac/ca2 fold, latency, saturation);
//  * symmetry detection: orbit counts for the catalog topologies, including
//    the cases where pins or patterns must DISABLE the quotient;
//  * rejection: a user-declared partition that is no routing symmetry builds
//    (structure is consistent) but check_collapsed_parity names the first
//    class whose members disagree;
//  * scale smoke: a 262,144-processor fat-tree builds and solves through the
//    collapsed path in test time, agreeing with the §3 closed-form collapsed
//    builder.
#include "core/traffic_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "core/fattree_graph.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/channels.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"
#include "topo/symmetry.hpp"

namespace wormnet::core {
namespace {

void expect_rel(double actual, double expected, double rel,
                const std::string& tag) {
  EXPECT_NEAR(actual, expected,
              rel * std::max(std::abs(actual), std::abs(expected)) + 1e-15)
      << tag;
}

/// The full parity contract for one (topology, spec, lanes, process) cell:
/// the Auto path must actually take the quotient, every dense channel must
/// match its class to machine precision, and the solved observables must
/// agree with the dense model's.
void expect_collapsed_parity(topo::Topology& topo,
                             const traffic::TrafficSpec& spec, int lanes,
                             const arrivals::ArrivalSpec* process) {
  topo.set_uniform_lanes(lanes);
  GeneralModel collapsed = build_traffic_model_collapsed(topo, spec);
  GeneralModel dense = build_traffic_model(topo, spec);
  // Appends rather than an operator+ chain: GCC 12's -Wrestrict trips a
  // false positive on string temporaries concatenated in one expression.
  std::string tag = collapsed.model_name;
  tag += " lanes=";
  tag += std::to_string(lanes);
  if (process != nullptr) {
    tag += ' ';
    tag += process->name();
  }
  ASSERT_EQ(collapsed.model_name.rfind("traffic-sym(", 0), 0u)
      << tag << ": Auto did not take the symmetric quotient";
  ASSERT_LT(collapsed.graph.size(), dense.graph.size()) << tag;
  if (process != nullptr) {
    collapsed.set_injection_process(*process, 0.01);
    dense.set_injection_process(*process, 0.01);
  }

  // Quotient fold: every dense channel carries its class's values.
  ASSERT_EQ(static_cast<int>(collapsed.channel_class_of.size()),
            dense.graph.size())
      << tag;
  for (int ch = 0; ch < dense.graph.size(); ++ch) {
    const int c = collapsed.channel_class_of[static_cast<std::size_t>(ch)];
    ASSERT_GE(c, 0) << tag;
    ASSERT_LT(c, collapsed.graph.size()) << tag;
    const ChannelClass& q = collapsed.graph.at(c);
    const ChannelClass& d = dense.graph.at(ch);
    const std::string ctag = tag + " ch " + d.label;
    EXPECT_EQ(q.servers, d.servers) << ctag;
    EXPECT_EQ(q.lanes, d.lanes) << ctag;
    EXPECT_EQ(q.terminal, d.terminal) << ctag;
    expect_rel(q.rate_per_link, d.rate_per_link, 1e-12, ctag + " rate");
    expect_rel(q.self_frac, d.self_frac, 1e-12, ctag + " self_frac");
    expect_rel(q.ca2, d.ca2, 1e-12, ctag + " ca2");
  }
  expect_rel(collapsed.mean_distance, dense.mean_distance, 1e-12,
             tag + " mean_distance");

  // Solved observables: the quotient recurrence is the dense recurrence
  // folded, so latency and saturation agree far beyond the solver tolerance.
  const double sat_dense = model_saturation_rate(dense, dense.opts);
  const double sat_collapsed =
      model_saturation_rate(collapsed, collapsed.opts);
  expect_rel(sat_collapsed, sat_dense, 1e-9, tag + " saturation");
  for (double f : {0.2, 0.5, 0.8}) {
    const LatencyEstimate a = dense.evaluate(f * sat_dense);
    const LatencyEstimate b = collapsed.evaluate(f * sat_dense);
    ASSERT_TRUE(a.stable) << tag << " f=" << f;
    ASSERT_TRUE(b.stable) << tag << " f=" << f;
    expect_rel(b.latency, a.latency, 1e-9,
               tag + " latency at f=" + std::to_string(f));
    expect_rel(b.inj_wait, a.inj_wait, 1e-9,
               tag + " inj_wait at f=" + std::to_string(f));
  }

  // The built-in validator agrees too.
  EXPECT_EQ(check_collapsed_parity(topo, spec, collapsed), "") << tag;
  topo.set_uniform_lanes(1);
}

TEST(CollapsedParity, FatTreeUniformAndHotspot) {
  topo::ButterflyFatTree ft2(2);
  topo::ButterflyFatTree ft3(3);
  const arrivals::ArrivalSpec batch = arrivals::ArrivalSpec::batch(4.0);
  for (int lanes : {1, 2}) {
    expect_collapsed_parity(ft2, traffic::TrafficSpec::uniform(), lanes, nullptr);
    expect_collapsed_parity(ft2, traffic::TrafficSpec::uniform(), lanes, &batch);
    // A hotspot pins its target: the quotient refines by LCA distance to the
    // hotspot instead of collapsing away.
    expect_collapsed_parity(ft2, traffic::TrafficSpec::hotspot(0.2, 5), lanes,
                            nullptr);
    expect_collapsed_parity(ft2, traffic::TrafficSpec::hotspot(0.2, 5), lanes,
                            &batch);
  }
  expect_collapsed_parity(ft3, traffic::TrafficSpec::uniform(), 1, nullptr);
  expect_collapsed_parity(ft3, traffic::TrafficSpec::hotspot(0.3, 17), 1,
                          nullptr);
}

TEST(CollapsedParity, HypercubeUniform) {
  topo::Hypercube h3(3);
  topo::Hypercube h4(4);
  const arrivals::ArrivalSpec batch = arrivals::ArrivalSpec::batch(4.0);
  for (int lanes : {1, 2}) {
    expect_collapsed_parity(h3, traffic::TrafficSpec::uniform(), lanes, nullptr);
    expect_collapsed_parity(h4, traffic::TrafficSpec::uniform(), lanes, nullptr);
  }
  expect_collapsed_parity(h4, traffic::TrafficSpec::uniform(), 1, &batch);
}

TEST(CollapsedParity, MeshUniformAndCenterHotspot) {
  topo::Mesh mesh(3, 2);
  const arrivals::ArrivalSpec batch = arrivals::ArrivalSpec::batch(4.0);
  for (int lanes : {1, 2}) {
    expect_collapsed_parity(mesh, traffic::TrafficSpec::uniform(), lanes,
                            nullptr);
    // Node 4 is the 3x3 center, fixed by every axis reflection, so the
    // hotspot keeps the full reflection group.
    expect_collapsed_parity(mesh, traffic::TrafficSpec::hotspot(0.2, 4), lanes,
                            nullptr);
  }
  expect_collapsed_parity(mesh, traffic::TrafficSpec::uniform(), 1, &batch);
}

TEST(SymmetryDetection, FatTreeOrbitCounts) {
  const topo::ButterflyFatTree ft(3);  // 64 processors
  const topo::ChannelTable ct(ft);
  topo::SymmetryClasses sym;
  ASSERT_TRUE(topo::topology_symmetry(ft, ct, {}, sym));
  // Uniform: every processor is equivalent and the channels fold to the
  // paper's 2n classes — injection/up per climb level plus down per level.
  EXPECT_EQ(sym.num_proc_orbits, 1);
  EXPECT_EQ(sym.num_channel_classes, 2 * 3);
  EXPECT_FALSE(sym.trivial(ft.num_processors()));

  // Pinning a hotspot refines processors by LCA level to the pin:
  // {the pin itself} + one orbit per climb level = levels + 1.
  topo::SymmetryClasses pinned;
  ASSERT_TRUE(topo::topology_symmetry(ft, ct, {5}, pinned));
  EXPECT_EQ(pinned.num_proc_orbits, 3 + 1);
  EXPECT_GT(pinned.num_channel_classes, sym.num_channel_classes);
  EXPECT_FALSE(pinned.trivial(ft.num_processors()));
}

TEST(SymmetryDetection, HypercubeOrbitCounts) {
  const topo::Hypercube hc(4);
  const topo::ChannelTable ct(hc);
  topo::SymmetryClasses sym;
  ASSERT_TRUE(topo::topology_symmetry(hc, ct, {}, sym));
  EXPECT_EQ(sym.num_proc_orbits, 1);
  // dims + 2 classes (injection, ejection, one per dimension) — NOT 2·dims:
  // e-cube routing is only equivariant under XOR translations, which fold
  // the two directions of a dimension together but can NOT split a
  // dimension's channels by source bit.  A finer-than-orbit partition would
  // break the representative-destination algorithm (the dest-0 pass puts all
  // of dimension d's flow on the src-bit-1 channels), so the detector must
  // return exactly the group orbits.
  EXPECT_EQ(sym.num_channel_classes, 4 + 2);

  // A pinned processor kills every XOR translation: no usable symmetry.
  topo::SymmetryClasses pinned;
  EXPECT_FALSE(topo::topology_symmetry(hc, ct, {3}, pinned));
}

TEST(SymmetryDetection, MeshReflectionOrbits) {
  const topo::Mesh mesh(3, 2);
  const topo::ChannelTable ct(mesh);
  topo::SymmetryClasses sym;
  ASSERT_TRUE(topo::topology_symmetry(mesh, ct, {}, sym));
  // The 3x3 grid under per-axis reflections: corners, x-edge midpoints,
  // y-edge midpoints, center.
  EXPECT_EQ(sym.num_proc_orbits, 4);
  EXPECT_LT(sym.num_channel_classes, ct.size());

  // The center is fixed by every reflection; a corner by none.
  topo::SymmetryClasses center;
  ASSERT_TRUE(topo::topology_symmetry(mesh, ct, {4}, center));
  EXPECT_EQ(center.num_proc_orbits, 4);
  topo::SymmetryClasses corner;
  EXPECT_FALSE(topo::topology_symmetry(mesh, ct, {0}, corner));
}

TEST(CollapsedRejection, AsymmetricUserPartitionFailsParity) {
  // A hand-declared "group by port direction" partition on the 3x3 mesh is
  // structurally consistent (every member has the same bundle size, lanes
  // and endpoint kinds, so the build succeeds) but is NO routing symmetry
  // once a hotspot skews the load toward the center: channels of one port
  // class carry visibly different rates.  check_collapsed_parity must say
  // so rather than let the quotient silently average them.
  const topo::Mesh mesh(3, 2);
  const topo::ChannelTable ct(mesh);
  const traffic::TrafficSpec spec = traffic::TrafficSpec::hotspot(0.3, 4);

  topo::SymmetryClasses user;
  user.proc_orbit.resize(static_cast<std::size_t>(mesh.num_processors()));
  for (int p = 0; p < mesh.num_processors(); ++p)
    user.proc_orbit[static_cast<std::size_t>(p)] = p;
  user.num_proc_orbits = mesh.num_processors();
  user.channel_class.resize(static_cast<std::size_t>(ct.size()));
  int next = 0;
  std::vector<int> class_of_key(2 + 2 * 2 + 1, -1);  // inj, eject, 2·dims ports
  for (int ch = 0; ch < ct.size(); ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    int key = 0;
    if (!mesh.is_processor(dc.src_node)) {
      key = dc.src_port == 2 * 2 ? 1 : 2 + dc.src_port;
    }
    if (class_of_key[static_cast<std::size_t>(key)] < 0)
      class_of_key[static_cast<std::size_t>(key)] = next++;
    user.channel_class[static_cast<std::size_t>(ch)] =
        class_of_key[static_cast<std::size_t>(key)];
  }
  user.num_channel_classes = next;

  TrafficBuildOptions build;
  build.collapse = CollapseMode::Symmetric;
  build.user_classes = &user;
  const GeneralModel collapsed = build_traffic_model(mesh, spec, {}, build);
  EXPECT_EQ(collapsed.graph.size(), next);

  const std::string verdict = check_collapsed_parity(mesh, spec, collapsed);
  ASSERT_FALSE(verdict.empty());
  EXPECT_NE(verdict.find("not a routing symmetry"), std::string::npos)
      << verdict;

  // The genuine reflection quotient on the same cell passes the same check.
  const GeneralModel genuine = build_traffic_model_collapsed(mesh, spec);
  EXPECT_EQ(check_collapsed_parity(mesh, spec, genuine), "");
}

TEST(CollapseStrategy, AutoPicksTheRightPath) {
  const topo::ButterflyFatTree ft(2);
  const topo::Hypercube hc(4);
  const topo::Mesh mesh(3, 2);

  // Symmetric spec + symmetric topology: quotient.
  EXPECT_EQ(build_traffic_model_collapsed(ft, traffic::TrafficSpec::uniform())
                .model_name.rfind("traffic-sym(", 0),
            0u);

  // Patterns tied to processor numbering never claim the symmetry.
  const GeneralModel nn = build_traffic_model_collapsed(
      ft, traffic::TrafficSpec::nearest_neighbor(0.5));
  EXPECT_EQ(nn.model_name.rfind("traffic(", 0), 0u);
  EXPECT_TRUE(nn.channel_class_of.empty());

  // A hotspot pin breaks the hypercube's translation group: dense fallback.
  EXPECT_EQ(build_traffic_model_collapsed(hc, traffic::TrafficSpec::hotspot(0.2))
                .model_name.rfind("traffic(", 0),
            0u);
  // ... and a corner hotspot breaks every mesh reflection.
  EXPECT_EQ(
      build_traffic_model_collapsed(mesh, traffic::TrafficSpec::hotspot(0.2, 0))
          .model_name.rfind("traffic(", 0),
      0u);
}

TEST(CollapseStrategy, SparseSeedingIsBitwiseDense) {
  // Fixed-destination patterns take the sparse seeding path under Auto (no
  // symmetry claims them) and under explicit Sparse; both must be BITWISE
  // the dense model — seeding order is identical, only the O(N) zero-weight
  // source scan per destination is skipped.
  const topo::ButterflyFatTree ft(2);
  const topo::Mesh mesh(3, 2);
  std::vector<int> shift(static_cast<std::size_t>(mesh.num_processors()));
  for (int s = 0; s < mesh.num_processors(); ++s)
    shift[static_cast<std::size_t>(s)] = (s + 1) % mesh.num_processors();

  struct Cell {
    const topo::Topology* topo;
    traffic::TrafficSpec spec;
    CollapseMode mode;
  };
  const std::vector<Cell> cells{
      {&ft, traffic::TrafficSpec::bit_complement(), CollapseMode::Auto},
      {&ft, traffic::TrafficSpec::transpose(), CollapseMode::Sparse},
      {&mesh, traffic::TrafficSpec::permutation(shift), CollapseMode::Auto},
  };
  for (const Cell& cell : cells) {
    TrafficBuildOptions build;
    build.collapse = cell.mode;
    const GeneralModel sparse =
        build_traffic_model(*cell.topo, cell.spec, {}, build);
    const GeneralModel dense = build_traffic_model(*cell.topo, cell.spec);
    const std::string tag = dense.model_name;
    EXPECT_EQ(sparse.model_name, dense.model_name);
    EXPECT_TRUE(sparse.channel_class_of.empty()) << tag;
    ASSERT_EQ(sparse.graph.size(), dense.graph.size()) << tag;
    EXPECT_EQ(sparse.mean_distance, dense.mean_distance) << tag;
    EXPECT_EQ(sparse.injection_classes, dense.injection_classes) << tag;
    for (int ch = 0; ch < dense.graph.size(); ++ch) {
      const ChannelClass& a = sparse.graph.at(ch);
      const ChannelClass& b = dense.graph.at(ch);
      EXPECT_EQ(a.rate_per_link, b.rate_per_link) << tag << " ch " << ch;
      EXPECT_EQ(a.self_frac, b.self_frac) << tag << " ch " << ch;
      ASSERT_EQ(a.next.size(), b.next.size()) << tag << " ch " << ch;
      for (std::size_t t = 0; t < a.next.size(); ++t) {
        EXPECT_EQ(a.next[t].target, b.next[t].target) << tag;
        EXPECT_EQ(a.next[t].weight, b.next[t].weight) << tag;
        EXPECT_EQ(a.next[t].route_prob, b.next[t].route_prob) << tag;
      }
    }
  }
}

TEST(ScaleSmoke, QuarterMillionProcessorFatTreeSolvesInTestTime) {
  // levels = 9 → 4^9 = 262,144 processors, ~3.7M directed channels.  The
  // dense builder would need 262k full route-DAG passes; the collapsed path
  // runs ONE (uniform has a single destination orbit) and folds everything
  // to 2·levels classes.  This is the scaling headline as a test: build,
  // solve, and cross-check against the §3 closed-form collapsed builder
  // (exact conditionals), all inside the scale label's time budget.
  const int levels = 9;
  const topo::ButterflyFatTree ft(levels);
  ASSERT_EQ(ft.num_processors(), 262144);

  const GeneralModel net =
      build_traffic_model_collapsed(ft, traffic::TrafficSpec::uniform());
  ASSERT_EQ(net.model_name.rfind("traffic-sym(", 0), 0u);
  EXPECT_EQ(net.graph.size(), 2 * levels);
  EXPECT_TRUE(net.graph.acyclic());

  const GeneralModel reference =
      build_fattree_collapsed(levels, 2, /*exact_conditionals=*/true);
  expect_rel(net.mean_distance, reference.mean_distance, 1e-9,
             "mean distance vs closed form");
  const double sat = model_saturation_rate(net, net.opts);
  const double sat_ref = model_saturation_rate(reference, reference.opts);
  expect_rel(sat, sat_ref, 1e-6, "saturation vs closed form");
  for (double f : {0.2, 0.5, 0.8}) {
    const LatencyEstimate a = net.evaluate(f * sat);
    const LatencyEstimate b = reference.evaluate(f * sat);
    ASSERT_TRUE(a.stable && b.stable) << "f=" << f;
    ASSERT_TRUE(std::isfinite(a.latency));
    expect_rel(a.latency, b.latency, 1e-9,
               "latency vs closed form at f=" + std::to_string(f));
  }
}

TEST(ScaleSmoke, LargeHotspotFatTreeBuildsCollapsed) {
  // Hotspot at scale: the pin refines the quotient (levels + 1 destination
  // orbits, one rep pass each) but the build stays O(orbits · channels).
  const topo::ButterflyFatTree ft(7);  // 16,384 processors
  const GeneralModel net =
      build_traffic_model_collapsed(ft, traffic::TrafficSpec::hotspot(0.1, 123));
  ASSERT_EQ(net.model_name.rfind("traffic-sym(", 0), 0u);
  ASSERT_LT(net.graph.size(), 256);
  // The hotspot ejection bundle concentrates ~f·N of the unit flow, so
  // saturation sits orders of magnitude below the uniform network's —
  // evaluate relative to the model's own λ₀*.
  const double sat = model_saturation_rate(net, net.opts);
  ASSERT_GT(sat, 0.0);
  const LatencyEstimate est = net.evaluate(0.5 * sat);
  ASSERT_TRUE(est.stable);
  EXPECT_TRUE(std::isfinite(est.latency));
  EXPECT_GT(est.latency, 0.0);
}

}  // namespace
}  // namespace wormnet::core

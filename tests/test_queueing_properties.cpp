// Kernel-level property sweeps for the queueing functions: identities that
// hold across the whole parameter space, checked densely.  These pin the
// algebraic structure that the model-level scale-invariance and ablation
// results depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "queueing/queueing.hpp"

namespace wormnet::queueing {
namespace {

// Scale invariance: W(λ/k, k·x̄) = k·W(λ, x̄) for every kernel, at matched
// C_b² (utilization is invariant, waits scale like service times).
class KernelScaling
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(KernelScaling, WaitsScaleLinearly) {
  const auto [servers, rho, k] = GetParam();
  const double xbar = 16.0;
  const double lambda = rho * servers / xbar;
  const double cb2 = 0.37;
  const double base = mgm_wait(servers, lambda, xbar, cb2);
  const double scaled = mgm_wait(servers, lambda / k, k * xbar, cb2);
  ASSERT_TRUE(std::isfinite(base));
  EXPECT_NEAR(scaled, k * base, 1e-9 * std::max(1.0, k * base));
  // Hokstad M/G/2 obeys the same scaling.
  if (servers == 2) {
    EXPECT_NEAR(mg2_wait_hokstad(lambda / k, k * xbar, cb2),
                k * mg2_wait_hokstad(lambda, xbar, cb2),
                1e-9 * std::max(1.0, k * base));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelScaling,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(2.0, 4.0, 7.5)));

// The wormhole C_b² is itself scale-invariant, closing the loop for the
// model-level invariance: cb2(k·x̄, k·s_f) == cb2(x̄, s_f).
TEST(WormholeCb2, ScaleInvariant) {
  for (double xbar : {16.0, 24.0, 100.0}) {
    for (double k : {2.0, 3.5, 8.0}) {
      EXPECT_NEAR(wormhole_cb2(k * xbar, k * 16.0), wormhole_cb2(xbar, 16.0), 1e-12);
    }
  }
}

// Waits increase in every argument (λ, x̄, C_b²) and decrease in m.
class KernelMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(KernelMonotonicity, InLambda) {
  const int m = GetParam();
  const double xbar = 20.0;
  double prev = -1.0;
  for (double rho = 0.05; rho < 0.95; rho += 0.1) {
    const double w = mgm_wait(m, rho * m / xbar, xbar, 0.5);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST_P(KernelMonotonicity, InServiceTime) {
  const int m = GetParam();
  const double lambda = 0.4 * m / 20.0;
  double prev = -1.0;
  for (double xbar = 10.0; xbar < 40.0; xbar += 5.0) {
    if (!stable(lambda, xbar, m)) break;
    const double w = mgm_wait(m, lambda, xbar, 0.5);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST_P(KernelMonotonicity, InVariance) {
  const int m = GetParam();
  const double xbar = 20.0;
  const double lambda = 0.6 * m / xbar;
  double prev = -1.0;
  for (double cb2 = 0.0; cb2 <= 2.0; cb2 += 0.25) {
    const double w = mgm_wait(m, lambda, xbar, cb2);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelMonotonicity, ::testing::Values(1, 2, 3, 4));

TEST(KernelOrdering, PoolingAlwaysHelps) {
  // At the same per-server utilization, more servers => less waiting
  // (classic pooling), across the whole stable range.
  const double xbar = 16.0;
  for (double rho = 0.1; rho < 0.95; rho += 0.1) {
    double prev = std::numeric_limits<double>::infinity();
    for (int m = 1; m <= 4; ++m) {
      const double w = mgm_wait(m, rho * m / xbar, xbar, 0.4);
      EXPECT_LT(w, prev) << "m=" << m << " rho=" << rho;
      prev = w;
    }
  }
}

TEST(KernelOrdering, ErlangCIncreasesWithLoad) {
  for (int m : {1, 2, 4, 8}) {
    double prev = -1.0;
    for (double a = 0.1 * m; a < m; a += 0.1 * m) {
      const double c = erlang_c(m, a);
      EXPECT_GT(c, prev) << "m=" << m;
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
      prev = c;
    }
  }
}

TEST(KernelLimits, WaitVanishesAtZeroLoadForAllKernels) {
  for (int m = 1; m <= 4; ++m) {
    EXPECT_DOUBLE_EQ(mgm_wait(m, 0.0, 16.0, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(wormhole_wait(m, 0.0, 16.0, 16.0), 0.0);
  }
}

TEST(KernelLimits, WaitDivergesApproachingSaturation) {
  // W must exceed any bound as rho -> 1 (continuity of the blow-up).
  for (int m : {1, 2, 3}) {
    const double xbar = 16.0;
    const double w_far = mgm_wait(m, 0.90 * m / xbar, xbar, 0.5);
    const double w_near = mgm_wait(m, 0.999 * m / xbar, xbar, 0.5);
    EXPECT_GT(w_near, 50.0 * w_far / 10.0);
    EXPECT_TRUE(std::isfinite(w_near));
  }
}

TEST(BlockingProperties, MonotoneInRateRatioAndRouteProb) {
  // More of the output's traffic coming from this input => less waiting for
  // others (smaller P).
  double prev = 2.0;
  for (double ratio = 0.1; ratio <= 1.0; ratio += 0.1) {
    const double p = blocking_probability(1, ratio, 1.0, 0.8);
    EXPECT_LT(p, prev);
    prev = p;
  }
  prev = 2.0;
  for (double r = 0.1; r <= 1.0; r += 0.1) {
    const double p = blocking_probability(1, 0.7, 1.0, r);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(BlockingProperties, BoundedInUnitInterval) {
  for (int m : {1, 2, 3, 4}) {
    for (double lin : {0.0, 0.3, 1.0, 3.0}) {
      for (double lout : {0.1, 1.0, 5.0}) {
        for (double r : {0.0, 0.25, 1.0}) {
          const double p = blocking_probability(m, lin, lout, r);
          EXPECT_GE(p, 0.0);
          EXPECT_LE(p, 1.0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace wormnet::queueing

// Tests for core::build_traffic_model — the traffic-aware route-enumeration
// builder.  Three layers of checks:
//  * conservation: for every topology x pattern, the enumerated per-channel
//    rates satisfy Kirchhoff flow conservation (switch in-rate == out-rate,
//    processor injection == row weight, ejection == column weight);
//  * parity: under TrafficSpec::uniform() the builder reproduces the
//    hand-derived fat-tree and hypercube channel rates and latencies;
//  * pattern physics: hotspot ejection follows the closed form and drags the
//    saturation point below the uniform model's; permutations unload the
//    network the way the simulator measures.
#include "core/traffic_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "core/hypercube_graph.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/channels.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"

namespace wormnet::core {
namespace {

std::vector<traffic::TrafficSpec> patterns_for(int n) {
  std::vector<traffic::TrafficSpec> all{
      traffic::TrafficSpec::uniform(),
      traffic::TrafficSpec::hotspot(0.2),
      traffic::TrafficSpec::bit_complement(),
      traffic::TrafficSpec::transpose(),
      traffic::TrafficSpec::nearest_neighbor(0.5),
  };
  std::vector<int> shift(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) shift[static_cast<std::size_t>(s)] = (s + 1) % n;
  all.push_back(traffic::TrafficSpec::permutation(shift));
  std::vector<traffic::TrafficSpec> usable;
  for (traffic::TrafficSpec& spec : all) {
    if (spec.check(n).empty()) usable.push_back(spec);
  }
  return usable;
}

/// Kirchhoff conservation of the enumerated unit-rate flows:
///  * every switch forwards exactly what it receives;
///  * every processor injects its row weight and absorbs its column weight;
///  * network-wide, injected == ejected.
void expect_flow_conservation(const topo::Topology& topo,
                              const traffic::TrafficSpec& spec) {
  const GeneralModel net = build_traffic_model(topo, spec);
  const topo::ChannelTable ct(topo);
  const int procs = topo.num_processors();
  const traffic::TrafficMatrix m = spec.materialize(procs);
  const std::string tag = net.model_name;

  std::vector<double> in_rate(static_cast<std::size_t>(topo.num_nodes()), 0.0);
  std::vector<double> out_rate(static_cast<std::size_t>(topo.num_nodes()), 0.0);
  for (int ch = 0; ch < ct.size(); ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    const double rate = net.graph.at(ch).rate_per_link;
    out_rate[static_cast<std::size_t>(dc.src_node)] += rate;
    in_rate[static_cast<std::size_t>(dc.dst_node)] += rate;
  }
  double injected = 0.0;
  double ejected = 0.0;
  for (int node = 0; node < topo.num_nodes(); ++node) {
    if (topo.is_processor(node)) {
      EXPECT_NEAR(out_rate[static_cast<std::size_t>(node)], m.row_sum(node), 1e-9)
          << tag << " injection at PE " << node;
      EXPECT_NEAR(in_rate[static_cast<std::size_t>(node)], m.col_sum(node), 1e-9)
          << tag << " ejection at PE " << node;
      injected += out_rate[static_cast<std::size_t>(node)];
      ejected += in_rate[static_cast<std::size_t>(node)];
    } else {
      EXPECT_NEAR(in_rate[static_cast<std::size_t>(node)],
                  out_rate[static_cast<std::size_t>(node)], 1e-9)
          << tag << " switch " << node << " does not conserve flow";
    }
  }
  EXPECT_NEAR(injected, ejected, 1e-9) << tag;
}

TEST(TrafficModel, FlowConservationAcrossTopologiesAndPatterns) {
  const topo::ButterflyFatTree ft(2);
  const topo::Hypercube hc(3);
  const topo::Mesh mesh(3, 2);
  for (const topo::Topology* topo :
       std::initializer_list<const topo::Topology*>{&ft, &hc, &mesh}) {
    for (const traffic::TrafficSpec& spec : patterns_for(topo->num_processors())) {
      expect_flow_conservation(*topo, spec);
    }
  }
}

TEST(TrafficModel, ParallelBuildBitwiseIdenticalToSerialEverywhere) {
  // The sharded parallel builder must reproduce the serial builder's result
  // BIT FOR BIT for every topology x pattern cell this suite covers: shard
  // boundaries depend only on the processor count and the reduction runs in
  // shard order, so worker count cannot move a single ulp.
  const topo::ButterflyFatTree ft(2);
  const topo::Hypercube hc(3);
  const topo::Mesh mesh(3, 2);
  TrafficBuildOptions serial;
  serial.threads = 1;
  TrafficBuildOptions parallel;
  parallel.threads = 4;
  TrafficBuildOptions shared_pool;  // threads = 0: the default shared pool
  for (const topo::Topology* topo :
       std::initializer_list<const topo::Topology*>{&ft, &hc, &mesh}) {
    for (const traffic::TrafficSpec& spec : patterns_for(topo->num_processors())) {
      const GeneralModel a = build_traffic_model(*topo, spec, {}, serial);
      const GeneralModel b = build_traffic_model(*topo, spec, {}, parallel);
      const GeneralModel c = build_traffic_model(*topo, spec, {}, shared_pool);
      const std::string tag = a.model_name;
      EXPECT_EQ(c.mean_distance, a.mean_distance) << tag;
      for (int ch = 0; ch < a.graph.size(); ++ch) {
        EXPECT_EQ(c.graph.at(ch).rate_per_link, a.graph.at(ch).rate_per_link)
            << tag << " (shared pool) ch " << ch;
      }
      ASSERT_EQ(a.graph.size(), b.graph.size()) << tag;
      for (int ch = 0; ch < a.graph.size(); ++ch) {
        const ChannelClass& ca = a.graph.at(ch);
        const ChannelClass& cb = b.graph.at(ch);
        EXPECT_EQ(ca.rate_per_link, cb.rate_per_link) << tag << " ch " << ch;
        ASSERT_EQ(ca.next.size(), cb.next.size()) << tag << " ch " << ch;
        for (std::size_t t = 0; t < ca.next.size(); ++t) {
          EXPECT_EQ(ca.next[t].target, cb.next[t].target) << tag;
          EXPECT_EQ(ca.next[t].weight, cb.next[t].weight) << tag;
          EXPECT_EQ(ca.next[t].route_prob, cb.next[t].route_prob) << tag;
        }
      }
      EXPECT_EQ(a.mean_distance, b.mean_distance) << tag;
      EXPECT_EQ(a.injection_classes, b.injection_classes) << tag;
    }
  }
}

TEST(TrafficModel, SerialCutoffBoundaryIsBitwiseInvisible) {
  // threads = 0 runs serially at or below kSerialCutoffProcs and on the
  // shared pool above it.  The 7-cube (128 PEs) sits exactly ON the cutoff
  // and the 8-cube (256 PEs) just past it; both sides must be bitwise the
  // threads = 1 build, so the fast-path switch can never move a result.
  ASSERT_EQ(TrafficBuildOptions::kSerialCutoffProcs, 128);
  TrafficBuildOptions serial;
  serial.threads = 1;
  TrafficBuildOptions fallback;  // threads = 0: auto, cutoff applies
  fallback.threads = 0;
  for (int dims : {7, 8}) {
    const topo::Hypercube hc(dims);
    const traffic::TrafficSpec spec = traffic::TrafficSpec::uniform();
    const GeneralModel a = build_traffic_model(hc, spec, {}, serial);
    const GeneralModel b = build_traffic_model(hc, spec, {}, fallback);
    const std::string tag = a.model_name + " dims=" + std::to_string(dims);
    ASSERT_EQ(a.graph.size(), b.graph.size()) << tag;
    EXPECT_EQ(a.mean_distance, b.mean_distance) << tag;
    for (int ch = 0; ch < a.graph.size(); ++ch) {
      EXPECT_EQ(a.graph.at(ch).rate_per_link, b.graph.at(ch).rate_per_link)
          << tag << " ch " << ch;
      EXPECT_EQ(a.graph.at(ch).self_frac, b.graph.at(ch).self_frac)
          << tag << " ch " << ch;
    }
  }
}

TEST(TrafficModel, MeshKirchhoffUnderNonUniformPatterns) {
  // The generic sweep above relies on spec.check() filtering, which silently
  // drops transpose whenever the mesh's processor count isn't square — a
  // skipped cell nobody notices.  Pin the mesh's genuinely heterogeneous DOR
  // channel rates under the skewed patterns explicitly, on the 3x3 grid
  // (radix 3, 2 dimensions) where transpose is defined.
  const topo::Mesh mesh(3, 2);
  const std::vector<traffic::TrafficSpec> specs{
      traffic::TrafficSpec::transpose(),
      traffic::TrafficSpec::nearest_neighbor(0.7),
  };
  for (const traffic::TrafficSpec& spec : specs) {
    ASSERT_TRUE(spec.check(mesh.num_processors()).empty()) << spec.name();
    expect_flow_conservation(mesh, spec);
    // The enumerated graph must also validate and solve at a light load.
    const GeneralModel net = build_traffic_model(mesh, spec);
    EXPECT_TRUE(net.graph.validate().empty()) << spec.name();
    SolveOptions opts;
    opts.worm_flits = 16.0;
    const LatencyEstimate est = model_latency(net, 0.002, opts);
    EXPECT_TRUE(est.stable) << spec.name();
    EXPECT_GT(est.latency, 0.0) << spec.name();
  }
}

TEST(TrafficModel, MeshTransposeUnloadsTheDiagonal) {
  // Physics of the covered pattern, not just conservation: under transpose
  // on a square mesh every diagonal PE falls back to d = s+1 (spec rule), so
  // off-diagonal PEs exchange with their mirror and the row/column channel
  // rates stay symmetric under the transpose map.
  const topo::Mesh mesh(3, 2);
  const GeneralModel net =
      build_traffic_model(mesh, traffic::TrafficSpec::transpose());
  const topo::ChannelTable ct(mesh);
  const int procs = mesh.num_processors();
  const traffic::TrafficMatrix m =
      traffic::TrafficSpec::transpose().materialize(procs);
  // Each PE sends exactly one message stream and receives exactly one.
  for (int p = 0; p < procs; ++p) {
    EXPECT_NEAR(m.row_sum(p), 1.0, 1e-12);
    EXPECT_NEAR(net.graph.at(ct.from(p, 0)).rate_per_link, 1.0, 1e-9);
    EXPECT_NEAR(net.graph.at(ct.into(p, 0)).rate_per_link, m.col_sum(p), 1e-9);
  }
}

TEST(TrafficModel, UniformReproducesHandDerivedFatTreeRates) {
  topo::ButterflyFatTree ft(3);
  const GeneralModel net =
      build_traffic_model(ft, traffic::TrafficSpec::uniform());
  const topo::ChannelTable ct(ft);
  FatTreeModel model({.levels = 3, .worm_flits = 16.0});
  for (int ch = 0; ch < ct.size(); ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    const int from_level = ft.node_level(dc.src_node);
    const int to_level = ft.node_level(dc.dst_node);
    const double rate = net.graph.at(ch).rate_per_link;
    const int level = to_level > from_level ? from_level : to_level;
    EXPECT_NEAR(rate, model.rate_up(level, 1.0), 1e-12)
        << "channel at level " << level;
  }
}

TEST(TrafficModel, UniformMatchesCollapsedBuildersToMachinePrecision) {
  // Exact-conditional collapsed fat-tree and the route-enumerated uniform
  // model are two encodings of the same flows; latencies must agree to
  // near machine precision.
  topo::ButterflyFatTree ft(3);
  const GeneralModel enumerated =
      build_traffic_model(ft, traffic::TrafficSpec::uniform());
  const GeneralModel collapsed =
      build_fattree_collapsed(3, 2, /*exact_conditionals=*/true);
  SolveOptions opts;
  opts.worm_flits = 16.0;
  for (double lambda0 : {0.0005, 0.002}) {
    const LatencyEstimate a = model_latency(enumerated, lambda0, opts);
    const LatencyEstimate b = model_latency(collapsed, lambda0, opts);
    ASSERT_TRUE(a.stable && b.stable);
    EXPECT_NEAR(a.latency, b.latency, 1e-9 * b.latency) << "lambda0=" << lambda0;
  }
  topo::Hypercube hc(4);
  const GeneralModel cube =
      build_traffic_model(hc, traffic::TrafficSpec::uniform());
  const GeneralModel cube_collapsed = build_hypercube_collapsed(4);
  for (double lambda0 : {0.001, 0.004}) {
    const LatencyEstimate a = model_latency(cube, lambda0, opts);
    const LatencyEstimate b = model_latency(cube_collapsed, lambda0, opts);
    ASSERT_TRUE(a.stable && b.stable);
    EXPECT_NEAR(a.latency, b.latency, 1e-6 * b.latency) << "lambda0=" << lambda0;
  }
}

TEST(TrafficModel, HotspotEjectionRateMatchesClosedForm) {
  // Column sum at the hotspot: (P-1)·f + (1-f) at unit injection rate.
  topo::ButterflyFatTree ft(2);
  const topo::ChannelTable ct(ft);
  const int procs = ft.num_processors();
  for (double f : {0.1, 0.3}) {
    const GeneralModel net =
        build_traffic_model(ft, traffic::TrafficSpec::hotspot(f));
    const int ej = ct.into(0, 0);
    EXPECT_NEAR(net.graph.at(ej).rate_per_link, (procs - 1) * f + (1.0 - f), 1e-9)
        << "f=" << f;
    EXPECT_TRUE(net.graph.at(ej).terminal);
  }
}

TEST(TrafficModel, HotspotSaturatesBelowUniform) {
  topo::ButterflyFatTree ft(2);
  SolveOptions opts;
  opts.worm_flits = 16.0;
  const GeneralModel uniform =
      build_traffic_model(ft, traffic::TrafficSpec::uniform(), opts);
  const GeneralModel hotspot =
      build_traffic_model(ft, traffic::TrafficSpec::hotspot(0.1), opts);
  const double sat_u = model_saturation_rate(uniform, opts);
  const double sat_h = model_saturation_rate(hotspot, opts);
  EXPECT_GT(sat_h, 0.0);
  EXPECT_LT(sat_h, sat_u);
  // The skewed ejection channel is the binding constraint: at unit λ₀ it
  // carries (P-1)f + (1-f), so it saturates near 1/(rate·s_f) — far below
  // the uniform saturation.  Check the order of magnitude.
  const int procs = ft.num_processors();
  const double ej_rate = (procs - 1) * 0.1 + 0.9;
  EXPECT_LT(sat_h, 1.05 / (ej_rate * opts.worm_flits));
}

TEST(TrafficModel, BitComplementCrossesTheRoot) {
  // Every bit-complement pair straddles the root: the traffic-weighted mean
  // distance is exactly the diameter, and level-1 sibling turns never occur.
  for (int levels : {2, 3}) {
    topo::ButterflyFatTree ft(levels);
    const GeneralModel net =
        build_traffic_model(ft, traffic::TrafficSpec::bit_complement());
    EXPECT_NEAR(net.mean_distance, 2.0 * levels, 1e-12);
  }
}

TEST(TrafficModel, PermutationLeavesChannelsUnusedButValid) {
  // The shift permutation loads only a sliver of the hypercube; unused
  // channels carry zero rate and the graph still validates/solves.
  topo::Hypercube hc(3);
  const int procs = hc.num_processors();
  std::vector<int> shift(static_cast<std::size_t>(procs));
  for (int s = 0; s < procs; ++s) shift[static_cast<std::size_t>(s)] = (s + 1) % procs;
  const GeneralModel net =
      build_traffic_model(hc, traffic::TrafficSpec::permutation(shift));
  EXPECT_TRUE(net.graph.validate().empty());
  int unused = 0;
  for (int ch = 0; ch < net.graph.size(); ++ch) {
    if (net.graph.at(ch).rate_per_link == 0.0) ++unused;
  }
  EXPECT_GT(unused, 0);
  SolveOptions opts;
  opts.worm_flits = 16.0;
  const LatencyEstimate est = model_latency(net, 0.001, opts);
  EXPECT_TRUE(est.stable);
  EXPECT_GT(est.latency, 0.0);
}

TEST(TrafficModel, SilentMatrixRowsAreExcludedFromInjection) {
  topo::Hypercube hc(2);
  const int procs = hc.num_processors();
  traffic::TrafficMatrix m(procs);
  // PE 0 is a pure sink: every other PE sends to it only.
  for (int s = 1; s < procs; ++s) m.set(s, 0, 1.0);
  const GeneralModel net = build_traffic_model(hc, traffic::TrafficSpec::matrix(m));
  EXPECT_EQ(static_cast<int>(net.injection_classes.size()), procs - 1);
  const topo::ChannelTable ct(hc);
  EXPECT_NEAR(net.graph.at(ct.into(0, 0)).rate_per_link,
              static_cast<double>(procs - 1), 1e-12);
  EXPECT_DOUBLE_EQ(net.graph.at(ct.from(0, 0)).rate_per_link, 0.0);
  SolveOptions opts;
  opts.worm_flits = 8.0;
  EXPECT_TRUE(model_latency(net, 0.002, opts).stable);
}

TEST(TrafficModel, LocalityShortensTheWeightedMeanDistance) {
  topo::ButterflyFatTree ft(3);
  const GeneralModel uniform =
      build_traffic_model(ft, traffic::TrafficSpec::uniform());
  const GeneralModel local =
      build_traffic_model(ft, traffic::TrafficSpec::nearest_neighbor(0.8));
  EXPECT_LT(local.mean_distance, uniform.mean_distance);
  EXPECT_NEAR(uniform.mean_distance, ft.mean_distance(), 1e-12);
}

TEST(TrafficModel, OptionsAndNamingPropagate) {
  topo::Hypercube hc(2);
  SolveOptions opts;
  opts.worm_flits = 32.0;
  opts.multi_server = false;
  const GeneralModel net =
      build_traffic_model(hc, traffic::TrafficSpec::hotspot(0.2), opts);
  EXPECT_DOUBLE_EQ(net.opts.worm_flits, 32.0);
  EXPECT_FALSE(net.opts.multi_server);
  EXPECT_NE(net.model_name.find("hotspot"), std::string::npos);
  EXPECT_NE(net.model_name.find(hc.name()), std::string::npos);
}

// Regression: snap_residues once snapped delta-retune residues against ONE
// global epsilon scaled by the hottest channel's rate, so a legitimate tiny
// flow riding next to a hot flow (rates spanning orders of magnitude) was
// silently zeroed — dropping Kirchhoff mass.  The epsilon is channel-local
// now; this matrix reproduces the old failure: a 15-messages/cycle hotspot
// ejection (old global eps 1.6e-8) next to an 8e-9 flow on its own link.
TEST(TrafficModel, DeltaRetuneKeepsTinyFlowsNextToHotOnes) {
  topo::Hypercube hc(4);
  const int procs = hc.num_processors();
  traffic::TrafficMatrix m1(procs);
  for (int s = 1; s < procs; ++s) m1.set(s, 0, 1.0);  // hotspot into PE 0
  const double tiny = 8e-9;
  m1.set(1, 3, tiny);  // rides the otherwise idle 1->3 dimension-1 link
  m1.normalize_rows();

  core::RetunableTrafficModel rm(hc, traffic::TrafficSpec::matrix(m1));

  // Locate the router-to-router channel 1 -> 3 (carries only the tiny flow:
  // every other pair routes toward PE 0, which never sets a bit).
  const topo::ChannelTable ct(hc);
  const int r1 = hc.neighbor(1, 0);
  const int r3 = hc.neighbor(3, 0);
  int tiny_ch = topo::kNoChannel;
  for (int p = 0; p < hc.num_ports(r1); ++p) {
    if (hc.neighbor(r1, p) == r3) tiny_ch = ct.from(r1, p);
  }
  ASSERT_NE(tiny_ch, topo::kNoChannel);
  const double tiny_rate = tiny / (1.0 + tiny);  // row-normalized weight
  ASSERT_NEAR(rm.model().graph.at(tiny_ch).rate_per_link, tiny_rate,
              tiny_rate * 1e-9);

  // Retune an unrelated pair: redirect sender 5 from the hotspot to PE 2 —
  // a two-changed-pair delta whose residue snapping must not collapse the
  // tiny channel's rate.
  traffic::TrafficMatrix m2 = m1;
  m2.set(5, 0, 0.0);
  m2.set(5, 2, 1.0);
  const auto report = rm.retune_traffic(traffic::TrafficSpec::matrix(m2));
  EXPECT_FALSE(report.rebuilt);
  EXPECT_GT(rm.model().graph.at(tiny_ch).rate_per_link, 0.0);
  EXPECT_NEAR(rm.model().graph.at(tiny_ch).rate_per_link, tiny_rate,
              tiny_rate * 1e-9);

  // And the whole retuned model lands on the cold rebuild, channel by
  // channel — the Kirchhoff-mass contract the global epsilon broke.
  const GeneralModel cold =
      build_traffic_model(hc, traffic::TrafficSpec::matrix(m2));
  ASSERT_EQ(rm.model().graph.size(), cold.graph.size());
  for (int id = 0; id < cold.graph.size(); ++id) {
    EXPECT_NEAR(rm.model().graph.at(id).rate_per_link,
                cold.graph.at(id).rate_per_link,
                1e-12 * (1.0 + cold.graph.at(id).rate_per_link))
        << "channel " << id;
  }
}

// Regression: util::double_bits once digested -0.0 and +0.0 as distinct
// words, so a model whose signed delta arithmetic left a negative zero on
// an idle channel produced a different content digest than the
// value-identical rebuilt model — splitting memo/cache entries that must
// collide (SweepEngine keys, QueryEngine variants).
TEST(TrafficModel, ContentDigestIgnoresSignedZeroRates) {
  topo::Hypercube hc(2);
  GeneralModel a = build_traffic_model(hc, traffic::TrafficSpec::uniform());
  GeneralModel b = build_traffic_model(hc, traffic::TrafficSpec::uniform());
  // An injection channel never routes through itself: its self-flow is an
  // exact zero on both sides.  Force the negative-zero representation.
  ASSERT_FALSE(a.injection_classes.empty());
  const int ch = a.injection_classes.front();
  ASSERT_EQ(b.graph.at(ch).rate_per_link, a.graph.at(ch).rate_per_link);
  a.graph.mutable_at(ch).rate_per_link = -0.0;
  b.graph.mutable_at(ch).rate_per_link = 0.0;
  EXPECT_EQ(a.content_digest(), b.content_digest());
}

}  // namespace
}  // namespace wormnet::core

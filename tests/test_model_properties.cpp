// Property suites over the analytical model: structural facts that must
// hold for EVERY configuration, checked across broad parameter sweeps.
// These complement the point tests in test_fattree_model.cpp — a regression
// anywhere in the Eq. 4-26 chain shows up here first.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/fattree_graph.hpp"
#include "core/fattree_model.hpp"
#include "core/full_graph.hpp"
#include "core/hypercube_graph.hpp"
#include "core/network_model.hpp"
#include "topo/channels.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"
#include "util/rng.hpp"

namespace wormnet::core {
namespace {

// ---------------------------------------------------------------------------
// Fat-tree model properties over (levels, worm, load fraction).
class ModelProperties
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {
 protected:
  FatTreeModel model() const {
    const auto [levels, sf, frac] = GetParam();
    (void)frac;
    return FatTreeModel({.levels = levels, .worm_flits = sf});
  }
  double load() const {
    const auto [levels, sf, frac] = GetParam();
    (void)levels;
    (void)sf;
    return model().saturation_load() * frac;
  }
};

TEST_P(ModelProperties, LatencyBoundedBelowByZeroLoad) {
  const FatTreeModel m = model();
  const FatTreeEvaluation ev = m.evaluate_load_detail(load());
  ASSERT_TRUE(ev.stable);
  EXPECT_GE(ev.latency + 1e-9,
            m.options().worm_flits + m.mean_distance() - 1.0);
}

TEST_P(ModelProperties, LatencyIncreasesWithLoad) {
  const FatTreeModel m = model();
  const double l1 = m.evaluate_load_detail(load()).latency;
  const double l2 = m.evaluate_load_detail(load() * 1.02).latency;
  if (std::isfinite(l2)) {
    EXPECT_GE(l2, l1);
  }
}

TEST_P(ModelProperties, WaitsAreNonNegativeEverywhere) {
  const FatTreeEvaluation ev = model().evaluate_load_detail(load());
  ASSERT_TRUE(ev.stable);
  for (double w : ev.w_up) EXPECT_GE(w, 0.0);
  for (double w : ev.w_down) EXPECT_GE(w, 0.0);
  EXPECT_GE(ev.inj_wait, 0.0);
}

TEST_P(ModelProperties, UtilizationsWithinUnitInterval) {
  const FatTreeEvaluation ev = model().evaluate_load_detail(load());
  ASSERT_TRUE(ev.stable);
  for (double rho : ev.rho_up) {
    EXPECT_GE(rho, 0.0);
    EXPECT_LT(rho, 1.0);
  }
  for (double rho : ev.rho_down) {
    EXPECT_GE(rho, 0.0);
    EXPECT_LT(rho, 1.0);
  }
}

TEST_P(ModelProperties, TopUpBundleIsTheBusiestUpChannel) {
  // λ·x̄ grows with level (Eq. 14's 2^l beats P↑'s decay), so the top-level
  // bundle is the utilization bottleneck — the structural reason capacity
  // halves per level.
  const auto [levels, sf, frac] = GetParam();
  if (levels < 2) return;
  (void)sf;
  (void)frac;
  const FatTreeEvaluation ev = model().evaluate_load_detail(load());
  ASSERT_TRUE(ev.stable);
  const double top = ev.rho_up[static_cast<std::size_t>(levels - 1)];
  for (int l = 1; l < levels; ++l)
    EXPECT_LE(ev.rho_up[static_cast<std::size_t>(l)], top + 1e-12) << "l=" << l;
}

TEST_P(ModelProperties, ServiceTimeChainsMonotone) {
  const auto [levels, sf, frac] = GetParam();
  (void)frac;
  const FatTreeEvaluation ev = model().evaluate_load_detail(load());
  ASSERT_TRUE(ev.stable);
  // Down-chain non-decreasing with level; every x̄ at least s_f.
  for (int l = 0; l < levels; ++l) {
    EXPECT_GE(ev.x_down[static_cast<std::size_t>(l)], sf - 1e-9);
    EXPECT_GE(ev.x_up[static_cast<std::size_t>(l)], sf - 1e-9);
    if (l > 0) {
      EXPECT_GE(ev.x_down[static_cast<std::size_t>(l)],
                ev.x_down[static_cast<std::size_t>(l - 1)] - 1e-9);
    }
  }
}

TEST_P(ModelProperties, ScaleInvarianceInWormLength) {
  // (λ₀, s_f) -> (λ₀/2, 2·s_f) multiplies every x̄ and W̄ by exactly 2.
  const auto [levels, sf, frac] = GetParam();
  (void)frac;
  FatTreeModel m1({.levels = levels, .worm_flits = sf});
  FatTreeModel m2({.levels = levels, .worm_flits = 2.0 * sf});
  const double lambda0 = m1.saturation_rate() * 0.6;
  const FatTreeEvaluation a = m1.evaluate_detail(lambda0);
  const FatTreeEvaluation b = m2.evaluate_detail(lambda0 / 2.0);
  ASSERT_TRUE(a.stable && b.stable);
  EXPECT_NEAR(b.inj_service, 2.0 * a.inj_service, 1e-6 * a.inj_service);
  EXPECT_NEAR(b.inj_wait, 2.0 * a.inj_wait, 1e-6 * std::max(1.0, a.inj_wait));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelProperties,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(8.0, 16.0, 64.0),
                       ::testing::Values(0.2, 0.5, 0.8)));

// ---------------------------------------------------------------------------
// Channel-graph flow facts.

TEST(GraphProperties, CollapsedFatTreeFlowConservation) {
  // Total up-flow entering level l+1 equals total up-flow at level l times
  // the branching weight; with the paper's unconditional weights this holds
  // as Eq. 14 consistency: links(l)·λ(l)·P↑(l+1-ish)... verified directly:
  // N·λ₀·P↑_l equals rate_per_link times the link count at every level.
  for (int levels : {2, 3, 5}) {
    const GeneralModel net = build_fattree_collapsed(levels);
    FatTreeModel m({.levels = levels, .worm_flits = 16.0});
    const double big_n = static_cast<double>(m.num_processors());
    for (int l = 0; l < levels; ++l) {
      const double per_link =
          net.graph.at(net.class_id("up" + std::to_string(l))).rate_per_link;
      const double links = l == 0 ? big_n : big_n / (1 << l);
      EXPECT_NEAR(per_link * links, big_n * m.up_probability(l), 1e-9)
          << "levels=" << levels << " l=" << l;
    }
  }
}

TEST(GraphProperties, HypercubeTransitionsMatchMonteCarloRouting) {
  // The collapsed hypercube transition probabilities (first-differing-bit
  // combinatorics) must match empirical e-cube routing statistics.
  const int dims = 6;
  topo::Hypercube hc(dims);
  const GeneralModel net = build_hypercube_collapsed(dims);
  util::Rng rng(123);
  std::vector<long> dim_visits(static_cast<std::size_t>(dims), 0);
  std::vector<std::vector<long>> dim_to_dim(
      static_cast<std::size_t>(dims),
      std::vector<long>(static_cast<std::size_t>(dims + 1), 0));  // +1: eject
  const int trials = 200'000;
  const int big_n = hc.num_processors();
  for (int t = 0; t < trials; ++t) {
    const int s = static_cast<int>(rng.uniform_int(big_n));
    int d = static_cast<int>(rng.uniform_int(big_n - 1));
    if (d >= s) ++d;
    int prev_dim = -1;
    const int diff = s ^ d;
    for (int bit = 0; bit < dims; ++bit) {
      if (((diff >> bit) & 1) == 0) continue;
      ++dim_visits[static_cast<std::size_t>(bit)];
      if (prev_dim >= 0)
        ++dim_to_dim[static_cast<std::size_t>(prev_dim)][static_cast<std::size_t>(bit)];
      prev_dim = bit;
    }
    ++dim_to_dim[static_cast<std::size_t>(prev_dim)][static_cast<std::size_t>(dims)];
  }
  for (int d1 = 0; d1 < dims; ++d1) {
    const auto visits = static_cast<double>(dim_visits[static_cast<std::size_t>(d1)]);
    const ChannelClass& cls = net.graph.at(net.class_id("dim" + std::to_string(d1)));
    for (const Transition& t : cls.next) {
      double measured;
      if (net.graph.at(t.target).terminal) {
        measured = static_cast<double>(
                       dim_to_dim[static_cast<std::size_t>(d1)][static_cast<std::size_t>(dims)]) /
                   visits;
      } else {
        // Find the target dim index by matching labels dim0..dim5.
        int d2 = -1;
        for (int k = d1 + 1; k < dims; ++k)
          if (net.class_id("dim" + std::to_string(k)) == t.target) d2 = k;
        ASSERT_GE(d2, 0);
        measured = static_cast<double>(
                       dim_to_dim[static_cast<std::size_t>(d1)][static_cast<std::size_t>(d2)]) /
                   visits;
      }
      EXPECT_NEAR(measured, t.weight, 0.01) << "dim" << d1;
    }
  }
}

TEST(GraphProperties, MeshRatesMatchMonteCarloRouting) {
  // Exact flow propagation vs empirical DOR walks on a 4x4 mesh.
  topo::Mesh mesh(4, 2);
  const GeneralModel net = build_full_channel_graph(mesh);
  const topo::ChannelTable ct(mesh);
  util::Rng rng(321);
  std::vector<double> counts(static_cast<std::size_t>(ct.size()), 0.0);
  const int trials = 300'000;
  const int big_n = mesh.num_processors();
  for (int t = 0; t < trials; ++t) {
    const int s = static_cast<int>(rng.uniform_int(big_n));
    int d = static_cast<int>(rng.uniform_int(big_n - 1));
    if (d >= s) ++d;
    int node = s;
    while (!(mesh.is_processor(node) && node == d)) {
      const topo::RouteOptions opts = mesh.route(node, d);
      ASSERT_GT(opts.size(), 0);
      const int ch = ct.from(node, opts[0]);
      counts[static_cast<std::size_t>(ch)] += 1.0;
      node = mesh.neighbor(node, opts[0]);
    }
  }
  // Scale: each trial injects one message; unit-rate model injects 1 per PE
  // per cycle, i.e. trials/N messages-per-source worth of flow.
  const double scale = static_cast<double>(trials) / big_n;
  for (int ch = 0; ch < ct.size(); ++ch) {
    const double expected = net.graph.at(ch).rate_per_link;
    const double measured = counts[static_cast<std::size_t>(ch)] / scale;
    EXPECT_NEAR(measured, expected, std::max(0.03, expected * 0.05)) << "ch=" << ch;
  }
}

TEST(GraphProperties, SolverResultIndependentOfClassInsertionOrder) {
  // Build the same 2-level fat-tree graph with classes inserted in reverse
  // and confirm identical solutions (the reverse-topological sweep must not
  // depend on id order).
  GeneralModel fwd = build_fattree_collapsed(2);
  // Reversed construction:
  GeneralModel rev;
  ChannelClass down0;
  down0.label = "down0";
  down0.rate_per_link = fwd.graph.at(fwd.class_id("down0")).rate_per_link;
  down0.terminal = true;
  ChannelClass down1 = down0;
  down1.label = "down1";
  down1.terminal = false;
  down1.rate_per_link = fwd.graph.at(fwd.class_id("down1")).rate_per_link;
  ChannelClass up1;
  up1.label = "up1";
  up1.servers = 2;
  up1.rate_per_link = fwd.graph.at(fwd.class_id("up1")).rate_per_link;
  ChannelClass up0;
  up0.label = "up0";
  up0.rate_per_link = fwd.graph.at(fwd.class_id("up0")).rate_per_link;
  // Insert most-upstream first (worst case for a naive sweep).
  const int iu0 = rev.graph.add_channel(up0);
  const int iu1 = rev.graph.add_channel(up1);
  const int id1 = rev.graph.add_channel(down1);
  const int id0 = rev.graph.add_channel(down0);
  const FatTreeModel m({.levels = 2, .worm_flits = 16.0});
  const double pu = m.up_probability(1);
  rev.graph.add_transition(iu0, iu1, pu, pu);
  rev.graph.add_transition(iu0, id0, 1.0 - pu, (1.0 - pu) / 3.0);
  rev.graph.add_transition(iu1, id1, 1.0, 1.0 / 3.0);
  rev.graph.add_transition(id1, id0, 1.0, 0.25);
  rev.injection_classes = {iu0};
  rev.mean_distance = fwd.mean_distance;

  SolveOptions opts;
  opts.worm_flits = 16.0;
  const LatencyEstimate a = model_latency(fwd, 0.01, opts);
  const LatencyEstimate b = model_latency(rev, 0.01, opts);
  EXPECT_NEAR(a.latency, b.latency, 1e-12);
}

TEST(GraphProperties, SolveIsDeterministic) {
  const GeneralModel net = build_fattree_collapsed(4);
  SolveOptions opts;
  opts.worm_flits = 32.0;
  const SolveResult a = model_solve(net, 0.0007, opts);
  const SolveResult b = model_solve(net, 0.0007, opts);
  for (int i = 0; i < net.graph.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.service_time(i), b.service_time(i));
    EXPECT_DOUBLE_EQ(a.wait(i), b.wait(i));
  }
}

}  // namespace
}  // namespace wormnet::core

// Tests for the queueing kernels (the paper's Eq. 4-10).
//
// Oracle relationships used here:
//  * Pollaczek-Khinchine: M/G/1 with C_b²=1 is exactly M/M/1, with C_b²=0
//    exactly M/D/1 (half the M/M/1 wait).
//  * Hokstad's M/G/2 approximation is EXACT for exponential service, where
//    the M/M/2 Erlang-C closed form W = a²x̄ / ((2+a)(2-a)) applies.
//  * The generalized M/G/m kernel must coincide with M/G/1 at m=1 and with
//    Hokstad at m=2.
#include "queueing/queueing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace wormnet::queueing {
namespace {

TEST(Utilization, Definition) {
  EXPECT_DOUBLE_EQ(utilization(0.1, 5.0, 1), 0.5);
  EXPECT_DOUBLE_EQ(utilization(0.1, 5.0, 2), 0.25);
}

TEST(Stable, Boundary) {
  EXPECT_TRUE(stable(0.1, 5.0, 1));
  EXPECT_FALSE(stable(0.2, 5.0, 1));   // rho = 1
  EXPECT_FALSE(stable(0.3, 5.0, 1));
  EXPECT_TRUE(stable(0.3, 5.0, 2));    // rho = 0.75
  EXPECT_FALSE(stable(0.4, 5.0, 2));   // rho = 1
}

TEST(WormholeCb2, DeterministicServiceHasZeroVariance) {
  EXPECT_DOUBLE_EQ(wormhole_cb2(16.0, 16.0), 0.0);
}

TEST(WormholeCb2, GrowsWithBlocking) {
  // x̄ = 2 s_f: sigma = s_f, C² = 1/4.
  EXPECT_DOUBLE_EQ(wormhole_cb2(32.0, 16.0), 0.25);
  // Limit as x̄ -> inf is 1.
  EXPECT_LT(wormhole_cb2(1e6, 16.0), 1.0);
  EXPECT_NEAR(wormhole_cb2(1e6, 16.0), 1.0, 1e-4);
  EXPECT_DOUBLE_EQ(wormhole_cb2(std::numeric_limits<double>::infinity(), 16.0), 1.0);
}

TEST(Mg1, ZeroLoadZeroWait) {
  EXPECT_DOUBLE_EQ(mg1_wait(0.0, 16.0, 0.5), 0.0);
}

TEST(Mg1, MatchesMm1ForExponentialService) {
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double xbar = 8.0;
    const double lambda = rho / xbar;
    EXPECT_NEAR(mg1_wait(lambda, xbar, 1.0), mm1_wait(lambda, xbar), 1e-12)
        << "rho=" << rho;
  }
}

TEST(Mg1, DeterministicServiceIsHalfOfExponential) {
  const double lambda = 0.05, xbar = 10.0;
  EXPECT_NEAR(mg1_wait(lambda, xbar, 0.0), 0.5 * mm1_wait(lambda, xbar), 1e-12);
}

TEST(Mg1, KnownPollaczekKhinchineValue) {
  // rho = 0.5, x̄ = 10, C² = 0: W = rho x̄ / (2 (1-rho)) = 5.
  EXPECT_NEAR(mg1_wait(0.05, 10.0, 0.0), 5.0, 1e-12);
}

TEST(Mg1, UnstableIsInfinite) {
  EXPECT_TRUE(std::isinf(mg1_wait(0.1, 10.0, 0.5)));
  EXPECT_TRUE(std::isinf(mg1_wait(0.2, 10.0, 0.5)));
}

TEST(Mg1, MonotoneInLambdaAndService) {
  double prev = 0.0;
  for (double lambda : {0.01, 0.02, 0.04, 0.06, 0.08}) {
    const double w = mg1_wait(lambda, 10.0, 0.3);
    EXPECT_GT(w, prev);
    prev = w;
  }
  EXPECT_GT(mg1_wait(0.05, 12.0, 0.3), mg1_wait(0.05, 10.0, 0.3));
  EXPECT_GT(mg1_wait(0.05, 10.0, 0.9), mg1_wait(0.05, 10.0, 0.3));
}

TEST(Mg1Wormhole, FoldsVarianceApproximation) {
  const double lambda = 0.03, xbar = 20.0, sf = 16.0;
  EXPECT_NEAR(mg1_wait_wormhole(lambda, xbar, sf),
              mg1_wait(lambda, xbar, wormhole_cb2(xbar, sf)), 1e-12);
}

TEST(ErlangC, SingleServerEqualsRho) {
  for (double a : {0.1, 0.5, 0.9}) EXPECT_NEAR(erlang_c(1, a), a, 1e-12);
}

TEST(ErlangC, TwoServersKnownValue) {
  // C(2, 1) = 1/3 (classic).
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(ErlangC, SaturatedAndEmpty) {
  EXPECT_DOUBLE_EQ(erlang_c(2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_c(2, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(erlang_c(4, 17.0), 1.0);
}

TEST(ErlangC, DecreasesWithMoreServersAtFixedLoad) {
  const double a = 1.5;
  EXPECT_GT(erlang_c(2, a), erlang_c(3, a));
  EXPECT_GT(erlang_c(3, a), erlang_c(4, a));
}

TEST(Mmm, KnownTwoServerClosedForm) {
  // W_MM2 = a² x̄ / ((2+a)(2-a)).
  const double xbar = 10.0;
  for (double a : {0.2, 0.8, 1.0, 1.6}) {
    const double lambda = a / xbar;
    EXPECT_NEAR(mmm_wait(2, lambda, xbar), a * a * xbar / ((2.0 + a) * (2.0 - a)),
                1e-10)
        << "a=" << a;
  }
}

TEST(Mmm, OneServerMatchesMm1) {
  EXPECT_NEAR(mmm_wait(1, 0.05, 10.0), mm1_wait(0.05, 10.0), 1e-12);
}

TEST(Mg2Hokstad, ExactForExponentialService) {
  const double xbar = 16.0;
  for (double a : {0.3, 0.9, 1.5, 1.9}) {
    const double lambda = a / xbar;
    EXPECT_NEAR(mg2_wait_hokstad(lambda, xbar, 1.0), mmm_wait(2, lambda, xbar), 1e-10)
        << "a=" << a;
  }
}

TEST(Mg2Hokstad, UnstableAtTwoServersWorth) {
  EXPECT_TRUE(std::isinf(mg2_wait_hokstad(0.2, 10.0, 0.5)));  // a = 2
  EXPECT_FALSE(std::isinf(mg2_wait_hokstad(0.19, 10.0, 0.5)));
}

TEST(Mg2Hokstad, TwoServersBeatOneAtSameTotalLoad) {
  // Pooling two servers must reduce waiting versus one server at half the
  // per-server load... the classic pooling advantage: compare M/G/2 at rate
  // lambda against M/G/1 at rate lambda/2 (same per-server utilization).
  const double xbar = 16.0, cb2 = 0.4;
  for (double lambda : {0.02, 0.05, 0.08, 0.11}) {
    EXPECT_LT(mg2_wait_hokstad(lambda, xbar, cb2), mg1_wait(lambda / 2.0, xbar, cb2))
        << "lambda=" << lambda;
  }
}

TEST(Mgm, ReducesToMg1AtOneServer) {
  EXPECT_NEAR(mgm_wait(1, 0.04, 12.0, 0.6), mg1_wait(0.04, 12.0, 0.6), 1e-12);
}

TEST(Mgm, MatchesHokstadAtTwoServers) {
  for (double lambda : {0.02, 0.06, 0.1}) {
    EXPECT_NEAR(mgm_wait(2, lambda, 16.0, 0.3), mg2_wait_hokstad(lambda, 16.0, 0.3),
                1e-10);
  }
}

TEST(Mgm, MoreServersLessWaitAtFixedTotalRate) {
  const double lambda = 0.1, xbar = 16.0, cb2 = 0.5;
  EXPECT_GT(mgm_wait(2, lambda, xbar, cb2), mgm_wait(3, lambda, xbar, cb2));
  EXPECT_GT(mgm_wait(3, lambda, xbar, cb2), mgm_wait(4, lambda, xbar, cb2));
}

TEST(BlockingProbability, ExactSingleInputCase) {
  // One input feeding one output exclusively: a worm never waits for itself.
  EXPECT_DOUBLE_EQ(blocking_probability(1, 0.1, 0.1, 1.0), 0.0);
}

TEST(BlockingProbability, PaperDownChannelForm) {
  // Eq. 18's factor: 1 - (1/4) lambda_in/lambda_out with m = 1.
  const double p = blocking_probability(1, 0.08, 0.04, 0.25);
  EXPECT_NEAR(p, 1.0 - 0.25 * 2.0, 1e-12);
}

TEST(BlockingProbability, MultiServerUsesTotalRate) {
  // m = 2, lambda_out_total = 2*per-link: P = 1 - (lambda_in/per-link)*R.
  const double p = blocking_probability(2, 0.03, 0.12, 0.5);
  EXPECT_NEAR(p, 1.0 - 2.0 * (0.03 / 0.12) * 0.5, 1e-12);
}

TEST(BlockingProbability, ClampsToZero) {
  EXPECT_DOUBLE_EQ(blocking_probability(2, 1.0, 0.5, 1.0), 0.0);
}

TEST(BlockingProbability, VacuousWhenOutputIdle) {
  EXPECT_DOUBLE_EQ(blocking_probability(1, 0.1, 0.0, 0.5), 1.0);
}

TEST(WormholeWait, DispatchesOnServerCount) {
  const double lambda = 0.02, xbar = 20.0, sf = 16.0;  // rho = 0.4 at m = 1
  EXPECT_NEAR(wormhole_wait(1, lambda, xbar, sf), mg1_wait_wormhole(lambda, xbar, sf),
              1e-12);
  EXPECT_NEAR(wormhole_wait(2, lambda, xbar, sf), mg2_wait_wormhole(lambda, xbar, sf),
              1e-12);
  EXPECT_NEAR(wormhole_wait(3, lambda, xbar, sf),
              mgm_wait_wormhole(3, lambda, xbar, sf), 1e-12);
}

// Property sweep: every kernel is non-negative, finite below saturation and
// infinite past it.
class KernelStability : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(KernelStability, FiniteBelowSaturationInfiniteAbove) {
  const auto [servers, rho] = GetParam();
  const double xbar = 24.0;
  const double lambda = rho * servers / xbar;
  const double w = wormhole_wait(servers, lambda, xbar, 16.0);
  if (rho < 1.0) {
    EXPECT_TRUE(std::isfinite(w)) << "m=" << servers << " rho=" << rho;
    EXPECT_GE(w, 0.0);
  } else {
    EXPECT_TRUE(std::isinf(w)) << "m=" << servers << " rho=" << rho;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelStability,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0.05, 0.35, 0.65, 0.95, 1.0, 1.2)));

}  // namespace
}  // namespace wormnet::queueing

// Bursty-arrivals model-vs-simulator conformance (the arrivals subsystem's
// acceptance contract): for Batch and MMPP-2 injection on the level-3
// butterfly fat-tree (N = 64) and the 4-cube (N = 16), the bursty-aware
// model — QNA C_a² propagation + Allen–Cunneen G/G/m waits + the intra-batch
// residual — must track the simulator driven by the SAME ArrivalSpec within
// 20% relative latency error at 20% and 50% of the model's own saturation.
//
// The companion table (bench/ext_bursty_arrivals.cpp, recorded in
// EXPERIMENTS.md) shows the measured errors are far tighter (≤ ~10%), and —
// the point of the subsystem — that the Poisson-assumption model is ~70%
// optimistic under batch traffic at the same loads, which this suite pins
// with a lower bound on the Poisson model's undershoot.
//
// Every cell uses a fixed seed; like the main conformance table, the whole
// suite is one shared SimEngine campaign computed lazily on first use.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "core/traffic_model.hpp"
#include "harness/sim_engine.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/hypercube.hpp"

namespace wormnet {
namespace {

enum class Topo { FatTree3, Hypercube4 };

struct Cell {
  Topo topo;
  arrivals::ArrivalSpec process;
  // Relative latency error bounds at 20% / 50% of model saturation (the
  // acceptance criterion: <= 0.20 everywhere).
  double bound20;
  double bound50;
};

const Cell kCells[] = {
    {Topo::FatTree3, arrivals::ArrivalSpec::batch(4.0), 0.20, 0.20},
    {Topo::FatTree3, arrivals::ArrivalSpec::mmpp2(0.3, 0.1, 8.0), 0.20, 0.20},
    {Topo::Hypercube4, arrivals::ArrivalSpec::batch(4.0), 0.20, 0.20},
    {Topo::Hypercube4, arrivals::ArrivalSpec::mmpp2(0.3, 0.1, 8.0), 0.20, 0.20},
};
constexpr std::size_t kNumCells = std::size(kCells);
constexpr double kFracs[2] = {0.2, 0.5};

std::unique_ptr<topo::Topology> make_topology(Topo t) {
  switch (t) {
    case Topo::FatTree3:
      return std::make_unique<topo::ButterflyFatTree>(3);
    case Topo::Hypercube4:
      return std::make_unique<topo::Hypercube>(4);
  }
  return nullptr;
}

class Campaign {
 public:
  struct CellData {
    std::string name;
    double model_sat = 0.0;  ///< λ₀* of the bursty-tuned model
    std::array<core::LatencyEstimate, 2> model{};    ///< bursty-aware
    std::array<core::LatencyEstimate, 2> poisson{};  ///< untuned, same λ
    std::array<sim::SimResult, 2> sim{};
  };

  static const Campaign& get() {
    static Campaign instance;
    return instance;
  }

  const CellData& cell(std::size_t i) const { return cells_[i]; }

 private:
  Campaign() {
    for (Topo t : {Topo::FatTree3, Topo::Hypercube4}) {
      topos_.push_back(make_topology(t));
    }
    const auto topo_of = [&](Topo t) -> const topo::Topology* {
      return topos_[static_cast<std::size_t>(t)].get();
    };

    core::SolveOptions opts;
    opts.worm_flits = 16.0;
    cells_.resize(kNumCells);
    std::vector<harness::SimCell> sim_cells;
    for (std::size_t i = 0; i < kNumCells; ++i) {
      const Cell& cell = kCells[i];
      core::GeneralModel model = core::build_traffic_model(
          *topo_of(cell.topo), traffic::TrafficSpec::uniform(), opts);
      CellData& out = cells_[i];
      const core::GeneralModel poisson = model;  // untuned baseline
      model.set_injection_process(cell.process);
      out.name = model.name() + "/" + cell.process.name();
      out.model_sat = core::model_saturation_rate(model, opts);
      for (std::size_t j = 0; j < 2; ++j) {
        const double lam = out.model_sat * kFracs[j];
        out.model[j] = core::model_latency(model, lam, opts);
        out.poisson[j] = core::model_latency(poisson, lam, opts);

        harness::SimCell sc;
        sc.topology = topo_of(cell.topo);
        sc.cfg.load_flits = lam * 16.0;
        sc.cfg.worm_flits = 16;
        sc.cfg.seed = 2000 + static_cast<std::uint64_t>(i);
        sc.cfg.arrival_process = cell.process;
        sc.cfg.warmup_cycles = 8000;
        sc.cfg.measure_cycles = 40000;
        sc.cfg.max_cycles = 600000;
        sc.cfg.channel_stats = false;
        sim_cells.push_back(std::move(sc));
      }
    }

    harness::SimEngine engine;
    const std::vector<harness::SimCellResult> results = engine.run_cells(sim_cells);
    for (std::size_t i = 0; i < kNumCells; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        cells_[i].sim[j] = results[i * 2 + j].runs.front();
      }
    }
  }

  std::vector<std::unique_ptr<topo::Topology>> topos_;
  std::vector<CellData> cells_;
};

class BurstyConformance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BurstyConformance, LatencyWithin20PercentAt20And50OfSaturation) {
  const Cell& cell = kCells[GetParam()];
  const Campaign::CellData& data = Campaign::get().cell(GetParam());
  ASSERT_GT(data.model_sat, 0.0);

  const double bounds[] = {cell.bound20, cell.bound50};
  for (std::size_t j = 0; j < 2; ++j) {
    ASSERT_TRUE(data.model[j].stable) << data.name << " frac=" << kFracs[j];
    const sim::SimResult& r = data.sim[j];
    ASSERT_TRUE(r.completed) << data.name << " frac=" << kFracs[j];
    ASSERT_FALSE(r.saturated) << data.name << " frac=" << kFracs[j];
    ASSERT_GT(r.latency.count(), 0);
    const double sim_latency = r.latency.mean();
    const double rel_err =
        std::abs(data.model[j].latency - sim_latency) / sim_latency;
    EXPECT_LE(rel_err, bounds[j])
        << data.name << " frac=" << kFracs[j]
        << ": model=" << data.model[j].latency << " sim=" << sim_latency;
  }
}

TEST_P(BurstyConformance, PoissonModelIsOptimisticUnderBatchTraffic) {
  // The motivating claim: assuming Poisson under batch injection undershoots
  // the simulated latency by far more than the bursty model's error band.
  const Cell& cell = kCells[GetParam()];
  if (cell.process.batch_residual() == 0.0) return;  // batch cells only
  const Campaign::CellData& data = Campaign::get().cell(GetParam());
  for (std::size_t j = 0; j < 2; ++j) {
    const double sim_latency = data.sim[j].latency.mean();
    EXPECT_LT(data.poisson[j].latency, 0.6 * sim_latency)
        << data.name << " frac=" << kFracs[j];
  }
}

std::string cell_name(const ::testing::TestParamInfo<std::size_t>& info) {
  const Cell& c = kCells[info.param];
  std::string name =
      c.topo == Topo::FatTree3 ? "FatTree3" : "Hypercube4";
  name += c.process.batch_residual() > 0.0 ? "Batch4" : "Mmpp2";
  return name;
}

INSTANTIATE_TEST_SUITE_P(Cells, BurstyConformance,
                         ::testing::Range<std::size_t>(0, kNumCells),
                         cell_name);

}  // namespace
}  // namespace wormnet

// Accounting tests: conservation, per-channel rates against the paper's
// Eq. 14/15, utilizations, throughput and distance statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fattree_model.hpp"
#include "sim/simulator.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/channels.hpp"

namespace wormnet::sim {
namespace {

SimConfig stable_config() {
  SimConfig cfg;
  cfg.load_flits = 0.03;
  cfg.worm_flits = 16;
  cfg.seed = 21;
  cfg.warmup_cycles = 5'000;
  cfg.measure_cycles = 60'000;
  cfg.max_cycles = 600'000;
  cfg.channel_stats = true;
  return cfg;
}

TEST(SimStats, EveryTaggedMessageDeliveredAndCounted) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg = stable_config();
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(r.saturated);
  // Tagged messages == messages generated inside the window, and all of
  // them contributed a latency sample.
  EXPECT_EQ(r.latency.count(), r.generated_messages);
  EXPECT_GT(r.generated_messages, 1'000);
}

TEST(SimStats, ThroughputMatchesOfferedLoadWhenStable) {
  topo::ButterflyFatTree ft(3);
  SimNetwork net(ft);
  SimConfig cfg = stable_config();
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.throughput_flits_per_pe, cfg.load_flits, cfg.load_flits * 0.08);
}

TEST(SimStats, ChannelRatesMatchEq14) {
  // The measured per-link message rates, aggregated by (level, direction),
  // must reproduce λ⟨l,l+1⟩ = λ₀ P↑_l 2^l — the paper's §3.2 —
  // and the down rates must mirror the up rates (Eq. 15).
  topo::ButterflyFatTree ft(3);
  SimNetwork net(ft);
  SimConfig cfg = stable_config();
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);

  core::FatTreeModel model({.levels = 3, .worm_flits = 16.0});
  const double lambda0 = cfg.load_flits / cfg.worm_flits;
  const topo::ChannelTable ct(ft);
  const double window = static_cast<double>(cfg.measure_cycles);

  std::vector<double> up_rate(3, 0.0), down_rate(3, 0.0);
  std::vector<int> up_links(3, 0), down_links(3, 0);
  for (int ch = 0; ch < ct.size(); ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    const int lf = ft.node_level(dc.src_node);
    const int lt = ft.node_level(dc.dst_node);
    const double rate = static_cast<double>(
                            r.channels[static_cast<std::size_t>(ch)].worms) /
                        window;
    if (lt > lf) {
      up_rate[static_cast<std::size_t>(lf)] += rate;
      ++up_links[static_cast<std::size_t>(lf)];
    } else {
      down_rate[static_cast<std::size_t>(lt)] += rate;
      ++down_links[static_cast<std::size_t>(lt)];
    }
  }
  for (int l = 0; l < 3; ++l) {
    const double expected = model.rate_up(l, lambda0);
    const double measured_up = up_rate[static_cast<std::size_t>(l)] /
                               up_links[static_cast<std::size_t>(l)];
    const double measured_down = down_rate[static_cast<std::size_t>(l)] /
                                 down_links[static_cast<std::size_t>(l)];
    EXPECT_NEAR(measured_up, expected, expected * 0.05) << "up level " << l;
    EXPECT_NEAR(measured_down, expected, expected * 0.05) << "down level " << l;
  }
}

TEST(SimStats, ChannelUtilizationBelowOneWhenStable) {
  topo::ButterflyFatTree ft(3);
  SimNetwork net(ft);
  SimConfig cfg = stable_config();
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);
  const double window = static_cast<double>(cfg.measure_cycles);
  for (const ChannelStat& st : r.channels) {
    EXPECT_LE(static_cast<double>(st.busy_cycles), window * 1.0 + 1);
    EXPECT_LT(static_cast<double>(st.busy_cycles) / window, 0.999);
  }
}

TEST(SimStats, MeanDistanceMatchesTopology) {
  topo::ButterflyFatTree ft(3);
  SimNetwork net(ft);
  SimConfig cfg = stable_config();
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.distance.mean(), ft.mean_distance(), ft.mean_distance() * 0.02);
}

TEST(SimStats, InjectionServiceAtLeastWormLength) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg = stable_config();
  Simulator s(net, cfg);
  const SimResult r = s.run();
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.inj_service.min(), 16.0);
  EXPECT_GE(r.latency.min(), 16.0 + 2.0 - 1.0);
}

TEST(SimStats, OverloadedRunReportsSaturation) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg;
  cfg.load_flits = 0.5;  // way past capacity
  cfg.worm_flits = 16;
  cfg.seed = 22;
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 5'000;
  cfg.max_cycles = 30'000;  // don't wait for the backlog to drain
  Simulator s(net, cfg);
  const SimResult r = s.run();
  EXPECT_TRUE(r.saturated);
  // Delivered throughput is pinned near capacity, far below offered.
  EXPECT_LT(r.throughput_flits_per_pe, 0.4);
  EXPECT_GT(r.throughput_flits_per_pe, 0.05);
}

TEST(SimStats, ChannelStatsCanBeDisabled) {
  topo::ButterflyFatTree ft(2);
  SimNetwork net(ft);
  SimConfig cfg = stable_config();
  cfg.channel_stats = false;
  cfg.measure_cycles = 5'000;
  Simulator s(net, cfg);
  const SimResult r = s.run();
  EXPECT_TRUE(r.channels.empty());
}

}  // namespace
}  // namespace wormnet::sim

// Coverage for the supporting infrastructure: the structural verifier's
// NEGATIVE cases (it must actually catch broken topologies), the SimNetwork
// flattening, and the logger.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/network.hpp"
#include "topo/butterfly_fattree.hpp"
#include "topo/graph_checks.hpp"
#include "topo/mesh.hpp"
#include "util/log.hpp"

namespace wormnet {
namespace {

// A deliberately broken 2-processor topology for exercising the verifier.
class BrokenTopology final : public topo::Topology {
 public:
  enum class Defect { UnpairedLink, WrongDistance, NonMinimalRoute };
  explicit BrokenTopology(Defect defect) : defect_(defect) {}

  std::string name() const override { return "broken"; }
  int num_nodes() const override { return 3; }  // 2 procs + 1 switch
  int num_processors() const override { return 2; }
  topo::NodeKind kind(int node) const override {
    return node < 2 ? topo::NodeKind::Processor : topo::NodeKind::Switch;
  }
  int num_ports(int node) const override { return node < 2 ? 1 : 2; }
  int neighbor(int node, int port) const override {
    if (node < 2) return 2;
    // Switch port p connects processor p — unless simulating a bad pairing.
    if (defect_ == Defect::UnpairedLink && port == 1) return 0;  // mismatched
    return port;
  }
  int neighbor_port(int node, int) const override {
    return node < 2 ? node : 0;  // proc p sits on switch port p... port back is 0
  }
  topo::RouteOptions route(int node, int dest) const override {
    topo::RouteOptions out;
    if (node < 2) {
      if (node != dest) out.add(0);
      return out;
    }
    if (defect_ == Defect::NonMinimalRoute) {
      out.add(1 - dest);  // points AWAY from the destination
    } else {
      out.add(dest);
    }
    return out;
  }
  int distance(int s, int d) const override {
    if (s == d) return 0;
    return defect_ == Defect::WrongDistance ? 5 : 2;
  }
  double mean_distance() const override { return 2.0; }

 private:
  Defect defect_;
};

TEST(GraphChecks, DetectsUnpairedLinks) {
  BrokenTopology t(BrokenTopology::Defect::UnpairedLink);
  const topo::VerifyReport report = topo::verify_topology(t);
  EXPECT_FALSE(report.ok());
}

TEST(GraphChecks, DetectsWrongDistances) {
  BrokenTopology t(BrokenTopology::Defect::WrongDistance);
  const topo::VerifyReport report = topo::verify_topology(t);
  ASSERT_FALSE(report.ok());
  bool mentions_distance = false;
  for (const auto& v : report.violations)
    if (v.find("distance") != std::string::npos) mentions_distance = true;
  EXPECT_TRUE(mentions_distance);
}

TEST(GraphChecks, DetectsNonMinimalRoutes) {
  BrokenTopology t(BrokenTopology::Defect::NonMinimalRoute);
  const topo::VerifyReport report = topo::verify_topology(t);
  EXPECT_FALSE(report.ok());
}

TEST(GraphChecks, MessageCapRespected) {
  BrokenTopology t(BrokenTopology::Defect::WrongDistance);
  const topo::VerifyReport report = topo::verify_topology(t, /*max_messages=*/1);
  EXPECT_EQ(report.violations.size(), 1u);
}

TEST(SimNetwork, FlattensFatTreeStructure) {
  topo::ButterflyFatTree ft(2);
  sim::SimNetwork net(ft);
  const topo::ChannelTable& ct = net.channels();
  EXPECT_EQ(net.num_channels(), ct.size());
  // Every processor's injection channel starts at the processor.
  for (int p = 0; p < ft.num_processors(); ++p) {
    const int inj = net.injection_channel(p);
    EXPECT_EQ(ct.at(inj).src_node, p);
    EXPECT_FALSE(net.channel(inj).dst_is_processor);
  }
  // The two up channels of a leaf switch share one bundle; down channels
  // have distinct singleton bundles.
  const int sw = ft.switch_id(1, 0);
  const int up0 = ct.from(sw, topo::ButterflyFatTree::kParentPort0);
  const int up1 = ct.from(sw, topo::ButterflyFatTree::kParentPort1);
  EXPECT_EQ(net.channel(up0).bundle, net.channel(up1).bundle);
  EXPECT_EQ(net.bundle(net.channel(up0).bundle).num_channels, 2);
  const int d0 = ct.from(sw, 0);
  const int d1 = ct.from(sw, 1);
  EXPECT_NE(net.channel(d0).bundle, net.channel(d1).bundle);
  EXPECT_EQ(net.bundle(net.channel(d0).bundle).num_channels, 1);
  // bundle_of_port round-trips.
  EXPECT_EQ(net.bundle_of_port(sw, topo::ButterflyFatTree::kParentPort1),
            net.channel(up1).bundle);
}

TEST(SimNetwork, EveryChannelBelongsToExactlyOneBundle) {
  topo::Mesh m(4, 2);
  sim::SimNetwork net(m);
  std::vector<int> seen(static_cast<std::size_t>(net.num_channels()), 0);
  for (int b = 0; b < net.num_bundles(); ++b) {
    const sim::BundleInfo& bi = net.bundle(b);
    for (int i = 0; i < bi.num_channels; ++i) {
      const int ch = bi.channel_ids[static_cast<std::size_t>(i)];
      ++seen[static_cast<std::size_t>(ch)];
      EXPECT_EQ(net.channel(ch).bundle, b);
    }
  }
  for (int ch = 0; ch < net.num_channels(); ++ch)
    EXPECT_EQ(seen[static_cast<std::size_t>(ch)], 1) << "ch=" << ch;
}

TEST(Log, ThresholdFilters) {
  const util::LogLevel old = util::log_level();
  util::set_log_level(util::LogLevel::Error);
  EXPECT_EQ(util::log_level(), util::LogLevel::Error);
  // A filtered line must not crash and must not emit (can't capture stderr
  // portably here; this exercises the no-emit path).
  WORMNET_LOG(Debug) << "invisible " << 42;
  util::set_log_level(util::LogLevel::Off);
  WORMNET_LOG(Error) << "also invisible";
  util::set_log_level(old);
  SUCCEED();
}

TEST(Log, LevelOrdering) {
  EXPECT_LT(static_cast<int>(util::LogLevel::Debug),
            static_cast<int>(util::LogLevel::Info));
  EXPECT_LT(static_cast<int>(util::LogLevel::Info),
            static_cast<int>(util::LogLevel::Warn));
  EXPECT_LT(static_cast<int>(util::LogLevel::Warn),
            static_cast<int>(util::LogLevel::Error));
}

}  // namespace
}  // namespace wormnet

// model_vs_sim — full latency-sweep comparison on one configuration.
//
// Reproduces a single series of the paper's Figure 3 for any network size
// and worm length, printing model and simulator latencies side by side with
// the model's error summarized at the end.  The model side runs through the
// SweepEngine; the simulator points run across the thread pool.
//
//   ./model_vs_sim [--levels=3] [--worm=16] [--points=10]
//                  [--warmup=10000] [--measure=40000] [--seed=1]
#include <cstdio>
#include <iostream>

#include "wormnet.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  const int points = static_cast<int>(args.get_int("points", 10));

  core::FatTreeModel model(
      {.levels = levels, .worm_flits = static_cast<double>(worm)});
  harness::SweepEngine engine;
  const double saturation = engine.saturation_load(model);

  harness::SweepConfig sweep;
  for (int i = 1; i <= points; ++i)
    sweep.loads.push_back(saturation * 0.95 * i / points);
  sweep.worm_flits = worm;
  sweep.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  sweep.warmup_cycles = args.get_int("warmup", 10'000);
  sweep.measure_cycles = args.get_int("measure", 40'000);

  topo::ButterflyFatTree ft(levels);
  std::printf("sweeping %s, %d-flit worms, %d load points up to %.4f"
              " flits/cycle/PE\n",
              ft.name().c_str(), worm, points, sweep.loads.back());
  const auto rows = harness::compare_latency(ft, model, sweep, &engine);
  harness::comparison_table(rows).print(std::cout);
  std::printf("\nmean |model-sim| error over stable points: %.2f%%\n",
              harness::mean_abs_pct_error(rows));
  return 0;
}

// latency_distribution — beyond the paper's mean-latency curves: full
// latency distributions from the simulator, per ARRIVAL PROCESS, with tail
// percentiles per load.
//
// The analytical model predicts means (Eq. 2, plus the bursty-arrivals
// C_a² extension); this example shows what the mean hides — the P99 grows
// much faster than the mean near saturation, and burstier injection
// (batch, MMPP-2) fattens the tail long before it moves the mean much.
// That gap is exactly what latency-SLO capacity planning has to price in.
//
// All runs execute as ONE harness::SimEngine campaign (shared SimNetwork,
// fanned across the thread pool); the model column comes from the same
// traffic-aware model retuned per process via set_injection_process.
//
//   ./latency_distribution [--levels=3] [--worm=16] [--seed=17]
#include <cstdio>
#include <iostream>
#include <optional>

#include "wormnet.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 17));
  harness::reject_unknown_flags(args);

  topo::ButterflyFatTree ft(levels);
  core::SolveOptions opts;
  opts.worm_flits = static_cast<double>(worm);
  const core::GeneralModel base =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform(), opts);

  const std::vector<arrivals::ArrivalSpec> processes = {
      arrivals::ArrivalSpec::poisson(),
      arrivals::ArrivalSpec::batch(4.0),
      arrivals::ArrivalSpec::mmpp2(0.3, 0.1, 8.0),
  };
  const double fracs[] = {0.2, 0.4, 0.6, 0.8, 0.9};

  // One campaign: per process, one histogram-collecting cell per load
  // fraction of THAT process's model saturation.
  harness::SweepEngine sweeps;
  harness::SimEngine engine;
  std::vector<core::GeneralModel> models;  // keep alive for the sweep cache
  models.reserve(processes.size());
  std::vector<harness::SimCell> cells;
  for (const arrivals::ArrivalSpec& process : processes) {
    models.push_back(base);
    models.back().set_injection_process(process);
    const double sat = sweeps.saturation_load(models.back());
    for (double frac : fracs) {
      harness::SimCell cell;
      cell.topology = &ft;
      cell.cfg.load_flits = sat * frac;
      cell.cfg.worm_flits = worm;
      cell.cfg.seed = seed;
      cell.cfg.arrival_process = process;
      cell.cfg.warmup_cycles = 8'000;
      cell.cfg.measure_cycles = 40'000;
      cell.cfg.max_cycles = 500'000;
      cell.cfg.latency_histogram = true;
      cell.cfg.histogram_max = 4096.0;
      cell.cfg.channel_stats = false;
      cell.label = process.name();
      cells.push_back(std::move(cell));
    }
  }
  const std::vector<harness::SimCellResult> results = engine.run_cells(cells);

  std::optional<util::Histogram> knee_hist;  // burstiest process at 90%
  for (std::size_t p = 0; p < processes.size(); ++p) {
    std::printf("%s%s, %s arrivals (eff Ca^2 = %.2f), %d-flit worms\n",
                p == 0 ? "" : "\n", ft.name().c_str(),
                processes[p].name().c_str(), processes[p].effective_ca2(), worm);
    util::Table t({"load(flits/cyc)", "model mean", "sim mean", "P50", "P95",
                   "P99", "max"});
    t.set_precision(0, 4);
    for (std::size_t f = 0; f < std::size(fracs); ++f) {
      const harness::SimCellResult& cell = results[p * std::size(fracs) + f];
      const sim::SimResult& r = cell.runs.front();
      const double load = cells[p * std::size(fracs) + f].cfg.load_flits;
      const util::Histogram& h = *r.latency_hist;
      t.add_row({load, sweeps.evaluate_load(models[p], load).latency,
                 r.latency.mean(), h.quantile(0.50), h.quantile(0.95),
                 h.quantile(0.99), r.latency.max()});
      if (fracs[f] == 0.9 && p + 1 == processes.size()) knee_hist = h;
    }
    t.print(std::cout);
  }

  if (knee_hist) {
    std::printf("\n%s latency histogram at 90%% of its saturation:\n%s",
                processes.back().name().c_str(), knee_hist->ascii(48).c_str());
  }
  std::printf(
      "\n(the model predicts the mean; the P95/P99 columns quantify the tail\n"
      " above it, which burstier arrival processes fatten fastest)\n");
  return 0;
}

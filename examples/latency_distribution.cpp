// latency_distribution — beyond the paper's mean-latency curves: the full
// latency distribution from the simulator, with tail percentiles per load.
//
// The analytical model predicts means (Eq. 2); this example shows what the
// mean hides — the P99 grows much faster than the mean as the network
// approaches saturation, which matters for latency-SLO capacity planning.
//
//   ./latency_distribution [--levels=3] [--worm=16]
#include <cstdio>
#include <iostream>

#include "wormnet.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));
  const int worm = static_cast<int>(args.get_int("worm", 16));

  topo::ButterflyFatTree ft(levels);
  sim::SimNetwork net(ft);
  core::FatTreeModel model(
      {.levels = levels, .worm_flits = static_cast<double>(worm)});
  const double sat = model.saturation_load();

  util::Table t({"load(flits/cyc)", "model mean", "sim mean", "P50", "P95",
                 "P99", "max"});
  t.set_precision(0, 4);

  std::optional<util::Histogram> knee_hist;
  for (double frac : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    sim::SimConfig cfg;
    cfg.load_flits = sat * frac;
    cfg.worm_flits = worm;
    cfg.seed = 17;
    cfg.warmup_cycles = 8'000;
    cfg.measure_cycles = 40'000;
    cfg.max_cycles = 500'000;
    cfg.latency_histogram = true;
    cfg.histogram_max = 2048.0;
    cfg.channel_stats = false;
    sim::Simulator s(net, cfg);
    const sim::SimResult r = s.run();
    const util::Histogram& h = *r.latency_hist;
    t.add_row({cfg.load_flits, model.evaluate_load(cfg.load_flits).latency,
               r.latency.mean(), h.quantile(0.50), h.quantile(0.95),
               h.quantile(0.99), r.latency.max()});
    if (frac == 0.9) knee_hist = h;
  }
  std::printf("latency distribution, %s, %d-flit worms\n", ft.name().c_str(), worm);
  t.print(std::cout);

  if (knee_hist) {
    std::printf("\nhistogram at 90%% of saturation:\n%s",
                knee_hist->ascii(48).c_str());
  }
  std::printf("\n(the model predicts the mean; the tail above it is what the"
              " P99 column quantifies)\n");
  return 0;
}

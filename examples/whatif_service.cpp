// whatif_service — a realistic operator session against the resident
// what-if query engine.
//
// The paper's payoff is analytical speed: answers in microseconds where
// simulation takes minutes.  The QueryEngine is the product form of that —
// models stay RESIDENT, and operator questions ("the hotspot moved", "load
// +20%", "lanes 2 → 4", "arrivals turned bursty") are answered by the
// cheapest applicable delta (retune) instead of a rebuild, with repeated
// questions served from cache.
//
// This session runs 200 mixed what-ifs against an N = 256 fat-tree baseline
// and prints per-query latency by cost class plus the aggregate queries/sec
// — the number a capacity-planning inner loop (PAPERS.md, Solnushkin) cares
// about.
//
// --metrics publishes the engine's counters into an obs::Registry after the
// session, prints the live dashboard, and dumps the snapshot next to the
// binary (whatif_metrics.json / .prom) — the service-metering story.
//
//   ./whatif_service [--levels=4] [--queries=200] [--threads=0] [--metrics]
#include <chrono>
#include <cstdio>
#include <vector>

#include "wormnet.hpp"

namespace {

const char* cost_name(wormnet::harness::QueryCost c) {
  switch (c) {
    case wormnet::harness::QueryCost::Memoized: return "memoized";
    case wormnet::harness::QueryCost::Reevaluate: return "reevaluate";
    case wormnet::harness::QueryCost::Retune: return "retune";
    case wormnet::harness::QueryCost::Rebuild: return "rebuild";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wormnet;
  using Clock = std::chrono::steady_clock;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 4));
  const int num_queries = static_cast<int>(args.get_int("queries", 200));
  const unsigned threads =
      static_cast<unsigned>(args.get_int("threads", 0));
  const bool metrics = args.get_bool("metrics", false);
  harness::reject_unknown_flags(args);

  topo::ButterflyFatTree ft(levels);
  std::printf("what-if service: butterfly fat-tree, N = %d, uniform baseline\n",
              ft.num_processors());

  harness::QueryEngine::Options opts;
  opts.threads = threads;
  opts.build.collapse = core::CollapseMode::Auto;  // cheapest-path planning
  const auto t_build0 = Clock::now();
  harness::QueryEngine engine(ft, traffic::TrafficSpec::uniform(), opts);
  const double build_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t_build0)
          .count();
  std::printf("resident baseline built in %.2f ms (%s)\n\n", build_ms,
              engine.resident_model(0).collapsed() ? "symmetry-collapsed"
                                                   : "dense");

  // The operator session: a mix the axes were built for.  Fractions, loads
  // and lane counts cycle so some questions repeat exactly (a real console
  // re-asks) and the rest share retuned variants.
  std::vector<harness::WhatIfQuery> session;
  session.reserve(static_cast<std::size_t>(num_queries));
  for (int i = 0; i < num_queries; ++i) {
    harness::WhatIfQuery q;
    q.lambda0 = 0.0008 + 0.0003 * (i % 5);
    switch (i % 10) {
      case 0: case 1: case 2: case 3:  // "the hotspot tightened/moved"
        q.traffic = traffic::TrafficSpec::hotspot(0.05 + 0.05 * (i % 8), 0);
        break;
      case 4: case 5:  // "load +20% / -10%"
        q.load_scale = i % 4 == 0 ? 1.2 : 0.9;
        break;
      case 6:  // "what if we pay for 4 virtual channels?"
        q.lanes = 4;
        q.metric = harness::QueryMetric::Saturation;
        break;
      case 7:  // "arrivals turned bursty"
        q.arrival = arrivals::ArrivalSpec::batch(4.0);
        break;
      case 8:  // "where is the load sitting?"
        q.metric = harness::QueryMetric::ClassBreakdown;
        break;
      default:  // plain re-read of the baseline curve
        break;
    }
    session.push_back(q);
  }

  const auto t0 = Clock::now();
  const auto results = engine.run_batch(session);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // Per-cost-class accounting.
  int count[4] = {0, 0, 0, 0};
  for (const auto& r : results) count[static_cast<int>(r.cost)]++;
  util::Table table({"cost class", "queries", "share(%)"});
  table.set_precision(1, 0);
  table.set_precision(2, 1);
  for (int c = 0; c < 4; ++c) {
    table.add_row({cost_name(static_cast<harness::QueryCost>(c)),
                   static_cast<double>(count[c]),
                   100.0 * count[c] / static_cast<double>(results.size())});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("session: %zu queries in %.2f ms  →  %.0f queries/s "
              "(%.1f µs/query mean)\n",
              results.size(), wall_ms, 1000.0 * results.size() / wall_ms,
              1000.0 * wall_ms / results.size());
  std::printf("variants prepared: %llu   sweep cache hits/misses: %llu/%llu\n\n",
              static_cast<unsigned long long>(engine.variants_prepared()),
              static_cast<unsigned long long>(engine.sweep_cache_hits()),
              static_cast<unsigned long long>(engine.sweep_cache_misses()));

  // A few sample answers, the way a console would render them.
  std::printf("sample answers:\n");
  for (std::size_t i = 0; i < results.size() && i < 8; ++i) {
    const auto& r = results[i];
    switch (r.metric) {
      case harness::QueryMetric::Latency:
        if (r.est.stable)
          std::printf("  q%-3zu [%-10s] latency = %8.3f cycles at λ₀ = %.4f\n",
                      i, cost_name(r.cost), r.est.latency, session[i].lambda0);
        else
          std::printf("  q%-3zu [%-10s] SATURATED at λ₀ = %.4f\n", i,
                      cost_name(r.cost), session[i].lambda0);
        break;
      case harness::QueryMetric::Saturation:
        std::printf("  q%-3zu [%-10s] saturation λ₀* = %.5f msg/cycle/PE\n",
                    i, cost_name(r.cost), r.saturation_rate);
        break;
      case harness::QueryMetric::ClassBreakdown:
        std::printf("  q%-3zu [%-10s] %zu channel classes, max ρ = %.3f\n", i,
                    cost_name(r.cost), r.breakdown.size(),
                    [&] {
                      double m = 0.0;
                      for (const auto& row : r.breakdown)
                        m = std::max(m, row.utilization);
                      return m;
                    }());
        break;
    }
  }

  // Ask the whole session again: the result cache should absorb it.
  const auto t1 = Clock::now();
  const auto replay = engine.run_batch(session);
  const double replay_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t1).count();
  int memoized = 0;
  for (const auto& r : replay)
    memoized += r.cost == harness::QueryCost::Memoized;
  std::printf("\nreplayed session: %d/%zu memoized in %.2f ms  →  %.0f queries/s\n",
              memoized, replay.size(), replay_ms,
              1000.0 * replay.size() / replay_ms);

  if (metrics) {
    // The live dashboard: publish everything the engine metered into one
    // registry, render the snapshot as a table, and dump it for scraping.
    obs::Registry reg;
    engine.publish_metrics(reg, "whatif");
    const obs::Snapshot snap = reg.snapshot();
    util::Table dash({"metric", "labels", "value"});
    dash.set_precision(2, 3);
    for (const auto& e : snap.entries)
      dash.add_row({e.name, e.labels, e.value});
    std::printf("\n-- metrics dashboard (%zu series) --\n%s\n",
                snap.entries.size(), dash.to_string().c_str());
    const struct { const char* path; std::string text; } dumps[] = {
        {"whatif_metrics.json", obs::to_json(snap)},
        {"whatif_metrics.prom", obs::to_prometheus(snap)}};
    for (const auto& d : dumps) {
      if (std::FILE* f = std::fopen(d.path, "wb")) {
        std::fwrite(d.text.data(), 1, d.text.size(), f);
        std::fclose(f);
        std::printf("wrote %s (%zu bytes)\n", d.path, d.text.size());
      }
    }
  }
  return 0;
}

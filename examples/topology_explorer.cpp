// topology_explorer — inspect the structures wormnet models.
//
// Prints the level census and wiring spot-checks of a butterfly fat-tree
// (the textual twin of the paper's Figure 2), its distance distribution,
// and the same summary for a hypercube and a mesh for comparison.
//
//   ./topology_explorer [--levels=3] [--cube=6] [--mesh=8]
#include <cstdio>
#include <iostream>

#include "wormnet.hpp"

namespace {

void distance_summary(const wormnet::topo::Topology& topo) {
  using namespace wormnet;
  const int procs = topo.num_processors();
  util::Histogram hist(0.0, 2.0 * topo.mean_distance() + 4.0, 16);
  util::RunningStats stats;
  const int stride = procs > 128 ? procs / 128 : 1;
  for (int s = 0; s < procs; s += stride)
    for (int d = 0; d < procs; ++d) {
      if (s == d) continue;
      const int dist = topo.distance(s, d);
      hist.add(dist);
      stats.add(dist);
    }
  std::printf("  distance over sampled pairs: mean %.3f (closed form %.3f),"
              " min %.0f, max %.0f\n",
              stats.mean(), topo.mean_distance(), stats.min(), stats.max());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));

  topo::ButterflyFatTree ft(levels);
  std::printf("=== %s ===\n", ft.name().c_str());
  util::Table census({"level", "switches", "links down to level below"});
  census.set_precision(0, 0);
  census.set_precision(1, 0);
  census.set_precision(2, 0);
  census.add_row({0.0, static_cast<double>(ft.num_processors()),
                  std::string("(processors)")});
  for (int l = 1; l <= levels; ++l) {
    census.add_row({static_cast<double>(l), static_cast<double>(ft.switches_at(l)),
                    static_cast<double>(ft.links_between(l - 1))});
  }
  census.print(std::cout);

  std::printf("\nwiring spot checks (paper §3.1):\n");
  std::printf("  processor 5 -> child %d of S(1, %d)\n", ft.neighbor_port(5, 0),
              ft.switch_addr(ft.neighbor(5, 0)));
  if (levels >= 2) {
    const int sw = ft.switch_id(1, 1);
    std::printf("  S(1,1) parents: S(2,%d) and S(2,%d), both at child index %d\n",
                ft.switch_addr(ft.neighbor(sw, topo::ButterflyFatTree::kParentPort0)),
                ft.switch_addr(ft.neighbor(sw, topo::ButterflyFatTree::kParentPort1)),
                ft.neighbor_port(sw, topo::ButterflyFatTree::kParentPort0));
  }
  distance_summary(ft);

  const topo::VerifyReport report = topo::verify_topology(ft);
  std::printf("  structural verification: %s\n",
              report.ok() ? "OK" : report.violations[0].c_str());

  topo::Hypercube hc(static_cast<int>(args.get_int("cube", 6)));
  std::printf("\n=== %s ===\n", hc.name().c_str());
  distance_summary(hc);

  const int k = static_cast<int>(args.get_int("mesh", 8));
  topo::Mesh mesh(k, 2);
  std::printf("\n=== %s ===\n", mesh.name().c_str());
  distance_summary(mesh);

  std::printf("\nroute redundancy example in the fat-tree (both parents usable"
              " going up):\n");
  const topo::RouteOptions up = ft.route(ft.switch_id(1, 0), ft.num_processors() - 1);
  std::printf("  S(1,0) -> P(%d): %d candidate up-links\n", ft.num_processors() - 1,
              up.size());
  return 0;
}

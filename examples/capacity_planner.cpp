// capacity_planner — a task the analytical model is uniquely good at.
//
// "How much uniform traffic can each network size sustain while keeping
// average latency under a budget?"  Answering this with simulation takes a
// bisection of multi-second runs per cell; the model answers the whole
// table in milliseconds.  This is the paper's practical payoff: use the
// validated model for design-space exploration, not the simulator.
//
//   ./capacity_planner [--budget=2.0] [--worms=16,32,64] [--max-levels=6]
//
// The budget is a multiple of the zero-load latency (e.g. 2.0 means "stay
// under twice the uncontended latency").
#include <cstdio>
#include <iostream>

#include "wormnet.hpp"

namespace {

// Largest load whose model latency stays under `budget_cycles`, found by
// bisection against the (monotone) latency curve.  Works on ANY NetworkModel
// — the polymorphic interface is what makes this planner topology-agnostic.
double max_load_under_budget(const wormnet::core::NetworkModel& model,
                             wormnet::harness::SweepEngine& engine,
                             double budget_cycles) {
  double lo = 0.0;
  double hi = engine.saturation_load(model);
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const wormnet::core::LatencyEstimate ev = engine.evaluate_load(model, mid);
    if (ev.stable && ev.latency <= budget_cycles)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const double budget_factor = args.get_double("budget", 2.0);
  const auto worms = args.get_int_list("worms", {16, 32, 64});
  const int max_levels = static_cast<int>(args.get_int("max-levels", 6));

  util::Table table({"N", "worm(flits)", "zero-load L", "budget L",
                     "max load(flits/cyc)", "saturation", "% of saturation"});
  table.set_precision(0, 0);
  table.set_precision(1, 0);
  table.set_precision(2, 1);
  table.set_precision(3, 1);
  table.set_precision(4, 5);
  table.set_precision(5, 5);
  table.set_precision(6, 1);

  // Every cell's model stays alive for the engine's lifetime (the memo
  // cache keys on model addresses).
  std::vector<core::FatTreeModel> models;
  for (int levels = 1; levels <= max_levels; ++levels)
    for (long worm : worms)
      models.emplace_back(core::FatTreeModelOptions{
          .levels = levels, .worm_flits = static_cast<double>(worm)});

  harness::SweepEngine engine;
  for (const core::FatTreeModel& model : models) {
    const double worm = model.worm_flits();
    const double zero_load = worm + model.mean_distance() - 1.0;
    const double budget = budget_factor * zero_load;
    const double max_load = max_load_under_budget(model, engine, budget);
    const double sat = engine.saturation_load(model);
    table.add_row({static_cast<double>(model.num_processors()),
                   static_cast<double>(worm), zero_load, budget, max_load, sat,
                   100.0 * max_load / sat});
  }
  std::printf("max sustainable uniform load keeping average latency <= %.1fx"
              " the zero-load latency\n\n",
              budget_factor);
  table.print(std::cout);
  std::printf("\n(an entire design-space table computed analytically; every cell"
              " would be a bisection of simulations otherwise)\n");
  return 0;
}

// virtual_channels — lane-count capacity planning with the SweepEngine's
// lane axis.
//
// "My fat-tree saturates under a 10% hotspot.  How many virtual channels
// (lanes) per link buy how much headroom, and when do extra lanes stop
// paying?"  Lanes multiplex independent one-flit latches over one physical
// flit/cycle: each added lane relieves head-of-line blocking (an L-fold
// discount of the Eq. 9/10 blocking probability) but shares the same wire
// (the multiplexing stretch).  The lane-aware model answers the whole
// trade-off table in milliseconds; the flit-level simulator (which
// allocates real per-lane latches with round-robin bandwidth arbitration)
// is only needed to validate the corner you pick.
//
//   ./virtual_channels [--levels=3] [--worm=16] [--hotspot=0.1]
//                      [--lanes=1,2,3,4,6,8] [--budget=1.5]
#include <cstdio>
#include <iostream>
#include <memory>

#include "wormnet.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  const double hotspot = args.get_double("hotspot", 0.1);
  const auto lane_ints = args.get_int_list("lanes", {1, 2, 3, 4, 6, 8});
  const double budget_factor = args.get_double("budget", 1.5);
  harness::reject_unknown_flags(args);

  topo::ButterflyFatTree ft(levels);
  core::SolveOptions opts;
  opts.worm_flits = static_cast<double>(worm);
  const traffic::TrafficSpec spec = traffic::TrafficSpec::hotspot(hotspot);

  std::vector<int> lanes;
  for (auto l : lane_ints) lanes.push_back(static_cast<int>(l));

  // The lane axis: one pattern-aware model per lane count, each swept at
  // fractions of its OWN saturation.
  harness::SweepEngine engine;
  const std::vector<harness::FamilyMember> family = engine.sweep_lanes(
      [&](int L) {
        ft.set_uniform_lanes(L);
        return std::make_unique<core::GeneralModel>(
            core::build_traffic_model(ft, spec, opts));
      },
      lanes, {0.5, 0.8});

  const double zero_load = worm + ft.mean_distance() - 1.0;
  const double budget = budget_factor * zero_load;

  util::Table t({"lanes", "saturation(flits/cyc/PE)", "gain vs 1 lane",
                 "L @ 50% sat", "L @ 80% sat", "max load under budget"});
  t.set_precision(0, 0);
  const double base_sat = family.front().saturation_rate * worm;
  for (const harness::FamilyMember& fm : family) {
    const double sat = fm.saturation_rate * worm;
    // Largest load with latency under the budget, by bisection through the
    // engine's memo cache.
    double lo = 0.0;
    double hi = sat;
    for (int i = 0; i < 50; ++i) {
      const double mid = 0.5 * (lo + hi);
      const core::LatencyEstimate ev = engine.evaluate_load(*fm.model, mid);
      if (ev.stable && ev.latency <= budget)
        lo = mid;
      else
        hi = mid;
    }
    t.add_row({fm.parameter, sat, 100.0 * (sat / base_sat - 1.0),
               fm.points[0].est.latency, fm.points[1].est.latency, lo});
  }

  std::printf("lane-count capacity planning: butterfly fat-tree N=%ld, "
              "hotspot f=%.2f, worm=%d flits\n(latency budget: %.1fx the "
              "zero-load latency = %.1f cycles; gain column in %%)\n\n",
              util::ipow(4, levels), hotspot, worm, budget_factor, budget);
  t.print(std::cout);
  std::printf(
      "\nreading the table: the second lane buys most of the head-of-line\n"
      "relief; past the knee the shared flit/cycle of wire claws it back —\n"
      "pick the smallest L at the saturation plateau (lanes cost silicon).\n"
      "Validate the chosen corner with the simulator: the same topology\n"
      "object drives it after set_uniform_lanes(L).\n");
  return 0;
}

// custom_network_model — apply the paper's §2 general model to a network
// the authors never analyzed, straight through the public API.
//
// We model a two-stage "dance-hall" network: 8 processors on the left, each
// with an injection channel into one of 2 first-stage switches; both
// switches forward across 2 parallel middle links (a two-server bundle,
// like the fat-tree's up-link pair) to a second stage that fans out to 8
// ejection channels.  The example shows:
//   * hand-building a ChannelGraph with multi-server bundles,
//   * solving it across a load sweep,
//   * checking it against the flit-level simulator on the closest
//     simulable equivalent (a 2-level fat-tree exercises the same two-
//     server construct).
#include <cstdio>
#include <iostream>

#include "wormnet.hpp"

int main() {
  using namespace wormnet;
  const double sf = 16.0;

  // --- Build: inj -> middle(two-server) -> eject. -----------------------
  core::GeneralModel net;
  core::ChannelClass eject;
  eject.label = "eject";
  eject.servers = 1;
  eject.rate_per_link = 1.0;  // every PE absorbs what it injects
  eject.terminal = true;
  const int ej = net.graph.add_channel(eject);

  core::ChannelClass middle;
  middle.label = "middle";
  middle.servers = 2;          // two parallel links, one FCFS pool
  middle.rate_per_link = 2.0;  // 4 PEs per side share 2 links at unit rate
  const int mid = net.graph.add_channel(middle);

  core::ChannelClass inj;
  inj.label = "inj";
  inj.servers = 1;
  inj.rate_per_link = 1.0;
  const int in = net.graph.add_channel(inj);

  // A message crosses the middle stage, then lands on one of 8 ejection
  // channels (weight 1 into the class; any SPECIFIC output with R = 1/8).
  net.graph.add_transition(in, mid, 1.0, 1.0);
  net.graph.add_transition(mid, ej, 1.0, 1.0 / 8.0);
  net.injection_classes = {in};
  net.mean_distance = 3.0;  // inj + middle + eject
  net.model_name = "dance-hall";
  net.opts.worm_flits = sf;

  std::printf("custom two-stage network under the general wormhole model\n");
  std::printf("(middle stage = two-server bundle, the paper's M/G/2 construct)\n\n");

  // As a NetworkModel, the hand-built graph plugs straight into the engine.
  harness::SweepEngine engine;
  const double sat = engine.saturation_rate(net);
  std::printf("saturation: %.5f messages/cycle/PE (%.4f flits/cycle/PE)\n\n",
              sat, sat * sf);

  util::Table t({"lambda0", "latency", "W_inj", "x_inj", "middle rho"});
  for (double frac : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    const double lambda0 = sat * frac;
    const core::SolveResult res = net.solve(lambda0);
    const core::LatencyEstimate est =
        core::estimate_latency(res, net.injection_classes, net.mean_distance);
    t.add_row({lambda0, est.latency, est.inj_wait, est.inj_service,
               res.utilization(mid)});
  }
  t.set_precision(0, 5);
  t.print(std::cout);

  // --- Ablation: what if we ignored the pooling of the two middle links?
  core::GeneralModel naive = net;
  naive.opts.multi_server = false;
  const double sat_naive = engine.saturation_rate(naive);
  std::printf("\nwith the two-server pool modeled as independent M/G/1 links,"
              " predicted saturation drops from %.5f to %.5f (-%.1f%%)\n",
              sat, sat_naive, 100.0 * (1.0 - sat_naive / sat));

  // --- Cross-check the construct against the simulator. ------------------
  // The 16-processor fat-tree's level-1 switches feed exactly such a
  // two-server bundle; compare model vs simulation there.
  topo::ButterflyFatTree ft(2);
  core::GeneralModel ftnet = core::build_fattree_collapsed(2);
  ftnet.opts.worm_flits = sf;
  const double ft_sat = engine.saturation_rate(ftnet);
  sim::SimConfig cfg;
  cfg.load_flits = ft_sat * 0.6 * sf;
  cfg.worm_flits = static_cast<int>(sf);
  cfg.warmup_cycles = 5'000;
  cfg.measure_cycles = 30'000;
  const sim::SimResult r = sim::simulate(ft, cfg);
  const core::LatencyEstimate est = engine.evaluate(ftnet, ft_sat * 0.6);
  std::printf("\nsanity (16-PE fat-tree at 60%% load): model %.2f cycles,"
              " simulator %.2f cycles\n",
              est.latency, r.latency.mean());
  return 0;
}

// traffic_patterns — the traffic:: layer end to end.
//
// One traffic::TrafficSpec drives BOTH engines: core::build_traffic_model
// routes its exact pair weights into a per-channel analytical model, and the
// simulator's TrafficSource samples destinations from the same object — so
// "what the model assumes" and "what the simulator does" cannot drift.
//
// The program:
//  1. prints the pattern catalog's analytical saturation throughput on a
//     64-PE butterfly fat-tree (permutations run past the uniform number,
//     hotspots collapse it);
//  2. sweeps a hotspot-fraction axis through harness::SweepEngine's
//     sweep_family — the pattern-sweep entry point;
//  3. builds a custom client/server TrafficMatrix, models it, and
//     cross-checks one operating point against the flit-level simulator.
#include <cstdio>
#include <iostream>
#include <memory>

#include "wormnet.hpp"

int main() {
  using namespace wormnet;
  const double sf = 16.0;
  const int levels = 3;
  topo::ButterflyFatTree ft(levels);
  const int procs = ft.num_processors();

  core::SolveOptions opts;
  opts.worm_flits = sf;
  harness::SweepEngine engine;

  // --- 1. The catalog under the analytical model. ------------------------
  std::printf("pattern catalog on %s (worm %.0f flits)\n", ft.name().c_str(), sf);
  const traffic::TrafficSpec catalog[] = {
      traffic::TrafficSpec::uniform(),
      traffic::TrafficSpec::nearest_neighbor(0.5),
      traffic::TrafficSpec::bit_complement(),
      traffic::TrafficSpec::transpose(),
      traffic::TrafficSpec::hotspot(0.05),
      traffic::TrafficSpec::hotspot(0.20),
  };
  util::Table cat({"pattern", "D-bar", "sat load (flits/cyc/PE)", "L at 50% sat"});
  std::vector<std::unique_ptr<core::GeneralModel>> models;
  for (const traffic::TrafficSpec& spec : catalog) {
    models.push_back(std::make_unique<core::GeneralModel>(
        core::build_traffic_model(ft, spec, opts)));
    const core::GeneralModel& net = *models.back();
    const double sat = engine.saturation_rate(net);
    cat.add_row({spec.name(), net.mean_distance, sat * sf,
                 engine.evaluate(net, sat * 0.5).latency});
  }
  cat.print(std::cout);

  // --- 2. A hotspot-fraction axis through sweep_family. ------------------
  std::printf("\nhotspot-fraction axis (latency at fractions of each member's own"
              " saturation)\n");
  const std::vector<double> fractions{0.5, 0.8};
  const std::vector<harness::FamilyMember> family = engine.sweep_family(
      [&](double f) {
        return std::make_unique<core::GeneralModel>(core::build_traffic_model(
            ft, traffic::TrafficSpec::hotspot(f), opts));
      },
      {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}, fractions);
  util::Table axis({"hotspot f", "sat load", "L at 50%", "L at 80%"});
  for (const harness::FamilyMember& member : family) {
    axis.add_row({member.parameter, member.saturation_rate * sf,
                  member.points[0].est.latency, member.points[1].est.latency});
  }
  axis.print(std::cout);

  // --- 3. A custom TrafficMatrix: 4 servers, 60 clients. -----------------
  // Clients send 70% of their messages to a uniformly chosen server and 30%
  // uniformly anywhere; servers answer uniformly to clients.
  const int servers = 4;
  traffic::TrafficMatrix m(procs);
  for (int s = 0; s < procs; ++s) {
    for (int d = 0; d < procs; ++d) {
      if (d == s) continue;
      double w = 0.3 / (procs - 1);
      if (s >= servers) {
        if (d < servers) w += 0.7 / servers;
      } else {
        w = d >= servers ? 1.0 / (procs - servers) : 0.0;
      }
      if (w > 0.0) m.set(s, d, w);
    }
  }
  m.normalize_rows();
  const traffic::TrafficSpec spec = traffic::TrafficSpec::matrix(m);
  const core::GeneralModel net = core::build_traffic_model(ft, spec, opts);
  const double sat = engine.saturation_rate(net);
  std::printf("\nclient/server matrix: D-bar %.3f, saturation %.4f flits/cycle/PE\n",
              net.mean_distance, sat * sf);

  sim::SimConfig cfg;
  cfg.load_flits = sat * 0.6 * sf;
  cfg.worm_flits = static_cast<int>(sf);
  cfg.traffic = spec;  // the SAME object the model routed
  cfg.warmup_cycles = 5'000;
  cfg.measure_cycles = 30'000;
  const sim::SimResult r = sim::simulate(ft, cfg);
  const core::LatencyEstimate est = engine.evaluate(net, sat * 0.6);
  std::printf("at 60%% of that: model %.2f cycles, simulator %.2f cycles\n",
              est.latency, r.latency.mean());
  return 0;
}

// fault_tolerance — failure injection, degraded routing, and N−1/N−k
// availability what-ifs, end to end.
//
// The fault layer answers the operator question the healthy model cannot:
// "which failure hurts most, and what does the fabric look like while we
// run degraded?"  A topo::FaultSet names failed links/switches against a
// base topology; topo::FaultedTopology is the degraded routing view — the
// same channel structure, so a resident model reaches any failure scenario
// by an O(affected columns) retune instead of a rebuild, and the
// QueryEngine sweeps every N−1 scenario through that delta path.
//
// This session:
//  1. builds a resident model of a healthy levels-3 fat-tree (64 PEs);
//  2. runs the N−1 availability sweep over all 48 failable links, printing
//     the worst offenders (rank, failed link, degraded latency, cost class);
//  3. asks two N−k what-ifs — one parent lost vs BOTH parents of a level-1
//     switch lost — showing the Disconnected classification and the
//     unroutable fraction when a block is cut off;
//  4. cross-checks the worst N−1 scenario against the flit-level simulator
//     running on the SAME FaultedTopology view.
//
//   ./fault_tolerance [--levels=3] [--load=0.25]   (load: fraction of sat)
#include <chrono>
#include <cstdio>
#include <memory>

#include "wormnet.hpp"

namespace {

const char* cost_name(wormnet::harness::QueryCost c) {
  switch (c) {
    case wormnet::harness::QueryCost::Memoized: return "memoized";
    case wormnet::harness::QueryCost::Reevaluate: return "reevaluate";
    case wormnet::harness::QueryCost::Retune: return "retune";
    case wormnet::harness::QueryCost::Rebuild: return "rebuild";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wormnet;
  using Clock = std::chrono::steady_clock;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));
  const double load_frac = args.get_double("load", 0.25);
  harness::reject_unknown_flags(args);

  topo::ButterflyFatTree ft(levels);
  std::printf("fault tolerance: butterfly fat-tree, N = %d processors\n",
              ft.num_processors());

  harness::QueryEngine engine(ft, traffic::TrafficSpec::uniform());
  harness::WhatIfQuery sat_q;
  sat_q.metric = harness::QueryMetric::Saturation;
  const double sat = engine.run(sat_q).saturation_rate;
  const double lambda0 = sat * load_frac;
  std::printf("healthy saturation λ₀* = %.6f msg/cycle/PE; querying at %.0f%%\n\n",
              sat, 100.0 * load_frac);

  // -- N−1 sweep: every failable link, via the fault-delta retune path -----
  const auto t0 = Clock::now();
  const harness::AvailabilityReport n1 = engine.availability_n_minus_1(0, lambda0);
  const double sweep_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::printf("N-1 sweep: %zu link-failure scenarios in %.1f ms "
              "(healthy baseline %.3f cycles)\n",
              n1.rows.size(), sweep_ms, n1.baseline.latency);
  std::printf("  %-4s %-22s %10s %9s %s\n", "rank", "failed link", "latency",
              "Δ vs base", "cost");
  for (std::size_t i = 0; i < n1.rows.size() && i < 5; ++i) {
    const harness::AvailabilityRow& row = n1.rows[i];
    std::printf("  %-4zu %-22s %10.3f %8.2f%% %s\n", i + 1, row.label.c_str(),
                row.est.latency,
                100.0 * (row.est.latency / n1.baseline.latency - 1.0),
                cost_name(row.cost));
  }
  std::printf("  ... every scenario status Ok: %d/%zu (N-1 severs nothing "
              "on a fat-tree)\n\n",
              n1.scenarios_ok, n1.rows.size());

  // -- N−k what-ifs: losing one parent vs both parents of one switch ------
  const int s1 = ft.switch_id(1, 0);
  auto one = std::make_shared<topo::FaultSet>(ft);
  one->fail_link(s1, topo::ButterflyFatTree::kParentPort0);
  auto cut = std::make_shared<topo::FaultSet>(ft);
  cut->fail_link(s1, topo::ButterflyFatTree::kParentPort0);
  cut->fail_link(s1, topo::ButterflyFatTree::kParentPort1);
  const harness::AvailabilityReport nk = engine.availability_scenarios(
      0, lambda0, {one, cut}, {"one parent", "all parents"});
  std::printf("N-k what-ifs on switch (level 1, 0):\n");
  for (const harness::AvailabilityRow& row : nk.rows) {
    std::printf("  %-12s status=%-12s unroutable=%5.1f%%  latency=%.3f (%s)\n",
                row.label.c_str(),
                row.est.status == core::SolveStatus::Disconnected
                    ? "Disconnected"
                    : (row.est.status == core::SolveStatus::Ok ? "Ok" : "other"),
                100.0 * row.est.unroutable_fraction, row.est.latency,
                cost_name(row.cost));
  }

  // -- Cross-check the worst N−1 scenario against the simulator -----------
  const harness::AvailabilityRow& worst = n1.rows.front();
  topo::FaultedTopology degraded(ft, *worst.faults);
  sim::SimConfig cfg;
  cfg.load_flits = lambda0 * 16.0;
  cfg.worm_flits = 16;
  cfg.seed = 4242;
  cfg.warmup_cycles = 8000;
  cfg.measure_cycles = 40000;
  cfg.max_cycles = 600000;
  cfg.channel_stats = false;
  harness::SimEngine sim_engine;
  harness::SimCell cell{&degraded, cfg, 1, worst.label};
  const harness::SimCellResult sim_out = sim_engine.run_cell(cell);
  const double sim_latency = sim_out.runs.front().latency.mean();
  std::printf("\nworst N-1 (%s) vs simulator on the same degraded view:\n"
              "  model %.3f cycles, sim %.3f cycles, error %.2f%%\n",
              worst.label.c_str(), worst.est.latency, sim_latency,
              100.0 * std::abs(worst.est.latency - sim_latency) / sim_latency);
  return 0;
}

// observability_demo — one Registry snapshot spanning every layer.
//
// The observability contract of this repository is that the solver, the
// flit-level simulator and the resident query engine all publish into ONE
// obs::Registry, so a single snapshot() describes a whole run end-to-end.
// This demo exercises that contract:
//
//  1. solves an N = 64 fat-tree analytically (below and above saturation,
//     so the SolveTelemetry root-cause shows up) and publishes the solve;
//  2. runs a small simulation campaign with per-channel stats and the
//     worm-lifecycle trace enabled, and publishes the run;
//  3. answers a mixed what-if session through the QueryEngine and publishes
//     its cost-class / cache metrics;
//  4. dumps the combined snapshot as JSON, CSV and Prometheus text, and the
//     phase + worm spans as Chrome trace-event JSON (load the file in
//     chrome://tracing or ui.perfetto.dev).
//
// --overhead instead runs the 18-cell conformance-shaped overload campaign
// twice — observability off, then on (tracing + log sink + publication) —
// and reports the wall-clock delta (the EXPERIMENTS.md "OBS" numbers).
//
//   ./observability_demo [--levels=3] [--queries=60] [--threads=0]
//                        [--out=wormnet_obs] [--overhead]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "wormnet.hpp"

namespace {

using namespace wormnet;

/// The 18-cell topology x pattern x lanes grid of the conformance suite
/// (test_model_vs_sim_conformance.cpp), run as closed-loop overload probes:
/// the campaign the <2%-overhead acceptance number is measured on.
double run_conformance_campaign(bool publish, obs::Registry* reg) {
  struct Cell {
    int kind;  // 0 fat-tree(3), 1 mesh(3,3), 2 hypercube(4)
    double hotspot;
    int lanes;
  };
  std::vector<Cell> grid;
  for (int kind = 0; kind < 3; ++kind)
    for (double hs : {0.0, 0.1})
      for (int lanes : {1, 2, 4}) grid.push_back({kind, hs, lanes});

  std::map<int, std::unique_ptr<topo::Topology>> topos;
  auto topo_of = [&](const Cell& c) -> const topo::Topology* {
    const int key = c.kind * 8 + c.lanes;
    auto it = topos.find(key);
    if (it == topos.end()) {
      std::unique_ptr<topo::Topology> t;
      if (c.kind == 0) t = std::make_unique<topo::ButterflyFatTree>(3);
      else if (c.kind == 1) t = std::make_unique<topo::Mesh>(3, 3);
      else t = std::make_unique<topo::Hypercube>(4);
      t->set_uniform_lanes(c.lanes);
      it = topos.emplace(key, std::move(t)).first;
    }
    return it->second.get();
  };

  std::vector<harness::SimCell> cells;
  for (const Cell& c : grid) {
    harness::SimCell sc;
    sc.topology = topo_of(c);
    sc.cfg.arrivals = sim::ArrivalProcess::Overload;
    sc.cfg.worm_flits = 16;
    sc.cfg.seed = 7;
    sc.cfg.traffic = c.hotspot > 0.0 ? traffic::TrafficSpec::hotspot(c.hotspot)
                                     : traffic::TrafficSpec::uniform();
    sc.cfg.warmup_cycles = 5000;
    sc.cfg.measure_cycles = 20000;
    sc.cfg.channel_stats = false;
    cells.push_back(std::move(sc));
  }

  const auto t0 = std::chrono::steady_clock::now();
  harness::SimEngine engine;
  const std::vector<harness::SimCellResult> results = engine.run_cells(cells);
  if (publish && reg != nullptr) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      obs::publish_sim(*reg, results[i].runs.front(),
                       "conformance_cell_" + std::to_string(i));
    }
    engine.publish_metrics(*reg, "conformance");
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Keep the results observable so neither pass can be optimized away.
  std::int64_t delivered = 0;
  for (const auto& r : results) delivered += r.runs.front().delivered_messages;
  std::printf("  campaign: %zu cells, %lld delivered, %.2f s (%s)\n",
              results.size(), static_cast<long long>(delivered), seconds,
              publish ? "observability ON" : "observability OFF");
  return seconds;
}

int run_overhead_mode(int repeats) {
  std::printf("overhead mode: 18-cell conformance campaign, off vs on "
              "(best of %d each)\n", repeats);
  // Warm pass so neither measured pass pays first-touch costs.
  obs::set_tracing(false);
  run_conformance_campaign(false, nullptr);

  // Alternate the modes and keep each mode's best time: scheduling noise
  // between identical passes is of the same order as the effect measured,
  // and minima are the standard way to strip it.
  obs::Registry reg;
  obs::CountingLogSink sink(reg);
  double t_off = 1e300, t_on = 1e300;
  for (int i = 0; i < repeats; ++i) {
    obs::set_tracing(false);
    obs::set_log_sink(nullptr);
    t_off = std::min(t_off, run_conformance_campaign(false, nullptr));

    obs::set_log_sink(&sink);
    obs::set_tracing(true);
    t_on = std::min(t_on, run_conformance_campaign(true, &reg));
  }
  obs::set_tracing(false);
  obs::set_log_sink(nullptr);

  const double overhead = (t_on - t_off) / t_off * 100.0;
  std::printf("\nobservability off: %.3f s\n", t_off);
  std::printf("observability on:  %.3f s  (%zu metrics, %zu trace events)\n",
              t_on, reg.size(), obs::default_trace().size());
  std::printf("overhead: %+.2f%%  (acceptance bound: < 2%%)\n", overhead);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));
  const int num_queries = static_cast<int>(args.get_int("queries", 60));
  const unsigned threads = static_cast<unsigned>(args.get_int("threads", 0));
  const std::string out = args.get("out", "wormnet_obs");
  const bool overhead = args.get_bool("overhead", false);
  const int repeats = static_cast<int>(args.get_int("repeats", 3));
  harness::reject_unknown_flags(args);

  if (overhead) return run_overhead_mode(repeats);

  // Everything below lands in ONE registry; spans land in the default trace.
  obs::Registry reg;
  obs::CountingLogSink sink(reg);
  obs::set_log_sink(&sink);
  obs::set_tracing(true);

  topo::ButterflyFatTree ft(levels);
  std::printf("observability demo: butterfly fat-tree, N = %d\n\n",
              ft.num_processors());

  // -- Layer 1: the analytical solver ------------------------------------
  core::SolveOptions sopts;
  sopts.worm_flits = 16.0;
  const core::GeneralModel model =
      core::build_traffic_model(ft, traffic::TrafficSpec::uniform(), sopts);
  const double sat = core::model_saturation_rate(model, sopts);
  const core::SolveResult mid = core::model_solve(model, 0.5 * sat, sopts);
  obs::publish_solve(reg, mid, "fattree_mid");
  const core::SolveResult over = core::model_solve(model, 1.5 * sat, sopts);
  obs::publish_solve(reg, over, "fattree_over");
  std::printf("solver: λ₀* = %.5f; at 0.5·λ₀* max ρ = %.3f; at 1.5·λ₀* "
              "saturated by class %d (%s)\n",
              sat, mid.telemetry.max_utilization,
              over.telemetry.first_saturated_class,
              over.telemetry.saturation_cause);

  // -- Layer 2: the flit-level simulator ---------------------------------
  harness::SimCell cell;
  cell.topology = &ft;
  cell.cfg.load_flits = 0.5 * sat * 16.0;
  cell.cfg.worm_flits = 16;
  cell.cfg.seed = 42;
  cell.cfg.warmup_cycles = 2000;
  cell.cfg.measure_cycles = 8000;
  cell.cfg.channel_stats = true;             // per-channel export
  cell.cfg.trace = &obs::default_trace();    // worm-lifecycle events (pid 2)
  cell.label = "fattree_half_sat";
  harness::SimEngine sim_engine({threads, true});
  const harness::SimCellResult sim_out = sim_engine.run_cell(cell);
  obs::publish_sim(reg, sim_out.runs.front(), "fattree_half_sat");
  sim_engine.publish_metrics(reg, "demo");
  std::printf("simulator: %lld messages delivered, mean latency %.2f cycles, "
              "%zu channels exported\n",
              static_cast<long long>(sim_out.runs.front().delivered_messages),
              sim_out.runs.front().latency.mean(),
              sim_out.runs.front().channels.size());

  // -- Layer 3: the resident what-if engine ------------------------------
  harness::QueryEngine::Options qopts;
  qopts.threads = threads;
  harness::QueryEngine qe(ft, traffic::TrafficSpec::uniform(), qopts);
  std::vector<harness::WhatIfQuery> session;
  for (int i = 0; i < num_queries; ++i) {
    harness::WhatIfQuery q;
    q.lambda0 = 0.25 * sat * (1 + i % 3);
    if (i % 5 == 1) q.traffic = traffic::TrafficSpec::hotspot(0.1);
    if (i % 5 == 2) q.load_scale = 1.2;
    if (i % 5 == 3) q.lanes = 4;
    session.push_back(q);
  }
  const auto answers = qe.run_batch(session);
  qe.run_batch(session);  // replay — exercises the memo path
  qe.publish_metrics(reg, "whatif");
  std::printf("query engine: %llu served (%llu memoized) at %.0f queries/s\n\n",
              static_cast<unsigned long long>(qe.queries_served()),
              static_cast<unsigned long long>(qe.served_memoized()),
              qe.batch_seconds() > 0.0
                  ? static_cast<double>(qe.queries_served()) / qe.batch_seconds()
                  : 0.0);
  (void)answers;

  obs::set_log_sink(nullptr);
  obs::set_tracing(false);

  // -- The coherent snapshot ---------------------------------------------
  const obs::Snapshot snap = reg.snapshot();
  int solver = 0, simulator = 0, query = 0;
  for (const auto& e : snap.entries) {
    if (e.name.rfind("wormnet_solve", 0) == 0) ++solver;
    if (e.name.rfind("wormnet_sim", 0) == 0) ++simulator;
    if (e.name.rfind("wormnet_query", 0) == 0 ||
        e.name.rfind("wormnet_sweep", 0) == 0)
      ++query;
  }
  std::printf("one snapshot, every layer: %zu series total "
              "(%d solver, %d simulator, %d query/sweep)\n",
              snap.entries.size(), solver, simulator, query);
  if (solver == 0 || simulator == 0 || query == 0) {
    std::printf("ERROR: a layer is missing from the snapshot\n");
    return 1;
  }

  struct Dump {
    const char* suffix;
    std::string text;
  };
  const Dump dumps[] = {{".metrics.json", obs::to_json(snap)},
                        {".metrics.csv", obs::to_csv(snap)},
                        {".metrics.prom", obs::to_prometheus(snap)}};
  for (const Dump& d : dumps) {
    const std::string path = out + d.suffix;
    if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
      std::fwrite(d.text.data(), 1, d.text.size(), f);
      std::fclose(f);
      std::printf("wrote %s (%zu bytes)\n", path.c_str(), d.text.size());
    }
  }
  const std::string trace_path = out + ".trace.json";
  if (obs::default_trace().write(trace_path)) {
    std::printf("wrote %s (%zu events) — open in chrome://tracing\n",
                trace_path.c_str(), obs::default_trace().size());
  }
  return 0;
}

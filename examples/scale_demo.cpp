// scale_demo — analytical answers for 100k–1M-endpoint fabrics in seconds.
//
// The dense traffic-model builder is exact but O(N²·hops); above ~10k
// processors a single build takes minutes and the per-channel model stops
// fitting in cache.  The symmetry-collapsed path runs one route pass per
// destination ORBIT and folds the network to O(classes) channel classes
// (2·levels for the uniform fat-tree), so a 1,048,576-processor fabric
// builds and solves in seconds with flat model memory.
//
//   ./scale_demo [--max-levels=10] [--dense-levels=5]
//
// Prints one row per fat-tree size: processors, quotient classes, build and
// solve wall time, saturation rate and mid-load latency, plus peak RSS.  At
// small sizes a dense reference build runs alongside to show both the cost
// crossover and the machine-precision agreement of the two paths.
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "wormnet.hpp"

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is kilobytes on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wormnet;

  const util::Args args(argc, argv);
  const int max_levels = static_cast<int>(args.get_int("max-levels", 10));
  const int dense_levels = static_cast<int>(args.get_int("dense-levels", 5));
  harness::reject_unknown_flags(args);

  util::Table table({"levels", "procs", "classes", "collapsed build ms",
                     "dense build ms", "solve ms", "saturation", "latency@50%",
                     "dense latency@50%", "peak RSS MB"});
  table.set_precision(3, 1);
  table.set_precision(4, 1);
  table.set_precision(5, 2);
  table.set_precision(6, 6);
  table.set_precision(7, 3);
  table.set_precision(8, 3);
  table.set_precision(9, 1);

  const traffic::TrafficSpec spec = traffic::TrafficSpec::uniform();
  for (int levels = 4; levels <= max_levels; ++levels) {
    const topo::ButterflyFatTree ft(levels);

    const double t0 = now_ms();
    const core::GeneralModel net = core::build_traffic_model_collapsed(ft, spec);
    const double build_ms = now_ms() - t0;

    const double t1 = now_ms();
    const double sat = core::model_saturation_rate(net, net.opts);
    const core::LatencyEstimate mid = net.evaluate(0.5 * sat);
    const double solve_ms = now_ms() - t1;

    util::Cell dense_ms = std::monostate{};
    util::Cell dense_lat = std::monostate{};
    if (levels <= dense_levels) {
      const double t2 = now_ms();
      const core::GeneralModel dense = core::build_traffic_model(ft, spec);
      dense_ms = now_ms() - t2;
      dense_lat = dense.evaluate(0.5 * sat).latency;
    }

    table.add_row({static_cast<double>(levels),
                   static_cast<double>(ft.num_processors()),
                   static_cast<double>(net.graph.size()), build_ms, dense_ms,
                   solve_ms, sat, mid.latency, dense_lat, peak_rss_mb()});
    table.set_precision(0, 0);
    table.set_precision(1, 0);
    table.set_precision(2, 0);
  }

  std::cout << "Uniform butterfly fat-tree, symmetry-collapsed vs dense\n";
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}

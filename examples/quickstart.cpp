// quickstart — the smallest useful wormnet program.
//
// Builds the analytical model of a 64-processor butterfly fat-tree, runs a
// load sweep through the SweepEngine (parallel + memoized), asks for the
// saturation throughput, and cross-checks one point against the flit-level
// simulator.
//
//   ./quickstart [--levels=3] [--worm=16]
#include <cstdio>

#include "wormnet.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));
  const int worm = static_cast<int>(args.get_int("worm", 16));

  // 1. The analytical model (the paper's Eq. 12-26): instant answers.
  core::FatTreeModel model(
      {.levels = levels, .worm_flits = static_cast<double>(worm)});
  std::printf("butterfly fat-tree: N = %ld processors, worms of %d flits\n",
              model.num_processors(), worm);
  std::printf("mean distance D̄ = %.3f channels, zero-load latency = %.1f cycles\n",
              model.mean_distance(), worm + model.mean_distance() - 1.0);

  // 2. The sweep engine: batched parallel evaluation with memoization.
  harness::SweepEngine engine;
  const double saturation = engine.saturation_load(model);
  std::printf("model saturation throughput: %.4f flits/cycle/processor\n\n",
              saturation);

  std::printf("%-22s %-14s\n", "load(flits/cyc/PE)", "latency(cycles)");
  const auto points =
      engine.sweep_saturation_fractions(model, {0.1, 0.3, 0.5, 0.7, 0.9});
  for (const harness::SweepPoint& pt : points)
    std::printf("%-22.4f %-14.2f\n", pt.load_flits, pt.est.latency);

  // 3. One simulation point to show the model is honest.
  const double load = saturation * 0.5;
  sim::SimConfig cfg;
  cfg.load_flits = load;
  cfg.worm_flits = worm;
  cfg.warmup_cycles = 5'000;
  cfg.measure_cycles = 30'000;
  topo::ButterflyFatTree ft(levels);
  const sim::SimResult r = sim::simulate(ft, cfg);
  std::printf("\nat load %.4f: model says %.2f cycles, simulation measured %.2f"
              " (+-%.2f, %lld worms)\n",
              load, engine.evaluate_load(model, load).latency, r.latency.mean(),
              r.latency.sem(), static_cast<long long>(r.latency.count()));
  return 0;
}

// ABL-MS — ablation of the paper's novelty (1): modeling the redundant
// up-link pair as ONE two-server M/G/2 channel (Hokstad) instead of two
// independent single-server M/G/1 channels.
//
// Success criteria:
//  * the M/G/2 treatment tracks simulation;
//  * the M/G/1-split treatment over-predicts latency and under-predicts
//    saturation (it misses the pooling effect: a worm blocked on one link
//    can take the other).
//
//   ./ablation_queue_model [--levels=5] [--worm=16] [--quick]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 5));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  harness::SweepConfig sweep = bench::sweep_defaults(args, worm);
  bench::reject_unknown_flags(args);

  core::FatTreeModelOptions full{.levels = levels,
                                 .worm_flits = static_cast<double>(worm)};
  core::FatTreeModelOptions split = full;
  split.multi_server = false;

  core::FatTreeModel model_full(full), model_split(split);
  harness::SweepEngine engine;
  sweep.loads = bench::fraction_loads(engine.saturation_load(model_full),
                                      /*include_past_saturation=*/false);

  topo::ButterflyFatTree ft(levels);
  const auto rows_full = harness::compare_latency(ft, model_full, sweep, &engine);
  const auto rows_split = harness::model_only_sweep(model_split, sweep, &engine);

  util::Table t({"load(flits/cyc)", "sim L", "M/G/2 model L", "M/G/1-split L",
                 "M/G/2 err %", "M/G/1 err %"});
  t.set_precision(0, 4);
  for (std::size_t i = 0; i < rows_full.size(); ++i) {
    const auto& f = rows_full[i];
    const auto& s = rows_split[i];
    const double e2 = 100.0 * (f.model_latency - f.sim_latency) / f.sim_latency;
    const double e1 = 100.0 * (s.model_latency - f.sim_latency) / f.sim_latency;
    t.add_row({f.load, f.sim_latency, f.model_latency,
               s.model_stable ? util::Cell{s.model_latency}
                              : util::Cell{std::string("inf")},
               e2, s.model_stable ? util::Cell{e1} : util::Cell{}});
  }
  harness::print_experiment(
      "ABL-MS: multi-server (M/G/2) vs independent-link (M/G/1) up-channel model",
      t);
  std::printf("model saturation: M/G/2 %.5f vs M/G/1-split %.5f flits/cyc/PE\n",
              engine.saturation_load(model_full), engine.saturation_load(model_split));
  return 0;
}

// FIG3 — the paper's headline experiment: average latency vs offered load
// for the 1024-processor butterfly fat-tree, worms of 16/32/64 flits,
// analytical model against flit-level simulation (paper Fig. 3).
//
// Success criteria (shape, per reproduction rules):
//  * model tracks simulation from zero load through the knee;
//  * zero-load latencies ~ s_f + D̄ - 1 (≈ 24.3 / 40.3 / 72.3 cycles);
//  * all three worm lengths saturate near the same flit load (the model is
//    exactly scale-invariant in worm length; the simulator nearly so);
//  * past the knee the simulator reports saturation where the model
//    diverges.
//
//   ./fig3_latency_model_vs_sim [--levels=5] [--worms=16,32,64] [--quick]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 5));
  const auto worms = args.get_int_list("worms", {16, 32, 64});
  harness::SweepConfig base = bench::sweep_defaults(args, 16);
  bench::reject_unknown_flags(args);

  topo::ButterflyFatTree ft(levels);
  std::printf("FIG3: %s, Poisson arrivals, uniform destinations\n",
              ft.name().c_str());

  // One SweepEngine for the model curves, one SimEngine campaign runner for
  // the simulation points: each worm length's load sweep fans out across
  // the pool instead of simulating point by point.
  harness::SweepEngine engine;
  harness::SimEngine sims;
  for (long worm : worms) {
    core::FatTreeModel model({.levels = levels,
                              .worm_flits = static_cast<double>(worm)});
    const double sat = engine.saturation_load(model);
    harness::SweepConfig sweep = base;
    sweep.worm_flits = static_cast<int>(worm);
    sweep.loads = bench::fraction_loads(sat);

    const auto rows = harness::compare_latency(ft, model, sweep, &engine, &sims);
    harness::print_experiment(
        "FIG3 series: " + std::to_string(worm) + "-flit worms (model saturation " +
            std::to_string(sat) + " flits/cyc/PE)",
        harness::comparison_table(rows));
    std::printf("mean |model-sim| latency error over stable points: %.2f%%\n",
                harness::mean_abs_pct_error(rows));
    std::printf("zero-load reference s_f + Dbar - 1 = %.2f cycles\n",
                static_cast<double>(worm) + model.mean_distance() - 1.0);
  }
  return 0;
}

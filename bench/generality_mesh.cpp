// GEN-MESH — the general model on a network with NO symmetry shortcut: the
// k-ary 2-mesh under dimension-order routing, whose center channels carry
// more traffic than its edges.  The model here is the per-physical-channel
// graph produced by exact flow propagation (core/full_graph.hpp) — several
// hundred coupled channel classes — solved by the same backward sweep.
//
// This stands in for the paper's k-ary n-cube context (Dally); see
// DESIGN.md "Substitutions" for why the mesh (deadlock-free DOR, acyclic
// channel dependencies) is the faithful choice.
//
// Success criterion: model tracks simulation within ~10% through the knee
// on 8x8 and 16x16 meshes.
//
//   ./generality_mesh [--radix=8,16] [--worm=16] [--quick]
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const auto radix_list = args.get_int_list("radix", {8, 16});
  const int worm = static_cast<int>(args.get_int("worm", 16));
  harness::SweepConfig base = bench::sweep_defaults(args, worm);
  bench::reject_unknown_flags(args);

  std::vector<std::unique_ptr<topo::Mesh>> meshes;
  std::vector<core::GeneralModel> models;
  for (long radix : radix_list) {
    meshes.push_back(std::make_unique<topo::Mesh>(static_cast<int>(radix), 2));
    models.push_back(core::build_full_channel_graph(*meshes.back()));
    models.back().opts.worm_flits = worm;
  }

  harness::SweepEngine engine;
  for (std::size_t i = 0; i < models.size(); ++i) {
    const core::GeneralModel& net = models[i];
    const topo::Mesh& mesh = *meshes[i];
    const double sat = engine.saturation_load(net);

    harness::SweepConfig sweep = base;
    sweep.loads = {sat * 0.2, sat * 0.4, sat * 0.6, sat * 0.8, sat * 0.9};
    const auto rows = harness::compare_latency(mesh, net, sweep, &engine);
    harness::print_experiment(
        "GEN-MESH: " + mesh.name() + ", " + std::to_string(worm) +
            "-flit worms, per-channel model with " +
            std::to_string(net.graph.size()) + " channel classes (saturation " +
            std::to_string(sat) + " flits/cyc/PE)",
        harness::comparison_table(rows));
    std::printf("mean |model-sim| latency error: %.2f%%\n",
                harness::mean_abs_pct_error(rows));
  }
  return 0;
}

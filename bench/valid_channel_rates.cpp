// VALID-RATES — direct validation of the paper's §3.2 rate derivation
// (Eq. 12-15): per-level channel message rates and utilizations measured by
// the simulator against λ⟨l,l+1⟩ = λ₀·P↑_l·2^l.
//
// Success criterion: measured per-link rates match Eq. 14 within sampling
// noise (~2%) in both directions at every level — the load balance the
// whole analytical model rests on.
//
//   ./valid_channel_rates [--levels=4] [--worm=16] [--load-frac=0.6] [--quick]
#include <iostream>

#include "bench_common.hpp"
#include "topo/channels.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 4));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  const double frac = args.get_double("load-frac", 0.6);
  const bool quick = args.get_bool("quick", false);
  bench::reject_unknown_flags(args);

  topo::ButterflyFatTree ft(levels);
  core::FatTreeModel model(
      {.levels = levels, .worm_flits = static_cast<double>(worm)});
  const double load = model.saturation_load() * frac;
  const double lambda0 = load / worm;

  sim::SimConfig cfg;
  cfg.load_flits = load;
  cfg.worm_flits = worm;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.warmup_cycles = quick ? 4'000 : 10'000;
  cfg.measure_cycles = quick ? 20'000 : 60'000;
  cfg.max_cycles = 20 * cfg.measure_cycles;
  cfg.channel_stats = true;
  sim::SimNetwork net(ft);
  sim::Simulator s(net, cfg);
  const sim::SimResult r = s.run();

  const topo::ChannelTable ct(ft);
  const double window = static_cast<double>(cfg.measure_cycles);
  std::vector<double> up_rate(static_cast<std::size_t>(levels), 0.0);
  std::vector<double> down_rate(static_cast<std::size_t>(levels), 0.0);
  std::vector<double> up_busy(static_cast<std::size_t>(levels), 0.0);
  std::vector<long> up_links(static_cast<std::size_t>(levels), 0);
  std::vector<long> down_links(static_cast<std::size_t>(levels), 0);
  for (int ch = 0; ch < ct.size(); ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    const int lf = ft.node_level(dc.src_node);
    const int lt = ft.node_level(dc.dst_node);
    const auto& st = r.channels[static_cast<std::size_t>(ch)];
    if (lt > lf) {
      up_rate[static_cast<std::size_t>(lf)] += static_cast<double>(st.worms);
      up_busy[static_cast<std::size_t>(lf)] += static_cast<double>(st.busy_cycles);
      ++up_links[static_cast<std::size_t>(lf)];
    } else {
      down_rate[static_cast<std::size_t>(lt)] += static_cast<double>(st.worms);
      ++down_links[static_cast<std::size_t>(lt)];
    }
  }

  util::Table t({"level pair", "links", "Eq.14 rate", "sim up rate",
                 "sim down rate", "up err %", "sim link util"});
  t.set_precision(1, 0);
  t.set_precision(2, 6);
  t.set_precision(3, 6);
  t.set_precision(4, 6);
  for (int l = 0; l < levels; ++l) {
    const double expected = model.rate_up(l, lambda0);
    const double up = up_rate[static_cast<std::size_t>(l)] /
                      (window * up_links[static_cast<std::size_t>(l)]);
    const double down = down_rate[static_cast<std::size_t>(l)] /
                        (window * down_links[static_cast<std::size_t>(l)]);
    const double util_frac = up_busy[static_cast<std::size_t>(l)] /
                             (window * up_links[static_cast<std::size_t>(l)]);
    std::string pair_label = "<";
    pair_label += std::to_string(l);
    pair_label += ",";
    pair_label += std::to_string(l + 1);
    pair_label += ">";
    t.add_row({std::move(pair_label),
               static_cast<double>(up_links[static_cast<std::size_t>(l)]), expected,
               up, down, 100.0 * (up - expected) / expected, util_frac});
  }
  harness::print_experiment(
      "VALID-RATES: measured channel rates vs Eq. 14/15 at load " +
          std::to_string(load) + " flits/cyc/PE (N=" +
          std::to_string(static_cast<long>(util::ipow(4, levels))) + ")",
      t);
  return 0;
}

// EXT-VC — virtual channels (multi-lane storage) on the butterfly fat-tree:
// the Stergiou-style extension where each physical link multiplexes L
// independent one-flit lanes sharing one flit/cycle of bandwidth.
//
// For N = 64 and N = 256 under uniform and 10%-hotspot traffic, this bench
// sweeps the lane count and reports, per L:
//  * the lane-aware model's saturation load (P/L blocking discount,
//    M/G/(m·L) lane-pool waits, multiplexing stretch — channel_solver.hpp);
//  * the simulator's overload throughput (per-lane latches, round-robin
//    bandwidth arbitration);
//  * latency agreement at fractions of the model's saturation.
//
// Measured behavior (numbers recorded in EXPERIMENTS.md):
//  * the second lane buys the bulk of the saturation headroom (most of the
//    head-of-line blocking relief), matching Stergiou's multi-lane MIN
//    observation;
//  * beyond L ≈ 2–4 the gain flattens or reverses: every added lane shares
//    the same flit/cycle, so the multiplexing penalty catches up with the
//    blocking relief — an interior optimum the lane-aware model reproduces;
//  * under hotspot the relief is strictly positive in both model and sim
//    (blocked hot-destination worms no longer seal whole tree levels).
//
//   ./ext_virtual_channels [--levels=3,4] [--lanes=1,2,4] [--worm=16] [--quick]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  std::vector<std::int64_t> levels_list = args.get_int_list("levels", {3, 4});
  if (quick && !args.has("levels")) levels_list = {3};
  const std::vector<std::int64_t> lane_list = args.get_int_list("lanes", {1, 2, 4});
  const int worm = static_cast<int>(args.get_int("worm", 16));
  const long warmup = args.get_int("warmup", quick ? 3'000 : 8'000);
  const long measure = args.get_int("measure", quick ? 8'000 : 25'000);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  bench::reject_unknown_flags(args);

  struct PatternCase {
    const char* name;
    traffic::TrafficSpec spec;
  };
  const PatternCase cases[] = {
      {"uniform", traffic::TrafficSpec::uniform()},
      {"hotspot-10%", traffic::TrafficSpec::hotspot(0.1)},
  };

  harness::SweepEngine engine;
  harness::SimEngine sims;
  core::SolveOptions opts;
  opts.worm_flits = static_cast<double>(worm);

  for (std::int64_t levels : levels_list) {
    const long n_procs = util::ipow(4, static_cast<int>(levels));
    for (const PatternCase& pc : cases) {
      // One lane-axis family per (N, pattern): the factory rebuilds the
      // traffic model with the topology's uniform lane count changed.  The
      // previous family's models were just dropped, so their addresses can
      // be recycled — flush the engine's address-keyed memo cache.
      engine.clear_cache();
      topo::ButterflyFatTree ft(static_cast<int>(levels));
      std::vector<int> lanes;
      for (std::int64_t l : lane_list) lanes.push_back(static_cast<int>(l));
      const std::vector<harness::FamilyMember> family = engine.sweep_lanes(
          [&](int L) {
            ft.set_uniform_lanes(L);
            return std::make_unique<core::GeneralModel>(
                core::build_traffic_model(ft, pc.spec, opts));
          },
          lanes, {0.2, 0.5, 0.8});

      // Simulation side of the family as ONE SimEngine campaign: per lane
      // count an overload probe and a 50%-of-saturation latency run.  A
      // SimNetwork snapshots lane counts at construction, so each L gets
      // its own live topology object for the campaign.
      std::vector<std::unique_ptr<topo::ButterflyFatTree>> lane_topos;
      std::vector<harness::SimCell> cells;
      for (const harness::FamilyMember& fm : family) {
        const int L = static_cast<int>(fm.parameter);
        lane_topos.push_back(
            std::make_unique<topo::ButterflyFatTree>(static_cast<int>(levels)));
        lane_topos.back()->set_uniform_lanes(L);
        const topo::Topology* topo = lane_topos.back().get();

        harness::SimCell ovl;
        ovl.topology = topo;
        ovl.cfg.arrivals = sim::ArrivalProcess::Overload;
        ovl.cfg.worm_flits = worm;
        ovl.cfg.seed = seed;
        ovl.cfg.traffic = pc.spec;
        ovl.cfg.warmup_cycles = warmup;
        ovl.cfg.measure_cycles = measure;
        ovl.cfg.channel_stats = false;
        cells.push_back(std::move(ovl));

        harness::SimCell mid;
        mid.topology = topo;
        mid.cfg.load_flits = fm.points[1].load_flits;
        mid.cfg.worm_flits = worm;
        mid.cfg.seed = seed + 17 * static_cast<std::uint64_t>(L);
        mid.cfg.traffic = pc.spec;
        mid.cfg.warmup_cycles = warmup;
        mid.cfg.measure_cycles = 4 * measure;
        mid.cfg.max_cycles = 60 * measure;
        mid.cfg.channel_stats = false;
        cells.push_back(std::move(mid));
      }
      const std::vector<harness::SimCellResult> outs = sims.run_cells(cells);

      util::Table t({"lanes", "model sat", "sim overload", "model/sim",
                     "model L@50%", "sim L@50%", "err@50%"});
      for (std::size_t i = 0; i < family.size(); ++i) {
        const harness::FamilyMember& fm = family[i];
        const int L = static_cast<int>(fm.parameter);
        const sim::SimResult& ovl = outs[2 * i].runs.front();
        const sim::SimResult& mid = outs[2 * i + 1].runs.front();

        const double model_sat = fm.saturation_rate * worm;
        const double model50 = fm.points[1].est.latency;
        std::vector<util::Cell> row{static_cast<double>(L), model_sat,
                                    ovl.throughput_flits_per_pe,
                                    model_sat / ovl.throughput_flits_per_pe,
                                    model50};
        if (mid.saturated || mid.latency.count() == 0) {
          row.push_back(std::string("sat"));
          row.push_back(std::string("-"));
        } else {
          const double sim50 = mid.latency.mean();
          row.push_back(sim50);
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%+.1f%%",
                        100.0 * (model50 - sim50) / sim50);
          row.push_back(std::string(buf));
        }
        t.add_row(std::move(row));
      }
      harness::print_experiment(
          "EXT-VC: saturation and latency vs lane count, N=" +
              std::to_string(n_procs) + ", " + std::string(pc.name) +
              " (saturation in flits/cycle/PE; latencies at 50% of each "
              "member's model saturation)",
          t);
    }
  }
  std::printf(
      "(lane 2 buys most of the head-of-line relief; past L~2-4 the shared\n"
      " flit/cycle of physical bandwidth claws the gain back — the interior\n"
      " optimum both columns reproduce.  See EXPERIMENTS.md for recorded runs)\n");
  return 0;
}

// TAB-LAT — "Latencies from the model and simulation were compared for
// networks with up to 1024 processing nodes" (paper §3.6): model accuracy
// across network sizes N = 64, 256, 1024 at fixed fractions of each size's
// saturation load.
//
// Success criterion: mean |model - sim| error stays in single-digit percent
// for every size in the stable region.
//
//   ./tab_latency_scaling [--levels=2,3,4,5] [--worm=16] [--quick]
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const auto levels_list = args.get_int_list("levels", {2, 3, 4, 5});
  const int worm = static_cast<int>(args.get_int("worm", 16));
  harness::SweepConfig base = bench::sweep_defaults(args, worm);
  bench::reject_unknown_flags(args);

  util::Table t({"N", "load(flits/cyc)", "model L", "sim L", "sim sem",
                 "err %", "note"});
  t.set_precision(0, 0);
  t.set_precision(1, 4);

  // The models stay alive for the engine's whole run (its memo cache keys
  // on their addresses).
  std::vector<core::FatTreeModel> models;
  models.reserve(levels_list.size());
  for (long levels : levels_list)
    models.emplace_back(core::FatTreeModelOptions{
        .levels = static_cast<int>(levels),
        .worm_flits = static_cast<double>(worm)});

  harness::SweepEngine engine;
  for (const core::FatTreeModel& model : models) {
    topo::ButterflyFatTree ft(model.options().levels);
    harness::SweepConfig sweep = base;
    const double sat = engine.saturation_load(model);
    sweep.loads = {sat * 0.25, sat * 0.5, sat * 0.75, sat * 0.9};
    const auto rows = harness::compare_latency(ft, model, sweep, &engine);
    for (const auto& r : rows) {
      const double err =
          r.sim_latency > 0.0
              ? 100.0 * (r.model_latency - r.sim_latency) / r.sim_latency
              : util::kNaN;
      t.add_row({static_cast<double>(ft.num_processors()), r.load,
                 r.model_latency, r.sim_latency, r.sim_sem, err,
                 r.sim_saturated ? util::Cell{std::string("sim:sat")} : util::Cell{}});
    }
  }
  harness::print_experiment(
      "TAB-LAT: model vs simulation latency across network sizes (" +
          std::to_string(worm) + "-flit worms)",
      t);
  return 0;
}

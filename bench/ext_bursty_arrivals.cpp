// EXT-BURSTY — bursty message injection through the arrivals subsystem:
// model-vs-simulation accuracy per arrival process, and the cost of
// assuming Poisson when the workload is not.
//
// For N = 64 (fat-tree levels 3) and N = 256 (levels 4) under uniform and
// 10%-hotspot traffic, this bench sweeps the arrival-process catalog
// (Poisson, deterministic, compound-Poisson batches, MMPP-2) and reports,
// per process:
//  * the bursty-aware model's saturation load (the QNA C_a² propagation of
//    core::build_traffic_model + the Allen–Cunneen G/G/m wait of
//    queueing::ChannelSolver, retuned per process via set_injection_ca2);
//  * latency agreement at 20% and 50% of that model's own saturation
//    against a simulator driven by the SAME ArrivalSpec objects;
//  * what the untuned Poisson model (C_a² = 1) predicts at the same loads —
//    the "Poisson optimism" column: under MMPP hotspot traffic the Poisson
//    model undershoots the simulated latency long before Poisson
//    saturation, which is the whole point of the subsystem.
//
//   ./ext_bursty_arrivals [--levels=3,4] [--worm=16] [--quick] [--seed=1]
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  std::vector<std::int64_t> levels_list = args.get_int_list("levels", {3, 4});
  if (quick && !args.has("levels")) levels_list = {3};
  const int worm = static_cast<int>(args.get_int("worm", 16));
  const long warmup = args.get_int("warmup", quick ? 4'000 : 8'000);
  const long measure = args.get_int("measure", quick ? 12'000 : 40'000);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  bench::reject_unknown_flags(args);

  struct PatternCase {
    const char* name;
    traffic::TrafficSpec spec;
  };
  const PatternCase patterns[] = {
      {"uniform", traffic::TrafficSpec::uniform()},
      {"hotspot-10%", traffic::TrafficSpec::hotspot(0.1)},
  };
  const std::vector<arrivals::ArrivalSpec> processes = {
      arrivals::ArrivalSpec::deterministic(),
      arrivals::ArrivalSpec::poisson(),
      arrivals::ArrivalSpec::batch(4.0),
      arrivals::ArrivalSpec::mmpp2(0.3, 0.1, 8.0),
  };
  const double fracs[] = {0.2, 0.5};

  harness::SweepEngine engine;
  harness::SimEngine sims;
  core::SolveOptions opts;
  opts.worm_flits = static_cast<double>(worm);

  for (std::int64_t levels : levels_list) {
    const long n_procs = util::ipow(4, static_cast<int>(levels));
    topo::ButterflyFatTree ft(static_cast<int>(levels));
    for (const PatternCase& pc : patterns) {
      engine.clear_cache();  // previous pattern's family models were dropped
      // ONE routed model per (N, pattern); each family member is an
      // O(channels) C_a² retune of a copy — the burstiness axis never
      // re-runs the O(N²·hops) route enumeration.
      const core::GeneralModel base = core::build_traffic_model(ft, pc.spec, opts);
      const std::vector<harness::FamilyMember> family = engine.sweep_burstiness(
          [&](const arrivals::ArrivalSpec& p) {
            auto m = std::make_unique<core::GeneralModel>(base);
            m->set_injection_process(p);
            return m;
          },
          processes, {fracs[0], fracs[1]});

      // Simulation side as one campaign: per process, a latency run at each
      // fraction of ITS model's saturation, driven by the same ArrivalSpec.
      std::vector<harness::SimCell> cells;
      for (std::size_t i = 0; i < processes.size(); ++i) {
        for (double frac : fracs) {
          harness::SimCell cell;
          cell.topology = &ft;
          cell.cfg.load_flits =
              family[i].saturation_rate * frac * static_cast<double>(worm);
          cell.cfg.worm_flits = worm;
          cell.cfg.seed = seed + 1000 * static_cast<std::uint64_t>(i);
          cell.cfg.traffic = pc.spec;
          cell.cfg.arrival_process = processes[i];
          cell.cfg.warmup_cycles = warmup;
          cell.cfg.measure_cycles = measure;
          cell.cfg.max_cycles = 40 * measure;
          cell.cfg.channel_stats = false;
          cell.label = processes[i].name();
          cells.push_back(std::move(cell));
        }
      }
      const std::vector<harness::SimCellResult> outs = sims.run_cells(cells);

      std::printf("\nN=%ld %s, %d-flit worms\n", n_procs, pc.name, worm);
      // "eff Ca^2" is the variability parameter the model consumes
      // (ArrivalSpec::effective_ca2): the interval SCV for renewal
      // processes, the limiting index of dispersion for MMPP-2.
      util::Table t({"process", "eff Ca^2", "sat load", "model@20%", "sim@20%",
                     "err@20%", "model@50%", "sim@50%", "err@50%",
                     "poisson-model err@50%"});
      for (std::size_t i = 0; i < processes.size(); ++i) {
        const harness::FamilyMember& fm = family[i];
        std::vector<util::Cell> row;
        row.reserve(10);  // also sidesteps a GCC 12 variant-move false
                          // positive in -Wmaybe-uninitialized
        row.push_back(std::string(processes[i].name()));
        row.push_back(fm.parameter);
        row.push_back(fm.saturation_rate * worm);
        double sim50 = 0.0;
        for (std::size_t f = 0; f < 2; ++f) {
          const sim::SimResult& r = outs[2 * i + f].runs.front();
          const double model = fm.points[f].est.latency;
          row.push_back(model);
          if (r.saturated || r.latency.count() == 0) {
            row.push_back(std::string("sat"));
            row.push_back(std::string("-"));
          } else {
            const double sim = r.latency.mean();
            if (f == 1) sim50 = sim;
            row.push_back(sim);
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * (model - sim) / sim);
            row.push_back(std::string(buf));
          }
        }
        // The optimism column: the UNTUNED (C_a² = 1) model at this
        // process's 50% load vs this process's simulated latency.
        if (sim50 > 0.0) {
          const double poisson_model =
              engine.evaluate(base, fm.saturation_rate * fracs[1]).latency;
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%+.1f%%",
                        100.0 * (poisson_model - sim50) / sim50);
          row.push_back(std::string(buf));
        } else {
          row.push_back(std::string("-"));
        }
        t.add_row(std::move(row));
      }
      t.print(std::cout);
    }
  }
  std::printf(
      "\n(err = (model - sim)/sim at fractions of each process's own model\n"
      " saturation; the last column evaluates the Poisson-assumption model\n"
      " at the same load — its optimism grows with Ca^2.)\n");
  return 0;
}

// ABL-COND — an approximation INSIDE the paper, found during reproduction:
// Eq. 22 branches a message on channel ⟨l-1, l⟩ upward with the
// UNCONDITIONAL probability P↑_l, but a worm that already climbed past
// level l-1 is known not to terminate below level l — the exact
// continuation probability is P↑_l / P↑_{l-1}.
//
// This bench quantifies the approximation against the exact-conditional
// collapsed graph and the exact-flow per-channel graph (which agree with
// each other to machine precision; tested).  Measured verdict: the paper's
// simplification is slightly optimistic, costing under 0.5% latency through
// mid load and ~2.5% at 95% of saturation on N = 1024 — small against the
// model's other idealizations, so the simplification is justified.
//
//   ./ablation_conditional_prob [--levels=5] [--worm=16]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 5));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  bench::reject_unknown_flags(args);

  const core::NetworkModel paper = core::build_fattree_collapsed(levels);
  const core::NetworkModel exact =
      core::build_fattree_collapsed(levels, 2, /*exact_conditionals=*/true);
  core::SolveOptions opts;
  opts.worm_flits = worm;
  const double sat_paper = core::model_saturation_rate(paper, opts) * worm;
  const double sat_exact = core::model_saturation_rate(exact, opts) * worm;

  util::Table t({"load(flits/cyc)", "paper (uncond. P↑) L", "exact conditional L",
                 "difference %"});
  t.set_precision(0, 4);
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
    const double load = sat_paper * frac;
    const double a = core::model_latency(paper, load / worm, opts).latency;
    const double b = core::model_latency(exact, load / worm, opts).latency;
    t.add_row({load, a, b, 100.0 * (a - b) / b});
  }
  harness::print_experiment(
      "ABL-COND: Eq. 22's unconditional P↑ vs exact conditional branching, N=" +
          std::to_string(static_cast<long>(util::ipow(4, levels))),
      t);
  std::printf("saturation: paper form %.5f vs exact conditionals %.5f"
              " flits/cyc/PE (%.2f%% apart)\n",
              sat_paper, sat_exact, 100.0 * (sat_paper / sat_exact - 1.0));
  return 0;
}

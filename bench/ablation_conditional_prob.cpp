// ABL-COND — an approximation INSIDE the paper, found during reproduction:
// Eq. 22 branches a message on channel ⟨l-1, l⟩ upward with the
// UNCONDITIONAL probability P↑_l, but a worm that already climbed past
// level l-1 is known not to terminate below level l — the exact
// continuation probability is P↑_l / P↑_{l-1}.
//
// This bench quantifies the approximation against the exact-conditional
// collapsed graph and the exact-flow per-channel graph (which agree with
// each other to machine precision; tested).  Measured verdict: the paper's
// simplification is slightly optimistic, costing under 0.5% latency through
// mid load and ~2.5% at 95% of saturation on N = 1024 — small against the
// model's other idealizations, so the simplification is justified.
//
//   ./ablation_conditional_prob [--levels=5] [--worm=16]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 5));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  bench::reject_unknown_flags(args);

  core::GeneralModel paper = core::build_fattree_collapsed(levels);
  core::GeneralModel exact =
      core::build_fattree_collapsed(levels, 2, /*exact_conditionals=*/true);
  paper.opts.worm_flits = worm;
  exact.opts.worm_flits = worm;

  harness::SweepEngine engine;
  const double sat_paper = engine.saturation_load(paper);
  const double sat_exact = engine.saturation_load(exact);

  const std::vector<double> fracs{0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95};
  std::vector<double> loads;
  for (double f : fracs) loads.push_back(sat_paper * f);
  const auto pts_paper = engine.sweep_load(paper, loads);
  const auto pts_exact = engine.sweep_load(exact, loads);

  util::Table t({"load(flits/cyc)", "paper (uncond. P↑) L", "exact conditional L",
                 "difference %"});
  t.set_precision(0, 4);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double a = pts_paper[i].est.latency;
    const double b = pts_exact[i].est.latency;
    t.add_row({loads[i], a, b, 100.0 * (a - b) / b});
  }
  harness::print_experiment(
      "ABL-COND: Eq. 22's unconditional P↑ vs exact conditional branching, N=" +
          std::to_string(static_cast<long>(util::ipow(4, levels))),
      t);
  std::printf("saturation: paper form %.5f vs exact conditionals %.5f"
              " flits/cyc/PE (%.2f%% apart)\n",
              sat_paper, sat_exact, 100.0 * (sat_paper / sat_exact - 1.0));
  return 0;
}

// GEN-HC — "These ideas can also be applied to other networks" (paper §1/§4):
// the general channel-graph model instantiated for the binary hypercube
// under e-cube routing — the Draper & Ghosh setting the paper builds on —
// validated against the same flit-level simulator.
//
// Success criterion: single-digit-percent model error in the stable region
// for n = 6..10 (64..1024 processors), without any hypercube-specific model
// code beyond the 60-line channel-class builder.
//
//   ./generality_hypercube [--dims=6,8,10] [--worm=16] [--quick]
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const auto dims_list = args.get_int_list("dims", {6, 8, 10});
  const int worm = static_cast<int>(args.get_int("worm", 16));
  harness::SweepConfig base = bench::sweep_defaults(args, worm);
  bench::reject_unknown_flags(args);

  std::vector<core::GeneralModel> models;
  models.reserve(dims_list.size());
  for (long dims : dims_list) {
    models.push_back(core::build_hypercube_collapsed(static_cast<int>(dims)));
    models.back().opts.worm_flits = worm;
  }

  harness::SweepEngine engine;
  for (std::size_t i = 0; i < models.size(); ++i) {
    const core::GeneralModel& net = models[i];
    topo::Hypercube hc(static_cast<int>(dims_list[i]));
    const double sat = engine.saturation_load(net);

    harness::SweepConfig sweep = base;
    sweep.loads = {sat * 0.2, sat * 0.4, sat * 0.6, sat * 0.8, sat * 0.9};
    const auto rows = harness::compare_latency(hc, net, sweep, &engine);
    harness::print_experiment(
        "GEN-HC: " + hc.name() + ", " + std::to_string(worm) +
            "-flit worms (model saturation " + std::to_string(sat) +
            " flits/cyc/PE)",
        harness::comparison_table(rows));
    std::printf("mean |model-sim| latency error: %.2f%%\n",
                harness::mean_abs_pct_error(rows));
  }
  return 0;
}

// EXT-TRAFFIC — boundary of validity of the paper's assumption 1 (uniform
// destinations): the SAME uniform-traffic model prediction against
// simulations driven by non-uniform patterns.
//
// Measured behavior (see EXPERIMENTS.md):
//  * Uniform: the model is accurate — this column is FIG3 again;
//  * BitComplement: every message crosses the root, yet measured latency is
//    LOWER than the uniform prediction — it is a permutation, so there is
//    no ejection-channel contention and the randomized up-routing balances
//    the top level perfectly (the fat-tree's area-universality at work);
//    the uniform model is pessimistic here;
//  * Transpose: also a (near-)permutation, mildly cheaper than uniform;
//  * Hotspot (10%): the hotspot ejection link saturates far below the
//    uniform prediction — the model is badly optimistic, the genuine
//    validity boundary of assumption 1.
//
//   ./ext_traffic_patterns [--levels=4] [--worm=16] [--quick]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 4));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  const bool quick = args.get_bool("quick", false);
  const long warmup = args.get_int("warmup", quick ? 4'000 : 10'000);
  const long measure = args.get_int("measure", quick ? 10'000 : 30'000);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  bench::reject_unknown_flags(args);

  topo::ButterflyFatTree ft(levels);
  core::FatTreeModel model(
      {.levels = levels, .worm_flits = static_cast<double>(worm)});
  const double sat = model.saturation_load();

  struct PatternCase {
    const char* name;
    sim::TrafficPattern pattern;
  };
  const PatternCase cases[] = {
      {"uniform", sim::TrafficPattern::Uniform},
      {"bit-complement", sim::TrafficPattern::BitComplement},
      {"transpose", sim::TrafficPattern::Transpose},
      {"hotspot-10%", sim::TrafficPattern::Hotspot},
  };

  util::Table t({"load(flits/cyc)", "uniform-model L", "sim uniform",
                 "sim bit-complement", "sim transpose", "sim hotspot-10%"});
  t.set_precision(0, 4);

  for (double frac : {0.2, 0.4, 0.6, 0.8}) {
    const double load = sat * frac;
    std::vector<util::Cell> row{load, model.evaluate_load(load).latency};
    for (const PatternCase& pc : cases) {
      sim::SimConfig cfg;
      cfg.load_flits = load;
      cfg.worm_flits = worm;
      cfg.pattern = pc.pattern;
      cfg.seed = seed;
      cfg.warmup_cycles = warmup;
      cfg.measure_cycles = measure;
      cfg.max_cycles = 15 * measure;
      cfg.channel_stats = false;
      const sim::SimResult r = sim::simulate(ft, cfg);
      if (r.saturated) {
        row.push_back(std::string("sat"));
      } else {
        row.push_back(r.latency.mean());
      }
    }
    t.add_row(std::move(row));
  }
  harness::print_experiment(
      "EXT-TRAFFIC: the uniform-traffic model vs non-uniform workloads, N=" +
          std::to_string(static_cast<long>(util::ipow(4, levels))) +
          " (uniform model saturation " + std::to_string(sat) + ")",
      t);
  std::printf("(the model assumes uniform destinations — the paper's assumption 1;"
              " permutations run BELOW the uniform prediction, hotspots far above:"
              " the model bounds well-mixed traffic, not endpoint-skewed traffic)\n");
  return 0;
}

// EXT-TRAFFIC — boundary of validity of the paper's assumption 1 (uniform
// destinations), now measured AND modeled: each non-uniform pattern gets a
// pattern-aware analytical column (core::build_traffic_model routes the
// actual destination distribution) next to the uniform closed form and the
// flit-level simulation.
//
// Measured behavior (numbers recorded in EXPERIMENTS.md):
//  * Uniform: model accurate — this column is FIG3 again;
//  * BitComplement: a permutation; no ejection contention, and the
//    randomized up-routing balances the top level perfectly — measured
//    latency runs BELOW the uniform prediction (area-universality at work);
//    the pattern-aware model tracks the direction by routing the actual
//    root-crossing flows;
//  * Transpose: also a (near-)permutation, mildly cheaper than uniform;
//  * Hotspot (10%): the hotspot ejection link saturates far below the
//    uniform prediction.  The uniform model is badly optimistic — the
//    genuine validity boundary of assumption 1 — while the pattern-aware
//    model sees the skewed ejection rate and saturates accordingly.
//
//   ./ext_traffic_patterns [--levels=4] [--worm=16] [--quick]
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 4));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  const bool quick = args.get_bool("quick", false);
  const long warmup = args.get_int("warmup", quick ? 4'000 : 10'000);
  const long measure = args.get_int("measure", quick ? 10'000 : 30'000);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  bench::reject_unknown_flags(args);

  topo::ButterflyFatTree ft(levels);
  core::FatTreeModel uniform_model(
      {.levels = levels, .worm_flits = static_cast<double>(worm)});
  const double sat = uniform_model.saturation_load();

  struct PatternCase {
    const char* name;
    traffic::TrafficSpec spec;
  };
  const PatternCase cases[] = {
      {"uniform", traffic::TrafficSpec::uniform()},
      {"bit-compl", traffic::TrafficSpec::bit_complement()},
      {"transpose", traffic::TrafficSpec::transpose()},
      {"hotspot-10%", traffic::TrafficSpec::hotspot(0.1)},
  };

  // One pattern-aware model per case, from the same spec the simulator runs.
  core::SolveOptions opts;
  opts.worm_flits = static_cast<double>(worm);
  std::vector<std::unique_ptr<core::GeneralModel>> models;
  for (const PatternCase& pc : cases) {
    models.push_back(std::make_unique<core::GeneralModel>(
        core::build_traffic_model(ft, pc.spec, opts)));
  }

  harness::SweepEngine engine;
  std::printf("pattern-aware saturation (flits/cycle/PE) vs uniform closed form %.4f:\n",
              sat);
  for (std::size_t i = 0; i < models.size(); ++i) {
    std::printf("  %-12s %.4f\n", cases[i].name, engine.saturation_load(*models[i]));
  }
  std::printf("\n");

  std::vector<std::string> headers{"load(flits/cyc)", "uniform-model L"};
  for (const PatternCase& pc : cases) {
    headers.push_back(std::string("model ") + pc.name);
    headers.push_back(std::string("sim ") + pc.name);
  }
  util::Table t(headers);
  t.set_precision(0, 4);

  // All (load, pattern) simulation points as ONE SimEngine campaign over a
  // single shared SimNetwork of the fat-tree.
  const double fracs[] = {0.2, 0.4, 0.6, 0.8};
  std::vector<harness::SimCell> cells;
  for (double frac : fracs) {
    for (const PatternCase& pc : cases) {
      harness::SimCell cell;
      cell.topology = &ft;
      cell.cfg.load_flits = sat * frac;
      cell.cfg.worm_flits = worm;
      cell.cfg.traffic = pc.spec;
      cell.cfg.seed = seed;
      cell.cfg.warmup_cycles = warmup;
      cell.cfg.measure_cycles = measure;
      cell.cfg.max_cycles = 15 * measure;
      cell.cfg.channel_stats = false;
      cells.push_back(std::move(cell));
    }
  }
  harness::SimEngine sims;
  const std::vector<harness::SimCellResult> outs = sims.run_cells(cells);

  const util::Cell sat_cell{std::string("sat")};
  for (std::size_t f = 0; f < std::size(fracs); ++f) {
    const double load = sat * fracs[f];
    std::vector<util::Cell> row{load, uniform_model.evaluate_load(load).latency};
    for (std::size_t i = 0; i < models.size(); ++i) {
      const core::LatencyEstimate est = engine.evaluate_load(*models[i], load);
      if (est.stable) {
        row.push_back(util::Cell{est.latency});
      } else {
        row.push_back(sat_cell);
      }
      const sim::SimResult& r = outs[f * models.size() + i].runs.front();
      if (r.saturated) {
        row.push_back(sat_cell);
      } else {
        row.push_back(util::Cell{r.latency.mean()});
      }
    }
    t.add_row(std::move(row));
  }
  harness::print_experiment(
      "EXT-TRAFFIC: uniform vs pattern-aware model vs simulation, N=" +
          std::to_string(static_cast<long>(util::ipow(4, levels))) +
          " (loads are fractions of the uniform saturation " + std::to_string(sat) +
          ")",
      t);
  std::printf("(assumption 1 bounds well-mixed traffic only: permutations run BELOW\n"
              " the uniform prediction, hotspots saturate far above it — the\n"
              " pattern-aware columns route the actual destination distribution and\n"
              " recover both effects; see EXPERIMENTS.md for the recorded numbers)\n");
  return 0;
}

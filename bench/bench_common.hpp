// bench/bench_common.hpp
//
// Thin bench-side veneer over the harness library.  The shared plumbing
// (load grids, sweep defaults, flag validation, the sweep/sim engines
// themselves) lives in wormnet::harness so every bench links against ONE
// copy; this header re-exports it under the bench namespace, pulls in the
// umbrella header, and adds the machine-readable results plumbing shared by
// the bench binaries:
//
//   --json <path> / --json=<path>   write results as JSON (the perf
//                                   trajectory file BENCH_perf.json at the
//                                   repo root is regenerated this way; see
//                                   README "Performance").
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "wormnet.hpp"

namespace wormnet::bench {

using harness::fraction_loads;
using harness::reject_unknown_flags;
using harness::sweep_defaults;

/// Extract a `--json <path>` or `--json=<path>` flag from a raw argv,
/// compacting argv in place so downstream parsers (google-benchmark's
/// Initialize, util::Args) never see it.  Returns the path, or "" if the
/// flag is absent.  A valueless `--json` aborts loudly (exit 2) rather
/// than leaking a confusing flag downstream.
inline std::string take_json_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      continue;
    }
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --json requires a path\n", argv[0]);
        std::exit(2);
      }
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return path;
}

/// Minimal machine-readable benchmark-results writer: a flat list of
/// {name, ns_per_op, counters} records.  Deliberately tiny — the point is a
/// stable, diffable perf-trajectory format, not a general JSON library.
class JsonResultWriter {
 public:
  /// Record one result.  `counters` are (name, value) pairs.
  void add(std::string name, double ns_per_op,
           std::vector<std::pair<std::string, double>> counters = {}) {
    results_.push_back({std::move(name), ns_per_op, std::move(counters)});
  }

  /// Write all recorded results to `path`; returns false on I/O failure.
  /// Layout: {"results": [{"name": ..., "ns_per_op": ..., "counters": {...}}]}
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"results\": [\n");
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Result& r = results_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.6g",
                   r.name.c_str(), r.ns_per_op);
      if (!r.counters.empty()) {
        std::fprintf(f, ", \"counters\": {");
        for (std::size_t c = 0; c < r.counters.size(); ++c) {
          std::fprintf(f, "%s\"%s\": %.6g", c ? ", " : "",
                       r.counters[c].first.c_str(), r.counters[c].second);
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}%s\n", i + 1 < results_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
  }

  std::size_t size() const { return results_.size(); }

 private:
  struct Result {
    std::string name;
    double ns_per_op = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::vector<Result> results_;
};

}  // namespace wormnet::bench

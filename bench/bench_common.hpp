// bench/bench_common.hpp
//
// Shared plumbing for the experiment binaries: model adapters and the load
// grids used across figures.  Every bench accepts --quick to shrink its
// simulation windows (CI-friendly), and prints through
// harness::print_experiment so each emits both an aligned table and CSV.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "wormnet.hpp"

namespace wormnet::bench {

/// Adapt the closed-form fat-tree model to the harness ModelFn signature.
inline harness::ModelFn fattree_model_fn(core::FatTreeModelOptions opts) {
  return [opts](double load) {
    core::FatTreeModel model(opts);
    const core::FatTreeEvaluation ev = model.evaluate_load(load);
    core::LatencyEstimate est;
    est.stable = ev.stable;
    est.latency = ev.latency;
    est.inj_wait = ev.inj_wait;
    est.inj_service = ev.inj_service;
    est.mean_distance = ev.mean_distance;
    return est;
  };
}

/// Adapt a NetworkModel (hypercube, mesh, custom) to ModelFn.
inline harness::ModelFn network_model_fn(const core::NetworkModel* net,
                                         core::SolveOptions opts) {
  return [net, opts](double load) {
    return core::model_latency(*net, load / opts.worm_flits, opts);
  };
}

/// Load grid as fractions of a saturation point: dense through the knee and
/// two points past saturation so the series shows the blow-up, like the
/// paper's Fig. 3 curves.
inline std::vector<double> fraction_loads(double saturation_load,
                                          bool include_past_saturation = true) {
  std::vector<double> loads;
  for (double f : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.875, 0.95})
    loads.push_back(saturation_load * f);
  if (include_past_saturation) {
    loads.push_back(saturation_load * 1.05);
    loads.push_back(saturation_load * 1.15);
  }
  return loads;
}

/// Standard sweep parameters; --quick shrinks windows ~4x.
inline harness::SweepConfig sweep_defaults(const util::Args& args, int worm_flits) {
  harness::SweepConfig cfg;
  cfg.worm_flits = worm_flits;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool quick = args.get_bool("quick", false);
  cfg.warmup_cycles = args.get_int("warmup", quick ? 4'000 : 12'000);
  cfg.measure_cycles = args.get_int("measure", quick ? 10'000 : 40'000);
  cfg.max_cycles = args.get_int("max-cycles", quick ? 60'000 : 250'000);
  return cfg;
}

/// Abort on mistyped flags so a typo never silently runs the default.
inline void reject_unknown_flags(const util::Args& args) {
  const auto unused = args.unused();
  if (unused.empty()) return;
  std::fprintf(stderr, "unknown flag(s):");
  for (const auto& u : unused) std::fprintf(stderr, " --%s", u.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace wormnet::bench

// bench/bench_common.hpp
//
// Thin bench-side veneer over the harness library.  The shared plumbing
// (load grids, sweep defaults, flag validation, the sweep engine itself)
// lives in wormnet::harness so every bench links against ONE copy; this
// header only re-exports it under the bench namespace and pulls in the
// umbrella header.
#pragma once

#include "wormnet.hpp"

namespace wormnet::bench {

using harness::fraction_loads;
using harness::reject_unknown_flags;
using harness::sweep_defaults;

}  // namespace wormnet::bench

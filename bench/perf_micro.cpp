// PERF — google-benchmark microbenchmarks of the two engines:
//  * the analytical solver (closed form and general graph) — the payoff of
//    the paper is that these run in microseconds where simulation takes
//    seconds;
//  * the flit-level simulator's cycle throughput at small and Fig. 3 scale,
//    plus the three layers of the simulation-side perf overhaul: idle-cycle
//    fast-forward (vs the forced slow path), SimEngine campaign fan-out
//    (parallel vs serial), and the sharded traffic-model builder (parallel
//    vs serial);
//  * `--json <path>` additionally writes {name, ns/op, counters} records —
//    `./perf_micro --json ../BENCH_perf.json` regenerates the repo-root
//    perf-trajectory file (see README "Performance").
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace wormnet;

void BM_FatTreeClosedFormEvaluate(benchmark::State& state) {
  core::FatTreeModel model(
      {.levels = static_cast<int>(state.range(0)), .worm_flits = 16.0});
  const double load = model.saturation_load() * 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate_load(load).latency);
  }
}
BENCHMARK(BM_FatTreeClosedFormEvaluate)->Arg(3)->Arg(5)->Arg(8);

void BM_FatTreeSaturationSolve(benchmark::State& state) {
  core::FatTreeModel model(
      {.levels = static_cast<int>(state.range(0)), .worm_flits = 16.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.saturation_load());
  }
}
BENCHMARK(BM_FatTreeSaturationSolve)->Arg(5);

void BM_GeneralSolverCollapsedFatTree(benchmark::State& state) {
  const core::GeneralModel net =
      core::build_fattree_collapsed(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate(0.001).latency);
  }
}
BENCHMARK(BM_GeneralSolverCollapsedFatTree)->Arg(5)->Arg(8);

void BM_GeneralSolverMeshPerChannel(benchmark::State& state) {
  topo::Mesh mesh(static_cast<int>(state.range(0)), 2);
  const core::GeneralModel net = core::build_full_channel_graph(mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate(0.001).latency);
  }
  state.SetLabel(std::to_string(net.graph.size()) + " channel classes");
}
BENCHMARK(BM_GeneralSolverMeshPerChannel)->Arg(8)->Arg(16);

void BM_SweepEngineColdSweep(benchmark::State& state) {
  // A 32-point λ-sweep through the engine with caching disabled: the cost
  // of batched dispatch itself.
  core::FatTreeModel model({.levels = 5, .worm_flits = 16.0});
  const double sat = model.saturation_rate();
  std::vector<double> lambdas;
  for (int i = 1; i <= 32; ++i) lambdas.push_back(sat * 0.95 * i / 32);
  harness::SweepEngine engine({0, true, /*memoize=*/false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sweep_lambda(model, lambdas).back().est.latency);
  }
}
BENCHMARK(BM_SweepEngineColdSweep)->Unit(benchmark::kMicrosecond);

void BM_SweepEngineMemoizedSweep(benchmark::State& state) {
  // The same sweep with the memo cache hot: the engine's fast path.
  core::FatTreeModel model({.levels = 5, .worm_flits = 16.0});
  const double sat = model.saturation_rate();
  std::vector<double> lambdas;
  for (int i = 1; i <= 32; ++i) lambdas.push_back(sat * 0.95 * i / 32);
  harness::SweepEngine engine;
  engine.sweep_lambda(model, lambdas);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sweep_lambda(model, lambdas).back().est.latency);
  }
  // Registry-sourced counters: the same series a service would scrape.
  obs::Registry reg;
  engine.publish_metrics(reg, "bench");
  state.counters["cache_hits"] =
      reg.value("wormnet_sweep_cache_hits", "engine=bench");
  state.counters["cache_hit_rate"] =
      reg.value("wormnet_sweep_cache_hit_rate", "engine=bench");
}
BENCHMARK(BM_SweepEngineMemoizedSweep)->Unit(benchmark::kMicrosecond);

void BM_FullGraphBuild(benchmark::State& state) {
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_full_channel_graph(ft).graph.size());
  }
}
BENCHMARK(BM_FullGraphBuild)->Arg(2)->Arg(3);

void BM_TrafficModelBuildFatTree(benchmark::State& state) {
  // Route enumeration under a DENSE pattern (hotspot: every pair weight is
  // non-zero) on the N = 4^levels fat-tree.  The per-destination flow DP
  // must stay O(N² · hops): sub-second at N = 1024 (levels = 5).  Since the
  // perf overhaul the destinations run as fixed shards on the shared pool
  // (bitwise-identical to serial); this is the default-path (parallel)
  // number — compare BM_TrafficModelBuildFatTreeSerial for the fan-out gain.
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  const traffic::TrafficSpec spec = traffic::TrafficSpec::hotspot(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_traffic_model(ft, spec).graph.size());
  }
  state.SetLabel("N=" + std::to_string(ft.num_processors()));
}
BENCHMARK(BM_TrafficModelBuildFatTree)->Arg(3)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_TrafficModelBuildFatTreeSerial(benchmark::State& state) {
  // The same build forced serial (threads = 1): the denominator of the
  // builder-parallelization speedup.
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  const traffic::TrafficSpec spec = traffic::TrafficSpec::hotspot(0.1);
  core::TrafficBuildOptions build;
  build.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_traffic_model(ft, spec, {}, build).graph.size());
  }
  state.SetLabel("N=" + std::to_string(ft.num_processors()));
}
BENCHMARK(BM_TrafficModelBuildFatTreeSerial)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_TrafficModelBuild10Cube(benchmark::State& state) {
  // The same enumeration on the 1024-node e-cube hypercube (long paths,
  // deterministic routing).
  topo::Hypercube hc(10);
  const traffic::TrafficSpec spec = traffic::TrafficSpec::hotspot(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_traffic_model(hc, spec).graph.size());
  }
}
BENCHMARK(BM_TrafficModelBuild10Cube)->Unit(benchmark::kMillisecond);

void BM_TrafficModelBuildCollapsed(benchmark::State& state) {
  // The symmetry-collapsed build of the uniform fat-tree: one route pass per
  // destination ORBIT (uniform has exactly one) folded to 2·levels classes,
  // so the cost is O(channels) — the channel-table walk — instead of the
  // dense path's O(N²·hops).  levels = 10 is the 1,048,576-processor
  // headline: the dense builder would need ~10⁶ full passes.
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  const traffic::TrafficSpec spec = traffic::TrafficSpec::uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_traffic_model_collapsed(ft, spec).graph.size());
  }
  state.SetLabel("N=" + std::to_string(ft.num_processors()));
}
BENCHMARK(BM_TrafficModelBuildCollapsed)
    ->Arg(5)
    ->Arg(8)
    ->Arg(9)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_TrafficModelBuildCollapsedHotspot(benchmark::State& state) {
  // Hotspot collapse: the pin refines the quotient to levels + 1 destination
  // orbits (one rep pass each), still orders of magnitude under dense.
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  const traffic::TrafficSpec spec = traffic::TrafficSpec::hotspot(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_traffic_model_collapsed(ft, spec).graph.size());
  }
  state.SetLabel("N=" + std::to_string(ft.num_processors()));
}
BENCHMARK(BM_TrafficModelBuildCollapsedHotspot)
    ->Arg(5)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TrafficModelBuildCollapsed10Cube(benchmark::State& state) {
  // The 10-cube folds to dims + 2 = 12 classes under its XOR-translation
  // group; compare BM_TrafficModelBuild10Cube, the dense build of the same
  // network under hotspot (which has no usable hypercube symmetry).
  topo::Hypercube hc(10);
  const traffic::TrafficSpec spec = traffic::TrafficSpec::uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_traffic_model_collapsed(hc, spec).graph.size());
  }
}
BENCHMARK(BM_TrafficModelBuildCollapsed10Cube)->Unit(benchmark::kMillisecond);

void BM_SimulatorCyclesPerSecond(benchmark::State& state) {
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  sim::SimNetwork net(ft);
  core::FatTreeModel model(
      {.levels = static_cast<int>(state.range(0)), .worm_flits = 16.0});
  sim::SimConfig cfg;
  cfg.load_flits = model.saturation_load() * 0.7;
  cfg.worm_flits = 16;
  cfg.warmup_cycles = 500;  // open-loop runs require a warmup (validated)
  cfg.measure_cycles = 5'000;
  cfg.max_cycles = 100'000;
  cfg.channel_stats = false;
  long cycles = 0;
  for (auto _ : state) {
    cfg.seed++;
    sim::Simulator s(net, cfg);
    const sim::SimResult r = s.run();
    cycles += r.cycles_run;
    benchmark::DoNotOptimize(r.latency.mean());
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorCyclesPerSecond)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_SimulatorIdleFastForward(benchmark::State& state) {
  // Layer-2 proof: the same low-load seeded run with idle-cycle
  // fast-forward active (arg 0) and forced off (arg 1).  At 20% of
  // saturation on the N=16 fat-tree the network is empty most of the time,
  // so the active run covers the same simulated window in a fraction of
  // the wall time — the cycles/s counter measures SIMULATED cycles per
  // wall second (results are bit-identical either way; the sim label
  // carries the proof).
  topo::ButterflyFatTree ft(2);
  sim::SimNetwork net(ft);
  core::FatTreeModel model({.levels = 2, .worm_flits = 16.0});
  sim::SimConfig cfg;
  cfg.load_flits = model.saturation_load() * 0.05;
  cfg.worm_flits = 16;
  cfg.warmup_cycles = 500;  // open-loop runs require a warmup (validated)
  cfg.measure_cycles = 200'000;
  cfg.max_cycles = 2'000'000;
  cfg.channel_stats = false;
  cfg.disable_fast_forward = state.range(0) != 0;
  long cycles = 0;
  for (auto _ : state) {
    cfg.seed++;
    sim::Simulator s(net, cfg);
    const sim::SimResult r = s.run();
    cycles += r.cycles_run;
    benchmark::DoNotOptimize(r.latency.mean());
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.SetLabel(state.range(0) == 0 ? "fast-forward" : "slow-path");
}
BENCHMARK(BM_SimulatorIdleFastForward)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SimEngineCampaign(benchmark::State& state) {
  // Layer-1 proof: a 12-cell campaign (4 loads x 3 seed-replications, one
  // shared SimNetwork) through SimEngine — parallel (arg 0) vs serial
  // (arg 1).  On a multi-core host the parallel campaign's wall time
  // divides by the core count; results are bitwise-identical either way
  // (tests/test_perf_guards.cpp).
  topo::ButterflyFatTree ft(2);
  core::FatTreeModel model({.levels = 2, .worm_flits = 16.0});
  std::vector<harness::SimCell> cells;
  for (double frac : {0.2, 0.4, 0.6, 0.8}) {
    harness::SimCell cell;
    cell.topology = &ft;
    cell.cfg.load_flits = model.saturation_load() * frac;
    cell.cfg.worm_flits = 16;
    cell.cfg.seed = 1;
    cell.cfg.warmup_cycles = 500;
    cell.cfg.measure_cycles = 4'000;
    cell.cfg.max_cycles = 100'000;
    cell.cfg.channel_stats = false;
    cell.replications = 3;
    cells.push_back(std::move(cell));
  }
  harness::SimEngine engine({/*threads=*/0, /*parallel=*/state.range(0) == 0});
  std::int64_t sims = 0;
  for (auto _ : state) {
    const auto results = engine.run_cells(cells);
    sims += 12;
    benchmark::DoNotOptimize(results.front().latency.mean);
  }
  state.counters["sims/s"] = benchmark::Counter(
      static_cast<double>(sims), benchmark::Counter::kIsRate);
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(engine.threads()));
  state.SetLabel(state.range(0) == 0 ? "parallel" : "serial");
}
// UseRealTime: the campaign's work runs on the pool's threads, so the
// benchmark (and its rate counters) must clock wall time, not the calling
// thread's CPU time.
BENCHMARK(BM_SimEngineCampaign)->Arg(0)->Arg(1)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_QueueingKernels(benchmark::State& state) {
  double x = 20.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queueing::mg2_wait_wormhole(0.05, x, 16.0));
  }
}
BENCHMARK(BM_QueueingKernels);

void BM_TrafficModelRetuneCa2(benchmark::State& state) {
  // The bursty-arrivals retune path: one O(channels) set_injection_process
  // sweep over the built graph.  This is what makes a burstiness axis cheap
  // — compare BM_TrafficModelBuildFatTree/4, the O(N²·hops) rebuild it
  // replaces (the builder rows above already INCLUDE the one-time SCV
  // self_frac propagation, which rides the same DP as the rates).
  core::GeneralModel net = [] {
    topo::ButterflyFatTree ft(4);
    return core::build_traffic_model(ft, traffic::TrafficSpec::uniform());
  }();
  const arrivals::ArrivalSpec processes[2] = {
      arrivals::ArrivalSpec::batch(4.0),
      arrivals::ArrivalSpec::mmpp2(0.3, 0.1, 8.0)};
  std::size_t i = 0;
  for (auto _ : state) {
    net.set_injection_process(processes[i ^= 1]);
    benchmark::DoNotOptimize(net.injection_ca2);
  }
  state.SetLabel(std::to_string(net.graph.size()) + " channel classes");
}
BENCHMARK(BM_TrafficModelRetuneCa2);

void BM_QueryEngineRetunePattern(benchmark::State& state) {
  // The pattern delta axis at N = 256: a RESIDENT dense model follows a
  // moving hotspot via retune_traffic's signed-delta propagation — only the
  // destinations whose pair weights changed are re-propagated, then the
  // O(channels) assembly re-runs.  Compare BM_TrafficModelBuildFatTree/4,
  // the cold rebuild each move would otherwise cost.
  topo::ButterflyFatTree ft(4);
  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::hotspot(0.2, 3));
  const traffic::TrafficSpec targets[2] = {
      traffic::TrafficSpec::hotspot(0.2, 7),
      traffic::TrafficSpec::hotspot(0.2, 3)};
  std::size_t i = 0;
  long passes = 0;
  for (auto _ : state) {
    const auto report = rm.retune_traffic(targets[i ^= 1]);
    passes += report.passes;
    benchmark::DoNotOptimize(rm.model().mean_distance);
  }
  state.counters["passes/op"] = benchmark::Counter(
      static_cast<double>(passes), benchmark::Counter::kAvgIterations);
  state.SetLabel("N=" + std::to_string(ft.num_processors()) + " dense delta");
}
BENCHMARK(BM_QueryEngineRetunePattern)->Unit(benchmark::kMillisecond);

void BM_QueryEngineRetunePatternCollapsed(benchmark::State& state) {
  // The same moving hotspot against a COLLAPSED resident: the new spec
  // keeps the fat-tree symmetry, so each retune is one pass per destination
  // ORBIT (levels + 1 of them) against O(classes) state.
  topo::ButterflyFatTree ft(4);
  core::TrafficBuildOptions build;
  build.collapse = core::CollapseMode::Auto;
  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::hotspot(0.2, 0),
                                 {}, build);
  const traffic::TrafficSpec targets[2] = {
      traffic::TrafficSpec::hotspot(0.3, 0),
      traffic::TrafficSpec::hotspot(0.2, 0)};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm.retune_traffic(targets[i ^= 1]).collapsed);
  }
  state.SetLabel("N=" + std::to_string(ft.num_processors()) + " orbit path");
}
BENCHMARK(BM_QueryEngineRetunePatternCollapsed)->Unit(benchmark::kMillisecond);

void BM_QueryEngineFaultRetune(benchmark::State& state) {
  // The fault delta axis at N = 256: a resident dense model alternates
  // between an N−1 up-link failure and the healthy fabric via
  // retune_faults.  The FaultedTopology decorator keeps the channel table
  // index-aligned, so only the destination columns whose routing changed
  // re-propagate — compare BM_TrafficModelBuildFatTree/4, the cold
  // FaultedTopology rebuild each availability scenario would otherwise
  // cost (the N−1 sweep in harness::QueryEngine::availability_n_minus_1
  // asks this question once per failable link).
  topo::ButterflyFatTree ft(4);
  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::hotspot(0.2, 3));
  auto faults = std::make_shared<topo::FaultSet>(ft);
  faults->fail_link(ft.switch_id(1, 0), topo::ButterflyFatTree::kParentPort0);
  const std::shared_ptr<const topo::FaultSet> scenarios[2] = {faults, nullptr};
  std::size_t i = 0;
  long passes = 0;
  for (auto _ : state) {
    const auto report = rm.retune_faults(scenarios[i ^= 1]);
    passes += report.passes;
    benchmark::DoNotOptimize(rm.model().mean_distance);
  }
  state.counters["passes/op"] = benchmark::Counter(
      static_cast<double>(passes), benchmark::Counter::kAvgIterations);
  state.SetLabel("N=" + std::to_string(ft.num_processors()) +
                 " N-1 up-link delta");
}
BENCHMARK(BM_QueryEngineFaultRetune)->Unit(benchmark::kMillisecond);

void BM_QueryEngineRetuneLanes(benchmark::State& state) {
  // The lane delta axis: set_uniform_lanes is one O(channels) sweep over
  // ChannelClass::lanes — bitwise-identical to a topology rebuild.
  topo::ButterflyFatTree ft(4);
  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::hotspot(0.2, 3));
  const int lanes[2] = {4, 2};
  std::size_t i = 0;
  for (auto _ : state) {
    rm.set_uniform_lanes(lanes[i ^= 1]);
    benchmark::DoNotOptimize(rm.model().graph.at(0).lanes);
  }
  state.SetLabel(std::to_string(rm.model().graph.size()) + " channel classes");
}
BENCHMARK(BM_QueryEngineRetuneLanes);

void BM_QueryEngineRetuneLoad(benchmark::State& state) {
  // The load delta axis: scale_injection_rates multiplies every per-link
  // rate — O(channels), composing across calls.
  topo::ButterflyFatTree ft(4);
  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::hotspot(0.2, 3));
  const double factors[2] = {1.25, 0.8};
  std::size_t i = 0;
  for (auto _ : state) {
    rm.scale_injection_rates(factors[i ^= 1]);
    benchmark::DoNotOptimize(rm.model().graph.at(0).rate_per_link);
  }
  state.SetLabel(std::to_string(rm.model().graph.size()) + " channel classes");
}
BENCHMARK(BM_QueryEngineRetuneLoad);

void BM_TrafficModelBuildTapered(benchmark::State& state) {
  // The heterogeneous build: a 2:1-tapered fat-tree with 4-flit buffers and
  // unit link latency under the dense hotspot pattern.  Attribute stamping
  // rides the same channel-table walk as the uniform build, so this must
  // track BM_TrafficModelBuildFatTree at the same levels — heterogeneity is
  // free at build time.
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  ft.set_tier_bandwidth(1, 0.5);
  ft.set_uniform_buffer_depth(4);
  ft.set_uniform_link_latency(1.0);
  const traffic::TrafficSpec spec = traffic::TrafficSpec::hotspot(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_traffic_model(ft, spec).graph.size());
  }
  state.SetLabel("N=" + std::to_string(ft.num_processors()) + " tapered 2:1");
}
BENCHMARK(BM_TrafficModelBuildTapered)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_QueryEngineRetuneBuffers(benchmark::State& state) {
  // The buffer-depth delta axis: set_uniform_buffers is one O(channels)
  // sweep over ChannelClass::buffer_depth — the QueryEngine's "how shallow
  // can buffers go" axis never rebuilds.
  topo::ButterflyFatTree ft(4);
  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::hotspot(0.2, 3));
  const int depths[2] = {4, util::kInfiniteBufferDepth};
  std::size_t i = 0;
  for (auto _ : state) {
    rm.set_uniform_buffers(depths[i ^= 1]);
    benchmark::DoNotOptimize(rm.model().graph.at(0).buffer_depth);
  }
  state.SetLabel(std::to_string(rm.model().graph.size()) + " channel classes");
}
BENCHMARK(BM_QueryEngineRetuneBuffers);

void BM_QueryEngineRetuneBandwidth(benchmark::State& state) {
  // The bandwidth delta axis: scale_bandwidths multiplies every channel
  // class's bandwidth (taper shape preserved) — O(channels), composing.
  topo::ButterflyFatTree ft(4);
  ft.set_tier_bandwidth(1, 0.5);
  core::RetunableTrafficModel rm(ft, traffic::TrafficSpec::hotspot(0.2, 3));
  const double factors[2] = {2.0, 0.5};
  std::size_t i = 0;
  for (auto _ : state) {
    rm.scale_bandwidths(factors[i ^= 1]);
    benchmark::DoNotOptimize(rm.model().graph.at(0).bandwidth);
  }
  state.SetLabel(std::to_string(rm.model().graph.size()) + " channel classes");
}
BENCHMARK(BM_QueryEngineRetuneBandwidth);

void BM_QueryEngineThroughput(benchmark::State& state) {
  // The headline queries/sec number at N = 256: a 256-query operator batch
  // (16 hotspot fractions × 4 load points × 2 lane counts, all latency
  // questions) answered two ways:
  //  * arg 0 — through the QueryEngine with result-memoization OFF (every
  //    query is solved; only the engine's variant grouping and
  //    cheapest-path planning — collapsed retunes here, since hotspot
  //    deltas keep the fat-tree symmetry — do the saving);
  //  * arg 1 — the pre-engine idiom: one cold build_traffic_model per
  //    query, then evaluate (BM_TrafficModelBuildFatTree/4 per question).
  // The acceptance bar is ≥ 100× between the two queries/s counters.
  topo::ButterflyFatTree ft(4);
  std::vector<harness::WhatIfQuery> batch;
  for (int f = 0; f < 16; ++f) {
    for (int l = 0; l < 4; ++l) {
      for (int lanes : {1, 2}) {
        harness::WhatIfQuery q;
        q.traffic = traffic::TrafficSpec::hotspot(0.05 + 0.04 * f, 0);
        q.lambda0 = 0.0008 + 0.0004 * l;
        q.lanes = lanes;
        batch.push_back(q);
      }
    }
  }
  std::int64_t served = 0;
  if (state.range(0) == 0) {
    harness::QueryEngine::Options opts;
    opts.memoize = false;  // honest: no result-cache credit across iterations
    opts.build.collapse = core::CollapseMode::Auto;
    harness::QueryEngine engine(ft, traffic::TrafficSpec::uniform(), opts);
    for (auto _ : state) {
      const auto results = engine.run_batch(batch);
      served += static_cast<std::int64_t>(results.size());
      benchmark::DoNotOptimize(results.front().est.latency);
    }
    // Registry-sourced counters on the --json row: how the engine actually
    // served the batches (cost classes, cache traffic), scraped from the
    // same publish_metrics series a live dashboard reads.
    obs::Registry reg;
    engine.publish_metrics(reg, "bench");
    state.counters["retunes"] =
        reg.value("wormnet_query_served", "engine=bench,cost=retune");
    state.counters["rebuilds"] =
        reg.value("wormnet_query_served", "engine=bench,cost=rebuild");
    state.counters["cache_hits"] =
        reg.value("wormnet_sweep_cache_hits", "engine=bench");
    state.counters["variants"] =
        reg.value("wormnet_query_variants_prepared", "engine=bench");
  } else {
    for (auto _ : state) {
      double sink = 0.0;
      for (const harness::WhatIfQuery& q : batch) {
        core::GeneralModel net = core::build_traffic_model(ft, *q.traffic);
        if (q.lanes != 0) net.set_uniform_lanes(q.lanes);
        sink += net.evaluate(q.lambda0).latency;
      }
      served += static_cast<std::int64_t>(batch.size());
      benchmark::DoNotOptimize(sink);
    }
  }
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  state.SetLabel(state.range(0) == 0 ? "retune-served batch"
                                     : "rebuild-per-query");
}
// UseRealTime: batch work runs on the engine's pool threads.
BENCHMARK(BM_QueryEngineThroughput)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ArrivalGapSampling(benchmark::State& state) {
  // ns per sampled inter-arrival gap, per process — the incremental cost a
  // bursty TrafficSource pays over the Poisson baseline (arg 0).
  const arrivals::ArrivalSpec specs[] = {
      arrivals::ArrivalSpec::poisson(),
      arrivals::ArrivalSpec::batch(4.0),
      arrivals::ArrivalSpec::mmpp2(0.3, 0.1, 8.0),
  };
  const arrivals::ArrivalSpec& spec = specs[state.range(0)];
  util::Rng rng = util::Rng::stream(1, 0);
  arrivals::ArrivalState st = spec.init_state(0.05, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.next_gap(st, 0.05, rng));
  }
  state.SetLabel(spec.name());
}
BENCHMARK(BM_ArrivalGapSampling)->Arg(0)->Arg(1)->Arg(2);

/// Console reporter that additionally feeds bench::JsonResultWriter: one
/// {name, ns/op, counters} record per run, written when the run set
/// finishes.  Implemented as a display-reporter wrapper (not a file
/// reporter) so it needs no --benchmark_out plumbing, and only uses API
/// that is stable across the google-benchmark versions in the dev image
/// (1.7) and CI (1.8).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      std::vector<std::pair<std::string, double>> counters;
      counters.reserve(run.counters.size());
      for (const auto& [name, counter] : run.counters) {
        counters.push_back({name, static_cast<double>(counter)});
      }
      // Always nanoseconds per iteration, regardless of the benchmark's
      // display unit (GetAdjustedRealTime would be unit-scaled).
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9
              : 0.0;
      writer_.add(run.benchmark_name(), ns_per_op, std::move(counters));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    if (writer_.write(path_)) {
      std::fprintf(stderr, "perf_micro: wrote %zu results to %s\n",
                   writer_.size(), path_.c_str());
    }
  }

 private:
  std::string path_;
  wormnet::bench::JsonResultWriter writer_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = wormnet::bench::take_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonTeeReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  return 0;
}

// PERF — google-benchmark microbenchmarks of the two engines:
//  * the analytical solver (closed form and general graph) — the payoff of
//    the paper is that these run in microseconds where simulation takes
//    seconds;
//  * the flit-level simulator's cycle throughput at small and Fig. 3 scale.
#include <benchmark/benchmark.h>

#include "wormnet.hpp"

namespace {

using namespace wormnet;

void BM_FatTreeClosedFormEvaluate(benchmark::State& state) {
  core::FatTreeModel model(
      {.levels = static_cast<int>(state.range(0)), .worm_flits = 16.0});
  const double load = model.saturation_load() * 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate_load(load).latency);
  }
}
BENCHMARK(BM_FatTreeClosedFormEvaluate)->Arg(3)->Arg(5)->Arg(8);

void BM_FatTreeSaturationSolve(benchmark::State& state) {
  core::FatTreeModel model(
      {.levels = static_cast<int>(state.range(0)), .worm_flits = 16.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.saturation_load());
  }
}
BENCHMARK(BM_FatTreeSaturationSolve)->Arg(5);

void BM_GeneralSolverCollapsedFatTree(benchmark::State& state) {
  const core::GeneralModel net =
      core::build_fattree_collapsed(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate(0.001).latency);
  }
}
BENCHMARK(BM_GeneralSolverCollapsedFatTree)->Arg(5)->Arg(8);

void BM_GeneralSolverMeshPerChannel(benchmark::State& state) {
  topo::Mesh mesh(static_cast<int>(state.range(0)), 2);
  const core::GeneralModel net = core::build_full_channel_graph(mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate(0.001).latency);
  }
  state.SetLabel(std::to_string(net.graph.size()) + " channel classes");
}
BENCHMARK(BM_GeneralSolverMeshPerChannel)->Arg(8)->Arg(16);

void BM_SweepEngineColdSweep(benchmark::State& state) {
  // A 32-point λ-sweep through the engine with caching disabled: the cost
  // of batched dispatch itself.
  core::FatTreeModel model({.levels = 5, .worm_flits = 16.0});
  const double sat = model.saturation_rate();
  std::vector<double> lambdas;
  for (int i = 1; i <= 32; ++i) lambdas.push_back(sat * 0.95 * i / 32);
  harness::SweepEngine engine({0, true, /*memoize=*/false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sweep_lambda(model, lambdas).back().est.latency);
  }
}
BENCHMARK(BM_SweepEngineColdSweep)->Unit(benchmark::kMicrosecond);

void BM_SweepEngineMemoizedSweep(benchmark::State& state) {
  // The same sweep with the memo cache hot: the engine's fast path.
  core::FatTreeModel model({.levels = 5, .worm_flits = 16.0});
  const double sat = model.saturation_rate();
  std::vector<double> lambdas;
  for (int i = 1; i <= 32; ++i) lambdas.push_back(sat * 0.95 * i / 32);
  harness::SweepEngine engine;
  engine.sweep_lambda(model, lambdas);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sweep_lambda(model, lambdas).back().est.latency);
  }
}
BENCHMARK(BM_SweepEngineMemoizedSweep)->Unit(benchmark::kMicrosecond);

void BM_FullGraphBuild(benchmark::State& state) {
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_full_channel_graph(ft).graph.size());
  }
}
BENCHMARK(BM_FullGraphBuild)->Arg(2)->Arg(3);

void BM_TrafficModelBuildFatTree(benchmark::State& state) {
  // Route enumeration under a DENSE pattern (hotspot: every pair weight is
  // non-zero) on the N = 4^levels fat-tree.  The per-destination flow DP
  // must stay O(N² · hops): sub-second at N = 1024 (levels = 5).
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  const traffic::TrafficSpec spec = traffic::TrafficSpec::hotspot(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_traffic_model(ft, spec).graph.size());
  }
  state.SetLabel("N=" + std::to_string(ft.num_processors()));
}
BENCHMARK(BM_TrafficModelBuildFatTree)->Arg(3)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_TrafficModelBuild10Cube(benchmark::State& state) {
  // The same enumeration on the 1024-node e-cube hypercube (long paths,
  // deterministic routing).
  topo::Hypercube hc(10);
  const traffic::TrafficSpec spec = traffic::TrafficSpec::hotspot(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_traffic_model(hc, spec).graph.size());
  }
}
BENCHMARK(BM_TrafficModelBuild10Cube)->Unit(benchmark::kMillisecond);

void BM_SimulatorCyclesPerSecond(benchmark::State& state) {
  topo::ButterflyFatTree ft(static_cast<int>(state.range(0)));
  sim::SimNetwork net(ft);
  core::FatTreeModel model(
      {.levels = static_cast<int>(state.range(0)), .worm_flits = 16.0});
  sim::SimConfig cfg;
  cfg.load_flits = model.saturation_load() * 0.7;
  cfg.worm_flits = 16;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 5'000;
  cfg.max_cycles = 100'000;
  cfg.channel_stats = false;
  long cycles = 0;
  for (auto _ : state) {
    cfg.seed++;
    sim::Simulator s(net, cfg);
    const sim::SimResult r = s.run();
    cycles += r.cycles_run;
    benchmark::DoNotOptimize(r.latency.mean());
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorCyclesPerSecond)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_QueueingKernels(benchmark::State& state) {
  double x = 20.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queueing::mg2_wait_wormhole(0.05, x, 16.0));
  }
}
BENCHMARK(BM_QueueingKernels);

}  // namespace

BENCHMARK_MAIN();

// EXT-MSERVER — the paper's §4 anticipated extension: "the framework can be
// extended for networks that require queuing models with more than two
// servers."  We build fat-trees with m = 1..4 parent links per switch
// (m = 2 is the paper's butterfly fat-tree), model them with the M/G/m
// kernel, and validate each against simulation.
//
// Success criteria:
//  * capacity grows with m, and the model's saturation prediction tracks
//    the simulator's overload throughput for every m;
//  * mid-load latency error stays in single digits for every m.
//
//   ./ext_multiserver_fattree [--levels=3] [--worm=16] [--quick]
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "topo/generalized_fattree.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  const bool quick = args.get_bool("quick", false);
  const long warmup = args.get_int("warmup", quick ? 4'000 : 10'000);
  const long measure = args.get_int("measure", quick ? 10'000 : 30'000);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  bench::reject_unknown_flags(args);

  util::Table t({"parents m", "model sat (flits/cyc/PE)", "sim overload",
                 "model/sim", "latency@60%: model", "sim", "err %"});
  t.set_precision(0, 0);
  t.set_precision(1, 5);
  t.set_precision(2, 5);
  t.set_precision(3, 3);

  std::vector<core::FatTreeModel> models;
  for (int m = 1; m <= 4; ++m)
    models.emplace_back(core::FatTreeModelOptions{
        .levels = levels, .worm_flits = static_cast<double>(worm), .parents = m});

  harness::SweepEngine engine;
  for (const core::FatTreeModel& model : models) {
    const int m = model.options().parents;
    topo::GeneralizedFatTree ft(levels, m);
    const double sat = engine.saturation_load(model);
    const harness::ThroughputRow thr = harness::compare_throughput(
        ft, sat, worm, seed, warmup, measure);

    const double load = sat * 0.6;
    sim::SimConfig cfg;
    cfg.load_flits = load;
    cfg.worm_flits = worm;
    cfg.seed = seed + static_cast<std::uint64_t>(m);
    cfg.warmup_cycles = warmup;
    cfg.measure_cycles = measure;
    cfg.max_cycles = 20 * measure;
    cfg.channel_stats = false;
    const sim::SimResult r = sim::simulate(ft, cfg);
    const double model_latency = engine.evaluate_load(model, load).latency;
    t.add_row({static_cast<double>(m), sat, thr.sim_overload_throughput, thr.ratio,
               model_latency, r.latency.mean(),
               100.0 * (model_latency - r.latency.mean()) / r.latency.mean()});
  }
  harness::print_experiment(
      "EXT-MSERVER: M/G/m fat-trees (m parent links), model vs simulation, N=" +
          std::to_string(static_cast<long>(util::ipow(4, levels))),
      t);
  return 0;
}

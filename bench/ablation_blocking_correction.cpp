// ABL-BP — ablation of the paper's novelty (2): the wormhole blocking-
// probability correction P(i|j) of Eq. 9/10, which discounts the M/G/m
// wait by the probability that the worms in service came from OTHER input
// links (a link occupied by a worm cannot present another arrival).
//
// Success criteria:
//  * with the correction, the model tracks simulation;
//  * without it (P = 1, the plain store-and-forward reuse of queueing
//    results), the model over-predicts latency at every load and
//    under-predicts capacity.
//
//   ./ablation_blocking_correction [--levels=5] [--worm=16] [--quick]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 5));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  harness::SweepConfig sweep = bench::sweep_defaults(args, worm);
  bench::reject_unknown_flags(args);

  core::FatTreeModelOptions with{.levels = levels,
                                 .worm_flits = static_cast<double>(worm)};
  core::FatTreeModelOptions without = with;
  without.blocking_correction = false;

  core::FatTreeModel model_with(with), model_without(without);
  harness::SweepEngine engine;
  sweep.loads = bench::fraction_loads(engine.saturation_load(model_with),
                                      /*include_past_saturation=*/false);

  topo::ButterflyFatTree ft(levels);
  const auto rows_with = harness::compare_latency(ft, model_with, sweep, &engine);
  const auto rows_without =
      harness::model_only_sweep(model_without, sweep, &engine);

  util::Table t({"load(flits/cyc)", "sim L", "corrected model L",
                 "uncorrected model L", "corrected err %", "uncorrected err %"});
  t.set_precision(0, 4);
  for (std::size_t i = 0; i < rows_with.size(); ++i) {
    const auto& a = rows_with[i];
    const auto& b = rows_without[i];
    const double ea = 100.0 * (a.model_latency - a.sim_latency) / a.sim_latency;
    const double eb = 100.0 * (b.model_latency - a.sim_latency) / a.sim_latency;
    t.add_row({a.load, a.sim_latency, a.model_latency,
               b.model_stable ? util::Cell{b.model_latency}
                              : util::Cell{std::string("inf")},
               ea, b.model_stable ? util::Cell{eb} : util::Cell{}});
  }
  harness::print_experiment(
      "ABL-BP: wormhole blocking-probability correction (Eq. 9/10) on vs off", t);
  std::printf("model saturation: corrected %.5f vs uncorrected %.5f flits/cyc/PE\n",
              engine.saturation_load(model_with),
              engine.saturation_load(model_without));
  return 0;
}

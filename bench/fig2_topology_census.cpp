// FIG2 — textual regeneration of the paper's Figure 2 (butterfly fat-tree
// structure), generalized across sizes: per-level switch and link census
// plus wiring verification, for N = 16 .. 1024.
//
// Success criterion: counts match the paper's formulas (N/2^(l+1) switches
// at level l, 4^n/2^l links between levels l and l+1) and the structural
// verifier finds no violations.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const auto levels_list = args.get_int_list("levels", {2, 3, 4, 5});
  bench::reject_unknown_flags(args);

  util::Table t({"N", "level", "switches", "links to level below", "verified"});
  for (int c = 0; c < 4; ++c) t.set_precision(c, 0);
  for (long levels : levels_list) {
    topo::ButterflyFatTree ft(static_cast<int>(levels));
    const topo::VerifyReport report = topo::verify_topology(ft);
    for (int l = 1; l <= levels; ++l) {
      t.add_row({static_cast<double>(ft.num_processors()), static_cast<double>(l),
                 static_cast<double>(ft.switches_at(l)),
                 static_cast<double>(ft.links_between(l - 1)),
                 std::string(report.ok() ? "ok" : "VIOLATIONS")});
    }
  }
  harness::print_experiment(
      "FIG2: butterfly fat-tree structure census (paper Fig. 2, all sizes)", t);

  // Distance structure per size: the D̄ entering Eq. 25.
  util::Table d({"N", "mean distance (channels)", "diameter"});
  d.set_precision(0, 0);
  d.set_precision(2, 0);
  for (long levels : levels_list) {
    topo::ButterflyFatTree ft(static_cast<int>(levels));
    d.add_row({static_cast<double>(ft.num_processors()), ft.mean_distance(),
               static_cast<double>(2 * levels)});
  }
  harness::print_experiment("FIG2b: path-length structure", d);
  return 0;
}

// TAB-THR — "The model produced accurate predictions on latency AND
// throughput for all cases under study" (paper §3.6): the Eq. 26 saturation
// load against the simulator's delivered throughput under overload
// (closed-loop, sources always backlogged), for every (N, worm length).
//
// Success criteria:
//  * model/sim capacity ratio within ~15% everywhere;
//  * the model's exact worm-length scale-invariance shows as a constant
//    column per N; the simulator's near-invariance confirms it.
//
//   ./tab_throughput_saturation [--levels=2,3,4,5] [--worms=16,32,64] [--quick]
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const auto levels_list = args.get_int_list("levels", {2, 3, 4, 5});
  const auto worms = args.get_int_list("worms", {16, 32, 64});
  const bool quick = args.get_bool("quick", false);
  const long warmup = args.get_int("warmup", quick ? 4'000 : 12'000);
  const long measure = args.get_int("measure", quick ? 10'000 : 30'000);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  bench::reject_unknown_flags(args);

  util::Table t({"N", "worm(flits)", "model sat (flits/cyc/PE)",
                 "sim overload throughput", "model/sim"});
  t.set_precision(0, 0);
  t.set_precision(1, 0);
  t.set_precision(2, 5);
  t.set_precision(3, 5);
  t.set_precision(4, 3);

  // One model per (N, worm) cell, alive for the engine's whole run; the
  // engine's cache makes each saturation bisection a one-time cost.
  std::vector<core::FatTreeModel> models;
  models.reserve(levels_list.size() * worms.size());
  for (long levels : levels_list)
    for (long worm : worms)
      models.emplace_back(core::FatTreeModelOptions{
          .levels = static_cast<int>(levels),
          .worm_flits = static_cast<double>(worm)});

  // One topology per N; the three worm lengths of each N share its
  // SimNetwork inside the campaign.
  std::vector<topo::ButterflyFatTree> topos;
  topos.reserve(levels_list.size());
  for (long levels : levels_list) topos.emplace_back(static_cast<int>(levels));

  // The whole table is ONE SimEngine campaign: every (N, worm) overload run
  // is an independent cell fanned across the pool.
  harness::SweepEngine engine;
  std::vector<harness::SimCell> cells;
  cells.reserve(models.size());
  for (const core::FatTreeModel& model : models) {
    harness::SimCell cell;
    for (std::size_t i = 0; i < levels_list.size(); ++i)
      if (levels_list[i] == model.options().levels) cell.topology = &topos[i];
    cell.cfg.arrivals = sim::ArrivalProcess::Overload;
    cell.cfg.worm_flits = static_cast<int>(model.worm_flits());
    cell.cfg.seed = seed;
    cell.cfg.warmup_cycles = warmup;
    cell.cfg.measure_cycles = measure;
    cell.cfg.channel_stats = false;
    cells.push_back(std::move(cell));
  }
  harness::SimEngine sims;
  const std::vector<harness::SimCellResult> results = sims.run_cells(cells);

  for (std::size_t i = 0; i < models.size(); ++i) {
    const core::FatTreeModel& model = models[i];
    const double model_sat = engine.saturation_load(model);
    const double sim_sat = results[i].runs.front().throughput_flits_per_pe;
    const double procs =
        static_cast<double>(cells[i].topology->num_processors());
    const double ratio = sim_sat > 0.0 ? model_sat / sim_sat : util::kNaN;
    t.add_row({procs, model.worm_flits(), model_sat, sim_sat, ratio});
  }
  harness::print_experiment(
      "TAB-THR: saturation throughput, model (Eq. 26) vs simulator overload", t);
  return 0;
}

// TAB-THR — "The model produced accurate predictions on latency AND
// throughput for all cases under study" (paper §3.6): the Eq. 26 saturation
// load against the simulator's delivered throughput under overload
// (closed-loop, sources always backlogged), for every (N, worm length).
//
// Success criteria:
//  * model/sim capacity ratio within ~15% everywhere;
//  * the model's exact worm-length scale-invariance shows as a constant
//    column per N; the simulator's near-invariance confirms it.
//
//   ./tab_throughput_saturation [--levels=2,3,4,5] [--worms=16,32,64] [--quick]
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const auto levels_list = args.get_int_list("levels", {2, 3, 4, 5});
  const auto worms = args.get_int_list("worms", {16, 32, 64});
  const bool quick = args.get_bool("quick", false);
  const long warmup = args.get_int("warmup", quick ? 4'000 : 12'000);
  const long measure = args.get_int("measure", quick ? 10'000 : 30'000);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  bench::reject_unknown_flags(args);

  util::Table t({"N", "worm(flits)", "model sat (flits/cyc/PE)",
                 "sim overload throughput", "model/sim"});
  t.set_precision(0, 0);
  t.set_precision(1, 0);
  t.set_precision(2, 5);
  t.set_precision(3, 5);
  t.set_precision(4, 3);

  // One model per (N, worm) cell, alive for the engine's whole run; the
  // engine's cache makes each saturation bisection a one-time cost.
  std::vector<core::FatTreeModel> models;
  models.reserve(levels_list.size() * worms.size());
  for (long levels : levels_list)
    for (long worm : worms)
      models.emplace_back(core::FatTreeModelOptions{
          .levels = static_cast<int>(levels),
          .worm_flits = static_cast<double>(worm)});

  harness::SweepEngine engine;
  for (const core::FatTreeModel& model : models) {
    topo::ButterflyFatTree ft(model.options().levels);
    const int worm = static_cast<int>(model.worm_flits());
    const harness::ThroughputRow row = harness::compare_throughput(
        ft, engine.saturation_load(model), worm, seed, warmup, measure);
    t.add_row({static_cast<double>(ft.num_processors()),
               static_cast<double>(worm), row.model_saturation_load,
               row.sim_overload_throughput, row.ratio});
  }
  harness::print_experiment(
      "TAB-THR: saturation throughput, model (Eq. 26) vs simulator overload", t);
  return 0;
}

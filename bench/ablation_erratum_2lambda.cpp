// ABL-ERR — the published erratum: the archived manuscript marks
// "Correction: Insert 2" at Eq. 21/23, i.e. the M/G/2 wait of the up-link
// bundle must be evaluated at the TOTAL bundle rate 2λ⟨l,l+1⟩, not the
// per-link rate as originally typeset.
//
// This is a model-only experiment (no simulation needed): it quantifies how
// far the uncorrected formula drifts — the uncorrected version halves the
// apparent load on every up-link pool, so it under-predicts latency and
// over-predicts capacity.
//
//   ./ablation_erratum_2lambda [--levels=5] [--worm=16]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wormnet;
  const util::Args args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 5));
  const int worm = static_cast<int>(args.get_int("worm", 16));
  bench::reject_unknown_flags(args);

  core::FatTreeModelOptions corrected{.levels = levels,
                                      .worm_flits = static_cast<double>(worm)};
  core::FatTreeModelOptions typo = corrected;
  typo.erratum_2lambda = false;

  core::FatTreeModel model_ok(corrected), model_typo(typo);
  harness::SweepEngine engine;
  const double sat_ok = engine.saturation_load(model_ok);
  const double sat_typo = engine.saturation_load(model_typo);

  const std::vector<double> fracs{0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95};
  std::vector<double> loads;
  for (double f : fracs) loads.push_back(sat_ok * f);
  const auto pts_ok = engine.sweep_load(model_ok, loads);
  const auto pts_typo = engine.sweep_load(model_typo, loads);

  util::Table t({"load(flits/cyc)", "corrected L", "as-typeset L", "drift %"});
  t.set_precision(0, 4);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double a = pts_ok[i].est.latency;
    const core::LatencyEstimate& b = pts_typo[i].est;
    t.add_row({loads[i], a,
               b.stable ? util::Cell{b.latency} : util::Cell{std::string("inf")},
               b.stable ? util::Cell{100.0 * (b.latency - a) / a} : util::Cell{}});
  }
  harness::print_experiment(
      "ABL-ERR: corrected Eq. 21/23 (M/G/2 at 2λ) vs as-typeset (M/G/2 at λ)", t);
  std::printf("saturation: corrected %.5f vs as-typeset %.5f flits/cyc/PE"
              " (+%.1f%% optimistic)\n",
              sat_ok, sat_typo, 100.0 * (sat_typo / sat_ok - 1.0));
  std::printf("(TAB-THR shows the simulator agrees with the corrected form)\n");
  return 0;
}

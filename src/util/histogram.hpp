// wormnet/util/histogram.hpp
//
// Fixed-width-bin histogram with overflow/underflow tracking and approximate
// quantiles.  Used for latency distributions (the analytical model predicts
// means; the histogram lets examples and EXPERIMENTS.md report tails too).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wormnet::util {

/// Histogram over [lo, hi) with `bins` equal-width bins.
/// Samples below lo / at-or-above hi land in dedicated under/overflow bins,
/// so total count is always exact even when the range guess was wrong.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  /// Record one sample.
  void add(double x);

  /// Total number of recorded samples (including under/overflow).
  std::int64_t count() const { return total_; }
  /// Samples below the range.
  std::int64_t underflow() const { return underflow_; }
  /// Samples at or above the range.
  std::int64_t overflow() const { return overflow_; }
  /// Count in bin i.
  std::int64_t bin_count(int i) const { return counts_.at(i); }
  /// Number of in-range bins.
  int bins() const { return static_cast<int>(counts_.size()); }
  /// Lower edge of bin i.
  double bin_lo(int i) const;
  /// Upper edge of bin i.
  double bin_hi(int i) const;

  /// Approximate quantile q in [0,1]: linear interpolation inside the bin
  /// containing the q-th sample.  Underflow counts as lo; overflow as hi.
  double quantile(double q) const;

  /// Multi-line ASCII rendering (one row per non-empty bin with a bar),
  /// suitable for example programs.
  std::string ascii(int max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace wormnet::util

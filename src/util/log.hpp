// wormnet/util/log.hpp
//
// Leveled logging with per-subsystem thresholds.  The simulator can emit
// per-cycle traces at Debug level (used by the wormhole-semantics tests);
// everything else logs at Info or above.  No allocation happens when the
// level is filtered out — LogLine checks the effective threshold in its
// constructor and never touches the stream when inactive.
//
// Thresholds are atomics (reads are relaxed loads), so concurrent
// set_log_level against logging threads is race-free.  Each subsystem can
// override the global threshold independently; unset subsystems follow the
// global one.  Output goes to stderr by default, or through an
// obs::LogSink when one is installed (obs/log_sink.hpp).
#pragma once

#include <sstream>
#include <string>

namespace wormnet::util {

/// Log severity, ordered.
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Coarse source-layer tag; each has its own optional threshold.
enum class Subsystem {
  General = 0,
  Topo = 1,
  Core = 2,
  Sim = 3,
  Harness = 4,
};
inline constexpr int kNumSubsystems = 5;

/// Short lowercase name ("topo", "core", ...) for prefixes and metrics.
const char* subsystem_name(Subsystem sub);

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
/// Current global threshold (default Warn, so tests/benches stay quiet).
LogLevel log_level();

/// Per-subsystem override; subsystems without one follow the global level.
void set_log_level(Subsystem sub, LogLevel level);
/// Drop every per-subsystem override (all follow the global level again).
void clear_subsystem_log_levels();
/// Effective threshold for a subsystem (its override, else the global).
LogLevel log_level(Subsystem sub);

/// Emit a message at the given level (appends newline).  Routes through
/// the installed obs::LogSink when there is one, else stderr.
void log_message(LogLevel level, const std::string& msg);
void log_message(LogLevel level, Subsystem sub, const std::string& msg);

/// The stderr backend itself — what sinks call to forward, bypassing the
/// sink dispatch (so a forwarding sink can't recurse into itself).
void log_message_stderr(LogLevel level, Subsystem sub, const std::string& msg);

namespace detail {
/// Builds the message only if the level passes, then emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level)
      : LogLine(level, Subsystem::General) {}
  LogLine(LogLevel level, Subsystem sub)
      : level_(level), sub_(sub), active_(level >= log_level(sub)) {}
  ~LogLine() {
    if (active_) log_message(level_, sub_, out_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (active_) out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  Subsystem sub_;
  bool active_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace wormnet::util

#define WORMNET_LOG(level) ::wormnet::util::detail::LogLine(::wormnet::util::LogLevel::level)
#define WORMNET_LOG_SUB(sub, level)                     \
  ::wormnet::util::detail::LogLine(                     \
      ::wormnet::util::LogLevel::level,                 \
      ::wormnet::util::Subsystem::sub)

// wormnet/util/log.hpp
//
// Leveled stderr logging.  The simulator can emit per-cycle traces at Debug
// level (used by the wormhole-semantics tests); everything else logs at Info
// or above.  No allocation happens when the level is filtered out.
#pragma once

#include <sstream>
#include <string>

namespace wormnet::util {

/// Log severity, ordered.
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
/// Current global threshold (default Warn, so tests/benches stay quiet).
LogLevel log_level();

/// Emit a message at the given level (appends newline).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
/// Builds the message only if the level passes, then emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), active_(level >= log_level()) {}
  ~LogLine() {
    if (active_) log_message(level_, out_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (active_) out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool active_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace wormnet::util

#define WORMNET_LOG(level) ::wormnet::util::detail::LogLine(::wormnet::util::LogLevel::level)

#include "util/math.hpp"

#include <algorithm>
#include <cmath>

namespace wormnet::util {

double rel_err(double a, double b) {
  const double denom = std::max(std::abs(b), 1e-12);
  return std::abs(a - b) / denom;
}

}  // namespace wormnet::util

// wormnet/util/table.hpp
//
// Column-oriented result tables.  Every bench binary regenerates one of the
// paper's figures/tables as a Table and prints it both human-aligned (for the
// terminal) and as CSV (for replotting), so the reproduction artifacts are
// machine-readable without a plotting dependency.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace wormnet::util {

/// One table cell: text, a double (formatted with the column's precision),
/// or empty (rendered as "-").
using Cell = std::variant<std::monostate, std::string, double>;

/// A simple rectangular table with named columns.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> columns);

  /// Per-column precision for doubles (default 4 digits).
  void set_precision(int col, int digits);

  /// Append a full row; must match the number of columns.
  void add_row(std::vector<Cell> cells);

  /// Start a new row and append cells one at a time.
  void begin_row();
  /// Append one cell to the row begun with begin_row().
  void push(Cell cell);

  /// Number of data rows.
  int rows() const { return static_cast<int>(rows_.size()); }
  /// Number of columns.
  int cols() const { return static_cast<int>(columns_.size()); }
  /// Read back a cell (for tests).
  const Cell& at(int row, int col) const;
  /// Numeric read-back; NaN if the cell is not a double.
  double num(int row, int col) const;
  /// Column index by header name; -1 if absent.
  int col_index(const std::string& name) const;

  /// Render with aligned columns.
  void print(std::ostream& out) const;
  /// Render as CSV (RFC-4180-ish quoting for strings containing commas).
  void print_csv(std::ostream& out) const;
  /// Convenience: aligned rendering into a string.
  std::string to_string() const;

 private:
  std::string format_cell(const Cell& c, int col) const;

  std::vector<std::string> columns_;
  std::vector<int> precision_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace wormnet::util

#include "util/rng.hpp"

#include <cmath>

namespace wormnet::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed; xoshiro must not be seeded with the all-zero state, and
  // SplitMix64 never yields four consecutive zeros from any seed.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t idx) {
  // Mix the stream index through one SplitMix64 avalanche before combining,
  // so streams 0,1,2,... do not share low-bit structure with the base seed.
  std::uint64_t mix = idx;
  const std::uint64_t salted = seed ^ splitmix64(mix) ^ 0xd1b54a32d192ed03ULL;
  return Rng(salted);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Take the top 53 bits: uniform in [0,1) on the 2^-53 grid.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_pos() {
  return 1.0 - uniform();  // in (0, 1]
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  WORMNET_EXPECTS(n > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  WORMNET_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  WORMNET_EXPECTS(rate > 0.0);
  return -std::log(uniform_pos()) / rate;
}

}  // namespace wormnet::util

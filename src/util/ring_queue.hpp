// wormnet/util/ring_queue.hpp
//
// A growable single-ended FIFO backed by one contiguous power-of-two buffer.
//
// Why not std::deque: the simulator's per-bundle request queues and
// per-source message queues push and pop every cycle in steady state, and
// libstdc++'s deque allocates/frees a block each time the cursor crosses a
// block boundary — which breaks the simulator's zero-allocation steady-state
// contract (tests/test_perf_guards.cpp counts operator new calls).  A ring
// buffer grows geometrically while filling up and then NEVER allocates
// again: capacity is retained across clear() and across any push/pop
// sequence that fits the high-water mark.
//
// Semantics are the std::deque subset the simulator uses: FIFO push_back /
// front / pop_front, indexed read-only iteration for debug dumps.  Elements
// must be trivially copyable (they are POD request/message records).
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace wormnet::util {

/// Growable FIFO over a circular power-of-two buffer.  Push/pop are O(1)
/// and allocation-free once the buffer has reached its high-water size.
template <typename T>
class RingQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingQueue is meant for small POD records");

 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(const T& v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = v;
    ++size_;
  }

  const T& front() const {
    WORMNET_EXPECTS(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    WORMNET_EXPECTS(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  /// i-th element from the front (read-only; debug dumps and tests).
  const T& operator[](std::size_t i) const {
    WORMNET_EXPECTS(i < size_);
    return buf_[(head_ + i) & mask_];
  }

  /// Drop all elements; capacity is retained.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = buf_[(head_ + i) & mask_];
    buf_.swap(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;  // buf_.size() - 1 once allocated (power of two)
};

}  // namespace wormnet::util

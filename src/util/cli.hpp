// wormnet/util/cli.hpp
//
// Minimal --key=value / --flag argument parser for example and bench
// binaries.  Deliberately tiny: every executable in this repository takes a
// handful of numeric knobs and must run with no arguments at all (the bench
// harness executes `for b in build/bench/*; do $b; done`).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wormnet::util {

/// Parsed command line.  Unknown keys are kept and can be listed, so typos
/// fail loudly instead of silently running the default experiment.
class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True if --name or --name=... was given.
  bool has(const std::string& name) const;
  /// String value of --name=value, or `def` if absent.
  std::string get(const std::string& name, const std::string& def) const;
  /// Integer value of --name=value, or `def` if absent.
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  /// Double value of --name=value, or `def` if absent.
  double get_double(const std::string& name, double def) const;
  /// Boolean: --name / --name=true|1 → true, --name=false|0 → false.
  bool get_bool(const std::string& name, bool def) const;
  /// Comma-separated list of doubles: --loads=0.01,0.02,0.03.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> def) const;
  /// Comma-separated list of integers.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> def) const;

  /// Keys that were supplied but never queried through a getter.  Binaries
  /// call this after parsing their knobs and abort on leftovers.
  std::vector<std::string> unused() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace wormnet::util

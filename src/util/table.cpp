#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace wormnet::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  WORMNET_EXPECTS(!columns_.empty());
  precision_.assign(columns_.size(), 4);
}

void Table::set_precision(int col, int digits) {
  WORMNET_EXPECTS(col >= 0 && col < cols());
  precision_[static_cast<std::size_t>(col)] = digits;
}

void Table::add_row(std::vector<Cell> cells) {
  WORMNET_EXPECTS(static_cast<int>(cells.size()) == cols());
  rows_.push_back(std::move(cells));
}

void Table::begin_row() { rows_.emplace_back(); }

void Table::push(Cell cell) {
  WORMNET_EXPECTS(!rows_.empty());
  WORMNET_EXPECTS(static_cast<int>(rows_.back().size()) < cols());
  rows_.back().push_back(std::move(cell));
}

const Cell& Table::at(int row, int col) const {
  WORMNET_EXPECTS(row >= 0 && row < rows() && col >= 0 && col < cols());
  return rows_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
}

double Table::num(int row, int col) const {
  const Cell& c = at(row, col);
  if (const double* d = std::get_if<double>(&c)) return *d;
  return kNaN;
}

int Table::col_index(const std::string& name) const {
  for (int i = 0; i < cols(); ++i)
    if (columns_[static_cast<std::size_t>(i)] == name) return i;
  return -1;
}

std::string Table::format_cell(const Cell& c, int col) const {
  if (std::holds_alternative<std::monostate>(c)) return "-";
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  const double d = std::get<double>(c);
  if (std::isnan(d)) return "nan";
  if (std::isinf(d)) return d > 0 ? "inf" : "-inf";
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision_[static_cast<std::size_t>(col)]);
  out << d;
  return out.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      r.push_back(c < row.size() ? format_cell(row[c], static_cast<int>(c)) : "-");
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c] << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    out << "\n";
  };
  emit(columns_);
  std::size_t rule = 0;
  for (auto w : width) rule += w + 2;
  out << std::string(rule, '-') << "\n";
  for (const auto& r : rendered) emit(r);
}

void Table::print_csv(std::ostream& out) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += "\"";
    return q;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out << (c ? "," : "") << quote(columns_[c]);
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      out << (c ? "," : "");
      out << quote(c < row.size() ? format_cell(row[c], static_cast<int>(c)) : "");
    }
    out << "\n";
  }
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace wormnet::util

#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "obs/log_sink.hpp"

namespace wormnet::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
// Per-subsystem overrides; -1 means "follow the global level".
std::atomic<int> g_sub_level[kNumSubsystems] = {{-1}, {-1}, {-1}, {-1}, {-1}};
std::mutex g_mu;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

const char* subsystem_name(Subsystem sub) {
  switch (sub) {
    case Subsystem::General: return "general";
    case Subsystem::Topo: return "topo";
    case Subsystem::Core: return "core";
    case Subsystem::Sim: return "sim";
    case Subsystem::Harness: return "harness";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(Subsystem sub, LogLevel level) {
  g_sub_level[static_cast<int>(sub)].store(static_cast<int>(level),
                                           std::memory_order_relaxed);
}

void clear_subsystem_log_levels() {
  for (auto& l : g_sub_level) l.store(-1, std::memory_order_relaxed);
}

LogLevel log_level(Subsystem sub) {
  const int v =
      g_sub_level[static_cast<int>(sub)].load(std::memory_order_relaxed);
  return v < 0 ? log_level() : static_cast<LogLevel>(v);
}

void log_message(LogLevel level, const std::string& msg) {
  log_message(level, Subsystem::General, msg);
}

void log_message(LogLevel level, Subsystem sub, const std::string& msg) {
  if (obs::LogSink* sink = obs::log_sink()) {
    sink->write(level, sub, msg);
    return;
  }
  log_message_stderr(level, sub, msg);
}

void log_message_stderr(LogLevel level, Subsystem sub, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (sub == Subsystem::General) {
    std::fprintf(stderr, "[wormnet %s] %s\n", level_name(level), msg.c_str());
  } else {
    std::fprintf(stderr, "[wormnet %s %s] %s\n", subsystem_name(sub),
                 level_name(level), msg.c_str());
  }
}

}  // namespace wormnet::util

#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace wormnet::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mu;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[wormnet %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace wormnet::util

#include "util/stats.hpp"

#include <cmath>

#include "util/math.hpp"

namespace wormnet::util {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::mean() const { return n_ == 0 ? kNaN : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? kNaN : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const {
  const double v = variance();
  return std::isnan(v) ? kNaN : std::sqrt(v);
}

double RunningStats::sem() const {
  const double s = stddev();
  return std::isnan(s) ? kNaN : s / std::sqrt(static_cast<double>(n_));
}

double RateCounter::rate() const {
  return elapsed_ > 0.0 ? static_cast<double>(events_) / elapsed_ : kNaN;
}

}  // namespace wormnet::util

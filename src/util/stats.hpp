// wormnet/util/stats.hpp
//
// Streaming statistics accumulators.  The simulator records one latency
// sample per delivered worm (hundreds of thousands per run), so accumulation
// must be O(1) per sample and numerically stable — we use Welford's online
// algorithm for mean/variance.
#pragma once

#include <cstdint>
#include <limits>

namespace wormnet::util {

/// Online count/mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Merge another accumulator (parallel reduction of per-thread stats).
  void merge(const RunningStats& other);

  /// Number of observations.
  std::int64_t count() const { return n_; }
  /// Sample mean; NaN when empty.
  double mean() const;
  /// Unbiased sample variance; NaN for fewer than two observations.
  double variance() const;
  /// Sample standard deviation; NaN for fewer than two observations.
  double stddev() const;
  /// Smallest observation; +inf when empty.
  double min() const { return min_; }
  /// Largest observation; -inf when empty.
  double max() const { return max_; }
  /// Sum of observations.
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Standard error of the mean (stddev / sqrt(n)); NaN for n < 2.
  double sem() const;

  /// Reset to the empty state.
  void clear() { *this = RunningStats{}; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Accumulator for a rate: events per unit time over an observation window.
/// Used for per-channel utilization and delivered-throughput accounting.
class RateCounter {
 public:
  /// Record `events` occurrences (default one).
  void hit(std::int64_t events = 1) { events_ += events; }
  /// Close the window: `elapsed` time units observed.
  void set_elapsed(double elapsed) { elapsed_ = elapsed; }
  /// Total events recorded.
  std::int64_t events() const { return events_; }
  /// events / elapsed; NaN if the window was never set.
  double rate() const;
  /// Reset to the empty state.
  void clear() { *this = RateCounter{}; }

 private:
  std::int64_t events_ = 0;
  double elapsed_ = 0.0;
};

}  // namespace wormnet::util

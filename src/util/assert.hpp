// wormnet/util/assert.hpp
//
// Lightweight contract-checking macros in the spirit of the C++ Core
// Guidelines' Expects()/Ensures().  Unlike <cassert> these are active in all
// build types: the analytical solver and the simulator are research code whose
// invariants we always want enforced — a silently-violated queueing stability
// precondition produces plausible-looking garbage, which is worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wormnet::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "wormnet: %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace wormnet::util

/// Precondition check: argument/state requirements at function entry.
#define WORMNET_EXPECTS(cond)                                                     \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::wormnet::util::contract_failure("precondition", #cond, __FILE__, __LINE__))

/// Postcondition / internal invariant check.
#define WORMNET_ENSURES(cond)                                                     \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::wormnet::util::contract_failure("invariant", #cond, __FILE__, __LINE__))

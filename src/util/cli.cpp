#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace wormnet::util {

Args::Args(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "wormnet";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("wormnet cli: positional argument not supported: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  for (const auto& [k, v] : kv_) used_[k] = false;
}

bool Args::has(const std::string& name) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return false;
  used_[name] = true;
  return true;
}

std::string Args::get(const std::string& name, const std::string& def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  used_[name] = true;
  return it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  used_[name] = true;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& name, double def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  used_[name] = true;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Args::get_bool(const std::string& name, bool def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  used_[name] = true;
  const std::string& v = it->second;
  return v.empty() || v == "1" || v == "true" || v == "yes" || v == "on";
}

namespace {
template <typename T, typename Conv>
std::vector<T> split_list(const std::string& s, Conv conv) {
  std::vector<T> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    const std::string tok =
        s.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!tok.empty()) out.push_back(conv(tok));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}
}  // namespace

std::vector<double> Args::get_double_list(const std::string& name,
                                          std::vector<double> def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  used_[name] = true;
  return split_list<double>(it->second,
                            [](const std::string& t) { return std::strtod(t.c_str(), nullptr); });
}

std::vector<std::int64_t> Args::get_int_list(const std::string& name,
                                             std::vector<std::int64_t> def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  used_[name] = true;
  return split_list<std::int64_t>(
      it->second, [](const std::string& t) { return std::strtoll(t.c_str(), nullptr, 10); });
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, seen] : used_)
    if (!seen) out.push_back(k);
  return out;
}

}  // namespace wormnet::util

// wormnet/util/rng.hpp
//
// Deterministic pseudo-random number generation for the simulator and the
// Monte-Carlo checks in the test suite.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64
// rather than using std::mt19937_64: it is ~2x faster, has a tiny state that
// copies cheaply into per-processor traffic sources, and — critically for a
// reproduction artifact — its output is fully specified here, so simulation
// results are bit-reproducible across standard libraries and platforms.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace wormnet::util {

/// SplitMix64 step; used to expand a 64-bit seed into xoshiro state and to
/// derive independent per-stream seeds (seed ^ stream index avalanche).
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine with convenience distributions.
///
/// All distribution helpers consume a bounded number of engine outputs and
/// are deterministic functions of the engine state, so a `Rng` copied before
/// a simulation replays it exactly.
class Rng {
 public:
  /// Seeds via SplitMix64 so that nearby seeds give uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive an independent stream for substream `idx` (per-processor traffic
  /// sources, parallel sweep points).  Streams from distinct (seed, idx)
  /// pairs are de-correlated by the SplitMix64 avalanche.
  static Rng stream(std::uint64_t seed, std::uint64_t idx);

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in (0, 1]; safe as the argument of log() for exponentials.
  double uniform_pos();

  /// Uniform integer in [0, n) using Lemire rejection (unbiased).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  /// This is the inter-arrival distribution of the paper's Poisson sources.
  double exponential(double rate);

  /// Fisher–Yates-style random pick of one of two alternatives; used by the
  /// fat-tree's "select an up-link randomly" adaptive routing rule.
  int pick_of_two() { return static_cast<int>(next_u64() >> 63); }

 private:
  std::uint64_t s_[4];
};

}  // namespace wormnet::util

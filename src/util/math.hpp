// wormnet/util/math.hpp
//
// Small integer/floating-point helpers shared by the topology, model and
// simulator layers.  Everything here is branch-light and constexpr-friendly;
// these functions sit inside the simulator's per-cycle inner loops.
#pragma once

#include <cstdint>
#include <limits>

namespace wormnet::util {

/// Integer power base^exp (exp >= 0).  Overflow is the caller's problem;
/// wormnet uses it for 4^n with n <= 8, far below 2^63.
constexpr std::int64_t ipow(std::int64_t base, int exp) {
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

/// True if v is an exact power of `base` (v >= 1).
constexpr bool is_power_of(std::int64_t v, std::int64_t base) {
  if (v < 1) return false;
  while (v % base == 0) v /= base;
  return v == 1;
}

/// floor(log_base(v)) for v >= 1.
constexpr int ilog(std::int64_t v, std::int64_t base) {
  int l = 0;
  while (v >= base) {
    v /= base;
    ++l;
  }
  return l;
}

/// Exact log2 for powers of two.
constexpr int ilog2_exact(std::int64_t v) { return ilog(v, 2); }

/// Exact log4 for powers of four.
constexpr int ilog4_exact(std::int64_t v) { return ilog(v, 4); }

/// Clamp a probability into [0, 1].  The paper's blocking factor (Eq. 10) is an
/// approximation that can dip below zero at extreme rate ratios; the paper's
/// own usage implicitly clamps (a negative "probability of having to wait"
/// has no meaning), and we make that explicit.
constexpr double clamp01(double p) { return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p); }

/// Relative error |a-b| / max(|b|, eps); used throughout the test suite to
/// compare analytical predictions against simulation and closed forms.
double rel_err(double a, double b);

/// Quiet NaN shorthand.
inline constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
/// +infinity shorthand; the queueing kernels return this for unstable queues.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// "Unbounded" per-lane flit-buffer depth — the paper's implicit assumption
/// and the default everywhere a buffer_depth is carried (topo::Topology,
/// core::ChannelClass, sim::SimNetwork).  One shared constant so the
/// depth→∞ short-circuits compare against the same sentinel at every layer.
inline constexpr int kInfiniteBufferDepth = std::numeric_limits<int>::max();

/// n-th base-4 digit of v (digit 0 is least significant).  This is the
/// butterfly fat-tree's down-routing function: the child port out of a
/// level-l switch toward processor d is base4_digit(d, l-1).
constexpr int base4_digit(std::int64_t v, int digit) {
  return static_cast<int>((v >> (2 * digit)) & 3);
}

}  // namespace wormnet::util

#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "util/assert.hpp"

namespace wormnet::util {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  WORMNET_EXPECTS(bins > 0);
  WORMNET_EXPECTS(hi > lo);
  counts_.assign(static_cast<std::size_t>(bins), 0);
  width_ = (hi - lo) / bins;
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge guard
  ++counts_[idx];
}

double Histogram::bin_lo(int i) const { return lo_ + width_ * i; }
double Histogram::bin_hi(int i) const { return lo_ + width_ * (i + 1); }

double Histogram::quantile(double q) const {
  WORMNET_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(static_cast<int>(i)) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ascii(int max_width) const {
  std::ostringstream out;
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int bar = static_cast<int>(
        std::lround(static_cast<double>(counts_[i]) * max_width / static_cast<double>(peak)));
    out << "[" << bin_lo(static_cast<int>(i)) << ", " << bin_hi(static_cast<int>(i)) << ") "
        << std::string(static_cast<std::size_t>(std::max(bar, 1)), '#') << " " << counts_[i]
        << "\n";
  }
  if (underflow_ > 0) out << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

}  // namespace wormnet::util

#include "util/thread_pool.hpp"

#include <algorithm>

namespace wormnet::util {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::int64_t n,
                  const std::function<void(std::int64_t)>& body) {
  for (std::int64_t i = 0; i < n; ++i) {
    pool.submit([&body, i] { body(i); });
  }
  pool.wait_idle();
}

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& body) {
  ThreadPool pool;
  parallel_for(pool, n, body);
}

}  // namespace wormnet::util

// wormnet/util/thread_pool.hpp
//
// A small fixed-size thread pool with a parallel_for helper.  The experiment
// harness runs independent (load, worm-length, seed) simulation points; each
// point is single-threaded and deterministic, and the pool distributes points
// across cores.  On a single-core host the pool degrades to sequential
// execution with no behavioral difference — results are identical because the
// per-point RNG streams are keyed by point index, not by scheduling order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wormnet::util {

/// Fixed-size worker pool executing void() jobs FIFO.
class ThreadPool {
 public:
  /// Create `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait_idle();

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::int64_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, n) across the pool's workers and wait.
/// body must be safe to call concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::int64_t n,
                  const std::function<void(std::int64_t)>& body);

/// Convenience: run body(i) for i in [0, n) on a temporary pool sized to the
/// hardware (sequential on single-core machines).
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& body);

}  // namespace wormnet::util

// wormnet/util/hash.hpp
//
// Small deterministic hashing helpers for in-process content digests
// (core::NetworkModel::content_digest and friends).  Not cryptographic and
// not stable across builds — digests are compared only between values
// computed in the same process, so all that matters is determinism and
// good bit diffusion (splitmix64's finalizer provides both).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace wormnet::util {

/// Fold one 64-bit word into a running digest (boost-style combine with the
/// splitmix64 finalizer for diffusion).  Order-sensitive: mixing the same
/// words in a different order yields a different digest, which is what a
/// structural digest wants.
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// The IEEE-754 bit pattern of a double — digests fold exact bit patterns,
/// never rounded values, so "1e-12 apart" configurations stay distinct.
/// Exception: -0.0 compares equal to +0.0, so it must digest equally too —
/// a retuned model whose signed delta propagation leaves a negative zero is
/// value-identical to the rebuilt model and must hit the same cache entry.
/// NaN policy: NaNs are digested by payload bits (any two NaNs of the same
/// bit pattern collide, different payloads stay distinct); no model digest
/// folds NaN in practice, so no canonicalization is spent on it.
inline std::uint64_t double_bits(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Fold a double's bit pattern into a running digest.
inline std::uint64_t hash_mix_double(std::uint64_t h, double v) {
  return hash_mix(h, double_bits(v));
}

/// FNV-1a over a byte string (model names, labels).
inline std::uint64_t hash_bytes(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace wormnet::util

// wormnet/arrivals/arrival_process.hpp
//
// The single source of truth for message ARRIVAL processes, shared by the
// analytical model and the flit-level simulator — the temporal twin of
// traffic::TrafficSpec (which owns the spatial destination distribution).
// The paper's assumption 1 (Poisson injection) is one point in this catalog;
// the others probe — and, through the QNA-style C_a² propagation in
// core::build_traffic_model plus the Allen–Cunneen G/G/m correction in
// queueing::ChannelSolver, *model* — the bursty workloads where Poisson
// analysis turns optimistic (Giroudot & Mifdaoui; Farhi & Gaujal).
//
// An ArrivalSpec answers the same question two ways, guaranteed consistent:
//  * ca2(lambda0)  — the squared coefficient of variation (SCV) of the
//    stationary inter-arrival time, Var[T]/E[T]², in closed form; this is
//    the C_a² the analytical model propagates (tested against the empirical
//    SCV of 10⁶ sampled gaps);
//  * next_gap(...) — a seeded draw of the next inter-arrival gap from that
//    same process, consumed by sim::TrafficSource.
//
// All processes are parameterized so that the MEAN rate is exactly the λ₀
// passed at sampling time — burstiness reshapes the gaps, never the offered
// load — and (except Bernoulli, whose cycle quantization ties its SCV to λ₀)
// their C_a² is rate-invariant.
//
// Catalog:
//  * Poisson        — exponential gaps, C_a² = 1 (the paper's assumption 1).
//                     Sampling is BIT-IDENTICAL to the pre-subsystem
//                     simulator: one Rng::exponential(λ₀) per gap.
//  * Bernoulli      — geometric whole-cycle gaps (one trial per cycle),
//                     C_a² = 1 − λ₀.
//  * Deterministic  — fixed gaps 1/λ₀ with a uniformly random initial
//                     phase, C_a² = 0 (the smoother-than-Poisson floor).
//  * Batch(b)       — compound Poisson: epochs at rate λ₀/b, each releasing
//                     a Geometric(mean b) batch back-to-back (zero gaps
//                     inside a batch); C_a² = 2b − 1.
//  * Mmpp2(f,σ,k)   — 2-state Markov-modulated Poisson process: ON fraction
//                     f, OFF/ON rate ratio σ, mean k arrivals per ON burst;
//                     σ = 0 is the classic ON-OFF / interrupted Poisson
//                     process (IPP).  C_a² from the exact 2-phase
//                     Markovian-arrival-process moment formulas.
//  * Trace          — an arbitrary gap sequence (normalized to mean 1 and
//                     replayed cyclically from a random per-stream offset);
//                     C_a² is the trace's own empirical SCV.
//
// Specs are small value types (the Trace payload is shared), cheap to copy
// into sim::SimConfig and harness cells.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace wormnet::arrivals {

/// Which inter-arrival law an ArrivalSpec denotes.
enum class Kind {
  Poisson,
  Bernoulli,
  Deterministic,
  Batch,
  Mmpp2,
  Trace,
};

/// Per-stream sampler state.  One per (processor) stream; the spec itself
/// stays immutable and shared.  Plain data so traffic sources can keep a
/// dense vector of them.
struct ArrivalState {
  int phase = 0;        ///< Mmpp2: 0 = ON, 1 = OFF; Deterministic: 0 = unphased
  int pending = 0;      ///< Batch: messages left in the batch being drained
  std::size_t pos = 0;  ///< Trace: next trace index
};

/// A message arrival process, independent of the concrete rate: the rate λ₀
/// (messages/cycle) is supplied at sampling/evaluation time, so one spec
/// serves every load point of a sweep.
class ArrivalSpec {
 public:
  /// Defaults to the paper's assumption 1.
  ArrivalSpec() = default;

  static ArrivalSpec poisson();
  static ArrivalSpec bernoulli();
  static ArrivalSpec deterministic();
  /// Compound Poisson with Geometric(mean `mean_batch` >= 1) batch sizes.
  static ArrivalSpec batch(double mean_batch);
  /// MMPP-2: `on_fraction` f in (0,1) of time spent ON, `rate_ratio`
  /// σ = λ_OFF/λ_ON in [0,1), and `burst_messages` k > 0 mean arrivals per
  /// ON sojourn.  Rates solve f·λ_ON + (1−f)·λ_OFF = λ₀ so the mean rate is
  /// exact.
  static ArrivalSpec mmpp2(double on_fraction, double rate_ratio,
                           double burst_messages);
  /// ON-OFF (interrupted Poisson): MMPP-2 with a silent OFF state.
  static ArrivalSpec on_off(double on_fraction, double burst_messages);
  /// Replay `gaps` (arbitrary positive scale; normalized to mean 1 so λ₀
  /// still sets the rate) cyclically from a random per-stream offset.
  static ArrivalSpec trace(std::vector<double> gaps);

  Kind kind() const { return kind_; }
  bool is_poisson() const { return kind_ == Kind::Poisson; }
  /// Human-readable tag, e.g. "batch(b=4)".
  std::string name() const;

  /// Empty string when the parameters are usable, else the problem.
  std::string check() const;

  /// Squared coefficient of variation of the stationary inter-arrival time.
  /// `lambda0` only matters for Bernoulli (C_a² = 1 − λ₀); every other
  /// process is rate-invariant, so the default argument is fine there.
  double ca2(double lambda0 = 0.0) const;

  /// Mean number of batch-mates served AHEAD of a random arrival,
  /// (E[B²] − E[B]) / (2·E[B]) — the load-INDEPENDENT intra-batch
  /// serialization term of the exact M^[X]/G/1 decomposition
  ///     W = W_epoch-queue + batch_residual() · x̄.
  /// The SCV alone cannot carry it: C_a² = 2b − 1 reproduces exactly the
  /// epoch-level wait through Allen–Cunneen (it scales with ρ/(1−ρ) and
  /// vanishes at low load), while simultaneous batch arrivals still
  /// serialize behind each other at any load.  b − 1 for Geometric(mean b)
  /// batches; 0 for every non-batch process.
  double batch_residual() const;

  /// The variability parameter the ANALYTICAL MODEL should consume — QNA's
  /// asymptotic method: the limiting index of dispersion of counts, I(∞) =
  /// lim Var[N(t)]/E[N(t)].  For every renewal process in the catalog it
  /// equals ca2() (Poisson, Bernoulli, deterministic, batch — where
  /// I(∞) = E[B²]/E[B] = 2b − 1 — and trace, whose autocorrelation is
  /// unknown); for MMPP-2 the gaps are CORRELATED and the interval SCV
  /// understates the queueing impact of long bursts, so this returns
  ///     I(∞) = 1 + 2·π_ON·π_OFF·(λ_ON − λ_OFF)² / ((r_ON + r_OFF)·λ̄)
  /// (Fischer & Meier-Hellstern) instead.  ca2() remains the measurable
  /// stationary-interval SCV the sampler conformance tests pin down.
  double effective_ca2(double lambda0 = 0.0) const;

  /// Fresh per-stream state; may consume rng draws (Deterministic phase,
  /// Mmpp2 stationary initial phase, Trace offset).  Poisson and Bernoulli
  /// draw nothing, preserving the legacy simulator's draw sequence exactly.
  ArrivalState init_state(double lambda0, util::Rng& rng) const;

  /// Next inter-arrival gap in cycles (continuous; Batch emits exact zeros
  /// inside a batch).  Deterministic function of (state, rng state); the
  /// empirical law over many draws is exactly the ca2() closed form.
  /// Precondition: lambda0 > 0 (callers gate zero-load streams off).
  double next_gap(ArrivalState& state, double lambda0, util::Rng& rng) const;

 private:
  /// Mmpp2 rate tuple at unit mean rate, derived once from (f, σ, k) at
  /// construction — next_gap samples one of these per phase event, so
  /// re-deriving per gap would be pure repeated work in the simulator's
  /// source hot path.
  struct Mmpp2Rates {
    double lam_on = 0.0, lam_off = 0.0;  ///< arrival rate by phase
    double r_on = 0.0, r_off = 0.0;      ///< phase-leave rate (ON→OFF, OFF→ON)
  };

  Kind kind_ = Kind::Poisson;
  double batch_mean_ = 1.0;    ///< Batch: E[B]
  double on_fraction_ = 0.0;   ///< Mmpp2: f
  double rate_ratio_ = 0.0;    ///< Mmpp2: σ = λ_OFF/λ_ON
  double burst_ = 0.0;         ///< Mmpp2: mean arrivals per ON sojourn
  Mmpp2Rates mmpp_;            ///< valid iff kind_ == Mmpp2 and check() passes
  std::shared_ptr<const std::vector<double>> trace_;  ///< normalized, mean 1
  double trace_ca2_ = 0.0;
};

}  // namespace wormnet::arrivals

#include "arrivals/arrival_process.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/assert.hpp"

namespace wormnet::arrivals {

namespace {

/// Geometric(success p) draw on {1, 2, ...} via inversion — the same
/// closed form the legacy Bernoulli gap sampler used, kept verbatim so the
/// Bernoulli path stays bit-identical to the pre-subsystem simulator.
double geometric_trials(double p, util::Rng& rng) {
  const double u = rng.uniform_pos();
  return 1.0 + std::floor(std::log(u) / std::log1p(-p));
}

}  // namespace

ArrivalSpec ArrivalSpec::poisson() { return {}; }

ArrivalSpec ArrivalSpec::bernoulli() {
  ArrivalSpec s;
  s.kind_ = Kind::Bernoulli;
  return s;
}

ArrivalSpec ArrivalSpec::deterministic() {
  ArrivalSpec s;
  s.kind_ = Kind::Deterministic;
  return s;
}

ArrivalSpec ArrivalSpec::batch(double mean_batch) {
  ArrivalSpec s;
  s.kind_ = Kind::Batch;
  s.batch_mean_ = mean_batch;
  return s;
}

ArrivalSpec ArrivalSpec::mmpp2(double on_fraction, double rate_ratio,
                               double burst_messages) {
  ArrivalSpec s;
  s.kind_ = Kind::Mmpp2;
  s.on_fraction_ = on_fraction;
  s.rate_ratio_ = rate_ratio;
  s.burst_ = burst_messages;
  if (s.check().empty()) {
    // Derive the unit-rate tuple once (the sampler reads it per event).
    // Solve f·λ_ON + (1−f)·σ·λ_ON = 1 so the long-run rate is exactly
    // λ₀ = 1; sampling scales every rate by the caller's λ₀ (time
    // dilation), which leaves the SCV untouched.  Mean ON sojourn carries
    // `burst` arrivals; OFF is sized for P(ON) = f.
    s.mmpp_.lam_on = 1.0 / (on_fraction + (1.0 - on_fraction) * rate_ratio);
    s.mmpp_.lam_off = rate_ratio * s.mmpp_.lam_on;
    s.mmpp_.r_on = s.mmpp_.lam_on / burst_messages;
    s.mmpp_.r_off = s.mmpp_.r_on * on_fraction / (1.0 - on_fraction);
  }
  return s;
}

ArrivalSpec ArrivalSpec::on_off(double on_fraction, double burst_messages) {
  return mmpp2(on_fraction, 0.0, burst_messages);
}

ArrivalSpec ArrivalSpec::trace(std::vector<double> gaps) {
  ArrivalSpec s;
  s.kind_ = Kind::Trace;
  double sum = 0.0;
  bool nonneg = true;
  for (double g : gaps) {
    sum += g;
    nonneg = nonneg && g >= 0.0;
  }
  if (!gaps.empty() && nonneg && sum > 0.0) {
    const double mean = sum / static_cast<double>(gaps.size());
    double var = 0.0;
    for (double& g : gaps) {
      g /= mean;  // normalize to mean 1: λ₀ alone sets the rate
      var += (g - 1.0) * (g - 1.0);
    }
    s.trace_ca2_ = var / static_cast<double>(gaps.size());
  }
  s.trace_ = std::make_shared<const std::vector<double>>(std::move(gaps));
  return s;
}

std::string ArrivalSpec::name() const {
  char buf[64];
  switch (kind_) {
    case Kind::Poisson:
      return "poisson";
    case Kind::Bernoulli:
      return "bernoulli";
    case Kind::Deterministic:
      return "deterministic";
    case Kind::Batch:
      std::snprintf(buf, sizeof(buf), "batch(b=%g)", batch_mean_);
      return buf;
    case Kind::Mmpp2:
      if (rate_ratio_ == 0.0) {
        std::snprintf(buf, sizeof(buf), "onoff(f=%.2f,k=%g)", on_fraction_, burst_);
      } else {
        std::snprintf(buf, sizeof(buf), "mmpp2(f=%.2f,s=%.2f,k=%g)",
                      on_fraction_, rate_ratio_, burst_);
      }
      return buf;
    case Kind::Trace:
      std::snprintf(buf, sizeof(buf), "trace(n=%zu)",
                    trace_ ? trace_->size() : std::size_t{0});
      return buf;
  }
  return "arrivals?";
}

std::string ArrivalSpec::check() const {
  switch (kind_) {
    case Kind::Poisson:
    case Kind::Bernoulli:
    case Kind::Deterministic:
      return "";
    case Kind::Batch:
      // The upper bound keeps the sampler's batch-size draw far inside int
      // range (P(B > 2^30) < e^-1000 at b = 1e6) and the C_a² = 2b − 1
      // regime physically meaningful.
      if (!(batch_mean_ >= 1.0) || !(batch_mean_ <= 1e6))
        return "batch: mean batch size must lie in [1, 1e6]";
      return "";
    case Kind::Mmpp2:
      if (!(on_fraction_ > 0.0) || !(on_fraction_ < 1.0))
        return "mmpp2: on_fraction must lie in (0, 1)";
      if (!(rate_ratio_ >= 0.0) || !(rate_ratio_ < 1.0))
        return "mmpp2: rate_ratio must lie in [0, 1)";
      if (!(burst_ > 0.0) || !std::isfinite(burst_))
        return "mmpp2: burst_messages must be finite and > 0";
      return "";
    case Kind::Trace: {
      if (!trace_ || trace_->empty()) return "trace: gap sequence is empty";
      double sum = 0.0;
      for (double g : *trace_) {
        if (!(g >= 0.0) || !std::isfinite(g))
          return "trace: gaps must be finite and non-negative";
        sum += g;
      }
      if (!(sum > 0.0)) return "trace: at least one gap must be positive";
      return "";
    }
  }
  return "unknown arrival kind";
}

double ArrivalSpec::ca2(double lambda0) const {
  WORMNET_EXPECTS(check().empty());
  switch (kind_) {
    case Kind::Poisson:
      return 1.0;  // exponential gaps
    case Kind::Bernoulli:
      // Geometric({1,2,...}, p = λ₀): Var/E² = (1−p)/p² · p² = 1 − p.  The
      // cycle quantization is what keeps this below Poisson.
      return lambda0 > 0.0 && lambda0 <= 1.0 ? 1.0 - lambda0 : 1.0;
    case Kind::Deterministic:
      return 0.0;
    case Kind::Batch: {
      // Gaps: Exp(λ₀/b) between epochs, 0 inside a Geometric(mean b) batch.
      // E[T] = 1/λ₀, E[T²] = 2b/λ₀² → C_a² = 2b − 1 (both fixed-size and
      // geometric batches give the same value; derived in test_arrivals).
      return 2.0 * batch_mean_ - 1.0;
    }
    case Kind::Mmpp2: {
      // Exact stationary inter-arrival SCV of the 2-phase MAP (D0, D1):
      // D0 = Q − Λ, D1 = Λ.  With the arrival-embedded phase vector
      // p = πΛ/(πΛ·1), T ~ PH(p, D0) gives E[T] = p·M·1, E[T²] = 2·p·M²·1
      // for M = (−D0)⁻¹ — a 2×2 inverse, evaluated here in closed form.
      // Rate-invariant, so evaluate at unit mean rate.
      const Mmpp2Rates& r = mmpp_;
      const double a = r.lam_on + r.r_on, b = -r.r_on;
      const double c = -r.r_off, d = r.lam_off + r.r_off;
      const double det = a * d - b * c;  // > 0: diagonally dominant M-matrix
      // M = (−D0)⁻¹ rows.
      const double m00 = d / det, m01 = -b / det;
      const double m10 = -c / det, m11 = a / det;
      // Arrival-embedded initial vector (πΛ normalized); π = (f, 1−f).
      const double w_on = on_fraction_ * r.lam_on;
      const double w_off = (1.0 - on_fraction_) * r.lam_off;
      const double p_on = w_on / (w_on + w_off), p_off = 1.0 - p_on;
      // First moment: p · M · 1.
      const double row0 = m00 + m01, row1 = m10 + m11;
      const double m1 = p_on * row0 + p_off * row1;
      // Second moment: 2 · p · M · (M · 1).
      const double mm0 = m00 * row0 + m01 * row1;
      const double mm1 = m10 * row0 + m11 * row1;
      const double m2 = 2.0 * (p_on * mm0 + p_off * mm1);
      return m2 / (m1 * m1) - 1.0;
    }
    case Kind::Trace:
      return trace_ca2_;
  }
  return 1.0;
}

double ArrivalSpec::batch_residual() const {
  if (kind_ != Kind::Batch) return 0.0;
  // Geometric(mean b): E[B²] = 2b² − b, so (E[B²] − E[B])/(2E[B]) = b − 1.
  return batch_mean_ - 1.0;
}

double ArrivalSpec::effective_ca2(double lambda0) const {
  WORMNET_EXPECTS(check().empty());  // unvalidated MMPP-2 would yield NaN
  if (kind_ != Kind::Mmpp2) return ca2(lambda0);
  // Limiting index of dispersion of counts at unit mean rate (both the
  // numerator and denominator scale linearly with λ₀, so I(∞) is
  // rate-invariant like the interval SCV).
  const Mmpp2Rates& r = mmpp_;
  const double pi_on = on_fraction_, pi_off = 1.0 - on_fraction_;
  const double dl = r.lam_on - r.lam_off;
  return 1.0 + 2.0 * pi_on * pi_off * dl * dl / (r.r_on + r.r_off);
}

ArrivalState ArrivalSpec::init_state(double lambda0, util::Rng& rng) const {
  (void)lambda0;
  ArrivalState s;
  switch (kind_) {
    case Kind::Poisson:
    case Kind::Bernoulli:
    case Kind::Deterministic:
    case Kind::Batch:
      // No draws: the Poisson/Bernoulli legacy draw sequences stay intact
      // (golden-trace contract); Deterministic draws its phase lazily on
      // the first gap; Batch starts between epochs.
      break;
    case Kind::Mmpp2:
      // Stationary initial phase: P(ON) = f by construction.
      s.phase = rng.uniform() < on_fraction_ ? 0 : 1;
      break;
    case Kind::Trace:
      // Random replay offset de-phases the per-processor streams.
      s.pos = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::uint64_t>(trace_->size())));
      break;
  }
  return s;
}

double ArrivalSpec::next_gap(ArrivalState& state, double lambda0,
                             util::Rng& rng) const {
  WORMNET_EXPECTS(lambda0 > 0.0);
  switch (kind_) {
    case Kind::Poisson:
      return rng.exponential(lambda0);
    case Kind::Bernoulli:
      // One coin flip per cycle at probability λ₀; λ₀ >= 1 saturates to an
      // arrival every cycle (log1p(-1) would be -inf).
      if (lambda0 >= 1.0) return 1.0;
      return geometric_trials(lambda0, rng);
    case Kind::Deterministic:
      if (state.phase == 0) {
        state.phase = 1;
        // Uniform random phase: stationary, and the per-processor combs
        // don't fire in lockstep.
        return rng.uniform() / lambda0;
      }
      return 1.0 / lambda0;
    case Kind::Batch: {
      if (state.pending > 0) {
        --state.pending;
        return 0.0;  // back-to-back inside the batch
      }
      const double gap = rng.exponential(lambda0 / batch_mean_);
      const double size = batch_mean_ == 1.0
                              ? 1.0
                              : geometric_trials(1.0 / batch_mean_, rng);
      // Clamp before the int cast: an astronomically unlucky geometric
      // draw past int range would otherwise be UB (check() bounds b so the
      // clamp is never reached in practice).
      state.pending = static_cast<int>(std::min(size, 1.0e9)) - 1;
      return gap;
    }
    case Kind::Mmpp2: {
      const Mmpp2Rates& r = mmpp_;
      double t = 0.0;
      // Competing exponentials per phase: the next event is an arrival with
      // probability λ_phase / (λ_phase + r_phase), else a phase flip.
      while (true) {
        const double lam = state.phase == 0 ? r.lam_on : r.lam_off;
        const double leave = state.phase == 0 ? r.r_on : r.r_off;
        const double total = (lam + leave) * lambda0;  // time-scaled to λ₀
        t += rng.exponential(total);
        if (rng.uniform() < lam / (lam + leave)) return t;
        state.phase ^= 1;
      }
    }
    case Kind::Trace: {
      const std::vector<double>& gaps = *trace_;
      const double gap = gaps[state.pos] / lambda0;
      state.pos = (state.pos + 1) % gaps.size();
      return gap;
    }
  }
  WORMNET_ENSURES(false);
  return 0.0;
}

}  // namespace wormnet::arrivals

// wormnet/topo/butterfly_fattree.hpp
//
// The butterfly fat-tree of Greenberg & Guan §3.1.
//
// Structure for N = 4^n processors:
//  * level 0: the N processors;
//  * level l (1 <= l <= n): N / 2^(l+1) switches, each with four child ports
//    (down) and two parent ports (up); level-n switches leave their parent
//    ports unconnected.
//  * processor P(a) attaches to child (a mod 4) of switch S(1, floor(a/4));
//  * parent p of S(l, a) is S(l+1, floor(a/2^(l+1))*2^l + (a + p*2^(l-1)) mod 2^l)
//    at child index floor((a mod 2^(l+1)) / 2^(l-1))  — the paper's wiring rule.
//
// Derived facts used throughout wormnet (proved by the exhaustive tests):
//  * S(l, a) reaches exactly the processor block
//    [ (a >> (l-1)) * 4^l, (a >> (l-1)) * 4^l + 4^l )  going down, and the
//    down-route child port toward processor d is base-4 digit (l-1) of d;
//  * a minimal route climbs to the lowest level l whose switch covers the
//    destination (the "LCA level") and descends; it traverses 2*l channels
//    counting injection and ejection;
//  * up-routes may use either parent (the redundancy the paper models with a
//    two-server queue); down-routes are unique.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace wormnet::topo {

/// Butterfly fat-tree topology (indirect; processors at the leaves).
// Not `final`: the link-attribute hooks (bandwidth / link_latency /
// buffer_depth) are designed to be overridable per deployment — tests and
// irregular-fabric experiments subclass to inject non-uniform attributes.
class ButterflyFatTree : public Topology {
 public:
  /// Port indices on a switch.
  static constexpr int kChildPort0 = 0;  ///< child ports are 0..3
  static constexpr int kParentPort0 = 4;
  static constexpr int kParentPort1 = 5;

  /// Build a fat-tree with `levels` switch levels (N = 4^levels processors).
  /// levels must be in [1, 10] (10 => 1,048,576 processors — the scale the
  /// symmetry-collapsed analytical builder is sized for; the paper's own
  /// experiments stop at 1024).
  explicit ButterflyFatTree(int levels);

  // -- Topology interface -------------------------------------------------
  std::string name() const override;
  int num_nodes() const override { return static_cast<int>(nbr_.size()); }
  int num_processors() const override { return num_procs_; }
  NodeKind kind(int node) const override {
    return node < num_procs_ ? NodeKind::Processor : NodeKind::Switch;
  }
  int num_ports(int node) const override { return node < num_procs_ ? 1 : 6; }
  int neighbor(int node, int port) const override;
  int neighbor_port(int node, int port) const override;
  RouteOptions route(int node, int dest) const override;
  int distance(int src_proc, int dst_proc) const override;
  double mean_distance() const override;
  std::vector<PortBundle> output_bundles(int node) const override;

  // Symmetry (collapsed analytical builder).  With no pins the orbits are
  // the paper's per-level classes — (direction, level), 2n channel classes
  // and a single processor orbit; pinning one processor h (a hotspot)
  // refines both by the relation to h: processors by lca_level(·, h),
  // channels additionally by whether the switch / the targeted child block
  // covers h.  All keyed classes are orbits of route-preserving
  // automorphisms fixing the pins (leaf-block permutations below the LCA
  // with h, and the redundant-parent permutations that fix every leaf).
  bool has_symmetry(const std::vector<int>& pinned_procs) const override {
    return pinned_procs.size() <= 1;
  }
  std::uint64_t proc_symmetry_key(int proc,
                                  const std::vector<int>& pinned_procs) const override;
  std::uint64_t channel_symmetry_key(
      int node, int port, const std::vector<int>& pinned_procs) const override;

  // -- Fat-tree specific structure ----------------------------------------
  /// Number of switch levels n (N = 4^n).
  int levels() const { return levels_; }
  /// Switch count at level l (1-based): N / 2^(l+1).
  int switches_at(int level) const;
  /// Node id of switch S(level, addr).
  int switch_id(int level, int addr) const;
  /// Level of a node: 0 for processors, l for level-l switches.
  int node_level(int node) const;
  /// Address of a switch within its level.
  int switch_addr(int node) const;

  /// True when switch S(level, addr) reaches processor `proc` going down.
  bool covers(int level, int addr, int proc) const;
  /// The child port out of S(level, ·) toward covered processor `proc`
  /// (base-4 digit level-1 of proc).
  static int down_port(int level, int proc);
  /// Lowest level whose switches cover both processors (0 iff s == d).
  int lca_level(int s, int d) const;

  /// Number of physical links running up from level l to l+1 (equals the
  /// number running down): N / 2^l for 1 <= l < n, and N for l = 0
  /// (the processor links).  Matches the paper's §3.2 counting.
  long links_between(int level_lo) const;

  // -- Tapered (oversubscribed) variants ----------------------------------
  //
  // A tier groups the links between adjacent levels: tier t holds the links
  // between level t and t+1 (tier 0 = the processor links), matching
  // links_between(t).  Tapering sets one bandwidth per tier — e.g. a 2:1
  // oversubscribed two-level tree halves tier 1 — while both directions of
  // a link always share the tier's speed, so the (direction, level)
  // symmetry keys still separate equal-attribute classes and the collapsed
  // builder keeps working per tier.

  /// Tier of the directed channel leaving `node` through `port` (see above).
  int link_tier(int node, int port) const {
    WORMNET_EXPECTS(node >= 0 && node < num_nodes());
    WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
    if (node < num_procs_) return 0;
    const int l = node_level(node);
    return port >= kParentPort0 ? l : l - 1;
  }

  /// Set the bandwidth (flits/cycle) of every link in tier `tier`
  /// (0 <= tier < levels()).  Throws std::invalid_argument on a
  /// non-positive bandwidth or an out-of-range tier.  Call before
  /// constructing a SimNetwork or building a model — those snapshot.
  void set_tier_bandwidth(int tier, double bw) {
    if (tier < 0 || tier >= levels_)
      throw std::invalid_argument("fat-tree: tier out of range");
    if (!(bw > 0.0))
      throw std::invalid_argument("fat-tree: tier bandwidth must be > 0");
    if (tier_bandwidth_.empty())
      tier_bandwidth_.assign(static_cast<std::size_t>(levels_),
                             uniform_bandwidth());
    tier_bandwidth_[static_cast<std::size_t>(tier)] = bw;
  }

  /// Per-tier bandwidth when tapered; the uniform default otherwise.
  double bandwidth(int node, int port) const override {
    if (tier_bandwidth_.empty()) return Topology::bandwidth(node, port);
    return tier_bandwidth_[static_cast<std::size_t>(link_tier(node, port))];
  }

 private:
  struct End {
    int node = kNoNode;
    int port = -1;
  };

  void connect(int node_a, int port_a, int node_b, int port_b);

  int levels_;
  int num_procs_;
  std::vector<double> tier_bandwidth_;  // empty = uniform (untapered)
  std::vector<int> level_offset_;      // switch id base per level (1-based index)
  std::vector<std::array<End, 6>> nbr_;  // per node, per port
  std::vector<int> node_level_;
  std::vector<int> node_addr_;
};

}  // namespace wormnet::topo

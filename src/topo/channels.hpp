// wormnet/topo/channels.hpp
//
// Dense enumeration of the DIRECTED channels of a topology.  Both the
// simulator (per-channel worm ownership, flit latches) and the full
// per-channel analytical graph builder index channels through this table.
//
// A directed channel is one direction of a (node, port) <-> (node, port)
// link.  The channel from node A's port p carries flits A -> B where
// B = neighbor(A, p); the opposite direction is a distinct channel.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace wormnet::topo {

/// Sentinel for "no channel".
inline constexpr int kNoChannel = -1;

/// One directed channel.
struct DirectedChannel {
  int src_node = kNoNode;  ///< upstream node
  int src_port = -1;       ///< port on the upstream node
  int dst_node = kNoNode;  ///< downstream node
  int dst_port = -1;       ///< port on the downstream node
};

/// Immutable directed-channel index for a topology.
class ChannelTable {
 public:
  /// Enumerate every connected (node, port) pair of `topo`.
  /// The topology reference must outlive the table.
  explicit ChannelTable(const Topology& topo);

  /// Number of directed channels.
  int size() const { return static_cast<int>(channels_.size()); }

  /// Channel record by id.
  const DirectedChannel& at(int id) const {
    WORMNET_EXPECTS(id >= 0 && id < size());
    return channels_[static_cast<std::size_t>(id)];
  }

  /// Id of the outgoing channel from (node, port); kNoChannel if the port is
  /// unconnected.
  int from(int node, int port) const;

  /// Id of the incoming channel into (node, port); kNoChannel if unconnected.
  int into(int node, int port) const;

  /// Id of the channel opposite to `id` (same link, reverse direction).
  int reverse(int id) const;

  /// Virtual-channel (lane) multiplicity of channel `id`, as declared by the
  /// topology for the channel's upstream (node, port).
  int lanes(int id) const {
    const DirectedChannel& c = at(id);
    return topo_->lanes(c.src_node, c.src_port);
  }

  /// Bandwidth (flits/cycle) of channel `id`, as declared by the topology.
  double bandwidth(int id) const {
    const DirectedChannel& c = at(id);
    return topo_->bandwidth(c.src_node, c.src_port);
  }

  /// Extra per-hop pipeline latency (cycles) of channel `id`.
  double link_latency(int id) const {
    const DirectedChannel& c = at(id);
    return topo_->link_latency(c.src_node, c.src_port);
  }

  /// Per-lane flit-buffer depth of channel `id`
  /// (util::kInfiniteBufferDepth = unbounded).
  int buffer_depth(int id) const {
    const DirectedChannel& c = at(id);
    return topo_->buffer_depth(c.src_node, c.src_port);
  }

  /// The topology this table indexes.
  const Topology& topology() const { return *topo_; }

 private:
  const Topology* topo_;
  std::vector<DirectedChannel> channels_;
  std::vector<std::vector<int>> out_id_;  // [node][port] -> channel id
};

}  // namespace wormnet::topo

// wormnet/topo/hypercube.hpp
//
// Binary n-cube (direct network) with deterministic e-cube routing, the
// setting of Draper & Ghosh's wormhole model that the paper cites as prior
// art.  It exercises the general channel-graph model of wormnet::core on a
// network with NO routing redundancy (all bundles are single-server) and a
// per-dimension channel-class structure.
//
// Node layout: processors [0, N), routers [N, 2N) with router(i) = N + i.
// Router ports: port d in [0, n) crosses dimension d (to address i xor 2^d);
// port n is the processor link.  E-cube resolves dimensions in ascending
// order, which makes the channel dependency graph acyclic (dimension-d
// channels only feed dimension->d' > d channels or the ejection link).
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace wormnet::topo {

/// Binary hypercube with e-cube (ascending dimension-order) routing.
class Hypercube final : public Topology {
 public:
  /// Build an n-dimensional cube, N = 2^n processors; n in [1, 16].
  explicit Hypercube(int dims);

  std::string name() const override;
  int num_nodes() const override { return 2 * num_procs_; }
  int num_processors() const override { return num_procs_; }
  NodeKind kind(int node) const override {
    return node < num_procs_ ? NodeKind::Processor : NodeKind::Switch;
  }
  int num_ports(int node) const override { return node < num_procs_ ? 1 : dims_ + 1; }
  int neighbor(int node, int port) const override;
  int neighbor_port(int node, int port) const override;
  RouteOptions route(int node, int dest) const override;
  int distance(int src_proc, int dst_proc) const override;
  double mean_distance() const override;

  // Symmetry (collapsed analytical builder).  The XOR translations
  // x ↦ x ⊕ t are the routing-preserving automorphisms of e-cube (dimension
  // PERMUTATIONS change the ascending-order route, so they are excluded):
  // one processor orbit, and channel orbits = injection, ejection, and one
  // class per dimension crossed (translation by e_d folds the two
  // directions of a dimension into one orbit) — dims + 2 classes.  The
  // translation stabilizer of any pinned processor is trivial, so pins
  // declare no symmetry and the collapsed builder falls back.
  bool has_symmetry(const std::vector<int>& pinned_procs) const override {
    return pinned_procs.empty();
  }
  std::uint64_t proc_symmetry_key(int proc,
                                  const std::vector<int>& pinned_procs) const override {
    static_cast<void>(proc);
    static_cast<void>(pinned_procs);
    return 0;
  }
  std::uint64_t channel_symmetry_key(
      int node, int port, const std::vector<int>& pinned_procs) const override {
    static_cast<void>(pinned_procs);
    if (node < num_procs_) return 1ull << 56;                       // injection
    if (port == dims_) return 2ull << 56;                           // ejection
    return (3ull << 56) | static_cast<std::uint64_t>(port);         // dimension
  }

  /// Dimensionality n.
  int dims() const { return dims_; }
  /// Router node id hosting processor `proc`.
  int router_of(int proc) const { return num_procs_ + proc; }
  /// Cube address of a router node.
  int address_of(int router) const { return router - num_procs_; }

 private:
  int dims_;
  int num_procs_;
};

}  // namespace wormnet::topo

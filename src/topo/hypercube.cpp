#include "topo/hypercube.hpp"

#include <bit>
#include <sstream>

#include "util/math.hpp"

namespace wormnet::topo {

Hypercube::Hypercube(int dims) : dims_(dims) {
  WORMNET_EXPECTS(dims >= 1 && dims <= 16);
  num_procs_ = 1 << dims;
}

std::string Hypercube::name() const {
  std::ostringstream out;
  out << "hypercube(n=" << dims_ << ", N=" << num_procs_ << ")";
  return out.str();
}

int Hypercube::neighbor(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  if (node < num_procs_) return router_of(node);
  const int addr = address_of(node);
  if (port == dims_) return addr;  // processor link
  return router_of(addr ^ (1 << port));
}

int Hypercube::neighbor_port(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  if (node < num_procs_) return dims_;  // lands on the router's processor port
  if (port == dims_) return 0;          // processor's single port
  return port;                          // dimension links are symmetric
}

RouteOptions Hypercube::route(int node, int dest) const {
  WORMNET_EXPECTS(dest >= 0 && dest < num_procs_);
  RouteOptions out;
  if (node < num_procs_) {
    if (node != dest) out.add(0);
    return out;
  }
  const int addr = address_of(node);
  const int diff = addr ^ dest;
  if (diff == 0) {
    out.add(dims_);  // eject
    return out;
  }
  out.add(std::countr_zero(static_cast<unsigned>(diff)));  // lowest differing dim
  return out;
}

int Hypercube::distance(int src_proc, int dst_proc) const {
  WORMNET_EXPECTS(src_proc >= 0 && src_proc < num_procs_);
  WORMNET_EXPECTS(dst_proc >= 0 && dst_proc < num_procs_);
  if (src_proc == dst_proc) return 0;
  return std::popcount(static_cast<unsigned>(src_proc ^ dst_proc)) + 2;
}

double Hypercube::mean_distance() const {
  // Mean Hamming distance over distinct pairs: n * 2^(n-1) / (2^n - 1);
  // plus the injection and ejection channels.
  const double n = dims_;
  const double big_n = num_procs_;
  return n * (big_n / 2.0) / (big_n - 1.0) + 2.0;
}

}  // namespace wormnet::topo

#include "topo/fault.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"

namespace wormnet::topo {

namespace {

std::string link_name(int node, int port) {
  std::ostringstream out;
  out << "(" << node << ", " << port << ")";
  return out.str();
}

}  // namespace

// -- FaultSet ----------------------------------------------------------------

FaultSet::FaultSet(const Topology& topo) : topo_(&topo) {
  const int nodes = topo.num_nodes();
  port_offset_.assign(static_cast<std::size_t>(nodes) + 1, 0);
  for (int n = 0; n < nodes; ++n)
    port_offset_[static_cast<std::size_t>(n) + 1] =
        port_offset_[static_cast<std::size_t>(n)] + topo.num_ports(n);
  dead_.assign(static_cast<std::size_t>(port_offset_[static_cast<std::size_t>(nodes)]),
               0);
}

std::pair<int, int> FaultSet::canonical(int node, int port) const {
  const int peer = topo_->neighbor(node, port);
  const int peer_port = topo_->neighbor_port(node, port);
  if (peer < node || (peer == node && peer_port < port))
    return {peer, peer_port};
  return {node, port};
}

void FaultSet::check_link(int node, int port) const {
  if (node < 0 || node >= topo_->num_nodes())
    throw std::invalid_argument("FaultSet: node " + std::to_string(node) +
                                " out of range for " + topo_->name());
  if (port < 0 || port >= topo_->num_ports(node))
    throw std::invalid_argument("FaultSet: port " + std::to_string(port) +
                                " out of range at node " + std::to_string(node));
  const int peer = topo_->neighbor(node, port);
  if (peer == kNoNode)
    throw std::invalid_argument("FaultSet: no link at " + link_name(node, port));
  if (topo_->is_processor(node) || topo_->is_processor(peer))
    throw std::invalid_argument(
        "FaultSet: link at " + link_name(node, port) +
        " is an injection/ejection channel; processor attachment links "
        "cannot fail (fail the switch's up-links to isolate a block)");
  if (link_failed(node, port))
    throw std::invalid_argument("FaultSet: link at " + link_name(node, port) +
                                " is already failed");
}

void FaultSet::fail_link(int node, int port) {
  check_link(node, port);
  const auto canon = canonical(node, port);
  links_.push_back(canon);
  dead_[static_cast<std::size_t>(port_offset_[static_cast<std::size_t>(node)] +
                                 port)] = 1;
  const int peer = topo_->neighbor(node, port);
  const int peer_port = topo_->neighbor_port(node, port);
  dead_[static_cast<std::size_t>(port_offset_[static_cast<std::size_t>(peer)] +
                                 peer_port)] = 1;
}

void FaultSet::fail_switch(int node) {
  if (node < 0 || node >= topo_->num_nodes())
    throw std::invalid_argument("FaultSet: switch " + std::to_string(node) +
                                " out of range for " + topo_->name());
  if (topo_->is_processor(node))
    throw std::invalid_argument("FaultSet: node " + std::to_string(node) +
                                " is a processor, not a switch");
  // Validate every connected link BEFORE failing any, so a rejected switch
  // leaves the set untouched.
  for (int p = 0; p < topo_->num_ports(node); ++p)
    if (topo_->neighbor(node, p) != kNoNode) check_link(node, p);
  for (int p = 0; p < topo_->num_ports(node); ++p)
    if (topo_->neighbor(node, p) != kNoNode) fail_link(node, p);
  switches_.push_back(node);
}

bool FaultSet::link_failed(int node, int port) const {
  return dead_[static_cast<std::size_t>(
             port_offset_[static_cast<std::size_t>(node)] + port)] != 0;
}

std::uint64_t FaultSet::digest() const {
  // XOR of per-link digests: order-insensitive, so two routes to the same
  // set (switch expansion vs explicit links) collide as they should.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& [node, port] : links_) {
    std::uint64_t one = util::hash_mix(0xfau, static_cast<std::uint64_t>(node));
    one = util::hash_mix(one, static_cast<std::uint64_t>(port));
    h ^= one;
  }
  return util::hash_mix(h, static_cast<std::uint64_t>(links_.size()));
}

// -- FaultedTopology ---------------------------------------------------------

FaultedTopology::FaultedTopology(const Topology& base, const FaultSet& faults)
    : base_(&base), faults_(&faults) {
  WORMNET_EXPECTS(&faults.topology() == &base);
  // Inherit the base's uniform attribute defaults so the decorator's own
  // default virtuals (never called — all overridden) stay consistent.
  set_uniform_lanes(base.uniform_lanes());

  const int procs = base.num_processors();
  const int nodes = base.num_nodes();
  affected_index_.assign(static_cast<std::size_t>(procs), -1);

  // Flattened port -> bundle-id map (the one-bundle restriction on detours).
  port_bundle_offset_.assign(static_cast<std::size_t>(nodes) + 1, 0);
  for (int n = 0; n < nodes; ++n)
    port_bundle_offset_[static_cast<std::size_t>(n) + 1] =
        port_bundle_offset_[static_cast<std::size_t>(n)] + base.num_ports(n);
  port_bundle_.assign(
      static_cast<std::size_t>(port_bundle_offset_[static_cast<std::size_t>(nodes)]),
      -1);
  for (int n = 0; n < nodes; ++n) {
    const auto bundles = base.output_bundles(n);
    for (std::size_t b = 0; b < bundles.size(); ++b)
      for (int i = 0; i < bundles[b].count; ++i)
        port_bundle_[static_cast<std::size_t>(
            port_bundle_offset_[static_cast<std::size_t>(n)] + bundles[b][i])] =
            static_cast<int>(b);
  }

  // A destination is affected iff a failed link sits on some base minimal
  // route toward it: one of the link's directed channels is a route()
  // candidate at its source node.  Exact for minimal routing — the DP only
  // ever walks route() candidates.
  for (int d = 0; d < procs; ++d) {
    bool hit = false;
    for (const auto& [node, port] : faults.failed_links()) {
      const int peer = base.neighbor(node, port);
      const int peer_port = base.neighbor_port(node, port);
      if (base.route(node, d).contains(port) ||
          base.route(peer, d).contains(peer_port)) {
        hit = true;
        break;
      }
    }
    if (hit) {
      affected_index_[static_cast<std::size_t>(d)] =
          static_cast<int>(affected_.size());
      affected_.push_back(d);
    }
  }

  // One backward survivor BFS per affected destination: dist[v] = channels
  // from v to consumption at d over in-service links (the ejection channel
  // counts, matching Topology::distance's convention), -1 = unreachable.
  dist_tables_.resize(affected_.size());
  std::vector<int> frontier;
  for (std::size_t i = 0; i < affected_.size(); ++i) {
    const int d = affected_[i];
    std::vector<int>& dist = dist_tables_[i];
    dist.assign(static_cast<std::size_t>(nodes), -1);
    dist[static_cast<std::size_t>(d)] = 0;
    frontier.assign(1, d);
    std::size_t head = 0;
    while (head < frontier.size()) {
      const int v = frontier[head++];
      // A processor other than d never transits traffic; its single link was
      // already relaxed from the switch side, so skipping it is free.
      if (v < procs && v != d) continue;
      const int dv = dist[static_cast<std::size_t>(v)];
      for (int q = 0; q < base.num_ports(v); ++q) {
        const int u = base.neighbor(v, q);
        if (u == kNoNode || faults.link_failed(v, q)) continue;
        if (dist[static_cast<std::size_t>(u)] >= 0) continue;
        dist[static_cast<std::size_t>(u)] = dv + 1;
        frontier.push_back(u);
      }
    }
    for (int s = 0; s < procs; ++s)
      if (s != d && dist[static_cast<std::size_t>(s)] < 0) ++unreachable_pairs_;
  }

  // Mean survivor distance over reachable ordered pairs: the base total
  // corrected column-by-column for the affected destinations.
  const double pairs = static_cast<double>(procs) * (procs - 1);
  double total = base.mean_distance() * pairs;
  for (std::size_t i = 0; i < affected_.size(); ++i) {
    const int d = affected_[i];
    const std::vector<int>& dist = dist_tables_[i];
    for (int s = 0; s < procs; ++s) {
      if (s == d) continue;
      total -= static_cast<double>(base.distance(s, d));
      if (dist[static_cast<std::size_t>(s)] >= 0)
        total += static_cast<double>(dist[static_cast<std::size_t>(s)]);
    }
  }
  const double live_pairs = pairs - static_cast<double>(unreachable_pairs_);
  mean_distance_ = live_pairs > 0.0 ? total / live_pairs : 0.0;
}

std::string FaultedTopology::name() const {
  std::ostringstream out;
  out << base_->name() << " - " << faults_->failed_links().size()
      << " failed link(s)";
  return out.str();
}

bool FaultedTopology::reachable(int src_proc, int dst_proc) const {
  WORMNET_EXPECTS(src_proc >= 0 && src_proc < num_processors());
  WORMNET_EXPECTS(dst_proc >= 0 && dst_proc < num_processors());
  if (src_proc == dst_proc) return true;
  if (!destination_affected(dst_proc)) return true;
  return dist_to(dst_proc)[static_cast<std::size_t>(src_proc)] >= 0;
}

RouteOptions FaultedTopology::route(int node, int dest) const {
  WORMNET_EXPECTS(dest >= 0 && dest < num_processors());
  if (!destination_affected(dest)) return base_->route(node, dest);
  RouteOptions out;
  if (node == dest) return out;
  if (node < num_processors()) {
    out.add(0);  // injection channels never fail
    return out;
  }
  const std::vector<int>& dist = dist_to(dest);
  const int dn = dist[static_cast<std::size_t>(node)];
  // The DP and the simulator only stand worms at nodes that can still reach
  // their destination (unroutable demand is dropped at the source).
  WORMNET_EXPECTS(dn > 0);
  // In-service ports making strictly-minimal survivor progress, restricted
  // to the bundle of the first such port so the candidates stay inside ONE
  // arbitration group (the simulator's single-bundle invariant; lowest port
  // first keeps model and simulator deterministic and identical).
  int bundle = -1;
  const int off = port_bundle_offset_[static_cast<std::size_t>(node)];
  for (int p = 0; p < num_ports(node); ++p) {
    const int v = base_->neighbor(node, p);
    if (v == kNoNode || faults_->link_failed(node, p)) continue;
    if (v < num_processors() && v != dest) continue;  // never enter a wrong PE
    if (dist[static_cast<std::size_t>(v)] != dn - 1) continue;
    const int b = port_bundle_[static_cast<std::size_t>(off + p)];
    if (bundle < 0) bundle = b;
    if (b == bundle && out.size() < 4) out.add(p);
  }
  WORMNET_ENSURES(out.size() > 0);
  return out;
}

std::array<double, 4> FaultedTopology::route_split(
    int node, int dest, const RouteOptions& opts) const {
  // Unaffected destinations keep the base policy bit-identically; detoured
  // candidates get the uniform adaptive split (the base policy's bias was
  // derived for its own candidate set).
  if (!destination_affected(dest)) return base_->route_split(node, dest, opts);
  return Topology::route_split(node, dest, opts);
}

int FaultedTopology::distance(int src_proc, int dst_proc) const {
  WORMNET_EXPECTS(src_proc >= 0 && src_proc < num_processors());
  WORMNET_EXPECTS(dst_proc >= 0 && dst_proc < num_processors());
  if (src_proc == dst_proc) return 0;
  if (!destination_affected(dst_proc)) return base_->distance(src_proc, dst_proc);
  const int d = dist_to(dst_proc)[static_cast<std::size_t>(src_proc)];
  WORMNET_EXPECTS(d >= 0);  // precondition: reachable(src, dst)
  return d;
}

double FaultedTopology::mean_distance() const { return mean_distance_; }

std::optional<std::pair<int, int>> FaultedTopology::first_unreachable_pair()
    const {
  const int procs = num_processors();
  for (int s = 0; s < procs; ++s)
    for (int d = 0; d < procs; ++d)
      if (s != d && !reachable(s, d)) return std::make_pair(s, d);
  return std::nullopt;
}

double FaultedTopology::unreachable_pair_fraction() const {
  const double pairs =
      static_cast<double>(num_processors()) * (num_processors() - 1);
  return pairs > 0.0 ? static_cast<double>(unreachable_pairs_) / pairs : 0.0;
}

}  // namespace wormnet::topo

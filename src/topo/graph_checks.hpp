// wormnet/topo/graph_checks.hpp
//
// Structural verification utilities.  These are used by the test suite (and
// available to users wiring custom topologies) to prove the invariants the
// analytical model silently relies on: paired links, minimal-progress
// routing, and distance() == BFS shortest path.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace wormnet::topo {

/// Result of verify_topology(): ok() iff no violations were found; the
/// messages describe each violation (truncated to the first `max_messages`).
struct VerifyReport {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// Check structural invariants of a topology:
///  1. link pairing: neighbor(neighbor(n,p), neighbor_port(n,p)) == n;
///  2. every processor has exactly one connected port;
///  3. route(node, dest) candidates all make strictly-decreasing BFS distance
///     (minimal adaptive routing), checked on a subsampled destination set
///     when the network is large;
///  4. distance(s, d) equals BFS shortest channel count for sampled pairs.
VerifyReport verify_topology(const Topology& topo, int max_messages = 20);

/// Result of check_connectivity(): all-pairs processor reachability over
/// in-service links (Topology::link_ok).  When disconnected, names the FIRST
/// unreachable ordered pair — the fail-fast answer a capacity planner wants
/// instead of a flow-propagation assert deep inside build_traffic_model.
struct ConnectivityReport {
  bool connected = true;
  int first_src = -1;             ///< witness source (when !connected)
  int first_dst = -1;             ///< witness destination (when !connected)
  long unreachable_pairs = 0;     ///< ordered distinct pairs with no path
  std::string message;            ///< human-readable description
};

/// BFS every processor over in-service links and report reachability.
/// O(procs * channels) — intended for configuration-time validation, not
/// inner loops (FaultedTopology::reachable answers per-pair queries O(1)).
ConnectivityReport check_connectivity(const Topology& topo);

/// Throw std::runtime_error naming the first unreachable (src, dst) pair
/// when the topology's processors are not mutually reachable over
/// in-service links; no-op when connected.
void require_connected(const Topology& topo);

/// BFS shortest path from processor `src` to every node, counted in directed
/// channels over IN-SERVICE links (Topology::link_ok; every link on a
/// healthy topology), ignoring the routing function (pure graph distance).
/// Unreachable nodes get -1.
std::vector<int> bfs_channel_distances(const Topology& topo, int src_proc);

/// Follow the routing function from src to dst, always taking the first
/// candidate, and return the node sequence (including both endpoints).
/// Aborts (returns empty) after num_nodes() hops — a routing livelock.
std::vector<int> trace_route(const Topology& topo, int src_proc, int dst_proc);

}  // namespace wormnet::topo

#include "topo/generalized_fattree.hpp"

#include <sstream>

#include "util/math.hpp"

namespace wormnet::topo {

using util::base4_digit;
using util::ipow;

long GeneralizedFatTree::m_pow(int e) const { return ipow(parents_, e); }

GeneralizedFatTree::GeneralizedFatTree(int levels, int parents)
    : levels_(levels), parents_(parents) {
  WORMNET_EXPECTS(levels >= 1 && levels <= 6);
  WORMNET_EXPECTS(parents >= 1 && parents <= 4);
  num_procs_ = static_cast<int>(ipow(4, levels));

  level_offset_.assign(static_cast<std::size_t>(levels_ + 1), 0);
  int next = num_procs_;
  for (int l = 1; l <= levels_; ++l) {
    level_offset_[static_cast<std::size_t>(l)] = next;
    next += switches_at(l);
  }
  nbr_.assign(static_cast<std::size_t>(next), {});
  node_level_.assign(static_cast<std::size_t>(next), 0);
  node_addr_.assign(static_cast<std::size_t>(next), 0);
  for (int id = 0; id < next; ++id) {
    nbr_[static_cast<std::size_t>(id)].assign(
        static_cast<std::size_t>(id < num_procs_ ? 1 : 4 + parents_), {});
  }
  for (int p = 0; p < num_procs_; ++p) node_addr_[static_cast<std::size_t>(p)] = p;
  for (int l = 1; l <= levels_; ++l) {
    for (int a = 0; a < switches_at(l); ++a) {
      const int id = switch_id(l, a);
      node_level_[static_cast<std::size_t>(id)] = l;
      node_addr_[static_cast<std::size_t>(id)] = a;
    }
  }

  // Leaves: level-1 blocks have a single switch (m^0 = 1).
  for (int a = 0; a < num_procs_; ++a) connect(a, 0, switch_id(1, a / 4), a % 4);

  // Parents: S(l, b·m^(l-1)+r) parent p -> S(l+1, (b/4)·m^l + (r + p·m^(l-1)) mod m^l)
  // on child port (b mod 4).
  for (int l = 1; l < levels_; ++l) {
    const long group = m_pow(l - 1);
    const long group_up = m_pow(l);
    for (int a = 0; a < switches_at(l); ++a) {
      const long b = a / group;
      const long r = a % group;
      for (int p = 0; p < parents_; ++p) {
        const long parent_addr = (b / 4) * group_up + (r + p * group) % group_up;
        connect(switch_id(l, a), kParentPort0 + p,
                switch_id(l + 1, static_cast<int>(parent_addr)),
                static_cast<int>(b % 4));
      }
    }
  }
}

void GeneralizedFatTree::connect(int node_a, int port_a, int node_b, int port_b) {
  auto& ea = nbr_[static_cast<std::size_t>(node_a)][static_cast<std::size_t>(port_a)];
  auto& eb = nbr_[static_cast<std::size_t>(node_b)][static_cast<std::size_t>(port_b)];
  WORMNET_ENSURES(ea.node == kNoNode);
  WORMNET_ENSURES(eb.node == kNoNode);
  ea = {node_b, port_b};
  eb = {node_a, port_a};
}

std::string GeneralizedFatTree::name() const {
  std::ostringstream out;
  out << "generalized-fat-tree(n=" << levels_ << ", m=" << parents_
      << ", N=" << num_procs_ << ")";
  return out.str();
}

int GeneralizedFatTree::switches_at(int level) const {
  WORMNET_EXPECTS(level >= 1 && level <= levels_);
  return static_cast<int>(ipow(4, levels_ - level) * m_pow(level - 1));
}

int GeneralizedFatTree::switch_id(int level, int addr) const {
  WORMNET_EXPECTS(level >= 1 && level <= levels_);
  WORMNET_EXPECTS(addr >= 0 && addr < switches_at(level));
  return level_offset_[static_cast<std::size_t>(level)] + addr;
}

int GeneralizedFatTree::node_level(int node) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  return node_level_[static_cast<std::size_t>(node)];
}

int GeneralizedFatTree::switch_addr(int node) const {
  WORMNET_EXPECTS(node >= num_procs_ && node < num_nodes());
  return node_addr_[static_cast<std::size_t>(node)];
}

int GeneralizedFatTree::neighbor(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  return nbr_[static_cast<std::size_t>(node)][static_cast<std::size_t>(port)].node;
}

int GeneralizedFatTree::neighbor_port(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  return nbr_[static_cast<std::size_t>(node)][static_cast<std::size_t>(port)].port;
}

bool GeneralizedFatTree::covers(int level, int addr, int proc) const {
  WORMNET_EXPECTS(level >= 1 && level <= levels_);
  WORMNET_EXPECTS(proc >= 0 && proc < num_procs_);
  return (proc >> (2 * level)) == addr / m_pow(level - 1);
}

RouteOptions GeneralizedFatTree::route(int node, int dest) const {
  WORMNET_EXPECTS(dest >= 0 && dest < num_procs_);
  RouteOptions out;
  if (node < num_procs_) {
    if (node != dest) out.add(0);
    return out;
  }
  const int l = node_level(node);
  const int a = switch_addr(node);
  if (covers(l, a, dest)) {
    out.add(base4_digit(dest, l - 1));
  } else {
    for (int p = 0; p < parents_; ++p) out.add(kParentPort0 + p);
  }
  return out;
}

int GeneralizedFatTree::lca_level(int s, int d) const {
  int l = 0;
  while (s != d) {
    s >>= 2;
    d >>= 2;
    ++l;
  }
  return l;
}

int GeneralizedFatTree::distance(int src_proc, int dst_proc) const {
  WORMNET_EXPECTS(src_proc >= 0 && src_proc < num_procs_);
  WORMNET_EXPECTS(dst_proc >= 0 && dst_proc < num_procs_);
  return 2 * lca_level(src_proc, dst_proc);
}

double GeneralizedFatTree::mean_distance() const {
  // Identical to the butterfly fat-tree: redundancy does not change minimal
  // path lengths.
  const double denom = static_cast<double>(num_procs_) - 1.0;
  double sum = 0.0;
  for (int l = 1; l <= levels_; ++l)
    sum += 2.0 * l * 3.0 * static_cast<double>(ipow(4, l - 1)) / denom;
  return sum;
}

long GeneralizedFatTree::links_between(int level_lo) const {
  WORMNET_EXPECTS(level_lo >= 0 && level_lo < levels_);
  if (level_lo == 0) return num_procs_;
  return static_cast<long>(switches_at(level_lo)) * parents_;
}

std::vector<PortBundle> GeneralizedFatTree::output_bundles(int node) const {
  std::vector<PortBundle> bundles;
  if (node < num_procs_) {
    PortBundle inj;
    inj.add(0);
    bundles.push_back(inj);
    return bundles;
  }
  for (int c = 0; c < 4; ++c) {
    PortBundle child;
    child.add(c);
    bundles.push_back(child);
  }
  if (neighbor(node, kParentPort0) != kNoNode) {
    PortBundle up;
    for (int p = 0; p < parents_; ++p) up.add(kParentPort0 + p);
    bundles.push_back(up);
  }
  return bundles;
}

}  // namespace wormnet::topo

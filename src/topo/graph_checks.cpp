#include "topo/graph_checks.hpp"

#include <deque>
#include <sstream>
#include <stdexcept>

namespace wormnet::topo {

std::vector<int> bfs_channel_distances(const Topology& topo, int src_proc) {
  std::vector<int> dist(static_cast<std::size_t>(topo.num_nodes()), -1);
  std::deque<int> queue;
  dist[static_cast<std::size_t>(src_proc)] = 0;
  queue.push_back(src_proc);
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    for (int p = 0; p < topo.num_ports(n); ++p) {
      const int peer = topo.neighbor(n, p);
      if (peer == kNoNode) continue;
      if (!topo.link_ok(n, p)) continue;  // failed links carry no traffic
      if (dist[static_cast<std::size_t>(peer)] != -1) continue;
      dist[static_cast<std::size_t>(peer)] = dist[static_cast<std::size_t>(n)] + 1;
      queue.push_back(peer);
    }
  }
  return dist;
}

std::vector<int> trace_route(const Topology& topo, int src_proc, int dst_proc) {
  std::vector<int> path{src_proc};
  int node = src_proc;
  for (int hops = 0; hops <= topo.num_nodes(); ++hops) {
    if (node == dst_proc && topo.is_processor(node)) return path;
    const RouteOptions opts = topo.route(node, dst_proc);
    if (opts.size() == 0) {
      return node == dst_proc ? path : std::vector<int>{};
    }
    node = topo.neighbor(node, opts[0]);
    path.push_back(node);
  }
  return {};
}

ConnectivityReport check_connectivity(const Topology& topo) {
  ConnectivityReport report;
  const int procs = topo.num_processors();
  for (int s = 0; s < procs; ++s) {
    const std::vector<int> dist = bfs_channel_distances(topo, s);
    for (int d = 0; d < procs; ++d) {
      if (d == s || dist[static_cast<std::size_t>(d)] >= 0) continue;
      ++report.unreachable_pairs;
      if (report.connected) {
        report.connected = false;
        report.first_src = s;
        report.first_dst = d;
        std::ostringstream msg;
        msg << topo.name() << ": processor " << d
            << " is unreachable from processor " << s
            << " over in-service links";
        report.message = msg.str();
      }
    }
  }
  return report;
}

void require_connected(const Topology& topo) {
  const ConnectivityReport report = check_connectivity(topo);
  if (!report.connected) throw std::runtime_error(report.message);
}

VerifyReport verify_topology(const Topology& topo, int max_messages) {
  VerifyReport report;
  auto complain = [&](const std::string& msg) {
    if (static_cast<int>(report.violations.size()) < max_messages)
      report.violations.push_back(msg);
  };

  // 1. Link pairing.
  for (int n = 0; n < topo.num_nodes(); ++n) {
    for (int p = 0; p < topo.num_ports(n); ++p) {
      const int peer = topo.neighbor(n, p);
      if (peer == kNoNode) continue;
      const int back_port = topo.neighbor_port(n, p);
      if (peer < 0 || peer >= topo.num_nodes()) {
        std::ostringstream msg;
        msg << "node " << n << " port " << p << ": neighbor out of range " << peer;
        complain(msg.str());
        continue;
      }
      if (topo.neighbor(peer, back_port) != n ||
          topo.neighbor_port(peer, back_port) != p) {
        std::ostringstream msg;
        msg << "unpaired link at node " << n << " port " << p;
        complain(msg.str());
      }
    }
  }

  // 2. Processors have exactly one connected port.
  for (int n = 0; n < topo.num_processors(); ++n) {
    int connected = 0;
    for (int p = 0; p < topo.num_ports(n); ++p)
      if (topo.neighbor(n, p) != kNoNode) ++connected;
    if (connected != 1) {
      std::ostringstream msg;
      msg << "processor " << n << " has " << connected << " connected ports";
      complain(msg.str());
    }
  }

  // 3/4. Routing minimality and distance() vs BFS, on a subsampled source
  // set so large networks stay cheap to verify.
  const int procs = topo.num_processors();
  const int src_stride = procs <= 64 ? 1 : procs / 64;
  for (int s = 0; s < procs; s += src_stride) {
    const std::vector<int> bfs = bfs_channel_distances(topo, s);
    const int dst_stride = procs <= 256 ? 1 : procs / 256;
    for (int d = 0; d < procs; d += dst_stride) {
      // Unreachable pairs (faulted topologies) carry no traffic; distance()
      // and route() have reachability as a precondition there.
      if (bfs[static_cast<std::size_t>(d)] < 0 || !topo.reachable(s, d)) continue;
      if (topo.distance(s, d) != bfs[static_cast<std::size_t>(d)]) {
        std::ostringstream msg;
        msg << "distance(" << s << ", " << d << ") = " << topo.distance(s, d)
            << " but BFS says " << bfs[static_cast<std::size_t>(d)];
        complain(msg.str());
      }
      if (d == s) continue;
      // Walk the route taking the first candidate everywhere; at each node,
      // every candidate must step to a node strictly closer to d.
      const std::vector<int> rev = bfs_channel_distances(topo, d);
      std::vector<int> path = trace_route(topo, s, d);
      if (path.empty()) {
        std::ostringstream msg;
        msg << "route livelock from " << s << " to " << d;
        complain(msg.str());
        continue;
      }
      for (int node : path) {
        if (node == d) break;
        const RouteOptions opts = topo.route(node, d);
        for (int i = 0; i < opts.size(); ++i) {
          const int next = topo.neighbor(node, opts[i]);
          if (next == kNoNode ||
              rev[static_cast<std::size_t>(next)] >= rev[static_cast<std::size_t>(node)]) {
            std::ostringstream msg;
            msg << "non-minimal route candidate at node " << node << " toward " << d;
            complain(msg.str());
          }
        }
      }
      // Only check the full path sweep for a few destinations per source.
      if (d > s + 4 * dst_stride) break;
    }
  }
  return report;
}

}  // namespace wormnet::topo

// wormnet/topo/topology.hpp
//
// The topology abstraction shared by the flit-level simulator and the
// analytical channel-graph builders.  Following the paper's general routing
// model (its Fig. 1), a network consists of processing elements (PEs) and
// routing elements (REs):
//
//  * indirect networks (the butterfly fat-tree) place PEs at the leaves and
//    REs at internal switches;
//  * direct networks (hypercube, mesh) pair every RE with a PE through an
//    injection/ejection channel, which we represent as an explicit PE node
//    with a single port.
//
// Node ids are dense integers: processors first (0 .. P-1), then switches.
// Every undirected link is a (node, port) <-> (node, port) pairing; directed
// channels over those links are enumerated by ChannelTable (channels.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace wormnet::topo {

/// Sentinel for "no node" (unconnected port).
inline constexpr int kNoNode = -1;

/// Whether a node is a processing element or a routing element.
enum class NodeKind { Processor, Switch };

/// Candidate output ports for a worm's next hop.  All topologies in this
/// repository offer at most two minimal choices (the fat-tree's redundant
/// up-links); the capacity is 4 to accommodate extensions such as the
/// generalized fat-tree.
class RouteOptions {
 public:
  /// Append a candidate port.
  void add(int port) {
    WORMNET_EXPECTS(count_ < static_cast<int>(ports_.size()));
    ports_[static_cast<std::size_t>(count_++)] = port;
  }
  /// Number of candidates (0 means: consume here, the node is the target PE).
  int size() const { return count_; }
  /// i-th candidate port.
  int operator[](int i) const {
    WORMNET_EXPECTS(i >= 0 && i < count_);
    return ports_[static_cast<std::size_t>(i)];
  }
  /// True if `port` is among the candidates.
  bool contains(int port) const {
    for (int i = 0; i < count_; ++i)
      if (ports_[static_cast<std::size_t>(i)] == port) return true;
    return false;
  }

 private:
  std::array<int, 4> ports_{};
  int count_ = 0;
};

/// A group of output ports at one node that the router arbitrates as a single
/// multi-server channel (the fat-tree's two parent ports form one bundle of
/// size two; everything else is a singleton bundle).
struct PortBundle {
  std::array<int, 4> ports{};
  int count = 0;

  void add(int port) {
    WORMNET_EXPECTS(count < static_cast<int>(ports.size()));
    ports[static_cast<std::size_t>(count++)] = port;
  }
  int operator[](int i) const {
    WORMNET_EXPECTS(i >= 0 && i < count);
    return ports[static_cast<std::size_t>(i)];
  }
};

/// Abstract interconnection topology with minimal-path routing.
///
/// Invariants checked by graph_checks.hpp's verify_topology():
///  * neighbor()/neighbor_port() are mutually consistent (links are paired);
///  * route() only returns ports whose links make forward progress
///    (distance strictly decreases along every candidate);
///  * distance() agrees with BFS shortest paths counted in channels.
class Topology {
 public:
  virtual ~Topology() = default;

  /// Human-readable name, e.g. "butterfly-fat-tree(n=3, N=64)".
  virtual std::string name() const = 0;

  /// Total node count (processors + switches).
  virtual int num_nodes() const = 0;

  /// Number of processing elements; processor ids are [0, num_processors()).
  virtual int num_processors() const = 0;

  /// Kind of a node.
  virtual NodeKind kind(int node) const = 0;

  /// Number of ports on the node (ports are [0, num_ports(node))); some may
  /// be unconnected (neighbor() == kNoNode).
  virtual int num_ports(int node) const = 0;

  /// Node on the far side of (node, port); kNoNode if unconnected.
  virtual int neighbor(int node, int port) const = 0;

  /// The port index on neighbor(node, port) that connects back to `node`.
  /// Undefined when neighbor() == kNoNode.
  virtual int neighbor_port(int node, int port) const = 0;

  /// Minimal-route candidates for a worm standing at `node` and destined for
  /// processor `dest`.  An empty result means node == dest (consume).
  /// For a processor node this is its single injection port.
  virtual RouteOptions route(int node, int dest) const = 0;

  /// True when the link attached at (node, port) is in service.  The healthy
  /// default is always true; FaultedTopology overrides it to report failed
  /// links.  Symmetric per undirected link: link_ok(n, p) equals
  /// link_ok(neighbor(n, p), neighbor_port(n, p)).  graph_checks' BFS and
  /// connectivity checks traverse only in-service links, so one override
  /// makes every structural utility fault-aware.
  virtual bool link_ok(int node, int port) const {
    static_cast<void>(node);
    static_cast<void>(port);
    return true;
  }

  /// True when a worm injected at processor `src_proc` can reach processor
  /// `dst_proc` over in-service links.  Healthy topologies are connected by
  /// construction (default true); FaultedTopology answers from its survivor
  /// reachability tables.  The traffic-model builders and the simulator's
  /// destination samplers consult this to degrade gracefully — unroutable
  /// demand is counted, not crashed on.
  virtual bool reachable(int src_proc, int dst_proc) const {
    static_cast<void>(src_proc);
    static_cast<void>(dst_proc);
    return true;
  }

  /// Shortest path length between two processors, counted in directed
  /// channels traversed and INCLUDING the injection and ejection channels
  /// (this is the D of the paper's Eq. 1: zero-load latency is s_f + D - 1).
  /// distance(p, p) == 0 by convention.
  virtual int distance(int src_proc, int dst_proc) const = 0;

  /// Mean of distance(s, d) over ordered pairs of distinct processors with
  /// uniform weights — the D̄ of the paper's Eq. 2.  Closed-form per topology.
  virtual double mean_distance() const = 0;

  /// Output-port bundles at a node for multi-server arbitration; the default
  /// puts every connected port in its own singleton bundle.
  virtual std::vector<PortBundle> output_bundles(int node) const;

  /// Deterministic split probabilities over the route(node, dest) candidates
  /// `opts`, used by the analytical flow enumeration (core::build_traffic_model):
  /// entry i is the probability a worm standing at `node` takes candidate i.
  /// The default mirrors the simulator's adaptive rule — uniform over the
  /// candidates (the fat-tree's randomized up-phase maps to an equal split);
  /// topologies with a biased selection policy override this.
  /// Precondition: opts.size() >= 1.  Entries sum to 1.
  virtual std::array<double, 4> route_split(int node, int dest,
                                            const RouteOptions& opts) const;

  /// Virtual-channel (lane) multiplicity of the directed channel leaving
  /// `node` through `port`: the number of independent one-flit latches
  /// multiplexed over that physical link.  Lanes share the link's one
  /// flit/cycle of bandwidth; a worm holds exactly one lane per channel of
  /// its path.  The default returns the uniform multiplicity set by
  /// set_uniform_lanes() (1 unless changed — the paper's single-lane
  /// network); topologies or experiments with heterogeneous per-channel
  /// buffering override this.
  virtual int lanes(int node, int port) const {
    static_cast<void>(node);
    static_cast<void>(port);
    return uniform_lanes_;
  }

  /// Set the lane multiplicity returned by the default lanes() for every
  /// channel.  Both the simulator (sim::SimNetwork) and the analytical
  /// builder (core::build_traffic_model) read lanes through the topology,
  /// so one call configures model and simulation consistently.  Call before
  /// constructing a SimNetwork or building a model — those snapshot the
  /// lane counts.
  void set_uniform_lanes(int lanes) {
    WORMNET_EXPECTS(lanes >= 1);
    uniform_lanes_ = lanes;
  }

  /// The uniform lane multiplicity (what the default lanes() returns).
  int uniform_lanes() const { return uniform_lanes_; }

  // -- Per-channel link attributes (heterogeneous fabrics) -------------------
  //
  // Real fabrics mix link speeds per tier (tapered/oversubscribed fat-trees)
  // and have finite per-lane flit buffers whose backpressure moves the
  // saturation point.  Each attribute has a uniform-default fast path (the
  // paper's network: bandwidth 1 flit/cycle, zero extra link latency,
  // unbounded buffers) and a per-(node, port) virtual that heterogeneous
  // topologies override.  Both the simulator (sim::SimNetwork) and the
  // analytical builder (core::build_traffic_model) read attributes through
  // the topology, so one description configures model and simulation
  // consistently; both snapshot at construction/build time.

  /// Bandwidth of the directed channel leaving `node` through `port`, in
  /// flits per cycle (a service-time SCALE: a worm of s_f flits occupies the
  /// channel for s_f / bandwidth cycles).  The simulator additionally
  /// requires 1/bandwidth to be a whole number of cycles.
  virtual double bandwidth(int node, int port) const {
    static_cast<void>(node);
    static_cast<void>(port);
    return uniform_bandwidth_;
  }

  /// Extra per-hop pipeline latency of the channel leaving `node` through
  /// `port`, in cycles, on top of the one cycle a flit hop already costs.
  /// 0 is the paper's network.
  virtual double link_latency(int node, int port) const {
    static_cast<void>(node);
    static_cast<void>(port);
    return uniform_link_latency_;
  }

  /// Per-lane flit-buffer depth of the channel leaving `node` through
  /// `port`: the number of flits a lane can accept back-to-back at the
  /// link's native rate before credit backpressure inserts a stall cycle.
  /// util::kInfiniteBufferDepth (the default) is the paper's unbounded
  /// buffering.
  virtual int buffer_depth(int node, int port) const {
    static_cast<void>(node);
    static_cast<void>(port);
    return uniform_buffer_depth_;
  }

  /// Set the bandwidth returned by the default bandwidth() for every
  /// channel.  Throws std::invalid_argument on bandwidth <= 0 (fail fast at
  /// config time, not NaN mid-solve).
  void set_uniform_bandwidth(double bw) {
    if (!(bw > 0.0))
      throw std::invalid_argument("topology: bandwidth must be > 0 flits/cycle");
    uniform_bandwidth_ = bw;
  }

  /// Set the link latency returned by the default link_latency() for every
  /// channel.  Throws std::invalid_argument on a negative latency.
  void set_uniform_link_latency(double cycles) {
    if (!(cycles >= 0.0))
      throw std::invalid_argument("topology: link latency must be >= 0 cycles");
    uniform_link_latency_ = cycles;
  }

  /// Set the buffer depth returned by the default buffer_depth() for every
  /// channel.  Throws std::invalid_argument on depth < 1 flit.
  void set_uniform_buffer_depth(int flits) {
    if (flits < 1)
      throw std::invalid_argument("topology: buffer depth must be >= 1 flit");
    uniform_buffer_depth_ = flits;
  }

  /// The uniform attribute values (what the default virtuals return).
  double uniform_bandwidth() const { return uniform_bandwidth_; }
  double uniform_link_latency() const { return uniform_link_latency_; }
  int uniform_buffer_depth() const { return uniform_buffer_depth_; }

  // -- Symmetry hooks (the channel-class collapse, core::build_traffic_model
  //    collapsed mode) ------------------------------------------------------
  //
  // A topology that knows a routing-preserving symmetry group can declare its
  // orbits through key functions: two processors (channels) with equal keys
  // are in one orbit of a group G of automorphisms that (a) commute with
  // route()/route_split() and (b) fix every processor in `pinned_procs`
  // pointwise.  The collapsed builder then propagates flow for ONE
  // destination per processor orbit and scales by the orbit size — exact
  // whenever the traffic pattern is invariant under every automorphism
  // fixing the pins (uniform pins nothing; a hotspot pins its target).
  //
  // Contract details the builder relies on:
  //  * keys are arbitrary uint64 values — only equality matters;
  //  * channel keys must be CONSTANT ON ORBITS AND SEPARATE THEM (a finer-
  //    than-orbit partition is NOT safe: the representative-destination sums
  //    are only exact on group-closed classes);
  //  * every channel of one class shares bundle size, lane count,
  //    terminal-ness and link attributes (bandwidth / link latency / buffer
  //    depth) — validated by the builder; topology_symmetry() additionally
  //    refuses (falls back to dense) when declared classes mix attributes.
  // The defaults declare no symmetry (singleton orbits), which makes the
  // collapsed builder fall back to the dense per-channel path.

  /// True when this topology can supply symmetry keys for the given pinned
  /// processors.  The default knows no symmetry.
  virtual bool has_symmetry(const std::vector<int>& pinned_procs) const {
    static_cast<void>(pinned_procs);
    return false;
  }

  /// Orbit key of processor `proc` under the automorphisms fixing the pins.
  /// Only meaningful when has_symmetry(pinned_procs) is true.
  virtual std::uint64_t proc_symmetry_key(int proc,
                                          const std::vector<int>& pinned_procs) const {
    static_cast<void>(pinned_procs);
    return static_cast<std::uint64_t>(proc);
  }

  /// Orbit key of the directed channel leaving `node` through `port` under
  /// the automorphisms fixing the pins.  Only meaningful when
  /// has_symmetry(pinned_procs) is true.
  virtual std::uint64_t channel_symmetry_key(
      int node, int port, const std::vector<int>& pinned_procs) const {
    static_cast<void>(pinned_procs);
    return static_cast<std::uint64_t>(node) * 64u + static_cast<std::uint64_t>(port);
  }

  /// Convenience: true for processor nodes.
  bool is_processor(int node) const { return kind(node) == NodeKind::Processor; }

 private:
  int uniform_lanes_ = 1;
  double uniform_bandwidth_ = 1.0;
  double uniform_link_latency_ = 0.0;
  int uniform_buffer_depth_ = util::kInfiniteBufferDepth;
};

}  // namespace wormnet::topo

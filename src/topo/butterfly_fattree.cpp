#include "topo/butterfly_fattree.hpp"

#include <sstream>

#include "util/math.hpp"

namespace wormnet::topo {

using util::base4_digit;
using util::ipow;

ButterflyFatTree::ButterflyFatTree(int levels) : levels_(levels) {
  WORMNET_EXPECTS(levels >= 1 && levels <= 10);
  num_procs_ = static_cast<int>(ipow(4, levels));

  // Node layout: processors [0, N), then switches level by level.
  level_offset_.assign(static_cast<std::size_t>(levels_ + 1), 0);
  int next = num_procs_;
  for (int l = 1; l <= levels_; ++l) {
    level_offset_[static_cast<std::size_t>(l)] = next;
    next += switches_at(l);
  }
  nbr_.assign(static_cast<std::size_t>(next), {});
  node_level_.assign(static_cast<std::size_t>(next), 0);
  node_addr_.assign(static_cast<std::size_t>(next), 0);
  for (int p = 0; p < num_procs_; ++p) node_addr_[static_cast<std::size_t>(p)] = p;
  for (int l = 1; l <= levels_; ++l) {
    for (int a = 0; a < switches_at(l); ++a) {
      const int id = switch_id(l, a);
      node_level_[static_cast<std::size_t>(id)] = l;
      node_addr_[static_cast<std::size_t>(id)] = a;
    }
  }

  // Leaf wiring: processor a <-> child (a mod 4) of S(1, a/4).
  for (int a = 0; a < num_procs_; ++a) {
    connect(a, 0, switch_id(1, a / 4), a % 4);
  }

  // Internal wiring per the paper's rule.  For S(l, a) with l < n:
  //   parent_p -> S(l+1, floor(a/2^(l+1))*2^l + (a + p*2^(l-1)) mod 2^l)
  //   at child index floor((a mod 2^(l+1)) / 2^(l-1)).
  for (int l = 1; l < levels_; ++l) {
    const int two_lm1 = 1 << (l - 1);
    const int two_l = 1 << l;
    const int two_lp1 = 1 << (l + 1);
    for (int a = 0; a < switches_at(l); ++a) {
      const int child_index = (a % two_lp1) / two_lm1;
      for (int p = 0; p < 2; ++p) {
        const int parent_addr = (a / two_lp1) * two_l + (a + p * two_lm1) % two_l;
        connect(switch_id(l, a), kParentPort0 + p, switch_id(l + 1, parent_addr),
                child_index);
      }
    }
  }
}

void ButterflyFatTree::connect(int node_a, int port_a, int node_b, int port_b) {
  auto& ea = nbr_[static_cast<std::size_t>(node_a)][static_cast<std::size_t>(port_a)];
  auto& eb = nbr_[static_cast<std::size_t>(node_b)][static_cast<std::size_t>(port_b)];
  // The wiring rule must never assign two links to one port.
  WORMNET_ENSURES(ea.node == kNoNode);
  WORMNET_ENSURES(eb.node == kNoNode);
  ea = {node_b, port_b};
  eb = {node_a, port_a};
}

std::string ButterflyFatTree::name() const {
  std::ostringstream out;
  out << "butterfly-fat-tree(n=" << levels_ << ", N=" << num_procs_ << ")";
  return out.str();
}

int ButterflyFatTree::switches_at(int level) const {
  WORMNET_EXPECTS(level >= 1 && level <= levels_);
  return num_procs_ / (1 << (level + 1));
}

int ButterflyFatTree::switch_id(int level, int addr) const {
  WORMNET_EXPECTS(level >= 1 && level <= levels_);
  WORMNET_EXPECTS(addr >= 0 && addr < switches_at(level));
  return level_offset_[static_cast<std::size_t>(level)] + addr;
}

int ButterflyFatTree::node_level(int node) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  return node_level_[static_cast<std::size_t>(node)];
}

int ButterflyFatTree::switch_addr(int node) const {
  WORMNET_EXPECTS(node >= num_procs_ && node < num_nodes());
  return node_addr_[static_cast<std::size_t>(node)];
}

int ButterflyFatTree::neighbor(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  return nbr_[static_cast<std::size_t>(node)][static_cast<std::size_t>(port)].node;
}

int ButterflyFatTree::neighbor_port(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  return nbr_[static_cast<std::size_t>(node)][static_cast<std::size_t>(port)].port;
}

bool ButterflyFatTree::covers(int level, int addr, int proc) const {
  WORMNET_EXPECTS(level >= 1 && level <= levels_);
  WORMNET_EXPECTS(proc >= 0 && proc < num_procs_);
  // S(l, a) reaches processor block (a >> (l-1)) of size 4^l.
  return (proc >> (2 * level)) == (addr >> (level - 1));
}

int ButterflyFatTree::down_port(int level, int proc) {
  return base4_digit(proc, level - 1);
}

RouteOptions ButterflyFatTree::route(int node, int dest) const {
  WORMNET_EXPECTS(dest >= 0 && dest < num_procs_);
  RouteOptions out;
  if (node < num_procs_) {
    if (node != dest) out.add(0);  // injection channel
    return out;
  }
  const int l = node_level(node);
  const int a = switch_addr(node);
  if (covers(l, a, dest)) {
    out.add(down_port(l, dest));
  } else {
    // Both parent links make minimal progress; the adaptive policy and the
    // two-server queueing model both treat them as interchangeable.
    out.add(kParentPort0);
    out.add(kParentPort1);
  }
  return out;
}

int ButterflyFatTree::lca_level(int s, int d) const {
  WORMNET_EXPECTS(s >= 0 && s < num_procs_);
  WORMNET_EXPECTS(d >= 0 && d < num_procs_);
  int l = 0;
  int ss = s;
  int dd = d;
  while (ss != dd) {
    ss >>= 2;
    dd >>= 2;
    ++l;
  }
  return l;
}

int ButterflyFatTree::distance(int src_proc, int dst_proc) const {
  // Up lca channels (incl. injection), down lca channels (incl. ejection).
  return 2 * lca_level(src_proc, dst_proc);
}

double ButterflyFatTree::mean_distance() const {
  // P(LCA = l) = 3 * 4^(l-1) / (4^n - 1); distance at LCA l is 2l.
  const double denom = static_cast<double>(ipow(4, levels_)) - 1.0;
  double sum = 0.0;
  for (int l = 1; l <= levels_; ++l) {
    sum += 2.0 * l * 3.0 * static_cast<double>(ipow(4, l - 1)) / denom;
  }
  return sum;
}

long ButterflyFatTree::links_between(int level_lo) const {
  WORMNET_EXPECTS(level_lo >= 0 && level_lo < levels_);
  if (level_lo == 0) return num_procs_;
  return static_cast<long>(num_procs_) / (1L << level_lo);
}

namespace {

// Key encoding for the symmetry hooks: tag in the top byte, level next,
// relation-to-pin aux in the low bits.  Only equality matters.
constexpr std::uint64_t kKeyInjection = 1;
constexpr std::uint64_t kKeyUp = 2;
constexpr std::uint64_t kKeyDown = 3;

std::uint64_t pack_key(std::uint64_t tag, std::uint64_t level, std::uint64_t aux) {
  return (tag << 56) | (level << 48) | aux;
}

}  // namespace

std::uint64_t ButterflyFatTree::proc_symmetry_key(
    int proc, const std::vector<int>& pinned_procs) const {
  if (pinned_procs.empty()) return 0;  // one orbit: all leaves equivalent
  const int h = pinned_procs.front();
  // Stabilizer orbits of h: h itself, then shells by LCA level (1..n).
  return static_cast<std::uint64_t>(proc == h ? 0 : lca_level(proc, h));
}

std::uint64_t ButterflyFatTree::channel_symmetry_key(
    int node, int port, const std::vector<int>& pinned_procs) const {
  if (node < num_procs_) {
    // Injection channel: refined by the source's orbit (its traffic's split
    // between up-phase and intra-block delivery depends on lca(·, h)).
    return pack_key(kKeyInjection, 0, proc_symmetry_key(node, pinned_procs));
  }
  const int l = node_level(node);
  const bool up = port >= kParentPort0;
  if (pinned_procs.empty()) {
    // The paper's per-level classes: (direction, level).
    return pack_key(up ? kKeyUp : kKeyDown, static_cast<std::uint64_t>(l), 0);
  }
  const int h = pinned_procs.front();
  const int a = switch_addr(node);
  const bool covers_h = covers(l, a, h);
  if (up) {
    // Up channels out of h-covering switches are one orbit (the redundant-
    // switch permutations fixing every leaf act transitively on them);
    // otherwise the block's LCA level with h determines the orbit.
    const std::uint64_t aux =
        covers_h ? 0
                 : static_cast<std::uint64_t>(
                       1 + lca_level((a >> (l - 1)) << (2 * l), h));
    return pack_key(kKeyUp, static_cast<std::uint64_t>(l), aux);
  }
  // Down channel via child port `port`: distinguish the child block holding
  // h, the other children of an h-covering switch, and — outside h's cover —
  // the block's LCA level with h.
  std::uint64_t aux;
  if (covers_h && down_port(l, h) == port) {
    aux = 0;
  } else if (covers_h) {
    aux = 1;
  } else {
    aux = static_cast<std::uint64_t>(2 + lca_level((a >> (l - 1)) << (2 * l), h));
  }
  return pack_key(kKeyDown, static_cast<std::uint64_t>(l), aux);
}

std::vector<PortBundle> ButterflyFatTree::output_bundles(int node) const {
  std::vector<PortBundle> bundles;
  if (node < num_procs_) {
    PortBundle inj;
    inj.add(0);
    bundles.push_back(inj);
    return bundles;
  }
  for (int c = 0; c < 4; ++c) {
    PortBundle child;
    child.add(c);
    bundles.push_back(child);
  }
  if (neighbor(node, kParentPort0) != kNoNode) {
    // The redundant parent pair is one two-server bundle — the construct the
    // paper's M/G/2 treatment models.
    PortBundle up;
    up.add(kParentPort0);
    up.add(kParentPort1);
    bundles.push_back(up);
  }
  return bundles;
}

}  // namespace wormnet::topo

// wormnet/topo/mesh.hpp
//
// k-ary d-dimensional mesh (direct network) with dimension-order routing.
//
// This is wormnet's stand-in for the paper's k-ary n-cube context (Dally's
// networks): DOR on a mesh is deadlock-free without virtual channels, so —
// like the fat-tree — its channel dependency graph is acyclic and the
// paper's backward service-time sweep applies unmodified, while the absence
// of edge symmetry gives genuinely heterogeneous per-channel rates (center
// channels carry more traffic).  See DESIGN.md "Substitutions".
//
// Node layout: processors [0, N), routers [N, 2N).  Router ports: for each
// dimension i, port 2i goes toward coordinate-1 ("minus"), port 2i+1 toward
// coordinate+1 ("plus"); port 2d is the processor link.  Boundary ports are
// unconnected.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace wormnet::topo {

/// k-ary d-mesh with deterministic dimension-order (lowest dimension first)
/// routing.
class Mesh final : public Topology {
 public:
  /// Build a mesh with `radix` nodes per dimension and `dims` dimensions
  /// (N = radix^dims processors).  radix >= 2, dims in [1, 4].
  Mesh(int radix, int dims);

  std::string name() const override;
  int num_nodes() const override { return 2 * num_procs_; }
  int num_processors() const override { return num_procs_; }
  NodeKind kind(int node) const override {
    return node < num_procs_ ? NodeKind::Processor : NodeKind::Switch;
  }
  int num_ports(int node) const override {
    return node < num_procs_ ? 1 : 2 * dims_ + 1;
  }
  int neighbor(int node, int port) const override;
  int neighbor_port(int node, int port) const override;
  RouteOptions route(int node, int dest) const override;
  int distance(int src_proc, int dst_proc) const override;
  double mean_distance() const override;

  // Symmetry (collapsed analytical builder).  Dimension-order routing is
  // equivariant only under the per-axis reflections c_i ↦ k-1-c_i (axis
  // permutations would reorder the DOR dimension sequence), a group of
  // 2^dims elements.  Keys are canonical minimum images over the subgroup
  // fixing every pin; a pin is fixed under an axis-i reflection iff it sits
  // at that axis's center (odd radix only), so hotspots off-center declare
  // no symmetry and the builder falls back to the dense path.
  bool has_symmetry(const std::vector<int>& pinned_procs) const override;
  std::uint64_t proc_symmetry_key(int proc,
                                  const std::vector<int>& pinned_procs) const override;
  std::uint64_t channel_symmetry_key(
      int node, int port, const std::vector<int>& pinned_procs) const override;

  /// Nodes per dimension.
  int radix() const { return radix_; }
  /// Number of dimensions.
  int dims() const { return dims_; }
  /// Router node id hosting processor `proc`.
  int router_of(int proc) const { return num_procs_ + proc; }
  /// Mesh address (linearized) of a router node.
  int address_of(int router) const { return router - num_procs_; }
  /// Coordinate of linear address `addr` along dimension `dim`.
  int coord(int addr, int dim) const;

 private:
  int reflect(int addr, unsigned mask) const;
  bool mask_fixes(int addr, unsigned mask) const;

  int radix_;
  int dims_;
  int num_procs_;
  std::vector<int> stride_;  // stride_[d] = radix^d
};

}  // namespace wormnet::topo

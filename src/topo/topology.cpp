#include "topo/topology.hpp"

namespace wormnet::topo {

std::array<double, 4> Topology::route_split(int node, int dest,
                                            const RouteOptions& opts) const {
  static_cast<void>(node);
  static_cast<void>(dest);
  WORMNET_EXPECTS(opts.size() >= 1);
  std::array<double, 4> probs{};
  const double split = 1.0 / opts.size();
  for (int i = 0; i < opts.size(); ++i) probs[static_cast<std::size_t>(i)] = split;
  return probs;
}

std::vector<PortBundle> Topology::output_bundles(int node) const {
  std::vector<PortBundle> bundles;
  bundles.reserve(static_cast<std::size_t>(num_ports(node)));
  for (int p = 0; p < num_ports(node); ++p) {
    if (neighbor(node, p) == kNoNode) continue;
    PortBundle b;
    b.add(p);
    bundles.push_back(b);
  }
  return bundles;
}

}  // namespace wormnet::topo

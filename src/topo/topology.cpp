#include "topo/topology.hpp"

namespace wormnet::topo {

std::vector<PortBundle> Topology::output_bundles(int node) const {
  std::vector<PortBundle> bundles;
  bundles.reserve(static_cast<std::size_t>(num_ports(node)));
  for (int p = 0; p < num_ports(node); ++p) {
    if (neighbor(node, p) == kNoNode) continue;
    PortBundle b;
    b.add(p);
    bundles.push_back(b);
  }
  return bundles;
}

}  // namespace wormnet::topo

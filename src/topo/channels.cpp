#include "topo/channels.hpp"

namespace wormnet::topo {

ChannelTable::ChannelTable(const Topology& topo) : topo_(&topo) {
  const int nodes = topo.num_nodes();
  out_id_.resize(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    const int ports = topo.num_ports(n);
    out_id_[static_cast<std::size_t>(n)].assign(static_cast<std::size_t>(ports),
                                                kNoChannel);
    for (int p = 0; p < ports; ++p) {
      const int peer = topo.neighbor(n, p);
      if (peer == kNoNode) continue;
      const int peer_port = topo.neighbor_port(n, p);
      out_id_[static_cast<std::size_t>(n)][static_cast<std::size_t>(p)] =
          static_cast<int>(channels_.size());
      channels_.push_back({n, p, peer, peer_port});
    }
  }
}

int ChannelTable::from(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < static_cast<int>(out_id_.size()));
  WORMNET_EXPECTS(port >= 0 &&
                  port < static_cast<int>(out_id_[static_cast<std::size_t>(node)].size()));
  return out_id_[static_cast<std::size_t>(node)][static_cast<std::size_t>(port)];
}

int ChannelTable::into(int node, int port) const {
  const int peer = topo_->neighbor(node, port);
  if (peer == kNoNode) return kNoChannel;
  return from(peer, topo_->neighbor_port(node, port));
}

int ChannelTable::reverse(int id) const {
  const DirectedChannel& c = at(id);
  return from(c.dst_node, c.dst_port);
}

}  // namespace wormnet::topo

// wormnet/topo/symmetry.hpp
//
// Channel-class partitions for the symmetry-collapsed analytical builder
// (core::build_traffic_model in collapsed mode).  This is the generalization
// of the trick behind the paper's fat-tree closed form: §3 collapses the
// fat-tree's channels into per-level equivalence classes and solves O(levels)
// recurrences instead of O(N) — here any topology that declares a
// routing-preserving symmetry (Topology::has_symmetry /
// proc_symmetry_key / channel_symmetry_key) gets the same collapse, and
// irregular topologies can supply a hand-declared partition.
//
// A SymmetryClasses value is a pair of partitions with dense ids:
//  * processors into DESTINATION ORBITS — the builder propagates flow for
//    one representative destination per orbit and scales by the orbit size;
//  * directed channels (topo::ChannelTable ids) into CHANNEL CLASSES — the
//    O(classes) ChannelClass entries of the quotient GeneralModel.
//
// Exactness requires the classes to be orbits (constant AND group-closed)
// of a group of automorphisms that commutes with routing and fixes the
// pinned processors; a user-declared partition is taken on trust and should
// be checked with core::check_collapsed_parity at small N.
#pragma once

#include <vector>

#include "topo/channels.hpp"
#include "topo/topology.hpp"

namespace wormnet::topo {

/// Orbit partitions of one (topology, pinned processors) pair.
struct SymmetryClasses {
  /// Per processor: dense destination-orbit id in [0, num_proc_orbits).
  std::vector<int> proc_orbit;
  /// Per directed channel (ChannelTable id): dense class id in
  /// [0, num_channel_classes).
  std::vector<int> channel_class;
  int num_proc_orbits = 0;
  int num_channel_classes = 0;

  /// True when the partition collapses nothing (every orbit a singleton) —
  /// the collapsed builder falls back to the dense path.
  bool trivial(int num_processors) const {
    return num_proc_orbits >= num_processors;
  }
};

/// Compute the orbit partitions the topology declares for `pinned_procs`
/// (densely re-labeling its uint64 keys in first-seen order).  Returns false
/// — leaving `out` empty — when the topology declares no symmetry for these
/// pins (Topology::has_symmetry is false).
bool topology_symmetry(const Topology& topo, const ChannelTable& ct,
                       const std::vector<int>& pinned_procs,
                       SymmetryClasses& out);

}  // namespace wormnet::topo

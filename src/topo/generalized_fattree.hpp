// wormnet/topo/generalized_fattree.hpp
//
// Generalized butterfly fat-tree: 4 children per switch as in the paper,
// but a configurable number m of parent links (the paper's §4 names
// ">2-server channels" as the natural extension of its framework; this
// topology is what exercises it).
//
// Structure for N = 4^n processors and parent multiplicity m in [1, 4]:
//  * level l has 4^(n-l) · m^(l-1) switches (m = 2 reproduces the butterfly
//    fat-tree's N/2^(l+1));
//  * switches at level l partition into 4^(n-l) block groups of m^(l-1)
//    switches; every switch in block group b reaches exactly the processors
//    [b·4^l, (b+1)·4^l) going down;
//  * switch S(l, a) with a = b·m^(l-1) + r has parent p at
//    S(l+1, (b/4)·m^l + (r + p·m^(l-1)) mod m^l), arriving on the parent's
//    child port (b mod 4).  The map is a bijection per (parent, child port):
//    each level-(l+1) switch's child port c has exactly one child switch in
//    sub-block 4B+c.
//
// Consequences (tested): minimal distance and its mean are INDEPENDENT of m
// (2·LCA-level channels), while the up-path redundancy — and hence
// contention, throughput, and the queueing model needed (M/G/m) — scales
// with m.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace wormnet::topo {

/// Fat-tree with 4 children and m parent links per switch.
class GeneralizedFatTree final : public Topology {
 public:
  /// Child ports are 0..3; parent ports are 4..4+m-1.
  static constexpr int kChildPort0 = 0;
  static constexpr int kParentPort0 = 4;

  /// Build with `levels` switch levels (N = 4^levels) and `parents` parent
  /// links per switch; levels in [1, 6], parents in [1, 4].
  GeneralizedFatTree(int levels, int parents);

  // -- Topology interface -------------------------------------------------
  std::string name() const override;
  int num_nodes() const override { return static_cast<int>(nbr_.size()); }
  int num_processors() const override { return num_procs_; }
  NodeKind kind(int node) const override {
    return node < num_procs_ ? NodeKind::Processor : NodeKind::Switch;
  }
  int num_ports(int node) const override {
    return node < num_procs_ ? 1 : 4 + parents_;
  }
  int neighbor(int node, int port) const override;
  int neighbor_port(int node, int port) const override;
  RouteOptions route(int node, int dest) const override;
  int distance(int src_proc, int dst_proc) const override;
  double mean_distance() const override;
  std::vector<PortBundle> output_bundles(int node) const override;

  // -- structure accessors --------------------------------------------------
  /// Number of switch levels n.
  int levels() const { return levels_; }
  /// Parent multiplicity m.
  int parents() const { return parents_; }
  /// Switch count at level l: 4^(n-l) · m^(l-1).
  int switches_at(int level) const;
  /// Node id of S(level, addr).
  int switch_id(int level, int addr) const;
  /// 0 for processors, l for level-l switches.
  int node_level(int node) const;
  /// Address within the level.
  int switch_addr(int node) const;
  /// True when S(level, addr) reaches `proc` going down.
  bool covers(int level, int addr, int proc) const;
  /// Lowest level whose block contains both processors.
  int lca_level(int s, int d) const;
  /// Up links between level l and l+1 (l >= 1), or processor links (l = 0).
  long links_between(int level_lo) const;

 private:
  struct End {
    int node = kNoNode;
    int port = -1;
  };

  void connect(int node_a, int port_a, int node_b, int port_b);
  long m_pow(int e) const;

  int levels_;
  int parents_;
  int num_procs_;
  std::vector<int> level_offset_;
  std::vector<std::vector<End>> nbr_;
  std::vector<int> node_level_;
  std::vector<int> node_addr_;
};

}  // namespace wormnet::topo

// wormnet/topo/fault.hpp
//
// Partial failure as a first-class topology input.  A FaultSet names failed
// elements — whole undirected links by one (node, port) endpoint, or whole
// switches (every link they terminate) — validated against one topology at
// construction so a bad spec throws std::invalid_argument at configuration
// time, never NaN mid-solve.  A FaultedTopology is a decorator that presents
// the SAME channel structure as its base (dead links still enumerate, so
// topo::ChannelTable and every dense per-channel array stay index-aligned
// between the healthy and faulted views — which is what lets the query
// engine serve an N−1 sweep as retunes instead of rebuilds) but routes
// around the failures:
//
//  * destinations whose base minimal routes never touch a failed element
//    keep the base routing function verbatim (bit-identical fast path);
//  * affected destinations route by survivor BFS distance — at each node the
//    candidates are the in-service ports making strictly-minimal progress in
//    the survivor graph, restricted to one output bundle so the simulator's
//    single-bundle arbitration invariant holds (fat-tree worms detour over
//    the surviving parent link; mesh/hypercube worms take live minimal
//    detours);
//  * pairs with no surviving path are reported — reachable() answers false,
//    first_unreachable_pair() names a witness — instead of asserting inside
//    the flow-propagation DP.
//
// Faults break a topology's declared symmetry in general, so a non-empty
// FaultedTopology declares none and the collapsed builder falls back to the
// dense path; an EMPTY fault set forwards the base symmetry hooks unchanged,
// keeping collapsed residents valid as the baseline of availability sweeps.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "topo/topology.hpp"

namespace wormnet::topo {

/// A validated set of failed links / switches against one topology.
/// Immutable after the fail_* calls that build it; safe to share across
/// threads by const reference or shared_ptr.
class FaultSet {
 public:
  /// Binds the set to `topo` for validation; the topology must outlive the
  /// fault set.
  explicit FaultSet(const Topology& topo);

  /// Fail the undirected link attached at (node, port) — both directed
  /// channels over it go out of service.  Throws std::invalid_argument on an
  /// out-of-range node or port, an unconnected port, a link terminating at a
  /// processor (injection/ejection channels cannot fail: a PE with no link
  /// is not a degraded network, it is a smaller one), or a link already
  /// failed (directly or via a failed switch).
  void fail_link(int node, int port);

  /// Fail a whole switch: every link it terminates goes out of service.
  /// Throws std::invalid_argument on an out-of-range or processor node, on a
  /// switch with a processor neighbor (that would sever injection/ejection
  /// channels — fail its up-links instead to model an isolated block), or
  /// when any of its links is already failed.
  void fail_switch(int node);

  /// No failures recorded.
  bool empty() const { return links_.empty(); }
  /// Failed undirected links, canonical (lower (node, port) endpoint), in
  /// the order they were recorded (switch failures expand to their links).
  const std::vector<std::pair<int, int>>& failed_links() const { return links_; }
  /// Failed switches, in the order they were recorded.
  const std::vector<int>& failed_switches() const { return switches_; }
  /// True when the undirected link at (node, port) is failed (either
  /// endpoint may be given).
  bool link_failed(int node, int port) const;
  /// The topology this set was validated against.
  const Topology& topology() const { return *topo_; }

  /// Order-insensitive content digest (two sets failing the same links hash
  /// equal regardless of recording order) — the query engine's variant key.
  std::uint64_t digest() const;

 private:
  std::pair<int, int> canonical(int node, int port) const;
  void check_link(int node, int port) const;

  const Topology* topo_;
  std::vector<std::pair<int, int>> links_;
  std::vector<int> switches_;
  std::vector<char> dead_;  // flattened per-(node, port) flag
  std::vector<int> port_offset_;
};

/// The degraded view of `base` under `faults`.  Same nodes, ports, links and
/// output bundles (stable channel structure); fault-aware route() /
/// distance() / reachable() / link_ok().  Construction runs one backward
/// survivor BFS per affected destination, so the object is immutable and
/// thread-safe afterwards.  Base and faults must outlive the decorator.
class FaultedTopology final : public Topology {
 public:
  FaultedTopology(const Topology& base, const FaultSet& faults);

  std::string name() const override;
  int num_nodes() const override { return base_->num_nodes(); }
  int num_processors() const override { return base_->num_processors(); }
  NodeKind kind(int node) const override { return base_->kind(node); }
  int num_ports(int node) const override { return base_->num_ports(node); }
  int neighbor(int node, int port) const override {
    return base_->neighbor(node, port);
  }
  int neighbor_port(int node, int port) const override {
    return base_->neighbor_port(node, port);
  }
  std::vector<PortBundle> output_bundles(int node) const override {
    return base_->output_bundles(node);
  }

  bool link_ok(int node, int port) const override {
    return !faults_->link_failed(node, port);
  }
  bool reachable(int src_proc, int dst_proc) const override;

  RouteOptions route(int node, int dest) const override;
  std::array<double, 4> route_split(int node, int dest,
                                    const RouteOptions& opts) const override;
  /// Survivor-graph distance.  Precondition: reachable(src, dst).
  int distance(int src_proc, int dst_proc) const override;
  /// Mean survivor distance over REACHABLE ordered pairs of distinct
  /// processors (unreachable pairs carry no traffic, so they are excluded
  /// rather than poisoning the mean with infinity).
  double mean_distance() const override;

  // Link attributes pass through: a dead link keeps its nameplate numbers —
  // it simply carries no flow.
  int lanes(int node, int port) const override { return base_->lanes(node, port); }
  double bandwidth(int node, int port) const override {
    return base_->bandwidth(node, port);
  }
  double link_latency(int node, int port) const override {
    return base_->link_latency(node, port);
  }
  int buffer_depth(int node, int port) const override {
    return base_->buffer_depth(node, port);
  }

  // Symmetry: forwarded only for an empty fault set (see file comment).
  bool has_symmetry(const std::vector<int>& pinned_procs) const override {
    return faults_->empty() && base_->has_symmetry(pinned_procs);
  }
  std::uint64_t proc_symmetry_key(int proc,
                                  const std::vector<int>& pins) const override {
    return base_->proc_symmetry_key(proc, pins);
  }
  std::uint64_t channel_symmetry_key(int node, int port,
                                     const std::vector<int>& pins) const override {
    return base_->channel_symmetry_key(node, port, pins);
  }

  const Topology& base() const { return *base_; }
  const FaultSet& faults() const { return *faults_; }

  /// Destination processors whose routing differs from the base (some base
  /// minimal route crossed a failed element).  The query engine retunes
  /// exactly these columns.
  const std::vector<int>& affected_destinations() const { return affected_; }
  /// True when routing toward `dest` differs from the base topology.
  bool destination_affected(int dest) const {
    return affected_index_[static_cast<std::size_t>(dest)] >= 0;
  }
  /// A witness (src, dst) pair with no surviving path, if any.
  std::optional<std::pair<int, int>> first_unreachable_pair() const;
  /// Fraction of ordered distinct processor pairs with no surviving path.
  double unreachable_pair_fraction() const;

 private:
  const std::vector<int>& dist_to(int dest) const {
    return dist_tables_[static_cast<std::size_t>(
        affected_index_[static_cast<std::size_t>(dest)])];
  }

  const Topology* base_;
  const FaultSet* faults_;
  std::vector<int> affected_;        // affected destination processors
  std::vector<int> affected_index_;  // proc -> index into dist_tables_, -1
  std::vector<std::vector<int>> dist_tables_;  // survivor dist, -1 unreachable
  std::vector<int> port_bundle_;        // flattened [node][port] -> bundle id
  std::vector<int> port_bundle_offset_; // per-node offset into port_bundle_
  long unreachable_pairs_ = 0;
  double mean_distance_ = 0.0;
};

}  // namespace wormnet::topo

#include "topo/mesh.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/math.hpp"

namespace wormnet::topo {

Mesh::Mesh(int radix, int dims) : radix_(radix), dims_(dims) {
  WORMNET_EXPECTS(radix >= 2);
  WORMNET_EXPECTS(dims >= 1 && dims <= 4);
  long n = 1;
  stride_.assign(static_cast<std::size_t>(dims), 0);
  for (int d = 0; d < dims; ++d) {
    stride_[static_cast<std::size_t>(d)] = static_cast<int>(n);
    n *= radix;
  }
  WORMNET_EXPECTS(n <= (1 << 20));
  num_procs_ = static_cast<int>(n);
}

std::string Mesh::name() const {
  std::ostringstream out;
  out << "mesh(k=" << radix_ << ", d=" << dims_ << ", N=" << num_procs_ << ")";
  return out.str();
}

int Mesh::coord(int addr, int dim) const {
  return (addr / stride_[static_cast<std::size_t>(dim)]) % radix_;
}

int Mesh::neighbor(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  if (node < num_procs_) return router_of(node);
  const int addr = address_of(node);
  if (port == 2 * dims_) return addr;  // processor link
  const int dim = port / 2;
  const bool plus = (port % 2) == 1;
  const int c = coord(addr, dim);
  if (plus) {
    if (c == radix_ - 1) return kNoNode;
    return router_of(addr + stride_[static_cast<std::size_t>(dim)]);
  }
  if (c == 0) return kNoNode;
  return router_of(addr - stride_[static_cast<std::size_t>(dim)]);
}

int Mesh::neighbor_port(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  if (node < num_procs_) return 2 * dims_;  // router's processor port
  if (port == 2 * dims_) return 0;          // processor's single port
  // A "plus" link arrives at the neighbor's "minus" port of the same
  // dimension and vice versa.
  return (port % 2 == 1) ? port - 1 : port + 1;
}

RouteOptions Mesh::route(int node, int dest) const {
  WORMNET_EXPECTS(dest >= 0 && dest < num_procs_);
  RouteOptions out;
  if (node < num_procs_) {
    if (node != dest) out.add(0);
    return out;
  }
  const int addr = address_of(node);
  for (int d = 0; d < dims_; ++d) {
    const int have = coord(addr, d);
    const int want = coord(dest, d);
    if (have == want) continue;
    out.add(2 * d + (want > have ? 1 : 0));
    return out;  // dimension-order: correct the lowest mismatching dim only
  }
  out.add(2 * dims_);  // arrived: eject
  return out;
}

int Mesh::distance(int src_proc, int dst_proc) const {
  WORMNET_EXPECTS(src_proc >= 0 && src_proc < num_procs_);
  WORMNET_EXPECTS(dst_proc >= 0 && dst_proc < num_procs_);
  if (src_proc == dst_proc) return 0;
  int manhattan = 0;
  for (int d = 0; d < dims_; ++d)
    manhattan += std::abs(coord(src_proc, d) - coord(dst_proc, d));
  return manhattan + 2;
}

int Mesh::reflect(int addr, unsigned mask) const {
  int out = 0;
  for (int d = 0; d < dims_; ++d) {
    int c = coord(addr, d);
    if (mask & (1u << d)) c = radix_ - 1 - c;
    out += c * stride_[static_cast<std::size_t>(d)];
  }
  return out;
}

bool Mesh::mask_fixes(int addr, unsigned mask) const {
  // Reflection of axis d fixes a coordinate only at the axis center
  // (2c == k-1, odd radix).
  for (int d = 0; d < dims_; ++d) {
    if ((mask & (1u << d)) && 2 * coord(addr, d) != radix_ - 1) return false;
  }
  return true;
}

bool Mesh::has_symmetry(const std::vector<int>& pinned_procs) const {
  // Some non-identity reflection must fix every pin, else the orbit
  // partition is all-singletons and collapsing buys nothing.
  const unsigned masks = 1u << dims_;
  for (unsigned g = 1; g < masks; ++g) {
    bool ok = true;
    for (int p : pinned_procs) {
      if (!mask_fixes(p, g)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

std::uint64_t Mesh::proc_symmetry_key(int proc,
                                      const std::vector<int>& pinned_procs) const {
  // Canonical minimum image of the address over the pin-fixing subgroup.
  const unsigned masks = 1u << dims_;
  int best = proc;
  for (unsigned g = 1; g < masks; ++g) {
    bool ok = true;
    for (int p : pinned_procs) {
      if (!mask_fixes(p, g)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    best = std::min(best, reflect(proc, g));
  }
  return static_cast<std::uint64_t>(best);
}

std::uint64_t Mesh::channel_symmetry_key(
    int node, int port, const std::vector<int>& pinned_procs) const {
  const unsigned masks = 1u << dims_;
  const bool injection = node < num_procs_;
  const int addr = injection ? node : address_of(node);
  // Minimum image of the (address, port) pair; a reflected axis swaps that
  // dimension's minus/plus ports (2i <-> 2i+1), other ports are unmoved.
  std::uint64_t best = ~0ull;
  for (unsigned g = 0; g < masks; ++g) {
    bool ok = true;
    for (int p : pinned_procs) {
      if (!mask_fixes(p, g)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    int rport = port;
    if (!injection && port != 2 * dims_ && (g & (1u << (port / 2)))) {
      rport = port ^ 1;
    }
    const std::uint64_t img =
        static_cast<std::uint64_t>(reflect(addr, g)) * 32u +
        static_cast<std::uint64_t>(rport);
    best = std::min(best, img);
  }
  return ((injection ? 1ull : 2ull) << 56) | best;
}

double Mesh::mean_distance() const {
  // E|a - b| for independent uniform coordinates in [0, k) is (k^2-1)/(3k);
  // sum over dims, then condition on src != dst (prob (N-1)/N), add inj+ej.
  const double k = radix_;
  const double per_dim = (k * k - 1.0) / (3.0 * k);
  const double n = num_procs_;
  return dims_ * per_dim * (n / (n - 1.0)) + 2.0;
}

}  // namespace wormnet::topo

#include "topo/mesh.hpp"

#include <cstdlib>
#include <sstream>

#include "util/math.hpp"

namespace wormnet::topo {

Mesh::Mesh(int radix, int dims) : radix_(radix), dims_(dims) {
  WORMNET_EXPECTS(radix >= 2);
  WORMNET_EXPECTS(dims >= 1 && dims <= 4);
  long n = 1;
  stride_.assign(static_cast<std::size_t>(dims), 0);
  for (int d = 0; d < dims; ++d) {
    stride_[static_cast<std::size_t>(d)] = static_cast<int>(n);
    n *= radix;
  }
  WORMNET_EXPECTS(n <= (1 << 20));
  num_procs_ = static_cast<int>(n);
}

std::string Mesh::name() const {
  std::ostringstream out;
  out << "mesh(k=" << radix_ << ", d=" << dims_ << ", N=" << num_procs_ << ")";
  return out.str();
}

int Mesh::coord(int addr, int dim) const {
  return (addr / stride_[static_cast<std::size_t>(dim)]) % radix_;
}

int Mesh::neighbor(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  if (node < num_procs_) return router_of(node);
  const int addr = address_of(node);
  if (port == 2 * dims_) return addr;  // processor link
  const int dim = port / 2;
  const bool plus = (port % 2) == 1;
  const int c = coord(addr, dim);
  if (plus) {
    if (c == radix_ - 1) return kNoNode;
    return router_of(addr + stride_[static_cast<std::size_t>(dim)]);
  }
  if (c == 0) return kNoNode;
  return router_of(addr - stride_[static_cast<std::size_t>(dim)]);
}

int Mesh::neighbor_port(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < num_nodes());
  WORMNET_EXPECTS(port >= 0 && port < num_ports(node));
  if (node < num_procs_) return 2 * dims_;  // router's processor port
  if (port == 2 * dims_) return 0;          // processor's single port
  // A "plus" link arrives at the neighbor's "minus" port of the same
  // dimension and vice versa.
  return (port % 2 == 1) ? port - 1 : port + 1;
}

RouteOptions Mesh::route(int node, int dest) const {
  WORMNET_EXPECTS(dest >= 0 && dest < num_procs_);
  RouteOptions out;
  if (node < num_procs_) {
    if (node != dest) out.add(0);
    return out;
  }
  const int addr = address_of(node);
  for (int d = 0; d < dims_; ++d) {
    const int have = coord(addr, d);
    const int want = coord(dest, d);
    if (have == want) continue;
    out.add(2 * d + (want > have ? 1 : 0));
    return out;  // dimension-order: correct the lowest mismatching dim only
  }
  out.add(2 * dims_);  // arrived: eject
  return out;
}

int Mesh::distance(int src_proc, int dst_proc) const {
  WORMNET_EXPECTS(src_proc >= 0 && src_proc < num_procs_);
  WORMNET_EXPECTS(dst_proc >= 0 && dst_proc < num_procs_);
  if (src_proc == dst_proc) return 0;
  int manhattan = 0;
  for (int d = 0; d < dims_; ++d)
    manhattan += std::abs(coord(src_proc, d) - coord(dst_proc, d));
  return manhattan + 2;
}

double Mesh::mean_distance() const {
  // E|a - b| for independent uniform coordinates in [0, k) is (k^2-1)/(3k);
  // sum over dims, then condition on src != dst (prob (N-1)/N), add inj+ej.
  const double k = radix_;
  const double per_dim = (k * k - 1.0) / (3.0 * k);
  const double n = num_procs_;
  return dims_ * per_dim * (n / (n - 1.0)) + 2.0;
}

}  // namespace wormnet::topo

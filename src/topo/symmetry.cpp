#include "topo/symmetry.hpp"

#include <unordered_map>

namespace wormnet::topo {

bool topology_symmetry(const Topology& topo, const ChannelTable& ct,
                       const std::vector<int>& pinned_procs,
                       SymmetryClasses& out) {
  out = SymmetryClasses{};
  if (!topo.has_symmetry(pinned_procs)) return false;
  for (int p : pinned_procs) {
    WORMNET_EXPECTS(p >= 0 && p < topo.num_processors());
  }

  const int procs = topo.num_processors();
  out.proc_orbit.assign(static_cast<std::size_t>(procs), -1);
  std::unordered_map<std::uint64_t, int> proc_ids;
  proc_ids.reserve(64);
  for (int p = 0; p < procs; ++p) {
    const std::uint64_t key = topo.proc_symmetry_key(p, pinned_procs);
    const auto [it, inserted] = proc_ids.emplace(key, out.num_proc_orbits);
    if (inserted) ++out.num_proc_orbits;
    out.proc_orbit[static_cast<std::size_t>(p)] = it->second;
  }

  out.channel_class.assign(static_cast<std::size_t>(ct.size()), -1);
  std::unordered_map<std::uint64_t, int> channel_ids;
  channel_ids.reserve(256);
  for (int ch = 0; ch < ct.size(); ++ch) {
    const DirectedChannel& dc = ct.at(ch);
    const std::uint64_t key =
        topo.channel_symmetry_key(dc.src_node, dc.src_port, pinned_procs);
    const auto [it, inserted] = channel_ids.emplace(key, out.num_channel_classes);
    if (inserted) ++out.num_channel_classes;
    out.channel_class[static_cast<std::size_t>(ch)] = it->second;
  }
  return true;
}

}  // namespace wormnet::topo

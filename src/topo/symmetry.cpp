#include "topo/symmetry.hpp"

#include <unordered_map>

namespace wormnet::topo {

bool topology_symmetry(const Topology& topo, const ChannelTable& ct,
                       const std::vector<int>& pinned_procs,
                       SymmetryClasses& out) {
  out = SymmetryClasses{};
  if (!topo.has_symmetry(pinned_procs)) return false;
  for (int p : pinned_procs) {
    WORMNET_EXPECTS(p >= 0 && p < topo.num_processors());
  }

  const int procs = topo.num_processors();
  out.proc_orbit.assign(static_cast<std::size_t>(procs), -1);
  std::unordered_map<std::uint64_t, int> proc_ids;
  proc_ids.reserve(64);
  for (int p = 0; p < procs; ++p) {
    const std::uint64_t key = topo.proc_symmetry_key(p, pinned_procs);
    const auto [it, inserted] = proc_ids.emplace(key, out.num_proc_orbits);
    if (inserted) ++out.num_proc_orbits;
    out.proc_orbit[static_cast<std::size_t>(p)] = it->second;
  }

  out.channel_class.assign(static_cast<std::size_t>(ct.size()), -1);
  std::unordered_map<std::uint64_t, int> channel_ids;
  channel_ids.reserve(256);
  std::vector<int> class_rep;  // first channel seen per class
  for (int ch = 0; ch < ct.size(); ++ch) {
    const DirectedChannel& dc = ct.at(ch);
    const std::uint64_t key =
        topo.channel_symmetry_key(dc.src_node, dc.src_port, pinned_procs);
    const auto [it, inserted] = channel_ids.emplace(key, out.num_channel_classes);
    if (inserted) {
      ++out.num_channel_classes;
      class_rep.push_back(ch);
    }
    out.channel_class[static_cast<std::size_t>(ch)] = it->second;
  }

  // Heterogeneous link attributes must be CONSTANT on every declared class:
  // the representative-destination propagation treats a class's channels as
  // exchangeable.  Refining the keys instead would be unsafe (a finer-than-
  // orbit partition breaks the contract above), so when the attributes cut
  // across declared orbits — e.g. a taper the topology's keys don't know
  // about — we refuse, and the builder falls back to the exact dense path.
  // A tapered ButterflyFatTree stays collapsible: its (direction, level)
  // keys already separate tiers.
  for (int ch = 0; ch < ct.size(); ++ch) {
    const int rep =
        class_rep[static_cast<std::size_t>(out.channel_class[static_cast<std::size_t>(ch)])];
    if (ct.bandwidth(ch) != ct.bandwidth(rep) ||
        ct.link_latency(ch) != ct.link_latency(rep) ||
        ct.buffer_depth(ch) != ct.buffer_depth(rep)) {
      out = SymmetryClasses{};
      return false;
    }
  }
  return true;
}

}  // namespace wormnet::topo

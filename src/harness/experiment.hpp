// wormnet/harness/experiment.hpp
//
// The experiment harness ties the analytical model and the simulator
// together: it sweeps offered load over a topology, evaluates both sides
// (the model through the SweepEngine, the simulator across the thread
// pool), and renders the paper-style comparison series.  Every bench binary
// is a thin wrapper around these functions.
#pragma once

#include <string>
#include <vector>

#include "core/network_model.hpp"
#include "harness/sim_engine.hpp"
#include "harness/sweep_engine.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace wormnet::harness {

/// Sweep parameters shared by the latency experiments.
struct SweepConfig {
  std::vector<double> loads;   ///< offered loads, flits/cycle/PE
  int worm_flits = 16;         ///< s_f
  std::uint64_t seed = 1;      ///< base seed; point i uses seed + i
  long warmup_cycles = 10'000;
  long measure_cycles = 30'000;
  long max_cycles = 400'000;
  unsigned threads = 0;        ///< sweep-point parallelism (0 = hardware)
};

/// One load point of a model-vs-simulation comparison.
struct ComparisonRow {
  double load = 0.0;
  // Model side (Eq. 25); NaN/inf past saturation.
  double model_latency = 0.0;
  double model_inj_wait = 0.0;
  double model_inj_service = 0.0;
  bool model_stable = true;
  // Simulation side.
  double sim_latency = 0.0;
  double sim_sem = 0.0;  ///< standard error of the mean latency
  double sim_inj_wait = 0.0;
  double sim_inj_service = 0.0;
  std::int64_t sim_messages = 0;
  bool sim_saturated = false;
};

/// Run the sweep: the simulation points run as one SimEngine campaign (one
/// shared SimNetwork, points fanned across the pool) and `model` is
/// evaluated at the same points through `engine`.  Null engines use private
/// ones for the call.  Point i simulates with seed cfg.seed + i, exactly as
/// a serial loop would.
std::vector<ComparisonRow> compare_latency(const topo::Topology& topo,
                                           const core::NetworkModel& model,
                                           const SweepConfig& cfg,
                                           SweepEngine* engine = nullptr,
                                           SimEngine* sims = nullptr);

/// Model-only sweep (for ablation benches where simulation is reused).
std::vector<ComparisonRow> model_only_sweep(const core::NetworkModel& model,
                                            const SweepConfig& cfg,
                                            SweepEngine* engine = nullptr);

/// Render comparison rows as a table: one row per load with model and
/// simulation columns (the text form of one Fig. 3 series).
util::Table comparison_table(const std::vector<ComparisonRow>& rows);

/// Mean absolute percentage error of model vs simulation latency over the
/// points where both sides are stable; the accuracy scalar EXPERIMENTS.md
/// reports per experiment.
double mean_abs_pct_error(const std::vector<ComparisonRow>& rows);

/// Saturation throughput comparison: the model's Eq. 26 saturation load vs
/// the simulator's delivered throughput under overload.
struct ThroughputRow {
  double model_saturation_load = 0.0;  ///< flits/cycle/PE
  double sim_overload_throughput = 0.0;
  double ratio = 0.0;  ///< model / sim
};

/// Measure the simulator's overload throughput and pair it with the model's
/// saturation prediction.
ThroughputRow compare_throughput(const topo::Topology& topo,
                                 double model_saturation_load, int worm_flits,
                                 std::uint64_t seed, long warmup_cycles = 10'000,
                                 long measure_cycles = 30'000);

/// Print a table with a heading and its CSV twin, the uniform output format
/// of every bench binary.
void print_experiment(const std::string& title, const util::Table& table);

// --- Shared bench plumbing (previously duplicated in bench/bench_common.hpp).

/// Load grid as fractions of a saturation point: dense through the knee and
/// two points past saturation so the series shows the blow-up, like the
/// paper's Fig. 3 curves.
std::vector<double> fraction_loads(double saturation_load,
                                   bool include_past_saturation = true);

/// Standard sweep parameters; --quick shrinks windows ~4x.
SweepConfig sweep_defaults(const util::Args& args, int worm_flits);

/// Abort on mistyped flags so a typo never silently runs the default.
void reject_unknown_flags(const util::Args& args);

}  // namespace wormnet::harness

// wormnet/harness/query_engine.hpp
//
// Resident what-if query engine: the product form of the paper's value
// proposition.  The analytical model answers in microseconds what simulation
// answers in minutes — so keep the models RESIDENT and let an operator (or a
// design-space search, PAPERS.md's Solnushkin use case) ask thousands of
// questions against them: "what if the hotspot moves?", "load +20%?",
// "lanes 2 → 4?", "arrivals turn bursty?".
//
// Each WhatIfQuery is a set of DELTAS against a resident baseline
// (topology, base TrafficSpec) plus the metric asked for.  The engine plans
// every query as cheapest-applicable-delta-else-rebuild:
//  * pattern delta  → core::RetunableTrafficModel::retune_traffic — signed
//    delta propagation over only the destinations whose pair weights
//    changed (or one pass per orbit when the new spec keeps the topology's
//    symmetry); falls back to a cold rebuild when the delta touches most of
//    the matrix, and says so;
//  * lane delta     → set_uniform_lanes, O(channels), bitwise-exact;
//  * load delta     → scale_injection_rates, O(channels);
//  * buffer delta   → set_uniform_buffers, O(channels);
//  * bandwidth delta→ scale_bandwidths, O(channels);
//  * arrival delta  → set_injection_process, O(channels);
//  * fault delta    → core::RetunableTrafficModel::retune_faults — the
//    FaultedTopology decorator keeps the channel structure stable, so only
//    the destination columns whose routing changed re-propagate (dense
//    residents never rebuild for a fault; collapsed residents rebuild dense
//    once on entering a degraded state and say so).
// Queries sharing the same delta set share ONE prepared model variant;
// repeated (variant, metric, λ₀) questions — within a batch or across
// batches — are served from a result cache and reported as Memoized.
//
// Batches fan out on a util::ThreadPool.  Every evaluation is a pure
// function of (model content, λ₀), so a parallel batch is BITWISE-identical
// to a serial one (tested in test_query_engine.cpp); the engine only
// reorders work, never arithmetic.  Latency points additionally flow
// through a content-keyed SweepEngine, so what-if answers and ordinary
// sweeps share one memo pool.
//
// Observability: every answer carries a QueryCost class (Memoized /
// Reevaluate / Retune / Rebuild) and the core::RetuneReport of its
// variant's preparation, so a service can meter exactly how much work each
// question bought.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "core/traffic_model.hpp"
#include "harness/sweep_engine.hpp"
#include "topo/fault.hpp"
#include "topo/topology.hpp"
#include "traffic/traffic_spec.hpp"

namespace wormnet::obs {
class Registry;
}

namespace wormnet::harness {

/// The observable a WhatIfQuery asks for.
enum class QueryMetric {
  Latency,         ///< full LatencyEstimate at lambda0 (Eq. 2/25)
  Saturation,      ///< saturation injection rate λ₀* (Eq. 26)
  ClassBreakdown,  ///< per-channel-class load/wait detail at lambda0
};

/// How the engine served a query — the retune-vs-rebuild cost class.
enum class QueryCost {
  /// Answered from the result cache (a duplicate within the batch, or the
  /// same question asked in an earlier batch).  No model work at all.
  Memoized,
  /// The resident model was reused as-is or reached by O(channels) tunes
  /// only (lanes / load / arrival); the cost is one solve.
  Reevaluate,
  /// The pattern delta was served by delta propagation — O(affected
  /// destinations) passes, or the collapsed orbit path (see the attached
  /// RetuneReport) — plus one solve.
  Retune,
  /// The pattern delta touched too much of the matrix and the variant was
  /// cold-rebuilt: the worst case, metered so callers see it.
  Rebuild,
};

/// One operator question: deltas relative to the resident baseline (leave an
/// axis defaulted to keep the baseline's value) plus the metric wanted.
struct WhatIfQuery {
  /// Replace the traffic pattern (absent = keep the baseline spec).
  std::optional<traffic::TrafficSpec> traffic;
  /// Scale offered load by this factor (1.0 = unchanged; must be > 0).
  double load_scale = 1.0;
  /// Set every channel to this many virtual channels (0 = keep baseline).
  int lanes = 0;
  /// Set every channel's per-lane flit-buffer depth (0 = keep baseline;
  /// util::kInfiniteBufferDepth = the paper's unbounded buffering).
  int buffer_depth = 0;
  /// Scale every channel's bandwidth by this factor (1.0 = unchanged; must
  /// be > 0).  Applied on top of the baseline topology's own per-channel
  /// bandwidths, so a tapered fat-tree keeps its taper shape.
  double bandwidth_scale = 1.0;
  /// Retune to this arrival process (absent = keep the baseline process).
  std::optional<arrivals::ArrivalSpec> arrival;
  /// Evaluate under this fault set (null or empty = healthy baseline).  The
  /// set must have been built against the resident's topology.  Keyed by its
  /// order-insensitive content digest, so two scenarios failing the same
  /// links share one prepared variant.
  std::shared_ptr<const topo::FaultSet> faults;

  QueryMetric metric = QueryMetric::Latency;
  /// Injection rate λ₀ for Latency / ClassBreakdown (ignored by Saturation,
  /// except that a Bernoulli arrival delta reads it for its rate-dependent
  /// SCV, mirroring set_injection_process).
  double lambda0 = 0.0;
};

/// One row of a ClassBreakdown answer (one per channel class).
struct ClassLoadRow {
  int class_id = 0;
  std::string label;           ///< builder label when one exists, else empty
  double rate = 0.0;           ///< offered per-link rate at λ₀, messages/cycle
  double utilization = 0.0;    ///< ρ of the class's output bundle
  double wait = 0.0;           ///< W̄ of that bundle, cycles
  double service_time = 0.0;   ///< x̄ of the class, cycles
  double ca2 = 1.0;            ///< arrival SCV the wait was evaluated at
};

/// The answer to one WhatIfQuery.  Only the field matching `metric` is
/// meaningful (ClassBreakdown also fills est.stable).
struct QueryResult {
  QueryMetric metric = QueryMetric::Latency;
  core::LatencyEstimate est;            ///< Latency
  double saturation_rate = 0.0;         ///< Saturation
  std::vector<ClassLoadRow> breakdown;  ///< ClassBreakdown
  QueryCost cost = QueryCost::Reevaluate;
  /// What preparing this query's model variant did (zeroed for Memoized
  /// answers and for queries with no pattern delta).
  core::RetuneReport retune;
};

/// One availability scenario's outcome, ranked into an AvailabilityReport.
struct AvailabilityRow {
  std::string label;  ///< caller-given, or derived from the failed links
  std::shared_ptr<const topo::FaultSet> faults;
  core::LatencyEstimate est;  ///< at the report's λ₀, under the failure
  QueryCost cost = QueryCost::Reevaluate;  ///< how the engine served it
};

/// An N−1 / N−k availability what-if: the healthy baseline plus every
/// scenario's degraded estimate, ranked worst-first — most unroutable demand
/// first, then highest latency (a saturated/infinite row outranks any finite
/// one; the SolveStatus contract keeps NaN out of the ordering).  Ties keep
/// scenario enumeration order, so the ranking is deterministic.
struct AvailabilityReport {
  double lambda0 = 0.0;
  core::LatencyEstimate baseline;     ///< the healthy resident at λ₀
  std::vector<AvailabilityRow> rows;  ///< worst failure first
  int scenarios_ok = 0;  ///< rows still status Ok (full service under failure)
};

/// Resident what-if query engine.  Not thread-safe for concurrent run calls
/// (the batch entry points themselves fan out internally).
class QueryEngine {
 public:
  struct Options {
    unsigned threads = 0;   ///< batch worker count; 0 = hardware concurrency
    bool parallel = true;   ///< false: plan and evaluate serially, in order
    /// false: no result cache and no in-batch dedup — every query pays its
    /// full cost (benchmarking the uncached path).
    bool memoize = true;
    core::SolveOptions solve;          ///< worm length, ablation, solver knobs
    core::TrafficBuildOptions build;   ///< residents' collapse/thread policy
  };

  QueryEngine() : QueryEngine(Options{}) {}
  explicit QueryEngine(Options opts);
  /// Convenience: construct and immediately add resident 0.
  QueryEngine(const topo::Topology& topo, const traffic::TrafficSpec& base_spec)
      : QueryEngine(topo, base_spec, Options{}) {}
  QueryEngine(const topo::Topology& topo, const traffic::TrafficSpec& base_spec,
              Options opts);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Get-or-create the resident model for (topology, base spec); returns its
  /// id.  Asking again with the same topology object and an equivalent spec
  /// returns the existing resident (models stay warm across sessions).  The
  /// topology must outlive the engine.
  int resident(const topo::Topology& topo, const traffic::TrafficSpec& base_spec);
  std::size_t num_residents() const;
  /// The resident baseline (for inspection; never mutated by queries).
  const core::RetunableTrafficModel& resident_model(int id) const;

  /// Answer a batch against resident `resident_id`; one result per query, in
  /// input order, bitwise-independent of threads/parallel.
  std::vector<QueryResult> run_batch(int resident_id,
                                     const std::vector<WhatIfQuery>& queries);
  /// Batch against resident 0.
  std::vector<QueryResult> run_batch(const std::vector<WhatIfQuery>& queries);
  /// Single query (resident 0 / explicit resident).
  QueryResult run(const WhatIfQuery& query);
  QueryResult run(int resident_id, const WhatIfQuery& query);

  /// N−1 availability sweep: one scenario per failable (switch-to-switch)
  /// undirected link of the resident's topology, each answered as a Latency
  /// query at λ₀ through the normal batch path — variants dedup, answers
  /// memoize, and the fault view's stable channel structure keeps every
  /// dense-resident scenario a Retune or cheaper (no per-scenario rebuild).
  AvailabilityReport availability_n_minus_1(int resident_id, double lambda0);
  /// General N−k form: the caller supplies the scenarios (each a FaultSet
  /// built against the resident's topology, failing any number of links or
  /// switches) and optional labels (empty = derived from the failed links).
  AvailabilityReport availability_scenarios(
      int resident_id, double lambda0,
      std::vector<std::shared_ptr<const topo::FaultSet>> scenarios,
      std::vector<std::string> labels = {});

  // Cost observability (tests; service metering).
  std::uint64_t queries_served() const;
  std::uint64_t served_memoized() const;
  std::uint64_t served_reevaluate() const;
  std::uint64_t served_retune() const;
  std::uint64_t served_rebuild() const;
  /// Distinct model variants prepared across all batches.
  std::uint64_t variants_prepared() const;
  /// The shared latency-point memo pool (content-keyed SweepEngine).
  std::uint64_t sweep_cache_hits() const;
  std::uint64_t sweep_cache_misses() const;
  /// Result-cache entries currently held (answers memoized across batches).
  std::size_t answer_cache_size() const;
  /// Wall-clock seconds spent inside run_batch across this engine's
  /// lifetime (one steady_clock pair per batch — negligible, and results
  /// are unaffected); queries_served() / batch_seconds() is the engine's
  /// measured queries/sec.
  double batch_seconds() const;
  /// Drop the result cache and the sweep cache (residents stay warm).
  void clear_cache();

  /// Publish the cost-class counters (as a labeled gauge family — the
  /// cost-class histogram), cache sizes/rates, resident count and measured
  /// queries/sec into `reg` under labels "engine=<label>" (one-shot;
  /// idempotent).
  void publish_metrics(obs::Registry& reg, std::string_view label) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wormnet::harness

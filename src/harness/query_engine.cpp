#include "harness/query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace wormnet::harness {

namespace {

/// Structural digest of a TrafficSpec delta for variant grouping.  Folds the
/// exact parameter bit patterns (never the lossy name() rendering, so nearby
/// hotspot fractions stay distinct); Permutation folds its full destination
/// map, Matrix its payload identity (two equal-but-distinct matrices simply
/// miss the dedup — never alias it).
std::uint64_t spec_digest(const traffic::TrafficSpec& spec, int procs) {
  std::uint64_t h = util::hash_mix(0x7261666669637173ULL,
                                   static_cast<std::uint64_t>(spec.pattern()));
  h = util::hash_mix_double(h, spec.hotspot_fraction());
  h = util::hash_mix(h, static_cast<std::uint64_t>(spec.hotspot_node()));
  if (spec.pattern() == traffic::Pattern::Permutation) {
    for (int src = 0; src < procs; ++src)
      h = util::hash_mix(
          h, static_cast<std::uint64_t>(spec.fixed_destination(src, procs)));
  }
  if (const traffic::TrafficMatrix* m = spec.matrix_payload())
    h = util::hash_mix(h, reinterpret_cast<std::uintptr_t>(m));
  return h;
}

/// Variant key: which prepared model a query needs.  Starts from the
/// resident baseline's content digest so keys never collide across
/// residents; the arrival axis folds the (effective SCV, batch residual)
/// pair the model actually consumes — two processes indistinguishable to
/// the solver correctly share a variant, and Bernoulli's rate-dependent SCV
/// separates by λ₀ on its own.
std::uint64_t variant_key(std::uint64_t baseline_digest, const WhatIfQuery& q,
                          int procs) {
  std::uint64_t h = baseline_digest;
  h = util::hash_mix(h, q.traffic ? spec_digest(*q.traffic, procs) : 0);
  h = util::hash_mix_double(h, q.load_scale);
  h = util::hash_mix(h, static_cast<std::uint64_t>(q.lanes));
  h = util::hash_mix(h, static_cast<std::uint64_t>(q.buffer_depth));
  h = util::hash_mix_double(h, q.bandwidth_scale);
  if (q.arrival) {
    h = util::hash_mix(h, 1);
    h = util::hash_mix_double(h, q.arrival->effective_ca2(q.lambda0));
    h = util::hash_mix_double(h, q.arrival->batch_residual());
  }
  // Content digest, not pointer identity: two FaultSets failing the same
  // links share a variant, and an empty set IS the healthy baseline.
  h = util::hash_mix(
      h, q.faults && !q.faults->empty() ? q.faults->digest() : 0);
  return h;
}

/// Result-cache key: the variant plus the question asked of it.
std::uint64_t answer_key(std::uint64_t vkey, const WhatIfQuery& q) {
  std::uint64_t h = util::hash_mix(vkey, static_cast<std::uint64_t>(q.metric));
  if (q.metric != QueryMetric::Saturation)
    h = util::hash_mix_double(h, q.lambda0);
  return h;
}

bool is_identity(const WhatIfQuery& q) {
  return !q.traffic && q.load_scale == 1.0 && q.lanes == 0 &&
         q.buffer_depth == 0 && q.bandwidth_scale == 1.0 && !q.arrival &&
         (!q.faults || q.faults->empty());
}

/// Fallback row label for availability scenarios: the failed links, e.g.
/// "link 12:3+link 12:4" (a failed switch expands to its links).
std::string fault_label(const topo::FaultSet& faults) {
  std::string s;
  for (const auto& [node, port] : faults.failed_links()) {
    if (!s.empty()) s += "+";
    s += "link " + std::to_string(node) + ":" + std::to_string(port);
  }
  return s.empty() ? "healthy" : s;
}

}  // namespace

struct QueryEngine::Impl {
  struct Resident {
    const topo::Topology* topo = nullptr;
    core::RetunableTrafficModel baseline;
    std::uint64_t digest = 0;  ///< baseline model content digest

    Resident(const topo::Topology& t, const traffic::TrafficSpec& spec,
             const Options& o)
        : topo(&t), baseline(t, spec, o.solve, o.build) {
      digest = baseline.model().content_digest();
    }
  };

  /// One prepared model variant of a batch (clone == nullptr: the baseline
  /// itself, untouched).
  struct Variant {
    std::uint64_t key = 0;
    int rep_query = -1;  ///< first query index needing this variant
    std::unique_ptr<core::RetunableTrafficModel> clone;
    core::RetuneReport report;
    QueryCost basis = QueryCost::Reevaluate;
  };

  Options opts;
  std::unique_ptr<util::ThreadPool> pool;  ///< null when serial
  std::vector<std::unique_ptr<Resident>> residents;
  std::unordered_map<std::uint64_t, int> resident_by_key;
  SweepEngine sweep;  ///< serial: evaluate() is called from our own workers
  std::unordered_map<std::uint64_t, QueryResult> answers;

  std::uint64_t served = 0, n_memoized = 0, n_reevaluate = 0, n_retune = 0,
                n_rebuild = 0, n_variants = 0;
  double batch_seconds = 0.0;  ///< wall time inside run_batch, for queries/sec

  explicit Impl(Options o)
      : opts(o),
        sweep(SweepEngine::Options{1, /*parallel=*/false, o.memoize}) {
    if (opts.parallel) pool = std::make_unique<util::ThreadPool>(opts.threads);
  }

  void prepare(const Resident& r, Variant& v, const WhatIfQuery& q) {
    if (is_identity(q)) return;  // basis stays Reevaluate, clone stays null
    v.clone = std::make_unique<core::RetunableTrafficModel>(r.baseline);
    if (q.faults && !q.faults->empty()) {
      // Fault delta first, so a traffic retune in the same query already
      // runs under the degraded routing — the two deltas compose.
      v.report = v.clone->retune_faults(q.faults);
      v.basis = v.report.rebuilt ? QueryCost::Rebuild : QueryCost::Retune;
    }
    if (q.traffic) {
      const core::RetuneReport tr = v.clone->retune_traffic(*q.traffic);
      v.report.rebuilt = v.report.rebuilt || tr.rebuilt;
      v.report.collapsed = v.report.collapsed || tr.collapsed;
      v.report.passes += tr.passes;
      v.report.changed_pairs += tr.changed_pairs;
      if (v.basis != QueryCost::Rebuild)
        v.basis = tr.rebuilt ? QueryCost::Rebuild : QueryCost::Retune;
    }
    if (q.lanes != 0) v.clone->set_uniform_lanes(q.lanes);
    if (q.buffer_depth != 0) v.clone->set_uniform_buffers(q.buffer_depth);
    if (q.bandwidth_scale != 1.0) v.clone->scale_bandwidths(q.bandwidth_scale);
    if (q.load_scale != 1.0) v.clone->scale_injection_rates(q.load_scale);
    if (q.arrival) v.clone->set_injection_process(*q.arrival, q.lambda0);
  }

  QueryResult evaluate(const Resident& r, const Variant& v,
                       const WhatIfQuery& q) {
    const core::GeneralModel& m =
        v.clone ? v.clone->model() : r.baseline.model();
    QueryResult res;
    res.metric = q.metric;
    res.cost = v.basis;
    res.retune = v.report;
    switch (q.metric) {
      case QueryMetric::Latency:
        res.est = sweep.evaluate(m, q.lambda0);
        break;
      case QueryMetric::Saturation:
        res.saturation_rate = sweep.saturation_rate(m);
        break;
      case QueryMetric::ClassBreakdown: {
        const core::SolveResult sol = m.solve(q.lambda0);
        res.est.stable = sol.stable;
        std::vector<std::string> label_of(
            static_cast<std::size_t>(m.graph.size()));
        for (const auto& [label, id] : m.labels)
          label_of[static_cast<std::size_t>(id)] = label;
        res.breakdown.resize(static_cast<std::size_t>(m.graph.size()));
        for (int id = 0; id < m.graph.size(); ++id) {
          ClassLoadRow& row = res.breakdown[static_cast<std::size_t>(id)];
          const core::ChannelSolution& c =
              sol.channels[static_cast<std::size_t>(id)];
          row.class_id = id;
          row.label = label_of[static_cast<std::size_t>(id)];
          row.rate = m.graph.at(id).rate_per_link * q.lambda0;
          row.utilization = c.utilization;
          row.wait = c.wait;
          row.service_time = c.service_time;
          row.ca2 = c.ca2;
        }
        break;
      }
    }
    return res;
  }
};

QueryEngine::QueryEngine(Options opts) : impl_(std::make_unique<Impl>(opts)) {}

QueryEngine::QueryEngine(const topo::Topology& topo,
                         const traffic::TrafficSpec& base_spec, Options opts)
    : QueryEngine(opts) {
  resident(topo, base_spec);
}

QueryEngine::~QueryEngine() = default;

int QueryEngine::resident(const topo::Topology& topo,
                          const traffic::TrafficSpec& base_spec) {
  WORMNET_EXPECTS(base_spec.check(topo.num_processors()).empty());
  const std::uint64_t key =
      util::hash_mix(reinterpret_cast<std::uintptr_t>(&topo),
                     spec_digest(base_spec, topo.num_processors()));
  const auto it = impl_->resident_by_key.find(key);
  if (it != impl_->resident_by_key.end()) return it->second;
  impl_->residents.push_back(
      std::make_unique<Impl::Resident>(topo, base_spec, impl_->opts));
  const int id = static_cast<int>(impl_->residents.size()) - 1;
  impl_->resident_by_key.emplace(key, id);
  return id;
}

std::size_t QueryEngine::num_residents() const {
  return impl_->residents.size();
}

const core::RetunableTrafficModel& QueryEngine::resident_model(int id) const {
  WORMNET_EXPECTS(id >= 0 &&
                  id < static_cast<int>(impl_->residents.size()));
  return impl_->residents[static_cast<std::size_t>(id)]->baseline;
}

std::vector<QueryResult> QueryEngine::run_batch(
    int resident_id, const std::vector<WhatIfQuery>& queries) {
  WORMNET_SPAN("query_batch", "query");
  WORMNET_EXPECTS(resident_id >= 0 &&
                  resident_id < static_cast<int>(impl_->residents.size()));
  Impl& im = *impl_;
  const auto batch_t0 = std::chrono::steady_clock::now();
  const Impl::Resident& r = *im.residents[static_cast<std::size_t>(resident_id)];
  const int procs = r.topo->num_processors();
  const std::size_t n = queries.size();
  std::vector<QueryResult> results(n);

  // Plan (serial, deterministic): group queries into model variants, split
  // them into cached answers, in-batch duplicates and fresh jobs.
  enum class Serve { Cached, Dup, Job };
  std::vector<Serve> serve(n, Serve::Job);
  std::vector<int> variant_of(n, -1);
  std::vector<std::size_t> rep_of(n, 0);  // Dup: index holding the answer
  std::vector<std::uint64_t> akeys(n, 0);
  std::vector<Impl::Variant> variants;
  std::unordered_map<std::uint64_t, int> variant_index;
  std::unordered_map<std::uint64_t, std::size_t> first_with_answer;
  std::vector<std::size_t> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    const WhatIfQuery& q = queries[i];
    WORMNET_EXPECTS(q.load_scale > 0.0);
    WORMNET_EXPECTS(q.lanes >= 0);
    WORMNET_EXPECTS(q.buffer_depth >= 0);
    WORMNET_EXPECTS(q.bandwidth_scale > 0.0);
    if (!q.traffic) {
      // spec change validity is checked by retune_traffic itself
    } else {
      WORMNET_EXPECTS(q.traffic->check(procs).empty());
    }
    // A fault set validates its links against ONE topology; a set built
    // against some other fabric would index this resident's ports wrongly.
    WORMNET_EXPECTS(!q.faults || &q.faults->topology() == r.topo);
    const std::uint64_t vkey = variant_key(r.digest, q, procs);
    const std::uint64_t akey = answer_key(vkey, q);
    akeys[i] = akey;
    if (im.opts.memoize) {
      if (im.answers.count(akey)) {
        serve[i] = Serve::Cached;
        continue;
      }
      const auto [it, fresh] = first_with_answer.emplace(akey, i);
      if (!fresh) {
        serve[i] = Serve::Dup;
        rep_of[i] = it->second;
        continue;
      }
    }
    const auto [vit, vfresh] =
        variant_index.emplace(vkey, static_cast<int>(variants.size()));
    if (vfresh) {
      variants.emplace_back();
      variants.back().key = vkey;
      variants.back().rep_query = static_cast<int>(i);
    }
    variant_of[i] = vit->second;
    jobs.push_back(i);
  }

  // Prepare the variants the jobs actually need (parallel: each prep works
  // on its own baseline clone; determinism rides on the retune APIs' own
  // thread-count-invariance contract).
  const auto prep_one = [&](std::int64_t v) {
    Impl::Variant& variant = variants[static_cast<std::size_t>(v)];
    im.prepare(r, variant, queries[static_cast<std::size_t>(variant.rep_query)]);
  };
  if (im.pool && variants.size() > 1) {
    util::parallel_for(*im.pool, static_cast<std::int64_t>(variants.size()),
                       prep_one);
  } else {
    for (std::size_t v = 0; v < variants.size(); ++v)
      prep_one(static_cast<std::int64_t>(v));
  }

  // Evaluate the fresh jobs.  Pure functions of (model content, λ₀): the
  // schedule can reorder work but never change a result bit.
  const auto eval_one = [&](std::int64_t j) {
    const std::size_t i = jobs[static_cast<std::size_t>(j)];
    results[i] = im.evaluate(
        r, variants[static_cast<std::size_t>(variant_of[i])], queries[i]);
  };
  if (im.pool && jobs.size() > 1) {
    util::parallel_for(*im.pool, static_cast<std::int64_t>(jobs.size()),
                       eval_one);
  } else {
    for (std::size_t j = 0; j < jobs.size(); ++j)
      eval_one(static_cast<std::int64_t>(j));
  }

  // Fill cached answers and duplicates; commit fresh answers to the cache
  // (serial, input order — deterministic).
  for (std::size_t i = 0; i < n; ++i) {
    switch (serve[i]) {
      case Serve::Cached:
        results[i] = im.answers.at(akeys[i]);
        results[i].cost = QueryCost::Memoized;
        results[i].retune = core::RetuneReport{};
        break;
      case Serve::Dup:
        results[i] = results[rep_of[i]];
        results[i].cost = QueryCost::Memoized;
        results[i].retune = core::RetuneReport{};
        break;
      case Serve::Job:
        if (im.opts.memoize) im.answers.emplace(akeys[i], results[i]);
        break;
    }
    ++im.served;
    switch (results[i].cost) {
      case QueryCost::Memoized: ++im.n_memoized; break;
      case QueryCost::Reevaluate: ++im.n_reevaluate; break;
      case QueryCost::Retune: ++im.n_retune; break;
      case QueryCost::Rebuild: ++im.n_rebuild; break;
    }
  }
  im.n_variants += variants.size();
  im.batch_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - batch_t0)
          .count();
  return results;
}

std::vector<QueryResult> QueryEngine::run_batch(
    const std::vector<WhatIfQuery>& queries) {
  return run_batch(0, queries);
}

QueryResult QueryEngine::run(const WhatIfQuery& query) { return run(0, query); }

QueryResult QueryEngine::run(int resident_id, const WhatIfQuery& query) {
  return run_batch(resident_id, {query}).front();
}

AvailabilityReport QueryEngine::availability_n_minus_1(int resident_id,
                                                       double lambda0) {
  WORMNET_EXPECTS(resident_id >= 0 &&
                  resident_id < static_cast<int>(impl_->residents.size()));
  const topo::Topology& t =
      *impl_->residents[static_cast<std::size_t>(resident_id)]->topo;
  std::vector<std::shared_ptr<const topo::FaultSet>> scenarios;
  std::vector<std::string> labels;
  for (int node = 0; node < t.num_nodes(); ++node) {
    if (t.is_processor(node)) continue;
    for (int port = 0; port < t.num_ports(node); ++port) {
      const int peer = t.neighbor(node, port);
      if (peer == topo::kNoNode || t.is_processor(peer)) continue;
      // Visit each undirected link once, from its canonical (lower) endpoint.
      if (std::make_pair(peer, t.neighbor_port(node, port)) <
          std::make_pair(node, port))
        continue;
      auto fs = std::make_shared<topo::FaultSet>(t);
      fs->fail_link(node, port);
      labels.push_back(fault_label(*fs));
      scenarios.push_back(std::move(fs));
    }
  }
  return availability_scenarios(resident_id, lambda0, std::move(scenarios),
                                std::move(labels));
}

AvailabilityReport QueryEngine::availability_scenarios(
    int resident_id, double lambda0,
    std::vector<std::shared_ptr<const topo::FaultSet>> scenarios,
    std::vector<std::string> labels) {
  WORMNET_EXPECTS(labels.empty() || labels.size() == scenarios.size());
  std::vector<WhatIfQuery> queries;
  queries.reserve(scenarios.size() + 1);
  WhatIfQuery probe;
  probe.metric = QueryMetric::Latency;
  probe.lambda0 = lambda0;
  queries.push_back(probe);  // the healthy baseline, an identity query
  for (const std::shared_ptr<const topo::FaultSet>& fs : scenarios) {
    WORMNET_EXPECTS(fs != nullptr);
    WhatIfQuery q = probe;
    q.faults = fs;
    queries.push_back(std::move(q));
  }
  const std::vector<QueryResult> res = run_batch(resident_id, queries);

  AvailabilityReport report;
  report.lambda0 = lambda0;
  report.baseline = res.front().est;
  report.rows.resize(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    AvailabilityRow& row = report.rows[s];
    row.label = labels.empty() ? fault_label(*scenarios[s]) : labels[s];
    row.faults = scenarios[s];
    row.est = res[s + 1].est;
    row.cost = res[s + 1].cost;
    if (row.est.status == core::SolveStatus::Ok) ++report.scenarios_ok;
  }
  // Worst-first: unroutable demand dominates, then latency.  The status
  // contract guarantees latency is never NaN, so the comparator is a strict
  // weak ordering; stable_sort keeps enumeration order on ties.
  std::stable_sort(report.rows.begin(), report.rows.end(),
                   [](const AvailabilityRow& a, const AvailabilityRow& b) {
                     if (a.est.unroutable_fraction != b.est.unroutable_fraction)
                       return a.est.unroutable_fraction > b.est.unroutable_fraction;
                     return a.est.latency > b.est.latency;
                   });
  return report;
}

std::uint64_t QueryEngine::queries_served() const { return impl_->served; }
std::uint64_t QueryEngine::served_memoized() const { return impl_->n_memoized; }
std::uint64_t QueryEngine::served_reevaluate() const {
  return impl_->n_reevaluate;
}
std::uint64_t QueryEngine::served_retune() const { return impl_->n_retune; }
std::uint64_t QueryEngine::served_rebuild() const { return impl_->n_rebuild; }
std::uint64_t QueryEngine::variants_prepared() const {
  return impl_->n_variants;
}
std::uint64_t QueryEngine::sweep_cache_hits() const {
  return impl_->sweep.cache_hits();
}
std::uint64_t QueryEngine::sweep_cache_misses() const {
  return impl_->sweep.cache_misses();
}
std::size_t QueryEngine::answer_cache_size() const {
  return impl_->answers.size();
}
double QueryEngine::batch_seconds() const { return impl_->batch_seconds; }

void QueryEngine::clear_cache() {
  impl_->answers.clear();
  impl_->sweep.clear_cache();
}

void QueryEngine::publish_metrics(obs::Registry& reg,
                                  std::string_view label) const {
  const Impl& im = *impl_;
  std::string l = "engine=";
  l += label;
  // The cost-class histogram as a labeled gauge family: one series per
  // QueryCost, same metric name, so text exporters group them.
  reg.gauge("wormnet_query_served", l + ",cost=memoized")
      .set(static_cast<double>(im.n_memoized));
  reg.gauge("wormnet_query_served", l + ",cost=reevaluate")
      .set(static_cast<double>(im.n_reevaluate));
  reg.gauge("wormnet_query_served", l + ",cost=retune")
      .set(static_cast<double>(im.n_retune));
  reg.gauge("wormnet_query_served", l + ",cost=rebuild")
      .set(static_cast<double>(im.n_rebuild));
  reg.gauge("wormnet_query_served_total", l).set(static_cast<double>(im.served));
  reg.gauge("wormnet_query_variants_prepared", l)
      .set(static_cast<double>(im.n_variants));
  reg.gauge("wormnet_query_residents", l)
      .set(static_cast<double>(im.residents.size()));
  reg.gauge("wormnet_query_answer_cache_size", l)
      .set(static_cast<double>(im.answers.size()));
  reg.gauge("wormnet_query_batch_seconds", l).set(im.batch_seconds);
  reg.gauge("wormnet_query_queries_per_sec", l)
      .set(im.batch_seconds > 0.0
               ? static_cast<double>(im.served) / im.batch_seconds
               : 0.0);
  im.sweep.publish_metrics(reg, label);
}

}  // namespace wormnet::harness

#include "harness/sweep_engine.hpp"

#include <string>
#include <unordered_map>

#include "core/saturation.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wormnet::harness {

// Memo keys use util::double_bits, which collapses -0.0 onto +0.0: a sweep
// asked at -0.0 must hit the entry stored at 0.0 (a local un-normalized
// copy here once split them into distinct cache keys).
using util::double_bits;

SweepEngine::Key SweepEngine::make_key(const core::NetworkModel& model,
                                       double lambda0) {
  return Key{model.content_digest(), double_bits(lambda0)};
}

std::size_t SweepEngine::KeyHash::operator()(const Key& k) const {
  return static_cast<std::size_t>(util::hash_mix(k.digest, k.lambda_bits));
}

SweepEngine::SweepEngine(Options opts) : opts_(opts) {
  if (opts_.parallel)
    pool_ = std::make_unique<util::ThreadPool>(opts_.threads);
}

unsigned SweepEngine::threads() const { return pool_ ? pool_->size() : 1u; }

bool SweepEngine::lookup(const Key& key, core::LatencyEstimate& out) {
  if (!opts_.memoize) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  out = it->second;
  return true;
}

void SweepEngine::store(const Key& key, const core::LatencyEstimate& est) {
  if (!opts_.memoize) return;
  std::lock_guard<std::mutex> lock(mu_);
  cache_.emplace(key, est);
}

core::LatencyEstimate SweepEngine::evaluate(const core::NetworkModel& model,
                                            double lambda0) {
  const Key key = make_key(model, lambda0);
  core::LatencyEstimate est;
  if (lookup(key, est)) return est;
  est = model.evaluate(lambda0);
  store(key, est);
  return est;
}

core::LatencyEstimate SweepEngine::evaluate_load(const core::NetworkModel& model,
                                                 double load_flits) {
  return evaluate(model, load_flits / model.worm_flits());
}

std::vector<SweepPoint> SweepEngine::sweep_lambda(const core::NetworkModel& model,
                                                  const std::vector<double>& lambdas) {
  const double sf = model.worm_flits();
  std::vector<SweepPoint> points(lambdas.size());
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    points[i].lambda0 = lambdas[i];
    points[i].load_flits = lambdas[i] * sf;
  }

  // Resolve cache hits up front and collect the distinct misses, so each
  // unique λ₀ is looked up and evaluated exactly once no matter how often
  // it appears; duplicates copy from their representative and count as
  // hits (they are evaluations avoided).  The content digest is computed
  // ONCE for the whole sweep: it is a pure function of the model's
  // configuration, which cannot change under this call, and for GeneralModel
  // it walks the channel graph — rebuilding it per point (twice per miss)
  // would be the dominant per-point overhead of small cold sweeps.
  const std::uint64_t digest = model.content_digest();
  std::unordered_map<std::uint64_t, std::size_t> rep;  // λ bits → first index
  std::vector<std::size_t> jobs;                       // uncached unique λ₀
  std::vector<std::size_t> dups;                       // later occurrences
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    if (!rep.emplace(double_bits(lambdas[i]), i).second) {
      dups.push_back(i);
      continue;
    }
    if (!lookup(Key{digest, double_bits(lambdas[i])}, points[i].est)) {
      jobs.push_back(i);
    }
  }
  if (!dups.empty() && opts_.memoize) {
    std::lock_guard<std::mutex> lock(mu_);
    hits_ += dups.size();
  }

  // Evaluate the unique misses — on the pool when parallel, in order when
  // serial.  Each job is a pure function of (model, λ₀), so the schedule
  // cannot change any result bit.
  if (pool_ && jobs.size() > 1) {
    util::parallel_for(*pool_, static_cast<std::int64_t>(jobs.size()),
                       [&](std::int64_t j) {
                         const std::size_t i = jobs[static_cast<std::size_t>(j)];
                         points[i].est = model.evaluate(lambdas[i]);
                       });
  } else {
    for (std::size_t i : jobs) points[i].est = model.evaluate(lambdas[i]);
  }
  for (std::size_t i : jobs) {
    store(Key{digest, double_bits(lambdas[i])}, points[i].est);
  }

  // Fill duplicates from their representative (cached or freshly computed).
  for (std::size_t i : dups) {
    points[i].est = points[rep.at(double_bits(lambdas[i]))].est;
  }
  return points;
}

std::vector<SweepPoint> SweepEngine::sweep_load(const core::NetworkModel& model,
                                                const std::vector<double>& loads) {
  const double sf = model.worm_flits();
  std::vector<double> lambdas;
  lambdas.reserve(loads.size());
  for (double load : loads) lambdas.push_back(load / sf);
  std::vector<SweepPoint> points = sweep_lambda(model, lambdas);
  // Report the caller's loads verbatim (λ·s_f could differ in the last ulp).
  for (std::size_t i = 0; i < loads.size(); ++i) points[i].load_flits = loads[i];
  return points;
}

std::vector<SweepPoint> SweepEngine::sweep_saturation_fractions(
    const core::NetworkModel& model, const std::vector<double>& fractions) {
  const double sat = saturation_rate(model);
  std::vector<double> lambdas;
  lambdas.reserve(fractions.size());
  for (double f : fractions) lambdas.push_back(sat * f);
  return sweep_lambda(model, lambdas);
}

std::vector<FamilyMember> SweepEngine::sweep_family(
    const ModelFactory& make, const std::vector<double>& parameters,
    const std::vector<double>& saturation_fractions) {
  std::vector<FamilyMember> family;
  family.reserve(parameters.size());
  // Members are built and swept one at a time: the per-member sweeps already
  // fan out across the pool, and building serially keeps member order (and
  // thus output order) deterministic.  The cache keys on model content, so
  // member lifetime never interacts with cache validity.
  for (double parameter : parameters) {
    FamilyMember member;
    member.parameter = parameter;
    member.model = make(parameter);
    WORMNET_EXPECTS(member.model != nullptr);
    // One bisection per member; the fraction points reuse it directly
    // (sweep_saturation_fractions would re-run the search).
    member.saturation_rate = saturation_rate(*member.model);
    std::vector<double> lambdas;
    lambdas.reserve(saturation_fractions.size());
    for (double f : saturation_fractions) lambdas.push_back(member.saturation_rate * f);
    member.points = sweep_lambda(*member.model, lambdas);
    family.push_back(std::move(member));
  }
  return family;
}

std::vector<FamilyMember> SweepEngine::sweep_lanes(
    const LaneModelFactory& make, const std::vector<int>& lane_counts,
    const std::vector<double>& saturation_fractions) {
  std::vector<double> parameters;
  parameters.reserve(lane_counts.size());
  for (int lanes : lane_counts) {
    WORMNET_EXPECTS(lanes >= 1);
    parameters.push_back(static_cast<double>(lanes));
  }
  return sweep_family(
      [&make](double parameter) { return make(static_cast<int>(parameter)); },
      parameters, saturation_fractions);
}

std::vector<FamilyMember> SweepEngine::sweep_burstiness(
    const ArrivalModelFactory& make,
    const std::vector<arrivals::ArrivalSpec>& processes,
    const std::vector<double>& saturation_fractions) {
  // Same structure and lifetime contract as sweep_family; the family axis
  // is the process's (rate-invariant) C_a².
  std::vector<FamilyMember> family;
  family.reserve(processes.size());
  for (const arrivals::ArrivalSpec& process : processes) {
    WORMNET_EXPECTS(process.check().empty());
    // Bernoulli's SCV depends on λ₀, which varies point-by-point inside a
    // member's own sweep — it has no single position on this axis, and the
    // rate-invariant default below would silently read as Poisson.
    WORMNET_EXPECTS(process.kind() != arrivals::Kind::Bernoulli);
    FamilyMember member;
    member.parameter = process.effective_ca2();
    member.model = make(process);
    WORMNET_EXPECTS(member.model != nullptr);
    member.saturation_rate = saturation_rate(*member.model);
    std::vector<double> lambdas;
    lambdas.reserve(saturation_fractions.size());
    for (double f : saturation_fractions)
      lambdas.push_back(member.saturation_rate * f);
    member.points = sweep_lambda(*member.model, lambdas);
    family.push_back(std::move(member));
  }
  return family;
}

double SweepEngine::saturation_rate(const core::NetworkModel& model) {
  const double sf = model.worm_flits();
  WORMNET_EXPECTS(sf > 0.0);
  // The same Eq. 26 bisection the models run themselves, but with every
  // probe routed through the cache: repeating the search is free, and the
  // probes seed the cache for later sweeps near saturation.
  return core::find_saturation_rate(
      [&](double lambda0) { return evaluate(model, lambda0).inj_service; },
      1.0 / sf);
}

double SweepEngine::saturation_load(const core::NetworkModel& model) {
  return saturation_rate(model) * model.worm_flits();
}

std::uint64_t SweepEngine::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t SweepEngine::cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t SweepEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void SweepEngine::clear_cache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

void SweepEngine::publish_metrics(obs::Registry& reg,
                                  std::string_view label) const {
  std::uint64_t hits, misses;
  std::size_t size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hits = hits_;
    misses = misses_;
    size = cache_.size();
  }
  std::string l = "engine=";
  l += label;
  reg.gauge("wormnet_sweep_cache_hits", l).set(static_cast<double>(hits));
  reg.gauge("wormnet_sweep_cache_misses", l).set(static_cast<double>(misses));
  reg.gauge("wormnet_sweep_cache_size", l).set(static_cast<double>(size));
  const std::uint64_t total = hits + misses;
  reg.gauge("wormnet_sweep_cache_hit_rate", l)
      .set(total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0);
  reg.gauge("wormnet_sweep_threads", l).set(static_cast<double>(threads()));
}

}  // namespace wormnet::harness

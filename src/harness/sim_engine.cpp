#include "harness/sim_engine.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace wormnet::harness {

namespace {

/// Aggregate a sample per replication, in replication order (the order is
/// fixed, so the Welford accumulation is deterministic).
template <typename GetSample>
Aggregate aggregate_runs(const std::vector<sim::SimResult>& runs,
                         const GetSample& sample_of) {
  util::RunningStats stats;
  for (const sim::SimResult& r : runs) {
    const double v = sample_of(r);
    if (std::isfinite(v)) stats.add(v);
  }
  Aggregate a;
  a.n = static_cast<int>(stats.count());
  a.mean = stats.mean();
  a.stddev = stats.stddev();
  a.ci95 = a.n >= 2 ? 1.96 * stats.sem() : std::numeric_limits<double>::quiet_NaN();
  return a;
}

void fill_aggregates(SimCellResult& out) {
  out.latency = aggregate_runs(out.runs, [](const sim::SimResult& r) {
    return r.latency.count() > 0 ? r.latency.mean()
                                 : std::numeric_limits<double>::quiet_NaN();
  });
  out.queue_wait = aggregate_runs(out.runs, [](const sim::SimResult& r) {
    return r.queue_wait.count() > 0 ? r.queue_wait.mean()
                                    : std::numeric_limits<double>::quiet_NaN();
  });
  out.throughput = aggregate_runs(out.runs, [](const sim::SimResult& r) {
    return r.throughput_flits_per_pe;
  });
  out.all_completed = !out.runs.empty();
  out.any_saturated = false;
  out.any_truncated = false;
  for (const sim::SimResult& r : out.runs) {
    if (!r.completed) out.all_completed = false;
    if (r.saturated) out.any_saturated = true;
    if (r.truncated) out.any_truncated = true;
  }
}

}  // namespace

std::vector<SimCell> burstiness_cells(
    const SimCell& base, const std::vector<arrivals::ArrivalSpec>& processes) {
  std::vector<SimCell> cells;
  cells.reserve(processes.size());
  for (const arrivals::ArrivalSpec& process : processes) {
    SimCell cell = base;
    cell.cfg.arrival_process = process;
    cell.label =
        base.label.empty() ? process.name() : base.label + "/" + process.name();
    cells.push_back(std::move(cell));
  }
  return cells;
}

SimEngine::SimEngine(Options opts) : opts_(opts) {
  if (opts_.parallel) pool_ = std::make_unique<util::ThreadPool>(opts_.threads);
}

SimEngine::~SimEngine() = default;

unsigned SimEngine::threads() const { return pool_ ? pool_->size() : 1u; }

std::vector<SimCellResult> SimEngine::run_cells(const std::vector<SimCell>& cells) {
  WORMNET_SPAN("sim_campaign", "campaign");
  // One immutable SimNetwork per DISTINCT topology, built serially up front
  // (construction order is the cells' order, so the build is deterministic
  // too); workers only ever read them — the immutability contract of
  // sim::SimNetwork makes that safe without locks.
  std::unordered_map<const topo::Topology*, std::unique_ptr<sim::SimNetwork>> nets;
  for (const SimCell& cell : cells) {
    WORMNET_EXPECTS(cell.topology != nullptr);
    WORMNET_EXPECTS(cell.replications >= 1);
    // Fail fast HERE, on the calling thread: a config rejected inside a
    // pool worker would escape ThreadPool::worker_loop and std::terminate
    // the process instead of surfacing as a catchable error.  Campaign
    // cells are never scripted, so the zero-warmup open-loop rule the
    // Simulator defers until run() is also decidable now.
    if (std::string problem = cell.cfg.validate(); !problem.empty()) {
      throw std::invalid_argument("wormnet: campaign cell '" + cell.label +
                                  "': " + problem);
    }
    if (std::string problem = cell.cfg.validate_open_loop(); !problem.empty()) {
      throw std::invalid_argument("wormnet: campaign cell '" + cell.label +
                                  "': " + problem);
    }
    // Fault events reference the topology, so only the engine (not
    // SimConfig::validate) can check them — and it must, eagerly, for the
    // same reason as above.
    if (std::string problem = sim::check_fault_events(*cell.topology, cell.cfg);
        !problem.empty()) {
      throw std::invalid_argument("wormnet: campaign cell '" + cell.label +
                                  "': " + problem);
    }
    WORMNET_EXPECTS(cell.cycle_budget >= 0);
    auto it = nets.find(cell.topology);
    if (it == nets.end()) {
      nets.emplace(cell.topology,
                   std::make_unique<sim::SimNetwork>(*cell.topology));
      ++networks_built_;
    }
  }

  std::vector<SimCellResult> results(cells.size());
  struct Job {
    std::size_t cell;
    int rep;
  };
  std::vector<Job> jobs;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].label = cells[c].label;
    results[c].runs.resize(static_cast<std::size_t>(cells[c].replications));
    for (int r = 0; r < cells[c].replications; ++r) jobs.push_back({c, r});
  }

  // Fan the (cell, replication) jobs out.  Each job is a pure function of
  // its cell's config and replication index (seed = cfg.seed + rep) and
  // writes only its own pre-sized slot, so the schedule cannot change any
  // result bit — the same argument as SweepEngine's, tested the same way.
  const auto run_job = [&](std::int64_t j) {
    const Job& job = jobs[static_cast<std::size_t>(j)];
    const SimCell& cell = cells[job.cell];
    sim::SimConfig cfg = cell.cfg;
    cfg.seed += static_cast<std::uint64_t>(job.rep);
    sim::Simulator simulator(*nets.at(cell.topology), cfg);
    sim::SimResult& slot = results[job.cell].runs[static_cast<std::size_t>(job.rep)];
    if (cell.cycle_budget > 0) {
      // Engine-level watchdog: a run that outlives its budget is reported
      // truncated with whatever it measured, instead of wedging the worker.
      simulator.advance(cell.cycle_budget);
      slot = simulator.partial_result();
    } else {
      slot = simulator.run();
    }
  };
  if (pool_ && jobs.size() > 1) {
    util::parallel_for(*pool_, static_cast<std::int64_t>(jobs.size()), run_job);
  } else {
    for (std::int64_t j = 0; j < static_cast<std::int64_t>(jobs.size()); ++j)
      run_job(j);
  }

  // Aggregate serially, in cell order.
  for (SimCellResult& r : results) fill_aggregates(r);
  cells_run_ += cells.size();
  replications_run_ += jobs.size();
  return results;
}

void SimEngine::publish_metrics(obs::Registry& reg,
                                std::string_view label) const {
  std::string l = "engine=";
  l += label;
  reg.gauge("wormnet_sim_networks_built", l)
      .set(static_cast<double>(networks_built_));
  reg.gauge("wormnet_sim_cells_run", l).set(static_cast<double>(cells_run_));
  reg.gauge("wormnet_sim_replications_run", l)
      .set(static_cast<double>(replications_run_));
  reg.gauge("wormnet_sim_threads", l).set(static_cast<double>(threads()));
}

SimCellResult SimEngine::run_cell(const SimCell& cell) {
  std::vector<SimCellResult> results = run_cells({cell});
  return std::move(results.front());
}

}  // namespace wormnet::harness

// wormnet/harness/sim_engine.hpp
//
// The simulation twin of SweepEngine: a campaign runner that fans
// independent (topology, SimConfig) cells — and seed-replications within a
// cell — across the shared util::ThreadPool, with per-cell aggregation
// (mean / 95% CI across replications) and a shared-SimNetwork guarantee.
//
// Why an engine instead of a for-loop:
//  * every sim-heavy bench and the conformance suite used to run Simulator
//    instances strictly serially; the engine is the one place that owns the
//    fan-out, so a campaign's wall time scales with the core count;
//  * sim::SimNetwork is immutable after construction (see network.hpp's
//    contract), so the engine builds it ONCE per distinct topology and
//    shares it across every cell and worker that uses that topology —
//    at N = 1024 the network build is itself worth sharing;
//  * determinism is a hard contract, tested exactly like SweepEngine's:
//    a campaign's results are a pure function of the cell list.  Each
//    replication seeds its own Simulator with cfg.seed + rep, jobs share no
//    mutable state, every job writes only its own result slot, and
//    aggregation runs serially in cell/replication order afterwards — so
//    thread count and scheduling cannot change any bit of any result.
//
// Lifetime: cells reference their topologies by pointer; the pointed-to
// topologies must stay alive and UNMUTATED (including set_uniform_lanes)
// for the duration of run_cells().  Campaigns that vary lane counts build
// one topology object per lane configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "topo/topology.hpp"
#include "util/thread_pool.hpp"

namespace wormnet::obs {
class Registry;
}

namespace wormnet::harness {

/// One campaign cell: a topology × configuration pair, replicated
/// `replications` times with seeds cfg.seed, cfg.seed + 1, …
struct SimCell {
  const topo::Topology* topology = nullptr;
  sim::SimConfig cfg;
  int replications = 1;
  std::string label;  ///< carried through to the result for reporting
  /// Per-replication cycle budget: 0 (default) runs to completion; > 0
  /// advances at most this many cycles and, if the run has not terminated
  /// by then, reports the partial metrics with SimResult::truncated set —
  /// the engine-level watchdog that turns a non-terminating degraded run
  /// into a classified cell outcome instead of a hung campaign.
  long cycle_budget = 0;
};

/// Burstiness axis for simulation campaigns: one cell per arrival process,
/// each a copy of `base` with cfg.arrival_process swapped in and labeled by
/// the process name (prefixed with base.label when set).  SimConfig carries
/// the spec, so the cells run through run_cells like any others — the
/// SweepEngine::sweep_burstiness twin for the simulator side.
std::vector<SimCell> burstiness_cells(
    const SimCell& base, const std::vector<arrivals::ArrivalSpec>& processes);

/// Mean and spread of one statistic across a cell's replications.
/// ci95 is the normal-approximation half-width 1.96·s/√n (NaN when n < 2,
/// 0 is never faked); with one replication `mean` is just that run's value.
struct Aggregate {
  int n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
};

/// One cell's outcome: every replication's full SimResult (in seed order)
/// plus cross-replication aggregates of the headline statistics.
struct SimCellResult {
  std::string label;
  std::vector<sim::SimResult> runs;  ///< one per replication, seed order

  Aggregate latency;     ///< of per-run mean tagged latency (cycles)
  Aggregate queue_wait;  ///< of per-run mean injection wait (cycles)
  Aggregate throughput;  ///< of per-run delivered flits/cycle/PE

  bool all_completed = false;  ///< every replication completed
  bool any_saturated = false;  ///< at least one replication saturated
  bool any_truncated = false;  ///< some replication hit the cell's budget
};

/// Parallel deterministic simulation-campaign executor.
class SimEngine {
 public:
  struct Options {
    unsigned threads = 0;  ///< worker count; 0 = hardware concurrency
    bool parallel = true;  ///< false: run on the calling thread, in order
  };

  SimEngine() : SimEngine(Options{}) {}
  explicit SimEngine(Options opts);
  ~SimEngine();

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Run the whole campaign; one result per cell, same order.  Results are
  /// bitwise-identical for every thread count (see the header comment).
  std::vector<SimCellResult> run_cells(const std::vector<SimCell>& cells);

  /// Convenience: run one cell (its replications still fan out).
  SimCellResult run_cell(const SimCell& cell);

  /// Number of worker threads backing parallel campaigns (1 when serial).
  unsigned threads() const;

  /// SimNetworks constructed across this engine's lifetime — observability
  /// for the shared-network guarantee (cells over one topology share one).
  std::uint64_t networks_built() const { return networks_built_; }

  /// Campaign totals across this engine's lifetime.
  std::uint64_t cells_run() const { return cells_run_; }
  std::uint64_t replications_run() const { return replications_run_; }

  /// Publish networks-built / cells / replications / thread-count gauges
  /// into `reg` under labels "engine=<label>" (one-shot; idempotent).
  void publish_metrics(obs::Registry& reg, std::string_view label) const;

 private:
  Options opts_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when serial
  std::uint64_t networks_built_ = 0;
  std::uint64_t cells_run_ = 0;
  std::uint64_t replications_run_ = 0;
};

}  // namespace wormnet::harness

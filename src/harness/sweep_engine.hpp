// wormnet/harness/sweep_engine.hpp
//
// Batched evaluation engine for analytical models: λ-sweeps, load-sweeps
// and saturation bisections over any core::NetworkModel, executed as
// parallel jobs on a util::ThreadPool with per-(model, λ₀) memoization.
//
// Why an engine instead of a for-loop:
//  * every bench used to hand-roll its own sweep loop; the engine is the
//    one place that owns batching, threading and caching;
//  * model evaluations are pure functions of (model, λ₀), so parallel and
//    serial execution produce BITWISE-identical results (tested) — the
//    engine just reorders work, never arithmetic;
//  * saturation searches and fraction-of-saturation sweeps re-evaluate the
//    same points repeatedly across benches; the memo cache collapses those
//    into one solve each.
//
// Cache contract: entries key on the model's CONTENT, not its address.
// The key is core::NetworkModel::content_digest() — a hash over every
// configuration axis that can change evaluate()'s result (for GeneralModel
// the full channel graph, injection classes, solver knobs and arrival
// tuning; see the digest's own contract) — combined with the λ₀ bit
// pattern, hoisted once per batch sweep.  Consequences:
//  * two model OBJECTS with identical content share entries: a rebuilt,
//    cloned or delta-retuned-back model hits the warm cache, which is what
//    the QueryEngine's resident/evicted model lifecycle needs;
//  * a model may be destroyed while the engine lives on — a later model at
//    a recycled address can never read stale data (the footgun the old
//    address-based key documented is gone);
//  * ordinary mutators (set_injection_*, set_uniform_lanes,
//    scale_injection_rates, ablation flips, edited rates) change the digest
//    and miss rather than serve the pre-mutation estimate.
// One caveat remains: state a model's digest cannot see — a custom
// NetworkModel subclass that relies on the default digest while carrying
// extra evaluate()-visible state and no override — would alias; override
// content_digest() there, or clear_cache() after mutating such state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "core/network_model.hpp"
#include "util/thread_pool.hpp"

namespace wormnet::obs {
class Registry;
}

namespace wormnet::harness {

/// One evaluated point of a sweep.
struct SweepPoint {
  double lambda0 = 0.0;     ///< injection rate, messages/cycle/PE
  double load_flits = 0.0;  ///< λ₀ · s_f, flits/cycle/PE
  core::LatencyEstimate est;
};

/// One member of a model-family sweep (sweep_family): the model built at one
/// parameter value, its saturation, and its latency curve.  The member owns
/// the model for the caller's convenience; the engine's cache keys on model
/// CONTENT, so dropping members early is safe.
struct FamilyMember {
  double parameter = 0.0;  ///< the family axis value (e.g. hotspot fraction)
  std::unique_ptr<core::NetworkModel> model;
  double saturation_rate = 0.0;  ///< λ₀* of this member (Eq. 26)
  std::vector<SweepPoint> points;
};

/// Builds the family member model at one parameter value — e.g.
/// `[&](double f) { return build_traffic_model(ft, TrafficSpec::hotspot(f)); }`
/// wrapped in a unique_ptr.
using ModelFactory =
    std::function<std::unique_ptr<core::NetworkModel>(double parameter)>;

/// Builds the family member model at one virtual-channel (lane) count — e.g.
/// `[&](int L) { ft.set_uniform_lanes(L); return build_traffic_model(...); }`.
using LaneModelFactory =
    std::function<std::unique_ptr<core::NetworkModel>(int lanes)>;

/// Builds the family member model tuned to one arrival process — e.g.
/// `[&](const arrivals::ArrivalSpec& p) {
///    auto m = std::make_unique<core::GeneralModel>(base);
///    m->set_injection_process(p);
///    return m; }`.
using ArrivalModelFactory = std::function<std::unique_ptr<core::NetworkModel>(
    const arrivals::ArrivalSpec& process)>;

/// Parallel, memoizing sweep executor.
class SweepEngine {
 public:
  struct Options {
    unsigned threads = 0;  ///< worker count; 0 = hardware concurrency
    bool parallel = true;  ///< false: evaluate on the calling thread, in order
    bool memoize = true;   ///< false: always re-evaluate (for benchmarking)
  };

  SweepEngine() : SweepEngine(Options{}) {}
  explicit SweepEngine(Options opts);

  /// Evaluate one point (through the cache).
  core::LatencyEstimate evaluate(const core::NetworkModel& model, double lambda0);
  /// Evaluate one point given a flit load.
  core::LatencyEstimate evaluate_load(const core::NetworkModel& model,
                                      double load_flits);

  /// Evaluate every λ₀ in `lambdas`; one SweepPoint per input, same order.
  std::vector<SweepPoint> sweep_lambda(const core::NetworkModel& model,
                                       const std::vector<double>& lambdas);
  /// Evaluate every flit load in `loads`; one SweepPoint per input, same order.
  std::vector<SweepPoint> sweep_load(const core::NetworkModel& model,
                                     const std::vector<double>& loads);
  /// Evaluate at the given fractions of the model's saturation load.
  std::vector<SweepPoint> sweep_saturation_fractions(
      const core::NetworkModel& model, const std::vector<double>& fractions);

  /// Saturation rate λ₀* (Eq. 26), with every bisection probe memoized so
  /// repeated searches over the same model are free.
  double saturation_rate(const core::NetworkModel& model);
  /// Saturation throughput λ₀* · s_f in flits/cycle/PE.
  double saturation_load(const core::NetworkModel& model);

  /// Pattern/parameter sweep over a FAMILY of models: build one model per
  /// parameter value (e.g. a hotspot-fraction axis of traffic-aware models),
  /// find each member's saturation rate, and evaluate it at the given
  /// fractions of ITS OWN saturation.  Members are returned in parameter
  /// order and own their models; each member's sweep runs through the same
  /// memoizing parallel machinery as the single-model entry points.
  /// Lifetime: none to worry about — the cache keys on model content, so
  /// members may be dropped (or rebuilt identically later, hitting the warm
  /// cache) without clear_cache().
  std::vector<FamilyMember> sweep_family(const ModelFactory& make,
                                         const std::vector<double>& parameters,
                                         const std::vector<double>& saturation_fractions);

  /// Lane-count axis: sweep_family over virtual-channel multiplicities (the
  /// capacity-planning axis the multi-lane extension opens).  Each member's
  /// `parameter` is its lane count; the factory decides how lanes enter the
  /// model (set_uniform_lanes + rebuild, or FatTreeModelOptions::lanes).
  std::vector<FamilyMember> sweep_lanes(const LaneModelFactory& make,
                                        const std::vector<int>& lane_counts,
                                        const std::vector<double>& saturation_fractions);

  /// Burstiness axis: sweep_family over arrival processes (the bursty-
  /// arrivals extension's capacity-planning axis).  Each member's model is
  /// built by the factory tuned to that process (typically one
  /// build_traffic_model + per-member set_injection_process retunes, which
  /// are O(channels)); each member's `parameter` is its process's effective
  /// C_a² (the variability parameter the model consumes).  The cache
  /// disambiguates members through the content digest, which folds
  /// arrival_ca2() and arrival_batch_residual() in.  Bernoulli is
  /// rejected: its SCV is 1 − λ₀, which varies across a member's own sweep
  /// points, so it has no single position on this axis.
  std::vector<FamilyMember> sweep_burstiness(
      const ArrivalModelFactory& make,
      const std::vector<arrivals::ArrivalSpec>& processes,
      const std::vector<double>& saturation_fractions);

  /// Number of worker threads backing parallel sweeps (1 when serial).
  unsigned threads() const;

  // Cache observability (tests; perf reports).
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;
  std::size_t cache_size() const;
  void clear_cache();

  /// Publish the cache counters and hit rate into `reg` as gauges under
  /// labels "engine=<label>" (one-shot snapshot export; idempotent).
  void publish_metrics(obs::Registry& reg, std::string_view label) const;

 private:
  struct Key {
    std::uint64_t digest;       ///< NetworkModel::content_digest()
    std::uint64_t lambda_bits;  ///< λ₀ IEEE-754 bit pattern
    bool operator==(const Key& o) const {
      return digest == o.digest && lambda_bits == o.lambda_bits;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  /// Cache key for one (model content, λ₀) evaluation.  The digest is a
  /// pure function of the model's configuration — batch entry points hoist
  /// it once per sweep instead of recomputing per point.
  static Key make_key(const core::NetworkModel& model, double lambda0);

  /// Cache lookup; returns true and fills `out` on a hit.
  bool lookup(const Key& key, core::LatencyEstimate& out);
  void store(const Key& key, const core::LatencyEstimate& est);

  Options opts_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when serial
  mutable std::mutex mu_;
  std::unordered_map<Key, core::LatencyEstimate, KeyHash> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace wormnet::harness

#include "harness/experiment.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace wormnet::harness {

namespace {

/// Copy one engine point into the model half of a comparison row.
void fill_model_side(ComparisonRow& row, const SweepPoint& pt) {
  row.model_latency = pt.est.latency;
  row.model_inj_wait = pt.est.inj_wait;
  row.model_inj_service = pt.est.inj_service;
  row.model_stable = pt.est.stable;
}

}  // namespace

std::vector<ComparisonRow> compare_latency(const topo::Topology& topo,
                                           const core::NetworkModel& model,
                                           const SweepConfig& cfg,
                                           SweepEngine* engine,
                                           SimEngine* sims) {
  WORMNET_EXPECTS(!cfg.loads.empty());
  std::vector<ComparisonRow> rows(cfg.loads.size());

  // Model side: one batched engine sweep (memoized across calls).  A
  // private engine lives only for this block so its worker pool is gone
  // before the simulation campaign below spins up.
  {
    std::unique_ptr<SweepEngine> local;
    if (!engine)
      local = std::make_unique<SweepEngine>(SweepEngine::Options{cfg.threads});
    SweepEngine& eng = engine ? *engine : *local;
    const std::vector<SweepPoint> points = eng.sweep_load(model, cfg.loads);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i].load = cfg.loads[i];
      fill_model_side(rows[i], points[i]);
    }
  }

  // Simulation side: one SimEngine campaign — every load point an
  // independent deterministic cell over ONE shared SimNetwork.
  std::vector<SimCell> cells(cfg.loads.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SimCell& cell = cells[i];
    cell.topology = &topo;
    cell.cfg.load_flits = cfg.loads[i];
    cell.cfg.worm_flits = cfg.worm_flits;
    cell.cfg.seed = cfg.seed + static_cast<std::uint64_t>(i);
    cell.cfg.warmup_cycles = cfg.warmup_cycles;
    cell.cfg.measure_cycles = cfg.measure_cycles;
    cell.cfg.max_cycles = cfg.max_cycles;
    cell.cfg.channel_stats = false;
  }
  std::unique_ptr<SimEngine> local_sims;
  if (!sims) local_sims = std::make_unique<SimEngine>(SimEngine::Options{cfg.threads});
  const std::vector<SimCellResult> outs =
      (sims ? *sims : *local_sims).run_cells(cells);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const sim::SimResult& r = outs[i].runs.front();
    ComparisonRow& row = rows[i];
    row.sim_latency = r.latency.mean();
    row.sim_sem = r.latency.sem();
    row.sim_inj_wait = r.queue_wait.mean();
    row.sim_inj_service = r.inj_service.mean();
    row.sim_messages = r.latency.count();
    row.sim_saturated = r.saturated;
  }
  return rows;
}

std::vector<ComparisonRow> model_only_sweep(const core::NetworkModel& model,
                                            const SweepConfig& cfg,
                                            SweepEngine* engine) {
  std::unique_ptr<SweepEngine> local;
  if (!engine) local = std::make_unique<SweepEngine>(SweepEngine::Options{cfg.threads});
  SweepEngine& eng = engine ? *engine : *local;

  const std::vector<SweepPoint> points = eng.sweep_load(model, cfg.loads);
  std::vector<ComparisonRow> rows(cfg.loads.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].load = cfg.loads[i];
    fill_model_side(rows[i], points[i]);
    rows[i].sim_latency = util::kNaN;
  }
  return rows;
}

util::Table comparison_table(const std::vector<ComparisonRow>& rows) {
  util::Table t({"load(flits/cyc)", "model_latency", "sim_latency", "sim_sem",
                 "model_Winj", "sim_Winj", "model_xinj", "sim_xinj", "messages",
                 "note"});
  t.set_precision(0, 4);
  for (const ComparisonRow& r : rows) {
    std::string note;
    if (!r.model_stable) note += "model:sat ";
    if (r.sim_saturated) note += "sim:sat";
    t.add_row({r.load,
               r.model_stable ? util::Cell{r.model_latency} : util::Cell{std::string("inf")},
               r.sim_messages > 0 ? util::Cell{r.sim_latency} : util::Cell{},
               r.sim_messages > 0 ? util::Cell{r.sim_sem} : util::Cell{},
               r.model_stable ? util::Cell{r.model_inj_wait} : util::Cell{},
               r.sim_messages > 0 ? util::Cell{r.sim_inj_wait} : util::Cell{},
               r.model_stable ? util::Cell{r.model_inj_service} : util::Cell{},
               r.sim_messages > 0 ? util::Cell{r.sim_inj_service} : util::Cell{},
               static_cast<double>(r.sim_messages),
               note.empty() ? util::Cell{} : util::Cell{note}});
  }
  t.set_precision(8, 0);
  return t;
}

double mean_abs_pct_error(const std::vector<ComparisonRow>& rows) {
  double sum = 0.0;
  int n = 0;
  for (const ComparisonRow& r : rows) {
    if (!r.model_stable || r.sim_saturated || r.sim_messages == 0) continue;
    if (!std::isfinite(r.model_latency) || !std::isfinite(r.sim_latency)) continue;
    sum += std::abs(r.model_latency - r.sim_latency) / r.sim_latency * 100.0;
    ++n;
  }
  return n > 0 ? sum / n : util::kNaN;
}

ThroughputRow compare_throughput(const topo::Topology& topo,
                                 double model_saturation_load, int worm_flits,
                                 std::uint64_t seed, long warmup_cycles,
                                 long measure_cycles) {
  sim::SimConfig sc;
  sc.arrivals = sim::ArrivalProcess::Overload;
  sc.worm_flits = worm_flits;
  sc.seed = seed;
  sc.warmup_cycles = warmup_cycles;
  sc.measure_cycles = measure_cycles;
  sc.channel_stats = false;
  const sim::SimResult r = sim::simulate(topo, sc);
  ThroughputRow row;
  row.model_saturation_load = model_saturation_load;
  row.sim_overload_throughput = r.throughput_flits_per_pe;
  row.ratio = row.sim_overload_throughput > 0.0
                  ? row.model_saturation_load / row.sim_overload_throughput
                  : util::kNaN;
  return row;
}

void print_experiment(const std::string& title, const util::Table& table) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  std::cout << "--- csv ---\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

std::vector<double> fraction_loads(double saturation_load,
                                   bool include_past_saturation) {
  std::vector<double> loads;
  for (double f : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.875, 0.95})
    loads.push_back(saturation_load * f);
  if (include_past_saturation) {
    loads.push_back(saturation_load * 1.05);
    loads.push_back(saturation_load * 1.15);
  }
  return loads;
}

SweepConfig sweep_defaults(const util::Args& args, int worm_flits) {
  SweepConfig cfg;
  cfg.worm_flits = worm_flits;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool quick = args.get_bool("quick", false);
  cfg.warmup_cycles = args.get_int("warmup", quick ? 4'000 : 12'000);
  cfg.measure_cycles = args.get_int("measure", quick ? 10'000 : 40'000);
  cfg.max_cycles = args.get_int("max-cycles", quick ? 60'000 : 250'000);
  return cfg;
}

void reject_unknown_flags(const util::Args& args) {
  const auto unused = args.unused();
  if (unused.empty()) return;
  std::fprintf(stderr, "unknown flag(s):");
  for (const auto& u : unused) std::fprintf(stderr, " --%s", u.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace wormnet::harness

#include "harness/experiment.hpp"

#include <cmath>
#include <iostream>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace wormnet::harness {

std::vector<ComparisonRow> compare_latency(const topo::Topology& topo,
                                           const ModelFn& model,
                                           const SweepConfig& cfg) {
  WORMNET_EXPECTS(!cfg.loads.empty());
  const sim::SimNetwork net(topo);
  std::vector<ComparisonRow> rows(cfg.loads.size());

  util::parallel_for(
      static_cast<std::int64_t>(cfg.loads.size()), [&](std::int64_t i) {
        const double load = cfg.loads[static_cast<std::size_t>(i)];
        ComparisonRow& row = rows[static_cast<std::size_t>(i)];
        row.load = load;

        const core::LatencyEstimate est = model(load);
        row.model_latency = est.latency;
        row.model_inj_wait = est.inj_wait;
        row.model_inj_service = est.inj_service;
        row.model_stable = est.stable;

        sim::SimConfig sc;
        sc.load_flits = load;
        sc.worm_flits = cfg.worm_flits;
        sc.seed = cfg.seed + static_cast<std::uint64_t>(i);
        sc.warmup_cycles = cfg.warmup_cycles;
        sc.measure_cycles = cfg.measure_cycles;
        sc.max_cycles = cfg.max_cycles;
        sc.channel_stats = false;
        sim::Simulator simulator(net, sc);
        const sim::SimResult r = simulator.run();
        row.sim_latency = r.latency.mean();
        row.sim_sem = r.latency.sem();
        row.sim_inj_wait = r.queue_wait.mean();
        row.sim_inj_service = r.inj_service.mean();
        row.sim_messages = r.latency.count();
        row.sim_saturated = r.saturated;
      });
  return rows;
}

std::vector<ComparisonRow> model_only_sweep(const ModelFn& model,
                                            const SweepConfig& cfg) {
  std::vector<ComparisonRow> rows;
  rows.reserve(cfg.loads.size());
  for (double load : cfg.loads) {
    ComparisonRow row;
    row.load = load;
    const core::LatencyEstimate est = model(load);
    row.model_latency = est.latency;
    row.model_inj_wait = est.inj_wait;
    row.model_inj_service = est.inj_service;
    row.model_stable = est.stable;
    row.sim_latency = util::kNaN;
    rows.push_back(row);
  }
  return rows;
}

util::Table comparison_table(const std::vector<ComparisonRow>& rows) {
  util::Table t({"load(flits/cyc)", "model_latency", "sim_latency", "sim_sem",
                 "model_Winj", "sim_Winj", "model_xinj", "sim_xinj", "messages",
                 "note"});
  t.set_precision(0, 4);
  for (const ComparisonRow& r : rows) {
    std::string note;
    if (!r.model_stable) note += "model:sat ";
    if (r.sim_saturated) note += "sim:sat";
    t.add_row({r.load,
               r.model_stable ? util::Cell{r.model_latency} : util::Cell{std::string("inf")},
               r.sim_messages > 0 ? util::Cell{r.sim_latency} : util::Cell{},
               r.sim_messages > 0 ? util::Cell{r.sim_sem} : util::Cell{},
               r.model_stable ? util::Cell{r.model_inj_wait} : util::Cell{},
               r.sim_messages > 0 ? util::Cell{r.sim_inj_wait} : util::Cell{},
               r.model_stable ? util::Cell{r.model_inj_service} : util::Cell{},
               r.sim_messages > 0 ? util::Cell{r.sim_inj_service} : util::Cell{},
               static_cast<double>(r.sim_messages),
               note.empty() ? util::Cell{} : util::Cell{note}});
  }
  t.set_precision(8, 0);
  return t;
}

double mean_abs_pct_error(const std::vector<ComparisonRow>& rows) {
  double sum = 0.0;
  int n = 0;
  for (const ComparisonRow& r : rows) {
    if (!r.model_stable || r.sim_saturated || r.sim_messages == 0) continue;
    if (!std::isfinite(r.model_latency) || !std::isfinite(r.sim_latency)) continue;
    sum += std::abs(r.model_latency - r.sim_latency) / r.sim_latency * 100.0;
    ++n;
  }
  return n > 0 ? sum / n : util::kNaN;
}

ThroughputRow compare_throughput(const topo::Topology& topo,
                                 double model_saturation_load, int worm_flits,
                                 std::uint64_t seed, long warmup_cycles,
                                 long measure_cycles) {
  sim::SimConfig sc;
  sc.arrivals = sim::ArrivalProcess::Overload;
  sc.worm_flits = worm_flits;
  sc.seed = seed;
  sc.warmup_cycles = warmup_cycles;
  sc.measure_cycles = measure_cycles;
  sc.channel_stats = false;
  const sim::SimResult r = sim::simulate(topo, sc);
  ThroughputRow row;
  row.model_saturation_load = model_saturation_load;
  row.sim_overload_throughput = r.throughput_flits_per_pe;
  row.ratio = row.sim_overload_throughput > 0.0
                  ? row.model_saturation_load / row.sim_overload_throughput
                  : util::kNaN;
  return row;
}

void print_experiment(const std::string& title, const util::Table& table) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  std::cout << "--- csv ---\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

}  // namespace wormnet::harness

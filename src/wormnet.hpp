// wormnet.hpp — umbrella header for the wormnet library.
//
// wormnet reproduces Greenberg & Guan, "An Improved Analytical Model for
// Wormhole Routed Networks with Application to Butterfly Fat-Trees"
// (ICPP 1997):
//
//  * wormnet::queueing — M/G/1, Hokstad M/G/2, generalized M/G/m waits with
//    the wormhole variance and blocking-probability corrections (Eq. 4-10),
//    plus the Allen–Cunneen G/G/m extension for bursty arrivals;
//  * wormnet::arrivals — message arrival processes (Poisson, deterministic,
//    batch, MMPP-2/ON-OFF, trace) with closed-form C_a², shared by model
//    and simulator;
//  * wormnet::topo     — butterfly fat-tree, hypercube and mesh topologies,
//    plus the fault layer (FaultSet / FaultedTopology degraded views);
//  * wormnet::traffic  — destination distributions (TrafficSpec pattern
//    catalog + arbitrary TrafficMatrix), shared by model and simulator;
//  * wormnet::core     — the paper's analytical model: the general
//    channel-graph solver (§2), the closed-form fat-tree model (§3),
//    saturation throughput (Eq. 26), and the traffic-aware route-enumeration
//    builder (any topology x any TrafficSpec);
//  * wormnet::sim      — a flit-level wormhole simulator (the validation
//    substrate for every experiment);
//  * wormnet::harness  — load sweeps and model-vs-simulation comparisons;
//  * wormnet::obs      — observability: metric registry (counters / gauges /
//    histograms with JSON, CSV and Prometheus exporters), Chrome trace-event
//    spans, solve/sim telemetry publishers and the pluggable log sink;
//  * wormnet::util     — RNG, statistics, tables, CLI and thread pool.
//
// See README.md for a quickstart and DESIGN.md for the architecture.
#pragma once

#include "arrivals/arrival_process.hpp" // IWYU pragma: export
#include "core/channel_graph.hpp"      // IWYU pragma: export
#include "core/fattree_graph.hpp"      // IWYU pragma: export
#include "core/fattree_model.hpp"      // IWYU pragma: export
#include "core/full_graph.hpp"         // IWYU pragma: export
#include "core/general_model.hpp"      // IWYU pragma: export
#include "core/hypercube_graph.hpp"    // IWYU pragma: export
#include "core/network_model.hpp"      // IWYU pragma: export
#include "core/saturation.hpp"         // IWYU pragma: export
#include "core/traffic_model.hpp"      // IWYU pragma: export
#include "harness/experiment.hpp"      // IWYU pragma: export
#include "harness/query_engine.hpp"    // IWYU pragma: export
#include "harness/sim_engine.hpp"      // IWYU pragma: export
#include "harness/sweep_engine.hpp"    // IWYU pragma: export
#include "obs/adapters.hpp"            // IWYU pragma: export
#include "obs/log_sink.hpp"            // IWYU pragma: export
#include "obs/metrics.hpp"             // IWYU pragma: export
#include "obs/trace.hpp"               // IWYU pragma: export
#include "queueing/channel_solver.hpp" // IWYU pragma: export
#include "queueing/queueing.hpp"       // IWYU pragma: export
#include "sim/config.hpp"              // IWYU pragma: export
#include "sim/metrics.hpp"             // IWYU pragma: export
#include "sim/network.hpp"             // IWYU pragma: export
#include "sim/simulator.hpp"           // IWYU pragma: export
#include "sim/traffic.hpp"             // IWYU pragma: export
#include "topo/butterfly_fattree.hpp"  // IWYU pragma: export
#include "topo/channels.hpp"           // IWYU pragma: export
#include "topo/fault.hpp"              // IWYU pragma: export
#include "topo/graph_checks.hpp"       // IWYU pragma: export
#include "topo/hypercube.hpp"          // IWYU pragma: export
#include "topo/mesh.hpp"               // IWYU pragma: export
#include "topo/topology.hpp"           // IWYU pragma: export
#include "traffic/traffic_matrix.hpp"  // IWYU pragma: export
#include "traffic/traffic_spec.hpp"    // IWYU pragma: export
#include "util/cli.hpp"                // IWYU pragma: export
#include "util/histogram.hpp"          // IWYU pragma: export
#include "util/math.hpp"               // IWYU pragma: export
#include "util/rng.hpp"                // IWYU pragma: export
#include "util/stats.hpp"              // IWYU pragma: export
#include "util/table.hpp"              // IWYU pragma: export

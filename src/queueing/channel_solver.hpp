// wormnet/queueing/channel_solver.hpp
//
// The per-channel solver kernel of the Greenberg & Guan model — the ONE
// place the repository evaluates the paper's wait/blocking recurrence.
// Both instantiations of the model (the closed-form butterfly fat-tree of
// §3 and the general channel-graph solver of §2) are thin drivers around
// this kernel: they decide WHICH channels feed which, while the kernel owns
// HOW a channel's wait, utilization and blocking discount are computed.
//
// The kernel bundles three ingredients, each behind its ablation switch:
//  * bundle_wait       — W̄ of an m-link output bundle: M/G/1 (Eq. 6) for
//                        m = 1, Hokstad's M/G/2 (Eq. 8) for m = 2 with the
//                        published erratum's 2λ correction at Eq. 21/23,
//                        and the generalized M/G/m kernel for m > 2;
//  * blocking_factor   — the wormhole blocking-probability correction
//                        P(i|j) of Eq. 9/10 in per-link-rate form;
//  * wait_term         — the guarded p·W̄ product (0·∞ must be 0: a zero
//                        blocking probability means "never waits here" even
//                        past saturation).
//
// All rates passed to the kernel are PER PHYSICAL LINK; the kernel applies
// the m-server total-rate correction internally so callers cannot disagree
// about the erratum.
#pragma once

namespace wormnet::queueing {

/// The paper's two novelties and its published erratum as switches, so the
/// contribution of each ingredient can be isolated (the ablation benches)
/// and so every model implementation exposes the same knobs.
struct AblationOptions {
  /// Novelty (1): model an m-link bundle as one M/G/m pool.  Off: m
  /// independent M/G/1 servers, each at the per-link rate.
  bool multi_server = true;
  /// Novelty (2): apply the Eq. 9/10 blocking-probability discount.  Off:
  /// P(i|j) ≡ 1 (plain store-and-forward reuse of Poisson results).
  bool blocking_correction = true;
  /// The erratum at Eq. 21/23: evaluate the M/G/m wait at the bundle's
  /// TOTAL rate m·λ.  Off: the per-link rate as originally typeset.
  bool erratum_2lambda = true;
  /// Extension: honor virtual-channel (lane) multiplicities.  An L-lane
  /// channel blocks an incoming worm only when all L lanes are held, which
  /// the model approximates as an L-fold reduction of the Eq. 9/10 blocking
  /// probability.  Off: lane counts are ignored (every channel treated as
  /// the paper's single lane).  With L = 1 everywhere the switch has no
  /// effect, so the paper's published numbers are reproduced bit-for-bit.
  bool virtual_channels = true;
  /// Extension: honor per-channel arrival-stream SCVs (C_a²) through the
  /// Allen–Cunneen G/G/m correction (C_a² + C_b²)/2 — the bursty-arrivals
  /// subsystem's entry into the wait recurrence.  Off: C_a² ≡ 1 (the
  /// paper's Poisson assumption 1).  With C_a² = 1 everywhere the switch
  /// has no effect, so Poisson runs reproduce the published numbers
  /// bit-for-bit.
  bool bursty_arrivals = true;
  /// Extension: honor per-channel link attributes — bandwidth (a service-
  /// time scale), extra link latency, and finite per-lane buffer depth.
  /// Bandwidth b and depth B combine into the effective drain rate
  ///     b_eff = b·B / (B + b)
  /// (B native-rate flits, then one credit-stall cycle: B flits per
  /// B/b + 1 cycles), which stretches the per-hop holding time, feeds the
  /// lane-occupancy stability check, and enters the Eq. 9/10 blocking
  /// factor as the credit term B/(B + b) on R(i|j).  Off: attributes are
  /// ignored (the paper's uniform unit-bandwidth, unbuffered-credit
  /// network).  With b = 1, B = ∞, latency 0 everywhere the switch has no
  /// effect — every term degenerates through exact ·1.0 / /1.0 identities,
  /// so the published numbers are reproduced bit-for-bit.
  bool finite_buffers = true;
};

/// Stateless-per-evaluation solver for one channel class; holds the worm
/// length and ablation switches shared by every channel of one solve.
class ChannelSolver {
 public:
  explicit ChannelSolver(double worm_flits, AblationOptions ablation = {});

  /// s_f, the worm length in flits (== the deterministic part of service).
  double worm_flits() const { return worm_flits_; }
  /// The switches in force.
  const AblationOptions& ablation() const { return ablation_; }

  /// Service time of a terminal (ejection) channel: exactly s_f (Eq. 16).
  double terminal_service() const { return worm_flits_; }

  /// Squared coefficient of variation of channel service time, Eq. 5.
  double cb2(double xbar) const;

  /// Mean wait W̄ of an m-link bundle whose PER-LINK message rate is
  /// `lambda_link` and whose per-message service time is `xbar`.
  /// Dispatches on m and the ablation switches:
  ///   m == 1 or multi_server off  → M/G/1 at the per-link rate (Eq. 6);
  ///   m >= 2, erratum on          → M/G/m at the total rate m·λ (Eq. 8/21/23);
  ///   m >= 2, erratum off         → M/G/m at the per-link rate (as typeset).
  double bundle_wait(int servers, double lambda_link, double xbar) const;

  /// Lane-aware wait: an m-link bundle whose links carry L lanes each holds
  /// up to m·L worms at once, so the lane-acquisition queue is M/G/(m·L) at
  /// the bundle's physical message rate (the wait diverges at lane
  /// occupancy λ·x̄ = m·L, not at m).  Degenerates to the single-lane form
  /// when L == 1 or the virtual_channels switch is off.
  double bundle_wait(int servers, int lanes, double lambda_link, double xbar) const;

  /// Bursty-arrivals wait: the lane-aware bundle wait for an arrival stream
  /// whose inter-arrival SCV is `ca2`, via the Allen–Cunneen correction
  ///     W_{G/G/m} ≈ W_{M/G/m} · (C_a² + C_b²)/(1 + C_b²).
  /// Degenerates — bit for bit — to the Poisson form above when ca2 == 1 or
  /// the bursty_arrivals switch is off.
  double bundle_wait(int servers, int lanes, double lambda_link, double xbar,
                     double ca2) const;

  /// Utilization ρ of the bundle, always at the true total rate m·λ (the
  /// ablations change the wait formula, not the physics of utilization).
  double bundle_utilization(int servers, double lambda_link, double xbar) const;

  /// Lane-aware occupancy: the fraction of the bundle's m·L lane latches
  /// held, λ·m·x̄ / (m·L).  This is the stability metric for a lane
  /// channel — an L-lane link legitimately holds several stretched worms at
  /// once.  Degenerates to bundle_utilization when L == 1 or the
  /// virtual_channels switch is off.
  double bundle_utilization(int servers, int lanes, double lambda_link,
                            double xbar) const;

  /// Multiplexing stretch of an L-lane channel: lanes share the link's one
  /// flit/cycle, so a worm's s_f flits cross it in V·s_f cycles with
  ///     V = 1 / (1 − U·(1 − 1/L)),   U = λ_link·s_f
  /// (round-robin sharing against the other lanes' bandwidth demand;
  /// V ≤ L, the physical L-way interleave bound).  Returns the EXCESS
  /// holding time (V − 1)·s_f to add to the channel's composed service
  /// time; 0 when L == 1 or the switch is off; +inf when U ≥ 1 (the link's
  /// physical bandwidth is exceeded — infeasible regardless of lanes).
  double lane_excess(int lanes, double lambda_link) const;

  // -- Heterogeneous-link forms (finite_buffers switch) ---------------------

  /// Effective drain rate of a channel with bandwidth `b` flits/cycle and
  /// per-lane buffer depth B: b_eff = b·B/(B + b) — after B flits at the
  /// native rate, credit return costs one stall cycle, so B flits take
  /// B/b + 1 cycles.  Exactly `b` at B = ∞ (no arithmetic applied), and
  /// B/(B+1) for a unit-bandwidth link.  Pure helper: not ablation-gated
  /// (callers gate).
  double effective_bandwidth(double bandwidth, int buffer_depth) const;

  /// Deterministic per-hop EXCESS holding time of a heterogeneous channel:
  /// the extra pipeline cycles the link's latency adds to the head's
  /// progress (and hence to how long every upstream channel is held).
  /// Exactly 0 when the finite_buffers switch is off or the latency is the
  /// default 0.  The slow-drain stretch deliberately does NOT live here —
  /// it composes by max, not by sum (see drain_floor).
  double hop_excess(double link_latency) const;

  /// Deterministic drain FLOOR of a heterogeneous channel: a worm holds the
  /// channel at least s_f / b_eff cycles — its flits cannot cross faster
  /// than the link's effective rate.  A wormhole worm advances rigidly, so
  /// crossing several slow links it pipelines through all of them at the
  /// BOTTLENECK rate: the stretch of a path is max over its channels, not
  /// the sum (an additive per-hop stretch overcounts every slow hop after
  /// the first — badly, for a tapered tree whose up and down tiers are both
  /// slow).  Composition is therefore x̄_i = max(downstream composition,
  /// drain_floor(i)): the downstream term already carries the slower-than-me
  /// bottlenecks, and the floor re-asserts channel i's own drain when i IS
  /// the bottleneck.  Returns 0 (max-identity, bit-inert) when the
  /// finite_buffers switch is off or the attributes are the defaults.
  double drain_floor(double bandwidth, int buffer_depth) const;

  /// Heterogeneous lane-sharing factor V ≥ 1 of a slow channel: L lanes
  /// round-robin the link's b_eff, so a worm's drain slows by
  ///     V = 1 / (1 − share),   share = u·(1 − 1/L),   u = λ·s_f / b_eff.
  /// Unlike the fast-link lane_excess, this stretch scales the BOTTLENECK
  /// drain itself, so callers multiply it into drain_floor (and it then
  /// max-composes along the path like the plain floor) instead of adding
  /// it per hop — time-sharing a slow link between equal-length worms
  /// roughly doubles both their drain times, which is why lanes do not
  /// help latency on a tapered tier the way they do on unit links.
  /// Returns +inf when u ≥ 1 (the slow link's physical capacity is
  /// exceeded — this is how the model saturates on a tapered tier, even at
  /// L = 1), and exactly 1 at L = 1 below capacity or with the
  /// virtual_channels switch off.
  double lane_share_factor(int lanes, double lambda_link, double bandwidth,
                           int buffer_depth) const;

  /// Blocking-probability correction P(i|j) of Eq. 9/10 in per-link form:
  ///     P = 1 − (λ_in / λ_out) · R(i|j),   clamped into [0, 1],
  /// where `servers` is m of the TARGET bundle.  With per-link rates the m
  /// of Eq. 10 cancels; when the multi-server treatment is ablated the worm
  /// commits to one specific link out of m uniformly, so R divides by m.
  /// Returns 1 when the correction is ablated or the target carries no load.
  double blocking_factor(int servers, double lambda_in_link,
                         double lambda_out_link, double route_prob) const;

  /// Lane-aware form: `lanes` is L of the TARGET channel.  A worm entering
  /// an L-lane channel waits only when every lane is held, modeled as the
  /// single-lane blocking probability divided by L (the lanes are
  /// statistically identical, so each additional lane is an independent
  /// escape from the head-of-line wait).  Degenerates to the single-lane
  /// form when L == 1 or the virtual_channels switch is off.
  double blocking_factor(int servers, int lanes, double lambda_in_link,
                         double lambda_out_link, double route_prob) const;

  /// Buffer-aware form: the TARGET channel's finite per-lane depth B keeps
  /// only B flits of an arriving worm moving before credit backpressure
  /// couples it to the downstream drain, so the "the worm ahead is my own
  /// traffic" credit R(i|j) is discounted by θ = B/(B + b) — exactly the
  /// effective-bandwidth ratio b_eff/b.  Implemented as route_prob·θ into
  /// the lane-aware form above; θ is exactly 1 (no arithmetic) at B = ∞ or
  /// with the finite_buffers switch off.
  double blocking_factor(int servers, int lanes, double lambda_in_link,
                         double lambda_out_link, double route_prob,
                         double bandwidth, int buffer_depth) const;

  /// The guarded product p·W̄ used when composing service times (Eq. 11/18/
  /// 20/22): p == 0 means the correction proves this input never waits
  /// there, which must hold even when W̄ has diverged past saturation
  /// (0 · ∞ would otherwise poison the whole chain with NaN).  The guard
  /// extends to p ≤ 1e-12: the exact-zero case λ_in·R == λ_out lands an
  /// ulp either side of 0 depending on flow summation order, and past
  /// saturation that ulp times an infinite W̄ would make physically
  /// identical channels (orbit mates of a symmetric topology) disagree
  /// between finite and infinite service — breaking the collapsed-vs-dense
  /// parity contract.  Below the threshold the product is ≤ 1e-12 · W̄
  /// anyway, far under the solver tolerance whenever W̄ is finite.
  static double wait_term(double blocking, double wait);

 private:
  double worm_flits_;
  AblationOptions ablation_;
};

}  // namespace wormnet::queueing

#include "queueing/channel_solver.hpp"

#include <limits>

#include "queueing/queueing.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace wormnet::queueing {

ChannelSolver::ChannelSolver(double worm_flits, AblationOptions ablation)
    : worm_flits_(worm_flits), ablation_(ablation) {
  WORMNET_EXPECTS(worm_flits_ > 0.0);
}

double ChannelSolver::cb2(double xbar) const {
  return wormhole_cb2(xbar, worm_flits_);
}

double ChannelSolver::bundle_wait(int servers, double lambda_link, double xbar) const {
  WORMNET_EXPECTS(servers >= 1);
  if (!ablation_.multi_server || servers == 1) {
    // Each physical link treated as an independent M/G/1 at its own rate.
    return mg1_wait_wormhole(lambda_link, xbar, worm_flits_);
  }
  // Corrected form (the erratum at Eq. 21/23): the m-server queue sees the
  // bundle's total rate.  The uncorrected published formula used the
  // per-link rate.
  const double lambda_arg =
      ablation_.erratum_2lambda ? lambda_link * servers : lambda_link;
  return wormhole_wait(servers, lambda_arg, xbar, worm_flits_);
}

double ChannelSolver::bundle_wait(int servers, int lanes, double lambda_link,
                                  double xbar) const {
  WORMNET_EXPECTS(servers >= 1);
  WORMNET_EXPECTS(lanes >= 1);
  if (!ablation_.virtual_channels || lanes == 1)
    return bundle_wait(servers, lambda_link, xbar);
  if (!ablation_.multi_server) {
    // Each physical link an independent queue, but its L lane latches are L
    // servers of that queue.
    return wormhole_wait(lanes, lambda_link, xbar, worm_flits_);
  }
  const double lambda_arg =
      ablation_.erratum_2lambda ? lambda_link * servers : lambda_link;
  return wormhole_wait(servers * lanes, lambda_arg, xbar, worm_flits_);
}

double ChannelSolver::bundle_wait(int servers, int lanes, double lambda_link,
                                  double xbar, double ca2) const {
  const double base = bundle_wait(servers, lanes, lambda_link, xbar);
  if (!ablation_.bursty_arrivals) return base;
  // scaled_wait_gg owns the guard rules (ca2 == 1 bit identity, 0/inf
  // passthrough) shared with the standalone wormhole_wait_gg kernel.
  return scaled_wait_gg(base, ca2, cb2(xbar));
}

double ChannelSolver::bundle_utilization(int servers, double lambda_link,
                                         double xbar) const {
  WORMNET_EXPECTS(servers >= 1);
  return utilization(lambda_link * servers, xbar, servers);
}

double ChannelSolver::bundle_utilization(int servers, int lanes,
                                         double lambda_link, double xbar) const {
  WORMNET_EXPECTS(servers >= 1);
  WORMNET_EXPECTS(lanes >= 1);
  if (!ablation_.virtual_channels || lanes == 1)
    return bundle_utilization(servers, lambda_link, xbar);
  return utilization(lambda_link * servers, xbar, servers * lanes);
}

double ChannelSolver::lane_excess(int lanes, double lambda_link) const {
  WORMNET_EXPECTS(lanes >= 1);
  WORMNET_EXPECTS(lambda_link >= 0.0);
  if (!ablation_.virtual_channels || lanes == 1) return 0.0;
  const double u = lambda_link * worm_flits_;
  if (u >= 1.0) return std::numeric_limits<double>::infinity();
  const double share = u * (1.0 - 1.0 / static_cast<double>(lanes));
  return (1.0 / (1.0 - share) - 1.0) * worm_flits_;
}

double ChannelSolver::effective_bandwidth(double bandwidth,
                                          int buffer_depth) const {
  WORMNET_EXPECTS(bandwidth > 0.0);
  WORMNET_EXPECTS(buffer_depth >= 1);
  if (buffer_depth == util::kInfiniteBufferDepth) return bandwidth;
  const double depth = static_cast<double>(buffer_depth);
  return bandwidth * depth / (depth + bandwidth);
}

double ChannelSolver::hop_excess(double link_latency) const {
  if (!ablation_.finite_buffers) return 0.0;
  WORMNET_EXPECTS(link_latency >= 0.0);
  return link_latency;  // 0.0 on the default — the paper's hop
}

double ChannelSolver::drain_floor(double bandwidth, int buffer_depth) const {
  if (!ablation_.finite_buffers) return 0.0;
  if (bandwidth == 1.0 && buffer_depth == util::kInfiniteBufferDepth)
    return 0.0;  // uniform default — the paper's channel has no floor
  return worm_flits_ / effective_bandwidth(bandwidth, buffer_depth);
}

double ChannelSolver::lane_share_factor(int lanes, double lambda_link,
                                        double bandwidth,
                                        int buffer_depth) const {
  WORMNET_EXPECTS(lanes >= 1);
  WORMNET_EXPECTS(lambda_link >= 0.0);
  // Occupancy against the EFFECTIVE capacity: a tapered or credit-limited
  // link saturates at λ·s_f = b_eff regardless of lane count — this guard,
  // not the wait divergence, is what moves the model's saturation point.
  const double b_eff = effective_bandwidth(bandwidth, buffer_depth);
  const double u = lambda_link * worm_flits_ / b_eff;
  if (u >= 1.0) return std::numeric_limits<double>::infinity();
  if (!ablation_.virtual_channels || lanes == 1) return 1.0;
  const double share = u * (1.0 - 1.0 / static_cast<double>(lanes));
  return 1.0 / (1.0 - share);
}

double ChannelSolver::blocking_factor(int servers, double lambda_in_link,
                                      double lambda_out_link,
                                      double route_prob) const {
  WORMNET_EXPECTS(servers >= 1);
  if (!ablation_.blocking_correction) return 1.0;
  if (lambda_out_link <= 0.0) return 1.0;  // vacuous: no contention either way
  double r = route_prob;
  if (!ablation_.multi_server && servers > 1) r /= servers;
  return util::clamp01(1.0 - (lambda_in_link / lambda_out_link) * r);
}

double ChannelSolver::blocking_factor(int servers, int lanes,
                                      double lambda_in_link,
                                      double lambda_out_link,
                                      double route_prob) const {
  WORMNET_EXPECTS(lanes >= 1);
  const double p =
      blocking_factor(servers, lambda_in_link, lambda_out_link, route_prob);
  if (!ablation_.virtual_channels || lanes == 1) return p;
  return p / static_cast<double>(lanes);
}

double ChannelSolver::blocking_factor(int servers, int lanes,
                                      double lambda_in_link,
                                      double lambda_out_link,
                                      double route_prob, double bandwidth,
                                      int buffer_depth) const {
  double r = route_prob;
  if (ablation_.finite_buffers &&
      buffer_depth != util::kInfiniteBufferDepth) {
    WORMNET_EXPECTS(buffer_depth >= 1);
    WORMNET_EXPECTS(bandwidth > 0.0);
    const double depth = static_cast<double>(buffer_depth);
    r *= depth / (depth + bandwidth);  // θ = b_eff / b
  }
  return blocking_factor(servers, lanes, lambda_in_link, lambda_out_link, r);
}

double ChannelSolver::wait_term(double blocking, double wait) {
  // p ≤ 1e-12 is summation-order noise around the exact-zero blocking case
  // (λ_in·R == λ_out) — see the header: past saturation it must read as
  // "never waits here", not as an infinite wait term.
  return blocking > 1e-12 ? blocking * wait : 0.0;
}

}  // namespace wormnet::queueing

#include "queueing/queueing.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace wormnet::queueing {

using util::kInf;

namespace {
// Utilizations within kStabilityMargin of 1 are treated as saturated: the
// 1/(1-rho) terms would otherwise produce astronomically large but finite
// waits that destabilize the saturation bisection's bracketing.
constexpr double kStabilityMargin = 1e-9;
}  // namespace

double utilization(double lambda, double xbar, int servers) {
  WORMNET_EXPECTS(servers >= 1);
  WORMNET_EXPECTS(lambda >= 0.0);
  WORMNET_EXPECTS(xbar >= 0.0);
  return lambda * xbar / servers;
}

bool stable(double lambda, double xbar, int servers) {
  return utilization(lambda, xbar, servers) < 1.0 - kStabilityMargin;
}

double wormhole_cb2(double xbar, double worm_flits) {
  WORMNET_EXPECTS(worm_flits > 0.0);
  if (xbar <= 0.0) return 0.0;
  // Past saturation x̄ diverges; (x̄ - s_f)²/x̄² → 1 in the limit, and the
  // wait kernels return +inf regardless, so report the limit instead of the
  // NaN that inf/inf arithmetic would produce.
  if (!std::isfinite(xbar)) return 1.0;
  const double blocked = xbar - worm_flits;
  return (blocked * blocked) / (xbar * xbar);
}

double mg1_wait(double lambda, double xbar, double cb2) {
  WORMNET_EXPECTS(lambda >= 0.0);
  WORMNET_EXPECTS(cb2 >= 0.0);
  if (lambda == 0.0 || xbar == 0.0) return 0.0;
  if (!stable(lambda, xbar, 1)) return kInf;
  const double rho = lambda * xbar;
  return rho * xbar * (1.0 + cb2) / (2.0 * (1.0 - rho));
}

double mg1_wait_wormhole(double lambda, double xbar, double worm_flits) {
  return mg1_wait(lambda, xbar, wormhole_cb2(xbar, worm_flits));
}

double mg2_wait_hokstad(double lambda, double xbar, double cb2) {
  WORMNET_EXPECTS(lambda >= 0.0);
  WORMNET_EXPECTS(cb2 >= 0.0);
  if (lambda == 0.0 || xbar == 0.0) return 0.0;
  if (!stable(lambda, xbar, 2)) return kInf;
  const double lx = lambda * xbar;
  // Eq. 7: the denominator 4 - lambda^2 x̄^2 vanishes exactly at rho = 1.
  return lambda * lambda * xbar * xbar * xbar * (1.0 + cb2) / (2.0 * (4.0 - lx * lx));
}

double mg2_wait_wormhole(double lambda, double xbar, double worm_flits) {
  return mg2_wait_hokstad(lambda, xbar, wormhole_cb2(xbar, worm_flits));
}

double erlang_c(int servers, double offered_load) {
  WORMNET_EXPECTS(servers >= 1);
  WORMNET_EXPECTS(offered_load >= 0.0);
  const double a = offered_load;
  const auto m = servers;
  if (a == 0.0) return 0.0;
  if (a >= m) return 1.0;  // saturated: every arrival waits
  // Evaluate iteratively to avoid factorial overflow:
  //   inv_b(0) = 1;  inv_b(k) = 1 + (k / a) * inv_b(k-1)   [Erlang-B recursion
  //   on the reciprocal], then C = m*B / (m - a(1-B)) via the B->C identity.
  double inv_b = 1.0;
  for (int k = 1; k <= m; ++k) inv_b = 1.0 + inv_b * static_cast<double>(k) / a;
  const double b = 1.0 / inv_b;
  return b / (1.0 - (a / m) * (1.0 - b));
}

double mm1_wait(double lambda, double xbar) {
  if (lambda == 0.0 || xbar == 0.0) return 0.0;
  if (!stable(lambda, xbar, 1)) return kInf;
  const double rho = lambda * xbar;
  return rho * xbar / (1.0 - rho);
}

double mmm_wait(int servers, double lambda, double xbar) {
  WORMNET_EXPECTS(servers >= 1);
  if (lambda == 0.0 || xbar == 0.0) return 0.0;
  if (!stable(lambda, xbar, servers)) return kInf;
  const double a = lambda * xbar;
  const double c = erlang_c(servers, a);
  return c * xbar / (servers - a);
}

double mgm_wait(int servers, double lambda, double xbar, double cb2) {
  WORMNET_EXPECTS(servers >= 1);
  WORMNET_EXPECTS(cb2 >= 0.0);
  if (lambda == 0.0 || xbar == 0.0) return 0.0;
  if (!stable(lambda, xbar, servers)) return kInf;
  return 0.5 * (1.0 + cb2) * mmm_wait(servers, lambda, xbar);
}

double mgm_wait_wormhole(int servers, double lambda, double xbar, double worm_flits) {
  return mgm_wait(servers, lambda, xbar, wormhole_cb2(xbar, worm_flits));
}

double allen_cunneen_scale(double ca2, double cs2) {
  WORMNET_EXPECTS(ca2 >= 0.0);
  WORMNET_EXPECTS(cs2 >= 0.0);
  return (ca2 + cs2) / (1.0 + cs2);
}

double gg1_wait(double lambda, double xbar, double ca2, double cs2) {
  WORMNET_EXPECTS(ca2 >= 0.0);
  WORMNET_EXPECTS(cs2 >= 0.0);
  if (lambda == 0.0 || xbar == 0.0) return 0.0;
  if (!stable(lambda, xbar, 1)) return kInf;
  const double rho = lambda * xbar;
  return rho * xbar * (ca2 + cs2) / (2.0 * (1.0 - rho));
}

double ggm_wait(int servers, double lambda, double xbar, double ca2, double cs2) {
  WORMNET_EXPECTS(ca2 >= 0.0);
  WORMNET_EXPECTS(cs2 >= 0.0);
  if (lambda == 0.0 || xbar == 0.0) return 0.0;
  if (!stable(lambda, xbar, servers)) return kInf;
  return 0.5 * (ca2 + cs2) * mmm_wait(servers, lambda, xbar);
}

double blocking_probability(int servers, double lambda_in, double lambda_out_total,
                            double route_prob) {
  WORMNET_EXPECTS(servers >= 1);
  WORMNET_EXPECTS(lambda_in >= 0.0);
  WORMNET_EXPECTS(route_prob >= 0.0 && route_prob <= 1.0);
  if (lambda_out_total <= 0.0) return 1.0;  // vacuous: no contention either way
  const double p = 1.0 - servers * (lambda_in / lambda_out_total) * route_prob;
  return util::clamp01(p);
}

double wormhole_wait(int servers, double lambda_total, double xbar, double worm_flits) {
  switch (servers) {
    case 1:
      return mg1_wait_wormhole(lambda_total, xbar, worm_flits);
    case 2:
      return mg2_wait_wormhole(lambda_total, xbar, worm_flits);
    default:
      return mgm_wait_wormhole(servers, lambda_total, xbar, worm_flits);
  }
}

double scaled_wait_gg(double poisson_wait, double ca2, double cs2) {
  // Explicit short-circuit: the Poisson path must reproduce the paper's
  // published numbers bit for bit, never through a multiply-by-one.
  if (ca2 == 1.0) return poisson_wait;
  WORMNET_EXPECTS(ca2 >= 0.0);
  // A saturated queue stays saturated regardless of arrival variability (a
  // C_a² = 0 scale of an infinite wait would otherwise produce 0·inf = NaN).
  if (poisson_wait == 0.0 || !std::isfinite(poisson_wait)) return poisson_wait;
  return poisson_wait * allen_cunneen_scale(ca2, cs2);
}

double wormhole_wait_gg(int servers, double lambda_total, double xbar,
                        double worm_flits, double ca2) {
  return scaled_wait_gg(wormhole_wait(servers, lambda_total, xbar, worm_flits),
                        ca2, wormhole_cb2(xbar, worm_flits));
}

}  // namespace wormnet::queueing

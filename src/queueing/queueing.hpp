// wormnet/queueing/queueing.hpp
//
// Queueing-theory kernels used by the analytical wormhole model of
// Greenberg & Guan (ICPP 1997).  Equation numbers refer to that paper.
//
// Conventions
// -----------
//  * `lambda` is the TOTAL message arrival rate offered to the queue
//    (messages per cycle).  For an m-server channel bundle this is the sum
//    over the m physical links — the paper's erratum at its Eq. 21/23 makes
//    this explicit for the fat-tree up-link pair (2·λ_{l,l+1}).
//  * `xbar` is the mean service time per message in cycles.
//  * `cb2` is the squared coefficient of variation of service time,
//    Var[x]/x̄².
//  * Every wait function returns the *mean waiting time in queue* (time from
//    arrival until service begins), not the sojourn time.
//  * Unstable inputs (utilization >= 1) return +infinity rather than a
//    negative value from the raw formula; the saturation solver relies on
//    this monotone blow-up.
#pragma once

namespace wormnet::queueing {

/// Server utilization rho = lambda * xbar / m.
double utilization(double lambda, double xbar, int servers = 1);

/// True when the queue is stable (rho < 1, with a tiny safety margin so the
/// downstream 1/(1-rho) terms stay finite in double arithmetic).
bool stable(double lambda, double xbar, int servers = 1);

/// Squared coefficient of variation of wormhole channel service time, Eq. 5:
///     C_b^2 = (x̄ - s_f)^2 / x̄^2
/// where s_f is the worm length in flits.  Rationale (Draper & Ghosh): the
/// deterministic part of a channel's service time is the s_f cycles of flit
/// transmission; all variance comes from the blocking term (x̄ - s_f), and
/// approximating the blocking time's standard deviation by its mean gives
/// sigma_b = x̄ - s_f.
double wormhole_cb2(double xbar, double worm_flits);

/// M/G/1 mean wait, Eq. 4:  W = rho * x̄ * (1 + C_b²) / (2 (1 - rho)).
/// Returns +inf when unstable, 0 when lambda == 0.
double mg1_wait(double lambda, double xbar, double cb2);

/// M/G/1 mean wait with the wormhole variance approximation folded in
/// (the paper's Eq. 6).
double mg1_wait_wormhole(double lambda, double xbar, double worm_flits);

/// Hokstad's M/G/2 mean-wait approximation as used by the paper, Eq. 7:
///     W = lambda² x̄³ (1 + C_b²) / (2 (4 - lambda² x̄²))
/// `lambda` is the TOTAL rate offered to the two-server channel.
/// Returns +inf when unstable (lambda * x̄ >= 2), 0 when lambda == 0.
double mg2_wait_hokstad(double lambda, double xbar, double cb2);

/// Hokstad M/G/2 with the wormhole variance approximation (Eq. 8).
double mg2_wait_wormhole(double lambda, double xbar, double worm_flits);

/// Erlang-C: probability an arrival to an M/M/m queue with offered load
/// a = lambda * x̄ (in Erlangs) must wait.  Exact; used both by the
/// generalized M/G/m kernel and as a test oracle.
double erlang_c(int servers, double offered_load);

/// Exact M/M/1 mean wait  W = rho x̄ / (1 - rho); test oracle.
double mm1_wait(double lambda, double xbar);

/// Exact M/M/m mean wait  W = C(m, a) * x̄ / (m - a); test oracle and the
/// base of the M/G/m approximation below.
double mmm_wait(int servers, double lambda, double xbar);

/// Generalized M/G/m mean-wait approximation (Lee–Longton form, the standard
/// generalization consistent with Hokstad's study):
///     W_{M/G/m} ≈ (1 + C_b²)/2 · W_{M/M/m}.
/// For m == 1 this is exact (it reduces to Pollaczek–Khinchine).  The paper's
/// conclusion names >2-server channels as the natural extension of its
/// framework; this kernel backs the generalized fat-tree in wormnet::core.
double mgm_wait(int servers, double lambda, double xbar, double cb2);

/// Generalized M/G/m with the wormhole variance approximation.
double mgm_wait_wormhole(int servers, double lambda, double xbar, double worm_flits);

/// Allen–Cunneen G/G/m correction relative to the M/G/m kernels above:
///     W_{G/G/m} ≈ (C_a² + C_s²)/2 · W_{M/M/m}
///               = W_{M/G/m} · (C_a² + C_s²)/(1 + C_s²),
/// so a non-Poisson arrival stream with SCV C_a² scales the Poisson wait by
/// this factor.  Exactly 1 at C_a² = 1 (the Poisson paths stay bit-identical
/// through it, though callers short-circuit anyway).
double allen_cunneen_scale(double ca2, double cs2);

/// G/G/1 mean wait (Allen–Cunneen / Kingman form of Pollaczek–Khinchine):
///     W = rho * x̄ * (C_a² + C_s²) / (2 (1 - rho)).
/// Reduces to mg1_wait at C_a² = 1.  Returns +inf when unstable.
double gg1_wait(double lambda, double xbar, double ca2, double cs2);

/// G/G/m mean wait, Allen–Cunneen:  W ≈ (C_a² + C_s²)/2 · W_{M/M/m}.
/// Reduces to mgm_wait at C_a² = 1.  `lambda` is the total rate.
double ggm_wait(int servers, double lambda, double xbar, double ca2, double cs2);

/// The one home of the guard-and-scale rule for retrofitting a Poisson wait
/// to arrival SCV `ca2`: ca2 == 1 returns `poisson_wait` untouched (bit
/// identity, never a multiply-by-computed-1), a zero or diverged wait stays
/// as is (saturation dominates variability; 0·inf must not make NaN), and
/// everything else scales by allen_cunneen_scale(ca2, cs2).  Both
/// wormhole_wait_gg and ChannelSolver::bundle_wait route through this.
double scaled_wait_gg(double poisson_wait, double ca2, double cs2);

/// Wormhole blocking-probability correction, Eq. 10:
///     P(i|j) = 1 - m * (lambda_in / lambda_out_total) * R_ij
/// the probability that the messages "in service" at outgoing channel j in
/// the M/G/m model emanate from inputs other than i (a link already occupied
/// by a worm cannot present another arrival).  Clamped into [0, 1]: the
/// formula is itself an approximation and can go negative at extreme rate
/// ratios.
///
///  * `servers`            m, the number of physical links in bundle j
///  * `lambda_in`          total message rate on incoming physical link i
///  * `lambda_out_total`   total message rate into bundle j (all m links)
///  * `route_prob`         R(i|j), probability a message from i heads to j
double blocking_probability(int servers, double lambda_in, double lambda_out_total,
                            double route_prob);

/// Mean waiting time of an m-server wormhole channel evaluated with the
/// kernels above: dispatches to Eq. 6 (m=1), Eq. 8 (m=2) or the generalized
/// M/G/m (m>2).  `lambda_total` is the whole bundle's rate.
double wormhole_wait(int servers, double lambda_total, double xbar, double worm_flits);

/// Bursty-arrivals form: the paper's wormhole wait scaled by the
/// Allen–Cunneen factor for an arrival stream of SCV `ca2` (the QNA-style
/// extension the arrivals subsystem threads through the model).  Returns
/// wormhole_wait unchanged — bit for bit — when ca2 == 1.
double wormhole_wait_gg(int servers, double lambda_total, double xbar,
                        double worm_flits, double ca2);

}  // namespace wormnet::queueing

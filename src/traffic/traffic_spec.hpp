// wormnet/traffic/traffic_spec.hpp
//
// The single source of truth for destination distributions, shared by the
// analytical model and the flit-level simulator.  The paper's assumption 1
// (uniform destinations) is just one point in this catalog; the others probe
// — and, through core::build_traffic_model, *model* — the workloads where
// the uniform closed forms stop holding.
//
// A TrafficSpec answers the same question two ways, guaranteed consistent:
//  * pair_weight(s, d, N) — the exact probability P(dest = d | src = s),
//    consumed by the route-enumeration model builder;
//  * sample_destination(s, N, rng) — a draw from that same distribution,
//    consumed by the simulator's TrafficSource.
//
// Catalog:
//  * Uniform          — uniform over the other processors (assumption 1);
//  * Hotspot(f, h)    — with probability f target processor h, otherwise
//                       uniform over the others (h's own messages are always
//                       uniform); the classic ejection-skew stress;
//  * BitComplement    — fixed permutation d = N-1-s (crosses the root of a
//                       fat-tree); requires even N;
//  * Transpose        — d = transpose of s in the sqrt(N) x sqrt(N) grid,
//                       diagonal sources fall back to d = s+1 mod N;
//                       requires square N;
//  * Permutation      — an arbitrary fixed fixpoint-free permutation;
//  * NearestNeighbor(p) — with probability p target s±1 mod N (locality),
//                       otherwise uniform over the others;
//  * Matrix           — an arbitrary dense row-stochastic TrafficMatrix.
//
// Specs are small value types (the Matrix payload is shared), cheap to copy
// into SimConfig and model builders.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "traffic/traffic_matrix.hpp"
#include "util/rng.hpp"

namespace wormnet::traffic {

/// Which destination distribution a TrafficSpec denotes.
enum class Pattern {
  Uniform,
  Hotspot,
  BitComplement,
  Transpose,
  Permutation,
  NearestNeighbor,
  Matrix,
};

/// A destination distribution, independent of any concrete network size
/// (except Permutation/Matrix, which carry their own N and are checked
/// against the topology at use).
class TrafficSpec {
 public:
  /// Defaults to the paper's assumption 1.
  TrafficSpec() = default;

  static TrafficSpec uniform();
  /// With probability `fraction` target `hotspot_node`, else uniform.
  static TrafficSpec hotspot(double fraction, int hotspot_node = 0);
  static TrafficSpec bit_complement();
  static TrafficSpec transpose();
  /// Fixed permutation: messages from s always go to dest_of[s] != s.
  static TrafficSpec permutation(std::vector<int> dest_of);
  /// With probability `locality` target s±1 mod N, else uniform.
  static TrafficSpec nearest_neighbor(double locality);
  /// Arbitrary dense destination matrix (validated: rows sum to 0 or 1).
  static TrafficSpec matrix(TrafficMatrix m);

  Pattern pattern() const { return pattern_; }
  /// Human-readable tag, e.g. "hotspot(f=0.10,node=0)".
  std::string name() const;

  /// Hotspot parameters (meaningful for Pattern::Hotspot only).
  double hotspot_fraction() const { return fraction_; }
  int hotspot_node() const { return hotspot_node_; }

  /// Empty string when the spec is usable on `num_processors` PEs, else the
  /// problem (odd N for bit-complement, non-square N for transpose, size
  /// mismatch for permutation/matrix, ...).
  std::string check(int num_processors) const;

  /// P(dest = dst | src).  Rows are stochastic: summing over dst gives
  /// injection_weight(src).  pair_weight(s, s, N) == 0 always.
  double pair_weight(int src, int dst, int num_processors) const;

  /// Row sum of `src` — 1 for every built-in pattern; 0 for a silent row of
  /// a custom matrix.
  double injection_weight(int src, int num_processors) const;

  /// Materialize the dense matrix at N (tests, reports, custom rescaling).
  TrafficMatrix materialize(int num_processors) const;

  /// True when the distribution is invariant under every routing-preserving
  /// automorphism that fixes the processors appended to `pinned_procs`:
  /// Uniform pins nothing, Hotspot pins its target node.  Patterns tied to
  /// processor numbering (permutations, matrices, ring neighbors) return
  /// false.  The collapsed model builder consults this before attempting a
  /// symmetric quotient.
  bool symmetric(std::vector<int>& pinned_procs) const;

  /// For deterministic one-destination-per-source patterns (BitComplement,
  /// Transpose, Permutation), the fixed destination of `src`; -1 for
  /// randomized patterns.  Lets builders seed N (src, dst) pairs instead of
  /// scanning N² pair_weight entries.
  int fixed_destination(int src, int num_processors) const;

  /// The dense matrix payload (Pattern::Matrix only; nullptr otherwise).
  const TrafficMatrix* matrix_payload() const;

  /// Draw a destination != src from this spec's distribution for `src`.
  /// Deterministic function of the rng state; the empirical law is exactly
  /// pair_weight(src, ., N).
  int sample_destination(int src, int num_processors, util::Rng& rng) const;

 private:
  /// Matrix payload plus the per-row cumulative sums sampling binary-searches.
  struct MatrixHolder {
    TrafficMatrix m;
    std::vector<double> row_cdf;  // row-major inclusive prefix sums
  };

  int grid_side(int num_processors) const;

  Pattern pattern_ = Pattern::Uniform;
  double fraction_ = 0.0;  ///< Hotspot fraction / NearestNeighbor locality
  int hotspot_node_ = 0;
  std::vector<int> perm_;
  std::shared_ptr<const MatrixHolder> matrix_;
};

}  // namespace wormnet::traffic

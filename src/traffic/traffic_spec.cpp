#include "traffic/traffic_spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace wormnet::traffic {

TrafficSpec TrafficSpec::uniform() { return TrafficSpec{}; }

TrafficSpec TrafficSpec::hotspot(double fraction, int hotspot_node) {
  WORMNET_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  WORMNET_EXPECTS(hotspot_node >= 0);
  TrafficSpec spec;
  spec.pattern_ = Pattern::Hotspot;
  spec.fraction_ = fraction;
  spec.hotspot_node_ = hotspot_node;
  return spec;
}

TrafficSpec TrafficSpec::bit_complement() {
  TrafficSpec spec;
  spec.pattern_ = Pattern::BitComplement;
  return spec;
}

TrafficSpec TrafficSpec::transpose() {
  TrafficSpec spec;
  spec.pattern_ = Pattern::Transpose;
  return spec;
}

TrafficSpec TrafficSpec::permutation(std::vector<int> dest_of) {
  TrafficSpec spec;
  spec.pattern_ = Pattern::Permutation;
  spec.perm_ = std::move(dest_of);
  return spec;
}

TrafficSpec TrafficSpec::nearest_neighbor(double locality) {
  WORMNET_EXPECTS(locality >= 0.0 && locality <= 1.0);
  TrafficSpec spec;
  spec.pattern_ = Pattern::NearestNeighbor;
  spec.fraction_ = locality;
  return spec;
}

TrafficSpec TrafficSpec::matrix(TrafficMatrix m) {
  WORMNET_EXPECTS(m.validate().empty());
  auto holder = std::make_shared<MatrixHolder>();
  const int n = m.size();
  holder->row_cdf.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < n; ++s) {
    double cum = 0.0;
    for (int d = 0; d < n; ++d) {
      cum += m.at(s, d);
      holder->row_cdf[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                      static_cast<std::size_t>(d)] = cum;
    }
  }
  holder->m = std::move(m);
  TrafficSpec spec;
  spec.pattern_ = Pattern::Matrix;
  spec.matrix_ = std::move(holder);
  return spec;
}

std::string TrafficSpec::name() const {
  char buf[64];
  switch (pattern_) {
    case Pattern::Uniform:
      return "uniform";
    case Pattern::Hotspot:
      std::snprintf(buf, sizeof buf, "hotspot(f=%.2f,node=%d)", fraction_,
                    hotspot_node_);
      return buf;
    case Pattern::BitComplement:
      return "bit-complement";
    case Pattern::Transpose:
      return "transpose";
    case Pattern::Permutation:
      return "permutation";
    case Pattern::NearestNeighbor:
      std::snprintf(buf, sizeof buf, "nearest-neighbor(p=%.2f)", fraction_);
      return buf;
    case Pattern::Matrix:
      return "matrix";
  }
  return "unknown";
}

int TrafficSpec::grid_side(int num_processors) const {
  // Round-and-correct integer sqrt: O(1) — this sits on the simulator's
  // per-message sampling path and the builder's O(N²) pair_weight path.
  int side = static_cast<int>(std::lround(std::sqrt(static_cast<double>(num_processors))));
  while (side > 0 && side * side > num_processors) --side;
  while ((side + 1) * (side + 1) <= num_processors) ++side;
  return side;
}

std::string TrafficSpec::check(int num_processors) const {
  if (num_processors < 2) return "need at least 2 processors";
  switch (pattern_) {
    case Pattern::Uniform:
    case Pattern::NearestNeighbor:
      return "";
    case Pattern::Hotspot:
      if (hotspot_node_ >= num_processors) return "hotspot node out of range";
      return "";
    case Pattern::BitComplement:
      if (num_processors % 2 != 0) return "bit-complement needs an even processor count";
      return "";
    case Pattern::Transpose: {
      const int side = grid_side(num_processors);
      if (side * side != num_processors)
        return "transpose needs a square processor count";
      return "";
    }
    case Pattern::Permutation: {
      if (static_cast<int>(perm_.size()) != num_processors)
        return "permutation size does not match the processor count";
      std::vector<char> hit(static_cast<std::size_t>(num_processors), 0);
      for (int s = 0; s < num_processors; ++s) {
        const int d = perm_[static_cast<std::size_t>(s)];
        if (d < 0 || d >= num_processors) return "permutation entry out of range";
        if (d == s) return "permutation has a fixed point (src == dest)";
        if (hit[static_cast<std::size_t>(d)]) return "permutation repeats a destination";
        hit[static_cast<std::size_t>(d)] = 1;
      }
      return "";
    }
    case Pattern::Matrix:
      if (!matrix_ || matrix_->m.size() != num_processors)
        return "matrix size does not match the processor count";
      return "";
  }
  return "unknown pattern";
}

double TrafficSpec::pair_weight(int src, int dst, int num_processors) const {
  WORMNET_EXPECTS(src >= 0 && src < num_processors);
  WORMNET_EXPECTS(dst >= 0 && dst < num_processors);
  if (src == dst) return 0.0;
  const double uniform_w = 1.0 / (num_processors - 1);
  switch (pattern_) {
    case Pattern::Uniform:
      return uniform_w;
    case Pattern::Hotspot: {
      if (src == hotspot_node_) return uniform_w;
      const double spread = (1.0 - fraction_) * uniform_w;
      return dst == hotspot_node_ ? fraction_ + spread : spread;
    }
    case Pattern::BitComplement:
      return dst == num_processors - 1 - src ? 1.0 : 0.0;
    case Pattern::Transpose: {
      const int side = grid_side(num_processors);
      int want = (src % side) * side + src / side;
      if (want == src) want = (src + 1) % num_processors;
      return dst == want ? 1.0 : 0.0;
    }
    case Pattern::Permutation:
      return dst == perm_[static_cast<std::size_t>(src)] ? 1.0 : 0.0;
    case Pattern::NearestNeighbor: {
      const int up = (src + 1) % num_processors;
      const int down = (src + num_processors - 1) % num_processors;
      double w = (1.0 - fraction_) * uniform_w;
      if (up == down) {
        if (dst == up) w += fraction_;
      } else {
        if (dst == up || dst == down) w += fraction_ / 2.0;
      }
      return w;
    }
    case Pattern::Matrix:
      return matrix_->m.at(src, dst);
  }
  return 0.0;
}

double TrafficSpec::injection_weight(int src, int num_processors) const {
  if (pattern_ == Pattern::Matrix) return matrix_->m.row_sum(src);
  WORMNET_EXPECTS(src >= 0 && src < num_processors);
  return 1.0;
}

TrafficMatrix TrafficSpec::materialize(int num_processors) const {
  WORMNET_EXPECTS(check(num_processors).empty());
  TrafficMatrix m(num_processors);
  for (int s = 0; s < num_processors; ++s) {
    for (int d = 0; d < num_processors; ++d) {
      if (d == s) continue;
      const double w = pair_weight(s, d, num_processors);
      if (w > 0.0) m.set(s, d, w);
    }
  }
  return m;
}

bool TrafficSpec::symmetric(std::vector<int>& pinned_procs) const {
  switch (pattern_) {
    case Pattern::Uniform:
      return true;
    case Pattern::Hotspot:
      pinned_procs.push_back(hotspot_node_);
      return true;
    default:
      return false;
  }
}

int TrafficSpec::fixed_destination(int src, int num_processors) const {
  WORMNET_EXPECTS(src >= 0 && src < num_processors);
  switch (pattern_) {
    case Pattern::BitComplement:
      return num_processors - 1 - src;
    case Pattern::Transpose: {
      const int side = grid_side(num_processors);
      const int want = (src % side) * side + src / side;
      return want == src ? (src + 1) % num_processors : want;
    }
    case Pattern::Permutation:
      return perm_[static_cast<std::size_t>(src)];
    default:
      return -1;
  }
}

const TrafficMatrix* TrafficSpec::matrix_payload() const {
  return matrix_ ? &matrix_->m : nullptr;
}

int TrafficSpec::sample_destination(int src, int num_processors, util::Rng& rng) const {
  WORMNET_EXPECTS(num_processors >= 2);
  WORMNET_EXPECTS(src >= 0 && src < num_processors);
  // Uniform over the other processors; the same draw sequence the simulator
  // has always used, so seeded runs stay bit-identical across the refactor.
  auto uniform_other = [&] {
    const auto draw = static_cast<int>(
        rng.uniform_int(static_cast<std::uint64_t>(num_processors - 1)));
    return draw >= src ? draw + 1 : draw;
  };
  switch (pattern_) {
    case Pattern::Uniform:
      return uniform_other();
    case Pattern::Hotspot: {
      if (rng.bernoulli(fraction_) && src != hotspot_node_) return hotspot_node_;
      return uniform_other();
    }
    case Pattern::BitComplement:
      return num_processors - 1 - src;  // != src because N is even
    case Pattern::Transpose: {
      const int side = grid_side(num_processors);
      const int dest = (src % side) * side + src / side;
      return dest == src ? (src + 1) % num_processors : dest;
    }
    case Pattern::Permutation:
      return perm_[static_cast<std::size_t>(src)];
    case Pattern::NearestNeighbor: {
      if (rng.bernoulli(fraction_)) {
        const int up = (src + 1) % num_processors;
        const int down = (src + num_processors - 1) % num_processors;
        if (up == down) return up;
        return rng.pick_of_two() ? down : up;
      }
      return uniform_other();
    }
    case Pattern::Matrix: {
      const auto n = static_cast<std::size_t>(num_processors);
      const auto* row = matrix_->row_cdf.data() + static_cast<std::size_t>(src) * n;
      const double total = row[n - 1];
      WORMNET_EXPECTS(total > 0.0);  // sampling a silent source is a caller bug
      const double u = rng.uniform() * total;
      const auto* it = std::upper_bound(row, row + n, u);
      const int dst = static_cast<int>(std::min(it - row, static_cast<std::ptrdiff_t>(n - 1)));
      WORMNET_ENSURES(dst != src);
      return dst;
    }
  }
  return uniform_other();
}

}  // namespace wormnet::traffic

#include "traffic/traffic_matrix.hpp"

#include <cmath>
#include <sstream>

namespace wormnet::traffic {

TrafficMatrix::TrafficMatrix(int n) : n_(n) {
  WORMNET_EXPECTS(n >= 2);
  w_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
}

void TrafficMatrix::set(int s, int d, double weight) {
  WORMNET_EXPECTS(s >= 0 && s < n_ && d >= 0 && d < n_);
  WORMNET_EXPECTS(s != d);
  WORMNET_EXPECTS(weight >= 0.0);
  w_[static_cast<std::size_t>(s) * static_cast<std::size_t>(n_) +
     static_cast<std::size_t>(d)] = weight;
}

void TrafficMatrix::add(int s, int d, double weight) {
  WORMNET_EXPECTS(s >= 0 && s < n_ && d >= 0 && d < n_);
  WORMNET_EXPECTS(s != d);
  WORMNET_EXPECTS(weight >= 0.0);
  w_[static_cast<std::size_t>(s) * static_cast<std::size_t>(n_) +
     static_cast<std::size_t>(d)] += weight;
}

double TrafficMatrix::row_sum(int s) const {
  WORMNET_EXPECTS(s >= 0 && s < n_);
  double sum = 0.0;
  for (int d = 0; d < n_; ++d) sum += at(s, d);
  return sum;
}

double TrafficMatrix::col_sum(int d) const {
  WORMNET_EXPECTS(d >= 0 && d < n_);
  double sum = 0.0;
  for (int s = 0; s < n_; ++s) sum += at(s, d);
  return sum;
}

void TrafficMatrix::normalize_rows() {
  for (int s = 0; s < n_; ++s) {
    const double sum = row_sum(s);
    if (sum <= 0.0) continue;
    for (int d = 0; d < n_; ++d) {
      const std::size_t idx = static_cast<std::size_t>(s) * static_cast<std::size_t>(n_) +
                              static_cast<std::size_t>(d);
      w_[idx] /= sum;
    }
  }
}

std::string TrafficMatrix::validate() const {
  std::ostringstream problems;
  if (n_ < 2) {
    problems << "matrix has fewer than 2 processors; ";
    return problems.str();
  }
  for (int s = 0; s < n_; ++s) {
    if (at(s, s) != 0.0) problems << "row " << s << " has a non-zero diagonal; ";
    double sum = 0.0;
    for (int d = 0; d < n_; ++d) {
      const double w = at(s, d);
      if (!(w >= 0.0) || !std::isfinite(w)) {
        problems << "entry (" << s << ", " << d << ") is negative or non-finite; ";
        return problems.str();
      }
      sum += w;
    }
    if (sum != 0.0 && std::abs(sum - 1.0) > 1e-9)
      problems << "row " << s << " sums to " << sum << " (want 0 or 1); ";
  }
  return problems.str();
}

}  // namespace wormnet::traffic

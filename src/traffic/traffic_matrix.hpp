// wormnet/traffic/traffic_matrix.hpp
//
// A dense destination-distribution matrix: entry (s, d) is the probability
// that a message generated at processor s is addressed to processor d.  This
// is the fully general way load enters the analytical model — every built-in
// TrafficSpec pattern materializes to one, and users can hand a custom
// matrix straight to core::build_traffic_model or the simulator.
//
// Invariants (enforced by validate()):
//  * entries are non-negative and finite;
//  * the diagonal is zero (a processor never addresses itself);
//  * every row sums to 1 (the processor injects at the full rate λ₀) or to 0
//    (a silent processor — allowed in the analytical model, rejected by the
//    simulator's TrafficSource, which generates arrivals at every PE).
#pragma once

#include <string>
#include <vector>

#include "util/assert.hpp"

namespace wormnet::traffic {

/// Row-stochastic destination matrix over `size()` processors.
class TrafficMatrix {
 public:
  TrafficMatrix() = default;
  /// An all-zero n x n matrix; fill with set()/add() then normalize or
  /// validate.
  explicit TrafficMatrix(int n);

  /// Number of processors (rows == columns).
  int size() const { return n_; }

  /// P(dest = d | src = s).
  double at(int s, int d) const {
    WORMNET_EXPECTS(s >= 0 && s < n_ && d >= 0 && d < n_);
    return w_[static_cast<std::size_t>(s) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(d)];
  }

  /// Set one entry (s != d, weight >= 0).
  void set(int s, int d, double weight);
  /// Accumulate into one entry (s != d, weight >= 0).
  void add(int s, int d, double weight);

  /// Sum of row `s` — the injection weight of processor s.
  double row_sum(int s) const;

  /// Sum of column `d` — the ejection weight of processor d at unit λ₀.
  double col_sum(int d) const;

  /// Scale every non-empty row to sum to exactly 1.
  void normalize_rows();

  /// Empty string when the invariants hold, else an explanation.
  std::string validate() const;

 private:
  int n_ = 0;
  std::vector<double> w_;  // row-major n_ x n_
};

}  // namespace wormnet::traffic

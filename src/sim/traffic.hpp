// wormnet/sim/traffic.hpp
//
// Message generation.  Each processor owns an independent RNG stream (keyed
// by seed and processor id, so results do not depend on event interleaving)
// and produces arrivals by one of:
//  * Poisson   — exponential inter-arrival gaps at rate λ₀ (the paper's
//                assumption); arrivals in continuous time, usable at the
//                next cycle boundary;
//  * Bernoulli — geometric gaps (one coin flip per cycle at probability λ₀);
//  * Overload  — a fresh message the moment the source drains (closed-loop
//                saturation probe).
//
// Destinations are drawn from a traffic::TrafficSpec — the same object the
// analytical model builder routes, so "what the simulator does" and "what
// the model assumes" cannot drift apart.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/config.hpp"
#include "traffic/traffic_spec.hpp"
#include "util/rng.hpp"

namespace wormnet::sim {

/// One pending arrival event.
struct Arrival {
  long cycle = 0;  ///< first cycle the message exists
  int proc = 0;    ///< generating processor
};

/// Generates the per-processor arrival sequence in global cycle order.
class TrafficSource {
 public:
  /// `lambda0` is messages/cycle/processor.  For Overload the rate is
  /// ignored; next_arrival() never fires and callers use make_destination()
  /// plus their own replenish logic.  `spec` must pass check() for
  /// `num_processors` and give every source full injection weight (the
  /// stochastic arrival processes drive every PE at λ₀).
  TrafficSource(int num_processors, double lambda0, ArrivalProcess process,
                std::uint64_t seed,
                traffic::TrafficSpec spec = traffic::TrafficSpec::uniform());

  /// True if an arrival is due at or before `cycle`.
  bool has_arrival(long cycle) const;

  /// Pop the earliest due arrival (precondition: has_arrival(cycle)).
  Arrival pop_arrival(long cycle);

  /// Destination != src for a message from `src`, drawn from the spec's
  /// distribution using the source's stream.
  int make_destination(int src);

  /// Continuous time of the earliest scheduled arrival, +infinity when no
  /// arrival is scheduled (Overload sources, or λ₀ = 0).  Pure peek: the
  /// simulator's idle-cycle fast-forward jumps to ceil() of this value.
  double next_arrival_time() const;

  /// The destination distribution in force.
  const traffic::TrafficSpec& spec() const { return spec_; }

 private:
  void schedule_next(int proc, double from_time);

  int num_procs_;
  double lambda0_;
  ArrivalProcess process_;
  traffic::TrafficSpec spec_;
  std::vector<util::Rng> rng_;          // per processor
  std::vector<double> next_time_;       // per processor, continuous
  // Min-heap of (time, proc) so only due processors are touched per cycle.
  using HeapEntry = std::pair<double, int>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap_;
};

}  // namespace wormnet::sim

// wormnet/sim/traffic.hpp
//
// Message generation.  Each processor owns an independent RNG stream (keyed
// by seed and processor id, so results do not depend on event interleaving)
// and produces arrivals either
//  * open-loop — inter-arrival gaps drawn from an arrivals::ArrivalSpec at
//                rate λ₀ (Poisson is the paper's assumption 1 and samples
//                bit-identically to the pre-subsystem code; Bernoulli,
//                deterministic, batch, MMPP-2 and trace gaps share the same
//                machinery), arrivals in continuous time, usable at the
//                next cycle boundary; or
//  * Overload  — a fresh message the moment the source drains (closed-loop
//                saturation probe; no arrival process at all).
//
// Destinations are drawn from a traffic::TrafficSpec and gaps from an
// arrivals::ArrivalSpec — the same objects the analytical model consumes
// (route enumeration and C_a² propagation respectively), so "what the
// simulator does" and "what the model assumes" cannot drift apart.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "sim/config.hpp"
#include "traffic/traffic_spec.hpp"
#include "util/rng.hpp"

namespace wormnet::sim {

/// One pending arrival event.
struct Arrival {
  long cycle = 0;  ///< first cycle the message exists
  int proc = 0;    ///< generating processor
};

/// Generates the per-processor arrival sequence in global cycle order.
class TrafficSource {
 public:
  /// `lambda0` is messages/cycle/processor.  For Overload the rate is
  /// ignored; next_arrival() never fires and callers use make_destination()
  /// plus their own replenish logic.  `spec` must pass check() for
  /// `num_processors` and give every source full injection weight (the
  /// stochastic arrival processes drive every PE at λ₀).  `arrival` is the
  /// inter-arrival law for open-loop modes (the Bernoulli mode is shorthand
  /// for ArrivalSpec::bernoulli() and must not be combined with a
  /// non-Poisson `arrival`); its Poisson default draws exactly the legacy
  /// sequence, keeping all seeded goldens bit-identical.
  TrafficSource(int num_processors, double lambda0, ArrivalProcess process,
                std::uint64_t seed,
                traffic::TrafficSpec spec = traffic::TrafficSpec::uniform(),
                arrivals::ArrivalSpec arrival = arrivals::ArrivalSpec::poisson());

  /// True if an arrival is due at or before `cycle`.
  bool has_arrival(long cycle) const;

  /// Pop the earliest due arrival (precondition: has_arrival(cycle)).
  Arrival pop_arrival(long cycle);

  /// Destination != src for a message from `src`, drawn from the spec's
  /// distribution using the source's stream.
  int make_destination(int src);

  /// Continuous time of the earliest scheduled arrival, +infinity when no
  /// arrival is scheduled (Overload sources, or λ₀ = 0).  Pure peek: the
  /// simulator's idle-cycle fast-forward jumps to ceil() of this value.
  double next_arrival_time() const;

  /// The destination distribution in force.
  const traffic::TrafficSpec& spec() const { return spec_; }

  /// The inter-arrival law in force (ArrivalSpec::bernoulli() when the
  /// legacy Bernoulli mode was requested; meaningless under Overload).
  const arrivals::ArrivalSpec& arrival_process() const { return arrival_; }

 private:
  void schedule_next(int proc, double from_time);

  int num_procs_;
  double lambda0_;
  ArrivalProcess process_;
  traffic::TrafficSpec spec_;
  arrivals::ArrivalSpec arrival_;
  std::vector<util::Rng> rng_;          // per processor
  std::vector<arrivals::ArrivalState> arrival_state_;  // per processor
  std::vector<double> next_time_;       // per processor, continuous
  // Min-heap of (time, proc) so only due processors are touched per cycle.
  using HeapEntry = std::pair<double, int>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap_;
};

}  // namespace wormnet::sim

#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace wormnet::sim {

namespace {

/// Fail-fast configuration gate: a negative load, zero-flit worm or broken
/// arrival spec throws a clear std::invalid_argument instead of silently
/// misbehaving (or aborting through a bare contract macro).
SimConfig validated(SimConfig cfg) {
  if (const std::string problem = cfg.validate(); !problem.empty()) {
    throw std::invalid_argument("wormnet: " + problem);
  }
  return cfg;
}

}  // namespace

Simulator::Simulator(const SimNetwork& net, SimConfig cfg)
    : net_(net),
      cfg_(validated(std::move(cfg))),
      traffic_(net.topology().num_processors(),
               cfg_.load_flits / static_cast<double>(cfg_.worm_flits),
               cfg_.arrivals, cfg_.seed, cfg_.traffic, cfg_.arrival_process),
      route_rng_(util::Rng::stream(cfg_.seed, 0xADA9711CULL)),
      num_procs_(net.topology().num_processors()),
      inj_channel_(net.injection_channels().data()),
      single_lane_(net.max_lanes() == 1),
      link_features_(net.has_link_features()),
      fault_mode_(!cfg_.fault_events.empty()),
      // Fault mode forces the bandwidth-arbitrated kernel: a downed link is
      // just a link that refuses every claim, so one claim-time check covers
      // stalling, and healthy runs (no events) keep their exact kernel.
      lane_mode_(net.max_lanes() > 1 || net.has_link_features() || fault_mode_),
      // Overload sources are never idle after cycle 0, so fast-forward has
      // nothing to skip there; gate it off entirely for clarity.
      fast_forward_(!cfg_.disable_fast_forward &&
                    cfg_.arrivals != ArrivalProcess::Overload),
      trace_(cfg_.trace) {
  if (cfg_.latency_histogram) {
    result_.latency_hist.emplace(0.0, cfg_.histogram_max, cfg_.histogram_bins);
  }
  lane_state_.assign(static_cast<std::size_t>(net.num_lanes()), {});
  bundle_state_.assign(static_cast<std::size_t>(net.num_bundles()), {});
  for (int b = 0; b < net.num_bundles(); ++b)
    bundle_state_[static_cast<std::size_t>(b)].free_count = net.bundle_lanes(b);
  // Statically degraded topologies (a FaultedTopology with no scripted
  // events): dead links still enumerate as channels, so retire their lanes
  // up front — the routing never picks them, but grant()'s same-bundle
  // fallback otherwise could, marching a worm over a failed link.
  for (int ch = 0; ch < net.num_channels(); ++ch) {
    const topo::DirectedChannel& dc = net.channels().at(ch);
    if (net.topology().link_ok(dc.src_node, dc.src_port)) continue;
    const int bundle = net.channel(ch).bundle;
    for (int lane = net.lane_begin(ch); lane < net.lane_begin(ch + 1); ++lane) {
      lane_state_[static_cast<std::size_t>(lane)].owner = -2;
      --bundle_state_[static_cast<std::size_t>(bundle)].free_count;
    }
  }
  sources_.assign(static_cast<std::size_t>(net.topology().num_processors()), {});
  if (lane_mode_)
    channel_claim_.assign(static_cast<std::size_t>(net.num_channels()), -1);
  if (link_features_) {
    bool finite_depth = false;
    for (int ch = 0; ch < net.num_channels() && !finite_depth; ++ch)
      finite_depth = net.channel_buffer_depth(ch) != util::kInfiniteBufferDepth;
    if (finite_depth) {
      // "Never": far enough back that last == cycle - period can't hold.
      lane_last_flit_.assign(static_cast<std::size_t>(net.num_lanes()),
                             std::numeric_limits<long>::min() / 2);
      lane_streak_.assign(static_cast<std::size_t>(net.num_lanes()), 0);
    }
  }
  if (fault_mode_) {
    if (const std::string problem = check_fault_events(net.topology(), cfg_);
        !problem.empty()) {
      throw std::invalid_argument("wormnet: " + problem);
    }
    fault_events_ = cfg_.fault_events;
    std::stable_sort(fault_events_.begin(), fault_events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.cycle < b.cycle;
                     });
    link_down_.assign(static_cast<std::size_t>(net.num_channels()), 0);
  }
  if (cfg_.channel_stats)
    result_.channels.assign(static_cast<std::size_t>(net.num_channels()), {});
}

void Simulator::add_message(long cycle, int src, int dst) {
  WORMNET_EXPECTS(cycle >= 0);
  WORMNET_EXPECTS(src >= 0 && src < net_.topology().num_processors());
  WORMNET_EXPECTS(dst >= 0 && dst < net_.topology().num_processors());
  WORMNET_EXPECTS(src != dst);
  scripted_.push_back({cycle, src, dst});
  scripted_mode_ = true;
}

bool Simulator::in_window(long cycle) const {
  return cycle >= cfg_.warmup_cycles &&
         cycle < cfg_.warmup_cycles + cfg_.measure_cycles;
}

int Simulator::alloc_worm(int src, int dst, long gen, bool tagged) {
  int id;
  if (!free_worms_.empty()) {
    id = free_worms_.back();
    free_worms_.pop_back();
  } else {
    id = static_cast<int>(worms_.size());
    worms_.emplace_back();
    worms_.back().path.reserve(24);
  }
  Worm& w = worms_[static_cast<std::size_t>(id)];
  w.src = src;
  w.dst = dst;
  w.length = cfg_.worm_flits;
  w.gen_time = gen;
  w.inject_start = -1;
  w.src_release = -1;
  w.path.clear();
  w.head_pos = -1;
  w.injected = 0;
  w.ejected = 0;
  w.freed_upto = 0;
  w.stall_until = -1;
  w.last_move = gen;
  w.consuming = false;
  w.waiting_alloc = false;
  w.tagged = tagged;
  w.tombstone = false;
  return id;
}

void Simulator::mark_dirty(int bundle_id) {
  BundleState& b = bundle_state_[static_cast<std::size_t>(bundle_id)];
  if (!b.dirty) {
    b.dirty = true;
    dirty_bundles_.push_back(bundle_id);
  }
}

void Simulator::register_injection(int worm_id, long cycle) {
  (void)cycle;
  Worm& w = worms_[static_cast<std::size_t>(worm_id)];
  const int inj = inj_channel_[w.src];
  const int bundle = net_.channel(inj).bundle;
  Request req{worm_id, inj};
  req.candidates[0] = inj;
  req.num_candidates = 1;
  bundle_state_[static_cast<std::size_t>(bundle)].requests.push_back(req);
  w.waiting_alloc = true;
  mark_dirty(bundle);
}

void Simulator::register_next_hop(int worm_id, int node, long cycle) {
  (void)cycle;
  Worm& w = worms_[static_cast<std::size_t>(worm_id)];
  const topo::Topology& topo = net_.topology();
  const topo::RouteOptions opts = topo.route(node, w.dst);
  WORMNET_ENSURES(opts.size() >= 1);
  // The paper's adaptive rule: pick one candidate at random as the preferred
  // link; the arbiter falls back to any other free link in the same bundle.
  int pick = 0;
  if (opts.size() > 1)
    pick = static_cast<int>(route_rng_.uniform_int(static_cast<std::uint64_t>(opts.size())));
  const int preferred = net_.channels().from(node, opts[pick]);
  const int bundle = net_.bundle_of_port(node, opts[0]);
  // All route candidates must share one bundle (they are the redundant links
  // the multi-server queue models).
  for (int i = 1; i < opts.size(); ++i)
    WORMNET_ENSURES(net_.bundle_of_port(node, opts[i]) == bundle);
  Request req{worm_id, preferred};
  for (int i = 0; i < opts.size(); ++i)
    req.candidates[static_cast<std::size_t>(i)] = net_.channels().from(node, opts[i]);
  req.num_candidates = opts.size();
  bundle_state_[static_cast<std::size_t>(bundle)].requests.push_back(req);
  w.waiting_alloc = true;
  mark_dirty(bundle);
}

int Simulator::find_free_lane(int channel_id) const {
  if (single_lane_) {
    // Lane id == channel id: one latch per channel, no range scan — the
    // common case of grant()'s preferred-link probe stays O(1).
    return lane_state_[static_cast<std::size_t>(channel_id)].owner == -1
               ? channel_id
               : -1;
  }
  const int end = net_.lane_begin(channel_id + 1);
  for (int lane = net_.lane_begin(channel_id); lane < end; ++lane) {
    if (lane_state_[static_cast<std::size_t>(lane)].owner == -1) return lane;
  }
  return -1;
}

void Simulator::grant(int bundle_id, long cycle) {
  BundleState& bs = bundle_state_[static_cast<std::size_t>(bundle_id)];
  // One pass over the queued requests: a request whose candidate links are
  // all busy re-queues (in order) rather than blocking the ones behind it —
  // under faults a bundle can hold a free lane only on a link some worm is
  // not allowed to take.
  std::size_t pending = bs.requests.size();
  while (bs.free_count > 0 && pending-- > 0) {
    const Request req = bs.requests.front();
    bs.requests.pop_front();
    Worm& w = worms_[static_cast<std::size_t>(req.worm)];
    if (w.tombstone) {
      // Dropped by the fault-stall timeout while this request was queued;
      // the slot was held back so a recycled id could never be granted a
      // lane it no longer wants.  Recycle it now.
      w.tombstone = false;
      free_worms_.push_back(req.worm);
      continue;
    }
    // A free lane on the preferred link, else the first free lane on any
    // other CANDIDATE link (the paper's adaptive fallback to the redundant
    // link, restricted to links that still reach the destination).
    int lane = find_free_lane(req.preferred_channel);
    for (int i = 0; i < req.num_candidates && lane == -1; ++i)
      lane = find_free_lane(req.candidates[static_cast<std::size_t>(i)]);
    if (lane == -1) {
      bs.requests.push_back(req);  // retried at the bundle's next release
      continue;
    }
    LaneState& ls = lane_state_[static_cast<std::size_t>(lane)];
    ls.owner = req.worm;
    ls.grant_time = cycle;
    // A re-granted lane's buffer drained when the previous tail passed:
    // the new worm starts with full credit.
    if (!lane_streak_.empty()) lane_streak_[static_cast<std::size_t>(lane)] = 0;
    --bs.free_count;
    w.path.push_back(lane);
    w.waiting_alloc = false;
    w.last_move = cycle;
    if (w.path.size() == 1) {
      w.inject_start = cycle;
      active_.push_back(req.worm);
    }
    last_progress_ = cycle;
  }
}

void Simulator::release_lane(Worm& w, int lane_id, long cycle) {
  LaneState& ls = lane_state_[static_cast<std::size_t>(lane_id)];
  WORMNET_ENSURES(ls.owner != -1);
  const int channel_id = net_.lane_channel(lane_id);
  if (!result_.channels.empty()) {
    // Per-PHYSICAL-channel counters; with L > 1 lanes busy_cycles counts
    // lane-held cycles, so overlapping holds can sum past the window length.
    ChannelStat& st = result_.channels[static_cast<std::size_t>(channel_id)];
    const long w_lo = cfg_.warmup_cycles;
    const long w_hi = cfg_.warmup_cycles + cfg_.measure_cycles;
    const long lo = std::max(ls.grant_time, w_lo);
    const long hi = std::min(cycle, w_hi);
    if (hi > lo) st.busy_cycles += hi - lo;
    if (ls.grant_time >= w_lo && ls.grant_time < w_hi) {
      ++st.worms;
      st.flits += w.length;
    }
  }
  if (fault_mode_ && link_down_[static_cast<std::size_t>(channel_id)]) {
    // The link went down while this worm held the lane: hold it out of
    // service (owner -2, not counted free) until the matching up event.
    ls.owner = -2;
  } else {
    ls.owner = -1;
    const int bundle = net_.channel(channel_id).bundle;
    ++bundle_state_[static_cast<std::size_t>(bundle)].free_count;
    mark_dirty(bundle);
  }
  if (channel_id == inj_channel_[w.src]) {
    w.src_release = cycle;
    on_source_released(w.src, cycle);
  }
}

void Simulator::on_source_released(int proc, long cycle) {
  SourceState& s = sources_[static_cast<std::size_t>(proc)];
  if (cfg_.arrivals == ArrivalProcess::Overload && !scripted_mode_) {
    const int dst = sample_destination_overload(proc);
    const int id = alloc_worm(proc, dst, cycle, false);
    register_injection(id, cycle);
    return;
  }
  if (!s.queue.empty()) {
    const PendingMsg m = s.queue.front();
    s.queue.pop_front();
    const int id = alloc_worm(proc, m.dst, m.gen, m.tagged);
    register_injection(id, cycle);
  } else {
    s.head_registered = false;
  }
}

void Simulator::complete_worm(Worm& w, long cycle) {
  if (w.tagged) {
    result_.latency.add(static_cast<double>(cycle - w.gen_time));
    if (result_.latency_hist)
      result_.latency_hist->add(static_cast<double>(cycle - w.gen_time));
    result_.queue_wait.add(static_cast<double>(w.inject_start - w.gen_time));
    result_.inj_service.add(static_cast<double>(w.src_release - w.inject_start));
    result_.distance.add(static_cast<double>(w.path.size()));
    ++tagged_done_;
  }
  if (in_window(cycle)) {
    ++result_.delivered_messages;
    result_.delivered_flits += w.length;
  }
  if (trace_) trace_worm(w, cycle);
}

void Simulator::trace_worm(const Worm& w, long cycle) {
  // Eq. 1's decomposition as nested spans on the cycle timebase (pid 2,
  // tid = source PE): queue = W_inj, inject = x_inj, flight = the rest.
  const std::string name =
      "worm " + std::to_string(w.src) + "->" + std::to_string(w.dst);
  const auto tid = static_cast<std::uint32_t>(w.src);
  trace_->complete(name, "worm", w.gen_time, cycle - w.gen_time, tid, 2);
  if (w.inject_start >= w.gen_time)
    trace_->complete(name + " queue", "worm.queue", w.gen_time,
                     w.inject_start - w.gen_time, tid, 2);
  if (w.src_release >= w.inject_start && w.inject_start >= 0)
    trace_->complete(name + " inject", "worm.inject", w.inject_start,
                     w.src_release - w.inject_start, tid, 2);
  if (w.src_release >= 0 && cycle >= w.src_release)
    trace_->complete(name + " flight", "worm.flight", w.src_release,
                     cycle - w.src_release, tid, 2);
}

void Simulator::advance_worm(int worm_id, long cycle) {
  Worm& w = worms_[static_cast<std::size_t>(worm_id)];
  if (w.consuming) {
    ++w.ejected;
  } else if (w.head_pos + 1 < static_cast<int>(w.path.size())) {
    ++w.head_pos;
    const int head_ch =
        net_.lane_channel(w.path[static_cast<std::size_t>(w.head_pos)]);
    const ChannelInfo& ci = net_.channel(head_ch);
    if (link_features_) {
      // Extra head-traversal latency of the link just entered: the whole
      // worm pipeline holds for ℓ cycles (phase_advance_lanes skips it).
      const int lat = net_.channel_link_latency(head_ch);
      if (lat > 0) w.stall_until = cycle + lat;
    }
    if (ci.dst_is_processor) {
      // Routing delivered the head to its destination PE; draining begins
      // next cycle (assumption 4: one flit per cycle, never blocked).
      WORMNET_ENSURES(ci.dst_node == w.dst);
      w.consuming = true;
    } else {
      register_next_hop(worm_id, ci.dst_node, cycle);
    }
  } else {
    WORMNET_ENSURES(false);  // unblocked worm must be able to move
  }
  if (w.injected < w.length) ++w.injected;
  // Release every lane the tail has passed.
  const int tail_idx = w.head_pos - (w.injected - w.ejected) + 1;
  while (w.freed_upto < tail_idx) {
    release_lane(w, w.path[static_cast<std::size_t>(w.freed_upto)], cycle);
    ++w.freed_upto;
  }
  last_progress_ = cycle;
  w.last_move = cycle;
  if (w.ejected == w.length) complete_worm(w, cycle);
}

void Simulator::step_arrivals(long cycle) {
  // Scripted messages first (deterministic tests).
  while (scripted_next_ < scripted_.size() &&
         scripted_[scripted_next_].cycle <= cycle) {
    const ScriptedMsg& m = scripted_[scripted_next_++];
    ++tagged_total_;
    SourceState& s = sources_[static_cast<std::size_t>(m.src)];
    if (!s.head_registered) {
      s.head_registered = true;
      const int id = alloc_worm(m.src, m.dst, m.cycle, true);
      register_injection(id, cycle);
    } else {
      s.queue.push_back({m.cycle, m.dst, true});
    }
  }
  if (scripted_mode_) return;

  if (cfg_.arrivals == ArrivalProcess::Overload) {
    if (cycle == 0) {
      for (int p = 0; p < num_procs_; ++p) {
        const int id = alloc_worm(p, sample_destination_overload(p), 0, false);
        register_injection(id, cycle);
      }
    }
    return;  // replenish happens in on_source_released()
  }

  while (traffic_.has_arrival(cycle)) {
    const Arrival a = traffic_.pop_arrival(cycle);
    const int dst = sample_destination(a.proc);
    // Demand on a severed pair is not carried (it never enters the network
    // and is not counted as generated) — matching the analytical model's
    // unroutable_fraction accounting exactly.
    if (dst < 0) continue;
    const bool tagged = in_window(a.cycle);
    if (tagged) {
      ++tagged_total_;
      ++result_.generated_messages;
    }
    SourceState& s = sources_[static_cast<std::size_t>(a.proc)];
    if (!s.head_registered) {
      s.head_registered = true;
      const int id = alloc_worm(a.proc, dst, a.cycle, tagged);
      register_injection(id, cycle);
    } else {
      s.queue.push_back({a.cycle, dst, tagged});
    }
  }
}

void Simulator::phase_allocate(long cycle) {
  if (dirty_bundles_.empty()) return;
  // Swap out the dirty list: grants may re-mark bundles (releases happen in
  // phase_advance, registrations in both earlier phases).  The two buffers
  // ping-pong across cycles so neither ever re-allocates in steady state.
  alloc_scratch_.swap(dirty_bundles_);
  for (int b : alloc_scratch_) bundle_state_[static_cast<std::size_t>(b)].dirty = false;
  for (int b : alloc_scratch_) grant(b, cycle);
  alloc_scratch_.clear();
}

void Simulator::phase_advance(long cycle) {
  if (lane_mode_) {
    phase_advance_lanes(cycle);
    return;
  }
  // Single-lane network: every lane latch is exclusively owned, so every
  // unblocked worm advances unconditionally — the paper's exact semantics.
  for (std::size_t i = 0; i < active_.size();) {
    const int id = active_[i];
    Worm& w = worms_[static_cast<std::size_t>(id)];
    if (w.waiting_alloc) {
      ++i;
      continue;
    }
    advance_worm(id, cycle);
    if (w.ejected == w.length) {
      active_[i] = active_.back();
      active_.pop_back();
      free_worms_.push_back(id);
    } else {
      ++i;
    }
  }
}

bool Simulator::claim_bandwidth(const Worm& w, long cycle) {
  // The physical links crossed by a rigid one-flit advance: each in-flight
  // flit at path[i] moves into path[i + 1]; a consuming head leaves the
  // network (no link); a still-injecting source feeds a new flit into
  // path[0] (and while injecting the tail index is always 0).
  const int hi = w.consuming ? w.head_pos : w.head_pos + 1;
  const int tail_idx = w.head_pos - (w.injected - w.ejected) + 1;
  const int lo = (w.injected < w.length) ? 0 : tail_idx + 1;
  const bool credit = !lane_streak_.empty();
  for (int i = lo; i <= hi; ++i) {
    const int lane = w.path[static_cast<std::size_t>(i)];
    const int ch = net_.lane_channel(lane);
    // A downed link refuses every claim: the whole worm stalls in place
    // (rigid advance — nothing behind the head moves), the wormhole way.
    if (fault_mode_ && link_down_[static_cast<std::size_t>(ch)]) return false;
    const int period = net_.channel_period(ch);
    // Stamps never exceed the current cycle, so with period 1 this is the
    // original claimed-this-cycle test bit for bit.
    if (channel_claim_[static_cast<std::size_t>(ch)] > cycle - period)
      return false;
    if (credit) {
      const int depth = net_.channel_buffer_depth(ch);
      if (depth != util::kInfiniteBufferDepth &&
          lane_last_flit_[static_cast<std::size_t>(lane)] == cycle - period &&
          lane_streak_[static_cast<std::size_t>(lane)] >= depth) {
        return false;  // out of credit: one-cycle refusal breaks the streak
      }
    }
  }
  for (int i = lo; i <= hi; ++i) {
    const int lane = w.path[static_cast<std::size_t>(i)];
    const int ch = net_.lane_channel(lane);
    channel_claim_[static_cast<std::size_t>(ch)] = cycle;
    if (credit && net_.channel_buffer_depth(ch) != util::kInfiniteBufferDepth) {
      const int period = net_.channel_period(ch);
      long& last = lane_last_flit_[static_cast<std::size_t>(lane)];
      int& streak = lane_streak_[static_cast<std::size_t>(lane)];
      streak = (last == cycle - period) ? streak + 1 : 1;
      last = cycle;
    }
  }
  return true;
}

void Simulator::apply_fault_events(long cycle) {
  const topo::Topology& topo = net_.topology();
  while (fault_next_ < fault_events_.size() &&
         fault_events_[fault_next_].cycle <= cycle) {
    const FaultEvent& e = fault_events_[fault_next_++];
    const int peer = topo.neighbor(e.node, e.port);
    const int back = topo.neighbor_port(e.node, e.port);
    const int chans[2] = {net_.channels().from(e.node, e.port),
                          net_.channels().from(peer, back)};
    for (const int ch : chans) {
      link_down_[static_cast<std::size_t>(ch)] = e.up ? 0 : 1;
      const int bundle = net_.channel(ch).bundle;
      for (int lane = net_.lane_begin(ch); lane < net_.lane_begin(ch + 1);
           ++lane) {
        LaneState& ls = lane_state_[static_cast<std::size_t>(lane)];
        if (!e.up && ls.owner == -1) {
          // Free lane leaves service with its link, keeping grant()'s
          // invariant (free_count > 0 ⟹ a grantable lane exists) intact.
          ls.owner = -2;
          --bundle_state_[static_cast<std::size_t>(bundle)].free_count;
        } else if (e.up && ls.owner == -2) {
          ls.owner = -1;
          ++bundle_state_[static_cast<std::size_t>(bundle)].free_count;
          mark_dirty(bundle);
        }
      }
    }
  }
}

void Simulator::drop_worm(int worm_id, long cycle) {
  Worm& w = worms_[static_cast<std::size_t>(worm_id)];
  // Release everything still held through the normal path so channel busy
  // accounting (and the source hand-off chain) stays consistent.
  while (w.freed_upto < static_cast<int>(w.path.size())) {
    release_lane(w, w.path[static_cast<std::size_t>(w.freed_upto)], cycle);
    ++w.freed_upto;
  }
  if (w.waiting_alloc) w.tombstone = true;  // a bundle request is pending
  ++result_.dropped_worms;
  result_.dropped_flits += w.length;
  // The message terminated (lost, not delivered): the termination ladder's
  // tagged accounting must still close, without touching latency stats.
  if (w.tagged) ++tagged_done_;
  last_progress_ = cycle;  // a drop is progress — preempts the watchdog
  if (trace_)
    trace_->instant("drop " + std::to_string(w.src) + "->" +
                        std::to_string(w.dst),
                    "worm.drop", cycle, static_cast<std::uint32_t>(w.src), 2);
}

void Simulator::check_fault_drops(long cycle) {
  for (std::size_t i = 0; i < active_.size();) {
    const int id = active_[i];
    Worm& w = worms_[static_cast<std::size_t>(id)];
    if (cycle - w.last_move >= cfg_.fault_stall_timeout) {
      drop_worm(id, cycle);
      active_[i] = active_.back();
      active_.pop_back();
      if (!w.tombstone) free_worms_.push_back(id);
    } else {
      ++i;
    }
  }
}

void Simulator::phase_advance_lanes(long cycle) {
  if (fault_mode_) check_fault_drops(cycle);
  // Round-robin bandwidth arbitration: visit the active worms starting at a
  // cursor that rotates every cycle; each worm either claims capacity on
  // every link its flits would cross and advances rigidly, or stalls in
  // place for this cycle.  With uniform links the first movable worm
  // visited always succeeds; with slow links or finite buffers a worm can
  // be period-, latency- or credit-blocked, but every such block clears
  // within a bounded number of cycles, so the watchdog still holds.
  const std::size_t n = active_.size();
  if (n == 0) return;
  advance_order_.assign(active_.begin(), active_.end());
  const std::size_t start = static_cast<std::size_t>(rr_cursor_++ % n);
  for (std::size_t i = 0; i < n; ++i) {
    const int id = advance_order_[(start + i) % n];
    Worm& w = worms_[static_cast<std::size_t>(id)];
    if (w.waiting_alloc) continue;
    if (w.stall_until > cycle) continue;  // head mid-flight on a slow link
    if (!claim_bandwidth(w, cycle)) continue;
    advance_worm(id, cycle);
  }
  // Retire completed worms after the pass (the snapshot visits each id once,
  // so a worm completing mid-pass is never re-advanced).
  for (std::size_t i = 0; i < active_.size();) {
    const int id = active_[i];
    const Worm& w = worms_[static_cast<std::size_t>(id)];
    if (w.ejected == w.length && !w.waiting_alloc) {
      active_[i] = active_.back();
      active_.pop_back();
      free_worms_.push_back(id);
    } else {
      ++i;
    }
  }
}

long Simulator::idle_jump_target(long cycle) const {
  long target;
  if (scripted_mode_) {
    // This cycle's termination check declined, so at least one scripted
    // message is pending, and step_arrivals drained everything due: the
    // next one is strictly in the future.
    WORMNET_ENSURES(scripted_next_ < scripted_.size());
    target = scripted_[scripted_next_].cycle;
  } else {
    // The first break opportunity of an idle open-loop run is the last
    // window cycle (all tagged messages are delivered — an idle network has
    // no backlog anywhere); never jump past it.
    const long window_last = cfg_.warmup_cycles + cfg_.measure_cycles - 1;
    target = window_last;
    const double t = traffic_.next_arrival_time();
    if (t < static_cast<double>(window_last)) {
      // An arrival at continuous time t is usable at the first cycle >= t.
      target = static_cast<long>(std::ceil(t));
    }
  }
  // The max_cycles check fires AT max_cycles; land there, never beyond.
  target = std::min(target, cfg_.max_cycles);
  return std::max(target, cycle + 1);
}

bool Simulator::advance(long cycles) {
  WORMNET_EXPECTS(cycles > 0);
  if (done_) return true;
  if (!config_checked_) {
    // Deferred until here because scripted mode is only known after
    // add_message(): an open-loop measurement run with zero warmup tags
    // messages into empty queues from cycle 0 and silently biases every
    // latency statistic, so reject it loudly instead.  The flag is latched
    // only AFTER the check passes — a caller that catches the throw and
    // calls run() again must be rejected again, not silently admitted.
    if (!scripted_mode_) {
      if (const std::string problem = cfg_.validate_open_loop();
          !problem.empty()) {
        throw std::invalid_argument("wormnet: " + problem);
      }
    }
    config_checked_ = true;
  }
  const long window_end = cfg_.warmup_cycles + cfg_.measure_cycles;
  const long stop = (cycles > std::numeric_limits<long>::max() - cycle_)
                        ? std::numeric_limits<long>::max()
                        : cycle_ + cycles;
  while (cycle_ < stop) {
    const long cycle = cycle_;
    // Link-state changes first: arrivals and grants this cycle must see the
    // cycle's link state.  An idle fast-forward can land past several
    // events; applying every due event here preserves semantics because
    // nothing moved in the skipped (empty-network) cycles.
    if (fault_mode_) apply_fault_events(cycle);
    step_arrivals(cycle);
    phase_allocate(cycle);
    phase_advance(cycle);

    if (scripted_mode_) {
      // Scripted runs end when every scripted message has been delivered;
      // they don't wait out the measurement window.
      if (scripted_next_ == scripted_.size() && tagged_done_ == tagged_total_) {
        result_.completed = true;
        finalize_result(cycle);
        return true;
      }
    } else if (cfg_.arrivals == ArrivalProcess::Overload) {
      if (cycle + 1 >= window_end) {
        result_.completed = true;
        finalize_result(cycle);
        return true;
      }
    } else if (cycle + 1 >= window_end && tagged_done_ == tagged_total_) {
      result_.completed = true;
      finalize_result(cycle);
      return true;
    }
    if (cycle >= cfg_.max_cycles) {
      result_.completed = false;
      result_.saturated = true;
      finalize_result(cycle);
      return true;
    }
    if (!active_.empty() && cycle - last_progress_ > cfg_.watchdog_cycles) {
      throw std::runtime_error(
          "wormnet sim watchdog: no progress for " +
          std::to_string(cycle - last_progress_) +
          " cycles with active worms — simulator invariant broken");
    }

    // Idle-cycle fast-forward: with no active worm and no pending grant the
    // network holds nothing anywhere (no queued message, no waiting worm —
    // a waiting worm's bundle would be dirty), so every cycle until the
    // next arrival is a no-op; jump straight to it.  idle_jump_target is
    // clamped so no skipped cycle could have terminated the run, which
    // keeps every result field — including cycles_run — bit-identical to
    // the cycle-by-cycle path (tested with disable_fast_forward).
    long next = cycle + 1;
    if (fast_forward_ && active_.empty() && dirty_bundles_.empty()) {
      // Also clamp to the caller's budget: skipped cycles are no-ops, so
      // stopping a jump short is bit-invisible, and advance(n) honors its
      // "at most n cycles" contract even across a long idle gap.
      next = std::min(idle_jump_target(cycle), stop);
    }
    cycle_ = next;
  }
  return false;
}

void Simulator::finalize_result(long final_cycle) {
  done_ = true;
  cycle_ = final_cycle;
  result_.cycles_run = final_cycle;
  result_.window_cycles = cfg_.measure_cycles;
  result_.throughput_flits_per_pe =
      static_cast<double>(result_.delivered_flits) /
      (static_cast<double>(cfg_.measure_cycles) * static_cast<double>(num_procs_));
  // Saturation verdict for open-loop runs: in steady state the window's
  // deliveries match its generations; a persistent shortfall means the
  // offered load exceeded capacity even if the backlog eventually drained
  // after the sources quieted down.
  if (!scripted_mode_ && cfg_.arrivals != ArrivalProcess::Overload &&
      result_.generated_messages > 50 &&
      result_.delivered_messages <
          static_cast<std::int64_t>(0.9 * static_cast<double>(result_.generated_messages))) {
    result_.saturated = true;
  }
}

int Simulator::sample_destination(int src) {
  const int dst = traffic_.make_destination(src);
  // The default reachable() is constant-true, so healthy topologies take
  // one virtual call here and the draw sequence stays bit-identical.
  if (net_.topology().reachable(src, dst)) return dst;
  ++result_.unroutable_messages;
  return -1;
}

int Simulator::sample_destination_overload(int src) {
  for (int tries = 0; tries < 4096; ++tries) {
    const int dst = sample_destination(src);
    if (dst >= 0) return dst;
  }
  throw std::runtime_error(
      "wormnet sim: processor " + std::to_string(src) +
      " drew 4096 destinations with no surviving path — topology too "
      "degraded for overload traffic");
}

SimResult Simulator::partial_result() const {
  if (done_) return result_;
  SimResult r = result_;
  r.truncated = true;
  r.completed = false;
  r.cycles_run = cycle_;
  r.window_cycles = cfg_.measure_cycles;
  r.throughput_flits_per_pe =
      static_cast<double>(r.delivered_flits) /
      (static_cast<double>(cfg_.measure_cycles) * static_cast<double>(num_procs_));
  return r;
}

SimResult Simulator::run() {
  while (!advance(std::numeric_limits<long>::max())) {
  }
  return result_;
}

std::string Simulator::debug_state() const {
  std::ostringstream out;
  out << "active worms: " << active_.size() << "\n";
  for (int id : active_) {
    const Worm& w = worms_[static_cast<std::size_t>(id)];
    out << "  worm " << id << " src=" << w.src << " dst=" << w.dst
        << " gen=" << w.gen_time << " head_pos=" << w.head_pos
        << " path=" << w.path.size() << " inj=" << w.injected
        << " ej=" << w.ejected << " freed=" << w.freed_upto
        << (w.consuming ? " CONSUMING" : "")
        << (w.waiting_alloc ? " WAITING" : "") << " path=[";
    for (int c : w.path) out << c << " ";
    out << "]\n";
  }
  for (int b = 0; b < net_.num_bundles(); ++b) {
    const BundleState& bs = bundle_state_[static_cast<std::size_t>(b)];
    const BundleInfo& bi = net_.bundle(b);
    if (bs.requests.empty() && bs.free_count == net_.bundle_lanes(b)) continue;
    out << "  bundle " << b << " free=" << bs.free_count
        << (bs.dirty ? " dirty" : "") << " requests=[";
    for (std::size_t i = 0; i < bs.requests.size(); ++i) {
      const Request& r = bs.requests[i];
      out << "{w" << r.worm << " pref=" << r.preferred_channel << "} ";
    }
    out << "] channels=[";
    for (int i = 0; i < bi.num_channels; ++i) {
      const int ch = bi.channel_ids[static_cast<std::size_t>(i)];
      out << ch << ":owners=";
      for (int lane = net_.lane_begin(ch); lane < net_.lane_begin(ch + 1); ++lane) {
        if (lane > net_.lane_begin(ch)) out << "/";
        out << lane_state_[static_cast<std::size_t>(lane)].owner;
      }
      out << " ";
    }
    out << "]\n";
  }
  return out.str();
}

SimResult simulate(const topo::Topology& topo, const SimConfig& cfg) {
  SimNetwork net(topo);
  Simulator sim(net, cfg);
  return sim.run();
}

std::string check_fault_events(const topo::Topology& topo,
                               const SimConfig& cfg) {
  if (cfg.fault_events.empty()) return "";
  std::vector<FaultEvent> events = cfg.fault_events;
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  std::map<std::pair<int, int>, bool> down;  // canonical endpoint → down?
  for (const FaultEvent& e : events) {
    const std::string at = "node " + std::to_string(e.node) + " port " +
                           std::to_string(e.port);
    if (e.node < 0 || e.node >= topo.num_nodes())
      return "sim fault event: node " + std::to_string(e.node) +
             " out of range";
    if (e.port < 0 || e.port >= topo.num_ports(e.node))
      return "sim fault event: port out of range at " + at;
    const int peer = topo.neighbor(e.node, e.port);
    if (peer == topo::kNoNode)
      return "sim fault event: no link at " + at;
    if (topo.is_processor(e.node) || topo.is_processor(peer))
      return "sim fault event: the injection/ejection link at " + at +
             " cannot fail (fail the switch's network links instead)";
    if (!topo.link_ok(e.node, e.port))
      return "sim fault event: the link at " + at +
             " is already failed in the topology (statically degraded links "
             "cannot be scripted — the routing never recovers them)";
    std::pair<int, int> key{e.node, e.port};
    const std::pair<int, int> other{peer, topo.neighbor_port(e.node, e.port)};
    if (other < key) key = other;
    bool& is_down = down[key];
    if (!e.up && is_down)
      return "sim fault event: link at " + at + " is already down at cycle " +
             std::to_string(e.cycle);
    if (e.up && !is_down)
      return "sim fault event: link-up at " + at +
             " for a link that is not down (cycle " + std::to_string(e.cycle) +
             ")";
    is_down = !e.up;
  }
  return "";
}

}  // namespace wormnet::sim

#include "sim/traffic.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wormnet::sim {

TrafficSource::TrafficSource(int num_processors, double lambda0,
                             ArrivalProcess process, std::uint64_t seed,
                             TrafficPattern pattern, double hotspot_fraction)
    : num_procs_(num_processors),
      lambda0_(lambda0),
      process_(process),
      pattern_(pattern),
      hotspot_fraction_(hotspot_fraction) {
  WORMNET_EXPECTS(num_processors >= 2);
  WORMNET_EXPECTS(lambda0 >= 0.0);
  WORMNET_EXPECTS(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0);
  while ((grid_side_ + 1) * (grid_side_ + 1) <= num_processors) ++grid_side_;
  if (pattern_ == TrafficPattern::Transpose) {
    WORMNET_EXPECTS(grid_side_ * grid_side_ == num_processors);
  }
  rng_.reserve(static_cast<std::size_t>(num_processors));
  next_time_.assign(static_cast<std::size_t>(num_processors), 0.0);
  for (int p = 0; p < num_processors; ++p) {
    rng_.push_back(util::Rng::stream(seed, static_cast<std::uint64_t>(p)));
  }
  if (process_ == ArrivalProcess::Overload || lambda0_ <= 0.0) return;
  for (int p = 0; p < num_processors; ++p) schedule_next(p, 0.0);
}

void TrafficSource::schedule_next(int proc, double from_time) {
  util::Rng& rng = rng_[static_cast<std::size_t>(proc)];
  double gap = 0.0;
  switch (process_) {
    case ArrivalProcess::Poisson:
      gap = rng.exponential(lambda0_);
      break;
    case ArrivalProcess::Bernoulli: {
      // Geometric number of whole-cycle trials until success.
      const double u = rng.uniform_pos();
      gap = 1.0 + std::floor(std::log(u) / std::log1p(-lambda0_));
      break;
    }
    case ArrivalProcess::Overload:
      WORMNET_ENSURES(false);  // overload sources are caller-driven
  }
  const double t = from_time + gap;
  next_time_[static_cast<std::size_t>(proc)] = t;
  heap_.push({t, proc});
}

bool TrafficSource::has_arrival(long cycle) const {
  if (heap_.empty()) return false;
  // An arrival at continuous time t is usable at the first cycle >= t.
  return heap_.top().first <= static_cast<double>(cycle);
}

Arrival TrafficSource::pop_arrival(long cycle) {
  WORMNET_EXPECTS(has_arrival(cycle));
  const auto [time, proc] = heap_.top();
  heap_.pop();
  schedule_next(proc, time);
  // ceil(time) as a long; time <= cycle keeps this within range.
  const long at = static_cast<long>(std::ceil(time));
  return {at, proc};
}

int TrafficSource::make_destination(int src) {
  WORMNET_EXPECTS(num_procs_ >= 2);
  util::Rng& rng = rng_[static_cast<std::size_t>(src)];
  auto uniform_other = [&] {
    const auto draw =
        static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(num_procs_ - 1)));
    return draw >= src ? draw + 1 : draw;
  };
  switch (pattern_) {
    case TrafficPattern::Uniform:
      return uniform_other();
    case TrafficPattern::BitComplement:
      return num_procs_ - 1 - src;  // != src because N is even
    case TrafficPattern::Transpose: {
      const int row = src / grid_side_;
      const int col = src % grid_side_;
      const int dest = col * grid_side_ + row;
      return dest == src ? (src + 1) % num_procs_ : dest;
    }
    case TrafficPattern::Hotspot: {
      if (rng.bernoulli(hotspot_fraction_) && src != 0) return 0;
      return uniform_other();
    }
  }
  return uniform_other();
}

}  // namespace wormnet::sim

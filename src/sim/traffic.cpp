#include "sim/traffic.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace wormnet::sim {

TrafficSource::TrafficSource(int num_processors, double lambda0,
                             ArrivalProcess process, std::uint64_t seed,
                             traffic::TrafficSpec spec,
                             arrivals::ArrivalSpec arrival)
    : num_procs_(num_processors),
      lambda0_(lambda0),
      process_(process),
      spec_(std::move(spec)),
      arrival_(std::move(arrival)) {
  WORMNET_EXPECTS(num_processors >= 2);
  WORMNET_EXPECTS(lambda0 >= 0.0);
  WORMNET_EXPECTS(spec_.check(num_processors).empty());
  WORMNET_EXPECTS(arrival_.check().empty());
  for (int p = 0; p < num_processors; ++p) {
    // Arrivals fire at every PE, so silent matrix rows cannot be simulated.
    WORMNET_EXPECTS(spec_.injection_weight(p, num_processors) > 0.0);
  }
  if (process_ == ArrivalProcess::Bernoulli) {
    // Legacy shorthand; combining it with a non-Poisson spec is ambiguous.
    WORMNET_EXPECTS(arrival_.is_poisson());
    arrival_ = arrivals::ArrivalSpec::bernoulli();
  }
  rng_.reserve(static_cast<std::size_t>(num_processors));
  next_time_.assign(static_cast<std::size_t>(num_processors), 0.0);
  for (int p = 0; p < num_processors; ++p) {
    rng_.push_back(util::Rng::stream(seed, static_cast<std::uint64_t>(p)));
  }
  if (process_ == ArrivalProcess::Overload || lambda0_ <= 0.0) return;
  arrival_state_.reserve(static_cast<std::size_t>(num_processors));
  for (int p = 0; p < num_processors; ++p) {
    // Per-stream sampler state; Poisson/Bernoulli draw nothing here, so the
    // legacy draw sequence — and every seeded golden — is preserved.
    arrival_state_.push_back(
        arrival_.init_state(lambda0_, rng_[static_cast<std::size_t>(p)]));
  }
  for (int p = 0; p < num_processors; ++p) schedule_next(p, 0.0);
}

void TrafficSource::schedule_next(int proc, double from_time) {
  const double gap =
      arrival_.next_gap(arrival_state_[static_cast<std::size_t>(proc)], lambda0_,
                        rng_[static_cast<std::size_t>(proc)]);
  const double t = from_time + gap;
  next_time_[static_cast<std::size_t>(proc)] = t;
  heap_.push({t, proc});
}

bool TrafficSource::has_arrival(long cycle) const {
  if (heap_.empty()) return false;
  // An arrival at continuous time t is usable at the first cycle >= t.
  return heap_.top().first <= static_cast<double>(cycle);
}

Arrival TrafficSource::pop_arrival(long cycle) {
  WORMNET_EXPECTS(has_arrival(cycle));
  const auto [time, proc] = heap_.top();
  heap_.pop();
  schedule_next(proc, time);
  // ceil(time) as a long; time <= cycle keeps this within range.
  const long at = static_cast<long>(std::ceil(time));
  return {at, proc};
}

double TrafficSource::next_arrival_time() const {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.top().first;
}

int TrafficSource::make_destination(int src) {
  WORMNET_EXPECTS(src >= 0 && src < num_procs_);
  return spec_.sample_destination(src, num_procs_, rng_[static_cast<std::size_t>(src)]);
}

}  // namespace wormnet::sim

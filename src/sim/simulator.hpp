// wormnet/sim/simulator.hpp
//
// Flit-level wormhole simulator.
//
// Model of execution
// ------------------
// Time advances in cycles; each directed channel has a one-flit latch (the
// wire plus the input buffer it feeds) and transfers at most one flit per
// cycle.  A worm owns the contiguous chain of channels between its tail and
// head flit; because the source feeds one flit per cycle whenever the worm
// advances, the in-flight flits always occupy a contiguous run of latches
// ending at the head — so a worm's state reduces to counters (allocated
// path, head latch index, flits injected/ejected) and each worm costs O(1)
// per cycle.  When the head blocks, nothing behind it moves: flits are
// "blocked in place", the defining wormhole behavior.
//
// Each cycle runs three phases:
//  1. arrivals  — Poisson/Bernoulli message generation (or overload
//                 replenish); a message that reaches the front of its
//                 source queue registers a request for the injection
//                 channel;
//  2. allocate  — every output bundle with free channels grants its FCFS
//                 request queue; the fat-tree's two parent links form one
//                 two-server bundle, and a granted worm gets its randomly
//                 preferred link if free, otherwise the other (the paper's
//                 §3.1 adaptive rule);
//  3. advance   — every unblocked worm shifts one flit forward; heads
//                 arriving at a switch register next-hop requests (usable
//                 the following cycle: one cycle per hop), heads arriving
//                 at the destination begin draining at one flit per cycle
//                 (the paper's assumption 4); the channel under the tail is
//                 released as the tail passes.
//
// An uncontended worm of s_f flits over a D-channel path therefore has
// latency exactly D + s_f - 1, matching the model's zero-load limit.
// Channel hand-off costs one extra cycle (a freed channel is re-granted the
// next cycle), which is the switch-arbitration latency of a real router;
// the analytical model idealizes this away, and EXPERIMENTS.md quantifies
// the resulting model-optimism at high load.
//
// Virtual channels (lanes)
// ------------------------
// When the topology declares lane multiplicities > 1 (SimNetwork::max_lanes()
// > 1), each physical channel carries L independent one-flit lane latches:
// the allocation unit becomes a LANE (a worm holds one lane per channel of
// its path; a bundle's FCFS queue grants any free lane of any member link),
// while the physical link still transfers at most ONE flit per cycle shared
// across its lanes.  Bandwidth is arbitrated per cycle in round-robin order
// over the active worms (the starting worm rotates every cycle): a worm
// advances its whole pipeline one flit — claiming every physical link its
// flits would cross this cycle — or, if any of those links was already
// claimed by an earlier worm in this cycle's rotation, stalls in place for
// the cycle.  Lanes therefore do exactly what they do in hardware: a worm
// blocked further downstream no longer seals the only latch of each link it
// holds, so other worms slip past on the remaining lanes at the cost of
// sharing link bandwidth.  With every lane count at 1 the arbitration
// degenerates to exclusive ownership and the simulator runs the exact
// single-lane semantics above, bit-for-bit (tested against golden traces).
//
// Heterogeneous links and finite buffers
// --------------------------------------
// When the topology declares non-default link attributes
// (SimNetwork::has_link_features()), every run uses the bandwidth-arbitrated
// kernel above regardless of lane count, generalized per channel:
//  * bandwidth 1/k — the link accepts one flit every k cycles (the claim
//    table stores the last transfer cycle and refuses within the period);
//  * link latency ℓ — a head crossing the link stalls the worm ℓ extra
//    cycles (Worm::stall_until) before it can move again;
//  * buffer depth B — a lane accepts at most B consecutive flits at the
//    link's native rate, then refuses for one cycle (the credit round-trip),
//    capping a saturated lane at B flits per B·k + 1 cycles — the effective
//    bandwidth b·B/(B + b) the analytical model uses.
// With every attribute at its default the claim rule is bit-identical to
// the plain lane kernel, and networks that are ALSO single-lane never enter
// it at all, so golden-traced uniform runs are unchanged.
//
// Performance notes (the cycle kernel's contract)
// -----------------------------------------------
//  * Idle-cycle fast-forward: when the network is completely empty (no
//    active worm, no pending allocation) the run loop jumps straight to the
//    next arrival's cycle instead of spinning through no-op cycles.  The
//    jump is clamped so no termination check is skipped, making it
//    bit-invisible: every result field, including cycles_run, is identical
//    to the cycle-by-cycle run (SimConfig::disable_fast_forward exists to
//    prove exactly that, see test_sim_semantics.cpp).
//  * Zero-allocation steady state: all per-cycle containers (bundle request
//    queues, source queues, the dirty-bundle scratch list, worm paths, the
//    worm pool itself) retain their capacity across cycles, so once the run
//    reaches its concurrency high-water mark the cycle loop performs no
//    heap allocations at all (guarded by an operator-new counter in
//    tests/test_perf_guards.cpp).
#pragma once

#include <array>
#include <deque>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "util/ring_queue.hpp"
#include "util/rng.hpp"

namespace wormnet::sim {

/// One wormhole simulation run over a SimNetwork.
///
/// Typical use:
///     SimNetwork net(topo);
///     Simulator s(net, cfg);
///     SimResult r = s.run();
///
/// For deterministic scenario tests, script messages explicitly; scripting
/// disables the stochastic source and tags every message:
///     s.add_message(/*cycle=*/0, /*src=*/0, /*dst=*/5);
class Simulator {
 public:
  Simulator(const SimNetwork& net, SimConfig cfg);

  /// Script one message (switches the run into scripted mode).
  void add_message(long cycle, int src, int dst);

  /// Execute the run to completion and return the collected metrics.
  /// Resumable: after advance() has consumed part (or all) of the run,
  /// run() finishes the remainder and returns the same result a single
  /// uninterrupted call would have produced, bit for bit.
  SimResult run();

  /// Instrumentation hook: advance the simulation by at most `cycles`
  /// further cycles (a fast-forward jump counts as the cycles it skips) or
  /// until the run terminates.  Returns true once terminated.  Exists so
  /// the allocation-guard test can warm the run up to steady state, sample
  /// the global allocation counter, and assert the remaining cycles
  /// allocate nothing; normal callers just use run().
  bool advance(long cycles);

  /// The metrics collected so far, finalized over the cycles actually
  /// executed.  After the run terminated this is exactly run()'s result;
  /// before that it is a truncated snapshot (SimResult::truncated set,
  /// completed false) — the partial answer SimEngine reports when a cell's
  /// cycle budget expires on a degraded run that will not terminate.
  SimResult partial_result() const;

  /// Multi-line dump of live state (active worms, held channels, pending
  /// requests) for debugging wedged runs and for the semantics tests.
  std::string debug_state() const;

 private:
  struct Worm {
    int src = -1;
    int dst = -1;
    int length = 0;
    long gen_time = 0;
    long inject_start = -1;
    long src_release = -1;
    std::vector<int> path;   // allocated LANE ids, source to head (lane id ==
                             // channel id when the network is single-lane)
    int head_pos = -1;       // index into path of the latch holding the head
    int injected = 0;        // flits that have left the source
    int ejected = 0;         // flits consumed at the destination
    int freed_upto = 0;      // path[i] released for all i < freed_upto
    long stall_until = -1;   // head link latency: no advance before this cycle
    long last_move = 0;      // cycle of the last grant/advance (fault mode:
                             // the stall-timeout clock)
    bool consuming = false;  // head is in the ejection latch
    bool waiting_alloc = false;
    bool tagged = false;
    bool tombstone = false;  // dropped while a bundle request was pending;
                             // the slot is recycled when grant() pops it
  };

  struct Request {
    int worm = -1;
    int preferred_channel = -1;
    // The route() candidate channels this worm may legally take (the bundle's
    // redundant links, minus any that make no survivor progress under faults).
    // The arbiter's adaptive fallback probes ONLY these; a healthy fat-tree's
    // candidate set is the whole bundle, so the paper's semantics are
    // unchanged there.
    std::array<int, 4> candidates{};
    int num_candidates = 0;
  };

  struct LaneState {
    int owner = -1;       // worm id or -1
    long grant_time = 0;  // cycle of the last grant (for busy accounting)
  };

  struct BundleState {
    int free_count = 0;  // free LANES across the bundle's member channels
    bool dirty = false;
    // Ring, not deque: steady-state push/pop must not touch the heap.
    util::RingQueue<Request> requests;
  };

  struct PendingMsg {
    long gen = 0;
    int dst = -1;
    bool tagged = false;
  };

  struct SourceState {
    util::RingQueue<PendingMsg> queue;
    bool head_registered = false;  // a message of this PE owns/awaits injection
  };

  struct ScriptedMsg {
    long cycle = 0;
    int src = -1;
    int dst = -1;
  };

  // -- lifecycle ----------------------------------------------------------
  int alloc_worm(int src, int dst, long gen, bool tagged);
  void register_injection(int worm_id, long cycle);
  void register_next_hop(int worm_id, int node, long cycle);
  void mark_dirty(int bundle_id);
  int find_free_lane(int channel_id) const;
  void grant(int bundle_id, long cycle);
  void release_lane(Worm& w, int lane_id, long cycle);
  void advance_worm(int worm_id, long cycle);
  void complete_worm(Worm& w, long cycle);

  /// Emit the delivered worm's lifecycle spans into *trace_ (caller checks).
  void trace_worm(const Worm& w, long cycle);
  void on_source_released(int proc, long cycle);
  bool in_window(long cycle) const;

  /// Atomically claim transfer capacity on every physical link the worm's
  /// flits would cross this cycle (lane mode only).  A link with flit
  /// period k (bandwidth 1/k) accepts a claim only k or more cycles after
  /// its previous one, and a lane with finite buffer depth B refuses the
  /// (B+1)-th consecutive native-rate flit — the one-cycle credit
  /// round-trip that caps a full-rate lane at B flits per B·k + 1 cycles.
  /// Returns false — claiming nothing — when any link or lane refuses.
  /// With uniform attributes (period 1, infinite depth) this degenerates to
  /// the original one-claim-per-cycle rule, bit for bit.
  bool claim_bandwidth(const Worm& w, long cycle);

  // -- fault injection (cfg_.fault_events) --------------------------------
  /// Apply every scripted link-state change due at or before `cycle`.  Down:
  /// both directed channels refuse bandwidth claims and their FREE lanes
  /// leave service (owner -2, bundle free_count decremented) so grant()'s
  /// free-lane invariant holds; held lanes stay with their (now stalling)
  /// worms and leave service as they release.  Up: out-of-service lanes
  /// rejoin their bundles.
  void apply_fault_events(long cycle);
  /// Drop every active worm that has not moved for fault_stall_timeout
  /// cycles: release its lanes, count it, tombstone a pending request.
  void check_fault_drops(long cycle);
  void drop_worm(int worm_id, long cycle);
  /// Destination draw with the faulted-topology guard: a sampled pair with
  /// no surviving path is counted in unroutable_messages and discarded
  /// (open-loop demand on dead pairs is NOT carried — matching the model's
  /// unroutable_fraction accounting).  Returns -1 for a discarded draw.
  int sample_destination(int src);
  /// Overload variant: redraw until a routable destination comes up (the
  /// closed loop must inject something); throws after 4096 discards.
  int sample_destination_overload(int src);

  // -- per-cycle phases ---------------------------------------------------
  void step_arrivals(long cycle);
  void phase_allocate(long cycle);
  void phase_advance(long cycle);        // dispatches on SimNetwork::max_lanes
  void phase_advance_lanes(long cycle);  // round-robin bandwidth arbitration

  /// Idle-cycle fast-forward target: the first future cycle at which
  /// anything can happen (next arrival or scripted message), clamped so no
  /// skipped cycle could have satisfied a termination check.  Precondition:
  /// the network is empty (active_ and dirty_bundles_ both empty) and this
  /// cycle's termination checks all declined.
  long idle_jump_target(long cycle) const;

  /// Post-loop result finalization (throughput, saturation verdict).
  void finalize_result(long final_cycle);

  const SimNetwork& net_;
  SimConfig cfg_;
  TrafficSource traffic_;
  util::Rng route_rng_;  // adaptive up-link preference draws

  // Hoisted run-loop constants (satellite of the perf overhaul: resolving
  // these through net_/topology() per event showed up in profiles).
  const int num_procs_;
  const int* inj_channel_;     // per-processor injection channel ids
  const bool single_lane_;     // max_lanes() == 1: lane id == channel id
  const bool link_features_;   // some channel has non-default attributes
  const bool fault_mode_;      // scripted fault events present
  const bool lane_mode_;       // multi-lane, link features OR fault mode:
                               // use the bandwidth-arbitrated advance kernel
  const bool fast_forward_;    // idle-cycle fast-forward enabled
  obs::TraceLog* const trace_; // opt-in worm-lifecycle trace (null = off):
                               // guarded emissions only, results never read
                               // it, so off is provably zero-overhead

  // Deque, not vector: alloc_worm() can run while advance_worm() holds a
  // reference into the container (source release triggers the next worm's
  // allocation), so element references must survive growth.
  std::deque<Worm> worms_;
  std::vector<int> free_worms_;
  std::vector<int> active_;  // worm ids with at least one allocated channel

  std::vector<LaneState> lane_state_;   // per lane (per channel when L == 1)
  std::vector<BundleState> bundle_state_;
  std::vector<int> dirty_bundles_;
  std::vector<int> alloc_scratch_;  // phase_allocate's swap buffer, reused
  std::vector<SourceState> sources_;

  // Lane mode (max_lanes > 1) only: per-physical-channel cycle stamp of the
  // last bandwidth claim, the rotating arbitration cursor, and the scratch
  // iteration order (kept allocated across cycles).  The claim table is
  // epoch-free: a slot is "claimed" iff it equals the CURRENT cycle, so it
  // is never cleared between cycles — advancing the clock (including a
  // fast-forward jump, which only moves it further) invalidates every stale
  // stamp for free.
  std::vector<long> channel_claim_;
  std::uint64_t rr_cursor_ = 0;
  std::vector<int> advance_order_;
  // Finite-buffer credit state (allocated only when some channel has a
  // finite depth): per lane, the cycle of the last flit accepted and the
  // length of the current native-rate streak.  A streak continues iff the
  // previous flit landed exactly one flit period ago; after depth B flits
  // the lane refuses once (the credit round-trip), breaking the streak.
  std::vector<long> lane_last_flit_;
  std::vector<int> lane_streak_;

  std::vector<ScriptedMsg> scripted_;
  std::size_t scripted_next_ = 0;
  bool scripted_mode_ = false;

  // Fault mode only: the events sorted by cycle, the application cursor and
  // the per-directed-channel down flag claim_bandwidth consults.
  std::vector<FaultEvent> fault_events_;
  std::size_t fault_next_ = 0;
  std::vector<char> link_down_;

  SimResult result_;
  std::int64_t tagged_total_ = 0;
  std::int64_t tagged_done_ = 0;
  long last_progress_ = 0;
  long cycle_ = 0;     // next cycle to execute (advance() resumes here)
  bool done_ = false;  // the run has terminated; result_ is final
  bool config_checked_ = false;  // deferred open-loop config checks ran
};

/// Convenience: simulate `topo` under `cfg` (builds a SimNetwork internally).
SimResult simulate(const topo::Topology& topo, const SimConfig& cfg);

/// Validate cfg.fault_events against `topo`: every endpoint in range and
/// connected, no processor-attached (injection/ejection) link, and the
/// event sequence consistent when replayed in cycle order (down only while
/// up, up only while down).  Empty string when fine.  Simulator
/// construction throws std::invalid_argument on a non-empty answer;
/// SimEngine checks eagerly on the calling thread for the same reason it
/// eagerly validates configs.
std::string check_fault_events(const topo::Topology& topo, const SimConfig& cfg);

}  // namespace wormnet::sim

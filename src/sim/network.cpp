#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/math.hpp"

namespace wormnet::sim {

namespace {

/// Round `v` to a whole number of cycles, rejecting values the flit-level
/// kernel cannot represent (it advances in integer cycles).
int whole_cycles(double v, int ch, const char* what) {
  const double r = std::round(v);
  if (!(v >= 0.0) || std::abs(v - r) > 1e-9) {
    std::ostringstream out;
    out << "wormnet sim: channel " << ch << " " << what << " " << v
        << " is not a whole non-negative cycle count";
    throw std::invalid_argument(out.str());
  }
  return static_cast<int>(r);
}

}  // namespace

SimNetwork::SimNetwork(const topo::Topology& topo) : topo_(&topo), table_(topo) {
  const int nodes = topo.num_nodes();

  // Port -> bundle mapping, flattened.
  port_bundle_offset_.assign(static_cast<std::size_t>(nodes) + 1, 0);
  for (int n = 0; n < nodes; ++n)
    port_bundle_offset_[static_cast<std::size_t>(n) + 1] =
        port_bundle_offset_[static_cast<std::size_t>(n)] + topo.num_ports(n);
  port_bundle_.assign(static_cast<std::size_t>(port_bundle_offset_.back()), -1);

  info_.assign(static_cast<std::size_t>(table_.size()), {});
  for (int n = 0; n < nodes; ++n) {
    for (const topo::PortBundle& pb : topo.output_bundles(n)) {
      BundleInfo bi;
      const int bundle_id = static_cast<int>(bundles_.size());
      for (int i = 0; i < pb.count; ++i) {
        const int ch = table_.from(n, pb[i]);
        if (ch == topo::kNoChannel) continue;
        bi.channel_ids[static_cast<std::size_t>(bi.num_channels++)] = ch;
        port_bundle_[static_cast<std::size_t>(
            port_bundle_offset_[static_cast<std::size_t>(n)] + pb[i])] = bundle_id;
        info_[static_cast<std::size_t>(ch)].bundle = bundle_id;
      }
      if (bi.num_channels > 0) bundles_.push_back(bi);
    }
  }

  for (int ch = 0; ch < table_.size(); ++ch) {
    const topo::DirectedChannel& dc = table_.at(ch);
    ChannelInfo& ci = info_[static_cast<std::size_t>(ch)];
    ci.dst_node = dc.dst_node;
    ci.dst_is_processor = topo.is_processor(dc.dst_node);
    WORMNET_ENSURES(ci.bundle >= 0);
  }

  injection_.assign(static_cast<std::size_t>(topo.num_processors()), -1);
  for (int p = 0; p < topo.num_processors(); ++p) {
    injection_[static_cast<std::size_t>(p)] = table_.from(p, 0);
    WORMNET_ENSURES(injection_[static_cast<std::size_t>(p)] != topo::kNoChannel);
  }

  // Lane index: dense ids, contiguous per channel (identity when the whole
  // network is single-lane).
  lane_begin_.assign(static_cast<std::size_t>(table_.size()) + 1, 0);
  for (int ch = 0; ch < table_.size(); ++ch) {
    const int lanes = table_.lanes(ch);
    WORMNET_EXPECTS(lanes >= 1);
    max_lanes_ = std::max(max_lanes_, lanes);
    lane_begin_[static_cast<std::size_t>(ch) + 1] =
        lane_begin_[static_cast<std::size_t>(ch)] + lanes;
  }
  lane_channel_.assign(static_cast<std::size_t>(lane_begin_.back()), -1);
  for (int ch = 0; ch < table_.size(); ++ch) {
    for (int l = lane_begin(ch); l < lane_begin(ch + 1); ++l)
      lane_channel_[static_cast<std::size_t>(l)] = ch;
  }

  // Link-attribute snapshot (bandwidth as an integer flit period, latency,
  // buffer depth), validated fail-fast: the cycle kernel cannot express a
  // fractional period or latency, so reject them here with a clear message
  // instead of silently rounding.
  period_.assign(static_cast<std::size_t>(table_.size()), 1);
  latency_.assign(static_cast<std::size_t>(table_.size()), 0);
  depth_.assign(static_cast<std::size_t>(table_.size()),
                util::kInfiniteBufferDepth);
  for (int ch = 0; ch < table_.size(); ++ch) {
    const double bw = table_.bandwidth(ch);
    if (!(bw > 0.0) || bw > 1.0) {
      std::ostringstream out;
      out << "wormnet sim: channel " << ch << " bandwidth " << bw
          << " outside (0, 1] flits/cycle";
      throw std::invalid_argument(out.str());
    }
    period_[static_cast<std::size_t>(ch)] =
        std::max(1, whole_cycles(1.0 / bw, ch, "flit period (1/bandwidth)"));
    latency_[static_cast<std::size_t>(ch)] =
        whole_cycles(table_.link_latency(ch), ch, "link latency");
    const int d = table_.buffer_depth(ch);
    if (d < 1) {
      std::ostringstream out;
      out << "wormnet sim: channel " << ch << " buffer depth " << d
          << " < 1 flit";
      throw std::invalid_argument(out.str());
    }
    depth_[static_cast<std::size_t>(ch)] = d;
    if (period_[static_cast<std::size_t>(ch)] != 1 ||
        latency_[static_cast<std::size_t>(ch)] != 0 ||
        d != util::kInfiniteBufferDepth) {
      has_link_features_ = true;
    }
  }
}

int SimNetwork::bundle_of_port(int node, int port) const {
  WORMNET_EXPECTS(node >= 0 && node < topo_->num_nodes());
  const int idx = port_bundle_offset_[static_cast<std::size_t>(node)] + port;
  WORMNET_EXPECTS(idx < port_bundle_offset_[static_cast<std::size_t>(node) + 1]);
  return port_bundle_[static_cast<std::size_t>(idx)];
}

}  // namespace wormnet::sim

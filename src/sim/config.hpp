// wormnet/sim/config.hpp
//
// Simulation parameters.  Defaults mirror the paper's experimental setup:
// Poisson message generation, uniformly random destinations, fixed worm
// length, FCFS channel arbitration, destinations that drain one flit per
// cycle.
//
// Destination selection is a traffic::TrafficSpec — the same pattern object
// the analytical builder (core::build_traffic_model) consumes, so simulator
// and model are driven by one description of the workload by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "traffic/traffic_spec.hpp"

namespace wormnet::obs {
class TraceLog;
}

namespace wormnet::sim {

/// Message generation MODE at each processor.  Poisson (the default) is the
/// open-loop mode whose inter-arrival law is refined by
/// SimConfig::arrival_process; Bernoulli is the legacy shorthand for
/// arrivals::ArrivalSpec::bernoulli(); Overload is the closed-loop
/// saturation probe (no arrival process at all).
enum class ArrivalProcess {
  Poisson,    ///< open loop, gaps drawn from SimConfig::arrival_process
  Bernoulli,  ///< geometric inter-arrival times (one trial per cycle)
  Overload,   ///< source always backlogged: measures saturation throughput
};

/// One scripted link-state change: at `cycle`, the undirected link at
/// (node, port) — BOTH directed channels — leaves or re-enters service.
/// Worms holding lanes on a downed link stall in place (wormhole semantics:
/// nothing behind the head moves) and are dropped with their source queue's
/// statistics intact once they sit still for SimConfig::fault_stall_timeout
/// cycles; freed lanes of a downed link are held out of service until the
/// matching up event.  Routing stays the topology's route() — the adaptive
/// in-bundle fallback is the only rerouting, as in a router with static
/// tables — so scripted faults measure transient degradation, while
/// steady-state degraded routing is simulated by building the SimNetwork
/// from a topo::FaultedTopology instead.
struct FaultEvent {
  long cycle = 0;   ///< first cycle the new link state is in force
  int node = -1;    ///< one endpoint of the link (a switch, not a processor)
  int port = -1;    ///< port at `node`
  bool up = false;  ///< false: link goes down; true: link comes back up
};

/// One simulation run's configuration.
struct SimConfig {
  /// Offered load in flits/cycle/processor (Fig. 3's x-axis); the message
  /// rate is λ₀ = load_flits / worm_flits.  Ignored under Overload.
  double load_flits = 0.01;

  /// Worm length s_f in flits.
  int worm_flits = 16;

  /// Arrival mode (see the enum above).
  ArrivalProcess arrivals = ArrivalProcess::Poisson;

  /// Inter-arrival law for open-loop runs (arrivals == Poisson): any
  /// arrivals::ArrivalSpec — Poisson, deterministic, compound-Poisson
  /// batches, MMPP-2/ON-OFF, or trace-driven.  The SAME spec object feeds
  /// the analytical model (ArrivalSpec::ca2 →
  /// core::GeneralModel::set_injection_ca2), so simulator and model agree
  /// on the workload's burstiness by construction.  The default keeps every
  /// existing seeded run bit-identical (assumption 1).
  arrivals::ArrivalSpec arrival_process = arrivals::ArrivalSpec::poisson();

  /// Destination distribution (the paper's assumption 1 by default).  Every
  /// source must carry full injection weight: the simulator generates
  /// arrivals at rate λ₀ at every PE.
  traffic::TrafficSpec traffic = traffic::TrafficSpec::uniform();

  /// RNG seed; two runs with equal config are bit-identical.
  std::uint64_t seed = 1;

  /// Cycles simulated before measurement starts (queue warm-up).
  long warmup_cycles = 10'000;

  /// Length of the measurement window: messages GENERATED inside
  /// [warmup, warmup + measure_cycles) are tagged and their latencies
  /// recorded; throughput counts deliveries inside the same window.
  long measure_cycles = 30'000;

  /// Hard stop.  If tagged messages remain undelivered here, the run is
  /// reported as saturated (offered load exceeded capacity).
  long max_cycles = 400'000;

  /// Abort threshold for the progress watchdog: if no flit moves and no
  /// channel is granted for this many consecutive cycles while worms are
  /// waiting, the simulator aborts — with minimal routing on acyclic
  /// channel-dependency networks this indicates a simulator bug, not a
  /// protocol deadlock.
  long watchdog_cycles = 100'000;

  /// Scripted link-state changes, applied deterministically at their cycles
  /// (sorted internally; equal-cycle events apply in list order).  Empty —
  /// the default — leaves every seeded run bit-identical.  Endpoint validity
  /// is checked against the topology at Simulator construction (see
  /// check_fault_events); injection/ejection links cannot fail.
  std::vector<FaultEvent> fault_events;

  /// Fault-mode drop threshold: an in-flight worm that has not advanced for
  /// this many consecutive cycles is dropped (its lanes released, counted in
  /// SimResult::dropped_worms/dropped_flits).  Generous default so only
  /// fault-wedged worms trip it; must stay below watchdog_cycles so drops
  /// (which count as progress) always preempt the watchdog abort.  Only
  /// consulted when fault_events is non-empty.
  long fault_stall_timeout = 10'000;

  /// Debug switch: force the simulator to execute every idle cycle
  /// explicitly instead of fast-forwarding to the next arrival when the
  /// network is empty.  Fast-forward is semantically invisible — results are
  /// bit-identical either way (tested in test_sim_semantics.cpp) — so this
  /// exists only to prove that claim and to time the optimization.
  bool disable_fast_forward = false;

  /// Collect per-channel grant/busy counters (cheap; a few MB at N=1024).
  bool channel_stats = true;

  /// Opt-in worm-lifecycle event trace (obs/trace.hpp): each delivered
  /// worm emits queue/inject/flight spans (Eq. 1's W_inj / x_inj / flight
  /// decomposition, cycle numbers as the µs timebase, tid = source PE) and
  /// each fault drop an instant event.  Null — the default — is provably
  /// zero-overhead: the only cost is an untaken branch per completion, no
  /// result field ever reads the trace, and seeded goldens stay
  /// bit-identical (tested in test_obs.cpp).  The log must outlive the run.
  obs::TraceLog* trace = nullptr;

  /// Collect the full latency distribution of tagged messages (histogram
  /// with `histogram_bins` bins over [0, histogram_max) cycles) so results
  /// can report tail percentiles, not just the mean the paper plots.
  bool latency_histogram = false;
  double histogram_max = 4096.0;
  int histogram_bins = 512;

  /// Empty string when the configuration is usable, else a human-readable
  /// explanation of the first problem found.  Simulator construction calls
  /// this and throws std::invalid_argument on failure — a negative load,
  /// zero-flit worm or bad arrival spec fails fast instead of silently
  /// producing garbage.  (Zero warmup is additionally rejected at run time
  /// for open-loop measurement runs — scripted runs legitimately use it.)
  std::string validate() const {
    if (load_flits < 0.0) return "sim config: negative load_flits";
    if (worm_flits < 1) return "sim config: worm_flits must be >= 1 flit";
    if (warmup_cycles < 0) return "sim config: negative warmup_cycles";
    if (measure_cycles <= 0) return "sim config: measure_cycles must be > 0";
    if (max_cycles <= 0) return "sim config: max_cycles must be > 0";
    if (watchdog_cycles <= 0) return "sim config: watchdog_cycles must be > 0";
    if (latency_histogram && (histogram_bins < 1 || !(histogram_max > 0.0)))
      return "sim config: latency_histogram needs bins >= 1 and max > 0";
    if (fault_stall_timeout < 1)
      return "sim config: fault_stall_timeout must be >= 1 cycle";
    if (!fault_events.empty() && fault_stall_timeout >= watchdog_cycles)
      return "sim config: fault_stall_timeout must be < watchdog_cycles so "
             "timeout drops preempt the watchdog abort";
    for (const FaultEvent& e : fault_events)
      if (e.cycle < 0) return "sim config: negative fault event cycle";
    if (const std::string problem = arrival_process.check(); !problem.empty())
      return "sim config: " + problem;
    if (arrivals == ArrivalProcess::Bernoulli && !arrival_process.is_poisson())
      return "sim config: arrivals == Bernoulli conflicts with a non-Poisson "
             "arrival_process — set one or the other";
    return "";
  }

  /// The zero-warmup rule for open-loop MEASUREMENT runs, kept out of
  /// validate() because scripted runs legitimately use warmup 0 and only
  /// the Simulator knows (at run time) whether a run is scripted.  Both
  /// enforcement sites — Simulator::advance for lone runs and
  /// SimEngine::run_cells for campaigns (eagerly; campaign cells are never
  /// scripted) — call this ONE rule.  Empty string when fine.
  std::string validate_open_loop() const {
    if (arrivals != ArrivalProcess::Overload && load_flits > 0.0 &&
        warmup_cycles == 0) {
      return "sim config: zero warmup_cycles on an open-loop measurement "
             "run biases the latency window — warm the queues up first "
             "(warmup_cycles >= 1)";
    }
    return "";
  }
};

}  // namespace wormnet::sim

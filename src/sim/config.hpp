// wormnet/sim/config.hpp
//
// Simulation parameters.  Defaults mirror the paper's experimental setup:
// Poisson message generation, uniformly random destinations, fixed worm
// length, FCFS channel arbitration, destinations that drain one flit per
// cycle.
//
// Destination selection is a traffic::TrafficSpec — the same pattern object
// the analytical builder (core::build_traffic_model) consumes, so simulator
// and model are driven by one description of the workload by construction.
#pragma once

#include <cstdint>

#include "traffic/traffic_spec.hpp"

namespace wormnet::sim {

/// Message generation process at each processor.
enum class ArrivalProcess {
  Poisson,    ///< exponential inter-arrival times (the paper's assumption 1)
  Bernoulli,  ///< geometric inter-arrival times (one trial per cycle)
  Overload,   ///< source always backlogged: measures saturation throughput
};

/// One simulation run's configuration.
struct SimConfig {
  /// Offered load in flits/cycle/processor (Fig. 3's x-axis); the message
  /// rate is λ₀ = load_flits / worm_flits.  Ignored under Overload.
  double load_flits = 0.01;

  /// Worm length s_f in flits.
  int worm_flits = 16;

  /// Arrival process.
  ArrivalProcess arrivals = ArrivalProcess::Poisson;

  /// Destination distribution (the paper's assumption 1 by default).  Every
  /// source must carry full injection weight: the simulator generates
  /// arrivals at rate λ₀ at every PE.
  traffic::TrafficSpec traffic = traffic::TrafficSpec::uniform();

  /// RNG seed; two runs with equal config are bit-identical.
  std::uint64_t seed = 1;

  /// Cycles simulated before measurement starts (queue warm-up).
  long warmup_cycles = 10'000;

  /// Length of the measurement window: messages GENERATED inside
  /// [warmup, warmup + measure_cycles) are tagged and their latencies
  /// recorded; throughput counts deliveries inside the same window.
  long measure_cycles = 30'000;

  /// Hard stop.  If tagged messages remain undelivered here, the run is
  /// reported as saturated (offered load exceeded capacity).
  long max_cycles = 400'000;

  /// Abort threshold for the progress watchdog: if no flit moves and no
  /// channel is granted for this many consecutive cycles while worms are
  /// waiting, the simulator aborts — with minimal routing on acyclic
  /// channel-dependency networks this indicates a simulator bug, not a
  /// protocol deadlock.
  long watchdog_cycles = 100'000;

  /// Debug switch: force the simulator to execute every idle cycle
  /// explicitly instead of fast-forwarding to the next arrival when the
  /// network is empty.  Fast-forward is semantically invisible — results are
  /// bit-identical either way (tested in test_sim_semantics.cpp) — so this
  /// exists only to prove that claim and to time the optimization.
  bool disable_fast_forward = false;

  /// Collect per-channel grant/busy counters (cheap; a few MB at N=1024).
  bool channel_stats = true;

  /// Collect the full latency distribution of tagged messages (histogram
  /// with `histogram_bins` bins over [0, histogram_max) cycles) so results
  /// can report tail percentiles, not just the mean the paper plots.
  bool latency_histogram = false;
  double histogram_max = 4096.0;
  int histogram_bins = 512;
};

}  // namespace wormnet::sim

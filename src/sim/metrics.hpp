// wormnet/sim/metrics.hpp
//
// Simulation outputs.  The per-message decomposition mirrors the model's
// Eq. 1 terms so every model quantity has a directly-measured counterpart:
//   latency      = tail-delivery cycle - generation cycle      (L)
//   queue_wait   = injection-grant cycle - generation cycle    (W_inj)
//   inj_service  = source-release cycle - injection-grant cycle(x_inj)
//   distance     = channels on the allocated path              (D)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace wormnet::sim {

/// Per-directed-channel counters, accumulated inside the measurement window.
struct ChannelStat {
  std::int64_t worms = 0;        ///< channel grants (worm-starts)
  std::int64_t busy_cycles = 0;  ///< cycles the channel was owned by a worm
  std::int64_t flits = 0;        ///< flits that crossed the channel
};

/// Results of one simulation run.
struct SimResult {
  bool completed = false;  ///< all tagged messages delivered before max_cycles
  bool saturated = false;  ///< backlog kept growing / tagged undelivered
  /// The run was stopped by an external cycle budget (SimCell::cycle_budget
  /// via Simulator::partial_result) before terminating on its own; every
  /// statistic below covers the cycles actually executed.
  bool truncated = false;
  long cycles_run = 0;     ///< final simulation cycle
  long window_cycles = 0;  ///< measurement window length actually used

  /// Tagged-message statistics (all in cycles).
  util::RunningStats latency;
  util::RunningStats queue_wait;
  util::RunningStats inj_service;
  util::RunningStats distance;

  /// Deliveries whose tail arrived inside the measurement window.
  std::int64_t delivered_messages = 0;
  std::int64_t delivered_flits = 0;
  /// Delivered flits / window / processor — the throughput metric the
  /// paper's Eq. 26 saturation point is compared against.
  double throughput_flits_per_pe = 0.0;

  /// Messages generated in the window (offered load check).
  std::int64_t generated_messages = 0;

  /// Fault accounting, over the WHOLE run (not just the window) — these are
  /// health metrics, not throughput samples.  Worms dropped by the
  /// fault-stall timeout (scripted link-down events), the flits they
  /// carried, and messages discarded at generation because the sampled
  /// destination had no surviving path (faulted topologies).
  std::int64_t dropped_worms = 0;
  std::int64_t dropped_flits = 0;
  std::int64_t unroutable_messages = 0;

  /// Per-channel counters (empty when SimConfig::channel_stats is false).
  std::vector<ChannelStat> channels;

  /// Latency distribution of tagged messages (present when
  /// SimConfig::latency_histogram is set): enables percentile reporting
  /// beyond the paper's mean-latency curves.
  std::optional<util::Histogram> latency_hist;
};

}  // namespace wormnet::sim

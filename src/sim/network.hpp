// wormnet/sim/network.hpp
//
// Immutable, flattened view of a Topology prepared for fast simulation:
// directed channels with dense ids, per-channel virtual-channel LANES with
// dense ids, output bundles with dense ids, and the port → bundle mapping.
//
// IMMUTABILITY CONTRACT: a SimNetwork is frozen at construction — every
// member function is const and no method mutates state, so one SimNetwork
// can back any number of CONCURRENT Simulator instances without
// synchronization.  harness::SimEngine relies on this to build each
// campaign topology's network exactly once and share it across all worker
// threads.  The topology's lane counts are snapshotted at construction;
// mutating the Topology afterwards (set_uniform_lanes) does not affect an
// existing SimNetwork.
//
// Lanes: each directed channel c multiplexes lanes(c) one-flit latches over
// one physical link (topo::Topology::lanes).  Lane ids are dense across the
// network: channel c owns the contiguous range [lane_begin(c),
// lane_begin(c+1)).  The lane counts are snapshotted at construction.
#pragma once

#include <vector>

#include "topo/channels.hpp"
#include "topo/topology.hpp"

namespace wormnet::sim {

/// A multi-server output group: the unit of FCFS arbitration.  Fat-tree
/// parent pairs have two channels; everything else is a singleton.
struct BundleInfo {
  std::array<int, 4> channel_ids{};  ///< directed channel ids in the bundle
  int num_channels = 0;
};

/// Flattened per-channel facts used in the hot loop.
struct ChannelInfo {
  int dst_node = -1;        ///< node the channel feeds
  int bundle = -1;          ///< owning bundle id
  bool dst_is_processor = false;
};

/// Precomputed simulation view of a topology.
class SimNetwork {
 public:
  /// Build from a topology (kept by reference; must outlive the network).
  /// Lane counts AND per-channel link attributes (bandwidth, link latency,
  /// buffer depth) are snapshotted here.  The flit-level simulator needs
  /// integer flit periods and latencies, so construction throws
  /// std::invalid_argument on a channel whose bandwidth is not 1/k for a
  /// whole k >= 1, whose link latency is negative or fractional, or whose
  /// buffer depth is < 1 flit — the fail-fast gate for bad heterogeneous
  /// configs.
  explicit SimNetwork(const topo::Topology& topo);

  /// The topology.
  const topo::Topology& topology() const { return *topo_; }
  /// The directed channel index.
  const topo::ChannelTable& channels() const { return table_; }

  /// Number of directed channels.
  int num_channels() const { return table_.size(); }
  /// Number of output bundles.
  int num_bundles() const { return static_cast<int>(bundles_.size()); }
  /// Bundle record.
  const BundleInfo& bundle(int id) const {
    return bundles_[static_cast<std::size_t>(id)];
  }
  /// Per-channel facts.
  const ChannelInfo& channel(int id) const {
    return info_[static_cast<std::size_t>(id)];
  }

  /// Bundle serving (node, port).
  int bundle_of_port(int node, int port) const;

  /// The injection channel id of a processor.
  int injection_channel(int proc) const {
    return injection_[static_cast<std::size_t>(proc)];
  }
  /// The whole per-processor injection-channel table (the simulator's run
  /// loop caches a raw pointer to it instead of re-resolving per event).
  const std::vector<int>& injection_channels() const { return injection_; }

  /// Total lane latches in the network (== num_channels() when every
  /// channel is single-lane).
  int num_lanes() const { return static_cast<int>(lane_channel_.size()); }
  /// First lane id of channel `ch`; its lanes are [lane_begin(ch),
  /// lane_begin(ch+1)).
  int lane_begin(int ch) const {
    return lane_begin_[static_cast<std::size_t>(ch)];
  }
  /// Lane count L of channel `ch`.
  int channel_lanes(int ch) const {
    return lane_begin_[static_cast<std::size_t>(ch) + 1] -
           lane_begin_[static_cast<std::size_t>(ch)];
  }
  /// Channel owning lane id `lane`.
  int lane_channel(int lane) const {
    return lane_channel_[static_cast<std::size_t>(lane)];
  }
  /// Total lanes across a bundle's member channels (its grant capacity).
  int bundle_lanes(int bundle_id) const {
    const BundleInfo& bi = bundle(bundle_id);
    int lanes = 0;
    for (int i = 0; i < bi.num_channels; ++i)
      lanes += channel_lanes(bi.channel_ids[static_cast<std::size_t>(i)]);
    return lanes;
  }
  /// Largest per-channel lane count; 1 means the network is single-lane and
  /// the simulator can take its exact paper-semantics fast path.
  int max_lanes() const { return max_lanes_; }

  /// Flit period of channel `ch` in cycles (1 / bandwidth): the link moves
  /// one flit every `period` cycles.  1 on the paper's uniform links.
  int channel_period(int ch) const {
    return period_[static_cast<std::size_t>(ch)];
  }
  /// Extra head-traversal latency of channel `ch` in whole cycles.
  int channel_link_latency(int ch) const {
    return latency_[static_cast<std::size_t>(ch)];
  }
  /// Per-lane flit-buffer depth of channel `ch`
  /// (util::kInfiniteBufferDepth = unbounded, the paper's assumption).
  int channel_buffer_depth(int ch) const {
    return depth_[static_cast<std::size_t>(ch)];
  }
  /// True when ANY channel departs from the uniform defaults (bandwidth 1,
  /// latency 0, infinite buffers).  False keeps the simulator on its exact
  /// golden-traced paths; true routes every run through the bandwidth-
  /// arbitrated kernel.  Snapshotted at construction with the lane counts.
  bool has_link_features() const { return has_link_features_; }

 private:
  const topo::Topology* topo_;
  topo::ChannelTable table_;
  std::vector<BundleInfo> bundles_;
  std::vector<ChannelInfo> info_;
  std::vector<int> port_bundle_;        // flattened [node][port]
  std::vector<int> port_bundle_offset_; // per node offset into port_bundle_
  std::vector<int> injection_;          // per processor
  std::vector<int> lane_begin_;         // per channel; size num_channels()+1
  std::vector<int> lane_channel_;       // per lane: owning channel
  int max_lanes_ = 1;
  std::vector<int> period_;   // per channel: cycles per flit (1 / bandwidth)
  std::vector<int> latency_;  // per channel: extra head latency in cycles
  std::vector<int> depth_;    // per channel: per-lane buffer depth in flits
  bool has_link_features_ = false;
};

}  // namespace wormnet::sim

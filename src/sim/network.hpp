// wormnet/sim/network.hpp
//
// Immutable, flattened view of a Topology prepared for fast simulation:
// directed channels with dense ids, output bundles with dense ids, and the
// port → bundle mapping.  One SimNetwork can back any number of concurrent
// Simulator instances (it holds no mutable state).
#pragma once

#include <vector>

#include "topo/channels.hpp"
#include "topo/topology.hpp"

namespace wormnet::sim {

/// A multi-server output group: the unit of FCFS arbitration.  Fat-tree
/// parent pairs have two channels; everything else is a singleton.
struct BundleInfo {
  std::array<int, 4> channel_ids{};  ///< directed channel ids in the bundle
  int num_channels = 0;
};

/// Flattened per-channel facts used in the hot loop.
struct ChannelInfo {
  int dst_node = -1;        ///< node the channel feeds
  int bundle = -1;          ///< owning bundle id
  bool dst_is_processor = false;
};

/// Precomputed simulation view of a topology.
class SimNetwork {
 public:
  /// Build from a topology (kept by reference; must outlive the network).
  explicit SimNetwork(const topo::Topology& topo);

  /// The topology.
  const topo::Topology& topology() const { return *topo_; }
  /// The directed channel index.
  const topo::ChannelTable& channels() const { return table_; }

  /// Number of directed channels.
  int num_channels() const { return table_.size(); }
  /// Number of output bundles.
  int num_bundles() const { return static_cast<int>(bundles_.size()); }
  /// Bundle record.
  const BundleInfo& bundle(int id) const {
    return bundles_[static_cast<std::size_t>(id)];
  }
  /// Per-channel facts.
  const ChannelInfo& channel(int id) const {
    return info_[static_cast<std::size_t>(id)];
  }

  /// Bundle serving (node, port).
  int bundle_of_port(int node, int port) const;

  /// The injection channel id of a processor.
  int injection_channel(int proc) const {
    return injection_[static_cast<std::size_t>(proc)];
  }

 private:
  const topo::Topology* topo_;
  topo::ChannelTable table_;
  std::vector<BundleInfo> bundles_;
  std::vector<ChannelInfo> info_;
  std::vector<int> port_bundle_;        // flattened [node][port]
  std::vector<int> port_bundle_offset_; // per node offset into port_bundle_
  std::vector<int> injection_;          // per processor
};

}  // namespace wormnet::sim

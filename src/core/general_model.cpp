#include "core/general_model.hpp"

#include <algorithm>
#include <cmath>

#include "queueing/queueing.hpp"
#include "util/math.hpp"

namespace wormnet::core {

using util::clamp01;
using util::kInf;

namespace {

/// W̄ of the bundle serving class `j` under the options' ablation switches.
double bundle_wait(const ChannelClass& cls, double xbar, const SolveOptions& opts) {
  const double lambda_link = cls.rate_per_link * opts.injection_scale;
  if (!opts.multi_server || cls.servers == 1) {
    // Each physical link treated as an independent M/G/1 at its own rate.
    return queueing::mg1_wait_wormhole(lambda_link, xbar, opts.worm_flits);
  }
  // Corrected form: the m-server queue sees the bundle's total rate.  The
  // uncorrected published formula used the per-link rate.
  const double lambda_arg =
      opts.erratum_2lambda ? lambda_link * cls.servers : lambda_link;
  return queueing::wormhole_wait(cls.servers, lambda_arg, xbar, opts.worm_flits);
}

/// ρ of the bundle serving class `j` (always at the true total rate;
/// ablations change the wait formula, not the physics of utilization).
double bundle_utilization(const ChannelClass& cls, double xbar,
                          const SolveOptions& opts) {
  const double lambda_link = cls.rate_per_link * opts.injection_scale;
  return queueing::utilization(lambda_link * cls.servers, xbar, cls.servers);
}

/// Eq. 9/10 factor for a transition from class `from` into class `to`.
double blocking_factor(const ChannelClass& from, const ChannelClass& to,
                       const Transition& t, const SolveOptions& opts) {
  if (!opts.blocking_correction) return 1.0;
  // P = 1 - m (λ_i / λ_j^total) R(i|j); with per-link rates the m cancels:
  // P = 1 - (λ_i^link / λ_j^link) R(i|j).  When the multi-server treatment
  // is ablated the worm commits to one specific link out of m uniformly, so
  // R splits into R/m per link.
  const double lam_in = from.rate_per_link;
  const double lam_out = to.rate_per_link;
  if (lam_out <= 0.0) return 1.0;
  double r = t.route_prob;
  if (!opts.multi_server && to.servers > 1) r /= to.servers;
  return clamp01(1.0 - (lam_in / lam_out) * r);
}

/// One evaluation of Eq. 11 for class `i` given current service times.
double compose_service_time(const ChannelGraph& graph, int i,
                            const std::vector<double>& x,
                            const std::vector<double>& waits,
                            const SolveOptions& opts) {
  const ChannelClass& cls = graph.at(i);
  if (cls.terminal) return opts.worm_flits;
  double xi = 0.0;
  for (const Transition& t : cls.next) {
    const ChannelClass& target = graph.at(t.target);
    const double p = blocking_factor(cls, target, t, opts);
    // p == 0 means the correction proves this input never waits there (a
    // channel fed exclusively by one input); skip the product so an
    // infinite wait past saturation doesn't turn 0 * inf into NaN.
    const double wait_term =
        p > 0.0 ? p * waits[static_cast<std::size_t>(t.target)] : 0.0;
    xi += t.weight * (x[static_cast<std::size_t>(t.target)] + wait_term);
  }
  return xi;
}

}  // namespace

SolveResult solve_general_model(const ChannelGraph& graph, const SolveOptions& opts) {
  WORMNET_EXPECTS(opts.worm_flits > 0.0);
  WORMNET_EXPECTS(opts.injection_scale >= 0.0);
  WORMNET_EXPECTS(graph.validate().empty());

  const int n = graph.size();
  SolveResult result;
  result.channels.assign(static_cast<std::size_t>(n), {});
  std::vector<double> x(static_cast<std::size_t>(n), opts.worm_flits);
  std::vector<double> waits(static_cast<std::size_t>(n), 0.0);

  const std::vector<int> order = graph.reverse_topological_order();
  if (!order.empty()) {
    // Acyclic: one exact backward sweep, terminals first (the paper's §2.1
    // "service times are resolved in the reverse order of the channels
    // traversed").
    for (int id : order) {
      // Successors are already final; compose this class's x̄ from them,
      // then evaluate the wait of this class's bundle at that final x̄.
      x[static_cast<std::size_t>(id)] = compose_service_time(graph, id, x, waits, opts);
      waits[static_cast<std::size_t>(id)] =
          bundle_wait(graph.at(id), x[static_cast<std::size_t>(id)], opts);
    }
    result.iterations = 1;
    result.converged = true;
  } else {
    // Cyclic dependency graph: damped fixed-point iteration.
    result.converged = false;
    for (int it = 0; it < opts.max_iterations; ++it) {
      double max_delta = 0.0;
      for (int id = 0; id < n; ++id) {
        waits[static_cast<std::size_t>(id)] =
            bundle_wait(graph.at(id), x[static_cast<std::size_t>(id)], opts);
      }
      for (int id = 0; id < n; ++id) {
        const double next = compose_service_time(graph, id, x, waits, opts);
        const double cur = x[static_cast<std::size_t>(id)];
        double blended = cur + opts.damping * (next - cur);
        if (std::isinf(next)) blended = next;  // saturation dominates damping
        max_delta = std::max(max_delta, std::abs(blended - cur));
        x[static_cast<std::size_t>(id)] = blended;
      }
      result.iterations = it + 1;
      if (max_delta < opts.tolerance || std::isinf(max_delta) || std::isnan(max_delta)) {
        result.converged = max_delta < opts.tolerance;
        break;
      }
    }
    for (int id = 0; id < n; ++id) {
      waits[static_cast<std::size_t>(id)] =
          bundle_wait(graph.at(id), x[static_cast<std::size_t>(id)], opts);
    }
  }

  for (int id = 0; id < n; ++id) {
    ChannelSolution& sol = result.channels[static_cast<std::size_t>(id)];
    sol.service_time = x[static_cast<std::size_t>(id)];
    sol.wait = waits[static_cast<std::size_t>(id)];
    sol.utilization = bundle_utilization(graph.at(id), sol.service_time, opts);
    sol.cb2 = queueing::wormhole_cb2(sol.service_time, opts.worm_flits);
    if (!std::isfinite(sol.service_time) || !std::isfinite(sol.wait) ||
        sol.utilization >= 1.0) {
      result.stable = false;
    }
  }
  return result;
}

LatencyEstimate estimate_latency(const SolveResult& solution,
                                 const std::vector<int>& injection_classes,
                                 double mean_distance) {
  WORMNET_EXPECTS(!injection_classes.empty());
  LatencyEstimate est;
  est.mean_distance = mean_distance;
  est.stable = solution.stable;
  double wait_sum = 0.0;
  double service_sum = 0.0;
  for (int id : injection_classes) {
    wait_sum += solution.wait(id);
    service_sum += solution.service_time(id);
  }
  const double n = static_cast<double>(injection_classes.size());
  est.inj_wait = wait_sum / n;
  est.inj_service = service_sum / n;
  est.latency = est.inj_wait + est.inj_service + mean_distance - 1.0;
  if (!std::isfinite(est.latency)) est.stable = false;
  return est;
}

}  // namespace wormnet::core

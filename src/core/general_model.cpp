#include "core/general_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/saturation.hpp"
#include "queueing/channel_solver.hpp"
#include "util/hash.hpp"
#include "util/math.hpp"

namespace wormnet::core {

namespace {

using queueing::ChannelSolver;

/// W̄ of the bundle serving class `j` at the solve's injection scale, at the
/// class's arrival SCV (the bursty-arrivals extension; ca2 == 1 reproduces
/// the paper's Poisson wait bit for bit).
double bundle_wait(const ChannelSolver& solver, const ChannelClass& cls,
                   double xbar, double injection_scale) {
  return solver.bundle_wait(cls.servers, cls.lanes,
                            cls.rate_per_link * injection_scale, xbar, cls.ca2);
}

/// Eq. 9/10 factor for a transition from class `from` into class `to`,
/// discounted by the target's lane multiplicity (an L-lane channel blocks
/// only when all L lanes are held).  Rates at unit injection scale: the
/// λ_in/λ_out ratio is scale-invariant.
double blocking_factor(const ChannelSolver& solver, const ChannelClass& from,
                       const ChannelClass& to, const Transition& t) {
  return solver.blocking_factor(to.servers, to.lanes, from.rate_per_link,
                                to.rate_per_link, t.route_prob);
}

/// One evaluation of Eq. 11 for class `i` given current service times, plus
/// the lane-multiplexing excess of channel i itself (zero in single-lane
/// networks — the paper's exact recurrence).
double compose_service_time(const ChannelSolver& solver, const ChannelGraph& graph,
                            int i, const std::vector<double>& x,
                            const std::vector<double>& waits,
                            double injection_scale) {
  const ChannelClass& cls = graph.at(i);
  const double excess =
      solver.lane_excess(cls.lanes, cls.rate_per_link * injection_scale);
  if (cls.terminal) return solver.terminal_service() + excess;
  double xi = 0.0;
  for (const Transition& t : cls.next) {
    const ChannelClass& target = graph.at(t.target);
    const double p = blocking_factor(solver, cls, target, t);
    const double wait_term =
        ChannelSolver::wait_term(p, waits[static_cast<std::size_t>(t.target)]);
    xi += t.weight * (x[static_cast<std::size_t>(t.target)] + wait_term);
  }
  return xi + excess;
}

}  // namespace

SolveResult solve_general_model(const ChannelGraph& graph, const SolveOptions& opts) {
  WORMNET_EXPECTS(opts.worm_flits > 0.0);
  WORMNET_EXPECTS(opts.injection_scale >= 0.0);
  WORMNET_EXPECTS(graph.validate().empty());

  const ChannelSolver solver(opts.worm_flits, opts.ablation());
  const double scale = opts.injection_scale;

  const int n = graph.size();
  SolveResult result;
  result.channels.assign(static_cast<std::size_t>(n), {});
  std::vector<double> x(static_cast<std::size_t>(n), opts.worm_flits);
  std::vector<double> waits(static_cast<std::size_t>(n), 0.0);

  const std::vector<int> order = graph.reverse_topological_order();
  if (!order.empty()) {
    // Acyclic: one exact backward sweep, terminals first (the paper's §2.1
    // "service times are resolved in the reverse order of the channels
    // traversed").
    for (int id : order) {
      // Successors are already final; compose this class's x̄ from them,
      // then evaluate the wait of this class's bundle at that final x̄.
      x[static_cast<std::size_t>(id)] =
          compose_service_time(solver, graph, id, x, waits, scale);
      waits[static_cast<std::size_t>(id)] =
          bundle_wait(solver, graph.at(id), x[static_cast<std::size_t>(id)], scale);
    }
    result.iterations = 1;
    result.converged = true;
  } else {
    // Cyclic dependency graph: damped fixed-point iteration.
    result.converged = false;
    for (int it = 0; it < opts.max_iterations; ++it) {
      double max_delta = 0.0;
      for (int id = 0; id < n; ++id) {
        waits[static_cast<std::size_t>(id)] =
            bundle_wait(solver, graph.at(id), x[static_cast<std::size_t>(id)], scale);
      }
      for (int id = 0; id < n; ++id) {
        const double next = compose_service_time(solver, graph, id, x, waits, scale);
        const double cur = x[static_cast<std::size_t>(id)];
        double blended = cur + opts.damping * (next - cur);
        if (std::isinf(next)) blended = next;  // saturation dominates damping
        max_delta = std::max(max_delta, std::abs(blended - cur));
        x[static_cast<std::size_t>(id)] = blended;
      }
      result.iterations = it + 1;
      if (max_delta < opts.tolerance || std::isinf(max_delta) || std::isnan(max_delta)) {
        result.converged = max_delta < opts.tolerance;
        break;
      }
    }
    for (int id = 0; id < n; ++id) {
      waits[static_cast<std::size_t>(id)] =
          bundle_wait(solver, graph.at(id), x[static_cast<std::size_t>(id)], scale);
    }
  }

  for (int id = 0; id < n; ++id) {
    ChannelSolution& sol = result.channels[static_cast<std::size_t>(id)];
    sol.service_time = x[static_cast<std::size_t>(id)];
    sol.wait = waits[static_cast<std::size_t>(id)];
    sol.utilization = solver.bundle_utilization(
        graph.at(id).servers, graph.at(id).lanes,
        graph.at(id).rate_per_link * scale, sol.service_time);
    sol.cb2 = solver.cb2(sol.service_time);
    // Report the SCV the wait was actually evaluated at: with the
    // bursty_arrivals ablation off the kernel used the Poisson value, not
    // the graph's tuned one.
    sol.ca2 = opts.ablation().bursty_arrivals ? graph.at(id).ca2 : 1.0;
    if (!std::isfinite(sol.service_time) || !std::isfinite(sol.wait) ||
        sol.utilization >= 1.0) {
      result.stable = false;
    }
  }
  return result;
}

LatencyEstimate estimate_latency(const SolveResult& solution,
                                 const std::vector<int>& injection_classes,
                                 double mean_distance) {
  return estimate_latency(solution, injection_classes, {}, mean_distance);
}

LatencyEstimate estimate_latency(const SolveResult& solution,
                                 const std::vector<int>& injection_classes,
                                 const std::vector<double>& weights,
                                 double mean_distance) {
  WORMNET_EXPECTS(!injection_classes.empty());
  WORMNET_EXPECTS(weights.empty() || weights.size() == injection_classes.size());
  LatencyEstimate est;
  est.mean_distance = mean_distance;
  est.stable = solution.stable;
  double wait_sum = 0.0;
  double service_sum = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < injection_classes.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    const int id = injection_classes[i];
    wait_sum += w * solution.wait(id);
    service_sum += w * solution.service_time(id);
    weight_sum += w;
  }
  WORMNET_EXPECTS(weight_sum > 0.0);
  est.inj_wait = wait_sum / weight_sum;
  est.inj_service = service_sum / weight_sum;
  est.latency = est.inj_wait + est.inj_service + mean_distance - 1.0;
  if (!std::isfinite(est.latency)) est.stable = false;
  return est;
}

int GeneralModel::class_id(const std::string& label) const {
  auto it = labels.find(label);
  WORMNET_EXPECTS(it != labels.end());
  return it->second;
}

void GeneralModel::set_injection_ca2(double ca2) {
  WORMNET_EXPECTS(ca2 >= 0.0);
  injection_ca2 = ca2;
  // An SCV-only tune describes a batchless process: a residual left over
  // from an earlier set_injection_process(batch) must not keep inflating
  // evaluate() after the caller retunes to (say) plain Poisson.
  injection_batch_residual = 0.0;
  for (int id = 0; id < graph.size(); ++id) {
    ChannelClass& c = graph.mutable_at(id);
    // The QNA affine form: a channel retaining fraction self_frac of its
    // sources' original processes interpolates between full
    // Poissonification (1) and the injection SCV itself.
    c.ca2 = 1.0 + (ca2 - 1.0) * c.self_frac;
  }
}

void GeneralModel::set_uniform_lanes(int lanes) {
  WORMNET_EXPECTS(lanes >= 1);
  for (int id = 0; id < graph.size(); ++id) graph.mutable_at(id).lanes = lanes;
}

void GeneralModel::scale_injection_rates(double factor) {
  WORMNET_EXPECTS(factor > 0.0 && std::isfinite(factor));
  for (int id = 0; id < graph.size(); ++id) {
    graph.mutable_at(id).rate_per_link *= factor;
  }
}

void GeneralModel::set_injection_process(const arrivals::ArrivalSpec& spec,
                                         double lambda0) {
  WORMNET_EXPECTS(spec.check().empty());
  // Bernoulli is the one catalog entry whose SCV depends on λ₀ (1 − λ₀);
  // tuning it at the rate-invariant default would silently collapse to the
  // Poisson ca2(0) fallback — demand the operating rate instead.
  WORMNET_EXPECTS(spec.kind() != arrivals::Kind::Bernoulli || lambda0 > 0.0);
  // The model consumes the effective (asymptotic) variability parameter,
  // which folds MMPP autocorrelation in; for renewal processes it is the
  // plain interval SCV.
  set_injection_ca2(spec.effective_ca2(lambda0));
  injection_batch_residual = spec.batch_residual();
}

namespace {

/// Fold the load-independent intra-batch serialization wait into a finished
/// estimate (the exact M^[X]/G/1 decomposition; see
/// GeneralModel::injection_batch_residual).  Off when the bursty_arrivals
/// ablation is off — the term belongs to the same extension.
LatencyEstimate apply_batch_residual(LatencyEstimate est, double residual,
                                     bool bursty_arrivals) {
  if (residual <= 0.0 || !bursty_arrivals || !std::isfinite(est.inj_service))
    return est;
  const double extra = residual * est.inj_service;
  est.inj_wait += extra;
  est.latency += extra;
  return est;
}

}  // namespace

std::uint64_t GeneralModel::content_digest() const {
  // Base digest covers name, worm length, ablation switches and the arrival
  // tuning; fold in everything else evaluate() reads.  Labels and
  // channel_class_of are reporting metadata only, and opts.injection_scale
  // is overridden by every evaluation's λ₀ — all three are deliberately
  // excluded.
  std::uint64_t h = NetworkModel::content_digest();
  h = util::hash_mix(h, static_cast<std::uint64_t>(graph.size()));
  for (int id = 0; id < graph.size(); ++id) {
    const ChannelClass& c = graph.at(id);
    h = util::hash_mix(h, (static_cast<std::uint64_t>(c.servers) << 32) |
                              (static_cast<std::uint64_t>(c.lanes) << 1) |
                              static_cast<std::uint64_t>(c.terminal));
    h = util::hash_mix_double(h, c.rate_per_link);
    h = util::hash_mix_double(h, c.ca2);
    h = util::hash_mix_double(h, c.self_frac);
    for (const Transition& t : c.next) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(t.target));
      h = util::hash_mix_double(h, t.weight);
      h = util::hash_mix_double(h, t.route_prob);
    }
  }
  for (int id : injection_classes) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(id));
  }
  for (double w : injection_class_weights) h = util::hash_mix_double(h, w);
  h = util::hash_mix_double(h, mean_distance);
  h = util::hash_mix(h, static_cast<std::uint64_t>(opts.max_iterations));
  h = util::hash_mix_double(h, opts.tolerance);
  h = util::hash_mix_double(h, opts.damping);
  return h;
}

SolveResult GeneralModel::solve(double lambda0) const {
  SolveOptions run = opts;
  run.injection_scale = lambda0;
  return solve_general_model(graph, run);
}

LatencyEstimate GeneralModel::evaluate(double lambda0) const {
  return apply_batch_residual(
      estimate_latency(solve(lambda0), injection_classes,
                       injection_class_weights, mean_distance),
      injection_batch_residual, opts.bursty_arrivals);
}

SolveResult model_solve(const GeneralModel& net, double lambda0, SolveOptions base) {
  base.injection_scale = lambda0;
  return solve_general_model(net.graph, base);
}

LatencyEstimate model_latency(const GeneralModel& net, double lambda0,
                              SolveOptions base) {
  const SolveResult res = model_solve(net, lambda0, base);
  return apply_batch_residual(
      estimate_latency(res, net.injection_classes, net.injection_class_weights,
                       net.mean_distance),
      net.injection_batch_residual, base.bursty_arrivals);
}

double model_saturation_rate(const GeneralModel& net, SolveOptions base) {
  return find_saturation_rate(
      [&](double lambda0) {
        return model_latency(net, lambda0, base).inj_service;
      },
      1.0 / base.worm_flits);
}

}  // namespace wormnet::core
